"""Patrol scrubbing: pairing pressure and prevention."""

import pytest

from repro.dram.cells import WeakCellMap
from repro.dram.geometry import BankAddress
from repro.dram.scrubber import PatrolScrubber, pairup_probability
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def weak_map() -> WeakCellMap:
    # A hotter profile so the bank carries enough weak bits to pair.
    return WeakCellMap(BankAddress(2, 3), seed=13,
                       profile_interval_s=4.0, profile_temp_c=72.0)


# ----------------------------------------------------------------------
# Analytic pair-up probability
# ----------------------------------------------------------------------
def test_zero_or_one_bit_cannot_pair():
    assert pairup_probability(0, 1000) == 0.0
    assert pairup_probability(1, 1000) == 0.0


def test_pairup_grows_with_density():
    words = 8_388_608  # one bank's 64-bit words
    probs = [pairup_probability(n, words) for n in (50, 500, 5000, 50000)]
    assert probs == sorted(probs)
    assert probs[0] < 1e-3 < probs[-1]


def test_scrub_passes_reduce_pairup():
    base = pairup_probability(5000, 8_388_608, scrub_passes=0)
    scrubbed = pairup_probability(5000, 8_388_608, scrub_passes=3)
    assert scrubbed < base
    # In the *sparse* regime (p << 1) the reduction is ~(passes + 1).
    sparse_base = pairup_probability(500, 8_388_608, scrub_passes=0)
    sparse_scrubbed = pairup_probability(500, 8_388_608, scrub_passes=3)
    assert sparse_scrubbed == pytest.approx(sparse_base / 4.0, rel=0.02)


def test_paper_regime_needs_no_scrubbing():
    """At the paper's 60 degC density (~48 bits/bank) pair-up is rare --
    the quantitative reason ECC alone sufficed."""
    assert pairup_probability(48, 8_388_608) < 2e-4


def test_pairup_validation():
    with pytest.raises(ConfigurationError):
        pairup_probability(10, 0)
    with pytest.raises(ConfigurationError):
        pairup_probability(-1, 10)
    with pytest.raises(ConfigurationError):
        pairup_probability(10, 10, scrub_passes=-1)


# ----------------------------------------------------------------------
# Simulated patrol campaign
# ----------------------------------------------------------------------
def test_campaign_counts_consistent(weak_map):
    scrubber = PatrolScrubber(weak_map, 4.0, 70.0, passes=1, seed=2)
    report = scrubber.run(windows=8)
    assert len(report.windows) == 8
    for window in report.windows:
        assert 0 <= window.escalations_prevented <= window.vulnerable_words
        assert window.weak_bits > 0


def test_more_passes_prevent_more(weak_map):
    light = PatrolScrubber(weak_map, 4.0, 70.0, passes=1, seed=2).run(12)
    heavy = PatrolScrubber(weak_map, 4.0, 70.0, passes=7, seed=2).run(12)
    if light.total_vulnerable_words == 0:
        pytest.skip("draw produced no vulnerable words")
    assert heavy.prevention_fraction >= light.prevention_fraction


def test_single_pass_prevents_about_half(weak_map):
    """A mid-window pass splits a uniform pair with probability ~1/2."""
    report = PatrolScrubber(weak_map, 4.0, 70.0, passes=1, seed=2).run(40)
    if report.total_vulnerable_words < 20:
        pytest.skip("too few vulnerable words for a stable estimate")
    assert report.prevention_fraction == pytest.approx(0.5, abs=0.15)


def test_no_passes_prevent_nothing(weak_map):
    report = PatrolScrubber(weak_map, 4.0, 70.0, passes=0, seed=2).run(6)
    assert report.total_prevented == 0


def test_invalid_configs(weak_map):
    with pytest.raises(ConfigurationError):
        PatrolScrubber(weak_map, 4.0, 70.0, passes=-1)
    scrubber = PatrolScrubber(weak_map, 4.0, 70.0, passes=1)
    with pytest.raises(ConfigurationError):
        scrubber.run(windows=0)
