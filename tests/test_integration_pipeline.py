"""End-to-end integration: framework facade -> figures -> CSV -> reload.

These tests exercise the whole pipeline through the highest-level API,
the way a downstream user would drive a study, and cross-check the
outputs against both the lower-level drivers and the persisted CSV.
"""

import pytest

from repro.core.framework import CharacterizationFramework
from repro.core.results import ResultStore
from repro.cpu.outcomes import RunOutcome
from repro.soc.xgene2 import build_reference_chips
from repro.workloads.spec import spec_suite


@pytest.fixture(scope="module")
def study():
    chips = list(build_reference_chips(seed=1).values())
    framework = CharacterizationFramework(chips, repetitions=5, seed=1)
    framework.declare_workloads(spec_suite())
    # Fleet characterization on each part's most robust core.
    framework.run()
    return framework


def test_facade_reproduces_figure4_ranges(study):
    """The fleet run through the facade must land on the paper's Fig. 4
    ranges, matching the dedicated experiment driver."""
    table = study.vmin_table()
    expected = {"TTT-ref": (860.0, 885.0), "TFF-ref": (870.0, 885.0),
                "TSS-ref": (870.0, 900.0)}
    for serial, (lo, hi) in expected.items():
        values = table[serial].values()
        assert min(values) == lo, serial
        assert max(values) == hi, serial


def test_facade_matches_experiment_driver(study):
    from repro.experiments.fig4_spec_vmin import run_figure4
    driver = run_figure4(seed=1, repetitions=5)
    table = study.vmin_table()
    for corner, serial in (("TTT", "TTT-ref"), ("TFF", "TFF-ref"),
                           ("TSS", "TSS-ref")):
        assert driver.vmin_mv[corner] == table[serial]


def test_csv_roundtrip_preserves_study(study, tmp_path):
    """Persist one part's store to disk and reload it losslessly."""
    store = study.studies["TTT-ref"].store
    path = tmp_path / "ttt.csv"
    count = store.write_csv(str(path))
    reloaded = ResultStore.from_csv_text(path.read_text())
    assert len(reloaded) == count == len(store)
    assert reloaded.benchmarks() == store.benchmarks()
    for benchmark in store.benchmarks():
        assert reloaded.voltages(benchmark) == store.voltages(benchmark)


def test_csv_outcomes_explain_vmin(study):
    """For each benchmark, every repetition at the reported safe Vmin is
    safe and the voltage below it holds the first failure."""
    table = study.vmin_table()["TTT-ref"]
    store = study.studies["TTT-ref"].store
    for benchmark, safe_vmin in table.items():
        safe_outcomes = store.outcomes(benchmark, safe_vmin)
        assert safe_outcomes, benchmark
        assert all(o.is_safe for o in safe_outcomes), benchmark
        below = [v for v in store.voltages(benchmark) if v < safe_vmin]
        if below:
            failing = store.outcomes(benchmark, max(below))
            assert any(not o.is_failure or o.is_failure for o in failing)
            assert any(not o.is_safe for o in failing), benchmark


def test_merged_csv_parsable_per_chip(study):
    text = study.merged_csv_text()
    lines = text.strip().splitlines()
    header = lines[0]
    assert header.split(",")[0] == "chip"
    # Strip the chip column and re-parse one part's rows.
    ttt_rows = [line.split(",", 1)[1] for line in lines[1:]
                if line.startswith("TTT-ref,")]
    body = header.split(",", 1)[1] + "\n" + "\n".join(ttt_rows)
    reloaded = ResultStore.from_csv_text(body)
    assert len(reloaded) == len(study.studies["TTT-ref"].store)


def test_results_survive_lossy_upload(study):
    """Figure 2's right-hand box: ship the study's raw rows to the cloud
    over a lossy network and re-derive the Vmin table from what arrived.
    At-least-once delivery + idempotent store = identical conclusions."""
    from repro.core.transport import CloudStore, NetworkLink, ResultUploader
    from repro.cpu.outcomes import RunOutcome

    source = study.studies["TTT-ref"].store
    cloud = CloudStore()
    link = NetworkLink(cloud, loss_rate=0.25, ack_loss_rate=0.1,
                       max_retries=32, seed=9)
    ok, failed = ResultUploader(link).upload(source)
    assert failed == 0
    received = cloud.to_store()
    assert len(received) == len(source)

    # Re-derive each benchmark's safe Vmin from the uploaded rows alone.
    for benchmark, expected_vmin in study.vmin_table()["TTT-ref"].items():
        safe = [v for v in received.voltages(benchmark)
                if all(RunOutcome(r.outcome).is_safe
                       for r in received.rows(benchmark=benchmark,
                                              voltage_mv=v))]
        assert min(safe) == expected_vmin, benchmark


def test_wall_time_reflects_recovery_cost(study):
    """Campaigns that descend into crashes accumulate recovery time:
    mean wall time of unsafe repetitions differs from clean ones."""
    store = study.studies["TTT-ref"].store
    clean = [r.wall_time_s for r in store.rows()
             if r.outcome == RunOutcome.CORRECT.value]
    dirty = [r.wall_time_s for r in store.rows()
             if r.outcome in (RunOutcome.CRASH.value, RunOutcome.HANG.value)]
    assert clean and dirty
    assert set(dirty) != set(clean)
