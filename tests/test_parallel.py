"""Determinism of the batched sampler and the process-parallel engine.

Three layers of guarantees, each locked down here:

- ``Chip.observe_runs``/``observe_run_block`` are draw-for-draw
  identical to looping the scalar ``observe_run`` with the same
  generator;
- ``ParallelCampaignExecutor`` produces bit-identical records and result
  rows at any worker count, matching a serial per-campaign loop;
- the sharded experiment drivers (``run_figure4``, ``run_table1``)
  return the same numbers at any ``jobs`` value.
"""

import numpy as np
import pytest

from repro.core.campaign import CampaignPlan
from repro.core.executor import CampaignExecutor
from repro.core.parallel import (
    ParallelCampaignExecutor,
    parallel_map,
    resolve_seed,
)
from repro.errors import CampaignError
from repro.experiments.fig4_spec_vmin import run_figure4
from repro.experiments.table1_weak_cells import _device_chunks, run_table1
from repro.rand import DEFAULT_SEED
from repro.soc.chip import FAILURE_ONSET_BAND_MV, Chip
from repro.soc.corners import ProcessCorner
from repro.soc.topology import CoreId
from repro.workloads.spec import spec_suite

REPS = 64


def _chip(seed=7):
    return Chip(ProcessCorner.TTT, seed=seed)


@pytest.mark.parametrize("offset_mv", [
    pytest.param(+20.0, id="safe"),
    pytest.param(+3.0, id="onset-band"),
    pytest.param(-10.0, id="mid-depth"),
    pytest.param(-60.0, id="deep-crash"),
])
def test_observe_runs_matches_scalar_loop(offset_mv):
    chip = _chip()
    core = CoreId(0, 0)
    swing = 0.5
    voltage = chip.vmin_mv(core, swing, 2.4) + offset_mv

    rng_a = np.random.default_rng(1234)
    rng_b = np.random.default_rng(1234)
    batched = chip.observe_runs(core, swing, voltage, 2.4, n=REPS, rng=rng_a)
    loop = [chip.observe_run(core, swing, voltage, 2.4, rng=rng_b)
            for _ in range(REPS)]
    assert batched == loop
    # Both paths must also leave the generators in the same state.
    assert rng_a.random() == rng_b.random()


def test_observe_run_block_matches_nested_loop():
    chip = _chip()
    cores = (CoreId(0, 0), CoreId(1, 0), CoreId(2, 1))
    swing = 0.55
    # Pick a voltage where at least one core is inside the onset band.
    voltage = min(chip.vmin_mv(c, swing, 2.4) for c in cores) + 2.0
    rng_a = np.random.default_rng(42)
    rng_b = np.random.default_rng(42)
    codes = chip.observe_run_block(cores, swing, voltage, 2.4,
                                   repetitions=REPS, rng=rng_a)
    assert codes.shape == (REPS, len(cores))
    from repro.soc.chip import CODE_FROM_OUTCOME
    for rep in range(REPS):
        for col, core in enumerate(cores):
            outcome = chip.observe_run(core, swing, voltage, 2.4, rng=rng_b)
            assert CODE_FROM_OUTCOME[outcome] == codes[rep, col], (rep, col)
    assert rng_a.random() == rng_b.random()


def test_safe_cores_draw_nothing():
    chip = _chip()
    core = CoreId(0, 0)
    voltage = chip.vmin_mv(core, 0.5, 2.4) + FAILURE_ONSET_BAND_MV + 1.0
    rng = np.random.default_rng(3)
    before = rng.bit_generator.state["state"]["state"]
    codes = chip.observe_run_block((core,), 0.5, voltage, 2.4,
                                   repetitions=REPS, rng=rng)
    assert not codes.any()
    assert rng.bit_generator.state["state"]["state"] == before


def _small_campaigns():
    plan = CampaignPlan()
    plan.add_workloads(spec_suite()[:4])
    plan.add_voltage_sweep(980.0, 840.0, 20.0, repetitions=3)
    return plan.build()


def _serial_reference(campaigns, seed):
    """Per-campaign serial loop: the semantics the parallel engine mirrors."""
    records, rows = [], []
    for campaign in campaigns:
        executor = CampaignExecutor(_chip(), seed=seed)
        records.append(executor.execute_campaign(campaign))
        rows.extend(executor.store.rows())
    return records, rows


@pytest.mark.parametrize("jobs", [1, 2, 4])
def test_parallel_rows_identical_to_serial(jobs):
    campaigns = _small_campaigns()
    serial_records, serial_rows = _serial_reference(campaigns, seed=11)
    engine = ParallelCampaignExecutor(_chip(), seed=11, jobs=jobs)
    parallel_records = engine.execute_campaigns(campaigns)
    assert engine.store.rows() == serial_rows
    for ours, reference in zip(parallel_records, serial_records):
        assert [r.counts for r in ours] == [r.counts for r in reference]
        assert [r.wall_time_s for r in ours] == [r.wall_time_s for r in reference]


def test_parallel_execute_all_flattens_in_order():
    campaigns = _small_campaigns()
    engine = ParallelCampaignExecutor(_chip(), seed=11, jobs=2)
    flat = engine.execute_all(campaigns)
    nested, _ = _serial_reference(campaigns, seed=11)
    assert [r.counts for r in flat] == \
        [r.counts for records in nested for r in records]


def test_parallel_map_preserves_order():
    assert parallel_map(str, [3, 1, 2], jobs=1) == ["3", "1", "2"]
    assert parallel_map(abs, [-5, -1, -3], jobs=2) == [5, 1, 3]


def test_resolve_seed_contract():
    assert resolve_seed(None) == DEFAULT_SEED
    assert resolve_seed(17) == 17
    with pytest.raises(CampaignError):
        resolve_seed(np.random.default_rng(0))
    with pytest.raises(CampaignError):
        ParallelCampaignExecutor(_chip(), seed=1, jobs=0)


def test_figure4_jobs_invariant():
    serial = run_figure4(seed=5, repetitions=2, jobs=1)
    sharded = run_figure4(seed=5, repetitions=2, jobs=2)
    assert serial.vmin_mv == sharded.vmin_mv
    assert serial.reports == sharded.reports


def test_table1_jobs_invariant():
    serial = run_table1(seed=5, sample_devices=6, regulate=False, jobs=1)
    sharded = run_table1(seed=5, sample_devices=6, regulate=False, jobs=3)
    assert serial.counts == sharded.counts
    assert serial.per_chip_totals == sharded.per_chip_totals
    assert serial.scrubs == sharded.scrubs


def test_device_chunks_cover_in_order():
    chunks = _device_chunks(10, 3)
    flat = [d for chunk in chunks for d in chunk]
    assert flat == list(range(10))
    assert _device_chunks(3, 8) == [(0,), (1,), (2,)]


def test_voltage_sweep_has_no_float_drift():
    plan = CampaignPlan()
    plan.add_workload(spec_suite()[0])
    plan.add_voltage_sweep(980.0, 970.0, 0.1, repetitions=1)
    voltages = [setup.voltage_mv for setup in plan.build()[0].setups()]
    assert len(voltages) == 101
    assert voltages[0] == 980.0
    assert voltages[-1] == 970.0
    # Every rung is exactly start - i*step: no accumulated error, so CSV
    # columns and RNG stream keys de-duplicate correctly.
    assert voltages == [980.0 - i * 0.1 for i in range(101)]


def test_experiment_registry_and_run_aliases():
    import repro.experiments as experiments
    assert set(experiments.REGISTRY) == {
        "fig4", "fig5", "fig6", "fig7", "table1",
        "fig8a", "fig8b", "fig9", "stencil", "multiprocess",
    }
    for name, driver in experiments.REGISTRY.items():
        assert callable(driver), name
    from repro.experiments import fig4_spec_vmin, table1_weak_cells
    assert fig4_spec_vmin.run is run_figure4
    assert table1_weak_cells.run is run_table1
    assert experiments.REGISTRY["fig4"] is run_figure4
