"""Result store and CSV round-trip."""

import pytest

from repro.core.results import ResultRow, ResultStore, result_fields
from repro.cpu.outcomes import RunOutcome
from repro.errors import CampaignError


def row(run_id=1, benchmark="mcf", voltage=900.0, rep=0,
        outcome="correct") -> ResultRow:
    return ResultRow(run_id=run_id, benchmark=benchmark, suite="spec2006",
                     voltage_mv=voltage, freq_ghz=2.4, cores="0",
                     repetition=rep, outcome=outcome, verdict="completed",
                     corrected_errors=0, uncorrected_errors=0,
                     wall_time_s=300.0)


def test_append_and_len():
    store = ResultStore()
    store.append(row())
    store.extend([row(rep=1), row(rep=2)])
    assert len(store) == 3


def test_filtered_queries():
    store = ResultStore()
    store.append(row(benchmark="mcf", voltage=900.0))
    store.append(row(benchmark="mcf", voltage=890.0))
    store.append(row(benchmark="gcc", voltage=900.0))
    assert len(store.rows(benchmark="mcf")) == 2
    assert len(store.rows(voltage_mv=900.0)) == 2
    assert len(store.rows(benchmark="mcf", voltage_mv=890.0)) == 1
    assert len(store.rows(predicate=lambda r: r.repetition == 0)) == 3


def test_outcomes_extraction():
    store = ResultStore()
    store.append(row(outcome="correct"))
    store.append(row(outcome="sdc", rep=1))
    outcomes = store.outcomes("mcf", 900.0)
    assert outcomes == [RunOutcome.CORRECT, RunOutcome.SDC]


def test_benchmarks_and_voltages_sorted():
    store = ResultStore()
    store.append(row(benchmark="milc", voltage=880.0))
    store.append(row(benchmark="gcc", voltage=900.0))
    store.append(row(benchmark="gcc", voltage=890.0))
    assert store.benchmarks() == ["gcc", "milc"]
    assert store.voltages("gcc") == [900.0, 890.0]  # descending


def test_csv_roundtrip():
    store = ResultStore()
    store.append(row())
    store.append(row(outcome="crash", rep=1, voltage=880.0))
    text = store.to_csv_text()
    parsed = ResultStore.from_csv_text(text)
    assert len(parsed) == 2
    assert parsed.rows()[1].outcome == "crash"
    assert parsed.rows()[1].voltage_mv == 880.0


def test_csv_header_schema():
    text = ResultStore().to_csv_text()
    header = text.splitlines()[0]
    assert header.split(",") == result_fields()


def test_csv_missing_columns_rejected():
    with pytest.raises(CampaignError):
        ResultStore.from_csv_text("a,b,c\n1,2,3\n")


def test_write_csv_to_disk(tmp_path):
    store = ResultStore()
    store.append(row())
    path = tmp_path / "results.csv"
    assert store.write_csv(str(path)) == 1
    assert path.read_text().startswith("run_id,")
