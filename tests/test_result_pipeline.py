"""The hardened result pipeline: global identity, fault equivalence,
checkpoint/resume.

The acceptance property of the fault harness: a pipeline run under *any*
seeded :class:`FaultPlan` -- worker kills, spurious watchdog
escalations, transport corruption/loss bursts, a study interruption --
converges to a cloud store bit-identical to the clean ``jobs=1`` run.
"""

import pytest

from repro.core.campaign import CampaignPlan
from repro.core.checkpoint import CampaignCheckpoint
from repro.core.executor import CampaignExecutor
from repro.core.faults import FaultInjector, FaultPlan
from repro.core.parallel import ParallelCampaignExecutor
from repro.core.transport import CloudStore, NetworkLink, ResultUploader, SerialLink
from repro.errors import CampaignInterrupted
from repro.experiments.pipeline import run_pipeline
from repro.experiments.table1_weak_cells import run_table1
from repro.soc.chip import Chip
from repro.soc.corners import ProcessCorner
from repro.workloads.spec import spec_suite

SEED = 11


def _chip():
    return Chip(ProcessCorner.TTT, seed=7)


def _campaigns(benchmarks=3):
    plan = CampaignPlan()
    plan.add_workloads(spec_suite()[:benchmarks])
    plan.add_voltage_sweep(980.0, 920.0, 20.0, repetitions=2)
    return plan.build()


def _clean_rows(campaigns):
    engine = ParallelCampaignExecutor(_chip(), seed=SEED, jobs=1)
    engine.execute_campaigns(campaigns)
    return engine.store.rows()


# ----------------------------------------------------------------------
# Global run identity
# ----------------------------------------------------------------------
def test_executor_stamps_global_run_key():
    chip = _chip()
    campaign = _campaigns(benchmarks=1)[0]
    executor = CampaignExecutor(chip, seed=SEED)
    executor.execute_campaign(campaign)
    for row in executor.store.rows():
        assert row.run_key.startswith(f"{chip.serial}/{campaign.name}/")
    # One key per run, shared by its repetitions.
    keys = {row.run_id: row.run_key for row in executor.store.rows()}
    assert len(set(keys.values())) == len(campaign.runs)


def test_colliding_run_ids_from_two_campaigns_both_reach_cloud():
    """Regression for the pipeline-wide bug: every campaign restarts its
    run_id counter, so cloud dedup on (run_id, repetition) dropped all
    but the first campaign."""
    campaigns = _campaigns(benchmarks=2)
    engine = ParallelCampaignExecutor(_chip(), seed=SEED, jobs=1)
    engine.execute_campaigns(campaigns)
    run_ids = [row.run_id for row in engine.store.rows()]
    assert len(set(run_ids)) < len(engine.store)   # ids do collide...
    cloud = CloudStore()
    link = NetworkLink(cloud, loss_rate=0.0, ack_loss_rate=0.0, seed=SEED)
    ok, failed = ResultUploader(link).upload(engine.store)
    assert failed == 0
    assert len(cloud) == len(engine.store)         # ...yet nothing is lost
    assert cloud.duplicates == 0


# ----------------------------------------------------------------------
# Fault equivalence: engine layer
# ----------------------------------------------------------------------
@pytest.mark.parametrize("fault_seed", [1, 2, 3])
def test_faulted_engine_rows_bit_identical_to_clean_run(fault_seed):
    campaigns = _campaigns()
    clean = _clean_rows(campaigns)
    plan = FaultPlan.random(fault_seed, shards=len(campaigns))
    injector = FaultInjector(plan)
    engine = ParallelCampaignExecutor(_chip(), seed=SEED, jobs=2,
                                      fault_injector=injector)
    engine.execute_campaigns(campaigns)
    assert engine.store.rows() == clean
    # The plan actually did something, or the test proves nothing.
    assert plan.shard_kills or plan.shard_escalations


# ----------------------------------------------------------------------
# Fault equivalence: full pipeline through both transports
# ----------------------------------------------------------------------
@pytest.mark.parametrize("transport", ["serial", "network"])
def test_faulted_transport_converges_to_clean_contents(transport):
    campaigns = _campaigns()
    clean = _clean_rows(campaigns)
    plan = FaultPlan.random(5, shards=len(campaigns), rows=len(clean),
                            max_depth=3)
    injector = FaultInjector(plan)
    engine = ParallelCampaignExecutor(_chip(), seed=SEED, jobs=2,
                                      fault_injector=injector)
    engine.execute_campaigns(campaigns)
    cloud = CloudStore()
    if transport == "serial":
        link = SerialLink(cloud, bit_error_rate=0.0, max_retries=4,
                          seed=SEED, fault_injector=injector)
    else:
        link = NetworkLink(cloud, loss_rate=0.0, ack_loss_rate=0.0,
                           max_retries=4, seed=SEED, fault_injector=injector)
    ok, failed = ResultUploader(link).upload(engine.store)
    assert failed == 0
    assert plan.max_transport_depth >= 1     # bursts were actually placed
    assert sorted(cloud.to_store().rows()) == sorted(clean)


def test_run_pipeline_driver_fault_equivalence():
    clean = run_pipeline(seed=9, benchmarks=2, repetitions=2, jobs=1)
    faulted = run_pipeline(seed=9, benchmarks=2, repetitions=2, jobs=3,
                           faults=77, transport="serial")
    assert clean.exactly_once and faulted.exactly_once
    assert faulted.store.rows() == clean.store.rows()
    assert faulted.store.to_csv_text() == clean.store.to_csv_text()
    assert faulted.fault_stats is not None and faulted.fault_stats.total > 0


# ----------------------------------------------------------------------
# Checkpoint/resume through the engine
# ----------------------------------------------------------------------
def test_interrupted_study_resumes_without_reexecution(tmp_path):
    campaigns = _campaigns()
    clean = _clean_rows(campaigns)
    checkpoint = CampaignCheckpoint(str(tmp_path))
    injector = FaultInjector(FaultPlan(interrupt_after_shards=1))
    engine = ParallelCampaignExecutor(_chip(), seed=SEED, jobs=1,
                                      fault_injector=injector,
                                      checkpoint=checkpoint)
    with pytest.raises(CampaignInterrupted):
        engine.execute_campaigns(campaigns)
    assert len(checkpoint.completed_shards()) == 1

    resumed = ParallelCampaignExecutor(_chip(), seed=SEED, jobs=2,
                                       checkpoint=checkpoint)
    records = resumed.execute_campaigns(campaigns)
    assert resumed.shards_resumed == 1
    assert resumed.shards_executed == len(campaigns) - 1
    assert resumed.store.rows() == clean          # bit-identical finish
    assert len(records) == len(campaigns)
    # Resumed records carry the same outcome counts as a live run.
    reference = ParallelCampaignExecutor(_chip(), seed=SEED, jobs=1)
    live = reference.execute_campaigns(campaigns)
    for ours, theirs in zip(records, live):
        assert [r.counts for r in ours] == [r.counts for r in theirs]
        assert [r.wall_time_s for r in ours] == \
            pytest.approx([r.wall_time_s for r in theirs])


def test_fully_checkpointed_study_executes_nothing(tmp_path):
    campaigns = _campaigns(benchmarks=2)
    checkpoint = CampaignCheckpoint(str(tmp_path))
    first = ParallelCampaignExecutor(_chip(), seed=SEED, jobs=2,
                                     checkpoint=checkpoint)
    first.execute_campaigns(campaigns)
    assert first.shards_executed == len(campaigns)

    second = ParallelCampaignExecutor(_chip(), seed=SEED, jobs=2,
                                      checkpoint=checkpoint)
    second.execute_campaigns(campaigns)
    assert second.shards_executed == 0
    assert second.shards_resumed == len(campaigns)
    assert second.store.rows() == first.store.rows()


def test_run_pipeline_interrupt_and_resume(tmp_path):
    """The --faults/--resume CLI flow end to end: an interrupted faulted
    study, resumed twice, lands the clean run's exact CSV."""
    clean = run_pipeline(seed=9, benchmarks=2, repetitions=2, jobs=1)

    # A plan that kills shard 0 once and interrupts after 1 completion.
    # (run_pipeline derives plans from a seed; drive the engine directly
    # for the interrupt, then finish with the driver's --resume path.)
    checkpoint_dir = str(tmp_path)
    from repro.experiments.pipeline import _declare_campaigns
    from repro.soc.xgene2 import build_reference_chips

    chip = build_reference_chips(seed=9)[ProcessCorner.TTT]
    campaigns = _declare_campaigns(2, 2, 980.0, 880.0, 20.0)
    injector = FaultInjector(FaultPlan(shard_kills=((0, 1),),
                                       interrupt_after_shards=1))
    engine = ParallelCampaignExecutor(chip, seed=9, jobs=2,
                                      fault_injector=injector,
                                      checkpoint=CampaignCheckpoint(
                                          checkpoint_dir))
    with pytest.raises(CampaignInterrupted):
        engine.execute_campaigns(campaigns)

    finished = run_pipeline(seed=9, benchmarks=2, repetitions=2, jobs=2,
                            resume_dir=checkpoint_dir)
    assert finished.shards_resumed >= 1
    assert finished.exactly_once
    assert finished.store.to_csv_text() == clean.store.to_csv_text()


# ----------------------------------------------------------------------
# Sharded experiment drivers under injected faults
# ----------------------------------------------------------------------
def test_table1_faults_invariant():
    clean = run_table1(seed=5, sample_devices=6, regulate=False, jobs=1)
    faulted = run_table1(seed=5, sample_devices=6, regulate=False, jobs=3,
                         faults=21)
    assert clean.counts == faulted.counts
    assert clean.per_chip_totals == faulted.per_chip_totals
    assert clean.scrubs == faulted.scrubs
