"""Descending-ladder Vmin search."""

import pytest

from repro.core.executor import CampaignExecutor
from repro.core.vmin import VminSearch
from repro.errors import SearchError
from repro.soc.chip import Chip
from repro.soc.corners import ProcessCorner
from repro.workloads.spec import spec_workload


def test_search_brackets_true_vmin(ttt_search, ttt_chip):
    workload = spec_workload("milc")
    core = ttt_chip.strongest_core()
    result = ttt_search.search(workload, cores=(core,))
    true_vmin = ttt_chip.vmin_mv(core, workload.resonant_swing)
    assert result.safe_vmin_mv >= true_vmin
    assert result.safe_vmin_mv - true_vmin < ttt_search.step_mv
    assert result.first_unsafe_mv is not None
    assert result.first_unsafe_mv < true_vmin


def test_search_matches_figure4_bins(ttt_search, ttt_chip):
    core = ttt_chip.strongest_core()
    expect = {"mcf": 860.0, "gcc": 865.0, "milc": 885.0, "bwaves": 885.0}
    for name, target in expect.items():
        result = ttt_search.search(spec_workload(name), cores=(core,))
        assert result.safe_vmin_mv == target, name


def test_guardband_and_power_reduction(ttt_search, ttt_chip):
    core = ttt_chip.strongest_core()
    result = ttt_search.search(spec_workload("milc"), cores=(core,))
    assert result.guardband_mv == pytest.approx(980.0 - 885.0)
    assert result.power_reduction_fraction == pytest.approx(
        1.0 - (885.0 / 980.0) ** 2)


def test_search_suite_covers_all(ttt_search, ttt_chip):
    core = ttt_chip.strongest_core()
    suite = [spec_workload("mcf"), spec_workload("milc")]
    results = ttt_search.search_suite(suite, cores=(core,))
    assert [r.workload for r in results] == ["mcf", "milc"]
    assert results[0].safe_vmin_mv < results[1].safe_vmin_mv


def test_wall_time_accumulates(ttt_search):
    result = ttt_search.search(spec_workload("mcf"))
    assert result.campaign_wall_time_s > 0


def test_search_records_every_probed_voltage(ttt_search):
    result = ttt_search.search(spec_workload("mcf"))
    voltages = [rec.run.setup.voltage_mv for rec in result.records]
    assert voltages == sorted(voltages, reverse=True)
    assert voltages[0] == 980.0


def test_search_respects_floor():
    chip = Chip(ProcessCorner.TTT, seed=1, jitter_sigma_mv=0.0)
    executor = CampaignExecutor(chip, seed=1)
    search = VminSearch(executor, floor_mv=960.0, repetitions=2)
    result = search.search(spec_workload("mcf"))
    assert result.safe_vmin_mv == 960.0
    assert result.first_unsafe_mv is None


def test_invalid_search_config(ttt_executor):
    with pytest.raises(SearchError):
        VminSearch(ttt_executor, step_mv=0.0)
    with pytest.raises(SearchError):
        VminSearch(ttt_executor, floor_mv=990.0)


def test_search_deterministic(ttt_chip):
    def run():
        executor = CampaignExecutor(ttt_chip, seed=3)
        return VminSearch(executor, repetitions=5).search(
            spec_workload("namd"), cores=(ttt_chip.strongest_core(),))
    assert run().safe_vmin_mv == run().safe_vmin_mv
