"""Property-based tests of the GA operators (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.cpu.isa import GA_ALPHABET, InstrClass
from repro.cpu.kernels import MAX_LOOP_LEN, MIN_LOOP_LEN, InstructionLoop
from repro.viruses.genetic import GaConfig, GeneticAlgorithm
import pytest

#: Heavy module: deselected from the smoke tier (``pytest -m "not slow"``).
pytestmark = pytest.mark.slow


instr = st.sampled_from(list(InstrClass))
loop_bodies = st.lists(instr, min_size=MIN_LOOP_LEN, max_size=64)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


def make_ga(seed: int) -> GeneticAlgorithm:
    return GeneticAlgorithm(lambda loop: 0.0,
                            config=GaConfig(population_size=8, generations=1),
                            seed=seed)


@given(a=loop_bodies, b=loop_bodies, seed=seeds)
@settings(max_examples=300, deadline=None)
def test_crossover_preserves_legality_and_genes(a, b, seed):
    ga = make_ga(seed)
    child = ga._crossover(InstructionLoop.of(a), InstructionLoop.of(b))
    assert MIN_LOOP_LEN <= len(child) <= MAX_LOOP_LEN
    # Every gene in the child came from one of the parents' alphabets.
    parent_genes = set(a) | set(b)
    assert set(child.body) <= parent_genes


@given(body=loop_bodies, seed=seeds)
@settings(max_examples=300, deadline=None)
def test_mutation_preserves_legality(body, seed):
    ga = make_ga(seed)
    mutated = ga._mutate(InstructionLoop.of(body))
    assert MIN_LOOP_LEN <= len(mutated) <= MAX_LOOP_LEN
    assert set(mutated.body) <= set(GA_ALPHABET)


@given(body=loop_bodies, seed=seeds)
@settings(max_examples=200, deadline=None)
def test_mutation_bounded_length_change(body, seed):
    """Mutation inserts/deletes at most one gene per call."""
    ga = make_ga(seed)
    mutated = ga._mutate(InstructionLoop.of(body))
    assert abs(len(mutated) - len(body)) <= 1


@given(seed=seeds)
@settings(max_examples=100, deadline=None)
def test_random_loops_legal(seed):
    ga = make_ga(seed)
    loop = ga._random_loop()
    assert MIN_LOOP_LEN <= len(loop) <= MAX_LOOP_LEN
    assert set(loop.body) <= set(GA_ALPHABET)


@given(seed=seeds)
@settings(max_examples=50, deadline=None)
def test_tournament_never_beats_best(seed):
    """Tournament selection returns a member, at most the best one."""
    from repro.viruses.genetic import Individual
    ga = make_ga(seed)
    population = [
        Individual(InstructionLoop.of([InstrClass.NOP] * (2 + i)), float(i))
        for i in range(8)
    ]
    winner = ga._tournament(population)
    assert winner in population
    assert winner.fitness <= max(ind.fitness for ind in population)
