"""Serial/batched equivalence of the EM-fitness pipeline.

The batched pipeline's contract is *bit-identity*: batching is purely an
execution strategy, never a numerics change. These tests pin down every
layer of that contract -- stacked spectral measurement vs serial reads,
the counter-based noise protocol under interleaving, blocked waveform
synthesis vs the profile path, batch-mode GA runs vs serial runs, and
process-sharded searches at any worker count.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.parallel import parallel_map
from repro.cpu.execution import ExecutionModel
from repro.cpu.isa import GA_ALPHABET
from repro.cpu.kernels import InstructionLoop
from repro.pdn.em import EmSensor
from repro.viruses.didt import (
    DidtSearch,
    didt_search_unit,
    random_search_baseline,
)
from repro.viruses.genetic import GaConfig

seeds = st.integers(min_value=0, max_value=2**31 - 1)


def _random_waveforms(seed: int, count: int, n: int = 256) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.random((count, n))


def _random_loops(seed: int, count: int) -> list:
    rng = np.random.default_rng(seed)
    return [
        InstructionLoop.of([GA_ALPHABET[int(g)] for g in
                            rng.integers(len(GA_ALPHABET), size=24)])
        for _ in range(count)
    ]


# ----------------------------------------------------------------------
# Sensor layer
# ----------------------------------------------------------------------
@given(seed=seeds, count=st.integers(1, 6), repeats=st.integers(1, 4))
@settings(max_examples=60, deadline=None)
def test_measure_block_matches_serial_bit_for_bit(seed, count, repeats):
    waveforms = _random_waveforms(seed, count)
    serial_sensor = EmSensor(seed=seed)
    block_sensor = EmSensor(seed=seed)
    serial = [serial_sensor.measure_averaged(w, 2.4, repeats=repeats)
              for w in waveforms]
    block = block_sensor.measure_block(waveforms, 2.4, repeats=repeats)
    assert len(block) == count
    for a, b in zip(serial, block):
        assert a.amplitude == b.amplitude
        assert a.peak_freq_hz == b.peak_freq_hz


def test_measure_block_single_repeat_matches_measure():
    waveforms = _random_waveforms(7, 4)
    serial_sensor = EmSensor(seed=7)
    block_sensor = EmSensor(seed=7)
    serial = [serial_sensor.measure(w, 2.4) for w in waveforms]
    block = block_sensor.measure_block(waveforms, 2.4, repeats=1)
    assert [r.amplitude for r in serial] == [r.amplitude for r in block]


def test_counter_protocol_survives_interleaving():
    """A block of N consumes the same counters as N serial measurements,
    so mixed serial/block call sequences stay aligned."""
    waveforms = _random_waveforms(11, 3)
    serial_sensor = EmSensor(seed=3)
    mixed_sensor = EmSensor(seed=3)
    serial = [serial_sensor.measure_averaged(w, 2.4, repeats=2)
              for w in waveforms]
    mixed = mixed_sensor.measure_block(waveforms[:2], 2.4, repeats=2)
    mixed.append(mixed_sensor.measure_averaged(waveforms[2], 2.4, repeats=2))
    assert [r.amplitude for r in serial] == [r.amplitude for r in mixed]


def test_peak_freq_is_noise_free_and_repeat_invariant():
    """Satellite fix: the reported resonance comes from the noise-free
    spectrum, so it cannot depend on how many reads were averaged."""
    waveform = _random_waveforms(5, 1)[0]
    one = EmSensor(seed=9).measure_averaged(waveform, 2.4, repeats=1)
    many = EmSensor(seed=9).measure_averaged(waveform, 2.4, repeats=8)
    assert one.peak_freq_hz == many.peak_freq_hz


def test_measure_block_validates_repeats():
    from repro.errors import ConfigurationError
    with pytest.raises(ConfigurationError):
        EmSensor().measure_block(np.ones((2, 128)), 2.4, repeats=0)


# ----------------------------------------------------------------------
# Execution layer
# ----------------------------------------------------------------------
def test_waveform_block_rows_match_profile():
    loops = _random_loops(2, 5)
    model = ExecutionModel(window_cycles=1024)
    block = model.waveform_block(loops)
    assert block.shape == (5, 1024)
    for row, loop in zip(block, loops):
        assert np.array_equal(row, model.profile(loop).waveform)


def test_waveform_block_empty():
    model = ExecutionModel(window_cycles=1024)
    assert model.waveform_block([]).shape == (0, 1024)


# ----------------------------------------------------------------------
# GA layer
# ----------------------------------------------------------------------
@pytest.mark.slow
@given(seed=seeds)
@settings(max_examples=20, deadline=None)
def test_ga_batch_run_reproduces_serial_result(seed):
    config = GaConfig(population_size=8, generations=2)
    batched = DidtSearch(config=config, seed=seed).run(batch=True)
    serial = DidtSearch(config=config, seed=seed).run(batch=False)
    virus_b, result_b = batched
    virus_s, result_s = serial
    assert result_b.best == result_s.best
    assert result_b.history == result_s.history
    assert result_b.evaluations == result_s.evaluations
    assert virus_b == virus_s


def test_batch_fitness_dedups_but_noise_stays_per_eval():
    """Duplicate genomes share one deterministic evaluation yet still
    get independent noise draws -- exactly as a serial evaluator."""
    loop = _random_loops(4, 1)[0]
    search = DidtSearch(seed=21)
    batch = search.fitness.batch([loop, loop, loop])
    serial_search = DidtSearch(seed=21)
    serial = [serial_search.fitness(loop) for _ in range(3)]
    assert batch == serial
    assert len(set(batch)) == 3  # distinct noise per evaluation


def test_random_search_invariant_to_batch_size():
    small = random_search_baseline(seed=13, evaluations=60, batch_size=5)
    large = random_search_baseline(seed=13, evaluations=60, batch_size=64)
    assert small == large


# ----------------------------------------------------------------------
# Process-sharding layer
# ----------------------------------------------------------------------
@pytest.mark.slow
def test_sharded_searches_bit_identical_at_any_jobs():
    tasks = [(101, 3, 8, 3), (202, 3, 8, 3)]
    inline = parallel_map(didt_search_unit, tasks, jobs=1)
    pooled = parallel_map(didt_search_unit, tasks, jobs=2)
    assert inline == pooled


@pytest.mark.slow
def test_fig7_result_identical_at_any_jobs():
    from repro.experiments.fig7_interchip import run_figure7
    serial = run_figure7(seed=77, repetitions=3, generations=3, population=8)
    pooled = run_figure7(seed=77, repetitions=3, generations=3, population=8,
                         jobs=3)
    assert serial == pooled
