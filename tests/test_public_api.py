"""Public API surface: the names the README documents must exist."""

import repro


def test_version_string():
    assert repro.__version__.count(".") == 2


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_quickstart_flow_minimal():
    """The shortest end-to-end use: chip -> executor -> Vmin search."""
    chip = repro.build_reference_chips(seed=1)[repro.ProcessCorner.TTT]
    executor = repro.CampaignExecutor(chip, seed=1)
    search = repro.VminSearch(executor, repetitions=3)
    result = search.search(repro.spec_suite()[0],
                           cores=(chip.strongest_core(),))
    assert 850.0 < result.safe_vmin_mv < 980.0


def test_experiment_entry_points_importable():
    from repro.experiments import (
        run_figure4, run_figure5, run_figure6, run_figure7,
        run_figure8a, run_figure8b, run_figure9, run_stencil_study,
        run_table1,
    )
    assert callable(run_figure4) and callable(run_table1)


def test_subpackage_docstrings_present():
    import repro.core
    import repro.dram
    import repro.pdn
    import repro.soc
    import repro.thermal
    import repro.viruses
    import repro.workloads
    for module in (repro, repro.core, repro.dram, repro.pdn, repro.soc,
                   repro.thermal, repro.viruses, repro.workloads):
        assert module.__doc__ and len(module.__doc__) > 50
