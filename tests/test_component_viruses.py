"""Component-isolating micro-viruses."""


from repro.cpu.faults import FaultSite
from repro.cpu.isa import spec_of
from repro.viruses.components import (
    TargetComponent,
    all_component_viruses,
    component_virus,
)


def test_full_suite_present():
    suite = all_component_viruses()
    assert set(suite) == set(TargetComponent)


def test_l1d_virus_is_memory_resident():
    virus = component_virus(TargetComponent.L1D)
    mem = sum(1 for k in virus.loop if spec_of(k).touches_memory)
    assert mem / len(virus.loop) > 0.9
    assert virus.fault_site is FaultSite.L1D_DATA


def test_l1i_virus_is_branch_heavy_fetch_pressure():
    virus = component_virus(TargetComponent.L1I)
    branches = sum(1 for k in virus.loop if k.value == "branch")
    assert branches >= len(virus.loop) / 4
    assert virus.fault_site is FaultSite.L1I_DATA


def test_l2_virus_misses_l1():
    virus = component_virus(TargetComponent.L2)
    l2_loads = sum(1 for k in virus.loop if k.value == "load_l2")
    assert l2_loads > 0
    assert virus.fault_site is FaultSite.L2_DATA


def test_fp_virus_saturates_fp_unit():
    virus = component_virus(TargetComponent.FP_ALU)
    fp = sum(1 for k in virus.loop if spec_of(k).uses_fp)
    assert fp == len(virus.loop)
    assert virus.fault_site is FaultSite.FP_DATAPATH


def test_int_virus_avoids_fp_and_memory():
    virus = component_virus(TargetComponent.INT_ALU)
    for k in virus.loop:
        assert not spec_of(k).uses_fp
        assert not spec_of(k).touches_memory


def test_datapath_viruses_have_high_sdc_bias():
    """ALU failures are unprotected -> mostly silent corruption."""
    suite = all_component_viruses()
    cache_bias = max(suite[t].sdc_bias for t in
                     (TargetComponent.L1I, TargetComponent.L1D, TargetComponent.L2))
    alu_bias = min(suite[t].sdc_bias for t in
                   (TargetComponent.INT_ALU, TargetComponent.FP_ALU))
    assert alu_bias > cache_bias


def test_virus_names_unique():
    names = [v.name for v in all_component_viruses().values()]
    assert len(names) == len(set(names))


def test_fault_classification_consistency():
    """Each virus's fault site maps to a plausible outcome class."""
    from repro.cpu.faults import FaultEvent, classify_fault
    from repro.cpu.outcomes import RunOutcome
    suite = all_component_viruses()
    assert classify_fault(FaultEvent(suite[TargetComponent.L1D].fault_site, 1)) \
        is RunOutcome.CORRECTED_ERROR
    assert classify_fault(FaultEvent(suite[TargetComponent.FP_ALU].fault_site, 1)) \
        is RunOutcome.SDC
