"""Thermal plant, PID, relay and sensors."""

import pytest

from repro.errors import ConfigurationError
from repro.thermal.pid import PidController, PidGains
from repro.thermal.plant import PlantParams, ThermalPlant
from repro.thermal.relay import SolidStateRelay
from repro.thermal.sensors import SpdSensor, Thermocouple


# ----------------------------------------------------------------------
# Plant
# ----------------------------------------------------------------------
def test_plant_starts_at_ambient():
    plant = ThermalPlant(ambient_c=28.0)
    assert plant.temperature_c == 28.0


def test_plant_converges_to_steady_state():
    plant = ThermalPlant(ambient_c=28.0)
    plant.set_heater(10.0)
    for _ in range(100):
        plant.step(10.0)
    expected = plant.params.steady_state_c(10.0, 28.0)
    assert plant.temperature_c == pytest.approx(expected, abs=0.01)


def test_plant_cools_without_heat():
    plant = ThermalPlant(ambient_c=28.0, initial_c=80.0)
    plant.step(1000.0)
    target = plant.params.steady_state_c(0.0, 28.0)
    assert plant.temperature_c == pytest.approx(target, abs=0.1)


def test_plant_heater_clamped_to_rating():
    plant = ThermalPlant()
    plant.set_heater(1000.0)
    assert plant.heater_w == plant.params.heater_max_w


def test_plant_has_headroom_for_60c():
    params = PlantParams()
    assert params.steady_state_c(params.heater_max_w, 28.0) > 70.0


def test_plant_negative_inputs_rejected():
    plant = ThermalPlant()
    with pytest.raises(ConfigurationError):
        plant.set_heater(-1.0)
    with pytest.raises(ConfigurationError):
        plant.step(-1.0)


def test_exponential_step_is_exact():
    """Large steps give the same endpoint as many small ones."""
    a = ThermalPlant(ambient_c=28.0)
    b = ThermalPlant(ambient_c=28.0)
    a.set_heater(15.0)
    b.set_heater(15.0)
    a.step(100.0)
    for _ in range(100):
        b.step(1.0)
    assert a.temperature_c == pytest.approx(b.temperature_c, abs=1e-9)


# ----------------------------------------------------------------------
# PID
# ----------------------------------------------------------------------
def test_pid_output_clamped():
    pid = PidController(setpoint_c=60.0)
    assert pid.update(20.0, 1.0) <= 1.0
    pid2 = PidController(setpoint_c=20.0)
    assert pid2.update(90.0, 1.0) >= 0.0


def test_pid_drives_plant_to_setpoint():
    plant = ThermalPlant(ambient_c=28.0)
    pid = PidController(setpoint_c=60.0)
    for _ in range(600):
        duty = pid.update(plant.temperature_c, 2.0)
        plant.set_heater(duty * plant.params.heater_max_w)
        plant.step(2.0)
    assert plant.temperature_c == pytest.approx(60.0, abs=1.0)


def test_pid_setpoint_change_resets_state():
    pid = PidController(setpoint_c=50.0)
    pid.update(30.0, 1.0)
    pid.set_setpoint(60.0)
    assert pid.setpoint_c == 60.0
    assert pid._integral == 0.0


def test_pid_invalid_step_rejected():
    pid = PidController(setpoint_c=50.0)
    with pytest.raises(ConfigurationError):
        pid.update(40.0, 0.0)


def test_pid_gains_validation():
    with pytest.raises(ConfigurationError):
        PidGains(kp=-1.0)
    with pytest.raises(ConfigurationError):
        PidGains(output_min=1.0, output_max=0.0)


# ----------------------------------------------------------------------
# Relay
# ----------------------------------------------------------------------
def test_relay_power_proportional_to_duty():
    relay = SolidStateRelay(max_power_w=40.0)
    assert relay.command(0.5) == pytest.approx(20.0)
    assert relay.average_power_w() == pytest.approx(20.0)


def test_relay_min_dwell_snaps_small_duty_to_zero():
    relay = SolidStateRelay(max_power_w=40.0, window_s=2.0, min_dwell_s=0.1)
    assert relay.command(0.01) == 0.0


def test_relay_near_full_duty_snaps_to_one():
    relay = SolidStateRelay(max_power_w=40.0, window_s=2.0, min_dwell_s=0.1)
    assert relay.command(0.99) == pytest.approx(40.0)


def test_relay_duty_out_of_range_rejected():
    relay = SolidStateRelay()
    with pytest.raises(ConfigurationError):
        relay.command(1.5)


def test_relay_counts_switch_cycles():
    relay = SolidStateRelay()
    relay.command(0.5)
    relay.command(0.6)
    relay.command(0.0)
    assert relay.switch_cycles == 2


# ----------------------------------------------------------------------
# Sensors
# ----------------------------------------------------------------------
def test_thermocouple_bias_and_noise():
    tc = Thermocouple(source=lambda: 50.0, noise_c=0.0, bias_c=0.3, seed=1)
    assert tc.read_c() == pytest.approx(50.3)


def test_thermocouple_noise_varies_reads():
    tc = Thermocouple(source=lambda: 50.0, noise_c=0.2, seed=1)
    assert len({tc.read_c() for _ in range(10)}) > 1


def test_spd_sensor_quantizes():
    spd = SpdSensor(source=lambda: 50.13)
    assert spd.read_c(0.0) == pytest.approx(50.25)


def test_spd_sensor_rate_limited():
    truth = [50.0]
    spd = SpdSensor(source=lambda: truth[0], update_period_s=1.0)
    assert spd.read_c(0.0) == 50.0
    truth[0] = 60.0
    assert spd.read_c(0.5) == 50.0
    assert spd.read_c(1.5) == 60.0


def test_spd_sensor_seeded_at_construction():
    """A poll before the first update period must return the power-on
    reading, never a stale 0.0 register default."""
    truth = [47.6]
    spd = SpdSensor(source=lambda: truth[0], update_period_s=1.0)
    truth[0] = 80.0  # the die moved after power-on
    assert spd.read_c(0.25) == pytest.approx(47.5)  # quantized power-on value
    assert spd.read_c(1.5) == pytest.approx(80.0)
