"""Run-log classification (the parsing phase)."""

import pytest

from repro.core.classify import OutcomeCounts, RunLog, classify_run_log, summarize
from repro.cpu.outcomes import RunOutcome
from repro.errors import CampaignError


def log(exited=True, responded=True, ce=0, ue=0, golden=True) -> RunLog:
    return RunLog(exited_cleanly=exited, responded_to_watchdog=responded,
                  corrected_errors=ce, uncorrected_errors=ue,
                  output_matches_golden=golden)


def test_clean_run_is_correct():
    assert classify_run_log(log()) is RunOutcome.CORRECT


def test_hang_outranks_everything():
    assert classify_run_log(log(exited=False, responded=False, ue=3,
                                golden=False)) is RunOutcome.HANG


def test_dirty_exit_is_crash():
    assert classify_run_log(log(exited=False)) is RunOutcome.CRASH


def test_ue_outranks_sdc():
    assert classify_run_log(log(ue=1, golden=False)) is \
        RunOutcome.UNCORRECTED_ERROR


def test_sdc_requires_escaped_corruption():
    assert classify_run_log(log(golden=False)) is RunOutcome.SDC


def test_ce_with_matching_output():
    assert classify_run_log(log(ce=2)) is RunOutcome.CORRECTED_ERROR


def test_no_output_check_counts_as_correct_when_clean():
    assert classify_run_log(log(golden=None)) is RunOutcome.CORRECT


def test_negative_counts_rejected():
    with pytest.raises(CampaignError):
        RunLog(True, True, -1, 0, True)


def test_summarize_histogram():
    counts = summarize([RunOutcome.CORRECT, RunOutcome.CORRECT,
                        RunOutcome.SDC, RunOutcome.CRASH])
    assert counts.total == 4
    assert counts.of(RunOutcome.CORRECT) == 2
    assert counts.of(RunOutcome.SDC) == 1
    assert counts.failure_rate == pytest.approx(0.5)


def test_all_safe_property():
    safe = summarize([RunOutcome.CORRECT, RunOutcome.CORRECTED_ERROR])
    assert safe.all_safe
    unsafe = summarize([RunOutcome.CORRECT, RunOutcome.SDC])
    assert not unsafe.all_safe


def test_empty_counts():
    counts = OutcomeCounts()
    assert counts.total == 0
    assert counts.failure_rate == 0.0
    assert counts.all_safe


def test_as_row_covers_all_outcomes():
    counts = summarize([RunOutcome.HANG])
    row = counts.as_row()
    assert set(row) == {o.value for o in RunOutcome}
    assert row["hang"] == 1
    assert row["correct"] == 0
