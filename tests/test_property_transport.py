"""Property-based tests of the result transport codec (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.core.results import ResultRow
from repro.core.transport import CloudStore, decode_row, encode_row
import pytest

#: Heavy module: deselected from the smoke tier (``pytest -m "not slow"``).
pytestmark = pytest.mark.slow


# Text fields may carry anything a benchmark label or run signature can
# hold -- including CSV delimiters, quotes, newlines and the serial
# frame's '|' separator.
field_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), max_size=40)
finite_floats = st.floats(allow_nan=False, width=64)
counts = st.integers(min_value=0, max_value=2**31 - 1)


@st.composite
def result_rows(draw):
    return ResultRow(
        run_id=draw(counts),
        benchmark=draw(field_text),
        suite=draw(field_text),
        voltage_mv=draw(finite_floats),
        freq_ghz=draw(finite_floats),
        cores=draw(field_text),
        repetition=draw(counts),
        outcome=draw(field_text),
        verdict=draw(field_text),
        corrected_errors=draw(counts),
        uncorrected_errors=draw(counts),
        wall_time_s=draw(finite_floats),
        run_key=draw(field_text),
    )


@given(row=result_rows())
@settings(max_examples=300, deadline=None)
def test_codec_roundtrips_any_row(row):
    assert decode_row(encode_row(row)) == row


@given(row=result_rows())
@settings(max_examples=200, deadline=None)
def test_encoded_row_is_single_line_frame_payload(row):
    """The serial link frames one encoded row per frame; the payload
    must always parse back to exactly one record, whatever the fields
    contain (embedded newlines stay inside CSV quotes)."""
    assert decode_row(encode_row(row)) == row
    doubled = encode_row(row) + "\r\n" + encode_row(row)
    with pytest.raises(Exception):
        decode_row(doubled)


@given(rows=st.lists(result_rows(), max_size=20),
       dup_mask=st.lists(st.booleans(), max_size=20))
@settings(max_examples=150, deadline=None)
def test_cloud_store_is_idempotent_under_any_replay(rows, dup_mask):
    cloud = CloudStore()
    sends = 0
    for index, row in enumerate(rows):
        cloud.receive(row)
        sends += 1
        if index < len(dup_mask) and dup_mask[index]:
            cloud.receive(row)     # replayed retransmission
            sends += 1
    unique = {CloudStore.key_of(row) for row in rows}
    assert len(cloud) == len(unique)
    assert cloud.duplicates == sends - len(unique)
    materialized = cloud.to_store().rows()
    assert len(materialized) == len(unique)
    assert {CloudStore.key_of(row) for row in materialized} == unique
