"""Integration: the end-to-end Jammer exploitation pipeline (Figure 9)."""

import pytest

from repro.experiments.fig9_jammer import (
    PAPER_DOMAIN_SAVINGS_PCT,
    PAPER_TOTAL_NOMINAL_W,
    PAPER_TOTAL_SCALED_W,
    run_figure9,
)

#: Heavy module: deselected from the smoke tier (``pytest -m "not slow"``).
pytestmark = pytest.mark.slow

SEED = 1


@pytest.fixture(scope="module")
def fig9():
    return run_figure9(seed=SEED, repetitions=5)


@pytest.fixture(scope="module")
def fig9_published():
    """Same pipeline but programming the paper's published point."""
    return run_figure9(seed=SEED, characterize=False)


def test_derived_point_matches_paper(fig9):
    assert fig9.point.pmd_mv == 930.0
    assert fig9.point.soc_mv == 920.0
    assert fig9.point.trefp_s == pytest.approx(2.283)


def test_total_power_shape(fig9):
    assert fig9.power.total_nominal_w == pytest.approx(PAPER_TOTAL_NOMINAL_W, abs=0.3)
    assert fig9.power.total_scaled_w == pytest.approx(PAPER_TOTAL_SCALED_W, abs=0.5)
    assert fig9.power.total_savings_pct == pytest.approx(20.2, abs=1.0)


def test_domain_savings_shape(fig9):
    for domain, target in PAPER_DOMAIN_SAVINGS_PCT.items():
        assert fig9.power.domain_savings_pct(domain) == \
            pytest.approx(target, abs=1.5), domain


def test_dram_largest_relative_savings(fig9):
    """The paper: DRAM saves the most (33.3 %), SoC the least (6.9 %)."""
    savings = {d: fig9.power.domain_savings_pct(d) for d in ("PMD", "SoC", "DRAM")}
    assert max(savings, key=savings.get) == "DRAM"
    assert min(savings, key=savings.get) == "SoC"


def test_qos_maintained(fig9):
    assert fig9.qos_met
    assert fig9.detection.detection_rate == 1.0


def test_published_point_agrees_with_derived(fig9, fig9_published):
    assert fig9_published.point.pmd_mv == fig9.point.pmd_mv
    assert fig9_published.power.total_scaled_w == \
        pytest.approx(fig9.power.total_scaled_w, abs=0.01)


def test_format_renders(fig9):
    text = fig9.format()
    assert "930" in text and "QoS" in text
