"""Chip behavioural model: oracle Vmin and sampled run outcomes."""


from repro.cpu.outcomes import RunOutcome
from repro.rand import make_rng
from repro.soc.chip import (
    Chip,
    FAILURE_ONSET_BAND_MV,
    HARD_CRASH_DEPTH_MV,
)
from repro.soc.corners import ProcessCorner
from repro.soc.topology import CoreId


def test_reference_ttt_vmin_oracle(ttt_chip):
    core = ttt_chip.strongest_core()
    # milc (swing 0.595) on the most robust core: Figure 4's 885 mV bin.
    vmin = ttt_chip.vmin_mv(core, 0.595)
    assert 880.0 < vmin <= 885.0
    # mcf (swing 0.28): the 860 mV bin.
    vmin = ttt_chip.vmin_mv(core, 0.28)
    assert 855.0 < vmin <= 860.0


def test_vmin_monotonic_in_swing(ttt_chip):
    core = CoreId(0, 0)
    values = [ttt_chip.vmin_mv(core, s) for s in (0.1, 0.3, 0.5, 0.7, 1.0)]
    assert values == sorted(values)


def test_vmin_lower_at_lower_frequency(ttt_chip):
    core = CoreId(0, 0)
    assert ttt_chip.vmin_mv(core, 0.5, freq_ghz=1.2) < \
        ttt_chip.vmin_mv(core, 0.5, freq_ghz=2.4)


def test_strongest_core_is_lowest_offset(ttt_chip):
    strongest = ttt_chip.strongest_core()
    offsets = [ttt_chip.core_offset_mv(CoreId.from_linear(i)) for i in range(8)]
    assert ttt_chip.core_offset_mv(strongest) == min(offsets)


def test_weakest_cores_count_and_order(ttt_chip):
    weakest = ttt_chip.weakest_cores(2)
    assert len(weakest) == 2
    # Reference TTT part: the two weakest cores live on PMD 0.
    assert all(core.pmd == 0 for core in weakest)


def test_guardband_positive_for_workloads(ttt_chip):
    core = ttt_chip.strongest_core()
    assert ttt_chip.guardband_mv(core, 0.595) > 0


def test_observe_run_safe_above_vmin(ttt_chip):
    core = CoreId(0, 0)
    vmin = ttt_chip.vmin_mv(core, 0.4)
    outcome = ttt_chip.observe_run(core, 0.4, vmin + FAILURE_ONSET_BAND_MV + 5)
    assert outcome is RunOutcome.CORRECT


def test_observe_run_fails_below_vmin(ttt_chip):
    core = CoreId(0, 0)
    vmin = ttt_chip.vmin_mv(core, 0.4)
    rng = make_rng(9)
    outcomes = {ttt_chip.observe_run(core, 0.4, vmin - 5.0, rng=rng)
                for _ in range(50)}
    assert all(not o.is_safe for o in outcomes)


def test_observe_run_deep_violation_crashes_or_hangs(ttt_chip):
    core = CoreId(0, 0)
    vmin = ttt_chip.vmin_mv(core, 0.4)
    rng = make_rng(10)
    outcomes = {ttt_chip.observe_run(core, 0.4,
                                     vmin - HARD_CRASH_DEPTH_MV - 5, rng=rng)
                for _ in range(50)}
    assert outcomes <= {RunOutcome.CRASH, RunOutcome.HANG}


def test_observe_run_onset_band_only_ce(ttt_chip):
    core = CoreId(0, 0)
    vmin = ttt_chip.vmin_mv(core, 0.4)
    rng = make_rng(11)
    outcomes = {ttt_chip.observe_run(core, 0.4, vmin + 1.0, rng=rng)
                for _ in range(200)}
    assert outcomes <= {RunOutcome.CORRECT, RunOutcome.CORRECTED_ERROR}
    assert RunOutcome.CORRECTED_ERROR in outcomes  # close to the cliff


def test_jitterless_chip_reproducible():
    a = Chip(ProcessCorner.TTT, seed=5, jitter_sigma_mv=0.0)
    b = Chip(ProcessCorner.TTT, seed=6, jitter_sigma_mv=0.0)
    core = CoreId(2, 1)
    assert a.vmin_mv(core, 0.5) == b.vmin_mv(core, 0.5)


def test_jittered_chips_differ_but_stay_close():
    a = Chip(ProcessCorner.TTT, seed=5, serial="TTT-a")
    b = Chip(ProcessCorner.TTT, seed=6, serial="TTT-b")
    core = CoreId(2, 1)
    va, vb = a.vmin_mv(core, 0.5), b.vmin_mv(core, 0.5)
    assert va != vb
    assert abs(va - vb) < 6.0  # same corner: only manufacturing noise apart


def test_chip_oracle_is_stable(ttt_chip):
    core = CoreId(1, 0)
    assert ttt_chip.vmin_mv(core, 0.44) == ttt_chip.vmin_mv(core, 0.44)
