"""SLIMpro management processor and sensor bank."""

import pytest

from repro.errors import ConfigurationError
from repro.soc.domains import DomainName
from repro.soc.sensors import Sensor, SensorBank
from repro.soc.slimpro import EccReport, SLIMpro
from repro.units import NOMINAL_REFRESH_S


@pytest.fixture()
def slimpro() -> SLIMpro:
    sp = SLIMpro()
    sp.boot()
    return sp


def test_operations_before_boot_rejected():
    sp = SLIMpro()
    with pytest.raises(ConfigurationError):
        sp.set_refresh_period(1.0)
    with pytest.raises(ConfigurationError):
        sp.set_domain_voltage(DomainName.PMD, 930.0)


def test_boot_sets_defaults(slimpro):
    assert slimpro.booted
    assert slimpro.domain_voltage(DomainName.PMD) == 980.0
    assert slimpro.refresh_period() == NOMINAL_REFRESH_S


def test_set_domain_voltage_snaps(slimpro):
    applied = slimpro.set_domain_voltage(DomainName.PMD, 931.0)
    assert applied == 930.0
    assert slimpro.domain_voltage(DomainName.PMD) == 930.0


def test_set_refresh_period_all_mcus(slimpro):
    slimpro.set_refresh_period(2.283)
    for mcu in range(4):
        assert slimpro.refresh_period(mcu) == 2.283


def test_set_refresh_period_single_mcu(slimpro):
    slimpro.set_refresh_period(2.283, mcu=1)
    assert slimpro.refresh_period(1) == 2.283
    assert slimpro.refresh_period(0) == NOMINAL_REFRESH_S


def test_invalid_refresh_period_rejected(slimpro):
    with pytest.raises(ConfigurationError):
        slimpro.set_refresh_period(-1.0)
    with pytest.raises(ConfigurationError):
        slimpro.set_refresh_period(1.0, mcu=9)


def test_power_cycle_restores_defaults_keeps_logs(slimpro):
    slimpro.set_domain_voltage(DomainName.PMD, 930.0)
    slimpro.set_refresh_period(2.283)
    slimpro.report_ecc(EccReport(time_s=1.0, source="mcu0", correctable=True))
    slimpro.power_cycle()
    assert slimpro.domain_voltage(DomainName.PMD) == 980.0
    assert slimpro.refresh_period() == NOMINAL_REFRESH_S
    assert slimpro.correctable_count() == 1  # audit log survives


def test_ecc_event_counting(slimpro):
    slimpro.report_ecc(EccReport(0.0, "mcu0", correctable=True))
    slimpro.report_ecc(EccReport(1.0, "mcu1", correctable=False))
    slimpro.report_ecc(EccReport(2.0, "mcu0", correctable=True))
    assert slimpro.correctable_count() == 2
    assert slimpro.uncorrectable_count() == 1
    assert slimpro.correctable_count(since_s=1.5) == 1


def test_ecc_report_severity():
    assert EccReport(0.0, "x", correctable=True).severity == "CE"
    assert EccReport(0.0, "x", correctable=False).severity == "UE"


def test_sensor_reads_logged(slimpro):
    slimpro.register_sensor(Sensor("power.test", lambda: 12.34, resolution=0.1))
    value = slimpro.read_sensor("power.test", now_s=0.0)
    assert value == pytest.approx(12.3)
    history = slimpro.sensor_history()
    assert history and history[-1].channel == "power.test"


def test_telemetry_dump_reads_everything(slimpro):
    slimpro.register_sensor(Sensor("a", lambda: 1.0))
    slimpro.register_sensor(Sensor("b", lambda: 2.0))
    snapshot = slimpro.telemetry_dump(now_s=0.0)
    assert snapshot == {"a": 1.0, "b": 2.0}


def test_sensor_rate_limiting():
    truth = [10.0]
    sensor = Sensor("s", lambda: truth[0], resolution=0.1, min_interval_s=1.0)
    assert sensor.read(0.0) == 10.0
    truth[0] = 20.0
    assert sensor.read(0.5) == 10.0  # cached: too soon
    assert sensor.read(1.5) == 20.0


def test_sensor_bank_duplicate_rejected():
    bank = SensorBank()
    bank.add(Sensor("x", lambda: 0.0))
    with pytest.raises(ConfigurationError):
        bank.add(Sensor("x", lambda: 1.0))


def test_sensor_bank_unknown_read():
    bank = SensorBank()
    with pytest.raises(KeyError):
        bank.read("missing")
