"""Fault-tolerant thermal regulation: faults, detection, validity gating.

The acceptance properties, mirroring ``tests/test_supervisor.py``:

- the controller never reads the plant's ground truth -- regulation runs
  entirely on the monitor's fused sensor belief;
- a recoverable rig-fault schedule (stuck/drifting/dropout
  thermocouples, SPD timeouts, ambient steps) is detected in-loop, the
  zone degrades to the surviving sensor, and the campaign rows converge
  bit-identical to the clean run at any worker count;
- an unrecoverable fault (welded relay, dead heater, blind zone) trips
  the hard safe-state and surfaces as a typed :class:`ZoneQuarantine`
  record -- never a silently wrong temperature.
"""

import inspect

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.faults import (
    AMBIENT_STEP,
    HEATER_FAILED,
    RELAY_STUCK_OPEN,
    RELAY_WELDED_ON,
    SPD_TIMEOUT,
    TC_DRIFT,
    TC_DROPOUT,
    TC_STUCK,
    THERMAL_FAULT_KINDS,
    FaultPlan,
    FaultStats,
    ThermalFault,
    thermal_faults_recoverable,
)
from repro.errors import CampaignError, MeasurementInvalidError
from repro.experiments.fig8a_ber import run_figure8a
from repro.experiments.table1_weak_cells import run_table1
from repro.thermal.faults import ThermalFaultInjector, ZoneFaultState
from repro.thermal.monitor import (
    HEATER_FAILURE,
    SENSOR_LOSS,
    THERMAL_RUNAWAY,
    ZONE_DEGRADED_SPD,
    ZONE_DEGRADED_TC,
    ZONE_OK,
    ZONE_QUARANTINED,
    settle_time,
)
from repro.thermal.testbed import ThermalTestbed, ZoneConfig

SEED = 11


def _bed(faults=None, zones=1, setpoint_c=50.0, seed=SEED):
    return ThermalTestbed(
        [ZoneConfig(setpoint_c=setpoint_c) for _ in range(zones)],
        seed=seed, faults=faults)


# ----------------------------------------------------------------------
# Fault model (core/faults.py)
# ----------------------------------------------------------------------
def test_thermal_fault_validation():
    with pytest.raises(CampaignError):
        ThermalFault(zone=-1, kind=TC_STUCK, start_s=0.0)
    with pytest.raises(CampaignError):
        ThermalFault(zone=0, kind="tc-exploded", start_s=0.0)
    with pytest.raises(CampaignError):
        ThermalFault(zone=0, kind=TC_STUCK, start_s=-1.0)
    with pytest.raises(CampaignError):
        ThermalFault(zone=0, kind=TC_STUCK, start_s=0.0, duration_s=0.0)
    with pytest.raises(CampaignError):
        ThermalFault(zone=0, kind=TC_DRIFT, start_s=0.0)  # needs magnitude
    with pytest.raises(CampaignError):
        ThermalFault(zone=0, kind=AMBIENT_STEP, start_s=0.0)


def test_thermal_fault_window_and_overlap():
    fault = ThermalFault(zone=0, kind=TC_STUCK, start_s=100.0,
                         duration_s=50.0)
    assert not fault.active(99.9)
    assert fault.active(100.0) and fault.active(149.9)
    assert not fault.active(150.0)
    permanent = ThermalFault(zone=0, kind=HEATER_FAILED, start_s=120.0)
    assert permanent.end_s == float("inf") and permanent.active(1e9)
    assert fault.overlaps(permanent) and permanent.overlaps(fault)
    later = ThermalFault(zone=0, kind=SPD_TIMEOUT, start_s=150.0,
                         duration_s=10.0)
    assert not fault.overlaps(later)


def test_recoverability_taxonomy():
    drift = ThermalFault(zone=0, kind=TC_DRIFT, start_s=10.0,
                         duration_s=30.0, magnitude=0.05)
    assert drift.recoverable
    welded = ThermalFault(zone=1, kind=RELAY_WELDED_ON, start_s=10.0)
    assert not welded.recoverable
    assert thermal_faults_recoverable([drift])
    assert not thermal_faults_recoverable([drift, welded])
    # Overlapping TC and SPD faults blind the zone: unrecoverable.
    spd = ThermalFault(zone=0, kind=SPD_TIMEOUT, start_s=20.0,
                       duration_s=30.0)
    assert not thermal_faults_recoverable([drift, spd])
    spd_other_zone = ThermalFault(zone=2, kind=SPD_TIMEOUT, start_s=20.0,
                                  duration_s=30.0)
    assert thermal_faults_recoverable([drift, spd_other_zone])


def test_random_thermal_plan_deterministic_and_bounded():
    a = FaultPlan.random_thermal(3, zones=8)
    b = FaultPlan.random_thermal(3, zones=8)
    assert a.thermal_faults == b.thermal_faults
    assert all(f.zone < 8 for f in a.thermal_faults)
    assert all(f.kind in THERMAL_FAULT_KINDS for f in a.thermal_faults)
    # At most one fault per zone and zero unrecoverable rate: recoverable.
    assert a.thermal_recoverable
    assert FaultPlan.random_thermal(4).thermal_faults \
        != FaultPlan.random_thermal(5).thermal_faults


def test_random_thermal_unrecoverable_rate():
    plan = FaultPlan.random_thermal(0, zones=8, fault_rate=1.0,
                                    unrecoverable_rate=1.0)
    assert plan.thermal_faults and not plan.thermal_recoverable
    assert all(f.duration_s is None for f in plan.thermal_faults)


def test_random_real_folds_in_thermal_faults():
    plan = FaultPlan.random_real(7, units=4, thermal_zones=8,
                                 thermal_unrecoverable_rate=0.0)
    assert plan.thermal_faults == FaultPlan.random_thermal(
        7, zones=8).thermal_faults


def test_fault_plan_rejects_non_thermal_fault_entries():
    with pytest.raises(CampaignError):
        FaultPlan(thermal_faults=("tc-stuck",))


# ----------------------------------------------------------------------
# Fault application (thermal/faults.py)
# ----------------------------------------------------------------------
def test_zone_fault_state_sensor_lenses():
    stats = FaultStats()
    state = ZoneFaultState(0, [
        ThermalFault(zone=0, kind=TC_STUCK, start_s=10.0, duration_s=10.0),
        ThermalFault(zone=0, kind=TC_DRIFT, start_s=40.0, duration_s=10.0,
                     magnitude=0.1),
        ThermalFault(zone=0, kind=TC_DROPOUT, start_s=60.0, duration_s=5.0),
        ThermalFault(zone=0, kind=SPD_TIMEOUT, start_s=70.0, duration_s=5.0),
    ], stats)
    assert state.thermocouple_reading(50.0, 0.0) == 50.0
    assert state.thermocouple_reading(51.0, 10.0) == 51.0  # capture
    assert state.thermocouple_reading(55.0, 15.0) == 51.0  # stuck
    assert state.thermocouple_reading(55.0, 25.0) == 55.0  # recovered
    assert state.thermocouple_reading(50.0, 45.0) == pytest.approx(50.5)
    assert state.thermocouple_reading(50.0, 62.0) is None
    assert state.spd_reading(50.0, 72.0) is None
    assert state.spd_reading(50.0, 80.0) == 50.0
    assert stats.thermal_sensor_faults == 4


def test_zone_fault_state_actuator_lenses():
    stats = FaultStats()
    state = ZoneFaultState(1, [
        ThermalFault(zone=1, kind=RELAY_WELDED_ON, start_s=10.0,
                     duration_s=10.0),
        ThermalFault(zone=1, kind=RELAY_STUCK_OPEN, start_s=30.0,
                     duration_s=10.0),
        ThermalFault(zone=1, kind=HEATER_FAILED, start_s=50.0),
        ThermalFault(zone=1, kind=AMBIENT_STEP, start_s=0.0,
                     duration_s=20.0, magnitude=5.0),
    ], stats)
    assert state.delivered_power_w(10.0, 0.0, 40.0) == 10.0
    assert state.delivered_power_w(10.0, 15.0, 40.0) == 40.0  # welded on
    assert state.delivered_power_w(10.0, 35.0, 40.0) == 0.0   # stuck open
    assert state.delivered_power_w(40.0, 60.0, 40.0) == 0.0   # dead element
    assert state.ambient_offset_c(5.0) == 5.0
    assert state.ambient_offset_c(25.0) == 0.0
    assert stats.thermal_actuator_faults == 3
    assert stats.thermal_disturbances == 1


def test_zone_fault_state_rejects_foreign_zone():
    with pytest.raises(CampaignError):
        ZoneFaultState(0, [ThermalFault(zone=1, kind=TC_STUCK, start_s=0.0)],
                       FaultStats())


def test_injector_coerce_forms():
    fault = ThermalFault(zone=2, kind=TC_STUCK, start_s=5.0, duration_s=5.0)
    assert ThermalFaultInjector.coerce(None) is None
    injector = ThermalFaultInjector((fault,))
    assert ThermalFaultInjector.coerce(injector) is injector
    from_plan = ThermalFaultInjector.coerce(FaultPlan(thermal_faults=(fault,)))
    assert from_plan.zones == (2,)
    from_seq = ThermalFaultInjector.coerce([fault])
    assert from_seq.zone_state(2) is not None
    assert from_seq.zone_state(0) is None
    assert from_seq.recoverable


# ----------------------------------------------------------------------
# The controller never reads plant ground truth
# ----------------------------------------------------------------------
def test_tick_does_not_read_plant_ground_truth():
    source = inspect.getsource(ThermalTestbed._tick)
    assert "bias_c" not in source
    # The only temperature feeding the PID is the monitor's belief.
    assert "monitor.observe" in source


# ----------------------------------------------------------------------
# In-loop detection and degradation
# ----------------------------------------------------------------------
def test_clean_regulation_is_valid_and_ok():
    bed = _bed()
    report = bed.run(900.0)[0]
    assert report.status == ZONE_OK
    assert report.measurement_valid
    assert report.within_one_degree
    assert bed.zone_measurement_valid(0)
    assert abs(bed.zone_estimate_c(0) - bed.zone_temperature_c(0)) < 1.0


def test_stuck_thermocouple_is_voted_out_and_rehabilitated():
    # Stick the thermocouple during warm-up, where its frozen reading
    # diverges from the die temperature. (A sensor stuck at steady state
    # is indistinguishable from a healthy one -- and harmless -- until
    # the temperature moves.)
    fault = ThermalFault(zone=0, kind=TC_STUCK, start_s=10.0,
                         duration_s=120.0)
    bed = _bed(faults=[fault])
    bed.run(100.0)
    # Mid-fault: residual voting sides with the SPD; zone degrades but
    # regulation holds on the surviving sensor.
    assert bed.zone_status(0) == ZONE_DEGRADED_SPD
    report = bed.run(800.0)[0]
    assert bed.zone_status(0) == ZONE_OK  # rehabilitated after recovery
    assert report.quarantine is None
    assert report.measurement_valid
    assert abs(bed.zone_temperature_c(0) - 50.0) < 1.0


def test_drifting_thermocouple_keeps_truth_in_band():
    fault = ThermalFault(zone=0, kind=TC_DRIFT, start_s=300.0,
                         duration_s=150.0, magnitude=0.05)
    bed = _bed(faults=[fault])
    report = bed.run(900.0)[0]
    assert report.quarantine is None
    # The drift is caught before it can steer the plant out of spec.
    assert abs(bed.zone_temperature_c(0) - 50.0) < 1.0
    assert report.measurement_valid


def test_spd_timeout_degrades_to_thermocouple():
    fault = ThermalFault(zone=0, kind=SPD_TIMEOUT, start_s=300.0,
                         duration_s=100.0)
    bed = _bed(faults=[fault])
    bed.run(350.0)
    assert bed.zone_status(0) == ZONE_DEGRADED_TC
    report = bed.run(550.0)[0]
    assert bed.zone_status(0) == ZONE_OK
    assert report.measurement_valid


def test_blind_zone_trips_sensor_loss_quarantine():
    faults = [
        ThermalFault(zone=0, kind=TC_DROPOUT, start_s=300.0,
                     duration_s=120.0),
        ThermalFault(zone=0, kind=SPD_TIMEOUT, start_s=300.0,
                     duration_s=120.0),
    ]
    bed = _bed(faults=faults)
    report = bed.run(900.0)[0]
    assert report.status == ZONE_QUARANTINED
    assert report.quarantine.kind == SENSOR_LOSS
    assert not report.measurement_valid


def test_welded_relay_trips_runaway_quarantine():
    fault = ThermalFault(zone=0, kind=RELAY_WELDED_ON, start_s=300.0)
    bed = _bed(faults=[fault])
    report = bed.run(900.0)[0]
    assert report.quarantine is not None
    assert report.quarantine.kind == THERMAL_RUNAWAY
    assert not report.measurement_valid
    assert "zone 0" in report.quarantine.describe()


def test_dead_heater_trips_heater_failure_quarantine():
    fault = ThermalFault(zone=0, kind=HEATER_FAILED, start_s=300.0)
    bed = _bed(faults=[fault])
    report = bed.run(900.0)[0]
    assert report.quarantine is not None
    assert report.quarantine.kind == HEATER_FAILURE
    assert not report.measurement_valid


def test_ambient_step_recovers_in_band():
    fault = ThermalFault(zone=0, kind=AMBIENT_STEP, start_s=300.0,
                         duration_s=150.0, magnitude=6.0)
    bed = _bed(faults=[fault])
    report = bed.run(1800.0)[0]
    assert report.quarantine is None
    assert abs(bed.zone_temperature_c(0) - 50.0) < 1.0
    assert report.measurement_valid


def test_faults_only_touch_their_zone():
    fault = ThermalFault(zone=0, kind=RELAY_WELDED_ON, start_s=200.0)
    bed = _bed(faults=[fault], zones=3)
    reports = bed.run(900.0)
    assert reports[0].status == ZONE_QUARANTINED
    for report in reports[1:]:
        assert report.status == ZONE_OK
        assert report.measurement_valid
    assert [q.zone for q in bed.zone_quarantines()] == [0]


def test_faulted_regulation_is_deterministic():
    plan = FaultPlan.random_thermal(9, zones=4)
    a = _bed(faults=plan, zones=4).run(900.0)
    b = _bed(faults=plan, zones=4).run(900.0)
    assert [r.samples for r in a] == [r.samples for r in b]
    assert [r.status for r in a] == [r.status for r in b]
    assert [r.out_of_band_windows for r in a] \
        == [r.out_of_band_windows for r in b]


def test_forced_quarantine_is_idempotent_and_cuts_heater():
    bed = _bed()
    bed.run(100.0)
    record = bed.quarantine_zone(0, "regulation-timeout", "budget spent")
    again = bed.quarantine_zone(0, "thermal-runaway", "later reason")
    assert again is record and record.kind == "regulation-timeout"
    assert bed.zone_status(0) == ZONE_QUARANTINED
    assert not bed.zone_measurement_valid(0)
    assert bed.relays[0].duty == 0.0


# ----------------------------------------------------------------------
# Satellites: settle-time pass, retarget reset
# ----------------------------------------------------------------------
def test_settle_time_single_pass_edges():
    times = [0.0, 2.0, 4.0, 6.0]
    assert settle_time(times, [10.0, 10.0, 10.0, 49.5], 50.0) == 6.0
    assert settle_time(times, [49.5, 50.2, 49.8, 49.9], 50.0) == 0.0
    assert settle_time(times, [49.5, 52.0, 49.8, 49.9], 50.0) == 4.0
    assert settle_time(times, [49.5, 49.8, 49.9, 52.0], 50.0) is None
    assert settle_time([], [], 50.0) is None
    assert settle_time([100.0, 102.0], [49.9, 50.1], 50.0,
                       origin_s=100.0) == 0.0


def test_retarget_restarts_settle_telemetry():
    bed = _bed()
    first = bed.run(900.0)[0]
    assert first.settle_time_s is not None
    bed.set_setpoint(0, 60.0)
    second = bed.run(900.0)[0]
    # Settle time is measured from the retarget instant, not t=0, and
    # the 50->60 leg cannot inherit the first leg's telemetry.
    assert second.setpoint_c == 60.0
    assert second.settle_time_s is not None
    assert 0.0 < second.settle_time_s < 900.0
    assert second.within_one_degree
    assert all(windows[0] >= 900.0
               for windows in second.out_of_band_windows)


# ----------------------------------------------------------------------
# Bounded fused error under any noise seed (hypothesis)
# ----------------------------------------------------------------------
@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_fused_error_bounded_under_any_noise_seed(seed):
    bed = _bed(seed=seed)
    bed.run(400.0)
    truth = bed.zone_temperature_c(0)
    assert bed.zone_status(0) == ZONE_OK
    assert abs(bed.zone_estimate_c(0) - truth) < 1.0


# ----------------------------------------------------------------------
# Measurement-validity gating through the campaign drivers
# ----------------------------------------------------------------------
def _rows(result):
    return (result.counts, result.per_chip_totals, result.scrubs)


@pytest.mark.slow
def test_table1_recoverable_faults_bit_identical_any_jobs():
    clean = run_table1(seed=SEED, sample_devices=12, regulate=True)
    assert clean.regulation_ok and not clean.thermal_quarantine
    for jobs in (1, 2):
        faulted = run_table1(seed=SEED, sample_devices=12,
                             thermal_faults=0, jobs=jobs)
        assert FaultPlan.random_thermal(0).thermal_recoverable
        assert not faulted.thermal_quarantine
        assert not faulted.excluded_devices
        assert _rows(faulted) == _rows(clean)


@pytest.mark.slow
def test_table1_unrecoverable_zone_is_typed_quarantine():
    plan = FaultPlan.random_thermal(0, zones=8, fault_rate=1.0,
                                    unrecoverable_rate=1.0)
    results = [run_table1(seed=SEED, sample_devices=24, thermal_plan=plan,
                          jobs=jobs) for jobs in (1, 2)]
    for result in results:
        assert result.thermal_quarantine
        assert not result.regulation_ok
        assert result.excluded_devices
        kinds = {q.kind for q in result.thermal_quarantine}
        assert kinds <= {THERMAL_RUNAWAY, HEATER_FAILURE, SENSOR_LOSS,
                         "sensor-conflict", "regulation-timeout"}
        text = result.format()
        assert "quarantined: zone" in text and "excluded" in text
    # Jobs-invariance of the quarantine verdict and the surviving rows.
    assert _rows(results[0]) == _rows(results[1])
    assert results[0].thermal_quarantine == results[1].thermal_quarantine
    assert results[0].excluded_devices == results[1].excluded_devices


def test_fig8a_recoverable_faults_bit_identical():
    clean = run_figure8a(seed=SEED)
    faulted = run_figure8a(seed=SEED, thermal_faults=0)
    assert faulted.valid and not faulted.thermal_quarantine
    assert faulted.pattern_ber == clean.pattern_ber
    assert faulted.workload_ber == clean.workload_ber


def test_fig8a_unrecoverable_zone_invalidates_result():
    plan = FaultPlan.random_thermal(0, zones=1, fault_rate=1.0,
                                    unrecoverable_rate=1.0)
    result = run_figure8a(seed=SEED, thermal_plan=plan)
    assert not result.valid
    assert result.thermal_quarantine
    assert not result.pattern_ber and not result.workload_ber
    assert not result.random_is_worst_pattern
    assert result.workload_variation == 0.0
    assert "MEASUREMENT INVALID" in result.format()


def test_binding_require_valid_raises_typed_error():
    from repro.dram.cells import DramDevicePopulation
    from repro.dram.geometry import DEFAULT_GEOMETRY
    from repro.thermal.binding import ThermalDramBinding

    bed = _bed(zones=8)
    population = DramDevicePopulation(geometry=DEFAULT_GEOMETRY, seed=SEED)
    binding = ThermalDramBinding(population, bed)
    # Before any regulation no zone has held the band: reads are invalid.
    with pytest.raises(MeasurementInvalidError):
        binding.require_valid(0)
    bed.run(900.0)
    binding.require_valid(0)
    assert binding.device_measurement_valid(0)
    assert binding.device_zone_status(0) == ZONE_OK
    assert not binding.quarantined_devices()
    bed.quarantine_zone(0, "thermal-runaway", "test")
    with pytest.raises(MeasurementInvalidError, match="thermal-runaway"):
        binding.require_valid(0)
    assert 0 in binding.quarantined_devices()
    counts = binding.validated_board_unique_locations(0.5)
    assert 0 not in counts and counts  # zone 0 skipped, others measured


# ----------------------------------------------------------------------
# Seeded sweep (the CI thermal-stress job), mirroring the supervisor one
# ----------------------------------------------------------------------
@pytest.mark.slow
def test_seeded_thermal_fault_sweep_converges_or_quarantines():
    clean = run_table1(seed=SEED, sample_devices=12, regulate=True)
    for fault_seed in range(8):
        plan = FaultPlan.random_thermal(fault_seed, zones=8,
                                        unrecoverable_rate=0.3)
        result = run_table1(seed=SEED, sample_devices=12, thermal_plan=plan)
        if plan.thermal_recoverable:
            assert _rows(result) == _rows(clean), fault_seed
            assert not result.thermal_quarantine
        else:
            assert result.thermal_quarantine, fault_seed
            bad_kinds = {f.kind for f in plan.thermal_faults
                         if not f.recoverable}
            assert bad_kinds  # the plan really had an unrecoverable fault
        # Quarantine verdicts are jobs-invariant.
        sharded = run_table1(seed=SEED, sample_devices=12,
                             thermal_plan=plan, jobs=3)
        assert _rows(sharded) == _rows(result)
        assert sharded.thermal_quarantine == result.thermal_quarantine
