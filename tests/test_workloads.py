"""Workload signature tables: SPEC, NAS, Rodinia."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.base import CpuWorkload, DramProfile, Workload
from repro.workloads.nas import nas_suite, nas_workload
from repro.workloads.rodinia import rodinia_suite, rodinia_workload
from repro.workloads.spec import SPEC_WORKLOADS, spec_suite, spec_workload


def test_spec_has_ten_programs():
    assert len(SPEC_WORKLOADS) == 10


def test_spec_contains_figure5_mix_members():
    for name in ("bwaves", "cactusADM", "dealII", "gromacs",
                 "leslie3d", "mcf", "milc", "namd"):
        assert name in SPEC_WORKLOADS


def test_spec_suite_sorted_by_swing():
    swings = [w.resonant_swing for w in spec_suite()]
    assert swings == sorted(swings)


def test_spec_swing_extremes():
    suite = spec_suite()
    assert suite[0].name == "mcf"     # gentlest program
    assert suite[-1].name == "milc"   # most aggressive


def test_spec_swings_in_calibrated_band():
    for workload in spec_suite():
        assert 0.25 <= workload.resonant_swing <= 0.60


def test_mcf_character():
    mcf = spec_workload("mcf").cpu
    assert mcf.ipc < 1.0            # memory-latency bound
    assert mcf.fp_ratio == 0.0      # integer code
    assert mcf.l2_miss_ratio > 0.1


def test_milc_character():
    milc = spec_workload("milc").cpu
    assert milc.fp_ratio > 0.5      # FP-vector heavy


def test_unknown_workload_rejected():
    with pytest.raises(WorkloadError):
        spec_workload("doom")
    with pytest.raises(WorkloadError):
        nas_workload("doom")
    with pytest.raises(WorkloadError):
        rodinia_workload("doom")


def test_nas_swings_below_virus_headroom():
    for workload in nas_suite():
        assert workload.resonant_swing <= 0.55


def test_rodinia_reporting_order():
    assert [w.name for w in rodinia_suite()] == ["backprop", "kmeans", "nw", "srad"]


def test_rodinia_all_have_dram_profiles():
    for workload in rodinia_suite():
        assert workload.dram is not None
        assert workload.dram.bandwidth_gbs > 0


def test_rodinia_nw_lowest_bandwidth_kmeans_highest():
    bw = {w.name: w.dram.bandwidth_gbs for w in rodinia_suite()}
    assert min(bw, key=bw.get) == "nw"
    assert max(bw, key=bw.get) == "kmeans"


def test_rodinia_kmeans_best_inherent_refresh():
    hot = {w.name: w.dram.hot_row_fraction for w in rodinia_suite()}
    assert max(hot, key=hot.get) == "kmeans"
    assert min(hot, key=hot.get) == "nw"


def test_workload_validation():
    with pytest.raises(WorkloadError):
        CpuWorkload("x", "s", resonant_swing=1.5, ipc=1.0, fp_ratio=0.0,
                    mem_ratio=0.0, branch_ratio=0.0, l2_miss_ratio=0.0)
    with pytest.raises(WorkloadError):
        CpuWorkload("x", "s", resonant_swing=0.5, ipc=0.0, fp_ratio=0.0,
                    mem_ratio=0.0, branch_ratio=0.0, l2_miss_ratio=0.0)
    with pytest.raises(WorkloadError):
        DramProfile(footprint_mb=0, hot_row_fraction=0.5,
                    data_entropy=0.5, bandwidth_gbs=1.0)


def test_predictor_features_shape():
    features = spec_workload("gcc").cpu.predictor_features()
    assert features.shape == (6,)
    assert features[0] == 1.0


def test_workload_name_passthrough():
    workload = spec_workload("lbm")
    assert workload.name == workload.cpu.name == "lbm"
    assert workload.resonant_swing == workload.cpu.resonant_swing
