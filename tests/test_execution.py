"""Execution model: waveforms and performance counters."""

import numpy as np
import pytest

from repro.cpu.execution import ExecutionModel, STATIC_CURRENT
from repro.cpu.isa import InstrClass
from repro.cpu.kernels import InstructionLoop, square_wave_loop
from repro.errors import ConfigurationError


@pytest.fixture()
def model() -> ExecutionModel:
    return ExecutionModel(freq_ghz=2.4, window_cycles=1024)


def test_window_length_respected(model):
    loop = InstructionLoop.of([InstrClass.INT_ALU] * 4)
    profile = model.profile(loop)
    assert len(profile.waveform) == 1024


def test_waveform_bounded(model):
    loop = square_wave_loop(InstrClass.SIMD, InstrClass.NOP, 24)
    waveform = model.profile(loop).waveform
    assert waveform.min() >= 0.0
    assert waveform.max() <= 1.0


def test_constant_loop_has_flat_waveform(model):
    loop = InstructionLoop.of([InstrClass.INT_ALU] * 8)
    profile = model.profile(loop)
    assert profile.peak_to_trough < 1e-9


def test_square_wave_has_large_swing(model):
    loop = square_wave_loop(InstrClass.SIMD, InstrClass.NOP, 24)
    profile = model.profile(loop)
    assert profile.counters.current_swing > 0.7


def test_normalized_swing_caps_at_one(model):
    waveform = np.array([0.0, 1.0] * 512)
    assert ExecutionModel.normalized_swing(waveform) == 1.0


def test_counters_fp_and_mem_ratios(model):
    loop = InstructionLoop.of(
        [InstrClass.FP_FMA, InstrClass.LOAD_L1, InstrClass.INT_ALU, InstrClass.BRANCH])
    counters = model.profile(loop).counters
    assert counters.fp_ratio == pytest.approx(0.25)
    assert counters.mem_ratio == pytest.approx(0.25)
    assert counters.branch_ratio == pytest.approx(0.25)


def test_ipc_harmonic_blend(model):
    fast = InstructionLoop.of([InstrClass.NOP] * 8)
    slow = InstructionLoop.of([InstrClass.INT_DIV] * 8)
    assert model.profile(fast).counters.ipc > model.profile(slow).counters.ipc


def test_ipc_capped_at_machine_width(model):
    loop = InstructionLoop.of([InstrClass.NOP] * 8)
    assert model.profile(loop).counters.ipc <= 4.0


def test_mean_current_reflects_instruction_mix(model):
    hot = InstructionLoop.of([InstrClass.SIMD] * 8)
    cold = InstructionLoop.of([InstrClass.NOP] * 8)
    assert model.profile(hot).counters.mean_current > \
        model.profile(cold).counters.mean_current


def test_static_floor_present(model):
    cold = InstructionLoop.of([InstrClass.NOP] * 8)
    waveform = model.profile(cold).waveform
    assert waveform.min() >= STATIC_CURRENT * 0.9


def test_cycles_per_iteration(model):
    loop = InstructionLoop.of([InstrClass.SIMD, InstrClass.NOP])
    assert model.profile(loop).cycles_per_iteration == pytest.approx(5.0)


def test_counter_feature_vector_shape(model):
    loop = InstructionLoop.of([InstrClass.INT_ALU] * 4)
    features = model.profile(loop).counters.as_features()
    assert features.shape == (8,)
    assert features[0] == 1.0  # intercept


def test_invalid_config_rejected():
    with pytest.raises(ConfigurationError):
        ExecutionModel(freq_ghz=0.0)
    with pytest.raises(ConfigurationError):
        ExecutionModel(window_cycles=10)
