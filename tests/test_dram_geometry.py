"""DRAM organization and addressing."""

import pytest

from repro.dram.geometry import BankAddress, DEFAULT_GEOMETRY, DramGeometry
from repro.errors import TopologyError


def test_default_matches_paper_testbed():
    geo = DEFAULT_GEOMETRY
    assert geo.num_devices == 72          # "72 DRAM chips"
    assert geo.banks_per_device == 8      # Table I's 8 banks
    assert geo.num_ranks == 8


def test_capacity_is_32gb_class():
    geo = DEFAULT_GEOMETRY
    # 8 data devices/rank x 8 ranks x 4Gb = 32 GB of data (+ ECC chips).
    data_devices = geo.num_ranks * 8
    data_bytes = data_devices * geo.bits_per_device // 8
    assert data_bytes == 32 * 1024 ** 3


def test_bits_per_bank():
    geo = DEFAULT_GEOMETRY
    assert geo.bits_per_bank == 65536 * 8192


def test_device_location_roundtrip():
    geo = DEFAULT_GEOMETRY
    seen = set()
    for device in geo.device_ids():
        dimm, rank, slot = geo.device_location(device)
        assert 0 <= dimm < geo.num_dimms
        assert 0 <= rank < geo.ranks_per_dimm
        assert 0 <= slot < geo.devices_per_rank
        seen.add((dimm, rank, slot))
    assert len(seen) == geo.num_devices


def test_device_location_out_of_range():
    with pytest.raises(TopologyError):
        DEFAULT_GEOMETRY.device_location(72)


def test_bank_address_validation():
    BankAddress(0, 0).validate(DEFAULT_GEOMETRY)
    with pytest.raises(TopologyError):
        BankAddress(72, 0).validate(DEFAULT_GEOMETRY)
    with pytest.raises(TopologyError):
        BankAddress(0, 8).validate(DEFAULT_GEOMETRY)


def test_invalid_geometry_rejected():
    with pytest.raises(TopologyError):
        DramGeometry(num_dimms=0)
