"""Homogeneous (multi-process) mixes: copies of one program."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.mixes import HomogeneousMix
from repro.workloads.spec import spec_workload


def test_single_copy_equals_program():
    mix = HomogeneousMix(spec_workload("milc"), copies=1)
    assert mix.resonant_swing == spec_workload("milc").resonant_swing


def test_swing_grows_with_copies():
    swings = [HomogeneousMix(spec_workload("milc"), copies=n).resonant_swing
              for n in range(1, 9)]
    assert swings == sorted(swings)
    assert swings[-1] > swings[0]


def test_swing_capped_at_one():
    mix = HomogeneousMix(spec_workload("milc"), copies=8)
    assert mix.resonant_swing <= 1.0


def test_multiprocess_vmin_exceeds_single(ttt_chip):
    """The paper's multi-process observation: N aligned copies stress
    the PDN harder than one instance."""
    single = HomogeneousMix(spec_workload("milc"), copies=1)
    full = HomogeneousMix(spec_workload("milc"), copies=8)
    assert full.chip_vmin_mv(ttt_chip) > single.chip_vmin_mv(ttt_chip)


def test_multiprocess_vmin_stays_below_virus(ttt_chip):
    """Even 8 aligned copies stay short of the dI/dt virus (swing 1.0)."""
    full = HomogeneousMix(spec_workload("milc"), copies=8)
    core = ttt_chip.strongest_core()
    virus_vmin = ttt_chip.vmin_mv(core, 1.0)
    assert ttt_chip.vmin_mv(core, full.resonant_swing) < virus_vmin


def test_placement_covers_copies():
    mix = HomogeneousMix(spec_workload("mcf"), copies=3)
    placement = mix.placement()
    assert len(placement) == 3
    assert all(w.name == "mcf" for w in placement.values())


def test_name():
    assert HomogeneousMix(spec_workload("mcf"), copies=4).name == "mcfx4"


def test_copy_bounds():
    with pytest.raises(WorkloadError):
        HomogeneousMix(spec_workload("mcf"), copies=0)
    with pytest.raises(WorkloadError):
        HomogeneousMix(spec_workload("mcf"), copies=9)
