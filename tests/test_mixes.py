"""Multiprogram mixes (the Figure 5 workload)."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.mixes import FIGURE5_BENCHMARKS, MultiprogramMix, figure5_mix
from repro.workloads.spec import spec_workload


def test_figure5_mix_members():
    mix = figure5_mix()
    assert len(mix.members) == 8
    assert {w.name for w in mix.members} == set(FIGURE5_BENCHMARKS)


def test_mix_swing_is_decorrelated_mean():
    mix = figure5_mix()
    swings = [w.resonant_swing for w in mix.members]
    assert mix.resonant_swing == pytest.approx(sum(swings) / len(swings))


def test_mix_swing_below_worst_member():
    mix = figure5_mix()
    assert mix.resonant_swing < max(w.resonant_swing for w in mix.members)


def test_placement_one_per_core():
    mix = figure5_mix()
    placement = mix.placement()
    assert len(placement) == 8
    assert sorted(c.linear for c in placement) == list(range(8))


def test_chip_vmin_is_weakest_core_bound(ttt_chip):
    mix = figure5_mix()
    vmin = mix.chip_vmin_mv(ttt_chip)
    # The Figure 5 full-performance rung: safe supply 915 mV.
    assert 910.0 < vmin <= 915.0


def test_per_pmd_vmin_ladder(ttt_chip):
    """The per-PMD constraints produce the paper's 915/900/885/875 rungs."""
    mix = figure5_mix()
    per_pmd = mix.per_pmd_vmin_mv(ttt_chip)
    assert set(per_pmd) == {0, 1, 2, 3}
    ordered = sorted(per_pmd.values(), reverse=True)
    targets = (915.0, 900.0, 885.0, 875.0)
    for value, target in zip(ordered, targets):
        assert target - 5.0 < value <= target


def test_per_pmd_vmin_lower_at_reduced_frequency(ttt_chip):
    mix = figure5_mix()
    fast = mix.per_pmd_vmin_mv(ttt_chip, freq_ghz=2.4)
    slow = mix.per_pmd_vmin_mv(ttt_chip, freq_ghz=1.2)
    for pmd in fast:
        assert slow[pmd] < fast[pmd]


def test_mix_name_lists_members():
    mix = MultiprogramMix.of([spec_workload("mcf"), spec_workload("milc")])
    assert mix.name == "mix(mcf+milc)"


def test_mix_size_bounds():
    with pytest.raises(WorkloadError):
        MultiprogramMix.of([])
    with pytest.raises(WorkloadError):
        MultiprogramMix.of([spec_workload("mcf")] * 9)
