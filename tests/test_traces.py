"""Access-trace generation from DRAM profiles."""

import pytest

from repro.dram.refresh import RefreshController
from repro.errors import WorkloadError
from repro.workloads.base import DramProfile
from repro.workloads.rodinia import rodinia_workload
from repro.workloads.traces import generate_trace


def profile(hot: float) -> DramProfile:
    return DramProfile(footprint_mb=1024, hot_row_fraction=hot,
                       data_entropy=0.8, bandwidth_gbs=5.0)


def test_trace_row_count():
    trace = generate_trace(profile(0.5), trefp_s=2.0, rows=128, seed=1)
    assert len(trace.accessed_rows()) == 128


def test_hot_fraction_realized_in_exposures():
    """The mechanistic check: measured coverage ~ declared hot fraction."""
    ctrl = RefreshController(trefp_s=2.0)
    for hot in (0.25, 0.5, 0.75):
        trace = generate_trace(profile(hot), trefp_s=2.0, rows=400, seed=2)
        coverage = ctrl.covered_fraction(trace)
        assert coverage == pytest.approx(hot, abs=0.08)


def test_zero_hot_fraction_gives_no_coverage():
    ctrl = RefreshController(trefp_s=2.0)
    trace = generate_trace(profile(0.0), trefp_s=2.0, rows=100, seed=3)
    assert ctrl.covered_fraction(trace) == pytest.approx(0.0, abs=0.02)


def test_trace_deterministic_per_seed():
    a = generate_trace(profile(0.5), 2.0, rows=64, seed=9)
    b = generate_trace(profile(0.5), 2.0, rows=64, seed=9)
    assert a.accesses == b.accesses


def test_rodinia_profiles_generate_consistent_traces():
    ctrl = RefreshController(trefp_s=2.283)
    for name in ("backprop", "kmeans", "nw", "srad"):
        dram = rodinia_workload(name).dram
        trace = generate_trace(dram, trefp_s=2.283, rows=300, seed=4)
        coverage = ctrl.covered_fraction(trace)
        assert coverage == pytest.approx(dram.hot_row_fraction, abs=0.09), name


def test_invalid_arguments_rejected():
    with pytest.raises(WorkloadError):
        generate_trace(profile(0.5), trefp_s=0.0)
    with pytest.raises(WorkloadError):
        generate_trace(profile(0.5), trefp_s=1.0, rows=0)
