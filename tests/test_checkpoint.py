"""Campaign checkpoint/resume persistence (repro.core.checkpoint)."""

import json
import os

import pytest

from repro.core.campaign import CampaignPlan
from repro.core.checkpoint import CampaignCheckpoint
from repro.core.results import ResultRow
from repro.errors import CampaignError
from repro.workloads.spec import spec_suite


def _campaigns(benchmarks=2, stop_mv=940.0):
    plan = CampaignPlan()
    plan.add_workloads(spec_suite()[:benchmarks])
    plan.add_voltage_sweep(980.0, stop_mv, 20.0, repetitions=2)
    return plan.build()


def _rows(campaign, chip_serial="chip-X"):
    rows = []
    for run in campaign.runs:
        for rep in range(run.setup.repetitions):
            rows.append(ResultRow(
                run_id=run.run_id, benchmark=campaign.name, suite="spec2006",
                voltage_mv=run.setup.voltage_mv, freq_ghz=run.setup.freq_ghz,
                cores="0", repetition=rep, outcome="correct",
                verdict="completed", corrected_errors=0,
                uncorrected_errors=0, wall_time_s=0.125 + rep,
                run_key=run.global_key(chip_serial)))
    return rows


def test_token_is_stable_and_identity_sensitive():
    first, second = _campaigns()
    token = CampaignCheckpoint.shard_token("chip-X", first)
    assert token == CampaignCheckpoint.shard_token("chip-X", first)
    # Different chip, different campaign, different setups: all distinct.
    assert token != CampaignCheckpoint.shard_token("chip-Y", first)
    assert token != CampaignCheckpoint.shard_token("chip-X", second)
    shorter = _campaigns(stop_mv=960.0)[0]
    assert token != CampaignCheckpoint.shard_token("chip-X", shorter)


def test_save_then_load_roundtrips_rows_exactly(tmp_path):
    checkpoint = CampaignCheckpoint(str(tmp_path))
    campaign = _campaigns()[0]
    rows = _rows(campaign)
    token = checkpoint.shard_token("chip-X", campaign)
    assert not checkpoint.has(token)
    checkpoint.save(token, "chip-X", campaign, rows)
    assert checkpoint.has(token)
    assert checkpoint.load_rows(token) == rows


def test_manifest_is_the_commit_point(tmp_path):
    """A stray CSV without its manifest (crash mid-checkpoint) does not
    count as a completed shard."""
    checkpoint = CampaignCheckpoint(str(tmp_path))
    campaign = _campaigns()[0]
    token = checkpoint.shard_token("chip-X", campaign)
    with open(os.path.join(str(tmp_path), f"{token}.csv"), "w") as handle:
        handle.write("partial garbage")
    assert not checkpoint.has(token)
    with pytest.raises(CampaignError):
        checkpoint.load_rows(token)


def test_tampered_csv_is_rejected(tmp_path):
    checkpoint = CampaignCheckpoint(str(tmp_path))
    campaign = _campaigns()[0]
    token = checkpoint.shard_token("chip-X", campaign)
    checkpoint.save(token, "chip-X", campaign, _rows(campaign))
    csv_path = os.path.join(str(tmp_path), f"{token}.csv")
    with open(csv_path, encoding="utf-8", newline="") as handle:
        text = handle.read()
    with open(csv_path, "w", encoding="utf-8", newline="") as handle:
        handle.write(text.replace("correct", "crooked", 1))
    with pytest.raises(CampaignError, match="hash mismatch"):
        checkpoint.load_rows(token)


def test_tampered_manifest_row_count_is_rejected(tmp_path):
    checkpoint = CampaignCheckpoint(str(tmp_path))
    campaign = _campaigns()[0]
    token = checkpoint.shard_token("chip-X", campaign)
    checkpoint.save(token, "chip-X", campaign, _rows(campaign))
    manifest_path = os.path.join(str(tmp_path), f"{token}.json")
    with open(manifest_path, encoding="utf-8") as handle:
        manifest = json.load(handle)
    manifest["rows"] += 1
    with open(manifest_path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle)
    with pytest.raises(CampaignError, match="row count"):
        checkpoint.load_rows(token)


def test_completed_shards_lists_manifests(tmp_path):
    checkpoint = CampaignCheckpoint(str(tmp_path))
    campaigns = _campaigns()
    for campaign in campaigns:
        token = checkpoint.shard_token("chip-X", campaign)
        checkpoint.save(token, "chip-X", campaign, _rows(campaign))
    manifests = checkpoint.completed_shards()
    assert len(manifests) == len(campaigns)
    assert {m["campaign"] for m in manifests} == \
        {c.name for c in campaigns}
    assert all(m["chip"] == "chip-X" for m in manifests)
