"""Property-based tests of the power models (hypothesis)."""

from hypothesis import assume, given, settings, strategies as st

from repro.dram.power import DramPowerModel
from repro.soc.power import CorePowerModel, multicore_relative_power
import pytest

#: Heavy module: deselected from the smoke tier (``pytest -m "not slow"``).
pytestmark = pytest.mark.slow


voltages = st.floats(min_value=700.0, max_value=1050.0,
                     allow_nan=False, allow_infinity=False)
freqs = st.floats(min_value=0.8, max_value=2.4,
                  allow_nan=False, allow_infinity=False)
leaks = st.floats(min_value=0.0, max_value=0.5,
                  allow_nan=False, allow_infinity=False)
bandwidths = st.floats(min_value=0.0, max_value=40.0,
                       allow_nan=False, allow_infinity=False)
trefps = st.floats(min_value=0.016, max_value=16.0,
                   allow_nan=False, allow_infinity=False)


def model(leak: float) -> CorePowerModel:
    return CorePowerModel(nominal_mv=980.0, nominal_ghz=2.4,
                          leakage_fraction=leak, leakage_v0_mv=50.0)


@given(v1=voltages, v2=voltages, f=freqs, leak=leaks)
@settings(max_examples=300, deadline=None)
def test_power_monotone_in_voltage(v1, v2, f, leak):
    assume(v1 < v2)
    m = model(leak)
    assert m.relative_power(v1, f) <= m.relative_power(v2, f)


@given(v=voltages, f1=freqs, f2=freqs, leak=leaks)
@settings(max_examples=300, deadline=None)
def test_power_monotone_in_frequency(v, f1, f2, leak):
    assume(f1 < f2)
    m = model(leak)
    assert m.relative_power(v, f1) <= m.relative_power(v, f2)


@given(v=voltages, f=freqs, leak=leaks,
       u1=st.floats(min_value=0.0, max_value=1.0),
       u2=st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=300, deadline=None)
def test_power_monotone_in_utilisation(v, f, leak, u1, u2):
    assume(u1 < u2)
    m = model(leak)
    assert m.relative_power(v, f, u1) <= m.relative_power(v, f, u2)


@given(v=voltages, leak=leaks)
@settings(max_examples=200, deadline=None)
def test_idle_power_equals_leakage_share(v, leak):
    m = model(leak)
    idle = m.relative_power(v, utilisation=0.0)
    leak_only = m.relative_power(v) - (1.0 - leak) * (v / 980.0) ** 2
    assert abs(idle - leak_only) < 1e-12


@given(v=voltages, leak=leaks,
       freqs_list=st.lists(freqs, min_size=1, max_size=8))
@settings(max_examples=300, deadline=None)
def test_multicore_bounded_by_extremes(v, leak, freqs_list):
    """Mixed-frequency power lies between all-slowest and all-fastest."""
    m = model(leak)
    mixed = multicore_relative_power(freqs_list, v, m)
    low = multicore_relative_power([min(freqs_list)] * len(freqs_list), v, m)
    high = multicore_relative_power([max(freqs_list)] * len(freqs_list), v, m)
    assert low - 1e-12 <= mixed <= high + 1e-12


@given(bw=bandwidths, t1=trefps, t2=trefps)
@settings(max_examples=300, deadline=None)
def test_dram_power_monotone_in_refresh_rate(bw, t1, t2):
    assume(t1 < t2)
    m = DramPowerModel()
    # Longer TREFP -> fewer refreshes -> less power.
    assert m.total_w(t2, bw) <= m.total_w(t1, bw)


@given(bw1=bandwidths, bw2=bandwidths, t=trefps)
@settings(max_examples=300, deadline=None)
def test_dram_savings_monotone_in_bandwidth(bw1, bw2, t):
    assume(bw1 < bw2)
    assume(t > DramPowerModel().nominal_trefp_s)
    m = DramPowerModel()
    assert m.relaxation_savings(bw2, t) <= m.relaxation_savings(bw1, t)


@given(bw=bandwidths, t=trefps)
@settings(max_examples=300, deadline=None)
def test_dram_savings_bounded(bw, t):
    m = DramPowerModel()
    savings = m.relaxation_savings(bw, t)
    # Relaxation can never save all the power (background remains), and
    # a *tightened* refresh only ever costs (negative savings).
    assert savings < 1.0
    if t >= m.nominal_trefp_s:
        assert 0.0 <= savings
    else:
        assert savings <= 0.0
