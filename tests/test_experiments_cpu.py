"""Integration: the CPU-side experiment drivers (Figures 4-7).

These run the full pipeline (campaigns + searches + GA) at reduced but
still-converged settings and assert the paper's qualitative and
quantitative shape.
"""

import pytest

from repro.experiments.fig4_spec_vmin import PAPER_RANGES_MV, run_figure4
from repro.experiments.fig5_tradeoff import run_figure5
from repro.experiments.fig6_virus_vs_nas import run_figure6
from repro.experiments.fig7_interchip import run_figure7

SEED = 1


@pytest.fixture(scope="module")
def fig4():
    return run_figure4(seed=SEED, repetitions=5)


@pytest.fixture(scope="module")
def fig5():
    return run_figure5(seed=SEED, repetitions=5)


@pytest.fixture(scope="module")
def fig6():
    return run_figure6(seed=SEED, repetitions=5, generations=8, population=16)


@pytest.fixture(scope="module")
def fig7():
    return run_figure7(seed=SEED, repetitions=5, generations=8, population=16)


# ----------------------------------------------------------------------
# Figure 4
# ----------------------------------------------------------------------
def test_fig4_covers_all_programs_and_chips(fig4):
    assert set(fig4.vmin_mv) == {"TTT", "TFF", "TSS"}
    for corner in fig4.vmin_mv.values():
        assert len(corner) == 10


def test_fig4_ranges_match_paper(fig4):
    for corner, (lo, hi) in PAPER_RANGES_MV.items():
        measured_lo, measured_hi = fig4.measured_range_mv(corner)
        assert measured_lo == pytest.approx(lo, abs=5.0), corner
        assert measured_hi == pytest.approx(hi, abs=5.0), corner


def test_fig4_guaranteed_power_reductions(fig4):
    assert fig4.guaranteed_power_reduction_pct("TTT") == pytest.approx(18.4, abs=1.0)
    assert fig4.guaranteed_power_reduction_pct("TSS") == pytest.approx(15.7, abs=1.0)


def test_fig4_workload_trends_consistent(fig4):
    """'Workload-to-workload variation follows similar trends'."""
    assert fig4.ordering_consistent_across_chips()


def test_fig4_format_renders(fig4):
    text = fig4.format()
    assert "mcf" in text and "TSS" in text


# ----------------------------------------------------------------------
# Figure 5
# ----------------------------------------------------------------------
def test_fig5_ladder_voltages(fig5):
    rails = [v for _, _, v, _ in fig5.rows()]
    assert rails == [915.0, 900.0, 885.0, 875.0, 760.0]


def test_fig5_headline_savings(fig5):
    assert fig5.full_perf_savings_pct == pytest.approx(12.8, abs=0.3)
    assert fig5.best_energy_savings_pct == pytest.approx(38.8, abs=0.3)


def test_fig5_measured_mix_vmin(fig5):
    assert fig5.measured_mix_vmin_mv == 915.0


def test_fig5_predictor_safe(fig5):
    assert fig5.predictor_is_safe
    assert fig5.predictor_report.is_safe_on_training_set


# ----------------------------------------------------------------------
# Figure 6
# ----------------------------------------------------------------------
def test_fig6_virus_tops_every_nas_workload(fig6):
    assert fig6.virus_is_highest
    assert fig6.gap_mv >= 30.0  # a clear gap, as in the paper's figure


def test_fig6_virus_vmin_band(fig6):
    assert fig6.virus_vmin_mv == pytest.approx(920.0, abs=5.0)


def test_fig6_nas_vmin_band(fig6):
    for name, vmin in fig6.nas_vmin_mv.items():
        assert 855.0 <= vmin <= 890.0, name


# ----------------------------------------------------------------------
# Figure 7
# ----------------------------------------------------------------------
def test_fig7_margin_ordering(fig7):
    assert fig7.ordering_matches_paper


def test_fig7_ttt_margin(fig7):
    assert fig7.margin_mv("TTT") == pytest.approx(60.0, abs=5.0)


def test_fig7_tff_margin(fig7):
    assert fig7.margin_mv("TFF") == pytest.approx(20.0, abs=5.0)


def test_fig7_tss_margin_negligible(fig7):
    assert fig7.tss_margin_negligible
