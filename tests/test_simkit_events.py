"""Event-loop kernel: ordering, cancellation, budgets."""

import pytest

from repro.errors import SimulationError
from repro.simkit import Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(2.0, lambda: fired.append("late"))
    sim.schedule(1.0, lambda: fired.append("early"))
    sim.run()
    assert fired == ["early", "late"]


def test_same_time_fifo_ordering():
    sim = Simulator()
    fired = []
    for i in range(5):
        sim.schedule(1.0, lambda i=i: fired.append(i))
    sim.run()
    assert fired == [0, 1, 2, 3, 4]


def test_now_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(3.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [3.5]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_cancelled_event_skipped():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, lambda: fired.append("x"))
    event.cancel()
    assert sim.run() == 0
    assert fired == []


def test_run_until_stops_at_deadline():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(5.0, lambda: fired.append(5))
    sim.run_until(2.0)
    assert fired == [1]
    assert sim.now == 2.0
    sim.run()
    assert fired == [1, 5]


def test_run_until_past_deadline_rejected():
    sim = Simulator()
    sim.run_until(5.0)
    with pytest.raises(SimulationError):
        sim.run_until(1.0)


def test_schedule_at_absolute_time():
    sim = Simulator()
    sim.run_until(2.0)
    seen = []
    sim.schedule_at(3.0, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [3.0]


def test_event_budget_guards_runaway_loops():
    sim = Simulator()

    def reschedule():
        sim.schedule(0.0, reschedule)

    sim.schedule(0.0, reschedule)
    with pytest.raises(SimulationError):
        sim.run(max_events=100)


def test_events_scheduled_during_run_fire():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: sim.schedule(1.0, lambda: fired.append("nested")))
    sim.run()
    assert fired == ["nested"]
    assert sim.now == 2.0


def test_peek_skips_cancelled():
    sim = Simulator()
    first = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    first.cancel()
    assert sim.peek() == 2.0
