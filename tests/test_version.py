"""Version metadata consistency."""

import pathlib

import repro


def test_version_matches_pyproject():
    pyproject = pathlib.Path(repro.__file__).parent.parent.parent / "pyproject.toml"
    text = pyproject.read_text()
    assert f'version = "{repro.__version__}"' in text
