"""Low-voltage SRAM fault model."""

import pytest

from repro.cpu.sram import (
    DEFAULT_CELL_VMIN_MEAN_MV,
    SramArray,
    SramFaultModel,
)
from repro.errors import ConfigurationError


@pytest.fixture()
def l1d() -> SramArray:
    return SramArray("core0.l1d", 32 * 1024, ways=8, seed=1)


def test_geometry_derivation(l1d):
    assert l1d.sets == 64
    assert l1d.total_bits == 32 * 1024 * 8


def test_bad_geometry_rejected():
    with pytest.raises(ConfigurationError):
        SramArray("bad", 1000, ways=3)


def test_failure_probability_monotonic_in_voltage(l1d):
    probs = [l1d.failure_probability(v) for v in (760, 800, 820, 860, 900)]
    assert probs == sorted(probs, reverse=True)


def test_failure_probability_half_at_mean(l1d):
    assert l1d.failure_probability(DEFAULT_CELL_VMIN_MEAN_MV) == pytest.approx(0.5)


def test_expected_failures_negligible_at_nominal(l1d):
    # At the 980 mV nominal the array must be clean.
    assert l1d.expected_failing_bits(980.0) < 1e-6


def test_sample_failures_empty_at_high_voltage(l1d):
    assert l1d.sample_failures(980.0) == []


def test_sample_failures_populated_below_vmin(l1d):
    failures = l1d.sample_failures(DEFAULT_CELL_VMIN_MEAN_MV - 30.0,
                                   max_failures=500)
    assert failures
    for f in failures:
        assert 0 <= f.set_index < l1d.sets
        assert 0 <= f.way < l1d.ways
        assert 0 <= f.bit < l1d.line_bytes * 8


def test_sample_failures_capped(l1d):
    failures = l1d.sample_failures(700.0, max_failures=100)
    assert len(failures) == 100


def test_vmin_for_budget_bisects_correctly(l1d):
    vmin = l1d.vmin_for_budget(0.5)
    assert l1d.expected_failing_bits(vmin) <= 0.5
    assert l1d.expected_failing_bits(vmin - 2.0) > 0.5


def test_hierarchy_has_all_arrays():
    model = SramFaultModel(seed=1)
    names = {a.name for a in model.arrays}
    assert "core0.l1i" in names
    assert "core7.l1d" in names
    assert "pmd3.l2" in names
    assert len(model.arrays) == 8 * 2 + 4  # 16 L1 arrays + 4 L2s


def test_hierarchy_lookup_and_weakest():
    model = SramFaultModel(seed=1)
    assert model.array("pmd0.l2").name == "pmd0.l2"
    with pytest.raises(KeyError):
        model.array("nope")
    weakest = model.weakest_array()
    assert model.hierarchy_vmin() == pytest.approx(weakest.vmin_for_budget())


def test_hierarchy_vmin_below_logic_vcrit():
    # SRAM must fail *after* logic under noisy workloads: its budgeted
    # Vmin sits below the TTT v_crit + typical droop.
    model = SramFaultModel(seed=1)
    assert model.hierarchy_vmin() < 880.0
