"""Generator-based processes."""

import pytest

from repro.errors import SimulationError
from repro.simkit import Simulator, sleep
from repro.simkit.process import spawn


def test_process_sleeps_in_virtual_time():
    sim = Simulator()
    trace = []

    def body():
        trace.append(sim.now)
        yield sleep(2.0)
        trace.append(sim.now)
        yield 3.0
        trace.append(sim.now)

    spawn(sim, body())
    sim.run()
    assert trace == [0.0, 2.0, 5.0]


def test_process_return_value_exposed():
    sim = Simulator()

    def body():
        yield 1.0
        return 42

    proc = spawn(sim, body())
    sim.run()
    assert proc.done
    assert proc.result == 42


def test_process_waits_for_other_process():
    sim = Simulator()
    trace = []

    def worker():
        yield 5.0
        return "payload"

    def waiter(target):
        value = yield target
        trace.append((sim.now, value))

    target = spawn(sim, worker())
    spawn(sim, waiter(target))
    sim.run()
    assert trace == [(5.0, "payload")]


def test_waiting_on_finished_process_resolves_immediately():
    sim = Simulator()

    def worker():
        yield 1.0
        return "done"

    target = spawn(sim, worker())
    sim.run()

    results = []

    def late_waiter():
        value = yield target
        results.append(value)

    spawn(sim, late_waiter())
    sim.run()
    assert results == ["done"]


def test_invalid_yield_type_raises():
    sim = Simulator()

    def body():
        yield "not a delay"

    spawn(sim, body())
    with pytest.raises(SimulationError):
        sim.run()


def test_multiple_waiters_all_wake():
    sim = Simulator()
    woken = []

    def worker():
        yield 2.0
        return "v"

    target = spawn(sim, worker())
    for i in range(3):
        def waiter(i=i):
            value = yield target
            woken.append((i, value))
        spawn(sim, waiter())
    sim.run()
    assert sorted(woken) == [(0, "v"), (1, "v"), (2, "v")]
