"""Virtual-time campaign scheduling and study-cost estimation."""

import pytest

from repro.core.timeline import CampaignScheduler, figure4_study_hours
from repro.errors import CampaignError
from repro.workloads.spec import spec_suite, spec_workload


@pytest.fixture(scope="module")
def suite():
    return spec_suite()[:4]


def test_serial_makespan_equals_sum(ttt_chip, suite):
    scheduler = CampaignScheduler(ttt_chip, repetitions=3, seed=1)
    timeline = scheduler.schedule(suite, parallel=False)
    assert len(timeline.searches) == 4
    assert timeline.makespan_s == pytest.approx(timeline.total_busy_s)
    assert timeline.speedup == pytest.approx(1.0)


def test_parallel_overlaps_searches(ttt_chip, suite):
    scheduler = CampaignScheduler(ttt_chip, repetitions=3, seed=1)
    serial = scheduler.schedule(suite, parallel=False)
    parallel = scheduler.schedule(suite, parallel=True)
    assert parallel.makespan_s < serial.makespan_s
    assert parallel.speedup > 1.5
    # The same work happens either way.
    assert parallel.total_busy_s == pytest.approx(serial.total_busy_s)


def test_schedule_does_not_change_results(ttt_chip, suite):
    scheduler = CampaignScheduler(ttt_chip, repetitions=3, seed=1)
    serial = scheduler.schedule(suite, parallel=False)
    parallel = scheduler.schedule(suite, parallel=True)
    by_name_serial = {s.result.workload: s.result.safe_vmin_mv
                      for s in serial.searches}
    by_name_parallel = {s.result.workload: s.result.safe_vmin_mv
                        for s in parallel.searches}
    assert by_name_serial == by_name_parallel


def test_serial_searches_never_overlap(ttt_chip, suite):
    scheduler = CampaignScheduler(ttt_chip, repetitions=3, seed=1)
    timeline = scheduler.schedule(suite, parallel=False)
    spans = sorted((s.start_s, s.end_s) for s in timeline.searches)
    for (start_a, end_a), (start_b, _end_b) in zip(spans, spans[1:]):
        assert start_b >= end_a - 1e-9


def test_durations_match_campaign_wall_time(ttt_chip, suite):
    scheduler = CampaignScheduler(ttt_chip, repetitions=3, seed=1)
    timeline = scheduler.schedule(suite)
    for scheduled in timeline.searches:
        assert scheduled.duration_s == pytest.approx(
            scheduled.result.campaign_wall_time_s)


def test_figure4_study_is_genuinely_time_consuming(ttt_chip):
    """The paper's full per-chip Figure 4 study (10 programs, 10
    repetitions, 5 mV steps, 5-minute runs) costs tens of hours of
    testbed time -- the reason it calls the flow time-consuming."""
    _timeline, hours = figure4_study_hours(ttt_chip, spec_suite(),
                                           repetitions=10, seed=1)
    assert hours > 20.0
    assert hours < 200.0


def test_duration_tracks_total_repetitions(ttt_chip):
    """A search's timeline slot covers every repetition it executed;
    shallow failures (UE/SDC) end the descent without reboot cost, so
    the duration is bounded below by the clean-run budget."""
    scheduler = CampaignScheduler(ttt_chip, repetitions=3, seed=1)
    timeline = scheduler.schedule([spec_workload("mcf")])
    search = timeline.searches[0]
    total_runs = sum(rec.run.setup.repetitions
                     for rec in search.result.records)
    from repro.core.executor import NOMINAL_RUNTIME_S
    assert search.duration_s >= total_runs * NOMINAL_RUNTIME_S * 0.9
    # The descent probed from nominal down past Vmin: a dozen-plus
    # voltage steps, three runs each.
    assert total_runs >= 3 * 10


def test_empty_study_rejected(ttt_chip):
    scheduler = CampaignScheduler(ttt_chip, seed=1)
    with pytest.raises(CampaignError):
        scheduler.schedule([])
    with pytest.raises(CampaignError):
        CampaignScheduler(ttt_chip, cores_per_search=0)
