"""Counted resources with FIFO queues."""

import pytest

from repro.errors import SimulationError
from repro.simkit import Resource, Simulator


def test_capacity_must_be_positive():
    with pytest.raises(SimulationError):
        Resource(Simulator(), capacity=0)


def test_acquire_within_capacity_grants_async():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    granted = []
    res.acquire(lambda: granted.append("a"))
    assert granted == []  # grant is via the event loop, never synchronous
    sim.run()
    assert granted == ["a"]
    assert res.in_use == 1


def test_fifo_ordering_of_waiters():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []
    res.acquire(lambda: order.append("first"))
    res.acquire(lambda: order.append("second"))
    res.acquire(lambda: order.append("third"))
    sim.run()
    assert order == ["first"]
    res.release()
    sim.run()
    res.release()
    sim.run()
    assert order == ["first", "second", "third"]


def test_release_without_hold_raises():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    with pytest.raises(SimulationError):
        res.release()


def test_available_and_queue_length_accounting():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    res.acquire(lambda: None)
    res.acquire(lambda: None)
    res.acquire(lambda: None)
    sim.run()
    assert res.available == 0
    assert res.queue_length == 1
    assert res.utilisation_snapshot() == (2, 2, 1)


def test_release_hands_slot_directly_to_waiter():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    got = []
    res.acquire(lambda: got.append(1))
    res.acquire(lambda: got.append(2))
    sim.run()
    res.release()
    sim.run()
    # Slot moved to the waiter: still fully utilized, queue drained.
    assert res.in_use == 1
    assert res.queue_length == 0
    assert got == [1, 2]
