"""Retention-time statistics: Arrhenius, tail math, calibration."""

import math

import pytest

from repro.dram.retention import (
    DEFAULT_RETENTION,
    RetentionModel,
    RetentionParams,
    _normal_cdf,
    _normal_icdf,
)
from repro.errors import ConfigurationError
from repro.units import RELAXED_REFRESH_S


@pytest.fixture()
def model() -> RetentionModel:
    return RetentionModel()


def test_acceleration_identity_at_reference(model):
    assert model.acceleration(50.0) == pytest.approx(1.0)


def test_acceleration_doubles_per_ten_degrees(model):
    # 0.64 eV halves retention roughly every 10 degC around 55 degC.
    assert model.acceleration(60.0) == pytest.approx(2.0, rel=0.02)


def test_acceleration_below_reference_slows(model):
    assert model.acceleration(40.0) < 1.0


def test_fail_probability_monotonic_in_interval(model):
    probs = [model.fail_probability(t, 60.0) for t in (0.064, 0.5, 2.283, 8.0)]
    assert probs == sorted(probs)


def test_fail_probability_monotonic_in_temperature(model):
    probs = [model.fail_probability(2.283, t) for t in (40.0, 50.0, 60.0)]
    assert probs == sorted(probs)


def test_nominal_refresh_is_error_free(model):
    # At the 64 ms JEDEC interval even 60 degC must show ~zero failures
    # across the whole 3.9e10-bit board.
    board_bits = 72 * 65536 * 8192
    assert board_bits * model.fail_probability(0.064, 60.0) < 1e-3


def test_table1_calibration_at_50c(model):
    # Aggregate per-bank-index expectation ~200 at (2.283 s, 50 degC).
    per_bank_bits = 65536 * 8192
    expected = 72 * per_bank_bits * model.fail_probability(
        RELAXED_REFRESH_S, 50.0, coupling=model.params.coupling_random)
    assert 150 < expected < 280


def test_table1_calibration_at_60c(model):
    per_bank_bits = 65536 * 8192
    expected = 72 * per_bank_bits * model.fail_probability(
        RELAXED_REFRESH_S, 60.0, coupling=model.params.coupling_random)
    assert 2800 < expected < 4400


def test_temperature_amplification_matches_paper(model):
    # Table I: ~17x more weak cells at 60 degC than 50 degC.
    ratio = model.fail_probability(RELAXED_REFRESH_S, 60.0, 1.21) / \
        model.fail_probability(RELAXED_REFRESH_S, 50.0, 1.21)
    assert 14.0 < ratio < 22.0


def test_coupling_increases_failures(model):
    base = model.fail_probability(2.283, 60.0, coupling=1.0)
    coupled = model.fail_probability(2.283, 60.0,
                                     coupling=model.params.coupling_random)
    assert coupled > base


def test_quantile_retention_inverts_cdf(model):
    for p in (1e-8, 1e-6, 1e-4, 0.5):
        t = model.quantile_retention_s(p)
        z = (math.log(t) - model.params.ln_median_s) / model.params.ln_sigma
        assert _normal_cdf(z) == pytest.approx(p, rel=1e-6)


def test_tail_sample_stays_in_tail(model):
    tail_p = model.fail_probability(4.0, 62.0, 1.21)
    threshold = model.effective_threshold_s(4.0, 62.0, 1.21)
    for u in (0.001, 0.25, 0.5, 0.999):
        t = model.tail_sample_retention_s(u, tail_p)
        assert t <= threshold * 1.0001


def test_interval_for_target_ber_inverts(model):
    target = 1e-7
    interval = model.interval_for_target_ber(target, 60.0, 1.21)
    assert model.fail_probability(interval, 60.0, 1.21) == pytest.approx(
        target, rel=1e-6)


def test_normal_icdf_roundtrip():
    for p in (1e-9, 1e-5, 0.1, 0.5, 0.9, 1 - 1e-6):
        assert _normal_cdf(_normal_icdf(p)) == pytest.approx(p, rel=1e-5)


def test_icdf_rejects_boundaries():
    with pytest.raises(ConfigurationError):
        _normal_icdf(0.0)
    with pytest.raises(ConfigurationError):
        _normal_icdf(1.0)


def test_invalid_params_rejected():
    with pytest.raises(ConfigurationError):
        RetentionParams(ln_sigma=0.0)
    with pytest.raises(ConfigurationError):
        RetentionParams(true_cell_fraction=1.5)
    with pytest.raises(ConfigurationError):
        RetentionParams(coupling_random=0.9)
    model = RetentionModel()
    with pytest.raises(ConfigurationError):
        model.fail_probability(-1.0, 50.0)
