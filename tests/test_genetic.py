"""The GA engine on synthetic fitness landscapes."""

import pytest

from repro.cpu.isa import InstrClass
from repro.cpu.kernels import InstructionLoop
from repro.errors import SearchError
from repro.viruses.genetic import GaConfig, GeneticAlgorithm


def count_fitness(target: InstrClass):
    """Toy fitness: fraction of the loop made of one target class."""
    def fitness(loop: InstructionLoop) -> float:
        return sum(1 for k in loop if k is target) / len(loop)
    return fitness


def test_ga_optimizes_simple_objective():
    ga = GeneticAlgorithm(count_fitness(InstrClass.SIMD),
                          config=GaConfig(population_size=24, generations=20),
                          seed=3)
    result = ga.run()
    assert result.best.fitness > 0.8


def test_history_is_monotone_with_elitism():
    ga = GeneticAlgorithm(count_fitness(InstrClass.NOP),
                          config=GaConfig(population_size=16, generations=12),
                          seed=5)
    result = ga.run()
    for a, b in zip(result.history, result.history[1:]):
        assert b >= a - 1e-12  # elites preserve the best


def test_seed_loops_bootstrap_search():
    seed_loop = InstructionLoop.of([InstrClass.FP_FMA] * 32)
    ga = GeneticAlgorithm(count_fitness(InstrClass.FP_FMA),
                          config=GaConfig(population_size=12, generations=2),
                          seed=1)
    result = ga.run(seed_loops=[seed_loop])
    assert result.best.fitness == pytest.approx(1.0)


def test_deterministic_given_seed():
    config = GaConfig(population_size=12, generations=6)
    a = GeneticAlgorithm(count_fitness(InstrClass.SIMD), config, seed=7).run()
    b = GeneticAlgorithm(count_fitness(InstrClass.SIMD), config, seed=7).run()
    assert a.best.loop == b.best.loop
    assert a.history == b.history


def test_different_seeds_explore_differently():
    config = GaConfig(population_size=12, generations=4)
    a = GeneticAlgorithm(count_fitness(InstrClass.SIMD), config, seed=1).run()
    b = GeneticAlgorithm(count_fitness(InstrClass.SIMD), config, seed=2).run()
    assert a.best.loop != b.best.loop or a.history != b.history


def test_evaluation_count_tracked():
    config = GaConfig(population_size=10, generations=3, elite_count=2)
    ga = GeneticAlgorithm(count_fitness(InstrClass.SIMD), config, seed=1)
    result = ga.run()
    # Initial population + (pop - elites) children per generation.
    assert result.evaluations == 10 + 3 * 8


def test_progress_callback_invoked():
    seen = []
    ga = GeneticAlgorithm(count_fitness(InstrClass.SIMD),
                          GaConfig(population_size=8, generations=4), seed=1)
    ga.run(progress=lambda gen, best: seen.append(gen))
    assert seen == [0, 1, 2, 3]


def test_genome_lengths_stay_legal():
    from repro.cpu.kernels import MAX_LOOP_LEN, MIN_LOOP_LEN
    lengths = []
    ga = GeneticAlgorithm(lambda loop: float(len(loop)),
                          GaConfig(population_size=16, generations=10), seed=2)
    result = ga.run(progress=lambda g, b: lengths.append(len(b.loop)))
    assert all(MIN_LOOP_LEN <= n <= MAX_LOOP_LEN for n in lengths)


def test_config_validation():
    with pytest.raises(SearchError):
        GaConfig(population_size=2)
    with pytest.raises(SearchError):
        GaConfig(generations=0)
    with pytest.raises(SearchError):
        GaConfig(elite_count=40, population_size=40)
    with pytest.raises(SearchError):
        GeneticAlgorithm(lambda loop: 0.0, alphabet=[])


def test_converged_detection():
    ga = GeneticAlgorithm(count_fitness(InstrClass.SIMD),
                          GaConfig(population_size=24, generations=24), seed=3)
    result = ga.run()
    assert result.converged
