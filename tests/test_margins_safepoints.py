"""Guardband reports and safe-operating-point selection."""

import pytest

from repro.core.margins import guardband_report
from repro.core.safepoints import SafeOperatingPoint, select_safe_points
from repro.core.vmin import VminResult
from repro.errors import CampaignError, ConfigurationError
from repro.soc.topology import CoreId
from repro.units import NOMINAL_REFRESH_S, RELAXED_REFRESH_S


def vr(workload: str, vmin: float) -> VminResult:
    return VminResult(workload=workload, cores=(CoreId(0, 0),), freq_ghz=2.4,
                      safe_vmin_mv=vmin, first_unsafe_mv=vmin - 5.0,
                      records=(), campaign_wall_time_s=0.0)


@pytest.fixture()
def report():
    return guardband_report(
        "TTT-ref", "TTT",
        [vr("mcf", 895.0), vr("milc", 925.0)],
        virus_result=vr("em-virus", 920.0),
    )


def test_report_ranges(report):
    assert report.min_vmin_mv == 895.0
    assert report.max_vmin_mv == 925.0
    assert report.workload_vmin_range_mv == 30.0


def test_report_virus_margin(report):
    assert report.virus_margin_mv == pytest.approx(60.0)
    assert report.shaveable_mv == pytest.approx(60.0)


def test_guaranteed_power_reduction(report):
    expected = (1.0 - (925.0 / 980.0) ** 2) * 100.0
    assert report.guaranteed_power_reduction_pct == pytest.approx(expected)


def test_report_without_virus_falls_back():
    rep = guardband_report("x", "TTT", [vr("mcf", 895.0)])
    assert rep.virus_margin_mv is None
    assert rep.shaveable_mv == pytest.approx(980.0 - 895.0)


def test_empty_report_rejected():
    with pytest.raises(CampaignError):
        guardband_report("x", "TTT", [])


def test_safe_point_reproduces_paper_930_920(report):
    """Virus at 920 + 10 mV margin and milc at 925 + 5 mV -> 930/920."""
    point = select_safe_points(report, dram_all_corrected=True)
    assert point.pmd_mv == 930.0
    assert point.soc_mv == 920.0
    assert point.trefp_s == RELAXED_REFRESH_S


def test_safe_point_refresh_gated_by_ecc(report):
    point = select_safe_points(report, dram_all_corrected=False)
    assert point.trefp_s == NOMINAL_REFRESH_S


def test_safe_point_never_exceeds_nominal():
    rep = guardband_report("x", "TSS", [vr("mcf", 900.0)],
                           virus_result=vr("em-virus", 975.0))
    point = select_safe_points(rep, dram_all_corrected=True)
    assert point.pmd_mv <= 980.0
    # TSS: effectively no margin -> the point stays at/near nominal.
    assert point.pmd_mv >= 975.0


def test_safe_point_workload_floor_dominates_when_virus_low():
    rep = guardband_report("x", "TTT", [vr("hog", 940.0)],
                           virus_result=vr("em-virus", 920.0))
    point = select_safe_points(rep, dram_all_corrected=True)
    assert point.pmd_mv == 945.0  # 940 + 5 workload margin


def test_safe_point_properties():
    point = SafeOperatingPoint(pmd_mv=930.0, soc_mv=920.0,
                               trefp_s=RELAXED_REFRESH_S, safety_margin_mv=10.0)
    assert point.pmd_undervolt_mv == 50.0
    assert point.soc_undervolt_mv == 30.0
    assert point.refresh_relaxation == pytest.approx(35.67, abs=0.01)


def test_invalid_margins_rejected(report):
    with pytest.raises(ConfigurationError):
        select_safe_points(report, True, safety_margin_mv=-1.0)
    with pytest.raises(ConfigurationError):
        select_safe_points(report, True, step_mv=0.0)
    with pytest.raises(ConfigurationError):
        SafeOperatingPoint(pmd_mv=0.0, soc_mv=920.0, trefp_s=1.0,
                           safety_margin_mv=0.0)
