"""Droop-history failure-probability model (paper Sec. IV.D sketch)."""

import numpy as np
import pytest

from repro.core.failure_prob import (
    DroopHistory,
    FailureProbabilityModel,
    GumbelFit,
    idle_vmin_mv,
)
from repro.errors import SearchError
from repro.rand import make_rng


def test_idle_vmin_is_zero_noise_vmin(ttt_chip):
    core = ttt_chip.strongest_core()
    assert idle_vmin_mv(ttt_chip, core) == ttt_chip.vmin_mv(core, 0.0)
    # Idle Vmin sits below any loaded Vmin.
    assert idle_vmin_mv(ttt_chip, core) < ttt_chip.vmin_mv(core, 0.5)


def test_history_records_and_caps():
    history = DroopHistory(capacity=5)
    for i in range(10):
        history.record(float(i))
    assert history.count == 5
    assert history.maxima_mv() == [5.0, 6.0, 7.0, 8.0, 9.0]


def test_history_rejects_negative():
    with pytest.raises(SearchError):
        DroopHistory().record(-1.0)
    with pytest.raises(SearchError):
        DroopHistory(capacity=0)


def test_history_from_workload_scatters_around_base(ttt_chip):
    history = DroopHistory()
    rng = make_rng(2)
    history.record_workload(ttt_chip, swing=0.5, epochs=200, rng=rng)
    base = ttt_chip.droop_mv(0.5)
    maxima = np.array(history.maxima_mv())
    assert abs(maxima.mean() - base) < 3.0
    assert maxima.std() > 0.5


def test_gumbel_fit_recovers_parameters():
    rng = make_rng(3)
    mu, beta = 40.0, 2.5
    history = DroopHistory()
    for sample in rng.gumbel(mu, beta, size=2000):
        history.record(max(0.0, float(sample)))
    model = FailureProbabilityModel(intrinsic_vmin_mv=850.0)
    fit = model.fit_history(history)
    assert fit.mu_mv == pytest.approx(mu, abs=0.5)
    assert fit.beta_mv == pytest.approx(beta, abs=0.4)


def test_exceedance_monotone():
    fit = GumbelFit(mu_mv=40.0, beta_mv=2.0, samples=100)
    probs = [fit.exceedance(t) for t in (30.0, 40.0, 50.0, 60.0)]
    assert probs == sorted(probs, reverse=True)
    assert 0.0 <= probs[-1] <= probs[0] <= 1.0


def test_failure_probability_below_vmin_is_certain():
    model = FailureProbabilityModel(intrinsic_vmin_mv=850.0)
    history = DroopHistory()
    rng = make_rng(4)
    for s in rng.gumbel(40.0, 2.0, size=200):
        history.record(max(0.0, float(s)))
    model.fit_history(history)
    assert model.failure_probability(850.0) == 1.0
    assert model.failure_probability(840.0) == 1.0


def test_failure_probability_grows_with_epochs():
    model = FailureProbabilityModel(intrinsic_vmin_mv=850.0)
    history = DroopHistory()
    rng = make_rng(5)
    for s in rng.gumbel(40.0, 2.0, size=200):
        history.record(max(0.0, float(s)))
    model.fit_history(history)
    voltage = 850.0 + 48.0
    single = model.failure_probability(voltage, epochs=1)
    many = model.failure_probability(voltage, epochs=100)
    assert 0.0 < single < many <= 1.0


def test_voltage_for_budget_brackets():
    model = FailureProbabilityModel(intrinsic_vmin_mv=850.0)
    history = DroopHistory()
    rng = make_rng(6)
    for s in rng.gumbel(40.0, 2.0, size=500):
        history.record(max(0.0, float(s)))
    model.fit_history(history)
    budget = 1e-3
    voltage = model.voltage_for_budget(budget)
    assert model.failure_probability(voltage) <= budget
    assert model.failure_probability(voltage - 2.0) > budget


def test_unfitted_model_rejects_queries():
    model = FailureProbabilityModel(intrinsic_vmin_mv=850.0)
    assert not model.fitted
    with pytest.raises(SearchError):
        model.failure_probability(900.0)


def test_fit_requires_samples():
    model = FailureProbabilityModel(intrinsic_vmin_mv=850.0)
    history = DroopHistory()
    history.record(10.0)
    with pytest.raises(SearchError):
        model.fit_history(history)


def test_invalid_budget_rejected():
    model = FailureProbabilityModel(intrinsic_vmin_mv=850.0)
    history = DroopHistory()
    rng = make_rng(7)
    for s in rng.gumbel(40.0, 2.0, size=100):
        history.record(max(0.0, float(s)))
    model.fit_history(history)
    with pytest.raises(SearchError):
        model.voltage_for_budget(0.0)
    with pytest.raises(SearchError):
        model.failure_probability(900.0, epochs=0)
