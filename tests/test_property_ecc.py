"""Property-based tests of the SECDED code (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.dram.ecc import CODE_BITS, DATA_BITS, DecodeStatus, SecdedCode
import pytest

#: Heavy module: deselected from the smoke tier (``pytest -m "not slow"``).
pytestmark = pytest.mark.slow


CODE = SecdedCode()

data_words = st.integers(min_value=0, max_value=(1 << DATA_BITS) - 1)
bit_positions = st.integers(min_value=0, max_value=CODE_BITS - 1)


@given(data=data_words)
@settings(max_examples=200, deadline=None)
def test_roundtrip_is_identity(data):
    result = CODE.decode(CODE.encode(data))
    assert result.status is DecodeStatus.CLEAN
    assert result.data == data


@given(data=data_words, bit=bit_positions)
@settings(max_examples=300, deadline=None)
def test_any_single_flip_is_corrected(data, bit):
    corrupted = CODE.encode(data) ^ (1 << bit)
    result = CODE.decode(corrupted)
    assert result.status is DecodeStatus.CORRECTED
    assert result.data == data


@given(data=data_words,
       bits=st.lists(bit_positions, min_size=2, max_size=2, unique=True))
@settings(max_examples=300, deadline=None)
def test_any_double_flip_is_detected(data, bits):
    corrupted = CODE.flip_bits(CODE.encode(data), bits)
    result = CODE.decode(corrupted)
    assert result.status is DecodeStatus.DETECTED_UNCORRECTABLE
    # A double error must never silently pass as clean or "corrected to
    # the right word": decode_with_truth would catch any alias.
    with_truth = CODE.decode_with_truth(corrupted, data)
    assert with_truth.status is DecodeStatus.DETECTED_UNCORRECTABLE


@given(data=data_words,
       bits=st.lists(bit_positions, min_size=3, max_size=5, unique=True))
@settings(max_examples=200, deadline=None)
def test_multi_flip_never_reported_clean_with_truth(data, bits):
    corrupted = CODE.flip_bits(CODE.encode(data), bits)
    result = CODE.decode_with_truth(corrupted, data)
    if result.status in (DecodeStatus.CLEAN, DecodeStatus.CORRECTED):
        # Only legitimate if decoding genuinely restored the data --
        # impossible for >2 flips of a distance-4 code unless flips
        # cancelled, which unique positions preclude.
        raise AssertionError("multi-bit error escaped the truth check")


@given(a=data_words, b=data_words)
@settings(max_examples=200, deadline=None)
def test_linearity_of_encoder(a, b):
    """Hamming codes are linear: encode(a) ^ encode(b) = encode(a ^ b)
    up to the overall-parity bit, which is also linear."""
    assert CODE.encode(a) ^ CODE.encode(b) == CODE.encode(a ^ b)


@given(data=data_words)
@settings(max_examples=100, deadline=None)
def test_codeword_width(data):
    assert 0 <= CODE.encode(data) < (1 << CODE_BITS)
