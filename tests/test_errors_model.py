"""Analytic BER model: pattern ordering and workload effects."""

import pytest

from repro.dram.errors_model import BitErrorModel, DataStressProfile, PatternKind
from repro.errors import ConfigurationError
from repro.units import RELAXED_REFRESH_S


@pytest.fixture()
def model() -> BitErrorModel:
    return BitErrorModel()


def test_pattern_ordering_matches_paper(model):
    """random > checkerboard > all-1s > all-0s (Liu et al. / Fig 8a)."""
    ber = {p: model.pattern_ber(p, RELAXED_REFRESH_S, 60.0) for p in PatternKind}
    assert ber[PatternKind.RANDOM] > ber[PatternKind.CHECKERBOARD]
    assert ber[PatternKind.CHECKERBOARD] > ber[PatternKind.ALL_ONES]
    assert ber[PatternKind.ALL_ONES] > ber[PatternKind.ALL_ZEROS]


def test_worst_pattern_is_random(model):
    assert model.worst_pattern(RELAXED_REFRESH_S, 60.0) is PatternKind.RANDOM


def test_solid_patterns_split_by_orientation(model):
    ones = model.pattern_stress(PatternKind.ALL_ONES)
    zeros = model.pattern_stress(PatternKind.ALL_ZEROS)
    assert ones.charged_fraction + zeros.charged_fraction == pytest.approx(1.0)
    assert ones.coupling == zeros.coupling == 1.0


def test_entropy_interpolates_to_random(model):
    full = model.entropy_stress(1.0)
    random_stress = model.pattern_stress(PatternKind.RANDOM)
    assert full.charged_fraction == pytest.approx(random_stress.charged_fraction)
    assert full.coupling == pytest.approx(random_stress.coupling)


def test_entropy_zero_behaves_like_solid(model):
    low = model.entropy_stress(0.0)
    assert low.coupling == pytest.approx(1.0)


def test_workload_ber_below_random_virus(model):
    virus = model.pattern_ber(PatternKind.RANDOM, RELAXED_REFRESH_S, 60.0)
    workload = model.workload_ber(RELAXED_REFRESH_S, 60.0,
                                  data_entropy=0.9, hot_row_fraction=0.5)
    assert workload < virus


def test_hot_rows_suppress_errors(model):
    cold = model.workload_ber(RELAXED_REFRESH_S, 60.0, 0.8, hot_row_fraction=0.0)
    hot = model.workload_ber(RELAXED_REFRESH_S, 60.0, 0.8, hot_row_fraction=0.9)
    assert hot < cold
    assert hot == pytest.approx(cold * 0.1, rel=1e-6)


def test_fully_hot_workload_error_free(model):
    assert model.workload_ber(RELAXED_REFRESH_S, 60.0, 0.8,
                              hot_row_fraction=1.0) == 0.0


def test_ber_increases_with_temperature(model):
    cool = model.pattern_ber(PatternKind.RANDOM, RELAXED_REFRESH_S, 50.0)
    warm = model.pattern_ber(PatternKind.RANDOM, RELAXED_REFRESH_S, 60.0)
    assert warm > cool


def test_invalid_inputs_rejected(model):
    with pytest.raises(ConfigurationError):
        model.workload_ber(RELAXED_REFRESH_S, 60.0, 1.5, 0.5)
    with pytest.raises(ConfigurationError):
        model.workload_ber(RELAXED_REFRESH_S, 60.0, 0.5, 1.5)
    with pytest.raises(ConfigurationError):
        DataStressProfile(charged_fraction=0.5, coupling=0.5)
