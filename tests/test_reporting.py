"""The reproduction-report builder."""

import pytest

from repro.analysis.reporting import ReproductionReport, SectionResult, build_report
#: Heavy module: deselected from the smoke tier (``pytest -m "not slow"``).
pytestmark = pytest.mark.slow



@pytest.fixture(scope="module")
def report():
    return build_report(seed=1, fast=True)


def test_report_covers_all_experiments(report):
    names = [section.name for section in report.sections]
    assert names == ["Figure 4", "Figure 5", "Figure 6", "Figure 7",
                     "Table I", "Figure 8a", "Figure 8b", "Figure 9",
                     "Stencil scheduling"]


def test_all_shape_checks_pass(report):
    failing = [s.name for s in report.sections if not s.passed]
    assert not failing, f"deviating sections: {failing}"
    assert report.all_passed


def test_sections_carry_bodies_and_verdicts(report):
    for section in report.sections:
        assert section.body.strip()
        assert section.verdict.strip()
        assert section.elapsed_s >= 0.0


def test_render_is_complete(report):
    text = report.render()
    assert "REPRODUCTION REPORT" in text
    assert "ALL SHAPE CHECKS PASS" in text
    for section in report.sections:
        assert section.name in text


def test_render_marks_deviations():
    report = ReproductionReport(sections=[
        SectionResult("X", "body", "nope", passed=False, elapsed_s=0.1),
    ])
    text = report.render()
    assert "[DEVIATION] X" in text
    assert "SOME SHAPE CHECKS DEVIATE" in text
    assert not report.all_passed
