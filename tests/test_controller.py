"""Memory-control-unit scrub path: weak cells -> real ECC -> reports."""

import numpy as np
import pytest

from repro.dram.cells import WeakCellMap
from repro.dram.controller import MemoryControlUnit
from repro.dram.ecc import DecodeStatus, SecdedCode
from repro.dram.errors_model import PatternKind
from repro.dram.geometry import BankAddress
from repro.errors import ConfigurationError
from repro.soc.slimpro import SLIMpro
from repro.units import NOMINAL_REFRESH_S, RELAXED_REFRESH_S


@pytest.fixture()
def slimpro() -> SLIMpro:
    sp = SLIMpro()
    sp.boot()
    return sp


@pytest.fixture(scope="module")
def weak_map() -> WeakCellMap:
    return WeakCellMap(BankAddress(0, 0), seed=77)


def test_nominal_refresh_scrub_is_clean(weak_map, slimpro):
    mcu = MemoryControlUnit(0, slimpro, trefp_s=NOMINAL_REFRESH_S)
    result = mcu.scrub_bank(weak_map, temp_c=60.0)
    assert result.raw_bit_errors == 0
    assert result.all_corrected


def test_relaxed_refresh_errors_all_corrected(weak_map, slimpro):
    """The paper's claim at <= 60 degC: SECDED corrects everything."""
    mcu = MemoryControlUnit(0, slimpro, trefp_s=RELAXED_REFRESH_S)
    result = mcu.scrub_bank(weak_map, temp_c=60.0)
    assert result.raw_bit_errors > 0
    assert result.all_corrected
    assert result.corrected_words == result.raw_bit_errors  # all singles


def test_ce_reports_reach_slimpro(weak_map, slimpro):
    mcu = MemoryControlUnit(0, slimpro, trefp_s=RELAXED_REFRESH_S)
    result = mcu.scrub_bank(weak_map, temp_c=60.0, now_s=5.0)
    assert slimpro.correctable_count(since_s=4.0) == result.corrected_words
    events = slimpro.ecc_events(since_s=4.0)
    assert all(e.source == "mcu0" for e in events)


def test_pattern_affects_raw_error_count(weak_map, slimpro):
    mcu = MemoryControlUnit(0, slimpro, trefp_s=RELAXED_REFRESH_S)
    random_errors = mcu.scrub_bank(weak_map, 60.0, PatternKind.RANDOM)
    zeros_errors = mcu.scrub_bank(weak_map, 60.0, PatternKind.ALL_ZEROS)
    assert zeros_errors.raw_bit_errors < random_errors.raw_bit_errors


def test_solid_patterns_partition_population(weak_map, slimpro):
    mcu = MemoryControlUnit(0, slimpro, trefp_s=RELAXED_REFRESH_S)
    ones = mcu.scrub_bank(weak_map, 60.0, PatternKind.ALL_ONES)
    zeros = mcu.scrub_bank(weak_map, 60.0, PatternKind.ALL_ZEROS)
    union = weak_map.failing_count(RELAXED_REFRESH_S, 60.0, coupling=1.0)
    assert ones.raw_bit_errors + zeros.raw_bit_errors == union


def test_set_trefp(slimpro):
    mcu = MemoryControlUnit(0, slimpro)
    mcu.set_trefp(2.283)
    assert mcu.trefp_s == 2.283
    with pytest.raises(ConfigurationError):
        mcu.set_trefp(-1.0)


def test_mcu_without_slimpro_still_scrubs(weak_map):
    mcu = MemoryControlUnit(0, slimpro=None, trefp_s=RELAXED_REFRESH_S)
    result = mcu.scrub_bank(weak_map, temp_c=60.0)
    assert result.words_scanned >= result.corrected_words


def test_invalid_mcu_index():
    with pytest.raises(ConfigurationError):
        MemoryControlUnit(-1)


def test_decode_failures_multibit_words_use_real_decoder(slimpro):
    """The vectorized scrub agrees with the SECDED code on every arity.

    One word per arity: a single flip (always corrected), a double flip
    (always detected-uncorrectable), an aliasing triple (silent
    miscorrection -- no report), a detected triple (UE report), and a
    duplicated cell that dedups back to a single flip. Reports must
    arrive in ascending (row, word) address order.
    """
    code = SecdedCode()
    # (0,1,2) aliases to a correctable-looking word; (0,4,57) is a
    # detected-uncorrectable triple. Double-check both against the code.
    mis, ue3 = (0, 1, 2), (0, 4, 57)
    assert code.decode_with_truth(
        code.flip_bits(code.encode(0), list(mis)), 0
    ).status is DecodeStatus.MISCORRECTED
    assert code.decode_with_truth(
        code.flip_bits(code.encode(0), list(ue3)), 0
    ).status is DecodeStatus.DETECTED_UNCORRECTABLE

    rows = [5] * 3 + [5] * 3 + [2, 2, 2, 9, 9]
    cols = list(mis) + [64 + b for b in ue3] + [7, 65, 73, 3, 3]
    mcu = MemoryControlUnit(0, slimpro, trefp_s=RELAXED_REFRESH_S)
    result = mcu._decode_failures(np.array(rows), np.array(cols), now_s=1.0)
    assert result.raw_bit_errors == len(rows)
    assert result.corrected_words == 2       # (2,0) single, (9,0) deduped
    assert result.uncorrectable_words == 2   # (2,1) double, (5,1) triple
    assert result.miscorrected_words == 1    # (5,0) aliased triple
    assert result.words_scanned == 5
    assert [(e.correctable, e.address) for e in slimpro.ecc_events()] == [
        (True, (2 << 16) | 0), (False, (2 << 16) | 1),
        (False, (5 << 16) | 1), (True, (9 << 16) | 0),
    ]
