"""Memory-control-unit scrub path: weak cells -> real ECC -> reports."""

import pytest

from repro.dram.cells import WeakCellMap
from repro.dram.controller import MemoryControlUnit
from repro.dram.errors_model import PatternKind
from repro.dram.geometry import BankAddress
from repro.errors import ConfigurationError
from repro.soc.slimpro import SLIMpro
from repro.units import NOMINAL_REFRESH_S, RELAXED_REFRESH_S


@pytest.fixture()
def slimpro() -> SLIMpro:
    sp = SLIMpro()
    sp.boot()
    return sp


@pytest.fixture(scope="module")
def weak_map() -> WeakCellMap:
    return WeakCellMap(BankAddress(0, 0), seed=77)


def test_nominal_refresh_scrub_is_clean(weak_map, slimpro):
    mcu = MemoryControlUnit(0, slimpro, trefp_s=NOMINAL_REFRESH_S)
    result = mcu.scrub_bank(weak_map, temp_c=60.0)
    assert result.raw_bit_errors == 0
    assert result.all_corrected


def test_relaxed_refresh_errors_all_corrected(weak_map, slimpro):
    """The paper's claim at <= 60 degC: SECDED corrects everything."""
    mcu = MemoryControlUnit(0, slimpro, trefp_s=RELAXED_REFRESH_S)
    result = mcu.scrub_bank(weak_map, temp_c=60.0)
    assert result.raw_bit_errors > 0
    assert result.all_corrected
    assert result.corrected_words == result.raw_bit_errors  # all singles


def test_ce_reports_reach_slimpro(weak_map, slimpro):
    mcu = MemoryControlUnit(0, slimpro, trefp_s=RELAXED_REFRESH_S)
    result = mcu.scrub_bank(weak_map, temp_c=60.0, now_s=5.0)
    assert slimpro.correctable_count(since_s=4.0) == result.corrected_words
    events = slimpro.ecc_events(since_s=4.0)
    assert all(e.source == "mcu0" for e in events)


def test_pattern_affects_raw_error_count(weak_map, slimpro):
    mcu = MemoryControlUnit(0, slimpro, trefp_s=RELAXED_REFRESH_S)
    random_errors = mcu.scrub_bank(weak_map, 60.0, PatternKind.RANDOM)
    zeros_errors = mcu.scrub_bank(weak_map, 60.0, PatternKind.ALL_ZEROS)
    assert zeros_errors.raw_bit_errors < random_errors.raw_bit_errors


def test_solid_patterns_partition_population(weak_map, slimpro):
    mcu = MemoryControlUnit(0, slimpro, trefp_s=RELAXED_REFRESH_S)
    ones = mcu.scrub_bank(weak_map, 60.0, PatternKind.ALL_ONES)
    zeros = mcu.scrub_bank(weak_map, 60.0, PatternKind.ALL_ZEROS)
    union = weak_map.failing_count(RELAXED_REFRESH_S, 60.0, coupling=1.0)
    assert ones.raw_bit_errors + zeros.raw_bit_errors == union


def test_set_trefp(slimpro):
    mcu = MemoryControlUnit(0, slimpro)
    mcu.set_trefp(2.283)
    assert mcu.trefp_s == 2.283
    with pytest.raises(ConfigurationError):
        mcu.set_trefp(-1.0)


def test_mcu_without_slimpro_still_scrubs(weak_map):
    mcu = MemoryControlUnit(0, slimpro=None, trefp_s=RELAXED_REFRESH_S)
    result = mcu.scrub_bank(weak_map, temp_c=60.0)
    assert result.words_scanned >= result.corrected_words


def test_invalid_mcu_index():
    with pytest.raises(ConfigurationError):
        MemoryControlUnit(-1)
