"""Thermal-zone to DRAM-device binding and gradient studies."""

import pytest

from repro.dram.cells import DramDevicePopulation
from repro.dram.geometry import DEFAULT_GEOMETRY
from repro.errors import ConfigurationError
from repro.thermal.binding import ThermalDramBinding, ZoneBinding
from repro.thermal.testbed import ThermalTestbed, ZoneConfig
from repro.units import RELAXED_REFRESH_S


@pytest.fixture(scope="module")
def population():
    return DramDevicePopulation(seed=3)


@pytest.fixture(scope="module")
def gradient_testbed():
    """Zones 0..7 regulated to a 49..63 degC staircase."""
    configs = [ZoneConfig(setpoint_c=49.0 + 2.0 * zone) for zone in range(8)]
    testbed = ThermalTestbed(configs, seed=3)
    testbed.run(1200.0)
    return testbed


@pytest.fixture(scope="module")
def binding(population, gradient_testbed):
    return ThermalDramBinding(population, gradient_testbed)


def test_default_binding_covers_all_ranks():
    binding = ZoneBinding.paper_default(DEFAULT_GEOMETRY)
    zones = set(binding.zone_of_rank.values())
    assert zones <= set(range(8))
    assert len(binding.zone_of_rank) == DEFAULT_GEOMETRY.num_dimms * \
        DEFAULT_GEOMETRY.ranks_per_dimm


def test_incomplete_binding_rejected():
    with pytest.raises(ConfigurationError):
        ZoneBinding(geometry=DEFAULT_GEOMETRY, zone_of_rank={(0, 0): 0})


def test_devices_on_same_rank_share_zone(binding, population):
    geometry = population.geometry
    by_rank = {}
    for device in geometry.device_ids():
        dimm, rank, _slot = geometry.device_location(device)
        by_rank.setdefault((dimm, rank), set()).add(
            binding.binding.zone_of_device(device))
    for (dimm, rank), zones in by_rank.items():
        assert len(zones) == 1, (dimm, rank)


def test_device_temperatures_follow_staircase(binding):
    temps = {binding.device_temperature_c(d)
             for d in range(binding.population.geometry.num_devices)}
    assert len(temps) == 8  # eight distinct regulated temperatures
    assert min(temps) == pytest.approx(49.0, abs=1.0)
    assert max(temps) == pytest.approx(63.0, abs=1.0)


def test_gradient_amplifies_hot_zones(binding):
    """Arrhenius acceleration must be visible *within one board*: the
    hottest zone's devices carry far more weak cells than the coolest's."""
    summary = binding.gradient_summary(RELAXED_REFRESH_S)
    assert len(summary) == 8
    temps = [entry["temperature_c"] for entry in summary.values()]
    counts = [entry["mean_weak_cells"] for entry in summary.values()]
    ordered = [c for _, c in sorted(zip(temps, counts))]
    assert ordered[-1] > 4.0 * ordered[0]
    # Counts rise with zone temperature (allowing sampling noise on
    # adjacent 2-degree steps): enforce on a 4-degree stride.
    for i in range(len(ordered) - 2):
        assert ordered[i + 2] > ordered[i]


def test_mismatched_testbed_rejected(population):
    small = ThermalTestbed([ZoneConfig(setpoint_c=50.0)], seed=1)
    with pytest.raises(ConfigurationError):
        ThermalDramBinding(population, small)


def test_board_totals_consistent_with_device_queries(binding):
    totals = binding.board_unique_locations(RELAXED_REFRESH_S)
    device = 5
    assert totals[device] == sum(
        binding.device_unique_locations(device, RELAXED_REFRESH_S))
