"""Shared fixtures for the test suite.

Everything is seeded so the suite is fully deterministic; fixtures that
are expensive to build (reference chips, evolved viruses, DRAM
populations) are session-scoped.
"""

from __future__ import annotations

import pytest

from repro.core.executor import CampaignExecutor
from repro.core.vmin import VminSearch
from repro.dram.cells import DramDevicePopulation
from repro.soc.chip import Chip
from repro.soc.corners import ProcessCorner
from repro.soc.xgene2 import build_platform, build_reference_chips

TEST_SEED = 1234


@pytest.fixture(scope="session")
def seed() -> int:
    return TEST_SEED


@pytest.fixture(scope="session")
def reference_chips():
    """The paper's three zero-jitter sigma parts."""
    return build_reference_chips(seed=TEST_SEED)


@pytest.fixture(scope="session")
def ttt_chip(reference_chips) -> Chip:
    return reference_chips[ProcessCorner.TTT]


@pytest.fixture(scope="session")
def tff_chip(reference_chips) -> Chip:
    return reference_chips[ProcessCorner.TFF]


@pytest.fixture(scope="session")
def tss_chip(reference_chips) -> Chip:
    return reference_chips[ProcessCorner.TSS]


@pytest.fixture()
def ttt_executor(ttt_chip) -> CampaignExecutor:
    return CampaignExecutor(ttt_chip, seed=TEST_SEED)


@pytest.fixture()
def ttt_search(ttt_executor) -> VminSearch:
    return VminSearch(ttt_executor, repetitions=5)


@pytest.fixture(scope="session")
def ttt_platform():
    return build_platform(ProcessCorner.TTT, seed=TEST_SEED)


@pytest.fixture(scope="session")
def dram_population() -> DramDevicePopulation:
    return DramDevicePopulation(seed=TEST_SEED)


@pytest.fixture(scope="session")
def evolved_virus():
    """A small but converged GA run (session-scoped: reused everywhere)."""
    from repro.viruses.didt import evolve_didt_virus
    return evolve_didt_virus(seed=TEST_SEED, generations=8, population=16)
