"""The Figure-2 framework facade across a fleet of parts."""

import pytest

from repro.core.framework import CharacterizationFramework
from repro.errors import CampaignError
from repro.soc.xgene2 import build_reference_chips
from repro.workloads.spec import spec_workload


@pytest.fixture(scope="module")
def fleet():
    return list(build_reference_chips(seed=1).values())


@pytest.fixture(scope="module")
def completed(fleet):
    framework = CharacterizationFramework(fleet, repetitions=3, seed=1)
    framework.declare_workloads([spec_workload("mcf"), spec_workload("milc")])
    framework.declare_virus(spec_workload("bwaves"))  # any stimulus works here
    framework.run()
    return framework


def test_study_per_chip(completed, fleet):
    assert set(completed.studies) == {chip.serial for chip in fleet}


def test_reports_available_after_run(completed):
    reports = completed.reports()
    assert len(reports) == 3
    for serial, report in reports.items():
        assert report.chip_serial == serial
        assert len(report.per_workload) == 2
        assert report.virus_margin_mv is not None


def test_vmin_table_layout(completed):
    table = completed.vmin_table()
    for serial, per_workload in table.items():
        assert set(per_workload) == {"mcf", "milc"}
        assert per_workload["mcf"] < per_workload["milc"]


def test_merged_csv_has_chip_column(completed):
    text = completed.merged_csv_text()
    header, first = text.splitlines()[:2]
    assert header.startswith("chip,run_id,")
    assert first.split(",")[0].endswith("-ref")
    # All three parts contribute rows.
    chips_seen = {line.split(",")[0] for line in text.splitlines()[1:] if line}
    assert len(chips_seen) == 3


def test_corner_ordering_visible_in_results(completed):
    """TSS (slow corner) needs more voltage than TTT for the same work."""
    table = completed.vmin_table()
    assert table["TSS-ref"]["milc"] > table["TTT-ref"]["milc"]


def test_outputs_before_run_rejected(fleet):
    framework = CharacterizationFramework(fleet, seed=1)
    with pytest.raises(CampaignError):
        framework.reports()
    with pytest.raises(CampaignError):
        framework.merged_csv_text()


def test_run_without_workloads_rejected(fleet):
    framework = CharacterizationFramework(fleet, seed=1)
    with pytest.raises(CampaignError):
        framework.characterize_chip(fleet[0])


def test_duplicate_serials_rejected(fleet):
    with pytest.raises(CampaignError):
        CharacterizationFramework([fleet[0], fleet[0]])


def test_empty_fleet_rejected():
    with pytest.raises(CampaignError):
        CharacterizationFramework([])


def test_duplicate_workloads_rejected(fleet):
    framework = CharacterizationFramework(fleet, seed=1)
    with pytest.raises(CampaignError):
        framework.declare_workloads([spec_workload("mcf"),
                                     spec_workload("mcf")])
