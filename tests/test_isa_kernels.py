"""ISA signatures and instruction loops."""

import pytest

from repro.cpu.isa import (
    GA_ALPHABET,
    INSTRUCTION_SPECS,
    MAX_CLASS_CURRENT,
    MIN_CLASS_CURRENT,
    InstrClass,
    spec_of,
)
from repro.cpu.kernels import (
    MAX_LOOP_LEN,
    MIN_LOOP_LEN,
    InstructionLoop,
    square_wave_loop,
)
from repro.errors import ConfigurationError


def test_every_class_has_a_spec():
    assert set(INSTRUCTION_SPECS) == set(InstrClass)


def test_current_bounds():
    assert MIN_CLASS_CURRENT == spec_of(InstrClass.NOP).current
    assert MAX_CLASS_CURRENT == spec_of(InstrClass.SIMD).current
    for spec in INSTRUCTION_SPECS.values():
        assert 0.0 <= spec.current <= 1.0
        assert spec.cycles > 0


def test_simd_hungriest_nop_cheapest():
    currents = {k: s.current for k, s in INSTRUCTION_SPECS.items()}
    assert max(currents, key=currents.get) is InstrClass.SIMD
    assert min(currents, key=currents.get) is InstrClass.NOP


def test_fp_classes_marked():
    assert spec_of(InstrClass.FP_FMA).uses_fp
    assert spec_of(InstrClass.SIMD).uses_fp
    assert not spec_of(InstrClass.INT_ALU).uses_fp


def test_memory_classes_marked():
    for klass in (InstrClass.LOAD_L1, InstrClass.LOAD_L2,
                  InstrClass.LOAD_DRAM, InstrClass.STORE):
        assert spec_of(klass).touches_memory


def test_loop_length_bounds():
    with pytest.raises(ConfigurationError):
        InstructionLoop.of([InstrClass.NOP])  # below MIN_LOOP_LEN
    with pytest.raises(ConfigurationError):
        InstructionLoop.of([InstrClass.NOP] * (MAX_LOOP_LEN + 1))


def test_loop_total_cycles():
    loop = InstructionLoop.of([InstrClass.NOP, InstrClass.INT_MUL])
    assert loop.total_cycles == pytest.approx(1.0 + 3.0)


def test_loop_mean_current_cycle_weighted():
    loop = InstructionLoop.of([InstrClass.NOP, InstrClass.SIMD])
    # SIMD occupies 4 cycles at 1.0, NOP 1 cycle at 0.08.
    expected = (1.0 * 4 + 0.08 * 1) / 5
    assert loop.mean_current == pytest.approx(expected)


def test_loop_histogram_and_describe():
    loop = InstructionLoop.of([InstrClass.SIMD] * 3 + [InstrClass.NOP] * 2)
    hist = loop.histogram()
    assert hist[InstrClass.SIMD] == 3
    assert hist[InstrClass.NOP] == 2
    assert "simd*3" in loop.describe()


def test_square_wave_half_period_sizing():
    loop = square_wave_loop(InstrClass.SIMD, InstrClass.NOP, 24)
    hist = loop.histogram()
    assert hist[InstrClass.SIMD] == 6   # 24 cycles / 4 cycles per SIMD
    assert hist[InstrClass.NOP] == 24   # 24 cycles / 1 cycle per NOP


def test_square_wave_invalid_period():
    with pytest.raises(ConfigurationError):
        square_wave_loop(InstrClass.SIMD, InstrClass.NOP, 0)


def test_square_wave_too_long_rejected():
    with pytest.raises(ConfigurationError):
        square_wave_loop(InstrClass.NOP, InstrClass.SERIALIZE, 400)


def test_ga_alphabet_covers_all_classes():
    assert set(GA_ALPHABET) == set(InstrClass)
