"""EM-guided dI/dt virus search (the Figure 6/7 stimulus)."""

import pytest

from repro.pdn.rlc import PdnModel
from repro.viruses.didt import DidtSearch, evolve_didt_virus
from repro.viruses.genetic import GaConfig


def test_evolved_virus_reaches_full_swing(evolved_virus):
    """GA + polish must land on (or at) the resonant square wave."""
    assert evolved_virus.resonant_swing > 0.95


def test_evolved_virus_positive_metrics(evolved_virus):
    assert evolved_virus.em_amplitude > 0.0
    assert evolved_virus.droop_mv > 0.0
    assert evolved_virus.evaluations > 0


def test_virus_alternates_hot_and_cold_instructions(evolved_virus):
    """The canonical dI/dt shape: high- and low-power bursts."""
    currents = [  # mean current of each instruction
        __import__("repro.cpu.isa", fromlist=["spec_of"]).spec_of(k).current
        for k in evolved_virus.loop
    ]
    assert max(currents) > 0.8
    assert min(currents) < 0.3


def test_virus_period_matches_resonance(evolved_virus):
    """One loop traversal ~ one PDN resonance period (48 cycles)."""
    res_cycles = 2.4e9 / PdnModel().params.resonant_freq_hz
    assert evolved_virus.loop.total_cycles == pytest.approx(res_cycles, rel=0.35)


def test_search_deterministic():
    config = GaConfig(population_size=10, generations=3)
    a, _ = DidtSearch(config=config, seed=99).run()
    b, _ = DidtSearch(config=config, seed=99).run()
    assert a.loop == b.loop
    assert a.em_amplitude == b.em_amplitude


def test_polish_can_be_disabled():
    config = GaConfig(population_size=10, generations=3)
    virus, result = DidtSearch(config=config, seed=4).run(polish=False)
    assert virus.loop == result.best.loop


def test_polish_never_hurts():
    config = GaConfig(population_size=10, generations=3)
    unpolished, _ = DidtSearch(config=config, seed=4).run(polish=False)
    polished, _ = DidtSearch(config=config, seed=4).run(polish=True)
    assert polished.em_amplitude >= unpolished.em_amplitude - 0.02


def test_summary_contains_key_numbers(evolved_virus):
    text = evolved_virus.summary()
    assert "swing=" in text and "droop=" in text and "em=" in text


def test_wrapper_defaults():
    virus = evolve_didt_virus(seed=5, generations=3, population=10)
    assert virus.generations >= 3
