"""Domain power models and the Figure 5 / Figure 9 scaling arithmetic."""

import pytest

from repro.errors import ConfigurationError
from repro.soc.corners import CORNER_PARAMS, ProcessCorner
from repro.soc.power import CorePowerModel, multicore_relative_power


def make_model(leak=0.0, watts=1.0) -> CorePowerModel:
    return CorePowerModel(nominal_mv=980.0, nominal_ghz=2.4,
                          leakage_fraction=leak, leakage_v0_mv=50.0,
                          nominal_watts=watts)


def test_nominal_point_is_unity():
    assert make_model().relative_power(980.0, 2.4) == pytest.approx(1.0)


def test_pure_dynamic_v_squared_scaling():
    model = make_model()
    # Figure 5 label: 915 mV at full frequency = 87.2 % power.
    assert model.relative_power(915.0) == pytest.approx(0.872, abs=0.001)


def test_dynamic_frequency_scaling():
    model = make_model()
    assert model.relative_power(980.0, 1.2) == pytest.approx(0.5)


def test_leakage_reduces_faster_than_v_squared():
    leaky = CorePowerModel(nominal_mv=980.0, nominal_ghz=2.4,
                           leakage_fraction=0.2, leakage_v0_mv=50.0)
    # Figure 9: TTT PMD at 930 mV saves ~21 % (vs ~10 % dynamic-only).
    assert 1.0 - leaky.relative_power(930.0) == pytest.approx(0.21, abs=0.01)


def test_utilisation_scales_only_dynamic():
    leaky = CorePowerModel(nominal_mv=980.0, nominal_ghz=2.4,
                           leakage_fraction=0.3, leakage_v0_mv=50.0)
    idle = leaky.relative_power(980.0, utilisation=0.0)
    assert idle == pytest.approx(0.3)  # an idle domain still leaks


def test_watts_scales_by_nominal():
    model = make_model(watts=15.5)
    assert model.watts(980.0) == pytest.approx(15.5)


def test_invalid_utilisation_rejected():
    with pytest.raises(ConfigurationError):
        make_model().relative_power(980.0, utilisation=1.5)


def test_for_corner_uses_leakage_params():
    params = CORNER_PARAMS[ProcessCorner.TFF]
    model = CorePowerModel.for_corner(params, 980.0, 2.4)
    assert model.leakage_fraction == params.leakage_fraction


def test_multicore_mixed_frequency_power():
    model = make_model()
    # Figure 5 rung: 1 PMD (2 cores) at 1.2 GHz, rail 900 mV -> 73.8 %.
    freqs = [1.2, 1.2] + [2.4] * 6
    rel = multicore_relative_power(freqs, 900.0, model)
    assert rel == pytest.approx(0.738, abs=0.001)


def test_multicore_all_slow_at_760():
    model = make_model()
    freqs = [1.2] * 8
    rel = multicore_relative_power(freqs, 760.0, model)
    assert rel == pytest.approx(0.301, abs=0.001)


def test_multicore_empty_rejected():
    with pytest.raises(ConfigurationError):
        multicore_relative_power([], 900.0, make_model())


def test_invalid_leakage_fraction_rejected():
    with pytest.raises(ConfigurationError):
        CorePowerModel(nominal_mv=980.0, nominal_ghz=2.4,
                       leakage_fraction=1.0, leakage_v0_mv=50.0)
