"""Fault-site classification and the outcome taxonomy."""

import pytest

from repro.cpu.faults import FaultEvent, FaultSite, classify_fault
from repro.cpu.outcomes import RunOutcome


def test_outcome_safety_partition():
    safe = {o for o in RunOutcome if o.is_safe}
    assert safe == {RunOutcome.CORRECT, RunOutcome.CORRECTED_ERROR}


def test_outcome_failure_flag():
    assert not RunOutcome.CORRECT.is_failure
    for o in RunOutcome:
        if o is not RunOutcome.CORRECT:
            assert o.is_failure


def test_outcome_reset_requirement():
    assert RunOutcome.CRASH.needs_reset
    assert RunOutcome.HANG.needs_reset
    assert not RunOutcome.SDC.needs_reset


def test_secded_site_single_bit_corrected():
    for site in (FaultSite.L1D_DATA, FaultSite.L2_DATA, FaultSite.L3_DATA):
        assert classify_fault(FaultEvent(site, 1)) is RunOutcome.CORRECTED_ERROR


def test_secded_site_double_bit_detected():
    assert classify_fault(FaultEvent(FaultSite.L2_DATA, 2)) is \
        RunOutcome.UNCORRECTED_ERROR


def test_secded_site_triple_bit_silent():
    assert classify_fault(FaultEvent(FaultSite.L1D_DATA, 3)) is RunOutcome.SDC


def test_parity_icache_odd_recovered_even_crashes():
    assert classify_fault(FaultEvent(FaultSite.L1I_DATA, 1)) is \
        RunOutcome.CORRECTED_ERROR
    assert classify_fault(FaultEvent(FaultSite.L1I_DATA, 2)) is RunOutcome.CRASH


def test_tlb_even_multiplicity_escapes():
    assert classify_fault(FaultEvent(FaultSite.TLB, 2)) is RunOutcome.SDC


def test_datapath_faults_are_silent():
    for site in (FaultSite.REGISTER_FILE, FaultSite.ALU_DATAPATH,
                 FaultSite.FP_DATAPATH):
        assert classify_fault(FaultEvent(site, 1)) is RunOutcome.SDC


def test_control_and_tag_faults_crash():
    assert classify_fault(FaultEvent(FaultSite.CONTROL_LOGIC, 1)) is RunOutcome.CRASH
    assert classify_fault(FaultEvent(FaultSite.CACHE_TAG, 1)) is RunOutcome.CRASH


def test_zero_bit_event_rejected():
    with pytest.raises(ValueError):
        FaultEvent(FaultSite.L1D_DATA, 0)


def test_protection_flags():
    assert FaultSite.L1D_DATA.ecc_protected
    assert not FaultSite.L1I_DATA.ecc_protected
    assert FaultSite.L1I_DATA.parity_protected
    assert not FaultSite.ALU_DATAPATH.parity_protected
