"""Property-based tests of the retention model (hypothesis)."""

import math

from hypothesis import assume, given, settings, strategies as st

from repro.dram.retention import RetentionModel, _normal_cdf, _normal_icdf
import pytest

#: Heavy module: deselected from the smoke tier (``pytest -m "not slow"``).
pytestmark = pytest.mark.slow


MODEL = RetentionModel()

intervals = st.floats(min_value=1e-3, max_value=64.0,
                      allow_nan=False, allow_infinity=False)
temps = st.floats(min_value=20.0, max_value=90.0,
                  allow_nan=False, allow_infinity=False)
couplings = st.floats(min_value=1.0, max_value=1.5,
                      allow_nan=False, allow_infinity=False)
probabilities = st.floats(min_value=1e-12, max_value=1.0 - 1e-12,
                          allow_nan=False, allow_infinity=False)


@given(interval=intervals, temp=temps, coupling=couplings)
@settings(max_examples=300, deadline=None)
def test_fail_probability_is_a_probability(interval, temp, coupling):
    p = MODEL.fail_probability(interval, temp, coupling)
    assert 0.0 <= p <= 1.0


@given(a=intervals, b=intervals, temp=temps)
@settings(max_examples=200, deadline=None)
def test_monotone_in_interval(a, b, temp):
    assume(a < b)
    assert MODEL.fail_probability(a, temp) <= MODEL.fail_probability(b, temp)


@given(interval=intervals, a=temps, b=temps)
@settings(max_examples=200, deadline=None)
def test_monotone_in_temperature(interval, a, b):
    assume(a < b)
    assert MODEL.fail_probability(interval, a) <= \
        MODEL.fail_probability(interval, b)


@given(t1=temps, t2=temps, t3=temps)
@settings(max_examples=200, deadline=None)
def test_acceleration_composes(t1, t2, t3):
    """Arrhenius acceleration is transitive: a(T1->T3) = a(T1->T2)*a(T2->T3).

    Expressed through the model's reference-anchored acceleration.
    """
    a1 = MODEL.acceleration(t1)
    a2 = MODEL.acceleration(t2)
    a3 = MODEL.acceleration(t3)
    # acceleration(t) relative to ref; ratios must compose.
    assert math.isclose((a3 / a1), (a3 / a2) * (a2 / a1), rel_tol=1e-9)


@given(p=probabilities)
@settings(max_examples=300, deadline=None)
def test_icdf_cdf_roundtrip(p):
    assert math.isclose(_normal_cdf(_normal_icdf(p)), p,
                        rel_tol=1e-4, abs_tol=1e-12)


@given(target=st.floats(min_value=1e-10, max_value=1e-3), temp=temps,
       coupling=couplings)
@settings(max_examples=200, deadline=None)
def test_interval_for_target_ber_is_inverse(target, temp, coupling):
    interval = MODEL.interval_for_target_ber(target, temp, coupling)
    realized = MODEL.fail_probability(interval, temp, coupling)
    assert math.isclose(realized, target, rel_tol=1e-4)


@given(u=st.floats(min_value=1e-9, max_value=1.0 - 1e-9),
       tail=st.floats(min_value=1e-9, max_value=0.5))
@settings(max_examples=300, deadline=None)
def test_tail_samples_bounded_by_tail_quantile(u, tail):
    sample = MODEL.tail_sample_retention_s(u, tail)
    bound = MODEL.quantile_retention_s(tail)
    assert sample <= bound * (1 + 1e-9)
