"""Workload-dependent Vmin predictor."""

import pytest

from repro.core.predictor import VminPredictor
from repro.errors import SearchError
from repro.workloads.spec import spec_suite, spec_workload


@pytest.fixture()
def trained(ttt_chip):
    """Predictor trained on oracle Vmin of the SPEC suite (weakest core)."""
    suite = spec_suite()
    core = ttt_chip.weakest_cores(1)[0]
    targets = [ttt_chip.vmin_mv(core, w.resonant_swing) for w in suite]
    predictor = VminPredictor()
    report = predictor.fit(suite, targets)
    return predictor, report, targets


def test_fit_produces_report(trained):
    _, report, _ = trained
    assert report.train_rmse_mv < 10.0
    assert len(report.coefficients) == 6


def test_conservative_bias_prevents_underprediction(trained):
    predictor, report, targets = trained
    assert report.is_safe_on_training_set
    for workload, target in zip(spec_suite(), targets):
        assert predictor.predict_mv(workload) >= target - 1e-6


def test_predictions_track_aggressiveness(trained):
    predictor, _, _ = trained
    assert predictor.predict_mv(spec_workload("milc")) > \
        predictor.predict_mv(spec_workload("mcf"))


def test_mix_prediction_above_members(trained):
    predictor, _, _ = trained
    members = [spec_workload(n) for n in ("mcf", "milc", "gcc")]
    mix_pred = predictor.predict_mix_mv(members)
    assert mix_pred > max(predictor.predict_mv(w) for w in members)


def test_predict_before_fit_rejected():
    predictor = VminPredictor()
    assert not predictor.fitted
    with pytest.raises(SearchError):
        predictor.predict_mv(spec_workload("mcf"))


def test_underdetermined_fit_rejected():
    predictor = VminPredictor()
    few = [spec_workload("mcf"), spec_workload("gcc")]
    with pytest.raises(SearchError):
        predictor.fit(few, [900.0, 905.0])


def test_misaligned_inputs_rejected():
    predictor = VminPredictor()
    with pytest.raises(SearchError):
        predictor.fit(spec_suite(), [900.0])


def test_empty_mix_rejected(trained):
    predictor, _, _ = trained
    with pytest.raises(SearchError):
        predictor.predict_mix_mv([])
