"""DRAM data-pattern benchmarks."""

import numpy as np
import pytest

from repro.dram.errors_model import PatternKind
from repro.dram.retention import DEFAULT_RETENTION
from repro.errors import ConfigurationError
from repro.viruses.dpbench import DataPatternBenchmark, dpbench_suite


def test_suite_has_four_patterns_in_paper_order():
    suite = dpbench_suite()
    assert [b.kind for b in suite] == [
        PatternKind.ALL_ZEROS, PatternKind.ALL_ONES,
        PatternKind.CHECKERBOARD, PatternKind.RANDOM,
    ]


def test_all_zeros_pattern():
    bench = DataPatternBenchmark(PatternKind.ALL_ZEROS)
    words = bench.pattern_words(16)
    assert np.all(words == 0)


def test_all_ones_pattern():
    bench = DataPatternBenchmark(PatternKind.ALL_ONES)
    words = bench.pattern_words(16)
    assert np.all(words == np.uint64(0xFFFFFFFFFFFFFFFF))


def test_checkerboard_alternates():
    bench = DataPatternBenchmark(PatternKind.CHECKERBOARD)
    words = bench.pattern_words(4)
    assert words[0] == np.uint64(0xAAAAAAAAAAAAAAAA)
    assert words[1] == np.uint64(0x5555555555555555)
    assert int(words[0]) ^ int(words[1]) == 0xFFFFFFFFFFFFFFFF


def test_random_pattern_deterministic_per_seed():
    bench = DataPatternBenchmark(PatternKind.RANDOM)
    a = bench.pattern_words(32, seed=1)
    b = bench.pattern_words(32, seed=1)
    c = bench.pattern_words(32, seed=2)
    assert np.array_equal(a, b)
    assert not np.array_equal(a, c)


def test_random_pattern_dense_entropy():
    bench = DataPatternBenchmark(PatternKind.RANDOM)
    words = bench.pattern_words(256, seed=1)
    ones = sum(bin(int(w)).count("1") for w in words)
    assert ones / (256 * 64) == pytest.approx(0.5, abs=0.03)


def test_compare_counts_flipped_bits():
    bench = DataPatternBenchmark(PatternKind.ALL_ZEROS)
    written = bench.pattern_words(8)
    read_back = written.copy()
    read_back[3] = np.uint64(0b101)
    assert DataPatternBenchmark.compare(written, read_back) == 2


def test_compare_shape_mismatch_rejected():
    bench = DataPatternBenchmark(PatternKind.ALL_ZEROS)
    with pytest.raises(ConfigurationError):
        DataPatternBenchmark.compare(bench.pattern_words(4),
                                     bench.pattern_words(8))


def test_invalid_count_rejected():
    with pytest.raises(ConfigurationError):
        DataPatternBenchmark(PatternKind.RANDOM).pattern_words(0)


def test_stress_profiles_match_errors_model():
    for bench in dpbench_suite():
        profile = bench.stress_profile(DEFAULT_RETENTION)
        assert 0.0 <= profile.charged_fraction <= 1.0
        assert profile.coupling >= 1.0
    random_profile = DataPatternBenchmark(
        PatternKind.RANDOM).stress_profile(DEFAULT_RETENTION)
    assert random_profile.coupling == DEFAULT_RETENTION.coupling_random


def test_benchmark_names():
    assert DataPatternBenchmark(PatternKind.RANDOM).name == "dpbench-random"
