"""Refresh controller: exposure analysis and inherent refresh."""

import pytest

from repro.dram.refresh import AccessTrace, RefreshController
from repro.errors import ConfigurationError


def test_trace_validation():
    with pytest.raises(ConfigurationError):
        AccessTrace(window_s=0.0, accesses={})
    with pytest.raises(ConfigurationError):
        AccessTrace(window_s=1.0, accesses={0: (2.0,)})  # outside window
    with pytest.raises(ConfigurationError):
        AccessTrace(window_s=1.0, accesses={0: (0.8, 0.2)})  # unsorted


def test_trace_from_events_sorts():
    trace = AccessTrace.from_events(10.0, [(5.0, 1), (2.0, 1), (3.0, 2)])
    assert trace.accesses[1] == (2.0, 5.0)
    assert trace.accessed_rows() == [1, 2]


def test_unaccessed_row_exposure_is_trefp():
    ctrl = RefreshController(trefp_s=2.0)
    assert ctrl.row_exposure_s(100, (), window_s=10.0) == pytest.approx(2.0)


def test_dense_accesses_shrink_exposure():
    ctrl = RefreshController(trefp_s=2.0)
    times = tuple(i * 0.25 for i in range(40))  # every 250 ms over 10 s
    exposure = ctrl.row_exposure_s(0, times, window_s=10.0)
    assert exposure < 0.5


def test_single_access_cannot_beat_trefp():
    ctrl = RefreshController(trefp_s=2.0)
    exposure = ctrl.row_exposure_s(7, (5.0,), window_s=10.0)
    assert exposure == pytest.approx(2.0)


def test_exposure_never_exceeds_trefp():
    ctrl = RefreshController(trefp_s=2.0)
    for row in (0, 1, 31337):
        assert ctrl.row_exposure_s(row, (), window_s=100.0) <= 2.0


def test_exposure_map_covers_trace_rows():
    ctrl = RefreshController(trefp_s=1.0)
    trace = AccessTrace.from_events(4.0, [(0.5, 3), (1.0, 3), (2.0, 9)])
    exposures = ctrl.exposure_map(trace)
    assert set(exposures) == {3, 9}


def test_covered_fraction_counts_split_rows():
    ctrl = RefreshController(trefp_s=2.0)
    events = [(t * 0.2, 0) for t in range(20)]      # row 0: dense
    events += [(1.0, 1)]                            # row 1: single touch
    trace = AccessTrace.from_events(4.0, events)
    assert ctrl.covered_fraction(trace) == pytest.approx(0.5)


def test_access_interval_coverage():
    trace = AccessTrace.from_events(10.0, [
        (0.0, 0), (1.0, 0), (2.0, 0),     # gaps 1.0 < 2.0 -> covered
        (0.0, 1), (5.0, 1),               # gap 5.0 -> not covered
        (3.0, 2),                         # single access -> not covered
    ])
    coverage = RefreshController.access_interval_coverage(trace, target_s=2.0)
    assert coverage == pytest.approx(1 / 3)


def test_access_interval_coverage_empty_trace():
    trace = AccessTrace(window_s=1.0, accesses={})
    assert RefreshController.access_interval_coverage(trace, 1.0) == 0.0


def test_access_interval_coverage_bad_target():
    trace = AccessTrace.from_events(1.0, [(0.1, 0)])
    with pytest.raises(ConfigurationError):
        RefreshController.access_interval_coverage(trace, 0.0)


def test_refresh_command_rate():
    ctrl = RefreshController(trefp_s=0.064, rows_per_bank=65536)
    assert ctrl.refresh_commands_per_second() == pytest.approx(65536 / 0.064)


def test_invalid_controller_params():
    with pytest.raises(ConfigurationError):
        RefreshController(trefp_s=0.0)
    with pytest.raises(ConfigurationError):
        RefreshController(rows_per_bank=0)
