"""Property-based tests of the chip Vmin model and Vmin search."""

from hypothesis import assume, given, settings, strategies as st

from repro.core.executor import CampaignExecutor
from repro.core.vmin import VminSearch
from repro.soc.chip import Chip
from repro.soc.corners import NOMINAL_PMD_MV, ProcessCorner
from repro.soc.topology import CoreId
from repro.workloads.base import CpuWorkload, Workload
import pytest

#: Heavy module: deselected from the smoke tier (``pytest -m "not slow"``).
pytestmark = pytest.mark.slow


swings = st.floats(min_value=0.0, max_value=1.0,
                   allow_nan=False, allow_infinity=False)
cores = st.integers(min_value=0, max_value=7)
corners = st.sampled_from(list(ProcessCorner))
freqs = st.floats(min_value=1.0, max_value=2.4,
                  allow_nan=False, allow_infinity=False)

_CHIPS = {corner: Chip(corner, seed=1, jitter_sigma_mv=0.0)
          for corner in ProcessCorner}


@given(corner=corners, core=cores, a=swings, b=swings)
@settings(max_examples=200, deadline=None)
def test_vmin_monotone_in_swing(corner, core, a, b):
    assume(a <= b)
    chip = _CHIPS[corner]
    cid = CoreId.from_linear(core)
    assert chip.vmin_mv(cid, a) <= chip.vmin_mv(cid, b)


@given(corner=corners, core=cores, swing=swings, f1=freqs, f2=freqs)
@settings(max_examples=200, deadline=None)
def test_vmin_monotone_in_frequency(corner, core, swing, f1, f2):
    assume(f1 <= f2)
    chip = _CHIPS[corner]
    cid = CoreId.from_linear(core)
    assert chip.vmin_mv(cid, swing, f1) <= chip.vmin_mv(cid, swing, f2)


@given(corner=corners, swing=swings)
@settings(max_examples=100, deadline=None)
def test_strongest_core_has_lowest_vmin(corner, swing):
    chip = _CHIPS[corner]
    strongest = chip.strongest_core()
    vmins = [chip.vmin_mv(CoreId.from_linear(i), swing) for i in range(8)]
    assert chip.vmin_mv(strongest, swing) == min(vmins)


@given(corner=corners, core=cores, swing=swings)
@settings(max_examples=150, deadline=None)
def test_vmin_decomposition_consistent(corner, core, swing):
    """vmin = v_crit + offset + droop, with each part non-negative-sane."""
    chip = _CHIPS[corner]
    cid = CoreId.from_linear(core)
    model = chip.core_model(cid)
    droop = chip.droop_mv(swing)
    assert abs(chip.vmin_mv(cid, swing) - model.vmin_mv(droop)) < 1e-9
    assert droop >= 0.0
    assert model.core_offset_mv >= 0.0


@given(swing=st.floats(min_value=0.25, max_value=0.62), core=cores)
@settings(max_examples=25, deadline=None)
def test_search_never_reports_below_true_vmin(swing, core):
    """The safety property of the whole search pipeline: the reported
    safe Vmin is always at or above the chip's true Vmin."""
    chip = _CHIPS[ProcessCorner.TTT]
    cid = CoreId.from_linear(core)
    executor = CampaignExecutor(chip, seed=9)
    search = VminSearch(executor, repetitions=3)
    workload = Workload(CpuWorkload(
        name=f"synthetic-{swing:.3f}", suite="synthetic",
        resonant_swing=swing, ipc=1.0, fp_ratio=0.2, mem_ratio=0.2,
        branch_ratio=0.1, l2_miss_ratio=0.05))
    result = search.search(workload, cores=(cid,))
    assert result.safe_vmin_mv >= chip.vmin_mv(cid, swing) - 1e-9
    assert result.safe_vmin_mv <= NOMINAL_PMD_MV
