"""Power-delivery-network model: impedance, resonance, droop."""

import numpy as np
import pytest

from repro.cpu.execution import ExecutionModel
from repro.cpu.isa import InstrClass
from repro.cpu.kernels import InstructionLoop, square_wave_loop
from repro.errors import ConfigurationError
from repro.pdn.droop import analyze_loop, swing_of_loop
from repro.pdn.rlc import DEFAULT_PDN, PdnModel, PdnParams


def test_default_resonance_near_50mhz():
    assert DEFAULT_PDN.resonant_freq_hz == pytest.approx(50e6, rel=0.02)


def test_quality_factor_moderate():
    assert 2.0 < DEFAULT_PDN.quality_factor < 5.0


def test_impedance_peaks_at_resonance():
    model = PdnModel()
    f_res = model.params.resonant_freq_hz
    freqs = np.array([f_res / 4, f_res / 2, f_res, f_res * 2, f_res * 4])
    z = model.impedance_ohm(freqs)
    assert np.argmax(z) == 2


def test_impedance_dc_is_series_resistance():
    model = PdnModel()
    z0 = model.impedance_ohm(np.array([0.0]))[0]
    assert z0 == pytest.approx(model.params.resistance_ohm)


def test_peak_impedance_scales_with_q():
    low_q = PdnModel(PdnParams(0.01, DEFAULT_PDN.inductance_h,
                               DEFAULT_PDN.capacitance_f))
    high_q = PdnModel(PdnParams(0.001, DEFAULT_PDN.inductance_h,
                                DEFAULT_PDN.capacitance_f))
    assert high_q.peak_impedance_ohm() > low_q.peak_impedance_ohm()


def test_negative_elements_rejected():
    with pytest.raises(ConfigurationError):
        PdnParams(-1.0, 1e-12, 1e-9)


def test_resonant_square_wave_worst_droop():
    """A square wave at the resonance out-droops off-resonance ones."""
    model = PdnModel()
    exec_model = ExecutionModel(window_cycles=4096)
    res_cycles = 2.4e9 / model.params.resonant_freq_hz
    on_res = square_wave_loop(InstrClass.SIMD, InstrClass.NOP,
                              int(res_cycles / 2))
    off_res = square_wave_loop(InstrClass.SIMD, InstrClass.NOP,
                               int(res_cycles / 8))
    droop_on = model.worst_droop_v(exec_model.profile(on_res).waveform, 2.4)
    droop_off = model.worst_droop_v(exec_model.profile(off_res).waveform, 2.4)
    assert droop_on > droop_off


def test_swing_of_resonant_square_wave_is_one():
    res_cycles = 2.4e9 / DEFAULT_PDN.resonant_freq_hz
    loop = square_wave_loop(InstrClass.SIMD, InstrClass.NOP,
                            int(round(res_cycles / 2)))
    assert swing_of_loop(loop) == pytest.approx(1.0)


def test_swing_of_flat_loop_near_zero():
    loop = InstructionLoop.of([InstrClass.INT_ALU] * 16)
    assert swing_of_loop(loop) < 0.05


def test_swing_bounded_to_unit_interval():
    for body in ([InstrClass.SIMD, InstrClass.NOP] * 16,
                 [InstrClass.FP_FMA] * 8 + [InstrClass.SERIALIZE] * 8):
        swing = swing_of_loop(InstructionLoop.of(body))
        assert 0.0 <= swing <= 1.0


def test_analysis_reports_consistent_droop():
    loop = square_wave_loop(InstrClass.SIMD, InstrClass.NOP, 24)
    analysis = analyze_loop(loop)
    assert analysis.droop_mv == pytest.approx(analysis.droop_v * 1000.0)
    assert analysis.droop_v > 0


def test_step_response_sanity():
    model = PdnModel()
    droop = model.step_response_droop_v(10.0)
    # An underdamped step droop sits below I*Z0 and above I*Z0*exp(-pi/2).
    z0 = model.params.characteristic_impedance_ohm
    assert 10.0 * z0 * 0.2 < droop < 10.0 * z0


def test_short_waveform_rejected():
    model = PdnModel()
    with pytest.raises(ConfigurationError):
        model.droop_spectrum(np.ones(4), 2.4)
