"""Documentation quality gates.

The library promises doc comments on every public item; these tests
keep that promise honest as the code evolves.
"""

import importlib
import inspect
import pathlib
import pkgutil

import pytest

import repro

PACKAGE_ROOT = pathlib.Path(repro.__file__).parent


def _all_modules():
    for info in pkgutil.walk_packages([str(PACKAGE_ROOT)], prefix="repro."):
        yield info.name


ALL_MODULES = sorted(_all_modules())


@pytest.mark.parametrize("module_name", ALL_MODULES)
def test_every_module_has_a_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), module_name


@pytest.mark.parametrize("module_name", ALL_MODULES)
def test_public_classes_and_functions_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if getattr(obj, "__module__", None) != module_name:
            continue  # re-exports are documented at their origin
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(name)
    assert not undocumented, f"{module_name}: {undocumented}"


def test_public_methods_documented_in_key_classes():
    from repro.core.framework import CharacterizationFramework
    from repro.core.vmin import VminSearch
    from repro.dram.ecc import SecdedCode
    from repro.soc.chip import Chip
    for cls in (Chip, SecdedCode, VminSearch, CharacterizationFramework):
        for name, member in vars(cls).items():
            if name.startswith("_") or not callable(member):
                continue
            assert member.__doc__ and member.__doc__.strip(), \
                f"{cls.__name__}.{name}"


def test_design_and_experiments_docs_exist():
    repo_root = PACKAGE_ROOT.parent.parent
    for doc in ("DESIGN.md", "EXPERIMENTS.md", "README.md"):
        path = repo_root / doc
        assert path.exists(), doc
        assert len(path.read_text()) > 1000, doc
