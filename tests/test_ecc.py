"""The (72,64) SECDED code: exhaustive and targeted checks."""

import pytest

from repro.dram.ecc import (
    CODE_BITS,
    DATA_BITS,
    DecodeStatus,
    ParityCode,
    SecdedCode,
)
from repro.errors import EccError
from repro.rand import make_rng


@pytest.fixture(scope="module")
def code() -> SecdedCode:
    return SecdedCode()


def test_clean_roundtrip(code):
    for data in (0, 1, 0xDEADBEEFCAFEBABE, (1 << 64) - 1):
        codeword = code.encode(data)
        result = code.decode(codeword)
        assert result.status is DecodeStatus.CLEAN
        assert result.data == data


def test_every_single_bit_error_corrected(code):
    """Exhaustive: all 72 single-bit flips of one codeword correct back."""
    data = 0x0123456789ABCDEF
    codeword = code.encode(data)
    for bit in range(CODE_BITS):
        corrupted = code.flip_bits(codeword, [bit])
        result = code.decode(corrupted)
        assert result.status is DecodeStatus.CORRECTED, f"bit {bit}"
        assert result.data == data, f"bit {bit}"
        assert result.corrected_bit == bit


def test_random_double_bit_errors_detected(code):
    rng = make_rng(5)
    data = 0xFEDCBA9876543210
    codeword = code.encode(data)
    for _ in range(300):
        bits = rng.choice(CODE_BITS, size=2, replace=False).tolist()
        corrupted = code.flip_bits(codeword, bits)
        result = code.decode(corrupted)
        assert result.status is DecodeStatus.DETECTED_UNCORRECTABLE, bits


def test_all_adjacent_double_bits_detected(code):
    data = 0xAAAAAAAAAAAAAAAA
    codeword = code.encode(data)
    for bit in range(CODE_BITS - 1):
        corrupted = code.flip_bits(codeword, [bit, bit + 1])
        assert code.decode(corrupted).status is \
            DecodeStatus.DETECTED_UNCORRECTABLE


def test_triple_bit_errors_never_reported_clean_with_truth(code):
    rng = make_rng(6)
    data = 0x1111111122222222
    codeword = code.encode(data)
    for _ in range(200):
        bits = rng.choice(CODE_BITS, size=3, replace=False).tolist()
        corrupted = code.flip_bits(codeword, bits)
        result = code.decode_with_truth(corrupted, data)
        # With ground truth, a >=2-bit escape must surface as UE or
        # MISCORRECTED -- never as a clean/healthy word.
        assert result.status in (DecodeStatus.DETECTED_UNCORRECTABLE,
                                 DecodeStatus.MISCORRECTED)


def test_decode_with_truth_passes_genuine_corrections(code):
    data = 0x5A5A5A5A5A5A5A5A
    corrupted = code.flip_bits(code.encode(data), [17])
    result = code.decode_with_truth(corrupted, data)
    assert result.status is DecodeStatus.CORRECTED
    assert result.data == data


def test_parity_bit_only_error(code):
    data = 42
    corrupted = code.flip_bits(code.encode(data), [CODE_BITS - 1])
    result = code.decode(corrupted)
    assert result.status is DecodeStatus.CORRECTED
    assert result.data == data


def test_out_of_range_inputs_rejected(code):
    with pytest.raises(EccError):
        code.encode(1 << DATA_BITS)
    with pytest.raises(EccError):
        code.decode(1 << CODE_BITS)
    with pytest.raises(EccError):
        code.flip_bits(0, [CODE_BITS])


def test_check_bits_zero_for_zero_word(code):
    assert code.encode(0) == 0


def test_parity_code_detects_odd_misses_even():
    parity = ParityCode()
    data = 0x00000000FFFFFFFF
    codeword = parity.encode(data)
    assert parity.decode(codeword).status is DecodeStatus.CLEAN
    one_flip = codeword ^ 1
    assert parity.decode(one_flip).status is \
        DecodeStatus.DETECTED_UNCORRECTABLE
    two_flips = codeword ^ 0b11
    assert parity.decode(two_flips).status is DecodeStatus.CLEAN  # escape


def test_parity_code_range_checks():
    parity = ParityCode()
    with pytest.raises(EccError):
        parity.encode(1 << DATA_BITS)
    with pytest.raises(EccError):
        parity.decode(1 << (DATA_BITS + 1))
