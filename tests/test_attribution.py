"""Component failure attribution: cache SRAM vs pipeline logic."""

import pytest

from repro.core.attribution import (
    FailureRegion,
    REGION_OF_TARGET,
    run_attribution,
)
from repro.viruses.components import TargetComponent


@pytest.fixture(scope="module")
def report(ttt_chip):
    return run_attribution(ttt_chip, seed=1)


def test_every_component_estimated(report):
    targets = {e.target for e in report.estimates}
    assert targets == set(TargetComponent)


def test_region_mapping_complete():
    assert set(REGION_OF_TARGET) == set(TargetComponent)
    cache = {t for t, r in REGION_OF_TARGET.items()
             if r is FailureRegion.CACHE_SRAM}
    assert cache == {TargetComponent.L1I, TargetComponent.L1D,
                     TargetComponent.L2}


def test_region_vmins_positive_and_distinct(report):
    sram = report.region_vmin_mv(FailureRegion.CACHE_SRAM)
    logic = report.region_vmin_mv(FailureRegion.PIPELINE_LOGIC)
    assert sram > 0 and logic > 0
    assert report.region_gap_mv == pytest.approx(abs(sram - logic))


def test_first_failing_region_consistent(report):
    first = report.first_failing_region
    other = (FailureRegion.PIPELINE_LOGIC
             if first is FailureRegion.CACHE_SRAM
             else FailureRegion.CACHE_SRAM)
    assert report.region_vmin_mv(first) >= report.region_vmin_mv(other)


def test_ladder_sorted_descending(report):
    ladder = report.ladder()
    vmins = [e.vmin_mv for e in ladder]
    assert vmins == sorted(vmins, reverse=True)


def test_estimates_near_workload_vmin_band(report, ttt_chip):
    """Component onsets sit in the same band as workload Vmins plus the
    residency sensitization -- not at wildly different voltages."""
    for estimate in report.estimates:
        assert 820.0 < estimate.vmin_mv < 960.0


def test_attribution_deterministic(ttt_chip):
    a = run_attribution(ttt_chip, seed=1)
    b = run_attribution(ttt_chip, seed=1)
    assert a.estimates == b.estimates
    assert a.sram_array_vmin_mv == b.sram_array_vmin_mv


def test_attribution_includes_sram_array_model(report):
    # The cache-region verdict must consider the SRAM arrays' own Vmin,
    # not just the virus-exposed onsets.
    assert report.sram_array_vmin_mv > 800.0
    assert report.region_vmin_mv(FailureRegion.CACHE_SRAM) >= \
        report.sram_array_vmin_mv
