"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main
#: Heavy module: deselected from the smoke tier (``pytest -m "not slow"``).
pytestmark = pytest.mark.slow



def test_list_prints_experiments(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out.split()
    for name in ("fig4", "fig5", "fig6", "fig7", "table1",
                 "fig8a", "fig8b", "fig9", "stencil"):
        assert name in out


def test_run_unknown_experiment(capsys):
    assert main(["run", "fig99"]) == 2
    err = capsys.readouterr().err
    assert "unknown" in err


def test_run_rejects_bad_supervision_flags(capsys):
    assert main(["run", "fig4", "--max-retries", "-1"]) == 2
    assert "--max-retries" in capsys.readouterr().err
    assert main(["run", "fig4", "--unit-timeout", "0"]) == 2
    assert "--unit-timeout" in capsys.readouterr().err


def test_run_fast_fig4_real_faults(capsys):
    """A seeded real-fault schedule must not change the printed figure."""
    assert main(["run", "fig4", "--seed", "1", "--fast"]) == 0
    clean = capsys.readouterr().out.rsplit("[fig4:", 1)[0]
    assert main(["run", "fig4", "--seed", "1", "--fast", "--jobs", "2",
                 "--real-faults", "7", "--unit-timeout", "60"]) == 0
    faulted = capsys.readouterr().out.rsplit("[fig4:", 1)[0]
    assert faulted == clean


def test_run_fast_fig8a(capsys):
    assert main(["run", "fig8a", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "Figure 8a" in out
    assert "[fig8a:" in out


def test_run_thermal_faults_flag(capsys):
    """--thermal-faults with a recoverable schedule leaves the printed
    table identical to the clean regulated run."""
    assert main(["run", "table1", "--seed", "1", "--fast"]) == 0
    clean = capsys.readouterr().out.rsplit("[table1:", 1)[0]
    assert main(["run", "table1", "--seed", "1", "--fast",
                 "--thermal-faults", "0"]) == 0
    faulted = capsys.readouterr().out.rsplit("[table1:", 1)[0]
    assert "Table I" in faulted
    assert faulted == clean
    assert main(["run", "fig8a", "--seed", "1",
                 "--thermal-faults", "0"]) == 0
    assert "Figure 8a" in capsys.readouterr().out


def test_run_fast_fig4(capsys):
    assert main(["run", "fig4", "--seed", "1", "--fast"]) == 0
    out = capsys.readouterr().out
    assert "Figure 4" in out
    assert "TSS" in out


def test_run_fast_stencil(capsys):
    assert main(["run", "stencil", "--seed", "1", "--fast"]) == 0
    assert "Stencil" in capsys.readouterr().out


def test_run_fast_multiprocess(capsys):
    assert main(["run", "multiprocess", "--seed", "1", "--fast"]) == 0
    assert "multi-process" in capsys.readouterr().out


def test_report_fast(capsys):
    assert main(["report", "--seed", "1", "--fast"]) == 0
    out = capsys.readouterr().out
    assert "REPRODUCTION REPORT" in out
    assert "ALL SHAPE CHECKS PASS" in out
