"""Watchdog recovery ladder."""

import pytest

from repro.core.watchdog import Watchdog, WatchdogVerdict
from repro.cpu.outcomes import RunOutcome
from repro.errors import ConfigurationError


def test_clean_run_completes_in_nominal_time():
    dog = Watchdog()
    run = dog.supervise(RunOutcome.CORRECT, nominal_runtime_s=300.0)
    assert run.verdict is WatchdogVerdict.COMPLETED
    assert run.wall_time_s == 300.0


def test_sdc_does_not_need_recovery():
    dog = Watchdog()
    run = dog.supervise(RunOutcome.SDC, 300.0)
    assert run.verdict is WatchdogVerdict.COMPLETED


def test_hang_costs_timeout_plus_reset():
    dog = Watchdog(timeout_s=120.0, reset_time_s=45.0, reset_success_rate=1.0)
    run = dog.supervise(RunOutcome.HANG, 300.0)
    assert run.verdict is WatchdogVerdict.TIMEOUT_RESET
    assert run.wall_time_s == pytest.approx(165.0)


def test_crash_noticed_midway():
    dog = Watchdog(reset_success_rate=1.0)
    run = dog.supervise(RunOutcome.CRASH, 300.0)
    assert run.wall_time_s == pytest.approx(150.0 + dog.reset_time_s)


def test_escalation_to_power_switch():
    dog = Watchdog(reset_success_rate=0.8)
    verdicts = [dog.supervise(RunOutcome.HANG, 300.0).verdict
                for _ in range(10)]
    power_cycles = sum(1 for v in verdicts if v is WatchdogVerdict.TIMEOUT_POWER)
    assert power_cycles == 2  # deterministic: every 5th hang escalates


def test_power_cycle_costs_more():
    dog = Watchdog(reset_success_rate=0.0)  # reset never works
    run = dog.supervise(RunOutcome.HANG, 300.0)
    assert run.verdict is WatchdogVerdict.TIMEOUT_POWER
    assert run.wall_time_s == pytest.approx(
        dog.timeout_s + dog.reset_time_s + dog.power_cycle_time_s)


def test_recovery_events_logged():
    dog = Watchdog()
    dog.supervise(RunOutcome.HANG, 300.0, now_s=10.0, description="run1")
    dog.supervise(RunOutcome.CORRECT, 300.0, now_s=20.0)
    events = dog.recovery_events()
    assert len(events) == 1
    assert events[0].run_description == "run1"


def test_invalid_configuration_rejected():
    with pytest.raises(ConfigurationError):
        Watchdog(timeout_s=0.0)
    with pytest.raises(ConfigurationError):
        Watchdog(reset_success_rate=1.5)
    dog = Watchdog()
    with pytest.raises(ConfigurationError):
        dog.supervise(RunOutcome.CORRECT, 0.0)


# ----------------------------------------------------------------------
# Escalation fraction: long-run rate must equal 1 - reset_success_rate
# ----------------------------------------------------------------------
@pytest.mark.parametrize("rate", [0.0, 0.05, 0.1, 0.25, 1.0 / 3.0, 0.4,
                                  0.5, 0.6, 2.0 / 3.0, 0.75, 0.8, 0.9,
                                  0.99, 1.0])
def test_escalation_fraction_tracks_reset_failure(rate):
    """Over N hangs, power cycles must track N * (1 - rate) within one
    event, for *every* rate in [0, 1] -- not just rates above 0.5.

    Regression: the old ``escalate_every = round(1 / (1 - rate))``
    collapsed to 1 for every rate below 0.5, power-cycling on *all*
    hangs (e.g. rate=0.4 escalated 100% of the time instead of 60%).
    """
    dog = Watchdog(reset_success_rate=rate)
    hangs = 400
    power_cycles = sum(
        1 for _ in range(hangs)
        if dog.supervise(RunOutcome.HANG, 300.0).verdict
        is WatchdogVerdict.TIMEOUT_POWER)
    assert abs(power_cycles - hangs * (1.0 - rate)) <= 1.0 + 1e-6


def test_escalation_schedule_low_rate_exact_pattern():
    """rate=0.25: 3 of every 4 hangs escalate, starting at the 2nd."""
    dog = Watchdog(reset_success_rate=0.25)
    verdicts = [dog.supervise(RunOutcome.HANG, 300.0).verdict
                for _ in range(8)]
    escalated = [v is WatchdogVerdict.TIMEOUT_POWER for v in verdicts]
    assert escalated == [False, True, True, True, False, True, True, True]


def test_escalation_extremes_unchanged():
    """rate=1 never escalates; rate=0 always escalates."""
    perfect = Watchdog(reset_success_rate=1.0)
    broken = Watchdog(reset_success_rate=0.0)
    for _ in range(20):
        assert perfect.supervise(RunOutcome.HANG, 300.0).verdict \
            is WatchdogVerdict.TIMEOUT_RESET
        assert broken.supervise(RunOutcome.HANG, 300.0).verdict \
            is WatchdogVerdict.TIMEOUT_POWER
