"""Campaign executor against the simulated chip."""

import pytest

from repro.core.campaign import CharacterizationRun, CharacterizationSetup
from repro.core.executor import CampaignExecutor, NOMINAL_RUNTIME_S
from repro.core.campaign import CampaignPlan
from repro.cpu.outcomes import RunOutcome
from repro.soc.topology import CoreId
from repro.workloads.spec import spec_workload


def make_run(voltage_mv: float, cores=(CoreId(0, 0),), reps=5,
             workload="milc", run_id=1) -> CharacterizationRun:
    return CharacterizationRun(
        workload=spec_workload(workload),
        setup=CharacterizationSetup(voltage_mv=voltage_mv, cores=tuple(cores),
                                    repetitions=reps),
        run_id=run_id,
    )


def test_safe_voltage_all_correct(ttt_executor):
    record = ttt_executor.execute_run(make_run(980.0))
    assert record.all_safe
    assert record.counts.total == 5
    assert record.counts.of(RunOutcome.CORRECT) == 5


def test_below_vmin_fails(ttt_executor):
    # milc on core0 (weak core) has Vmin ~ 925; run well below it.
    record = ttt_executor.execute_run(make_run(900.0))
    assert not record.all_safe


def test_rows_recorded_per_repetition(ttt_executor):
    ttt_executor.execute_run(make_run(980.0, reps=7))
    assert len(ttt_executor.store) == 7


def test_multicore_run_binds_to_weakest(ttt_executor):
    all_cores = tuple(CoreId.from_linear(i) for i in range(8))
    # 930 mV: safe on the strongest core for milc but not chip-wide
    # (weakest-core Vmin ~ 925 -> borderline); use 910 to be clearly
    # below the weakest core's milc Vmin.
    record = ttt_executor.execute_run(make_run(910.0, cores=all_cores))
    assert not record.all_safe
    single = ttt_executor.execute_run(
        make_run(910.0, cores=(CoreId(3, 1),), run_id=2))
    assert single.all_safe  # strongest core alone is fine at 910


def test_wall_time_accounts_recovery(ttt_executor):
    safe = ttt_executor.execute_run(make_run(980.0, reps=3))
    assert safe.wall_time_s == pytest.approx(3 * NOMINAL_RUNTIME_S)
    deep = ttt_executor.execute_run(make_run(850.0, reps=3, run_id=3))
    assert deep.wall_time_s != pytest.approx(3 * NOMINAL_RUNTIME_S)


def test_campaign_stop_on_unsafe(ttt_executor):
    plan = CampaignPlan().add_workload(spec_workload("milc"))
    plan.add_voltage_sweep(980.0, 850.0, 10.0, repetitions=3)
    campaign = plan.build()[0]
    records = ttt_executor.execute_campaign(campaign, stop_on_unsafe=True)
    assert not records[-1].all_safe
    assert all(r.all_safe for r in records[:-1])
    assert len(records) < len(campaign.runs)


def test_execute_all_runs_every_campaign(ttt_executor):
    plan = CampaignPlan().add_workloads(
        [spec_workload("mcf"), spec_workload("gcc")])
    plan.add_setup(CharacterizationSetup(voltage_mv=980.0, repetitions=2))
    records = ttt_executor.execute_all(plan.build())
    assert len(records) == 2


def test_executor_deterministic(ttt_chip):
    a = CampaignExecutor(ttt_chip, seed=5).execute_run(make_run(922.0, reps=10))
    b = CampaignExecutor(ttt_chip, seed=5).execute_run(make_run(922.0, reps=10))
    assert a.counts.counts == b.counts.counts
