"""Voltage domains and regulators."""

import pytest

from repro.errors import VoltageDomainError
from repro.soc.domains import DomainName, VoltageRegulator, default_regulators


def test_default_rails_at_paper_nominals():
    regs = default_regulators()
    assert regs[DomainName.PMD].nominal_mv == 980.0
    assert regs[DomainName.SOC].nominal_mv == 950.0


def test_set_voltage_snaps_to_step():
    reg = VoltageRegulator(DomainName.PMD, nominal_mv=980.0, step_mv=5.0)
    assert reg.set_voltage(933.0) == 935.0
    assert reg.current_mv == 935.0


def test_set_voltage_out_of_range_rejected():
    reg = VoltageRegulator(DomainName.PMD, nominal_mv=980.0, min_mv=700.0)
    with pytest.raises(VoltageDomainError):
        reg.set_voltage(650.0)
    with pytest.raises(VoltageDomainError):
        reg.set_voltage(1100.0)
    assert reg.current_mv == 980.0  # unchanged after rejection


def test_reset_to_nominal():
    reg = VoltageRegulator(DomainName.PMD, nominal_mv=980.0)
    reg.set_voltage(930.0)
    reg.reset_to_nominal()
    assert reg.current_mv == 980.0


def test_undervolt_accounting():
    reg = VoltageRegulator(DomainName.PMD, nominal_mv=980.0)
    reg.set_voltage(930.0)
    assert reg.undervolt_mv() == 50.0


def test_nominal_outside_range_rejected():
    with pytest.raises(VoltageDomainError):
        VoltageRegulator(DomainName.PMD, nominal_mv=980.0, min_mv=990.0)


def test_dram_rail_fixed():
    regs = default_regulators()
    dram = regs[DomainName.DRAM]
    assert dram.set_voltage(1350.0) == 1350.0
    with pytest.raises(VoltageDomainError):
        dram.set_voltage(1300.0)
