"""The deterministic fault-injection harness (repro.core.faults)."""

import pytest

from repro.core.faults import (
    SPURIOUS_ESCALATION,
    WORKER_KILL,
    FaultBurst,
    FaultInjector,
    FaultPlan,
)
from repro.core.parallel import parallel_map
from repro.errors import CampaignError


def _square(x):
    return x * x


# ----------------------------------------------------------------------
# FaultBurst
# ----------------------------------------------------------------------
def test_burst_hits_window_and_depth():
    burst = FaultBurst(first_row=3, rows=2, depth=2)
    assert burst.hits(3, 0) and burst.hits(4, 1)
    assert not burst.hits(2, 0)        # before the window
    assert not burst.hits(5, 0)        # past the window
    assert not burst.hits(3, 2)        # past the doomed depth


def test_burst_validation():
    with pytest.raises(CampaignError):
        FaultBurst(first_row=-1, rows=1, depth=1)
    with pytest.raises(CampaignError):
        FaultBurst(first_row=0, rows=0, depth=1)
    with pytest.raises(CampaignError):
        FaultBurst(first_row=0, rows=1, depth=0)


# ----------------------------------------------------------------------
# FaultPlan
# ----------------------------------------------------------------------
def test_plan_validation():
    with pytest.raises(CampaignError):
        FaultPlan(shard_kills=((-1, 1),))
    with pytest.raises(CampaignError):
        FaultPlan(shard_escalations=((0, 0),))
    with pytest.raises(CampaignError):
        FaultPlan(interrupt_after_shards=0)


def test_plan_max_transport_depth():
    assert FaultPlan().max_transport_depth == 0
    plan = FaultPlan(corruption_bursts=(FaultBurst(0, 1, 2),),
                     loss_bursts=(FaultBurst(5, 2, 4),))
    assert plan.max_transport_depth == 4


def test_random_plan_is_reproducible():
    a = FaultPlan.random(99, shards=6, rows=120)
    b = FaultPlan.random(99, shards=6, rows=120)
    assert a == b
    assert a != FaultPlan.random(100, shards=6, rows=120)


def test_random_plan_places_bursts_inside_row_range():
    plan = FaultPlan.random(3, shards=4, rows=50, max_depth=3)
    for burst in plan.corruption_bursts + plan.loss_bursts:
        assert 0 <= burst.first_row < 50
        assert 1 <= burst.depth <= 3
    assert plan.corruption_bursts and plan.loss_bursts


def test_random_plan_without_rows_has_no_bursts():
    plan = FaultPlan.random(3, shards=4, rows=0)
    assert plan.corruption_bursts == () and plan.loss_bursts == ()


def test_random_plan_needs_shards():
    with pytest.raises(CampaignError):
        FaultPlan.random(1, shards=0)


# ----------------------------------------------------------------------
# FaultInjector
# ----------------------------------------------------------------------
def test_shard_fault_order_kills_then_escalations_then_survival():
    injector = FaultInjector(FaultPlan(shard_kills=((0, 2),),
                                       shard_escalations=((0, 1),)))
    assert injector.shard_fault(0, 0) == WORKER_KILL
    assert injector.shard_fault(0, 1) == WORKER_KILL
    assert injector.shard_fault(0, 2) == SPURIOUS_ESCALATION
    assert injector.shard_fault(0, 3) is None
    assert injector.shard_fault(1, 0) is None      # unlisted shard survives
    assert injector.stats.worker_kills == 2
    assert injector.stats.spurious_escalations == 1


def test_transport_decisions_are_pure_of_index_and_attempt():
    plan = FaultPlan(corruption_bursts=(FaultBurst(2, 3, 2),),
                     loss_bursts=(FaultBurst(0, 1, 1),))
    injector = FaultInjector(plan)
    for _ in range(3):  # same (row, attempt) -> same answer, every time
        assert injector.corrupt_frame(2, 0) is True
        assert injector.corrupt_frame(2, 2) is False
        assert injector.drop_packet(0, 0) is True
        assert injector.drop_packet(1, 0) is False
    assert injector.stats.corrupted_frames == 3
    assert injector.stats.dropped_packets == 3
    assert injector.stats.total == 6


def test_interrupt_due_threshold():
    injector = FaultInjector(FaultPlan(interrupt_after_shards=2))
    assert not injector.interrupt_due(1)
    assert injector.interrupt_due(2) and injector.interrupt_due(3)
    assert not FaultInjector(FaultPlan()).interrupt_due(10)


# ----------------------------------------------------------------------
# parallel_map under injected kills
# ----------------------------------------------------------------------
@pytest.mark.parametrize("jobs", [1, 2])
def test_parallel_map_reexecutes_killed_units(jobs):
    plan = FaultPlan(shard_kills=((0, 2), (3, 1)),
                     shard_escalations=((1, 1),))
    injector = FaultInjector(plan)
    items = list(range(5))
    assert parallel_map(_square, items, jobs=jobs,
                        fault_injector=injector) == [0, 1, 4, 9, 16]
    assert injector.stats.worker_kills == 3
    assert injector.stats.spurious_escalations == 1
