"""The Jammer detector workload and its QoS accounting."""

import pytest

from repro.errors import ConfigurationError, WorkloadError
from repro.workloads.jammer import (
    JAMMER_WORKLOAD,
    JammerConfig,
    JammerDetector,
    SdrFrontend,
)


def test_workload_signature_present():
    assert JAMMER_WORKLOAD.name == "jammer"
    assert JAMMER_WORKLOAD.dram is not None
    assert JAMMER_WORKLOAD.dram.bandwidth_gbs < 2.0  # CPU-bound detector


def test_frontend_schedules_poisson_bursts():
    fe = SdrFrontend(JammerConfig(), burst_rate_hz=5.0, seed=1)
    fe.schedule_bursts(4.0)
    assert fe.bursts
    for start, end, channel in fe.bursts:
        assert 0.0 <= start < 4.0
        assert end > start
        assert 0 <= channel < 16


def test_frontend_burst_boosts_channel_energy():
    cfg = JammerConfig()
    fe = SdrFrontend(cfg, burst_rate_hz=0.0, seed=2)
    fe.bursts = [(0.0, 1.0, 3)]
    frame = fe.frame(0.5)
    boosted = frame[3].mean()
    others = frame[[c for c in range(cfg.channels) if c != 3]].mean()
    assert boosted > others * 5


def test_detection_run_meets_qos_at_nominal():
    detector = JammerDetector(instances=4, seed=3)
    report = detector.run(duration_s=2.0, burst_rate_hz=2.0)
    assert report.bursts_injected > 0
    assert report.detection_rate == 1.0
    assert report.qos_met
    assert report.max_latency_s <= JammerConfig().qos_latency_s


def test_detection_run_deterministic():
    a = JammerDetector(instances=2, seed=5).run(duration_s=1.0)
    b = JammerDetector(instances=2, seed=5).run(duration_s=1.0)
    assert a.bursts_injected == b.bursts_injected
    assert a.bursts_detected == b.bursts_detected
    assert a.max_latency_s == b.max_latency_s


def test_severe_slowdown_breaks_qos():
    """Frequency scaling (unlike undervolting) dilates frame processing;
    past the QoS bound the detector must report violation."""
    detector = JammerDetector(instances=2, seed=7)
    report = detector.run(duration_s=2.0, burst_rate_hz=3.0,
                          processing_slowdown=40.0)
    assert not report.qos_met


def test_quiet_spectrum_no_false_alarms():
    detector = JammerDetector(instances=2, seed=9)
    report = detector.run(duration_s=1.0, burst_rate_hz=0.0)
    assert report.bursts_injected == 0
    assert report.false_alarms == 0
    assert report.qos_met


def test_invalid_configs_rejected():
    with pytest.raises(ConfigurationError):
        JammerConfig(channels=0)
    with pytest.raises(ConfigurationError):
        JammerConfig(qos_latency_s=0.0)
    with pytest.raises(WorkloadError):
        JammerDetector(instances=0)
    with pytest.raises(WorkloadError):
        JammerDetector(instances=1).run(duration_s=0.0)
