"""Deterministic random-stream management."""

import numpy as np

from repro.rand import DEFAULT_SEED, make_rng, substream


def test_make_rng_accepts_generator_passthrough():
    gen = np.random.default_rng(7)
    assert make_rng(gen) is gen


def test_make_rng_none_is_deterministic():
    a = make_rng(None).integers(0, 1000, size=10)
    b = make_rng(None).integers(0, 1000, size=10)
    assert np.array_equal(a, b)


def test_make_rng_int_seed_reproducible():
    a = make_rng(42).random(5)
    b = make_rng(42).random(5)
    assert np.array_equal(a, b)


def test_substream_same_label_same_stream():
    a = substream(1, "chip").random(8)
    b = substream(1, "chip").random(8)
    assert np.array_equal(a, b)


def test_substream_different_labels_decorrelated():
    a = substream(1, "chip").random(8)
    b = substream(1, "dram").random(8)
    assert not np.array_equal(a, b)


def test_substream_different_seeds_differ():
    a = substream(1, "chip").random(8)
    b = substream(2, "chip").random(8)
    assert not np.array_equal(a, b)


def test_substream_index_distinguishes():
    a = substream(1, "core", index=0).random(4)
    b = substream(1, "core", index=1).random(4)
    assert not np.array_equal(a, b)


def test_substream_positional_indices_match_index_kwarg():
    a = substream(1, "core", 0).random(4)
    b = substream(1, "core", index=0).random(4)
    assert np.array_equal(a, b)


def test_substream_multi_index_order_matters():
    a = substream(1, "em-read", 3, 1).random(4)
    b = substream(1, "em-read", 1, 3).random(4)
    assert not np.array_equal(a, b)


def test_derive_seed_stable_and_decorrelated():
    from repro.rand import derive_seed
    assert derive_seed(1, "arm", 0) == derive_seed(1, "arm", 0)
    assert derive_seed(1, "arm", 0) != derive_seed(1, "arm", 1)
    assert 0 <= derive_seed(1, "arm", 0) < 2**63


def test_substream_none_uses_default_seed():
    a = substream(None, "x").random(4)
    b = substream(DEFAULT_SEED, "x").random(4)
    assert np.array_equal(a, b)
