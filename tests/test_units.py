"""Unit-convention helpers."""


import pytest

from repro import units


def test_celsius_kelvin_roundtrip():
    assert units.kelvin_to_celsius(units.celsius_to_kelvin(50.0)) == pytest.approx(50.0)


def test_celsius_to_kelvin_offset():
    assert units.celsius_to_kelvin(0.0) == pytest.approx(273.15)


def test_mv_v_roundtrip():
    assert units.v_to_mv(units.mv_to_v(980.0)) == pytest.approx(980.0)


def test_ghz_hz_roundtrip():
    assert units.hz_to_ghz(units.ghz_to_hz(2.4)) == pytest.approx(2.4)


def test_refresh_relaxation_factor_matches_paper():
    # "from the nominal 64ms to 2.283s" is the paper's "35x" relaxation.
    assert units.REFRESH_RELAX_FACTOR == pytest.approx(35.67, abs=0.01)


def test_percent_reduction_paper_example():
    # Figure 9: 31.1 W -> 24.8 W is quoted as 20.2 % savings.
    assert units.percent(31.1, 24.8) == pytest.approx(20.2, abs=0.1)


def test_percent_zero_before_raises():
    with pytest.raises(ZeroDivisionError):
        units.percent(0.0, 1.0)


def test_boltzmann_constant_value():
    assert units.BOLTZMANN_EV_PER_K == pytest.approx(8.617e-5, rel=1e-3)
