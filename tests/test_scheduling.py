"""Vmin-aware task placement and frequency assignment."""

import pytest

from repro.analysis.scheduling import (
    plan_naive,
    plan_placement,
    scheduling_advantage,
)
from repro.errors import CampaignError
from repro.soc.topology import NOMINAL_FREQ_GHZ, REDUCED_FREQ_GHZ
from repro.workloads.spec import spec_suite, spec_workload


@pytest.fixture()
def four_tasks():
    return [spec_workload(n) for n in ("milc", "bwaves", "mcf", "gcc")]


def test_aware_plan_uses_strongest_cores(ttt_chip, four_tasks):
    plan = plan_placement(ttt_chip, four_tasks)
    occupied = plan.occupied_cores()
    assert len(occupied) == 4
    # On the reference TTT part, the strongest cores sit on PMD 3 and 2.
    assert all(core.pmd in (2, 3) for core in occupied)


def test_aware_beats_naive_on_partial_load(ttt_chip, four_tasks):
    aware, naive, advantage = scheduling_advantage(ttt_chip, four_tasks)
    assert advantage > 0.0
    assert aware.rail_mv < naive.rail_mv
    assert aware.relative_power < naive.relative_power


def test_full_load_equalizes_core_choice(ttt_chip):
    """With all 8 cores occupied core choice cannot help (same set)."""
    suite = spec_suite()[:8]
    aware = plan_placement(ttt_chip, suite)
    naive = plan_naive(ttt_chip, suite)
    assert aware.rail_mv == naive.rail_mv


def test_frequency_scaling_downclocks_weakest_pmds(ttt_chip):
    suite = spec_suite()[:8]
    plan = plan_placement(ttt_chip, suite, slow_pmd_count=2)
    # Reference TTT: PMDs 0 and 1 hold the weakest cores.
    assert plan.pmd_freq_ghz[0] == REDUCED_FREQ_GHZ
    assert plan.pmd_freq_ghz[1] == REDUCED_FREQ_GHZ
    assert plan.pmd_freq_ghz[2] == plan.pmd_freq_ghz[3] == NOMINAL_FREQ_GHZ
    assert plan.performance_fraction == pytest.approx(0.75)


def test_aware_frequency_choice_beats_naive(ttt_chip):
    """Naive downclocking of the *strong* PMDs keeps the weak ones
    binding the rail at 2.4 GHz -- no voltage unlocked."""
    suite = spec_suite()[:8]
    aware = plan_placement(ttt_chip, suite, slow_pmd_count=2)
    naive = plan_naive(ttt_chip, suite, slow_pmd_count=2)
    assert aware.rail_mv < naive.rail_mv
    assert aware.performance_fraction == naive.performance_fraction


def test_plan_reproduces_figure5_rung(ttt_chip):
    """The aware scheduler at 2 slow PMDs lands on the paper's 885 mV."""
    from repro.workloads.mixes import FIGURE5_BENCHMARKS
    mix = [spec_workload(n) for n in FIGURE5_BENCHMARKS]
    plan = plan_placement(ttt_chip, mix, slow_pmd_count=2)
    assert plan.rail_mv == 885.0


def test_rail_safe_for_every_assignment(ttt_chip, four_tasks):
    plan = plan_placement(ttt_chip, four_tasks, slow_pmd_count=1)
    assert plan.rail_mv >= plan.binding_vmin_mv
    swing = sum(w.resonant_swing for w in four_tasks) / 4
    for _, core in plan.assignments:
        freq = plan.pmd_freq_ghz[core.pmd]
        assert plan.rail_mv >= ttt_chip.vmin_mv(core, swing, freq)


def test_aggressive_tasks_on_strong_cores(ttt_chip, four_tasks):
    plan = plan_placement(ttt_chip, four_tasks)
    by_name = dict(plan.assignments)
    # milc (highest swing) got the strongest core of the chosen set.
    milc_offset = ttt_chip.core_offset_mv(by_name["milc"])
    for name in ("bwaves", "mcf", "gcc"):
        assert milc_offset <= ttt_chip.core_offset_mv(by_name[name])


def test_invalid_inputs_rejected(ttt_chip, four_tasks):
    with pytest.raises(CampaignError):
        plan_placement(ttt_chip, [])
    with pytest.raises(CampaignError):
        plan_placement(ttt_chip, four_tasks * 3)
    with pytest.raises(CampaignError):
        plan_placement(ttt_chip, four_tasks, slow_pmd_count=5)
    with pytest.raises(CampaignError):
        plan_naive(ttt_chip, [])
