"""Integration: the DRAM-side experiment drivers (Table I, Figure 8)."""

import pytest

from repro.experiments.fig8a_ber import run_figure8a
from repro.experiments.fig8b_refresh_power import run_figure8b
from repro.experiments.stencil_scheduling import run_stencil_study
from repro.experiments.table1_weak_cells import PAPER_COUNTS, run_table1, spread_pct

SEED = 1


@pytest.fixture(scope="module")
def table1():
    # Regulation is exercised by the thermal tests; skip it here for speed.
    return run_table1(seed=SEED, regulate=False)


@pytest.fixture(scope="module")
def fig8a():
    return run_figure8a(seed=SEED)


@pytest.fixture(scope="module")
def fig8b():
    return run_figure8b(seed=SEED)


# ----------------------------------------------------------------------
# Table I
# ----------------------------------------------------------------------
def test_table1_counts_in_paper_band(table1):
    for temp, paper_row in PAPER_COUNTS.items():
        measured = table1.counts[temp]
        paper_mean = sum(paper_row) / len(paper_row)
        measured_mean = sum(measured) / len(measured)
        assert measured_mean == pytest.approx(paper_mean, rel=0.25), temp


def test_table1_amplification(table1):
    # Paper: ~17.5x more weak cells at 60 degC.
    assert 13.0 < table1.temperature_amplification() < 22.0


def test_table1_spread_shape(table1):
    """Low-temperature counts vary relatively more bank-to-bank."""
    assert table1.measured_spread_pct(50.0) > table1.measured_spread_pct(60.0)
    assert 8.0 < table1.measured_spread_pct(60.0) < 25.0


def test_table1_all_errors_corrected(table1):
    """The paper's headline ECC claim at <= 60 degC."""
    assert table1.all_errors_corrected
    for scrub in table1.scrubs.values():
        assert scrub.raw_bit_errors > 0       # errors did manifest
        assert scrub.uncorrectable_words == 0
        assert scrub.miscorrected_words == 0


def test_table1_chip_variation(table1):
    assert table1.chip_to_chip_variation(60.0) > 2.0


def test_table1_format(table1):
    text = table1.format()
    assert "bank0" in text and "spread" in text


def test_spread_pct_helper():
    assert spread_pct([163, 230]) == pytest.approx(41.1, abs=0.1)


# ----------------------------------------------------------------------
# Figure 8a
# ----------------------------------------------------------------------
def test_fig8a_random_pattern_worst(fig8a):
    assert fig8a.random_is_worst_pattern


def test_fig8a_workloads_below_virus(fig8a):
    assert fig8a.workloads_below_random_virus


def test_fig8a_workload_variation_near_paper(fig8a):
    assert fig8a.workload_variation == pytest.approx(2.5, abs=0.5)


def test_fig8a_nw_highest_kmeans_lowest(fig8a):
    ber = fig8a.workload_ber
    assert max(ber, key=ber.get) == "nw"
    assert min(ber, key=ber.get) == "kmeans"


# ----------------------------------------------------------------------
# Figure 8b
# ----------------------------------------------------------------------
def test_fig8b_extremes_match_paper(fig8b):
    name_max, val_max = fig8b.max_savings
    name_min, val_min = fig8b.min_savings
    assert name_max == "nw"
    assert val_max == pytest.approx(27.3, abs=0.5)
    assert name_min == "kmeans"
    assert val_min == pytest.approx(9.4, abs=0.5)


def test_fig8b_savings_ordered_by_bandwidth(fig8b):
    # Higher bandwidth -> smaller relative refresh saving.
    from repro.workloads.rodinia import rodinia_workload
    for name, savings in fig8b.savings_pct.items():
        bw = rodinia_workload(name).dram.bandwidth_gbs
        for other, other_savings in fig8b.savings_pct.items():
            other_bw = rodinia_workload(other).dram.bandwidth_gbs
            if bw < other_bw:
                assert savings > other_savings


# ----------------------------------------------------------------------
# Stencil scheduling
# ----------------------------------------------------------------------
def test_stencil_blocked_schedule_wins():
    result = run_stencil_study(seed=SEED)
    assert result.natural_coverage < 0.1
    assert result.blocked_coverage > 0.9
    assert result.blocked_relative_ber < result.natural_relative_ber
