"""Stencil workloads and access-pattern scheduling."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.stencil import StencilScheduler, StencilWorkload


@pytest.fixture()
def workload() -> StencilWorkload:
    # Sweep time 2.0 s: longer than a 1.0 s refresh period.
    return StencilWorkload(grid_rows=200, row_process_s=0.01, iterations=3)


def test_timing_properties(workload):
    assert workload.sweep_time_s == pytest.approx(2.0)
    assert workload.total_time_s == pytest.approx(6.0)


def test_row_sweep_trace_shape(workload):
    trace = StencilScheduler(workload).row_sweep_trace()
    assert len(trace.accessed_rows()) == 200
    # Each row touched once per iteration.
    assert all(len(times) == 3 for times in trace.accesses.values())


def test_row_sweep_interval_equals_sweep_time(workload):
    trace = StencilScheduler(workload).row_sweep_trace()
    times = trace.accesses[50]
    gaps = [b - a for a, b in zip(times, times[1:])]
    assert all(g == pytest.approx(2.0) for g in gaps)


def test_blocked_trace_same_total_work(workload):
    scheduler = StencilScheduler(workload)
    natural = sum(len(t) for t in scheduler.row_sweep_trace().accesses.values())
    blocked = sum(len(t) for t in scheduler.blocked_trace(0.5).accesses.values())
    assert natural == blocked


def test_blocked_trace_short_reaccess(workload):
    trace = StencilScheduler(workload).blocked_trace(0.5)
    for times in trace.accesses.values():
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert max(gaps) < 1.0


def test_coverage_comparison_blocked_wins(workload):
    natural, blocked = StencilScheduler(workload).coverage_comparison(
        trefp_s=1.0, target_period_s=0.5)
    assert natural == 0.0      # sweep interval 2.0 s > 1.0 s refresh
    assert blocked == 1.0      # every re-access within the band


def test_target_period_validation(workload):
    with pytest.raises(WorkloadError):
        StencilScheduler(workload).blocked_trace(0.001)


def test_workload_validation():
    with pytest.raises(WorkloadError):
        StencilWorkload(grid_rows=0, row_process_s=0.01, iterations=1)
    with pytest.raises(WorkloadError):
        StencilWorkload(grid_rows=10, row_process_s=-1.0, iterations=1)
