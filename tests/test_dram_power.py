"""DRAM power model and refresh-relaxation savings."""

import pytest

from repro.dram.power import DramPowerModel
from repro.errors import ConfigurationError
from repro.units import NOMINAL_REFRESH_S, RELAXED_REFRESH_S


@pytest.fixture()
def model() -> DramPowerModel:
    return DramPowerModel()


def test_refresh_power_inverse_in_trefp(model):
    nominal = model.refresh_w(NOMINAL_REFRESH_S)
    relaxed = model.refresh_w(RELAXED_REFRESH_S)
    assert relaxed == pytest.approx(nominal * NOMINAL_REFRESH_S / RELAXED_REFRESH_S)


def test_breakdown_sums_to_total(model):
    breakdown = model.breakdown(NOMINAL_REFRESH_S, 10.0)
    assert breakdown.total_w == pytest.approx(
        breakdown.background_w + breakdown.refresh_w + breakdown.access_w)


def test_relaxation_savings_decrease_with_bandwidth(model):
    savings = [model.relaxation_savings(bw, RELAXED_REFRESH_S)
               for bw in (0.0, 3.4, 10.0, 33.0)]
    assert savings == sorted(savings, reverse=True)


def test_nw_savings_match_paper(model):
    # Figure 8b: nw at 3.4 GB/s saves 27.3 %.
    assert model.relaxation_savings(3.4, RELAXED_REFRESH_S) * 100 == \
        pytest.approx(27.3, abs=0.3)


def test_kmeans_savings_match_paper(model):
    # Figure 8b: kmeans at 33 GB/s saves 9.4 %.
    assert model.relaxation_savings(33.0, RELAXED_REFRESH_S) * 100 == \
        pytest.approx(9.4, abs=0.3)


def test_zero_traffic_savings_bounded(model):
    # Even with no traffic, background power caps the saving well
    # below 100 %.
    max_savings = model.relaxation_savings(0.0, RELAXED_REFRESH_S)
    assert 0.30 < max_savings < 0.40


def test_negative_bandwidth_rejected(model):
    with pytest.raises(ConfigurationError):
        model.total_w(NOMINAL_REFRESH_S, -1.0)


def test_invalid_trefp_rejected(model):
    with pytest.raises(ConfigurationError):
        model.refresh_w(0.0)


def test_invalid_model_params_rejected():
    with pytest.raises(ConfigurationError):
        DramPowerModel(background_w=0.0)
