"""Smoke-run the cheap example scripts end to end.

Only the fast examples run here (the full set is exercised manually /
in docs); each must exit cleanly and print its headline lines.
"""

import pathlib
import subprocess
import sys

import pytest
#: Heavy module: deselected from the smoke tier (``pytest -m "not slow"``).
pytestmark = pytest.mark.slow


EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_quickstart_smoke():
    out = run_example("quickstart.py")
    assert "selected safe operating point" in out
    assert "PMD rail 930 mV" in out


def test_adaptive_governor_smoke():
    out = run_example("adaptive_governor.py")
    assert "0 unsafe" in out
    assert "per-workload droop failure models" in out


def test_retention_profiling_smoke():
    out = run_example("retention_profiling.py")
    assert "single pass covers" in out
    assert "longest safe TREFP" in out


def test_jammer_smoke():
    out = run_example("jammer_energy_savings.py")
    assert "QoS met" in out
    assert "total: 31.1 W" in out
