"""Campaign declaration (the framework's initialization phase)."""

import pytest

from repro.core.campaign import (
    CampaignPlan,
    CharacterizationRun,
    CharacterizationSetup,
)
from repro.errors import CampaignError
from repro.soc.topology import CoreId
from repro.workloads.spec import spec_workload


def test_setup_defaults_match_paper():
    setup = CharacterizationSetup(voltage_mv=980.0)
    assert setup.freq_ghz == 2.4
    assert setup.repetitions == 10  # "ten times for each benchmark"


def test_setup_validation():
    with pytest.raises(CampaignError):
        CharacterizationSetup(voltage_mv=-1.0)
    with pytest.raises(CampaignError):
        CharacterizationSetup(voltage_mv=900.0, cores=())
    with pytest.raises(CampaignError):
        CharacterizationSetup(voltage_mv=900.0,
                              cores=(CoreId(0, 0), CoreId(0, 0)))
    with pytest.raises(CampaignError):
        CharacterizationSetup(voltage_mv=900.0, repetitions=0)


def test_plan_builds_one_campaign_per_benchmark():
    plan = CampaignPlan()
    plan.add_workloads([spec_workload("mcf"), spec_workload("milc")])
    plan.add_setup(CharacterizationSetup(voltage_mv=900.0))
    plan.add_setup(CharacterizationSetup(voltage_mv=890.0))
    campaigns = plan.build()
    assert len(campaigns) == 2
    assert all(len(c.runs) == 2 for c in campaigns)


def test_run_ids_unique_across_campaigns():
    plan = CampaignPlan()
    plan.add_workloads([spec_workload("mcf"), spec_workload("gcc")])
    plan.add_voltage_sweep(980.0, 960.0, 10.0)
    campaigns = plan.build()
    ids = [run.run_id for c in campaigns for run in c.runs]
    assert len(ids) == len(set(ids))


def test_voltage_sweep_descends():
    plan = CampaignPlan().add_workload(spec_workload("mcf"))
    plan.add_voltage_sweep(980.0, 950.0, 10.0)
    campaign = plan.build()[0]
    voltages = [run.setup.voltage_mv for run in campaign.runs]
    assert voltages == [980.0, 970.0, 960.0, 950.0]


def test_voltage_sweep_validation():
    plan = CampaignPlan()
    with pytest.raises(CampaignError):
        plan.add_voltage_sweep(900.0, 950.0, 10.0)  # ascending
    with pytest.raises(CampaignError):
        plan.add_voltage_sweep(950.0, 900.0, 0.0)   # zero step


def test_duplicate_workload_rejected():
    plan = CampaignPlan().add_workload(spec_workload("mcf"))
    with pytest.raises(CampaignError):
        plan.add_workload(spec_workload("mcf"))


def test_empty_plan_rejected():
    with pytest.raises(CampaignError):
        CampaignPlan().build()
    plan = CampaignPlan().add_workload(spec_workload("mcf"))
    with pytest.raises(CampaignError):
        plan.build()  # no setups


def test_describe_strings():
    setup = CharacterizationSetup(voltage_mv=900.0, cores=(CoreId(1, 1),))
    run = CharacterizationRun(spec_workload("gcc"), setup, run_id=7)
    assert "900" in setup.describe()
    assert "gcc" in run.describe()
