"""EM sensor model and the EM-as-droop-proxy property.

The paper's methodology stands on EM amplitude being a faithful proxy
for voltage noise ("By maximizing EM amplitude, voltage noise is
maximized as well, which we prove with Vmin testing"). These tests
quantify that proxy inside our substrate: EM readings must rank stimuli
the same way droop does, despite receiver noise.
"""

import numpy as np
import pytest

from repro.cpu.execution import ExecutionModel
from repro.cpu.isa import InstrClass
from repro.cpu.kernels import InstructionLoop, square_wave_loop
from repro.errors import ConfigurationError
from repro.pdn.droop import analyze_loop
from repro.pdn.em import EmReading, EmSensor
from repro.pdn.rlc import PdnModel


@pytest.fixture()
def sensor() -> EmSensor:
    return EmSensor(seed=7)


@pytest.fixture()
def exec_model() -> ExecutionModel:
    return ExecutionModel(window_cycles=4096)


def _loops():
    res_cycles = int(2.4e9 / PdnModel().params.resonant_freq_hz)
    return [
        InstructionLoop.of([InstrClass.INT_ALU] * 16),               # flat
        square_wave_loop(InstrClass.SIMD, InstrClass.NOP, res_cycles // 8),
        square_wave_loop(InstrClass.FP_MUL, InstrClass.NOP, res_cycles // 2),
        square_wave_loop(InstrClass.SIMD, InstrClass.NOP, res_cycles // 2),
    ]


def test_em_amplitude_non_negative(sensor, exec_model):
    for loop in _loops():
        reading = sensor.measure(exec_model.profile(loop).waveform, 2.4)
        assert reading.amplitude >= 0.0


def test_resonant_square_wave_reads_highest(sensor, exec_model):
    readings = [sensor.measure_averaged(exec_model.profile(loop).waveform,
                                        2.4, repeats=6).amplitude
                for loop in _loops()]
    assert np.argmax(readings) == 3


def test_em_ranks_match_droop_ranks(sensor, exec_model):
    """The proxy property: EM ordering == droop ordering."""
    loops = _loops()
    em = [sensor.measure_averaged(exec_model.profile(loop).waveform, 2.4,
                                  repeats=8).amplitude for loop in loops]
    droop = [analyze_loop(loop).droop_v for loop in loops]
    assert np.argsort(em).tolist() == np.argsort(droop).tolist()


def test_em_correlates_with_droop_across_random_loops(exec_model):
    """Across random stimuli, EM amplitude ~ droop with r > 0.95."""
    rng = np.random.default_rng(3)
    sensor = EmSensor(seed=3, noise_floor=0.005)
    classes = list(InstrClass)
    em, droop = [], []
    for _ in range(20):
        body = [classes[int(i)] for i in rng.integers(len(classes), size=48)]
        loop = InstructionLoop.of(body)
        em.append(sensor.measure_averaged(
            exec_model.profile(loop).waveform, 2.4, repeats=4).amplitude)
        droop.append(analyze_loop(loop).droop_v)
    r = np.corrcoef(em, droop)[0, 1]
    assert r > 0.95


def test_measurement_noise_present():
    noisy = EmSensor(seed=11, noise_floor=0.05)
    model = ExecutionModel(window_cycles=2048)
    waveform = model.profile(square_wave_loop(InstrClass.SIMD,
                                              InstrClass.NOP, 24)).waveform
    reads = {noisy.measure(waveform, 2.4).amplitude for _ in range(5)}
    assert len(reads) > 1  # distinct reads: real receivers are noisy


def test_averaging_reduces_noise():
    noisy = EmSensor(seed=11, noise_floor=0.05)
    model = ExecutionModel(window_cycles=2048)
    waveform = model.profile(square_wave_loop(InstrClass.SIMD,
                                              InstrClass.NOP, 24)).waveform
    singles = np.array([noisy.measure(waveform, 2.4).amplitude
                        for _ in range(32)])
    averaged = np.array([noisy.measure_averaged(waveform, 2.4, repeats=8).amplitude
                         for _ in range(32)])
    assert averaged.std() < singles.std()


def test_peak_frequency_near_resonance(sensor, exec_model):
    loop = square_wave_loop(InstrClass.SIMD, InstrClass.NOP, 24)
    reading = sensor.measure(exec_model.profile(loop).waveform, 2.4)
    f_res = PdnModel().params.resonant_freq_hz
    assert abs(reading.peak_freq_hz - f_res) < f_res * 0.5


def test_invalid_configs_rejected():
    with pytest.raises(ConfigurationError):
        EmSensor(bandwidth_hz=0.0)
    with pytest.raises(ConfigurationError):
        EmReading(amplitude=-1.0, peak_freq_hz=1.0)
    sensor = EmSensor(seed=1)
    with pytest.raises(ConfigurationError):
        sensor.measure_averaged(np.ones(128), 2.4, repeats=0)
