"""The 8-zone testbed: the paper's <1 degC regulation property."""

import pytest

from repro.errors import ConfigurationError
from repro.thermal.testbed import ThermalTestbed, ZoneConfig


def test_single_zone_settles_within_one_degree():
    testbed = ThermalTestbed([ZoneConfig(setpoint_c=50.0)], seed=1)
    reports = testbed.run(1200.0)
    assert reports[0].within_one_degree
    assert reports[0].final_c == pytest.approx(50.0, abs=1.0)


def test_both_paper_setpoints_regulate():
    for setpoint in (50.0, 60.0):
        testbed = ThermalTestbed([ZoneConfig(setpoint_c=setpoint)], seed=1)
        report = testbed.run(1200.0)[0]
        assert report.within_one_degree, f"setpoint {setpoint}"


def test_eight_zones_independent_setpoints():
    configs = [ZoneConfig(setpoint_c=50.0 + zone) for zone in range(8)]
    testbed = ThermalTestbed(configs, seed=1)
    reports = testbed.run(1500.0)
    assert len(reports) == 8
    for zone, report in enumerate(reports):
        assert report.within_one_degree, f"zone {zone}"
        assert report.final_c == pytest.approx(50.0 + zone, abs=1.0)


def test_setpoint_step_retargets():
    testbed = ThermalTestbed([ZoneConfig(setpoint_c=50.0)], seed=1)
    testbed.run(1000.0)
    testbed.set_setpoint(0, 60.0)
    report = testbed.run(1000.0)[0]
    assert report.setpoint_c == 60.0
    assert report.final_c == pytest.approx(60.0, abs=1.0)


def test_settle_time_reported():
    testbed = ThermalTestbed([ZoneConfig(setpoint_c=50.0)], seed=1)
    report = testbed.run(1500.0)[0]
    assert report.settle_time_s is not None
    assert 0.0 < report.settle_time_s < 1000.0


def test_zone_count_bounds():
    with pytest.raises(ConfigurationError):
        ThermalTestbed([])
    with pytest.raises(ConfigurationError):
        ThermalTestbed([ZoneConfig(setpoint_c=50.0)] * 9)


def test_setpoint_range_enforced():
    with pytest.raises(ConfigurationError):
        ZoneConfig(setpoint_c=150.0)


def test_invalid_zone_index():
    testbed = ThermalTestbed([ZoneConfig(setpoint_c=50.0)], seed=1)
    with pytest.raises(ConfigurationError):
        testbed.set_setpoint(3, 60.0)


def test_regulation_deterministic():
    a = ThermalTestbed([ZoneConfig(setpoint_c=55.0)], seed=9).run(800.0)[0]
    b = ThermalTestbed([ZoneConfig(setpoint_c=55.0)], seed=9).run(800.0)[0]
    assert a.final_c == b.final_c
    assert a.samples == b.samples
