"""Shared experiment plumbing."""


from repro.experiments.common import format_table, reference_executors, vmin_searches
from repro.soc.corners import ProcessCorner


def test_format_table_alignment():
    text = format_table(("name", "value"), [("a", 1), ("longer", 22)])
    lines = text.splitlines()
    assert len(lines) == 4  # header, rule, two rows
    assert all(len(line) == len(lines[0]) for line in lines)
    assert "name" in lines[0] and "---" in lines[1]


def test_format_table_float_rendering():
    text = format_table(("x",), [(1.23456,)])
    assert "1.235" in text


def test_reference_executors_cover_corners():
    executors = reference_executors(seed=1)
    assert set(executors) == set(ProcessCorner)
    for corner, executor in executors.items():
        assert executor.chip.corner is corner


def test_vmin_searches_configured():
    searches = vmin_searches(seed=1, repetitions=7, step_mv=10.0)
    for search in searches.values():
        assert search.repetitions == 7
        assert search.step_mv == 10.0
