"""Online voltage governor."""

import pytest

from repro.core.governor import VoltageGovernor
from repro.core.predictor import VminPredictor
from repro.errors import SearchError
from repro.soc.corners import NOMINAL_PMD_MV
from repro.workloads.spec import spec_suite, spec_workload


@pytest.fixture()
def trained_predictor(ttt_chip) -> VminPredictor:
    suite = spec_suite()
    core = ttt_chip.weakest_cores(1)[0]
    predictor = VminPredictor()
    predictor.fit(suite, [ttt_chip.vmin_mv(core, w.resonant_swing)
                          for w in suite])
    return predictor


@pytest.fixture()
def governor(ttt_chip, trained_predictor) -> VoltageGovernor:
    return VoltageGovernor(ttt_chip, trained_predictor, seed=3)


def test_governor_requires_trained_predictor(ttt_chip):
    with pytest.raises(SearchError):
        VoltageGovernor(ttt_chip, VminPredictor())


def test_selected_voltage_above_true_vmin(governor, ttt_chip):
    for workload in spec_suite():
        voltage = governor.select_voltage_mv(workload)
        true_vmin = ttt_chip.vmin_mv(governor.core, workload.resonant_swing)
        assert voltage >= true_vmin


def test_selected_voltage_snapped_and_bounded(governor):
    voltage = governor.select_voltage_mv(spec_workload("milc"))
    assert voltage % governor.step_mv == pytest.approx(0.0)
    assert governor.floor_mv <= voltage <= NOMINAL_PMD_MV


def test_schedule_runs_safe_with_savings(governor):
    schedule = spec_suite() * 10  # 100 quanta
    report = governor.run_schedule(schedule)
    assert report.unsafe_quanta == 0
    assert report.min_margin_mv >= 0.0
    # The governor must recover a meaningful share of the guardband.
    assert report.mean_power_savings_pct > 5.0
    assert report.mean_voltage_mv < NOMINAL_PMD_MV - 30.0


def test_droop_history_feeds_failure_models(governor):
    governor.run_schedule(spec_suite() * 16)  # 16 epochs per workload
    for workload in spec_suite():
        assert governor._model_for(workload.name).fitted, workload.name
        assert governor._history_for(workload.name).count >= 16


def test_backoff_raises_voltage(ttt_chip, trained_predictor):
    governor = VoltageGovernor(ttt_chip, trained_predictor, seed=3,
                               safety_margin_mv=5.0)
    workload = spec_workload("milc")
    before = governor.select_voltage_mv(workload)
    governor._backoff_mv = 10.0  # simulate a prior unsafe quantum
    after = governor.select_voltage_mv(workload)
    assert after >= before + 10.0


def test_backoff_triggered_by_unsafe_quantum(ttt_chip, trained_predictor):
    """Force an unsafe outcome via a workload the predictor never saw
    whose swing exceeds the training range."""
    from repro.workloads.base import CpuWorkload, Workload
    hog = Workload(CpuWorkload(
        name="pathological", suite="synthetic", resonant_swing=0.95,
        ipc=1.2, fp_ratio=0.5, mem_ratio=0.3, branch_ratio=0.05,
        l2_miss_ratio=0.1))
    governor = VoltageGovernor(ttt_chip, trained_predictor, seed=3)
    record = governor.run_quantum(hog)
    if not record.outcome.is_safe:
        assert governor.report.backoffs == 1
        assert governor._backoff_mv > 0.0
    else:  # predictor extrapolated high enough -- also acceptable
        assert record.margin_mv >= 0.0


def test_empty_schedule_rejected(governor):
    with pytest.raises(SearchError):
        governor.run_schedule([])


def test_report_statistics(governor):
    governor.run_schedule(spec_suite())
    report = governor.report
    assert len(report.quanta) == 10
    assert report.mean_voltage_mv > 0
    for record in report.quanta:
        assert record.margin_mv == pytest.approx(
            record.programmed_mv - record.true_vmin_mv)
