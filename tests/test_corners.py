"""Process-corner parameter calibration."""

import pytest

from repro.soc.corners import (
    CORNER_PARAMS,
    NOMINAL_PMD_MV,
    CornerParams,
    ProcessCorner,
)


def test_all_three_corners_defined():
    assert set(CORNER_PARAMS) == set(ProcessCorner)


def test_strongest_core_offset_zero():
    for params in CORNER_PARAMS.values():
        assert min(params.core_offsets_mv) == 0.0


def test_weakest_cores_on_pmd0(ttt_chip=None):
    # The paper identifies PMDs 0 and 1 as the weakest on the TTT part.
    params = CORNER_PARAMS[ProcessCorner.TTT]
    offsets = params.core_offsets_mv
    assert max(offsets) == offsets[0]
    assert sorted(offsets[:4], reverse=True) == list(offsets[:4])


def test_virus_vmin_calibration():
    # swing=1 gives the Figure 7 virus Vmin per chip:
    # TTT 920, TFF 955, TSS ~971.6 (crashes 10 mV below nominal).
    expect = {ProcessCorner.TTT: 920.0, ProcessCorner.TFF: 955.0,
              ProcessCorner.TSS: 971.6}
    for corner, target in expect.items():
        params = CORNER_PARAMS[corner]
        assert params.v_crit_mv + params.droop_mv(1.0) == pytest.approx(target, abs=0.1)


def test_spec_range_calibration():
    # Lowest/highest SPEC swings (0.28, 0.595) land in the Figure 4
    # ranges for each corner's most robust core.
    ranges = {ProcessCorner.TTT: (855.0, 885.0),
              ProcessCorner.TFF: (865.0, 885.0),
              ProcessCorner.TSS: (865.0, 900.0)}
    for corner, (lo, hi) in ranges.items():
        params = CORNER_PARAMS[corner]
        low = params.v_crit_mv + params.droop_mv(0.28)
        high = params.v_crit_mv + params.droop_mv(0.595)
        assert lo <= low <= high <= hi


def test_droop_monotonic_in_swing():
    for params in CORNER_PARAMS.values():
        droops = [params.droop_mv(s) for s in (0.0, 0.25, 0.5, 0.75, 1.0)]
        assert droops == sorted(droops)
        assert droops[0] == 0.0


def test_droop_clamps_swing():
    params = CORNER_PARAMS[ProcessCorner.TTT]
    assert params.droop_mv(1.5) == params.droop_mv(1.0)
    assert params.droop_mv(-0.5) == 0.0


def test_v_crit_decreases_with_frequency():
    for params in CORNER_PARAMS.values():
        assert params.v_crit_at(1.2) < params.v_crit_at(2.4)
        assert params.v_crit_at(2.4) == params.v_crit_mv


def test_leakage_ordering_matches_corner_definitions():
    # TFF is the high-leakage corner, TSS the low-leakage one.
    assert CORNER_PARAMS[ProcessCorner.TFF].leakage_fraction > \
        CORNER_PARAMS[ProcessCorner.TTT].leakage_fraction > \
        CORNER_PARAMS[ProcessCorner.TSS].leakage_fraction


def test_corner_params_validation():
    with pytest.raises(ValueError):
        CornerParams(
            v_crit_mv=800, v_crit_slope_mv_per_ghz=100, droop_scale_mv=80,
            droop_gamma=1.0, core_offsets_mv=(1.0,) * 8,  # no zero offset
            leakage_fraction=0.1, leakage_v0_mv=50,
        )
    with pytest.raises(ValueError):
        CornerParams(
            v_crit_mv=800, v_crit_slope_mv_per_ghz=100, droop_scale_mv=80,
            droop_gamma=1.0, core_offsets_mv=(0.0,) * 4,  # wrong core count
            leakage_fraction=0.1, leakage_v0_mv=50,
        )


def test_nominal_voltage_matches_paper():
    assert NOMINAL_PMD_MV == 980.0
