"""Result transports: serial framing, lossy network, idempotent cloud."""

import pytest

from repro.core.results import ResultRow, ResultStore
from repro.core.transport import (
    CloudStore,
    NetworkLink,
    ResultUploader,
    SerialLink,
    decode_row,
    encode_row,
)
from repro.errors import CampaignError


def row(run_id=1, rep=0, outcome="correct") -> ResultRow:
    return ResultRow(run_id=run_id, benchmark="mcf", suite="spec2006",
                     voltage_mv=900.0, freq_ghz=2.4, cores="0",
                     repetition=rep, outcome=outcome, verdict="completed",
                     corrected_errors=0, uncorrected_errors=0,
                     wall_time_s=300.0)


def store_of(count: int) -> ResultStore:
    store = ResultStore()
    for run_id in range(count):
        for rep in range(3):
            store.append(row(run_id=run_id, rep=rep))
    return store


# ----------------------------------------------------------------------
# Row codec
# ----------------------------------------------------------------------
def test_row_codec_roundtrip():
    original = row(run_id=7, rep=2, outcome="sdc")
    assert decode_row(encode_row(original)) == original


def test_decode_rejects_malformed():
    with pytest.raises(CampaignError):
        decode_row("too,few,fields")


# ----------------------------------------------------------------------
# Cloud store idempotence
# ----------------------------------------------------------------------
def test_cloud_store_dedupes():
    cloud = CloudStore()
    cloud.receive(row(run_id=1, rep=0))
    cloud.receive(row(run_id=1, rep=0))
    cloud.receive(row(run_id=1, rep=1))
    assert len(cloud) == 2
    assert cloud.duplicates == 1


def test_cloud_store_materializes_sorted():
    cloud = CloudStore()
    cloud.receive(row(run_id=2, rep=0))
    cloud.receive(row(run_id=1, rep=1))
    cloud.receive(row(run_id=1, rep=0))
    rows = cloud.to_store().rows()
    keys = [(r.run_id, r.repetition) for r in rows]
    assert keys == sorted(keys)


# ----------------------------------------------------------------------
# Serial link
# ----------------------------------------------------------------------
def test_serial_clean_channel_delivers_everything():
    cloud = CloudStore()
    link = SerialLink(cloud, bit_error_rate=0.0, seed=1)
    ok, failed = ResultUploader(link).upload(store_of(10))
    assert (ok, failed) == (30, 0)
    assert len(cloud) == 30
    assert link.stats.corrupted == 0


def test_serial_noisy_channel_retries_to_delivery():
    cloud = CloudStore()
    link = SerialLink(cloud, bit_error_rate=2e-3, max_retries=16, seed=2)
    ok, failed = ResultUploader(link).upload(store_of(15))
    assert failed == 0
    assert len(cloud) == 45
    assert link.stats.corrupted > 0          # corruption happened...
    assert link.stats.attempts > link.stats.delivered  # ...and was retried


def test_serial_corruption_never_pollutes_store():
    """CRC framing must reject every corrupted frame: whatever arrives
    in the cloud is a bit-exact subset of what was sent, even on a
    channel so bad that some rows exhaust their retries."""
    cloud = CloudStore()
    link = SerialLink(cloud, bit_error_rate=5e-3, max_retries=32, seed=3)
    source = store_of(10)
    ok, failed = ResultUploader(link).upload(source)
    sent_lines = set(source.to_csv_text().splitlines())
    received_lines = set(cloud.to_store().to_csv_text().splitlines())
    assert received_lines <= sent_lines
    assert len(cloud) == ok
    assert ok + failed == len(source)


def test_serial_moderate_channel_delivers_exactly():
    """At a survivable error rate every row arrives, in order, intact."""
    cloud = CloudStore()
    link = SerialLink(cloud, bit_error_rate=1e-3, max_retries=32, seed=3)
    source = store_of(10)
    ok, failed = ResultUploader(link).upload(source)
    assert failed == 0
    assert cloud.to_store().to_csv_text() == source.to_csv_text()


def test_serial_hopeless_channel_gives_up():
    cloud = CloudStore()
    link = SerialLink(cloud, bit_error_rate=0.2, max_retries=2, seed=4)
    ok, failed = ResultUploader(link).upload(store_of(3))
    assert failed > 0
    assert link.stats.gave_up == failed


def test_serial_validation():
    with pytest.raises(CampaignError):
        SerialLink(CloudStore(), bit_error_rate=1.5)
    with pytest.raises(CampaignError):
        SerialLink(CloudStore(), max_retries=-1)


# ----------------------------------------------------------------------
# Network link
# ----------------------------------------------------------------------
def test_network_lossy_channel_converges():
    cloud = CloudStore()
    link = NetworkLink(cloud, loss_rate=0.3, ack_loss_rate=0.1,
                       max_retries=32, seed=5)
    source = store_of(20)
    ok, failed = ResultUploader(link).upload(source)
    assert failed == 0
    assert len(cloud) == 60
    assert cloud.to_store().to_csv_text() == source.to_csv_text()


def test_network_lost_acks_produce_absorbed_duplicates():
    cloud = CloudStore()
    link = NetworkLink(cloud, loss_rate=0.0, ack_loss_rate=0.4,
                       max_retries=16, seed=6)
    ResultUploader(link).upload(store_of(20))
    assert cloud.duplicates > 0        # retransmissions happened
    assert len(cloud) == 60            # contents still exactly-once


def test_network_send_reports_arrival_despite_final_ack_loss():
    """If the packet landed but the last ack died, send() must still
    report success (the row is in the store)."""
    cloud = CloudStore()
    link = NetworkLink(cloud, loss_rate=0.0, ack_loss_rate=0.999,
                       max_retries=1, seed=7)
    assert link.send(row()) is True
    assert len(cloud) == 1


def test_network_validation():
    with pytest.raises(CampaignError):
        NetworkLink(CloudStore(), loss_rate=1.0)
    with pytest.raises(CampaignError):
        NetworkLink(CloudStore(), ack_loss_rate=-0.1)


def test_transport_stats_retry_rate():
    cloud = CloudStore()
    link = NetworkLink(cloud, loss_rate=0.5, max_retries=64, seed=8)
    ResultUploader(link).upload(store_of(10))
    assert link.stats.retry_rate > 0.0
