"""Result transports: serial framing, lossy network, idempotent cloud."""

import pytest

from repro.core.results import ResultRow, ResultStore
from repro.core.transport import (
    CloudStore,
    NetworkLink,
    ResultUploader,
    SerialLink,
    decode_row,
    encode_row,
)
from repro.errors import CampaignError


def row(run_id=1, rep=0, outcome="correct") -> ResultRow:
    return ResultRow(run_id=run_id, benchmark="mcf", suite="spec2006",
                     voltage_mv=900.0, freq_ghz=2.4, cores="0",
                     repetition=rep, outcome=outcome, verdict="completed",
                     corrected_errors=0, uncorrected_errors=0,
                     wall_time_s=300.0)


def store_of(count: int) -> ResultStore:
    store = ResultStore()
    for run_id in range(count):
        for rep in range(3):
            store.append(row(run_id=run_id, rep=rep))
    return store


# ----------------------------------------------------------------------
# Row codec
# ----------------------------------------------------------------------
def test_row_codec_roundtrip():
    original = row(run_id=7, rep=2, outcome="sdc")
    assert decode_row(encode_row(original)) == original


def test_decode_rejects_malformed():
    with pytest.raises(CampaignError):
        decode_row("too,few,fields")


# ----------------------------------------------------------------------
# Cloud store idempotence
# ----------------------------------------------------------------------
def test_cloud_store_dedupes():
    cloud = CloudStore()
    cloud.receive(row(run_id=1, rep=0))
    cloud.receive(row(run_id=1, rep=0))
    cloud.receive(row(run_id=1, rep=1))
    assert len(cloud) == 2
    assert cloud.duplicates == 1


def test_cloud_store_materializes_sorted():
    cloud = CloudStore()
    cloud.receive(row(run_id=2, rep=0))
    cloud.receive(row(run_id=1, rep=1))
    cloud.receive(row(run_id=1, rep=0))
    rows = cloud.to_store().rows()
    keys = [(r.run_id, r.repetition) for r in rows]
    assert keys == sorted(keys)


# ----------------------------------------------------------------------
# Serial link
# ----------------------------------------------------------------------
def test_serial_clean_channel_delivers_everything():
    cloud = CloudStore()
    link = SerialLink(cloud, bit_error_rate=0.0, seed=1)
    ok, failed = ResultUploader(link).upload(store_of(10))
    assert (ok, failed) == (30, 0)
    assert len(cloud) == 30
    assert link.stats.corrupted == 0


def test_serial_noisy_channel_retries_to_delivery():
    cloud = CloudStore()
    link = SerialLink(cloud, bit_error_rate=2e-3, max_retries=16, seed=2)
    ok, failed = ResultUploader(link).upload(store_of(15))
    assert failed == 0
    assert len(cloud) == 45
    assert link.stats.corrupted > 0          # corruption happened...
    assert link.stats.attempts > link.stats.delivered  # ...and was retried


def test_serial_corruption_never_pollutes_store():
    """CRC framing must reject every corrupted frame: whatever arrives
    in the cloud is a bit-exact subset of what was sent, even on a
    channel so bad that some rows exhaust their retries."""
    cloud = CloudStore()
    link = SerialLink(cloud, bit_error_rate=5e-3, max_retries=32, seed=3)
    source = store_of(10)
    ok, failed = ResultUploader(link).upload(source)
    sent_lines = set(source.to_csv_text().splitlines())
    received_lines = set(cloud.to_store().to_csv_text().splitlines())
    assert received_lines <= sent_lines
    assert len(cloud) == ok
    assert ok + failed == len(source)


def test_serial_moderate_channel_delivers_exactly():
    """At a survivable error rate every row arrives, in order, intact."""
    cloud = CloudStore()
    link = SerialLink(cloud, bit_error_rate=1e-3, max_retries=32, seed=3)
    source = store_of(10)
    ok, failed = ResultUploader(link).upload(source)
    assert failed == 0
    assert cloud.to_store().to_csv_text() == source.to_csv_text()


def test_serial_hopeless_channel_gives_up():
    cloud = CloudStore()
    link = SerialLink(cloud, bit_error_rate=0.2, max_retries=2, seed=4)
    ok, failed = ResultUploader(link).upload(store_of(3))
    assert failed > 0
    assert link.stats.gave_up == failed


def test_serial_validation():
    with pytest.raises(CampaignError):
        SerialLink(CloudStore(), bit_error_rate=1.5)
    with pytest.raises(CampaignError):
        SerialLink(CloudStore(), max_retries=-1)


# ----------------------------------------------------------------------
# Network link
# ----------------------------------------------------------------------
def test_network_lossy_channel_converges():
    cloud = CloudStore()
    link = NetworkLink(cloud, loss_rate=0.3, ack_loss_rate=0.1,
                       max_retries=32, seed=5)
    source = store_of(20)
    ok, failed = ResultUploader(link).upload(source)
    assert failed == 0
    assert len(cloud) == 60
    assert cloud.to_store().to_csv_text() == source.to_csv_text()


def test_network_lost_acks_produce_absorbed_duplicates():
    cloud = CloudStore()
    link = NetworkLink(cloud, loss_rate=0.0, ack_loss_rate=0.4,
                       max_retries=16, seed=6)
    ResultUploader(link).upload(store_of(20))
    assert cloud.duplicates > 0        # retransmissions happened
    assert len(cloud) == 60            # contents still exactly-once


def test_network_send_reports_arrival_despite_final_ack_loss():
    """If the packet landed but the last ack died, send() must still
    report success (the row is in the store)."""
    cloud = CloudStore()
    link = NetworkLink(cloud, loss_rate=0.0, ack_loss_rate=0.999,
                       max_retries=1, seed=7)
    assert link.send(row()) is True
    assert len(cloud) == 1


def test_network_validation():
    with pytest.raises(CampaignError):
        NetworkLink(CloudStore(), loss_rate=1.0)
    with pytest.raises(CampaignError):
        NetworkLink(CloudStore(), ack_loss_rate=-0.1)


def test_transport_stats_retry_rate():
    cloud = CloudStore()
    link = NetworkLink(cloud, loss_rate=0.5, max_retries=64, seed=8)
    ResultUploader(link).upload(store_of(10))
    assert link.stats.retry_rate > 0.0


# ----------------------------------------------------------------------
# Row codec: adversarial field values
# ----------------------------------------------------------------------
def test_row_codec_quotes_delimiters_in_fields():
    """Commas, quotes, pipes and newlines inside fields must survive."""
    nasty = row()._replace(
        benchmark='mc,f"quoted"', suite="spec|2006",
        cores="0,1,2", verdict="completed\nwith newline",
        run_key='chip-1/mc,f"/v=900.0|f=2.4')
    assert decode_row(encode_row(nasty)) == nasty


def test_row_codec_crc_like_suffix_in_field():
    """A field that *looks* like the serial frame's |crc suffix must not
    confuse anything: the codec is plain CSV, framing is the link's."""
    tricky = row()._replace(run_key="deadbeef|cafef00d")
    assert decode_row(encode_row(tricky)) == tricky


def test_decode_rejects_multiple_records():
    with pytest.raises(CampaignError):
        decode_row(encode_row(row()) + "\r\n" + encode_row(row()))


def test_decode_rejects_non_numeric_fields():
    line = encode_row(row()).replace("900.0", "not-a-voltage")
    with pytest.raises(CampaignError):
        decode_row(line)


# ----------------------------------------------------------------------
# Cloud store: global run identity across campaigns and chips
# ----------------------------------------------------------------------
def keyed(run_key: str, run_id=1, rep=0, outcome="correct") -> ResultRow:
    return row(run_id=run_id, rep=rep, outcome=outcome)._replace(
        run_key=run_key)


def test_cloud_store_keeps_colliding_run_ids_across_campaigns():
    """Regression: two campaigns both start their run_id counter at 0,
    so a store keyed on (run_id, repetition) alone silently dropped the
    second campaign's rows as 'duplicates'."""
    cloud = CloudStore()
    cloud.receive(keyed("chip-A/mcf/v=900.0", run_id=0, rep=0))
    cloud.receive(keyed("chip-A/gcc/v=900.0", run_id=0, rep=0))
    assert len(cloud) == 2
    assert cloud.duplicates == 0


def test_cloud_store_keeps_colliding_run_ids_across_chips():
    cloud = CloudStore()
    cloud.receive(keyed("chip-A/mcf/v=900.0", run_id=3, rep=1))
    cloud.receive(keyed("chip-B/mcf/v=900.0", run_id=3, rep=1))
    assert len(cloud) == 2
    assert cloud.duplicates == 0


def test_cloud_store_still_dedupes_same_identity():
    cloud = CloudStore()
    cloud.receive(keyed("chip-A/mcf/v=900.0", run_id=3, rep=1))
    cloud.receive(keyed("chip-A/mcf/v=900.0", run_id=3, rep=1))
    assert len(cloud) == 1
    assert cloud.duplicates == 1


def test_cloud_store_contains_is_public_api():
    cloud = CloudStore()
    first = keyed("chip-A/mcf/v=900.0")
    assert not cloud.contains(first)
    cloud.receive(first)
    assert cloud.contains(first)
    assert not cloud.contains(keyed("chip-B/mcf/v=900.0"))


def test_uploader_skip_delivered_consults_cloud():
    cloud = CloudStore()
    link = NetworkLink(cloud, loss_rate=0.0, ack_loss_rate=0.0, seed=9)
    source = store_of(5)
    ResultUploader(link).upload(source)
    attempts_before = link.stats.attempts
    resumer = ResultUploader(link)
    ok, failed = resumer.upload(source, skip_delivered=True)
    assert (ok, failed) == (0, 0)
    assert resumer.skipped == len(source)
    assert link.stats.attempts == attempts_before  # nothing re-sent


# ----------------------------------------------------------------------
# Network link stats: delivered / dropped / ack_lost accounting
# ----------------------------------------------------------------------
def test_network_delivered_counts_rows_not_retransmits():
    """Regression: delivered was incremented once per *arrival*, so lost
    acks inflated it past the row count."""
    cloud = CloudStore()
    link = NetworkLink(cloud, loss_rate=0.0, ack_loss_rate=0.4,
                       max_retries=16, seed=10)
    source = store_of(20)
    ok, failed = ResultUploader(link).upload(source)
    assert (ok, failed) == (60, 0)
    assert link.stats.delivered == 60          # once per row, exactly
    assert cloud.duplicates > 0                # retransmissions happened


def test_network_ack_loss_not_counted_as_dropped():
    """Regression: a lost ack was booked under ``dropped`` even though
    the packet arrived; it now has its own ``ack_lost`` counter."""
    cloud = CloudStore()
    link = NetworkLink(cloud, loss_rate=0.0, ack_loss_rate=0.4,
                       max_retries=16, seed=11)
    ResultUploader(link).upload(store_of(20))
    assert link.stats.dropped == 0
    assert link.stats.ack_lost > 0
    assert link.stats.attempts == link.stats.delivered + link.stats.ack_lost


# ----------------------------------------------------------------------
# Injected fault bursts (deterministic, from a FaultPlan)
# ----------------------------------------------------------------------
def test_serial_injected_corruption_burst_converges():
    from repro.core.faults import FaultBurst, FaultInjector, FaultPlan

    plan = FaultPlan(corruption_bursts=(FaultBurst(first_row=0, rows=5,
                                                   depth=2),))
    injector = FaultInjector(plan)
    cloud = CloudStore()
    link = SerialLink(cloud, bit_error_rate=0.0, max_retries=4, seed=12,
                      fault_injector=injector)
    source = store_of(4)  # 12 rows; burst dooms rows 0-4 twice each
    ok, failed = ResultUploader(link).upload(source)
    assert (ok, failed) == (12, 0)
    assert injector.stats.corrupted_frames == 10
    assert link.stats.corrupted == 10
    assert cloud.to_store().to_csv_text() == source.to_csv_text()


def test_network_injected_loss_burst_converges():
    from repro.core.faults import FaultBurst, FaultInjector, FaultPlan

    plan = FaultPlan(loss_bursts=(FaultBurst(first_row=3, rows=4, depth=3),))
    injector = FaultInjector(plan)
    cloud = CloudStore()
    link = NetworkLink(cloud, loss_rate=0.0, ack_loss_rate=0.0,
                       max_retries=4, seed=13, fault_injector=injector)
    source = store_of(4)
    ok, failed = ResultUploader(link).upload(source)
    assert (ok, failed) == (12, 0)
    assert injector.stats.dropped_packets == 12  # 4 rows x 3 attempts
    assert link.stats.dropped == 12
    assert cloud.to_store().to_csv_text() == source.to_csv_text()


def test_serial_burst_deeper_than_retries_gives_up_cleanly():
    from repro.core.faults import FaultBurst, FaultInjector, FaultPlan

    plan = FaultPlan(corruption_bursts=(FaultBurst(first_row=0, rows=1,
                                                   depth=10),))
    cloud = CloudStore()
    link = SerialLink(cloud, bit_error_rate=0.0, max_retries=2, seed=14,
                      fault_injector=FaultInjector(plan))
    ok, failed = ResultUploader(link).upload(store_of(1))
    assert failed == 1                      # row 0 exhausted its retries
    assert ok == 2
    assert len(cloud) == 2                  # and never polluted the store
