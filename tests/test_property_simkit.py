"""Property-based tests of the simulation kernel and refresh exposure."""

from hypothesis import given, settings, strategies as st

from repro.dram.refresh import AccessTrace, RefreshController
from repro.simkit import Simulator
import pytest

#: Heavy module: deselected from the smoke tier (``pytest -m "not slow"``).
pytestmark = pytest.mark.slow


delays = st.lists(st.floats(min_value=0.0, max_value=100.0,
                            allow_nan=False, allow_infinity=False),
                  min_size=1, max_size=30)


@given(schedule=delays)
@settings(max_examples=200, deadline=None)
def test_events_always_fire_in_nondecreasing_time_order(schedule):
    sim = Simulator()
    fired = []
    for delay in schedule:
        sim.schedule(delay, lambda d=delay: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(schedule)


@given(schedule=delays)
@settings(max_examples=200, deadline=None)
def test_equal_time_events_keep_insertion_order(schedule):
    sim = Simulator()
    order = []
    fixed = 5.0
    for index, _ in enumerate(schedule):
        sim.schedule(fixed, lambda i=index: order.append(i))
    sim.run()
    assert order == list(range(len(schedule)))


access_times = st.lists(
    st.floats(min_value=0.0, max_value=10.0,
              allow_nan=False, allow_infinity=False),
    min_size=0, max_size=20,
)


@given(times=access_times,
       trefp=st.floats(min_value=0.1, max_value=5.0,
                       allow_nan=False, allow_infinity=False),
       row=st.integers(min_value=0, max_value=65535))
@settings(max_examples=300, deadline=None)
def test_exposure_bounded_by_trefp(times, trefp, row):
    """Scheduled refresh caps exposure regardless of the access pattern."""
    ctrl = RefreshController(trefp_s=trefp)
    exposure = ctrl.row_exposure_s(row, tuple(sorted(times)), window_s=10.0)
    assert 0.0 <= exposure <= trefp + 1e-12


@given(times=access_times,
       trefp=st.floats(min_value=0.1, max_value=5.0,
                       allow_nan=False, allow_infinity=False),
       row=st.integers(min_value=0, max_value=65535))
@settings(max_examples=300, deadline=None)
def test_more_accesses_never_worsen_exposure(times, trefp, row):
    ctrl = RefreshController(trefp_s=trefp)
    base = ctrl.row_exposure_s(row, tuple(sorted(times)), window_s=10.0)
    denser = tuple(sorted(times + [5.0]))
    improved = ctrl.row_exposure_s(row, denser, window_s=10.0)
    assert improved <= base + 1e-12


@given(times=st.lists(st.floats(min_value=0.0, max_value=10.0,
                                allow_nan=False, allow_infinity=False),
                      min_size=2, max_size=20, unique=True))
@settings(max_examples=200, deadline=None)
def test_access_interval_coverage_boolean_consistency(times):
    trace = AccessTrace.from_events(10.0, [(t, 0) for t in times])
    sorted_times = sorted(times)
    max_gap = max(b - a for a, b in zip(sorted_times, sorted_times[1:]))
    covered = RefreshController.access_interval_coverage(trace, target_s=2.0)
    assert covered == (1.0 if max_gap < 2.0 else 0.0)
