"""Platform factory assembly."""

import pytest

from repro.soc.corners import ProcessCorner
from repro.soc.domains import DomainName
from repro.soc.xgene2 import (
    DEFAULT_DOMAIN_WATTS,
    build_platform,
    build_reference_chips,
)


def test_platform_boots_at_nominal(ttt_platform):
    assert ttt_platform.slimpro.booted
    assert ttt_platform.pmd_voltage_mv() == 980.0
    assert ttt_platform.soc_voltage_mv() == 950.0


def test_platform_power_sensors_registered(ttt_platform):
    snapshot = ttt_platform.slimpro.telemetry_dump()
    assert "power.pmd" in snapshot
    assert "power.soc" in snapshot
    assert snapshot["power.pmd"] == pytest.approx(DEFAULT_DOMAIN_WATTS["PMD"], abs=0.2)


def test_clocked_domain_watts_track_voltage():
    platform = build_platform(ProcessCorner.TTT, seed=1)
    nominal = platform.clocked_domain_watts()["PMD"]
    platform.slimpro.set_domain_voltage(DomainName.PMD, 930.0)
    scaled = platform.clocked_domain_watts()["PMD"]
    assert scaled < nominal


def test_reference_chips_one_per_corner():
    chips = build_reference_chips(seed=1)
    assert set(chips) == set(ProcessCorner)
    for corner, chip in chips.items():
        assert chip.corner is corner
        assert chip.serial.endswith("-ref")


def test_reference_chips_have_exact_corner_offsets():
    chips = build_reference_chips(seed=1)
    for corner, chip in chips.items():
        from repro.soc.corners import CORNER_PARAMS
        from repro.soc.topology import CoreId
        expected = CORNER_PARAMS[corner].core_offsets_mv
        measured = tuple(chip.core_offset_mv(CoreId.from_linear(i))
                         for i in range(8))
        assert measured == expected


def test_domain_watts_override():
    platform = build_platform(ProcessCorner.TTT, seed=1,
                              domain_watts={"PMD": 20.0})
    assert platform.pmd_power.nominal_watts == 20.0
    assert platform.other_watts == DEFAULT_DOMAIN_WATTS["OTHER"]


def test_corner_property(ttt_platform):
    assert ttt_platform.corner is ProcessCorner.TTT
