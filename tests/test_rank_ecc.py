"""Rank-level ECC layout and the strongest all-corrected check."""

import pytest

from repro.dram.cells import DramDevicePopulation
from repro.dram.errors_model import PatternKind
from repro.dram.geometry import DEFAULT_GEOMETRY, DramGeometry
from repro.dram.rank_ecc import (
    BITS_PER_DEVICE_PER_WORD,
    RankEccLayout,
    scrub_board,
    scrub_rank,
)
from repro.errors import ConfigurationError
from repro.units import RELAXED_REFRESH_S


@pytest.fixture(scope="module")
def layout() -> RankEccLayout:
    return RankEccLayout(DEFAULT_GEOMETRY)


@pytest.fixture(scope="module")
def population() -> DramDevicePopulation:
    return DramDevicePopulation(seed=21)


def test_layout_requires_nine_x8_devices():
    bad = DramGeometry(devices_per_rank=8)
    with pytest.raises(ConfigurationError):
        RankEccLayout(bad)


def test_devices_of_rank_contiguous(layout):
    devices = layout.devices_of_rank(0, 0)
    assert devices == list(range(9))
    devices = layout.devices_of_rank(1, 1)
    assert devices == list(range(27, 36))
    assert layout.devices_of_rank(3, 1)[-1] == 71


def test_devices_of_rank_validation(layout):
    with pytest.raises(ConfigurationError):
        layout.devices_of_rank(4, 0)
    with pytest.raises(ConfigurationError):
        layout.devices_of_rank(0, 2)


def test_locate_byte_striping(layout):
    """Device slot s owns bits [8s, 8s+8) of every codeword."""
    for slot in range(9):
        coordinate, bit = layout.locate(slot, bank=2, row=100, col=17)
        assert coordinate.bank == 2 and coordinate.row == 100
        assert coordinate.word == 17 // BITS_PER_DEVICE_PER_WORD
        assert bit == slot * 8 + 17 % 8
        assert 0 <= bit < 72


def test_locate_distinct_words_for_distant_cols(layout):
    a, _ = layout.locate(0, 0, 0, col=0)
    b, _ = layout.locate(0, 0, 0, col=8)
    assert a.word != b.word


def test_same_device_same_byte_column_collides(layout):
    """Two bits of one device collide only inside one byte of one row."""
    word_a, bit_a = layout.locate(3, 0, 5, col=16)
    word_b, bit_b = layout.locate(3, 0, 5, col=23)
    assert word_a == word_b
    assert bit_a != bit_b


def test_cross_device_bits_share_words(layout):
    """Different devices' identical (row, col) map to the same codeword
    at different bit positions -- the cross-device pairing channel."""
    word_a, bit_a = layout.locate(0, 0, 5, col=40)
    word_b, bit_b = layout.locate(7, 0, 5, col=40)
    assert word_a == word_b
    assert bit_a != bit_b


def test_rank_scrub_at_paper_conditions_all_corrected(population):
    """The faithful version of the paper's headline: at <= 60 degC and
    35x refresh, rank-level SECDED corrects every manifested error."""
    for temp in (50.0, 60.0):
        result = scrub_rank(population, dimm=0, rank=0,
                            interval_s=RELAXED_REFRESH_S, temp_c=temp)
        assert result.all_corrected, temp
        if temp == 60.0:
            assert result.raw_bit_errors > 0


def test_rank_scrub_pattern_sensitivity(population):
    random = scrub_rank(population, 0, 0, RELAXED_REFRESH_S, 60.0,
                        PatternKind.RANDOM)
    zeros = scrub_rank(population, 0, 0, RELAXED_REFRESH_S, 60.0,
                       PatternKind.ALL_ZEROS)
    assert zeros.raw_bit_errors < random.raw_bit_errors


def test_board_scrub_merges_all_ranks(population):
    board = scrub_board(population, RELAXED_REFRESH_S, 60.0)
    single = scrub_rank(population, 0, 0, RELAXED_REFRESH_S, 60.0)
    assert board.raw_bit_errors > single.raw_bit_errors
    assert board.all_corrected  # the whole 72-device board stays clean


def test_rank_scrub_deterministic(population):
    a = scrub_rank(population, 1, 0, RELAXED_REFRESH_S, 60.0)
    b = scrub_rank(population, 1, 0, RELAXED_REFRESH_S, 60.0)
    assert a == b
