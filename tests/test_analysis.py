"""Savings arithmetic, tradeoff ladder and server power accounting."""

import pytest

from repro.analysis.energy import (
    energy_savings_pct,
    power_savings_pct,
    relative_dynamic_power,
)
from repro.analysis.server_power import server_power_report
from repro.analysis.tradeoff import tradeoff_ladder
from repro.core.safepoints import SafeOperatingPoint
from repro.errors import ConfigurationError
from repro.units import NOMINAL_REFRESH_S, RELAXED_REFRESH_S
from repro.workloads.jammer import JAMMER_WORKLOAD
from repro.workloads.mixes import figure5_mix
from repro.workloads.spec import spec_workload


# ----------------------------------------------------------------------
# Energy arithmetic
# ----------------------------------------------------------------------
def test_power_savings_basic():
    assert power_savings_pct(31.1, 24.8) == pytest.approx(20.3, abs=0.1)


def test_energy_savings_at_full_performance_equals_power():
    assert energy_savings_pct(100.0, 61.2, 1.0) == pytest.approx(38.8)


def test_energy_savings_accounts_dilation():
    # Same wattage at half performance doubles the energy per work unit.
    assert energy_savings_pct(100.0, 50.0, 0.5) == pytest.approx(0.0)


def test_relative_dynamic_power_figure5_labels():
    assert relative_dynamic_power(915.0, 980.0, 2.4, 2.4) == \
        pytest.approx(0.872, abs=0.001)
    assert relative_dynamic_power(885.0, 980.0, 1.8, 2.4) == \
        pytest.approx(0.612, abs=0.001)


def test_energy_validation():
    with pytest.raises(ConfigurationError):
        power_savings_pct(0.0, 1.0)
    with pytest.raises(ConfigurationError):
        energy_savings_pct(10.0, 5.0, 0.0)
    with pytest.raises(ConfigurationError):
        relative_dynamic_power(0.0, 980.0, 2.4, 2.4)


# ----------------------------------------------------------------------
# Figure 5 ladder
# ----------------------------------------------------------------------
def test_ladder_reproduces_paper_rungs(ttt_chip):
    ladder = tradeoff_ladder(ttt_chip, figure5_mix())
    rails = [p.rail_mv for p in ladder]
    assert rails == [915.0, 900.0, 885.0, 875.0, 760.0]
    perfs = [p.performance_fraction for p in ladder]
    for measured, target in zip(perfs, (1.0, 0.875, 0.75, 0.625, 0.5)):
        assert measured == pytest.approx(target)


def test_ladder_power_percentages(ttt_chip):
    ladder = tradeoff_ladder(ttt_chip, figure5_mix())
    powers = [p.relative_power * 100 for p in ladder]
    for measured, target in zip(powers, (87.2, 73.8, 61.2, 49.8)):
        assert measured == pytest.approx(target, abs=0.2)


def test_ladder_headline_savings(ttt_chip):
    ladder = tradeoff_ladder(ttt_chip, figure5_mix())
    assert ladder[0].power_savings_pct == pytest.approx(12.8, abs=0.2)
    assert ladder[2].power_savings_pct == pytest.approx(38.8, abs=0.2)


def test_ladder_monotone(ttt_chip):
    ladder = tradeoff_ladder(ttt_chip, figure5_mix())
    rails = [p.rail_mv for p in ladder]
    powers = [p.relative_power for p in ladder]
    assert rails == sorted(rails, reverse=True)
    assert powers == sorted(powers, reverse=True)


def test_ladder_labels(ttt_chip):
    ladder = tradeoff_ladder(ttt_chip, figure5_mix())
    assert "915" in ladder[0].label


# ----------------------------------------------------------------------
# Figure 9 server power
# ----------------------------------------------------------------------
def paper_point() -> SafeOperatingPoint:
    return SafeOperatingPoint(pmd_mv=930.0, soc_mv=920.0,
                              trefp_s=RELAXED_REFRESH_S, safety_margin_mv=10.0)


def test_server_power_totals(ttt_platform):
    report = server_power_report(ttt_platform, JAMMER_WORKLOAD, paper_point())
    assert report.total_nominal_w == pytest.approx(31.1, abs=0.2)
    assert report.total_scaled_w == pytest.approx(24.8, abs=0.5)
    assert report.total_savings_pct == pytest.approx(20.2, abs=1.0)


def test_server_power_domain_savings(ttt_platform):
    report = server_power_report(ttt_platform, JAMMER_WORKLOAD, paper_point())
    assert report.domain_savings_pct("PMD") == pytest.approx(20.3, abs=1.0)
    assert report.domain_savings_pct("SoC") == pytest.approx(6.9, abs=1.0)
    assert report.domain_savings_pct("DRAM") == pytest.approx(33.3, abs=1.0)
    assert report.domain_savings_pct("OTHER") == 0.0


def test_server_power_nominal_point_is_noop(ttt_platform):
    nominal = SafeOperatingPoint(pmd_mv=980.0, soc_mv=950.0,
                                 trefp_s=NOMINAL_REFRESH_S,
                                 safety_margin_mv=0.0)
    report = server_power_report(ttt_platform, JAMMER_WORKLOAD, nominal)
    assert report.total_savings_pct == pytest.approx(0.0, abs=1e-9)


def test_server_power_requires_dram_profile(ttt_platform):
    from repro.workloads.base import Workload
    cpu_only = Workload(spec_workload("mcf").cpu, None)
    with pytest.raises(ConfigurationError):
        server_power_report(ttt_platform, cpu_only, paper_point())


def test_unknown_domain_rejected(ttt_platform):
    report = server_power_report(ttt_platform, JAMMER_WORKLOAD, paper_point())
    with pytest.raises(ConfigurationError):
        report.domain_savings_pct("GPU")
