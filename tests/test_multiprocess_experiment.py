"""Extension experiment: single- vs multi-process Vmin."""

import pytest

from repro.experiments.multiprocess_vmin import run_multiprocess_study


@pytest.fixture(scope="module")
def result():
    return run_multiprocess_study(seed=1, repetitions=3)


def test_covers_all_spec_programs(result):
    assert len(result.single_vmin_mv) == 10
    assert set(result.single_vmin_mv) == set(result.multi_vmin_mv)


def test_multiprocess_always_needs_more_voltage(result):
    assert result.all_multi_above_single
    for name, uplift in ((n, result.multi_vmin_mv[n] - result.single_vmin_mv[n])
                         for n in result.single_vmin_mv):
        assert 20.0 <= uplift <= 90.0, name


def test_uplift_has_two_components(result, ttt_chip):
    """The uplift combines the weakest-core offset and the alignment
    gain -- it must exceed the offset alone."""
    max_offset = max(ttt_chip.core_offset_mv(core)
                     for core in __import__(
                         "repro.soc.topology",
                         fromlist=["CoreId"]).SocTopology().cores())
    for name in ("milc", "bwaves"):
        uplift = result.multi_vmin_mv[name] - result.single_vmin_mv[name]
        assert uplift > max_offset


def test_heterogeneous_mix_decorrelates(result):
    assert result.hetero_mix_vmin_mv < result.worst_multi_mv
    assert result.decorrelation_gain_mv >= 20.0


def test_ordering_preserved_across_setups(result):
    single_order = sorted(result.single_vmin_mv, key=result.single_vmin_mv.get)
    multi_order = sorted(result.multi_vmin_mv, key=result.multi_vmin_mv.get)
    # The same programs anchor both ends.
    assert single_order[0] == multi_order[0] == "mcf"
    assert single_order[-1] == multi_order[-1] == "milc"


def test_format_renders(result):
    text = result.format()
    assert "x8" in text and "decorrelation" in text
