"""Property-based tests of the Vmin-aware scheduler (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.analysis.scheduling import plan_naive, plan_placement
from repro.soc.chip import Chip
from repro.soc.corners import NOMINAL_PMD_MV, ProcessCorner
from repro.workloads.spec import SPEC_WORKLOADS
import pytest

#: Heavy module: deselected from the smoke tier (``pytest -m "not slow"``).
pytestmark = pytest.mark.slow


_CHIP = Chip(ProcessCorner.TTT, seed=1, jitter_sigma_mv=0.0)
_NAMES = sorted(SPEC_WORKLOADS)

task_sets = st.lists(st.sampled_from(_NAMES), min_size=1, max_size=8)
slow_counts = st.integers(min_value=0, max_value=4)


def _workloads(names):
    return [SPEC_WORKLOADS[name] for name in names]


@given(names=task_sets, slow=slow_counts)
@settings(max_examples=200, deadline=None)
def test_rail_always_covers_binding_vmin(names, slow):
    plan = plan_placement(_CHIP, _workloads(names), slow_pmd_count=slow)
    assert plan.rail_mv >= plan.binding_vmin_mv - 1e-9
    assert plan.rail_mv <= NOMINAL_PMD_MV


@given(names=task_sets, slow=slow_counts)
@settings(max_examples=200, deadline=None)
def test_aware_never_worse_than_naive(names, slow):
    workloads = _workloads(names)
    aware = plan_placement(_CHIP, workloads, slow_pmd_count=slow)
    naive = plan_naive(_CHIP, workloads, slow_pmd_count=slow)
    assert aware.rail_mv <= naive.rail_mv + 1e-9
    assert abs(aware.performance_fraction - naive.performance_fraction) < 1e-9


@given(names=task_sets, slow=slow_counts)
@settings(max_examples=200, deadline=None)
def test_assignments_on_distinct_cores(names, slow):
    plan = plan_placement(_CHIP, _workloads(names), slow_pmd_count=slow)
    cores = plan.occupied_cores()
    assert len({c.linear for c in cores}) == len(cores) == len(names)


@given(names=task_sets)
@settings(max_examples=150, deadline=None)
def test_performance_fraction_reflects_slow_pmds(names):
    workloads = _workloads(names)
    for slow in range(5):
        plan = plan_placement(_CHIP, workloads, slow_pmd_count=slow)
        assert abs(plan.performance_fraction - (1.0 - slow * 0.125)) < 1e-9


@given(names=task_sets, slow=slow_counts)
@settings(max_examples=150, deadline=None)
def test_more_slow_pmds_never_raise_rail(names, slow):
    """Downclocking more PMDs can only relax the binding constraint."""
    workloads = _workloads(names)
    rails = [plan_placement(_CHIP, workloads, slow_pmd_count=k).rail_mv
             for k in range(slow + 1)]
    assert rails == sorted(rails, reverse=True)
