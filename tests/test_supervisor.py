"""Supervised execution: real worker-crash/hang/poison tolerance.

The acceptance property: a supervised run under any seeded real-fault
plan -- worker ``os._exit``, deadline-exceeding hangs, poison
exceptions -- converges to results bit-identical to the clean serial
run, with quarantined units enumerated deterministically as typed
:class:`UnitFailure` records at any worker count, and no raw
``BrokenProcessPool`` or worker traceback escaping to the caller.
"""

import os
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.campaign import CampaignPlan
from repro.core.checkpoint import CampaignCheckpoint
from repro.core.faults import FaultInjector, FaultPlan
from repro.core.parallel import ParallelCampaignExecutor, parallel_map
from repro.core.supervisor import (
    CRASH,
    HANG,
    POISON,
    POOL_BROKEN,
    SupervisedPool,
    UnitFailure,
    supervised_map,
)
from repro.errors import CampaignInterrupted, SupervisionError
from repro.soc.chip import Chip
from repro.soc.corners import ProcessCorner
from repro.workloads.spec import spec_suite

SEED = 11

#: The CI supervisor-stress job runs this suite at --jobs 4 (default).
STRESS_JOBS = int(os.environ.get("REPRO_SUPERVISOR_JOBS", "4"))


def _square(x):
    return x * x


def _legacy_sentinel(x):
    # The exact tuple the old engine used as its kill sentinel.
    return ("repro.core.parallel:unit-killed",)


def _raise_on_three(x):
    if x == 3:
        raise ValueError("unit is poisonous")
    return x * x


def _chip():
    return Chip(ProcessCorner.TTT, seed=7)


def _campaigns(benchmarks=3):
    plan = CampaignPlan()
    plan.add_workloads(spec_suite()[:benchmarks])
    plan.add_voltage_sweep(980.0, 920.0, 20.0, repetitions=2)
    return plan.build()


def _real_plan():
    """Exit + hang + poison: the acceptance-criteria fault trio."""
    return FaultPlan(unit_exits=((0, 1),), unit_hangs=((1, 1),),
                     poison_units=(2,), hang_seconds=0.2)


class _UnbuildablePool(SupervisedPool):
    def _pool_factory(self):
        raise OSError("no worker processes available")


# ----------------------------------------------------------------------
# Satellite: the _UnitResult envelope kills the sentinel aliasing
# ----------------------------------------------------------------------
@pytest.mark.parametrize("jobs", [1, 2])
def test_unit_legitimately_returning_old_sentinel_value(jobs):
    """Regression: the old engine compared results by value against
    UNIT_KILLED, so a unit returning an equal tuple retried forever."""
    injector = FaultInjector(FaultPlan(shard_kills=((0, 1),)))
    out = parallel_map(_legacy_sentinel, [0, 1, 2], jobs=jobs,
                       fault_injector=injector)
    assert out == [("repro.core.parallel:unit-killed",)] * 3
    assert injector.stats.worker_kills == 1


# ----------------------------------------------------------------------
# Real-fault convergence, jobs-invariance
# ----------------------------------------------------------------------
@pytest.mark.parametrize("jobs", [1, 2, 4])
def test_real_fault_plan_converges_bit_identical(jobs):
    plan = _real_plan()
    outcome = supervised_map(_square, list(range(6)), jobs=jobs,
                             inject=FaultInjector(plan).unit_fault,
                             hang_seconds=plan.hang_seconds)
    assert outcome.values == (0, 1, None, 9, 16, 25)
    assert [(f.index, f.kind) for f in outcome.failures] == [(2, POISON)]
    assert outcome.failures[0].attempts == 4   # 1 + default max_retries
    assert outcome.stats.crashes == 1
    assert outcome.stats.hangs == 1


def test_quarantine_list_is_jobs_invariant():
    plan = FaultPlan(unit_exits=((1, 1),), poison_units=(0, 4),
                     hang_seconds=0.2)
    signatures = []
    for jobs in (1, 2, 4):
        outcome = supervised_map(_square, list(range(6)), jobs=jobs,
                                 inject=FaultInjector(plan).unit_fault,
                                 hang_seconds=plan.hang_seconds)
        signatures.append((outcome.values,
                           tuple((f.index, f.kind, f.attempts)
                                 for f in outcome.failures)))
    assert signatures[0] == signatures[1] == signatures[2]
    assert signatures[0][1] == ((0, POISON, 4), (4, POISON, 4))


def test_broken_pool_triggers_exactly_one_rebuild():
    """A single injected worker exit breaks the pool exactly once: the
    supervisor attributes it (doomed attempts run solo), rebuilds once,
    and every unit still completes."""
    plan = FaultPlan(unit_exits=((1, 1),))
    outcome = supervised_map(_square, list(range(6)), jobs=4,
                             inject=FaultInjector(plan).unit_fault)
    assert outcome.values == (0, 1, 4, 9, 16, 25)
    assert outcome.failures == ()
    assert outcome.stats.rebuilds == 1
    assert outcome.stats.crashes == 1


# ----------------------------------------------------------------------
# Typed failure reporting (no raw tracebacks / BrokenProcessPool)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("jobs", [1, 2])
def test_parallel_map_raises_typed_supervision_error(jobs):
    with pytest.raises(SupervisionError) as excinfo:
        parallel_map(_raise_on_three, [1, 2, 3, 4], jobs=jobs)
    failures = excinfo.value.failures
    assert [(f.index, f.kind) for f in failures] == [(2, POISON)]
    assert "ValueError" in failures[0].detail
    message = str(excinfo.value)
    assert "BrokenProcessPool" not in message
    assert "Traceback" not in message


def test_max_retries_bounds_the_budget():
    plan = FaultPlan(unit_exits=((0, 1),))
    outcome = supervised_map(_square, [0, 1, 2], jobs=2, max_retries=0,
                             inject=FaultInjector(plan).unit_fault)
    assert outcome.values == (None, 1, 4)
    assert [(f.index, f.kind, f.attempts)
            for f in outcome.failures] == [(0, CRASH, 1)]


def test_attempt_ledger_records_charged_failures():
    plan = _real_plan()
    outcome = supervised_map(_square, list(range(4)), jobs=2,
                             inject=FaultInjector(plan).unit_fault,
                             hang_seconds=plan.hang_seconds)
    charged = [(r.index, r.outcome) for r in outcome.ledger if r.charged]
    assert (0, CRASH) in charged
    assert (1, HANG) in charged
    assert sum(1 for index, kind in charged
               if index == 2 and kind == POISON) == 4
    completed = {r.index for r in outcome.ledger if r.outcome == "ok"}
    assert completed == {0, 1, 3}


# ----------------------------------------------------------------------
# Hang detection: the deadline really terminates a wedged worker
# ----------------------------------------------------------------------
def test_deadline_terminates_a_really_hung_worker():
    plan = FaultPlan(unit_hangs=((1, 1),), hang_seconds=30.0)
    start = time.monotonic()
    outcome = supervised_map(_square, [0, 1, 2], jobs=2, unit_timeout=0.5,
                             inject=FaultInjector(plan).unit_fault,
                             hang_seconds=plan.hang_seconds)
    elapsed = time.monotonic() - start
    assert elapsed < 10.0     # nowhere near the 30 s sleep
    assert outcome.values == (0, 1, 4)
    assert outcome.failures == ()
    assert outcome.stats.hangs == 1
    assert outcome.stats.rebuilds >= 1


# ----------------------------------------------------------------------
# Graceful degradation when the pool cannot be (re)built
# ----------------------------------------------------------------------
def test_degrades_to_inline_serial_when_pool_unbuildable():
    with _UnbuildablePool(jobs=4) as pool:
        outcome = pool.map(_square, [1, 2, 3])
    assert outcome.values == (1, 4, 9)
    assert outcome.failures == ()
    assert outcome.stats.degraded


def test_no_serial_fallback_quarantines_as_pool_broken():
    with _UnbuildablePool(jobs=4, serial_fallback=False) as pool:
        outcome = pool.map(_square, [1, 2, 3])
    assert outcome.values == (None, None, None)
    assert [f.kind for f in outcome.failures] == [POOL_BROKEN] * 3
    assert outcome.stats.degraded


def test_degraded_inline_still_honors_the_injected_plan():
    plan = _real_plan()
    with _UnbuildablePool(jobs=4) as pool:
        outcome = pool.map(_square, list(range(6)),
                           inject=FaultInjector(plan).unit_fault,
                           hang_seconds=plan.hang_seconds)
    assert outcome.values == (0, 1, None, 9, 16, 25)
    assert [(f.index, f.kind) for f in outcome.failures] == [(2, POISON)]


# ----------------------------------------------------------------------
# Property: any seeded real-fault plan converges (inline reference)
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**32 - 1), units=st.integers(1, 8),
       poison_rate=st.sampled_from([0.0, 0.3, 0.7]))
def test_any_seeded_real_plan_converges_inline(seed, units, poison_rate):
    plan = FaultPlan.random_real(seed, units, poison_rate=poison_rate)
    outcome = supervised_map(_square, list(range(units)), jobs=1,
                             inject=FaultInjector(plan).unit_fault,
                             hang_seconds=plan.hang_seconds)
    poisoned = set(plan.poison_units)
    for index in range(units):
        if index in poisoned:
            assert outcome.values[index] is None
        else:
            assert outcome.values[index] == index * index
    assert tuple(f.index for f in outcome.failures) == tuple(sorted(poisoned))
    assert all(f.kind == POISON for f in outcome.failures)
    # Deterministic: the same plan replays to the same outcome.
    again = supervised_map(_square, list(range(units)), jobs=1,
                           inject=FaultInjector(plan).unit_fault,
                           hang_seconds=plan.hang_seconds)
    assert again.values == outcome.values
    assert again.failures == outcome.failures


# ----------------------------------------------------------------------
# Campaign engine: the ISSUE's acceptance criterion end to end
# ----------------------------------------------------------------------
def test_campaign_study_under_real_faults_matches_clean_serial():
    """--jobs 4 study under exit+hang+poison: surviving shards
    bit-identical to the clean serial run, poisoned shard quarantined as
    a typed UnitFailure, nothing raw escaping."""
    campaigns = _campaigns()
    clean = ParallelCampaignExecutor(_chip(), seed=SEED, jobs=1)
    clean.execute_campaigns([c for i, c in enumerate(campaigns) if i != 2])
    engine = ParallelCampaignExecutor(
        _chip(), seed=SEED, jobs=4,
        fault_injector=FaultInjector(_real_plan()))
    records = engine.execute_campaigns(campaigns)
    assert engine.store.rows() == clean.store.rows()
    assert records[2] == []
    assert engine.shards_quarantined == 1
    failure = engine.failures[0]
    assert isinstance(failure, UnitFailure)
    assert (failure.index, failure.kind) == (2, POISON)
    assert failure.label == campaigns[2].name
    assert engine.supervision.rebuilds >= 1
    assert engine.supervision.crashes >= 1
    assert engine.supervision.quarantined == 1


@pytest.mark.parametrize("jobs", [1, 2])
def test_campaign_quarantine_is_jobs_invariant(jobs):
    campaigns = _campaigns()
    engine = ParallelCampaignExecutor(
        _chip(), seed=SEED, jobs=jobs,
        fault_injector=FaultInjector(_real_plan()))
    engine.execute_campaigns(campaigns)
    reference = ParallelCampaignExecutor(
        _chip(), seed=SEED, jobs=4,
        fault_injector=FaultInjector(_real_plan()))
    reference.execute_campaigns(campaigns)
    assert engine.store.rows() == reference.store.rows()
    assert [(f.index, f.kind, f.attempts, f.label) for f in engine.failures] \
        == [(f.index, f.kind, f.attempts, f.label)
            for f in reference.failures]


# ----------------------------------------------------------------------
# Checkpoint/resume past quarantined shards
# ----------------------------------------------------------------------
def test_resume_skips_quarantined_shards(tmp_path):
    campaigns = _campaigns()
    checkpoint = CampaignCheckpoint(str(tmp_path))
    plan = FaultPlan(poison_units=(1,))
    first = ParallelCampaignExecutor(_chip(), seed=SEED, jobs=2,
                                     fault_injector=FaultInjector(plan),
                                     checkpoint=checkpoint)
    first.execute_campaigns(campaigns)
    assert first.shards_quarantined == 1
    assert len(checkpoint.completed_shards()) == 2
    assert len(checkpoint.quarantined_shards()) == 1

    resumed = ParallelCampaignExecutor(_chip(), seed=SEED, jobs=2,
                                       checkpoint=checkpoint)
    resumed.execute_campaigns(campaigns)
    assert resumed.shards_resumed == 2
    assert resumed.shards_executed == 0      # nothing re-executed
    assert resumed.shards_quarantined == 1   # the quarantine resurfaces
    assert resumed.failures[0].kind == POISON
    assert resumed.failures[0].label == campaigns[1].name
    assert resumed.store.rows() == first.store.rows()


def test_interrupted_study_resumes_past_quarantined_shard(tmp_path):
    campaigns = _campaigns()
    checkpoint = CampaignCheckpoint(str(tmp_path))
    plan = FaultPlan(poison_units=(0,), interrupt_after_shards=1)
    engine = ParallelCampaignExecutor(_chip(), seed=SEED, jobs=2,
                                      fault_injector=FaultInjector(plan),
                                      checkpoint=checkpoint)
    with pytest.raises(CampaignInterrupted):
        engine.execute_campaigns(campaigns)
    assert len(checkpoint.quarantined_shards()) == 1
    assert len(checkpoint.completed_shards()) == 1

    finished = ParallelCampaignExecutor(_chip(), seed=SEED, jobs=2,
                                        checkpoint=checkpoint)
    finished.execute_campaigns(campaigns)
    clean = ParallelCampaignExecutor(_chip(), seed=SEED, jobs=1)
    clean.execute_campaigns(campaigns[1:])
    assert finished.store.rows() == clean.store.rows()
    assert finished.shards_quarantined == 1
    assert finished.failures[0].index == 0


def test_checkpoint_quarantine_manifest_roundtrip(tmp_path):
    campaigns = _campaigns(benchmarks=1)
    checkpoint = CampaignCheckpoint(str(tmp_path))
    chip = _chip()
    token = checkpoint.shard_token(chip.serial, campaigns[0])
    failure = UnitFailure(index=0, kind=POISON, attempts=4,
                          detail="PoisonError('injected')")
    checkpoint.mark_quarantined(token, chip.serial, campaigns[0], failure)
    assert not checkpoint.has(token)         # quarantined != completed
    loaded = checkpoint.quarantined_failure(token)
    assert (loaded.kind, loaded.attempts) == (POISON, 4)
    assert loaded.label == campaigns[0].name
    assert checkpoint.completed_shards() == []

    # A later successful save promotes the shard to completed...
    checkpoint.save(token, chip.serial, campaigns[0], [])
    assert checkpoint.has(token)
    assert checkpoint.quarantined_failure(token) is None
    # ...and a quarantine mark never demotes a completed shard.
    checkpoint.mark_quarantined(token, chip.serial, campaigns[0], failure)
    assert checkpoint.has(token)


# ----------------------------------------------------------------------
# Stress: the real-fault equivalence suite the CI job runs at --jobs 4
# ----------------------------------------------------------------------
@pytest.mark.slow
@pytest.mark.parametrize("fault_seed", [1, 2, 3])
def test_real_fault_equivalence_stress(fault_seed):
    units = 10
    plan = FaultPlan.random_real(fault_seed, units, poison_rate=0.2)
    reference = supervised_map(_square, list(range(units)), jobs=1,
                               inject=FaultInjector(plan).unit_fault,
                               hang_seconds=plan.hang_seconds)
    outcome = supervised_map(_square, list(range(units)), jobs=STRESS_JOBS,
                             unit_timeout=30.0,
                             inject=FaultInjector(plan).unit_fault,
                             hang_seconds=plan.hang_seconds)
    assert outcome.values == reference.values
    assert tuple((f.index, f.kind, f.attempts) for f in outcome.failures) \
        == tuple((f.index, f.kind, f.attempts) for f in reference.failures)
    assert plan.unit_exits or plan.unit_hangs or plan.poison_units


@pytest.mark.slow
def test_campaign_stress_real_faults_at_jobs_4():
    campaigns = _campaigns()
    plan = FaultPlan.random_real(9, units=len(campaigns), poison_rate=0.0,
                                 hang_seconds=0.2)
    clean = ParallelCampaignExecutor(_chip(), seed=SEED, jobs=1)
    clean.execute_campaigns(campaigns)
    engine = ParallelCampaignExecutor(_chip(), seed=SEED, jobs=STRESS_JOBS,
                                      unit_timeout=60.0,
                                      fault_injector=FaultInjector(plan))
    engine.execute_campaigns(campaigns)
    assert engine.store.rows() == clean.store.rows()
    assert engine.failures == ()
    assert plan.unit_exits or plan.unit_hangs
