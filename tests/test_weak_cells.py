"""Weak-cell maps: nesting, determinism, population statistics."""

import pytest

from repro.dram.cells import WeakCellMap, sample_weak_cell_count
from repro.dram.geometry import BankAddress
from repro.errors import ConfigurationError
from repro.rand import make_rng
from repro.units import RELAXED_REFRESH_S


@pytest.fixture(scope="module")
def bank_map() -> WeakCellMap:
    return WeakCellMap(BankAddress(0, 0), seed=42)


def test_population_is_deterministic():
    a = WeakCellMap(BankAddress(0, 0), seed=42)
    b = WeakCellMap(BankAddress(0, 0), seed=42)
    assert a.failing_count(RELAXED_REFRESH_S, 60.0) == \
        b.failing_count(RELAXED_REFRESH_S, 60.0)


def test_different_banks_differ():
    a = WeakCellMap(BankAddress(0, 0), seed=42)
    b = WeakCellMap(BankAddress(0, 1), seed=42)
    assert a.failing_count(RELAXED_REFRESH_S, 60.0) != \
        b.failing_count(RELAXED_REFRESH_S, 60.0)


def test_failure_sets_nest_across_temperature(bank_map):
    cold = {(c.row, c.col) for c in bank_map.failing_cells(RELAXED_REFRESH_S, 50.0)}
    hot = {(c.row, c.col) for c in bank_map.failing_cells(RELAXED_REFRESH_S, 60.0)}
    assert cold <= hot


def test_failure_sets_nest_across_interval(bank_map):
    short = {(c.row, c.col) for c in bank_map.failing_cells(1.0, 60.0)}
    long = {(c.row, c.col) for c in bank_map.failing_cells(RELAXED_REFRESH_S, 60.0)}
    assert short <= long


def test_polarity_partition(bank_map):
    both = bank_map.failing_count(RELAXED_REFRESH_S, 60.0, stored_ones=None)
    ones = bank_map.failing_count(RELAXED_REFRESH_S, 60.0, stored_ones=True)
    zeros = bank_map.failing_count(RELAXED_REFRESH_S, 60.0, stored_ones=False)
    assert ones + zeros == both


def test_unique_locations_uses_worst_coupling(bank_map):
    union = bank_map.unique_locations(RELAXED_REFRESH_S, 60.0)
    solid = bank_map.failing_count(RELAXED_REFRESH_S, 60.0, coupling=1.0)
    assert union >= solid


def test_query_beyond_profile_rejected(bank_map):
    with pytest.raises(ConfigurationError):
        bank_map.failing_count(60.0, 70.0)  # far beyond the profile


def test_cell_addresses_in_range(bank_map):
    for cell in bank_map.failing_cells(RELAXED_REFRESH_S, 60.0)[:100]:
        assert 0 <= cell.row < bank_map.geometry.rows_per_bank
        assert 0 <= cell.col < bank_map.geometry.bits_per_row


def test_charged_by_orientation():
    from repro.dram.cells import WeakCell
    true_cell = WeakCell(0, 0, 1.0, is_true_cell=True, is_vrt=False)
    anti_cell = WeakCell(0, 0, 1.0, is_true_cell=False, is_vrt=False)
    assert true_cell.charged_by(True) and not true_cell.charged_by(False)
    assert anti_cell.charged_by(False) and not anti_cell.charged_by(True)


def test_sample_count_poisson_mean():
    rng = make_rng(1)
    counts = [sample_weak_cell_count(rng, 10_000_000, 1e-5) for _ in range(200)]
    mean = sum(counts) / len(counts)
    assert mean == pytest.approx(100.0, rel=0.1)


def test_sample_count_invalid_probability():
    with pytest.raises(ConfigurationError):
        sample_weak_cell_count(make_rng(1), 100, 1.5)


def test_population_aggregate_counts(dram_population):
    """Board-level Table I expectations: ~200 @50C, ~3500 @60C."""
    total50 = total60 = 0
    for dev in range(dram_population.geometry.num_devices):
        per50 = dram_population.device_unique_locations(dev, RELAXED_REFRESH_S, 50.0)
        per60 = dram_population.device_unique_locations(dev, RELAXED_REFRESH_S, 60.0)
        total50 += sum(per50)
        total60 += sum(per60)
    assert 1200 < total50 < 2700      # 8 banks x ~150-280
    assert 22000 < total60 < 40000    # 8 banks x ~2800-4400
    assert 13 < total60 / total50 < 23


def test_population_chip_variation(dram_population):
    """'Large variation of the number of weak cells across DRAM chips'."""
    totals = [sum(dram_population.device_unique_locations(d, RELAXED_REFRESH_S, 60.0))
              for d in range(dram_population.geometry.num_devices)]
    assert max(totals) / max(1, min(totals)) > 2.0


def test_population_maps_cached(dram_population):
    a = dram_population.bank_map(0, 0)
    b = dram_population.bank_map(0, 0)
    assert a is b


def test_expected_unique_locations_analytic(dram_population):
    expected = dram_population.expected_unique_locations(RELAXED_REFRESH_S, 60.0)
    assert 2800 / 72 < expected < 4400 / 72
