"""Multi-round VRT-aware retention profiling."""

import pytest

from repro.dram.cells import WeakCellMap
from repro.dram.geometry import BankAddress
from repro.dram.profiling import profile_bank
from repro.errors import ConfigurationError
from repro.units import RELAXED_REFRESH_S


@pytest.fixture(scope="module")
def weak_map() -> WeakCellMap:
    return WeakCellMap(BankAddress(1, 2), seed=11)


@pytest.fixture(scope="module")
def campaign(weak_map):
    return profile_bank(weak_map, RELAXED_REFRESH_S, 60.0, rounds=12, seed=11)


def test_cumulative_curve_monotone(campaign):
    cumulative = [r.cumulative_unique for r in campaign.rounds]
    assert cumulative == sorted(cumulative)


def test_every_round_sees_stable_population(campaign):
    for record in campaign.rounds:
        assert record.failing_locations >= campaign.stable_population


def test_union_bounded_by_total_population(campaign):
    assert campaign.total_unique <= \
        campaign.stable_population + campaign.vrt_population


def test_single_round_misses_vrt_cells(campaign):
    """The profiling hazard: one pass under-counts when VRT is present."""
    if campaign.vrt_population == 0:
        pytest.skip("no VRT cells in this bank's draw")
    assert campaign.single_round_coverage < 1.0
    assert campaign.rounds[0].failing_locations < campaign.total_unique


def test_campaign_saturates(campaign):
    """With enough rounds the union stops growing."""
    assert campaign.total_unique == \
        campaign.rounds[-1].cumulative_unique
    # Expected coverage after 12 rounds: 1 - 0.5^12 of VRT cells -- all
    # but a vanishing fraction, so the last rounds discover nothing new.
    assert campaign.rounds[-1].new_locations == 0


def test_first_round_new_equals_observed(campaign):
    first = campaign.rounds[0]
    assert first.new_locations == first.failing_locations
    assert first.cumulative_unique == first.failing_locations


def test_deterministic_given_seed(weak_map):
    a = profile_bank(weak_map, RELAXED_REFRESH_S, 60.0, rounds=6, seed=5)
    b = profile_bank(weak_map, RELAXED_REFRESH_S, 60.0, rounds=6, seed=5)
    assert a.rounds == b.rounds


def test_more_rounds_never_fewer_uniques(weak_map):
    short = profile_bank(weak_map, RELAXED_REFRESH_S, 60.0, rounds=2, seed=5)
    long = profile_bank(weak_map, RELAXED_REFRESH_S, 60.0, rounds=10, seed=5)
    assert long.total_unique >= short.total_unique


def test_zero_rounds_rejected(weak_map):
    with pytest.raises(ConfigurationError):
        profile_bank(weak_map, RELAXED_REFRESH_S, 60.0, rounds=0)
