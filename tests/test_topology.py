"""SoC topology invariants."""

import pytest

from repro.errors import TopologyError
from repro.soc.topology import CoreId, SocTopology


@pytest.fixture()
def topo() -> SocTopology:
    return SocTopology()


def test_xgene2_shape(topo):
    # Section II: 4 PMDs x 2 cores, 4 MCUs, up to 8 DIMMs, 16 ranks.
    assert topo.num_cores == 8
    assert topo.num_mcus == 4
    assert topo.num_dimms == 8
    assert topo.num_ranks == 16


def test_core_linear_roundtrip():
    for index in range(8):
        core = CoreId.from_linear(index)
        assert core.linear == index


def test_core_id_validation():
    with pytest.raises(TopologyError):
        CoreId(4, 0)
    with pytest.raises(TopologyError):
        CoreId(0, 2)
    with pytest.raises(TopologyError):
        CoreId.from_linear(8)


def test_pmd_cores_share_l2(topo):
    core = CoreId(1, 0)
    sharers = topo.l2_sharers(core)
    assert sharers == [CoreId(1, 0), CoreId(1, 1)]


def test_cores_iteration_order(topo):
    cores = list(topo.cores())
    assert [c.linear for c in cores] == list(range(8))
    assert cores[0].pmd == 0 and cores[7].pmd == 3


def test_mcu_of_dimm_mapping(topo):
    assert topo.mcu_of_dimm(0) == 0
    assert topo.mcu_of_dimm(1) == 0
    assert topo.mcu_of_dimm(7) == 3
    with pytest.raises(TopologyError):
        topo.mcu_of_dimm(8)


def test_mcb_of_mcu_mapping(topo):
    assert topo.mcb_of_mcu(0) == 0
    assert topo.mcb_of_mcu(1) == 0
    assert topo.mcb_of_mcu(2) == 1
    assert topo.mcb_of_mcu(3) == 1


def test_dimm_rank_pairs_enumeration(topo):
    pairs = list(topo.dimm_rank_pairs())
    assert len(pairs) == topo.num_ranks
    assert pairs[0] == (0, 0)
    assert pairs[-1] == (7, 1)


def test_invalid_topology_rejected():
    with pytest.raises(TopologyError):
        SocTopology(num_pmds=0)


def test_cache_sizes_match_paper(topo):
    assert topo.l1i_bytes == 32 * 1024
    assert topo.l1d_bytes == 32 * 1024
    assert topo.l2_bytes_per_pmd == 256 * 1024
    assert topo.l3_bytes == 8 * 1024 * 1024
