"""Unit conventions and conversion helpers.

The library stores physical quantities as plain floats in fixed canonical
units. This module documents those conventions and provides conversion
helpers so call sites never embed bare magic factors.

Canonical units
---------------
- voltage: millivolts (mV) -- matches how the paper reports every number
- frequency: gigahertz (GHz) for core clocks, hertz (Hz) for PDN analysis
- time: seconds (s); DRAM refresh intervals also expressed in seconds
- temperature: degrees Celsius (C); Kelvin only inside Arrhenius math
- power: watts (W)
- energy: joules (J)
- current: amperes (A)
"""

from __future__ import annotations

KELVIN_OFFSET = 273.15

#: Boltzmann constant in eV/K (used by the Arrhenius retention model).
BOLTZMANN_EV_PER_K = 8.617333262e-5

#: Nominal DDR3 refresh interval (tREFW) in seconds -- 64 ms per JEDEC.
NOMINAL_REFRESH_S = 0.064

#: The paper's relaxed refresh interval: "from the nominal 64ms to 2.283s".
RELAXED_REFRESH_S = 2.283

#: Relaxation factor quoted in the paper ("35x relaxed refresh period").
REFRESH_RELAX_FACTOR = RELAXED_REFRESH_S / NOMINAL_REFRESH_S


def celsius_to_kelvin(temp_c: float) -> float:
    """Convert a Celsius temperature to Kelvin."""
    return temp_c + KELVIN_OFFSET


def kelvin_to_celsius(temp_k: float) -> float:
    """Convert a Kelvin temperature to Celsius."""
    return temp_k - KELVIN_OFFSET


def mv_to_v(millivolts: float) -> float:
    """Convert millivolts to volts."""
    return millivolts / 1000.0


def v_to_mv(volts: float) -> float:
    """Convert volts to millivolts."""
    return volts * 1000.0


def ghz_to_hz(gigahertz: float) -> float:
    """Convert gigahertz to hertz."""
    return gigahertz * 1e9


def hz_to_ghz(hertz: float) -> float:
    """Convert hertz to gigahertz."""
    return hertz / 1e9


def percent(before: float, after: float) -> float:
    """Relative reduction from ``before`` to ``after``, in percent.

    >>> round(percent(31.1, 24.8), 1)
    20.3
    """
    if before == 0:
        raise ZeroDivisionError("cannot compute a relative reduction from 0")
    return (before - after) / before * 100.0
