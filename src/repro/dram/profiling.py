"""Multi-round retention profiling with variable-retention-time cells.

Liu et al. [19] -- the paper's retention reference -- showed that a
single profiling pass misses cells whose retention flips between a weak
and a strong state (variable retention time, VRT). Real profilers
therefore run the DPBench suite repeatedly and accumulate the *union*
of failing locations across rounds.

This module implements that flow over our weak-cell maps: stable weak
cells fail in every round; VRT cells fail in a round only when they are
in their weak state (a seeded Bernoulli draw per round). The accumulated
unique-location curve rises with the number of rounds and saturates at
the full weak population -- the behaviour profilers observe in practice,
and the reason "unique error locations" in Table I is a union over the
whole campaign.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from repro.dram.cells import WeakCellMap
from repro.errors import ConfigurationError
from repro.rand import SeedLike, substream

#: Probability that a VRT cell sits in its weak (leaky) state during a
#: given profiling round. Published VRT duty cycles span a wide range;
#: 0.5 is the neutral default.
VRT_WEAK_STATE_PROBABILITY = 0.5


@dataclass(frozen=True)
class ProfilingRound:
    """Result of one DPBench profiling round over a bank."""

    round_index: int
    failing_locations: int      # cells observed failing this round
    new_locations: int          # not seen in any earlier round
    cumulative_unique: int


@dataclass(frozen=True)
class ProfilingCampaign:
    """The full multi-round profile of one bank."""

    rounds: Tuple[ProfilingRound, ...]
    stable_population: int       # non-VRT weak cells at the condition
    vrt_population: int          # VRT weak cells at the condition

    @property
    def total_unique(self) -> int:
        return self.rounds[-1].cumulative_unique if self.rounds else 0

    @property
    def single_round_coverage(self) -> float:
        """Fraction of the final unique set the first round found.

        The headline profiling hazard: < 1.0 means one pass misses
        retention-weak cells.
        """
        if self.total_unique == 0:
            return 1.0
        return self.rounds[0].failing_locations / self.total_unique

    def saturated_after(self, slack_rounds: int = 2) -> Optional[int]:
        """First round after which no new locations appeared.

        Returns None if the campaign never went ``slack_rounds`` rounds
        without discovering a new cell.
        """
        run = 0
        for record in self.rounds:
            if record.new_locations == 0:
                run += 1
                if run >= slack_rounds:
                    return record.round_index - slack_rounds + 1
            else:
                run = 0
        return None


def profile_bank(weak_map: WeakCellMap, interval_s: float, temp_c: float,
                 rounds: int = 8, seed: SeedLike = None) -> ProfilingCampaign:
    """Run a multi-round DPBench profiling campaign over one bank.

    Each round observes every stable weak cell at the condition plus
    each VRT weak cell with probability
    :data:`VRT_WEAK_STATE_PROBABILITY`.
    """
    if rounds < 1:
        raise ConfigurationError("need at least one profiling round")
    rng = substream(seed, f"profiling-d{weak_map.bank.device}-b{weak_map.bank.bank}")
    coupling = weak_map.retention.params.coupling_random
    cells = weak_map.failing_cells(interval_s, temp_c, coupling=coupling)
    stable = [(c.row, c.col) for c in cells if not c.is_vrt]
    vrt = [(c.row, c.col) for c in cells if c.is_vrt]

    seen: Set[Tuple[int, int]] = set()
    records: List[ProfilingRound] = []
    for index in range(rounds):
        observed = set(stable)
        for location in vrt:
            if rng.random() < VRT_WEAK_STATE_PROBABILITY:
                observed.add(location)
        new = observed - seen
        seen |= observed
        records.append(ProfilingRound(
            round_index=index,
            failing_locations=len(observed),
            new_locations=len(new),
            cumulative_unique=len(seen),
        ))
    return ProfilingCampaign(
        rounds=tuple(records),
        stable_population=len(stable),
        vrt_population=len(vrt),
    )
