"""A real (72,64) SECDED Hamming code.

The X-Gene2's MCUs protect each 64-bit word with 8 check bits: single
error correction, double error detection (SECDED). The paper's central
DRAM finding -- "all manifested errors are corrected by ECC ... when the
DRAM temperature does not exceed 60 degC" -- is a property of error
density vs codeword size, so we implement the actual code rather than a
probability shortcut, and let the experiments exercise it with concrete
corrupted words.

Construction: an extended Hamming code. 7 check bits implement a
Hamming(71,64)-style parity-check matrix with distinct nonzero columns
per data bit; an 8th overall-parity bit extends minimum distance to 4,
distinguishing single (correctable) from double (detectable) errors.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import EccError

DATA_BITS = 64
CHECK_BITS = 8
CODE_BITS = DATA_BITS + CHECK_BITS


class DecodeStatus(enum.Enum):
    """Outcome of decoding one codeword."""

    CLEAN = "clean"                    # no error
    CORRECTED = "corrected"            # single-bit error fixed
    DETECTED_UNCORRECTABLE = "ue"      # double-bit error detected
    MISCORRECTED = "miscorrected"      # >2 errors aliased to a valid or
    #                                    correctable-looking word (silent)

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class DecodeResult:
    """Decoded data plus the status the MCU would report."""

    data: int
    status: DecodeStatus
    corrected_bit: Optional[int] = None  # codeword bit index if CORRECTED


def _build_columns() -> List[int]:
    """Syndrome column (7-bit, nonzero, non-power-of-two) per data bit.

    Power-of-two syndromes are reserved for the check bits themselves, so
    data columns are the remaining values 3, 5, 6, 7, 9, ... -- the
    classic Hamming assignment.
    """
    columns = []
    value = 3
    while len(columns) < DATA_BITS:
        if value & (value - 1) != 0:  # skip powers of two
            columns.append(value)
        value += 1
    return columns


_DATA_COLUMNS = _build_columns()
_CHECK_COLUMNS = [1 << i for i in range(CHECK_BITS - 1)]  # 7 Hamming checks


class SecdedCode:
    """Encoder/decoder for the (72,64) SECDED code.

    Codeword layout: bits 0..63 are data, bits 64..70 the seven Hamming
    check bits, bit 71 the overall parity.
    """

    def encode(self, data: int) -> int:
        """Encode a 64-bit word into a 72-bit codeword."""
        if not 0 <= data < (1 << DATA_BITS):
            raise EccError(f"data word out of range for {DATA_BITS} bits")
        syndrome = 0
        for bit in range(DATA_BITS):
            if (data >> bit) & 1:
                syndrome ^= _DATA_COLUMNS[bit]
        codeword = data
        for i in range(CHECK_BITS - 1):
            if (syndrome >> i) & 1:
                codeword |= 1 << (DATA_BITS + i)
        overall = bin(codeword).count("1") & 1
        if overall:
            codeword |= 1 << (CODE_BITS - 1)
        return codeword

    def _syndrome(self, codeword: int) -> Tuple[int, int]:
        """Return ``(hamming_syndrome, overall_parity)`` of a codeword."""
        syndrome = 0
        for bit in range(DATA_BITS):
            if (codeword >> bit) & 1:
                syndrome ^= _DATA_COLUMNS[bit]
        for i in range(CHECK_BITS - 1):
            if (codeword >> (DATA_BITS + i)) & 1:
                syndrome ^= _CHECK_COLUMNS[i]
        overall = bin(codeword).count("1") & 1
        return syndrome, overall

    def decode(self, codeword: int) -> DecodeResult:
        """Decode a possibly-corrupted 72-bit codeword.

        Classification follows the standard SECDED truth table:

        ========== ========== =================================
        syndrome   parity     meaning
        ========== ========== =================================
        0          0          clean
        0          1          overall-parity bit flipped (corrected)
        nonzero    1          single-bit error (corrected)
        nonzero    0          double-bit error (detected, UE)
        ========== ========== =================================

        Triple-or-more errors can alias into any row; when they alias
        into a "single error" row, the decoder silently mis-corrects --
        the pathway that would produce SDC at very high error densities.
        """
        if not 0 <= codeword < (1 << CODE_BITS):
            raise EccError(f"codeword out of range for {CODE_BITS} bits")
        syndrome, overall = self._syndrome(codeword)
        data = codeword & ((1 << DATA_BITS) - 1)
        if syndrome == 0 and overall == 0:
            return DecodeResult(data=data, status=DecodeStatus.CLEAN)
        if syndrome == 0 and overall == 1:
            # Only the overall parity bit is wrong; data is intact.
            return DecodeResult(data=data, status=DecodeStatus.CORRECTED,
                                corrected_bit=CODE_BITS - 1)
        if overall == 1:
            bit = self._locate(syndrome)
            if bit is None:
                # Syndrome does not match any column: >= 3 errors seen as
                # an uncorrectable pattern.
                return DecodeResult(data=data,
                                    status=DecodeStatus.DETECTED_UNCORRECTABLE)
            corrected = codeword ^ (1 << bit)
            return DecodeResult(data=corrected & ((1 << DATA_BITS) - 1),
                                status=DecodeStatus.CORRECTED, corrected_bit=bit)
        return DecodeResult(data=data, status=DecodeStatus.DETECTED_UNCORRECTABLE)

    def decode_with_truth(self, codeword: int, true_data: int) -> DecodeResult:
        """Decode and reclassify silent mis-corrections using the truth.

        The simulator knows the originally-stored data, so it can tell a
        genuine correction from an aliased >=3-bit error that *looks*
        corrected. Experiments use this to count SDC-through-ECC events.
        """
        result = self.decode(codeword)
        if result.status in (DecodeStatus.CLEAN, DecodeStatus.CORRECTED) \
                and result.data != true_data:
            return DecodeResult(data=result.data, status=DecodeStatus.MISCORRECTED,
                                corrected_bit=result.corrected_bit)
        return result

    @staticmethod
    def _locate(syndrome: int) -> Optional[int]:
        """Map a syndrome to the codeword bit position it points at."""
        if syndrome in _CHECK_COLUMNS:
            return DATA_BITS + _CHECK_COLUMNS.index(syndrome)
        if syndrome in _DATA_SYNDROME_TO_BIT:
            return _DATA_SYNDROME_TO_BIT[syndrome]
        return None

    @staticmethod
    def flip_bits(codeword: int, bits: List[int]) -> int:
        """Inject errors: flip the given codeword bit positions."""
        for bit in bits:
            if not 0 <= bit < CODE_BITS:
                raise EccError(f"bit index {bit} out of range")
            codeword ^= 1 << bit
        return codeword


_DATA_SYNDROME_TO_BIT = {col: i for i, col in enumerate(_DATA_COLUMNS)}


class ParityCode:
    """Single-parity-bit protection (detect odd errors only).

    Used by the ECC-strength ablation bench as the weaker comparator the
    paper mentions for L1I/TLB structures.
    """

    def encode(self, data: int) -> int:
        if not 0 <= data < (1 << DATA_BITS):
            raise EccError(f"data word out of range for {DATA_BITS} bits")
        parity = bin(data).count("1") & 1
        return data | (parity << DATA_BITS)

    def decode(self, codeword: int) -> DecodeResult:
        if not 0 <= codeword < (1 << (DATA_BITS + 1)):
            raise EccError("codeword out of range for parity code")
        data = codeword & ((1 << DATA_BITS) - 1)
        if bin(codeword).count("1") & 1:
            return DecodeResult(data=data, status=DecodeStatus.DETECTED_UNCORRECTABLE)
        return DecodeResult(data=data, status=DecodeStatus.CLEAN)
