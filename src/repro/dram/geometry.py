"""DRAM organization and addressing.

The testbed holds 32 GB of DDR3 across 4 DIMMs (one per MCU), two ranks
each, with x8 4 Gb devices -- 9 devices per rank including the ECC chip,
72 data+check chips total, matching the paper's "72 DRAM chips". Each
device exposes 8 banks; rows hold 8 KB pages.

Addresses used by the retention machinery are *bank-local*: a
``(row, col, bit)`` triple inside one bank of one chip.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

from repro.errors import TopologyError

#: Devices per rank on a standard ECC DIMM: 8 data + 1 check (x8 parts).
DEVICES_PER_RANK = 9


@dataclass(frozen=True)
class DramGeometry:
    """Board-level DRAM organization.

    Defaults model the paper's testbed: 4 DIMMs x 2 ranks x 9 devices
    (= 72 chips), 8 banks per device, 64K rows x 8192 bits per bank
    (a 4 Gb x8 part).
    """

    num_dimms: int = 4
    ranks_per_dimm: int = 2
    devices_per_rank: int = DEVICES_PER_RANK
    banks_per_device: int = 8
    rows_per_bank: int = 65536
    bits_per_row: int = 8192

    def __post_init__(self) -> None:
        for name in ("num_dimms", "ranks_per_dimm", "devices_per_rank",
                     "banks_per_device", "rows_per_bank", "bits_per_row"):
            if getattr(self, name) <= 0:
                raise TopologyError(f"{name} must be positive")

    @property
    def num_ranks(self) -> int:
        return self.num_dimms * self.ranks_per_dimm

    @property
    def num_devices(self) -> int:
        """Total DRAM chips on the board (72 in the paper's testbed)."""
        return self.num_ranks * self.devices_per_rank

    @property
    def bits_per_bank(self) -> int:
        return self.rows_per_bank * self.bits_per_row

    @property
    def bits_per_device(self) -> int:
        return self.banks_per_device * self.bits_per_bank

    @property
    def total_bits(self) -> int:
        return self.num_devices * self.bits_per_device

    @property
    def total_bytes(self) -> int:
        return self.total_bits // 8

    def device_ids(self) -> Iterator[int]:
        return iter(range(self.num_devices))

    def device_location(self, device: int) -> Tuple[int, int, int]:
        """Map a flat device id to ``(dimm, rank, slot)``."""
        if not 0 <= device < self.num_devices:
            raise TopologyError(f"device {device} outside 0..{self.num_devices - 1}")
        per_dimm = self.ranks_per_dimm * self.devices_per_rank
        dimm = device // per_dimm
        rank = (device % per_dimm) // self.devices_per_rank
        slot = device % self.devices_per_rank
        return dimm, rank, slot


@dataclass(frozen=True)
class BankAddress:
    """Identifies one bank: ``(device, bank)``."""

    device: int
    bank: int

    def validate(self, geometry: DramGeometry) -> None:
        if not 0 <= self.device < geometry.num_devices:
            raise TopologyError(f"device {self.device} out of range")
        if not 0 <= self.bank < geometry.banks_per_device:
            raise TopologyError(f"bank {self.bank} out of range")


#: The paper's testbed geometry.
DEFAULT_GEOMETRY = DramGeometry()
