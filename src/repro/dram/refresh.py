"""Refresh scheduling and inherent (access-driven) refresh.

A DRAM row is recharged both by explicit refresh operations and by any
activation of that row (reads/writes) -- the "inherent refresh" the
paper leans on to explain why real workloads see fewer errors than the
data-pattern viruses, and which its stencil-scheduling study (reference
[12]) exploits deliberately.

:class:`RefreshController` tracks per-row effective refresh intervals for
a bank given the programmed TREFP and a workload's row-access trace, and
reports each row's *exposure*: the longest charge-holding window any
cell in the row experiences.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.units import NOMINAL_REFRESH_S


@dataclass(frozen=True)
class AccessTrace:
    """Row-activation events for one bank over an observation window.

    ``accesses`` maps row -> sorted tuple of activation times (s).
    ``window_s`` is the length of the observed execution window.
    """

    window_s: float
    accesses: Dict[int, Tuple[float, ...]]

    def __post_init__(self) -> None:
        if self.window_s <= 0:
            raise ConfigurationError("trace window must be positive")
        for row, times in self.accesses.items():
            if any(t < 0 or t > self.window_s for t in times):
                raise ConfigurationError(f"row {row}: access time outside window")
            if list(times) != sorted(times):
                raise ConfigurationError(f"row {row}: access times must be sorted")

    @classmethod
    def from_events(cls, window_s: float,
                    events: Iterable[Tuple[float, int]]) -> "AccessTrace":
        """Build from ``(time, row)`` event pairs in any order."""
        by_row: Dict[int, List[float]] = {}
        for time, row in events:
            by_row.setdefault(row, []).append(time)
        return cls(window_s=window_s,
                   accesses={row: tuple(sorted(ts)) for row, ts in by_row.items()})

    def accessed_rows(self) -> List[int]:
        return sorted(self.accesses)


class RefreshController:
    """Per-row exposure analysis under a programmed refresh period.

    The controller refreshes every row once per ``trefp_s`` (distributed
    refresh; each row's refresh tick has a fixed phase). A row's exposure
    is the longest gap between consecutive recharge events (refresh tick
    or activation) within the window.
    """

    def __init__(self, trefp_s: float = NOMINAL_REFRESH_S,
                 rows_per_bank: int = 65536) -> None:
        if trefp_s <= 0:
            raise ConfigurationError("refresh period must be positive")
        if rows_per_bank <= 0:
            raise ConfigurationError("rows_per_bank must be positive")
        self.trefp_s = trefp_s
        self.rows_per_bank = rows_per_bank

    def row_refresh_phase(self, row: int) -> float:
        """Phase offset of a row's distributed-refresh tick within TREFP."""
        return (row % self.rows_per_bank) / self.rows_per_bank * self.trefp_s

    def row_exposure_s(self, row: int, access_times: Sequence[float] = (),
                       window_s: float = None) -> float:
        """Longest charge-holding gap for ``row`` over the window.

        With no accesses this is exactly ``trefp_s``; activations split
        the refresh interval and can only shorten the exposure.

        Refresh ticks are distributed (one per row per TREFP at the
        row's phase) and run before and after the window too, so the
        tick series is extended one period past each window edge before
        measuring gaps -- without that, the final partial interval would
        spuriously read as a full TREFP of exposure.
        """
        window_s = window_s if window_s is not None else 4.0 * self.trefp_s
        if window_s <= 0:
            raise ConfigurationError("window must be positive")
        phase = self.row_refresh_phase(row)
        # Ticks from one period before the window to one past its end.
        first_k = -1 - int(phase / self.trefp_s)
        ticks = []
        k = first_k
        while True:
            t = phase + k * self.trefp_s
            ticks.append(t)
            if t > window_s:
                break
            k += 1
        in_window = [t for t in access_times if 0.0 <= t <= window_s]
        events = sorted(set(ticks) | set(in_window))
        # Only the portion of each gap that overlaps the observation
        # window counts as exposure *observed in this window* (the
        # recharge history outside the window is the tick series).
        exposure = 0.0
        for a, b in zip(events, events[1:]):
            overlap = min(b, window_s) - max(a, 0.0)
            if overlap > exposure:
                exposure = overlap
        if not events:
            exposure = self.trefp_s
        return min(exposure, self.trefp_s)

    def exposure_map(self, trace: AccessTrace) -> Dict[int, float]:
        """Exposure per accessed row of a trace (others sit at TREFP)."""
        return {
            row: self.row_exposure_s(row, times, trace.window_s)
            for row, times in trace.accesses.items()
        }

    def covered_fraction(self, trace: AccessTrace, target_s: float = None,
                         tolerance: float = 1e-3) -> float:
        """Fraction of accessed rows whose exposure beats ``target_s``.

        With ``target_s = None`` the comparison target is TREFP itself:
        the share of rows for which inherent refresh shortens exposure --
        the quantity the stencil-scheduling study maximizes. A row only
        counts as covered when its exposure sits *meaningfully* below
        the target (relative ``tolerance``), so window-edge clipping
        artifacts of a few microseconds never count as coverage.
        """
        target = target_s if target_s is not None else self.trefp_s
        exposures = self.exposure_map(trace)
        if not exposures:
            return 0.0
        covered = sum(1 for e in exposures.values()
                      if e < target * (1.0 - tolerance))
        return covered / len(exposures)

    def refresh_commands_per_second(self) -> float:
        """All-bank refresh command rate implied by TREFP."""
        return self.rows_per_bank / self.trefp_s

    @staticmethod
    def access_interval_coverage(trace: AccessTrace, target_s: float) -> float:
        """Fraction of rows self-refreshed by their own access pattern.

        A row counts as covered when it is accessed at least twice and
        its largest inter-access gap stays below ``target_s`` -- i.e.
        the workload alone keeps the row's charge alive over its live
        span, without relying on scheduled refresh. This is the quantity
        the paper's stencil-scheduling study optimizes ("all accesses
        occur within a targeted time period that is less than the next
        scheduled refresh operation").
        """
        if target_s <= 0:
            raise ConfigurationError("target period must be positive")
        if not trace.accesses:
            return 0.0
        covered = 0
        for times in trace.accesses.values():
            if len(times) < 2:
                continue
            max_gap = max(b - a for a, b in zip(times, times[1:]))
            if max_gap < target_s:
                covered += 1
        return covered / len(trace.accesses)
