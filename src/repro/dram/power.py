"""DRAM power model with an explicit refresh component.

The DRAM domain's power splits into:

- background (precharge/active standby, PLL, I/O termination) -- fixed;
- refresh -- proportional to the refresh command rate, i.e. inversely
  proportional to TREFP;
- access -- proportional to sustained bandwidth.

Relaxing TREFP by 35x removes ~97 % of the refresh component, so the
*relative* saving a workload sees depends on how much access power it
adds on top -- which is exactly the spread the paper's Figure 8b reports
(27.3 % for the low-bandwidth nw down to 9.4 % for the streaming
kmeans).

Default wattages are calibrated so the Figure 8b and Figure 9 numbers
come out at the paper's values for the modelled 4-DIMM, 32 GB board;
see DESIGN.md section 4.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import NOMINAL_REFRESH_S


@dataclass(frozen=True)
class DramPowerBreakdown:
    """Component watts of the DRAM domain at one operating point."""

    background_w: float
    refresh_w: float
    access_w: float

    @property
    def total_w(self) -> float:
        return self.background_w + self.refresh_w + self.access_w


@dataclass(frozen=True)
class DramPowerModel:
    """Analytic DRAM-domain power.

    Attributes
    ----------
    background_w:
        Standby power of the full DRAM subsystem (all DIMMs).
    refresh_w_nominal:
        Refresh power at the nominal 64 ms TREFP.
    access_w_per_gbs:
        Incremental power per GB/s of sustained bandwidth.
    """

    background_w: float = 4.6
    refresh_w_nominal: float = 2.6
    access_w_per_gbs: float = 0.6
    nominal_trefp_s: float = NOMINAL_REFRESH_S

    def __post_init__(self) -> None:
        if min(self.background_w, self.refresh_w_nominal,
               self.access_w_per_gbs, self.nominal_trefp_s) <= 0:
            raise ConfigurationError("all power-model parameters must be positive")

    def refresh_w(self, trefp_s: float) -> float:
        """Refresh power at a programmed TREFP."""
        if trefp_s <= 0:
            raise ConfigurationError("refresh period must be positive")
        return self.refresh_w_nominal * (self.nominal_trefp_s / trefp_s)

    def breakdown(self, trefp_s: float, bandwidth_gbs: float) -> DramPowerBreakdown:
        """Component watts at an operating point."""
        if bandwidth_gbs < 0:
            raise ConfigurationError("bandwidth cannot be negative")
        return DramPowerBreakdown(
            background_w=self.background_w,
            refresh_w=self.refresh_w(trefp_s),
            access_w=self.access_w_per_gbs * bandwidth_gbs,
        )

    def total_w(self, trefp_s: float, bandwidth_gbs: float) -> float:
        return self.breakdown(trefp_s, bandwidth_gbs).total_w

    def relaxation_savings(self, bandwidth_gbs: float,
                           relaxed_trefp_s: float) -> float:
        """Fractional power saving from relaxing TREFP at a bandwidth.

        ``(P(nominal) - P(relaxed)) / P(nominal)`` -- the Figure 8b
        quantity.
        """
        nominal = self.total_w(self.nominal_trefp_s, bandwidth_gbs)
        relaxed = self.total_w(relaxed_trefp_s, bandwidth_gbs)
        return (nominal - relaxed) / nominal
