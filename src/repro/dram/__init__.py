"""DRAM retention substrate.

The paper characterizes 72 DDR3 chips under a 35x relaxed refresh period
(64 ms -> 2.283 s) at controlled 50/60 degC, counting weak-cell error
locations per bank (Table I), measuring workload bit-error rates
(Figure 8a), and projecting refresh power savings (Figure 8b). This
package provides the simulated equivalent:

- :mod:`repro.dram.geometry` -- chips/ranks/banks/rows addressing;
- :mod:`repro.dram.retention` -- the per-cell retention-time statistics
  (lognormal weak tail with Arrhenius temperature acceleration and
  data-pattern dependence), following the structure established by Liu
  et al. [19];
- :mod:`repro.dram.cells` -- lazily-sampled weak-cell maps per bank;
- :mod:`repro.dram.refresh` -- refresh scheduling, including inherent
  refresh from workload row accesses;
- :mod:`repro.dram.ecc` -- a real (72,64) SECDED Hamming code;
- :mod:`repro.dram.power` -- the DRAM power model with its refresh
  component;
- :mod:`repro.dram.controller` -- an MCU front-end tying the pieces
  together and reporting CE/UE events to SLIMpro;
- :mod:`repro.dram.errors_model` -- analytic BER/error-count estimation
  used by the experiment drivers.
"""

from repro.dram.geometry import BankAddress, DramGeometry, DEFAULT_GEOMETRY
from repro.dram.retention import RetentionModel, RetentionParams, DEFAULT_RETENTION
from repro.dram.cells import (
    DramDevicePopulation,
    WeakCell,
    WeakCellMap,
    sample_weak_cell_count,
)
from repro.dram.refresh import RefreshController, AccessTrace
from repro.dram.ecc import SecdedCode, DecodeStatus, DecodeResult
from repro.dram.profiling import ProfilingCampaign, ProfilingRound, profile_bank
from repro.dram.rank_ecc import RankEccLayout, scrub_board, scrub_rank
from repro.dram.scrubber import PatrolReport, PatrolScrubber, pairup_probability
from repro.dram.power import DramPowerModel, DramPowerBreakdown
from repro.dram.controller import MemoryControlUnit
from repro.dram.errors_model import BitErrorModel, PatternKind

__all__ = [
    "AccessTrace",
    "BankAddress",
    "BitErrorModel",
    "DEFAULT_GEOMETRY",
    "DEFAULT_RETENTION",
    "DecodeResult",
    "DecodeStatus",
    "DramGeometry",
    "DramPowerBreakdown",
    "DramPowerModel",
    "MemoryControlUnit",
    "PatrolReport",
    "PatrolScrubber",
    "PatternKind",
    "ProfilingCampaign",
    "ProfilingRound",
    "RankEccLayout",
    "RefreshController",
    "RetentionModel",
    "RetentionParams",
    "SecdedCode",
    "WeakCell",
    "WeakCellMap",
    "pairup_probability",
    "profile_bank",
    "sample_weak_cell_count",
    "scrub_board",
    "scrub_rank",
]
