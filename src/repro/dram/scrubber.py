"""Patrol scrubbing: bounding error accumulation between refreshes.

At a 35x relaxed refresh period a weak cell stays wrong for up to 2.283 s
before the next refresh rewrites it. If a *second* bit in the same
codeword decays within that window, a correctable error escalates to an
uncorrectable one. A patrol scrubber walks memory in the background,
reading every codeword through ECC and writing back the corrected data,
which resets single-bit errors before they can pair up.

This module models that interaction analytically and by simulation over
the weak-cell maps:

- :func:`pairup_probability` -- the probability that a codeword collects
  two or more failing bits within one refresh window, with and without a
  patrol pass in between. This is the *ensemble* view: bit placements
  drawn fresh, as when reasoning about a fleet of banks;
- :class:`PatrolScrubber` -- walks a bank's weak-cell population over
  simulated refresh windows, counting CE->UE escalations prevented. This
  is the *per-part* view: a bank's weak-cell positions are fixed silicon
  facts, so whether it has pair-vulnerable words at all is decided once
  by its draw -- individual banks can be pair-free even when the
  ensemble probability is substantial (average over several banks when
  comparing against the analytic number).

The paper leans on ECC alone because its measured densities are low; the
scrubber quantifies how much headroom that leaves and when patrol
scrubbing becomes necessary (hotter, or longer TREFP) -- the "reduce the
reliance on ECC" direction of Section IV.C.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.dram.cells import WeakCellMap
from repro.dram.controller import WORD_DATA_BITS
from repro.errors import ConfigurationError
from repro.rand import SeedLike, substream


def pairup_probability(weak_bits: int, words: int,
                       scrub_passes: int = 0) -> float:
    """P(some codeword holds >= 2 weak bits) in one refresh window.

    ``weak_bits`` failing bits land uniformly in ``words`` codewords.
    Each patrol pass between refreshes splits the window: bits that
    decay in different sub-windows no longer coexist, which divides the
    pairing pressure by ``scrub_passes + 1`` (decay times are roughly
    uniform over the window).

    Uses the Poissonized birthday bound, accurate for the sparse regime
    the study operates in.
    """
    if words <= 0:
        raise ConfigurationError("words must be positive")
    if weak_bits < 0 or scrub_passes < 0:
        raise ConfigurationError("counts cannot be negative")
    if weak_bits < 2:
        return 0.0
    expected_pairs = weak_bits * (weak_bits - 1) / (2.0 * words)
    expected_pairs /= (scrub_passes + 1)
    return 1.0 - math.exp(-expected_pairs)


@dataclass(frozen=True)
class ScrubWindowResult:
    """One refresh window's outcome."""

    window_index: int
    weak_bits: int
    vulnerable_words: int        # words holding >= 2 weak bits, no scrub
    escalations_prevented: int   # pairs split by the patrol pass


@dataclass(frozen=True)
class PatrolReport:
    """Aggregate over a simulated campaign."""

    windows: Tuple[ScrubWindowResult, ...]
    scrub_passes_per_window: int

    @property
    def total_vulnerable_words(self) -> int:
        return sum(w.vulnerable_words for w in self.windows)

    @property
    def total_prevented(self) -> int:
        return sum(w.escalations_prevented for w in self.windows)

    @property
    def prevention_fraction(self) -> float:
        if self.total_vulnerable_words == 0:
            return 1.0
        return self.total_prevented / self.total_vulnerable_words


class PatrolScrubber:
    """Simulates patrol scrubbing over a bank's weak population.

    Each refresh window, the cells failing at the study condition decay
    at uniformly-random instants within the window. Without scrubbing, a
    word holding two decayed bits simultaneously is a UE. With ``passes``
    patrol passes, a pair is harmless whenever a pass falls between the
    two decay instants.
    """

    def __init__(self, weak_map: WeakCellMap, interval_s: float, temp_c: float,
                 passes: int = 1, seed: SeedLike = None) -> None:
        if passes < 0:
            raise ConfigurationError("passes cannot be negative")
        self.weak_map = weak_map
        self.interval_s = interval_s
        self.temp_c = temp_c
        self.passes = passes
        self._rng = substream(
            seed, f"scrubber-d{weak_map.bank.device}-b{weak_map.bank.bank}")

    def _decayed_pairs(self) -> Dict[Tuple[int, int], List[float]]:
        """Word -> decay instants (fractions of the window) of its bits."""
        cells = self.weak_map.failing_cells(
            self.interval_s, self.temp_c,
            coupling=self.weak_map.retention.params.coupling_random)
        by_word: Dict[Tuple[int, int], List[float]] = {}
        for cell in cells:
            key = (cell.row, cell.col // WORD_DATA_BITS)
            by_word.setdefault(key, []).append(float(self._rng.random()))
        return by_word

    def run_window(self, window_index: int) -> ScrubWindowResult:
        """Simulate one refresh window."""
        by_word = self._decayed_pairs()
        vulnerable = 0
        prevented = 0
        pass_times = [(k + 1) / (self.passes + 1) for k in range(self.passes)]
        for instants in by_word.values():
            if len(instants) < 2:
                continue
            vulnerable += 1
            first, last = min(instants), max(instants)
            if any(first < t < last for t in pass_times):
                prevented += 1
        return ScrubWindowResult(
            window_index=window_index,
            weak_bits=sum(len(v) for v in by_word.values()),
            vulnerable_words=vulnerable,
            escalations_prevented=prevented,
        )

    def run(self, windows: int = 16) -> PatrolReport:
        """Simulate a campaign of refresh windows."""
        if windows < 1:
            raise ConfigurationError("need at least one window")
        return PatrolReport(
            windows=tuple(self.run_window(i) for i in range(windows)),
            scrub_passes_per_window=self.passes,
        )
