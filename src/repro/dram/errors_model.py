"""Analytic bit-error-rate estimation for workloads and patterns.

Combines the retention statistics, data-pattern stress, and access-driven
inherent refresh into the BER a workload observes at a given refresh
period and temperature -- the Figure 8a quantity. Analytic expectations
keep the experiment drivers fast; the weak-cell maps provide the
matching concrete-sample view where needed (Table I, ECC tests).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.dram.retention import DEFAULT_RETENTION, RetentionModel
from repro.errors import ConfigurationError


class PatternKind(enum.Enum):
    """The paper's data-pattern benchmarks (DPBenches)."""

    ALL_ZEROS = "all0"
    ALL_ONES = "all1"
    CHECKERBOARD = "checkerboard"
    RANDOM = "random"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class DataStressProfile:
    """How a body of stored data stresses weak cells.

    Attributes
    ----------
    charged_fraction:
        Expected fraction of weak cells holding their charged (leaky)
        state under this data.
    coupling:
        Effective threshold multiplier from aggressor bit transitions
        (1.0 = solid pattern, up to the retention model's random-pattern
        coupling).
    """

    charged_fraction: float
    coupling: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.charged_fraction <= 1.0:
            raise ConfigurationError("charged_fraction must be in [0, 1]")
        if self.coupling < 1.0:
            raise ConfigurationError("coupling factor is >= 1 by definition")


class BitErrorModel:
    """BER calculator over a retention model."""

    def __init__(self, retention: RetentionModel = None) -> None:
        self.retention = retention or RetentionModel(DEFAULT_RETENTION)

    # ------------------------------------------------------------------
    # Stress profiles
    # ------------------------------------------------------------------
    def pattern_stress(self, pattern: PatternKind) -> DataStressProfile:
        """Stress profile of a DPBench pattern.

        Solid patterns charge only one cell orientation; checkerboard
        and random charge half the cells each but add coupling noise
        (random the most), matching the ordering reported both by the
        paper and by Liu et al. [19].
        """
        params = self.retention.params
        if pattern is PatternKind.ALL_ZEROS:
            return DataStressProfile(1.0 - params.true_cell_fraction, 1.0)
        if pattern is PatternKind.ALL_ONES:
            return DataStressProfile(params.true_cell_fraction, 1.0)
        if pattern is PatternKind.CHECKERBOARD:
            return DataStressProfile(0.5, params.coupling_checker)
        return DataStressProfile(0.5, params.coupling_random)

    def entropy_stress(self, data_entropy: float) -> DataStressProfile:
        """Stress profile for real-application data of given entropy.

        ``data_entropy`` in [0, 1]: 0 behaves like a solid pattern
        (mostly zeros -- common for sparse numeric workloads), 1 like the
        random pattern. Charged fraction and coupling interpolate between
        the solid-zeros and random profiles.
        """
        if not 0.0 <= data_entropy <= 1.0:
            raise ConfigurationError("data_entropy must be in [0, 1]")
        params = self.retention.params
        solid = self.pattern_stress(PatternKind.ALL_ZEROS)
        charged = solid.charged_fraction + (0.5 - solid.charged_fraction) * data_entropy
        coupling = 1.0 + (params.coupling_random - 1.0) * data_entropy
        return DataStressProfile(charged, coupling)

    # ------------------------------------------------------------------
    # BER
    # ------------------------------------------------------------------
    def pattern_ber(self, pattern: PatternKind, interval_s: float,
                    temp_c: float) -> float:
        """Expected BER of a DPBench at (interval, temperature).

        DPBenches write the pattern, idle for the refresh interval, then
        read back -- no inherent refresh is in play.
        """
        stress = self.pattern_stress(pattern)
        return stress.charged_fraction * self.retention.fail_probability(
            interval_s, temp_c, stress.coupling)

    def workload_ber(self, interval_s: float, temp_c: float,
                     data_entropy: float, hot_row_fraction: float) -> float:
        """Expected BER of a real workload.

        ``hot_row_fraction`` is the share of the workload's resident rows
        whose access interval stays below the refresh period -- those
        rows are inherently refreshed and contribute (almost) no errors.
        The rest see the full exposure with the workload's data stress.
        """
        if not 0.0 <= hot_row_fraction <= 1.0:
            raise ConfigurationError("hot_row_fraction must be in [0, 1]")
        stress = self.entropy_stress(data_entropy)
        cold = 1.0 - hot_row_fraction
        return cold * stress.charged_fraction * self.retention.fail_probability(
            interval_s, temp_c, stress.coupling)

    def worst_pattern(self, interval_s: float, temp_c: float) -> PatternKind:
        """The DPBench with the highest expected BER at a condition."""
        return max(PatternKind,
                   key=lambda p: self.pattern_ber(p, interval_s, temp_c))
