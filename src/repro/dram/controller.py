"""Memory Control Unit front-end.

Ties the DRAM substrate together the way an MCU does on the board: it
owns a programmed refresh period, scrubs banks through the SECDED code,
and forwards every corrected/detected event to SLIMpro -- the reporting
path the paper extended for its characterization framework.

The scrub pass is the simulation analogue of the DPBench read-back: given
a bank's weak-cell map and the stored pattern, it materializes the
failing bits, groups them into 72-bit codewords, runs the real decoder on
each, and reports CE/UE/miscorrection counts.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.dram.cells import WeakCell, WeakCellMap
from repro.dram.ecc import DecodeStatus, SecdedCode
from repro.dram.errors_model import PatternKind
from repro.dram.geometry import DEFAULT_GEOMETRY, DramGeometry
from repro.errors import ConfigurationError
from repro.soc.slimpro import EccReport, SLIMpro
from repro.units import NOMINAL_REFRESH_S

#: Data bits per ECC codeword (one burst of a 72-bit-wide DIMM).
WORD_DATA_BITS = 64


@dataclass(frozen=True)
class ScrubResult:
    """Outcome of one ECC scrub over a bank at a condition."""

    raw_bit_errors: int
    corrected_words: int
    uncorrectable_words: int
    miscorrected_words: int
    words_scanned: int

    @property
    def all_corrected(self) -> bool:
        """The paper's headline DRAM property at <= 60 degC."""
        return self.uncorrectable_words == 0 and self.miscorrected_words == 0

    @property
    def residual_word_errors(self) -> int:
        return self.uncorrectable_words + self.miscorrected_words


class MemoryControlUnit:
    """One MCU: refresh period + ECC scrub + error reporting."""

    def __init__(self, index: int, slimpro: Optional[SLIMpro] = None,
                 geometry: DramGeometry = DEFAULT_GEOMETRY,
                 trefp_s: float = NOMINAL_REFRESH_S) -> None:
        if index < 0:
            raise ConfigurationError("MCU index must be non-negative")
        self.index = index
        self.slimpro = slimpro
        self.geometry = geometry
        self._trefp_s = trefp_s
        self._code = SecdedCode()

    @property
    def trefp_s(self) -> float:
        return self._trefp_s

    def set_trefp(self, trefp_s: float) -> None:
        """Program the refresh period (SLIMpro calls this)."""
        if trefp_s <= 0:
            raise ConfigurationError("refresh period must be positive")
        self._trefp_s = trefp_s

    # ------------------------------------------------------------------
    # ECC scrub
    # ------------------------------------------------------------------
    def scrub_bank(self, weak_map: WeakCellMap, temp_c: float,
                   pattern: PatternKind = PatternKind.RANDOM,
                   now_s: float = 0.0) -> ScrubResult:
        """Read back a bank through ECC after one refresh interval.

        Weak cells that fail under the programmed TREFP at ``temp_c``
        with the given stored pattern are grouped into 64-bit words by
        their (row, col // 64) position; each corrupted word is decoded
        by the real SECDED code.
        """
        stress_ones: Optional[bool]
        retention = weak_map.retention.params
        if pattern is PatternKind.ALL_ZEROS:
            stress_ones, coupling = False, 1.0
        elif pattern is PatternKind.ALL_ONES:
            stress_ones, coupling = True, 1.0
        elif pattern is PatternKind.CHECKERBOARD:
            stress_ones, coupling = None, retention.coupling_checker
        else:
            stress_ones, coupling = None, retention.coupling_random
        failing = weak_map.failing_cells(
            self._trefp_s, temp_c, stored_ones=stress_ones, coupling=coupling)
        if pattern in (PatternKind.CHECKERBOARD, PatternKind.RANDOM):
            # Non-solid patterns charge about half the weak cells; take
            # the deterministic half by column parity (checker) or a
            # seeded coin implicit in the cell's column (random-like).
            failing = [c for c in failing
                       if (c.col + (0 if pattern is PatternKind.CHECKERBOARD
                                    else c.row)) % 2 == (0 if c.is_true_cell else 1)]
        return self._decode_failures(failing, now_s)

    def _decode_failures(self, failing: List[WeakCell], now_s: float) -> ScrubResult:
        by_word: Dict[Tuple[int, int], List[int]] = defaultdict(list)
        for cell in failing:
            word_index = (cell.row, cell.col // WORD_DATA_BITS)
            by_word[word_index].append(cell.col % WORD_DATA_BITS)
        corrected = uncorrectable = miscorrected = 0
        true_data = 0  # scrub compares against the known-stored word
        for (row, word), bits in sorted(by_word.items()):
            codeword = self._code.encode(true_data)
            corrupted = self._code.flip_bits(codeword, sorted(set(bits)))
            result = self._code.decode_with_truth(corrupted, true_data)
            address = (row << 16) | word
            if result.status is DecodeStatus.CORRECTED:
                corrected += 1
                self._report(now_s, correctable=True, address=address)
            elif result.status is DecodeStatus.DETECTED_UNCORRECTABLE:
                uncorrectable += 1
                self._report(now_s, correctable=False, address=address)
            elif result.status is DecodeStatus.MISCORRECTED:
                miscorrected += 1
            else:  # CLEAN cannot happen for a non-empty flip set
                raise ConfigurationError("corrupted word decoded as clean")
        return ScrubResult(
            raw_bit_errors=len(failing),
            corrected_words=corrected,
            uncorrectable_words=uncorrectable,
            miscorrected_words=miscorrected,
            words_scanned=len(by_word),
        )

    def _report(self, now_s: float, correctable: bool, address: int) -> None:
        if self.slimpro is not None:
            self.slimpro.report_ecc(EccReport(
                time_s=now_s, source=f"mcu{self.index}",
                correctable=correctable, address=address,
            ))
