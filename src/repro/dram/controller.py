"""Memory Control Unit front-end.

Ties the DRAM substrate together the way an MCU does on the board: it
owns a programmed refresh period, scrubs banks through the SECDED code,
and forwards every corrected/detected event to SLIMpro -- the reporting
path the paper extended for its characterization framework.

The scrub pass is the simulation analogue of the DPBench read-back: given
a bank's weak-cell map and the stored pattern, it materializes the
failing bits, groups them into 72-bit codewords, runs the real decoder on
each, and reports CE/UE/miscorrection counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.dram.cells import WeakCellMap
from repro.dram.ecc import DecodeStatus, SecdedCode
from repro.dram.errors_model import PatternKind
from repro.dram.geometry import DEFAULT_GEOMETRY, DramGeometry
from repro.errors import ConfigurationError
from repro.soc.slimpro import EccReport, SLIMpro
from repro.units import NOMINAL_REFRESH_S

#: Data bits per ECC codeword (one burst of a 72-bit-wide DIMM).
WORD_DATA_BITS = 64


@dataclass(frozen=True)
class ScrubResult:
    """Outcome of one ECC scrub over a bank at a condition."""

    raw_bit_errors: int
    corrected_words: int
    uncorrectable_words: int
    miscorrected_words: int
    words_scanned: int

    @property
    def all_corrected(self) -> bool:
        """The paper's headline DRAM property at <= 60 degC."""
        return self.uncorrectable_words == 0 and self.miscorrected_words == 0

    @property
    def residual_word_errors(self) -> int:
        return self.uncorrectable_words + self.miscorrected_words


class MemoryControlUnit:
    """One MCU: refresh period + ECC scrub + error reporting."""

    def __init__(self, index: int, slimpro: Optional[SLIMpro] = None,
                 geometry: DramGeometry = DEFAULT_GEOMETRY,
                 trefp_s: float = NOMINAL_REFRESH_S) -> None:
        if index < 0:
            raise ConfigurationError("MCU index must be non-negative")
        self.index = index
        self.slimpro = slimpro
        self.geometry = geometry
        self._trefp_s = trefp_s
        self._code = SecdedCode()

    @property
    def trefp_s(self) -> float:
        return self._trefp_s

    def set_trefp(self, trefp_s: float) -> None:
        """Program the refresh period (SLIMpro calls this)."""
        if trefp_s <= 0:
            raise ConfigurationError("refresh period must be positive")
        self._trefp_s = trefp_s

    # ------------------------------------------------------------------
    # ECC scrub
    # ------------------------------------------------------------------
    def scrub_bank(self, weak_map: WeakCellMap, temp_c: float,
                   pattern: PatternKind = PatternKind.RANDOM,
                   now_s: float = 0.0) -> ScrubResult:
        """Read back a bank through ECC after one refresh interval.

        Weak cells that fail under the programmed TREFP at ``temp_c``
        with the given stored pattern are grouped into 64-bit words by
        their (row, col // 64) position; each corrupted word is decoded
        by the real SECDED code.
        """
        stress_ones: Optional[bool]
        retention = weak_map.retention.params
        if pattern is PatternKind.ALL_ZEROS:
            stress_ones, coupling = False, 1.0
        elif pattern is PatternKind.ALL_ONES:
            stress_ones, coupling = True, 1.0
        elif pattern is PatternKind.CHECKERBOARD:
            stress_ones, coupling = None, retention.coupling_checker
        else:
            stress_ones, coupling = None, retention.coupling_random
        rows, cols, is_true = weak_map.failing_arrays(
            self._trefp_s, temp_c, stored_ones=stress_ones, coupling=coupling)
        if pattern in (PatternKind.CHECKERBOARD, PatternKind.RANDOM):
            # Non-solid patterns charge about half the weak cells; take
            # the deterministic half by column parity (checker) or a
            # seeded coin implicit in the cell's column (random-like).
            shift = rows if pattern is PatternKind.RANDOM else 0
            keep = (cols + shift) % 2 == np.where(is_true, 0, 1)
            rows, cols = rows[keep], cols[keep]
        return self._decode_failures(rows, cols, now_s)

    def _decode_failures(self, rows: np.ndarray, cols: np.ndarray,
                         now_s: float) -> ScrubResult:
        """Classify every corrupted codeword of the bank in one pass.

        The stored data is all-zero and every failing bit lands in a
        word's 64 data bits, so the SECDED truth table pins the verdict
        of the common cases without running the decoder: a word with one
        distinct failing bit is always corrected, one with two is always
        a detected double-bit error. Only words with >= 3 distinct
        failing bits -- where syndrome aliasing decides between a UE and
        a silent miscorrection -- go through the real code. The counts
        are bit-identical to decoding every word individually.
        """
        raw_bit_errors = int(rows.size)
        if raw_bit_errors == 0:
            return ScrubResult(0, 0, 0, 0, 0)
        # Deduplicate (row, col) and group into (row, word) codewords;
        # np.unique sorts, matching the scrub's address-ordered readback.
        cells = np.unique(
            rows.astype(np.int64) << np.int64(32) | cols.astype(np.int64))
        cell_cols = cells & np.int64(0xFFFFFFFF)
        word_keys = ((cells >> np.int64(32)) << np.int64(32)
                     | cell_cols // WORD_DATA_BITS)
        words, counts = np.unique(word_keys, return_counts=True)
        corrected = int(np.count_nonzero(counts == 1))
        uncorrectable = int(np.count_nonzero(counts == 2))
        miscorrected = 0
        multi_status = {}
        if np.any(counts >= 3):
            true_data = 0  # scrub compares against the known-stored word
            starts = np.searchsorted(word_keys, words)
            for index in np.nonzero(counts >= 3)[0]:
                lo = starts[index]
                bits = (cell_cols[lo:lo + counts[index]]
                        % WORD_DATA_BITS).tolist()
                codeword = self._code.flip_bits(self._code.encode(true_data),
                                                sorted(bits))
                result = self._code.decode_with_truth(codeword, true_data)
                if result.status is DecodeStatus.DETECTED_UNCORRECTABLE:
                    uncorrectable += 1
                elif result.status is DecodeStatus.MISCORRECTED:
                    miscorrected += 1
                else:  # >= 3 data-bit flips can never decode clean/corrected
                    raise ConfigurationError("corrupted word decoded as clean")
                multi_status[int(words[index])] = result.status
        if self.slimpro is not None:
            self._report_words(words, counts, multi_status, now_s)
        return ScrubResult(
            raw_bit_errors=raw_bit_errors,
            corrected_words=corrected,
            uncorrectable_words=uncorrectable,
            miscorrected_words=miscorrected,
            words_scanned=int(words.size),
        )

    def _report_words(self, words: np.ndarray, counts: np.ndarray,
                      multi_status, now_s: float) -> None:
        """Forward per-word CE/UE events to SLIMpro in address order."""
        for key, count in zip(words.tolist(), counts.tolist()):
            address = ((key >> 32) << 16) | (key & 0xFFFFFFFF)
            if count == 1:
                self._report(now_s, correctable=True, address=address)
            elif count == 2:
                self._report(now_s, correctable=False, address=address)
            elif multi_status[key] is DecodeStatus.DETECTED_UNCORRECTABLE:
                self._report(now_s, correctable=False, address=address)

    def _report(self, now_s: float, correctable: bool, address: int) -> None:
        if self.slimpro is not None:
            self.slimpro.report_ecc(EccReport(
                time_s=now_s, source=f"mcu{self.index}",
                correctable=correctable, address=address,
            ))
