"""Lazily-sampled weak-cell maps.

Simulating 3.9e10 individual cells is intractable; only the weak tail
matters. A :class:`WeakCellMap` samples, once per bank, the concrete
population of cells weak enough to fail at a *profiling condition* (the
most aggressive interval/temperature the map supports) and assigns each
a reference-temperature retention time from the conditional tail law plus
an orientation (true/anti cell). Any milder query condition then filters
that fixed population -- so cell sets nest correctly across conditions,
which is what makes "unique error locations" well-defined, and the same
map answers 50 degC and 60 degC queries about the *same* silicon.

This is the SoftMC-style retention-profiling trick in simulation form.
The population is held in numpy arrays; :class:`WeakCell` objects are
materialized only for the (small) failing subsets callers ask for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.dram.geometry import BankAddress, DEFAULT_GEOMETRY, DramGeometry
from repro.dram.retention import (
    DEFAULT_RETENTION,
    RetentionModel,
    _normal_icdf_array,
)
from repro.errors import ConfigurationError
from repro.rand import SeedLike, substream

#: Fraction of weak cells exhibiting variable retention time (VRT): they
#: flip between a weak and a strong state and fail only intermittently.
VRT_FRACTION = 0.10

#: Default profiling condition: comfortably beyond the paper's most
#: aggressive study point (2.283 s at 60 degC) while keeping the sampled
#: population around a few tens of thousands of cells per bank.
DEFAULT_PROFILE_INTERVAL_S = 4.0
DEFAULT_PROFILE_TEMP_C = 62.0


@dataclass(frozen=True)
class WeakCell:
    """One weak cell inside a bank."""

    row: int
    col: int
    retention_ref_s: float   # retention time at the reference temperature
    is_true_cell: bool       # charged when storing '1'
    is_vrt: bool             # variable-retention-time cell

    def charged_by(self, stored_one: bool) -> bool:
        """Whether storing this value puts charge (= stress) on the cell."""
        return stored_one == self.is_true_cell


def sample_weak_cell_count(rng: np.random.Generator, bits: int, probability: float,
                           variability: float = 1.0) -> int:
    """Draw a weak-cell count: Poisson around ``bits * p * variability``."""
    if probability < 0 or probability > 1:
        raise ConfigurationError(f"probability {probability} outside [0, 1]")
    mean = bits * probability * variability
    return int(rng.poisson(mean))


class WeakCellMap:
    """The weak-cell population of one DRAM bank.

    Parameters
    ----------
    bank:
        Which bank this map profiles.
    geometry / retention:
        Shape of the bank and the retention statistics.
    chip_factor / bank_factor:
        Multiplicative process-variation factors for this device and
        bank (drawn by :class:`DramDevicePopulation`).
    profile_interval_s / profile_temp_c:
        The profiling condition bounding the sampled population. Queries
        beyond it raise :class:`ConfigurationError`.
    seed:
        Deterministic seed for this bank's population.
    """

    def __init__(self, bank: BankAddress,
                 geometry: DramGeometry = DEFAULT_GEOMETRY,
                 retention: Optional[RetentionModel] = None,
                 chip_factor: float = 1.0, bank_factor: float = 1.0,
                 profile_interval_s: float = DEFAULT_PROFILE_INTERVAL_S,
                 profile_temp_c: float = DEFAULT_PROFILE_TEMP_C,
                 seed: SeedLike = None) -> None:
        bank.validate(geometry)
        self.bank = bank
        self.geometry = geometry
        self.retention = retention or RetentionModel(DEFAULT_RETENTION)
        self.chip_factor = chip_factor
        self.bank_factor = bank_factor
        self.profile_interval_s = profile_interval_s
        self.profile_temp_c = profile_temp_c
        self._rng = substream(seed, f"weakcells-d{bank.device}-b{bank.bank}")
        self._population: Optional[Dict[str, np.ndarray]] = None

    # ------------------------------------------------------------------
    # Population
    # ------------------------------------------------------------------
    @property
    def profile_tail_probability(self) -> float:
        """Tail mass at the profiling condition (worst coupling)."""
        return self.retention.fail_probability(
            self.profile_interval_s, self.profile_temp_c,
            coupling=self.retention.params.coupling_random,
        )

    def population_size(self) -> int:
        """Number of weak cells sampled at the profiling condition."""
        return len(self._arrays()["rows"])

    def _arrays(self) -> Dict[str, np.ndarray]:
        if self._population is None:
            self._population = self._sample_population()
        return self._population

    def _sample_population(self) -> Dict[str, np.ndarray]:
        tail_p = self.profile_tail_probability
        count = sample_weak_cell_count(
            self._rng, self.geometry.bits_per_bank, tail_p,
            variability=self.chip_factor * self.bank_factor,
        )
        uniforms = np.clip(self._rng.random(count), 1e-12, 1.0)
        # Conditional tail law, vectorized inverse CDF.
        z = _normal_icdf_array(uniforms * tail_p) if count else np.empty(0)
        params = self.retention.params
        retention_ref = np.exp(params.ln_median_s + params.ln_sigma * z)
        return {
            "rows": self._rng.integers(self.geometry.rows_per_bank, size=count),
            "cols": self._rng.integers(self.geometry.bits_per_row, size=count),
            "retention_ref_s": retention_ref,
            "is_true": self._rng.random(count) < params.true_cell_fraction,
            "is_vrt": self._rng.random(count) < VRT_FRACTION,
        }

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _check_condition(self, interval_s: float, temp_c: float,
                         coupling: float) -> float:
        threshold = self.retention.effective_threshold_s(interval_s, temp_c, coupling)
        profile_threshold = self.retention.effective_threshold_s(
            self.profile_interval_s, self.profile_temp_c,
            self.retention.params.coupling_random,
        )
        if threshold > profile_threshold:
            raise ConfigurationError(
                f"query condition ({interval_s}s, {temp_c}C, c={coupling}) exceeds "
                f"the profiling condition of this map"
            )
        return threshold

    def _failing_mask(self, interval_s: float, temp_c: float,
                      stored_ones: Optional[bool], coupling: float) -> np.ndarray:
        threshold = self._check_condition(interval_s, temp_c, coupling)
        arrays = self._arrays()
        mask = arrays["retention_ref_s"] < threshold
        if stored_ones is not None:
            charged = arrays["is_true"] if stored_ones else ~arrays["is_true"]
            mask = mask & charged
        return mask

    def failing_count(self, interval_s: float, temp_c: float,
                      stored_ones: Optional[bool] = None,
                      coupling: float = 1.0) -> int:
        """Count of failing cells at a condition.

        ``stored_ones`` selects the data polarity (True = all ones,
        False = all zeros, None = every cell counted regardless of
        orientation -- the union over pattern polarities).
        """
        return int(self._failing_mask(interval_s, temp_c, stored_ones,
                                      coupling).sum())

    def failing_cells(self, interval_s: float, temp_c: float,
                      stored_ones: Optional[bool] = None,
                      coupling: float = 1.0) -> List[WeakCell]:
        """Concrete failing cells at a condition (materialized objects)."""
        mask = self._failing_mask(interval_s, temp_c, stored_ones, coupling)
        arrays = self._arrays()
        indices = np.nonzero(mask)[0]
        return [
            WeakCell(
                row=int(arrays["rows"][i]),
                col=int(arrays["cols"][i]),
                retention_ref_s=float(arrays["retention_ref_s"][i]),
                is_true_cell=bool(arrays["is_true"][i]),
                is_vrt=bool(arrays["is_vrt"][i]),
            )
            for i in indices
        ]

    def failing_arrays(self, interval_s: float, temp_c: float,
                       stored_ones: Optional[bool] = None,
                       coupling: float = 1.0
                       ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Failing cells at a condition, as parallel numpy arrays.

        Returns ``(rows, cols, is_true)`` for the same cells
        :meth:`failing_cells` would materialize, in the same order --
        the vectorized view hot paths (the MCU scrub) use to avoid
        constructing one :class:`WeakCell` object per failing bit.
        """
        mask = self._failing_mask(interval_s, temp_c, stored_ones, coupling)
        arrays = self._arrays()
        return (arrays["rows"][mask], arrays["cols"][mask],
                arrays["is_true"][mask])

    def unique_locations(self, interval_s: float, temp_c: float) -> int:
        """Unique error locations across the full DPBench suite.

        The union over all four pattern benchmarks: every orientation is
        stressed by some pattern, and the random pattern contributes the
        worst-case coupling -- so the union is the whole population under
        the random coupling factor. This is the Table I quantity.
        """
        return self.failing_count(
            interval_s, temp_c, stored_ones=None,
            coupling=self.retention.params.coupling_random,
        )


class DramDevicePopulation:
    """All banks of all devices on the board, with process variation.

    Chip-to-chip factors are lognormal with sigma ``chip_sigma`` (the
    paper: "large variation of the number of weak cells across the DRAM
    chips"). Bank factors have two components: a *shared* per-bank-index
    factor (sigma ``bank_sigma``) modelling systematic die-layout effects
    common to all devices of the same part number -- the component that
    survives aggregation across the 72 chips and produces Table I's
    bank-to-bank variation -- plus small per-chip-bank noise.
    """

    def __init__(self, geometry: DramGeometry = DEFAULT_GEOMETRY,
                 retention: Optional[RetentionModel] = None,
                 chip_sigma: float = 0.30, bank_sigma: float = 0.05,
                 chip_bank_sigma: float = 0.02,
                 profile_interval_s: float = DEFAULT_PROFILE_INTERVAL_S,
                 profile_temp_c: float = DEFAULT_PROFILE_TEMP_C,
                 seed: SeedLike = None) -> None:
        self.geometry = geometry
        self.retention = retention or RetentionModel(DEFAULT_RETENTION)
        self._seed = seed
        self.profile_interval_s = profile_interval_s
        self.profile_temp_c = profile_temp_c
        factor_rng = substream(seed, "dram-population-factors")
        self.chip_factors = np.exp(
            factor_rng.normal(0.0, chip_sigma, size=geometry.num_devices))
        shared = np.exp(
            factor_rng.normal(0.0, bank_sigma, size=geometry.banks_per_device))
        noise = np.exp(
            factor_rng.normal(0.0, chip_bank_sigma,
                              size=(geometry.num_devices, geometry.banks_per_device)))
        self.bank_factors = shared[np.newaxis, :] * noise
        self._maps: Dict[Tuple[int, int], WeakCellMap] = {}

    def bank_map(self, device: int, bank: int) -> WeakCellMap:
        """The (cached) weak-cell map of one bank."""
        key = (device, bank)
        if key not in self._maps:
            address = BankAddress(device, bank)
            address.validate(self.geometry)
            self._maps[key] = WeakCellMap(
                address, geometry=self.geometry, retention=self.retention,
                chip_factor=float(self.chip_factors[device]),
                bank_factor=float(self.bank_factors[device, bank]),
                profile_interval_s=self.profile_interval_s,
                profile_temp_c=self.profile_temp_c,
                seed=self._seed,
            )
        return self._maps[key]

    def device_unique_locations(self, device: int, interval_s: float,
                                temp_c: float) -> List[int]:
        """Per-bank unique error locations for one device (a Table I row)."""
        return [
            self.bank_map(device, bank).unique_locations(interval_s, temp_c)
            for bank in range(self.geometry.banks_per_device)
        ]

    def expected_unique_locations(self, interval_s: float, temp_c: float) -> float:
        """Analytic per-bank expectation at nominal variation factors."""
        p = self.retention.fail_probability(
            interval_s, temp_c, self.retention.params.coupling_random)
        return self.geometry.bits_per_bank * p
