"""Per-cell DRAM retention-time statistics.

Model structure (following the experimental findings of Liu et al. [19],
the paper's reference for data-retention behaviour):

- Cell retention times at a reference temperature follow a lognormal
  distribution; only the far-left *weak tail* matters at the refresh
  intervals studied (seconds).
- Temperature accelerates leakage with Arrhenius behaviour; the default
  activation energy of 0.64 eV halves retention roughly every 10 degC
  around 55 degC -- which is what turns the paper's 50 -> 60 degC step
  into a ~17x increase in weak-cell counts (Table I).
- Data-pattern dependence: a cell can only lose charge it stores, so a
  cell is *stressed* only when holding its charged state (true-cells
  store charge for '1', anti-cells for '0'); neighbouring bit transitions
  add coupling noise that effectively lengthens the observation threshold
  (random > checkerboard > solid patterns).

Calibration: the defaults place the weak-tail mass so that the 72-device
population shows ~200 failing locations per bank index at (2.283 s,
50 degC) and ~3500 at 60 degC under the union of data-pattern benchmarks
-- the paper's Table I, read as board-level aggregates. (The per-device
reading would put thousands of weak bits in every bank, which would
force double-bit words and contradict the paper's "all manifested errors
are corrected by ECC"; the aggregate reading keeps per-device counts
low enough for SECDED to correct everything, exactly as reported.)
See DESIGN.md section 4.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.errors import ConfigurationError
from repro.units import BOLTZMANN_EV_PER_K, celsius_to_kelvin


def _normal_cdf(z: float) -> float:
    """Standard normal CDF via erfc (accurate in the far tail)."""
    return 0.5 * math.erfc(-z / math.sqrt(2.0))


def _normal_icdf(p: float) -> float:
    """Inverse standard normal CDF (Acklam's rational approximation).

    Accurate to ~1e-9 over (0, 1); good enough for tail sampling where
    the CDF side is the precision-critical direction.
    """
    if not 0.0 < p < 1.0:
        raise ConfigurationError(f"probability {p} outside (0, 1)")
    # Coefficients for the central and tail rational approximations.
    a = (-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
         1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
         6.680131188771972e+01, -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
         -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
         3.754408661907416e+00)
    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2.0 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / \
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    if p > 1.0 - p_low:
        q = math.sqrt(-2.0 * math.log(1.0 - p))
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / \
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    q = p - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / \
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0)


_ACKLAM_A = (-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
             1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00)
_ACKLAM_B = (-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
             6.680131188771972e+01, -1.328068155288572e+01)
_ACKLAM_C = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
             -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00)
_ACKLAM_D = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
             3.754408661907416e+00)


def _acklam_tail(q: np.ndarray) -> np.ndarray:
    """Acklam tail branch as a function of ``q = sqrt(-2 ln p)``."""
    c, d = _ACKLAM_C, _ACKLAM_D
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / \
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)


def _normal_icdf_array(p: np.ndarray) -> np.ndarray:
    """Vectorized :func:`_normal_icdf` over a float64 array.

    Evaluates the same Acklam branches with the same float64 polynomial
    arithmetic as the scalar routine (differences are confined to the
    <= 1 ulp that ``np.log`` may deviate from ``math.log``), turning the
    per-cell tail sampling of a whole bank into a handful of array ops.
    """
    p = np.asarray(p, dtype=np.float64)
    if p.size and (float(p.min()) <= 0.0 or float(p.max()) >= 1.0):
        bad = p[(p <= 0.0) | (p >= 1.0)][0]
        raise ConfigurationError(f"probability {bad} outside (0, 1)")
    out = np.empty_like(p)
    p_low = 0.02425

    low = p < p_low
    if low.any():
        q = np.sqrt(-2.0 * np.log(p[low]))
        out[low] = _acklam_tail(q)
    high = p > 1.0 - p_low
    if high.any():
        q = np.sqrt(-2.0 * np.log(1.0 - p[high]))
        out[high] = -_acklam_tail(q)
    mid = ~(low | high)
    if mid.any():
        a, b = _ACKLAM_A, _ACKLAM_B
        q = p[mid] - 0.5
        r = q * q
        out[mid] = \
            (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / \
            (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0)
    return out


@dataclass(frozen=True)
class RetentionParams:
    """Parameters of the retention-time population.

    Attributes
    ----------
    ln_median_s:
        Natural log of the median cell retention time (s) at the
        reference temperature.
    ln_sigma:
        Lognormal shape parameter (sigma of ln t_ret).
    activation_ev:
        Arrhenius activation energy (eV) of the leakage mechanism.
    reference_temp_c:
        Temperature (degC) at which ``ln_median_s`` is specified.
    true_cell_fraction:
        Fraction of cells that are true-cells (charged when storing 1).
    coupling_random / coupling_checker:
        Effective threshold multipliers for random and checkerboard data
        (solid patterns define 1.0). Multiplying the observation interval
        by the coupling factor models the extra leakage induced by
        aggressor bit transitions.
    """

    ln_median_s: float = 8.944
    ln_sigma: float = 1.386
    activation_ev: float = 0.64
    reference_temp_c: float = 50.0
    true_cell_fraction: float = 0.55
    coupling_random: float = 1.21
    coupling_checker: float = 1.13

    def __post_init__(self) -> None:
        if self.ln_sigma <= 0:
            raise ConfigurationError("ln_sigma must be positive")
        if self.activation_ev <= 0:
            raise ConfigurationError("activation energy must be positive")
        if not 0.0 < self.true_cell_fraction < 1.0:
            raise ConfigurationError("true_cell_fraction must be in (0, 1)")
        if self.coupling_random < 1.0 or self.coupling_checker < 1.0:
            raise ConfigurationError("coupling factors are >= 1 by definition")


DEFAULT_RETENTION = RetentionParams()


@lru_cache(maxsize=1024)
def _cached_acceleration(params: RetentionParams, temp_c: float) -> float:
    """Memoized Arrhenius factor; see :meth:`RetentionModel.acceleration`.

    ``RetentionParams`` is frozen (hashable), and profiling sweeps ask
    for the same handful of ``(params, temp)`` pairs hundreds of
    thousands of times -- once per bank query -- so a small cache
    removes the repeated ``exp`` from the hot path.
    """
    t_ref = celsius_to_kelvin(params.reference_temp_c)
    t = celsius_to_kelvin(temp_c)
    exponent = params.activation_ev / BOLTZMANN_EV_PER_K * (1.0 / t_ref - 1.0 / t)
    return math.exp(exponent)


@lru_cache(maxsize=65536)
def _cached_fail_probability(params: RetentionParams, interval_s: float,
                             temp_c: float, coupling: float) -> float:
    """Memoized stressed-cell failure probability.

    Keyed on the full ``(params, interval, temp, coupling)`` condition;
    every bank of every device queries the same few conditions during a
    Table-I style sweep.
    """
    if interval_s <= 0:
        raise ConfigurationError("interval must be positive")
    theta = interval_s * _cached_acceleration(params, temp_c) * coupling
    z = (math.log(theta) - params.ln_median_s) / params.ln_sigma
    return _normal_cdf(z)


class RetentionModel:
    """Analytic queries over the retention population."""

    def __init__(self, params: RetentionParams = DEFAULT_RETENTION) -> None:
        self.params = params

    def acceleration(self, temp_c: float) -> float:
        """Arrhenius retention-time acceleration vs the reference temp.

        > 1 above the reference temperature (retention gets shorter);
        the effective observation threshold scales by this factor.
        """
        return _cached_acceleration(self.params, temp_c)

    def effective_threshold_s(self, interval_s: float, temp_c: float,
                              coupling: float = 1.0) -> float:
        """Reference-temperature retention threshold for failure.

        A cell fails when ``t_ret(ref) < interval * acceleration(T) *
        coupling``.
        """
        if interval_s <= 0:
            raise ConfigurationError("interval must be positive")
        return interval_s * self.acceleration(temp_c) * coupling

    def fail_probability(self, interval_s: float, temp_c: float,
                         coupling: float = 1.0) -> float:
        """P(cell retention < effective threshold) for a *stressed* cell.

        Memoized per ``(params, interval, temp, coupling)`` condition --
        the per-bank hot path of the Table I sweep.
        """
        return _cached_fail_probability(self.params, interval_s, temp_c,
                                        coupling)

    def expected_failures(self, bits: int, interval_s: float, temp_c: float,
                          coupling: float = 1.0,
                          stressed_fraction: float = 1.0) -> float:
        """Expected failing-bit count among ``bits`` cells."""
        if not 0.0 <= stressed_fraction <= 1.0:
            raise ConfigurationError("stressed_fraction must be in [0, 1]")
        return bits * stressed_fraction * self.fail_probability(
            interval_s, temp_c, coupling)

    def quantile_retention_s(self, probability: float) -> float:
        """Retention time (s, reference temp) at a tail quantile."""
        z = _normal_icdf(probability)
        return math.exp(self.params.ln_median_s + self.params.ln_sigma * z)

    def tail_sample_retention_s(self, uniform: float, tail_probability: float) -> float:
        """Sample a retention time conditional on being in the weak tail.

        Given ``uniform`` in (0, 1) and the tail mass ``tail_probability``
        (= P(fail at the profiling condition)), returns a retention time
        distributed as the conditional weak-tail law. Used by the
        weak-cell maps so that the same cell population nests correctly
        across query conditions (a cell failing at 50 degC also fails at
        60 degC).
        """
        if not 0.0 < tail_probability <= 1.0:
            raise ConfigurationError("tail_probability must be in (0, 1]")
        return self.quantile_retention_s(uniform * tail_probability)

    def interval_for_target_ber(self, target_probability: float, temp_c: float,
                                coupling: float = 1.0) -> float:
        """Longest interval keeping per-stressed-cell failure under target.

        The inverse of :meth:`fail_probability` -- used to pick safe
        refresh relaxations for a BER budget.
        """
        z = _normal_icdf(target_probability)
        theta = math.exp(self.params.ln_median_s + self.params.ln_sigma * z)
        return theta / (self.acceleration(temp_c) * coupling)
