"""Rank-level ECC layout: codewords interleaved across nine devices.

On a real ECC DIMM a 72-bit codeword is *striped* across the rank's nine
x8 devices: each device contributes one byte. Two weak bits inside one
device can therefore only collide in a codeword when they share the same
byte-column of the same row, while weak bits in *different* devices of
the rank can combine -- a geometry the per-device approximation in
:mod:`repro.dram.controller` ignores.

This module implements the faithful layout:

- :class:`RankEccLayout` maps a device's bank-local ``(row, col)`` bit to
  its rank-level codeword coordinates;
- :func:`scrub_rank` gathers every failing cell across a rank's nine
  devices, groups them into rank codewords, and decodes each through the
  real SECDED code -- the strongest form of the paper's "all manifested
  errors are corrected by ECC" check this library offers.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.dram.cells import DramDevicePopulation
from repro.dram.controller import ScrubResult
from repro.dram.ecc import DecodeStatus, SecdedCode
from repro.dram.errors_model import PatternKind
from repro.dram.geometry import DramGeometry
from repro.errors import ConfigurationError

#: Bits each x8 device contributes to one codeword.
BITS_PER_DEVICE_PER_WORD = 8


@dataclass(frozen=True)
class WordCoordinate:
    """Rank-level codeword address: (bank, row, word index within row)."""

    bank: int
    row: int
    word: int


class RankEccLayout:
    """Bit-level mapping from device cells to rank codewords."""

    def __init__(self, geometry: DramGeometry) -> None:
        if geometry.devices_per_rank * BITS_PER_DEVICE_PER_WORD != 72:
            raise ConfigurationError(
                "rank layout requires 9 x8 devices per rank (72-bit words)")
        self.geometry = geometry
        self.words_per_row = geometry.bits_per_row // BITS_PER_DEVICE_PER_WORD

    def devices_of_rank(self, dimm: int, rank: int) -> List[int]:
        """Flat device ids belonging to ``(dimm, rank)``, slot order."""
        geometry = self.geometry
        if not 0 <= dimm < geometry.num_dimms:
            raise ConfigurationError(f"dimm {dimm} out of range")
        if not 0 <= rank < geometry.ranks_per_dimm:
            raise ConfigurationError(f"rank {rank} out of range")
        base = (dimm * geometry.ranks_per_dimm + rank) * geometry.devices_per_rank
        return list(range(base, base + geometry.devices_per_rank))

    def locate(self, slot: int, bank: int, row: int,
               col: int) -> Tuple[WordCoordinate, int]:
        """Map a device bit to ``(codeword, bit position in codeword)``.

        ``slot`` is the device's position within the rank (0..8); the
        device's byte lands at bits ``[8*slot, 8*slot + 8)``.
        """
        if not 0 <= slot < self.geometry.devices_per_rank:
            raise ConfigurationError(f"slot {slot} out of range")
        if not 0 <= col < self.geometry.bits_per_row:
            raise ConfigurationError(f"col {col} out of range")
        word = col // BITS_PER_DEVICE_PER_WORD
        bit = slot * BITS_PER_DEVICE_PER_WORD + col % BITS_PER_DEVICE_PER_WORD
        return WordCoordinate(bank=bank, row=row, word=word), bit


def scrub_rank(population: DramDevicePopulation, dimm: int, rank: int,
               interval_s: float, temp_c: float,
               pattern: PatternKind = PatternKind.RANDOM,
               layout: Optional[RankEccLayout] = None) -> ScrubResult:
    """Scrub one whole rank through rank-level SECDED.

    Failing cells are collected from all nine devices at the condition,
    placed into their true codeword positions, and each corrupted word is
    decoded by the real code (against the known-stored data).
    """
    layout = layout or RankEccLayout(population.geometry)
    code = SecdedCode()
    retention = population.retention.params
    if pattern is PatternKind.ALL_ZEROS:
        stored_ones, coupling = False, 1.0
    elif pattern is PatternKind.ALL_ONES:
        stored_ones, coupling = True, 1.0
    elif pattern is PatternKind.CHECKERBOARD:
        stored_ones, coupling = None, retention.coupling_checker
    else:
        stored_ones, coupling = None, retention.coupling_random

    flips: Dict[WordCoordinate, List[int]] = defaultdict(list)
    raw_bits = 0
    for slot, device in enumerate(layout.devices_of_rank(dimm, rank)):
        for bank in range(population.geometry.banks_per_device):
            weak_map = population.bank_map(device, bank)
            cells = weak_map.failing_cells(interval_s, temp_c,
                                           stored_ones=stored_ones,
                                           coupling=coupling)
            if pattern in (PatternKind.CHECKERBOARD, PatternKind.RANDOM):
                cells = [c for c in cells
                         if (c.col + (0 if pattern is PatternKind.CHECKERBOARD
                                      else c.row)) % 2
                         == (0 if c.is_true_cell else 1)]
            raw_bits += len(cells)
            for cell in cells:
                coordinate, bit = layout.locate(slot, bank, cell.row, cell.col)
                flips[coordinate].append(bit)

    corrected = uncorrectable = miscorrected = 0
    true_data = 0
    for coordinate in sorted(flips, key=lambda c: (c.bank, c.row, c.word)):
        bits = sorted(set(flips[coordinate]))
        corrupted = code.flip_bits(code.encode(true_data), bits)
        result = code.decode_with_truth(corrupted, true_data)
        if result.status is DecodeStatus.CORRECTED:
            corrected += 1
        elif result.status is DecodeStatus.DETECTED_UNCORRECTABLE:
            uncorrectable += 1
        elif result.status is DecodeStatus.MISCORRECTED:
            miscorrected += 1
        else:
            raise ConfigurationError("corrupted word decoded as clean")
    return ScrubResult(
        raw_bit_errors=raw_bits,
        corrected_words=corrected,
        uncorrectable_words=uncorrectable,
        miscorrected_words=miscorrected,
        words_scanned=len(flips),
    )


def scrub_board(population: DramDevicePopulation, interval_s: float,
                temp_c: float,
                pattern: PatternKind = PatternKind.RANDOM) -> ScrubResult:
    """Scrub every rank on the board; returns the merged result."""
    geometry = population.geometry
    layout = RankEccLayout(geometry)
    merged = ScrubResult(0, 0, 0, 0, 0)
    for dimm in range(geometry.num_dimms):
        for rank in range(geometry.ranks_per_dimm):
            result = scrub_rank(population, dimm, rank, interval_s, temp_c,
                                pattern, layout)
            merged = ScrubResult(
                raw_bit_errors=merged.raw_bit_errors + result.raw_bit_errors,
                corrected_words=merged.corrected_words + result.corrected_words,
                uncorrectable_words=(merged.uncorrectable_words
                                     + result.uncorrectable_words),
                miscorrected_words=(merged.miscorrected_words
                                    + result.miscorrected_words),
                words_scanned=merged.words_scanned + result.words_scanned,
            )
    return merged
