"""Command-line entry point: regenerate the paper's experiments.

Usage::

    python -m repro list
    python -m repro run fig4 [--seed N] [--fast] [--jobs N] [--faults N]
                             [--real-faults N] [--unit-timeout S]
                             [--max-retries N]
    python -m repro run all  [--seed N] [--fast] [--jobs N]
    python -m repro run table1 [--thermal-faults N]
    python -m repro pipeline [--jobs N] [--faults N] [--real-faults N]
                             [--resume DIR]

``--fast`` trims repetitions/GA budgets for a quick smoke pass;
``--jobs`` fans the shardable experiments (fig4/fig6/fig7/table1) out
across worker processes -- results are bit-identical at any worker
count. ``--faults SEED`` injects a deterministic *simulated*
worker-failure schedule into the shardable experiments and
``--real-faults SEED`` a schedule of *real* process-level faults
(worker ``os._exit``, deadline hangs) the supervised engine recovers
from -- either way, results are unchanged. ``--unit-timeout`` and
``--max-retries`` tune the supervisor's per-unit deadline and retry
budget (see :mod:`repro.core.supervisor`). ``--thermal-faults SEED``
injects a deterministic *thermal rig* fault schedule (stuck/drifting
thermocouples, SPD timeouts, relay/heater failures, ambient steps) into
the DRAM experiments' regulated measurement chain: recoverable faults
are detected, re-regulated and leave the rows bit-identical to the
clean run; unrecoverable ones surface as typed zone quarantines. The
default settings match the benches.

``pipeline`` exercises the full execution -> transport -> cloud result
pipeline under injected faults and checkpoint/resume; an interrupted
study exits with code 3 and resumes from ``--resume DIR``, skipping
both completed and quarantined shards.

Experiment ids come from :data:`repro.experiments.REGISTRY`; the lambdas
below only adapt per-experiment budget knobs to the shared flags.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict

from repro.rand import DEFAULT_SEED


def _experiments() -> Dict[str, Callable]:
    from repro.experiments import REGISTRY

    def plain(name):
        return lambda seed, fast, jobs, faults, sup, thermal: \
            REGISTRY[name](seed=seed)

    adapters = {
        "fig4": lambda seed, fast, jobs, faults, sup, thermal:
            REGISTRY["fig4"](
                seed=seed, repetitions=3 if fast else 10, jobs=jobs,
                faults=faults, **sup),
        "fig5": lambda seed, fast, jobs, faults, sup, thermal:
            REGISTRY["fig5"](seed=seed, repetitions=3 if fast else 10),
        "fig6": lambda seed, fast, jobs, faults, sup, thermal:
            REGISTRY["fig6"](
                seed=seed, repetitions=3 if fast else 10,
                generations=8 if fast else 25,
                population=16 if fast else 32,
                jobs=jobs, faults=faults, **sup),
        "fig7": lambda seed, fast, jobs, faults, sup, thermal:
            REGISTRY["fig7"](
                seed=seed, repetitions=3 if fast else 10,
                generations=8 if fast else 25,
                population=16 if fast else 32,
                jobs=jobs, faults=faults, **sup),
        "table1": lambda seed, fast, jobs, faults, sup, thermal:
            REGISTRY["table1"](
                seed=seed, regulate=not fast,
                sample_devices=24 if fast else 72, jobs=jobs,
                faults=faults, thermal_faults=thermal, **sup),
        "fig8a": lambda seed, fast, jobs, faults, sup, thermal:
            REGISTRY["fig8a"](seed=seed, thermal_faults=thermal),
        "fig9": lambda seed, fast, jobs, faults, sup, thermal:
            REGISTRY["fig9"](seed=seed, repetitions=3 if fast else 10),
        "multiprocess": lambda seed, fast, jobs, faults, sup, thermal:
            REGISTRY["multiprocess"](seed=seed,
                                     repetitions=3 if fast else 5),
    }
    return {name: adapters.get(name, plain(name)) for name in REGISTRY}


def _supervision_kwargs(args) -> Dict[str, object]:
    """The supervised-execution knobs shared by ``run`` and ``pipeline``."""
    return {
        "real_faults": args.real_faults,
        "unit_timeout": args.unit_timeout,
        "max_retries": args.max_retries,
    }


def _add_supervision_flags(parser) -> None:
    from repro.core.supervisor import DEFAULT_MAX_RETRIES

    parser.add_argument("--real-faults", type=int, default=None,
                        metavar="SEED",
                        help="inject a deterministic schedule of REAL "
                        "process-level faults (worker os._exit, deadline "
                        "hangs) seeded by SEED; the supervised engine "
                        "recovers and results are unchanged")
    parser.add_argument("--unit-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-unit supervision deadline: a work unit "
                        "still running after SECONDS is treated as hung, "
                        "its pool is rebuilt and the unit re-issued "
                        "(default: no deadline)")
    parser.add_argument("--max-retries", type=int,
                        default=DEFAULT_MAX_RETRIES, metavar="N",
                        help="per-unit budget of attributed failures "
                        "(crash/hang/poison) before the unit is "
                        "quarantined as a typed UnitFailure "
                        f"(default: {DEFAULT_MAX_RETRIES})")


def _run_pipeline(args) -> int:
    from repro.errors import CampaignInterrupted
    from repro.experiments.pipeline import run_pipeline

    try:
        result = run_pipeline(
            seed=args.seed,
            benchmarks=2 if args.fast else 4,
            repetitions=2 if args.fast else 3,
            jobs=args.jobs,
            transport=args.transport,
            faults=args.faults,
            resume_dir=args.resume,
            out_csv=args.out,
            **_supervision_kwargs(args),
        )
    except CampaignInterrupted as exc:
        print(f"pipeline interrupted: {exc}", file=sys.stderr)
        if args.resume:
            print(f"rerun with --resume {args.resume} to finish the "
                  "remaining shards", file=sys.stderr)
        else:
            print("rerun with --resume DIR to make interruptions "
                  "recoverable", file=sys.stderr)
        return 3
    print(result.format())
    if args.out:
        print(f"cloud-side rows written to {args.out}")
    return 0 if result.exactly_once else 1


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the DSN'18 guardbands paper's experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiment ids")
    runner = sub.add_parser("run", help="run one experiment (or 'all')")
    runner.add_argument("experiment", help="experiment id or 'all'")
    runner.add_argument("--seed", type=int, default=DEFAULT_SEED)
    runner.add_argument("--fast", action="store_true",
                        help="reduced budgets for a quick smoke pass")
    runner.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the shardable "
                        "experiments (results identical at any count)")
    runner.add_argument("--faults", type=int, default=None, metavar="SEED",
                        help="inject a deterministic worker-failure "
                        "schedule seeded by SEED into the shardable "
                        "experiments (results are unchanged)")
    runner.add_argument("--thermal-faults", type=int, default=None,
                        metavar="SEED",
                        help="inject a deterministic thermal rig fault "
                        "schedule seeded by SEED into the regulated DRAM "
                        "experiments (table1, fig8a): recoverable faults "
                        "are re-regulated and results stay unchanged; "
                        "unrecoverable ones quarantine the affected "
                        "zones as typed records")
    _add_supervision_flags(runner)
    pipe = sub.add_parser(
        "pipeline", help="run the execution -> transport -> cloud result "
        "pipeline, optionally under injected faults and checkpoint/resume")
    pipe.add_argument("--seed", type=int, default=DEFAULT_SEED)
    pipe.add_argument("--fast", action="store_true",
                      help="smaller campaign set for a quick pass")
    pipe.add_argument("--jobs", type=int, default=1,
                      help="worker processes for campaign shards")
    pipe.add_argument("--transport", choices=("network", "serial"),
                      default="network", help="lossy link to upload through")
    pipe.add_argument("--faults", type=int, default=None, metavar="SEED",
                      help="inject a deterministic fault schedule (worker "
                      "kills, spurious escalations, transport bursts, "
                      "study interruption) seeded by SEED")
    _add_supervision_flags(pipe)
    pipe.add_argument("--resume", default=None, metavar="DIR",
                      help="checkpoint directory: completed and "
                      "quarantined campaign shards persist here and are "
                      "not re-executed on rerun")
    pipe.add_argument("--out", default=None, metavar="CSV",
                      help="write the cloud-side result rows to this CSV")
    reporter = sub.add_parser(
        "report", help="run every experiment and render the full "
        "paper-vs-measured reproduction report")
    reporter.add_argument("--seed", type=int, default=DEFAULT_SEED)
    reporter.add_argument("--fast", action="store_true")
    args = parser.parse_args(argv)

    experiments = _experiments()
    if args.command == "list":
        for name in experiments:
            print(name)
        return 0
    if args.command == "report":
        from repro.analysis.reporting import build_report
        report = build_report(seed=args.seed, fast=args.fast)
        print(report.render())
        return 0 if report.all_passed else 1
    if args.jobs < 1:
        print("--jobs must be >= 1", file=sys.stderr)
        return 2
    if args.max_retries < 0:
        print("--max-retries must be >= 0", file=sys.stderr)
        return 2
    if args.unit_timeout is not None and args.unit_timeout <= 0:
        print("--unit-timeout must be positive", file=sys.stderr)
        return 2
    if args.command == "pipeline":
        return _run_pipeline(args)

    targets = list(experiments) if args.experiment == "all" \
        else [args.experiment]
    unknown = [t for t in targets if t not in experiments]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(experiments)}", file=sys.stderr)
        return 2
    for name in targets:
        start = time.perf_counter()
        result = experiments[name](args.seed, args.fast, args.jobs,
                                   args.faults, _supervision_kwargs(args),
                                   getattr(args, "thermal_faults", None))
        elapsed = time.perf_counter() - start
        print("=" * 72)
        print(result.format())
        print(f"[{name}: {elapsed:.1f}s]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
