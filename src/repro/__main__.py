"""Command-line entry point: regenerate the paper's experiments.

Usage::

    python -m repro list
    python -m repro run fig4 [--seed N] [--fast] [--jobs N]
    python -m repro run all  [--seed N] [--fast] [--jobs N]

``--fast`` trims repetitions/GA budgets for a quick smoke pass;
``--jobs`` fans the shardable experiments (fig4/fig6/fig7/table1) out
across worker processes -- results are bit-identical at any worker
count. The default settings match the benches.

Experiment ids come from :data:`repro.experiments.REGISTRY`; the lambdas
below only adapt per-experiment budget knobs to the shared flags.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict

from repro.rand import DEFAULT_SEED


def _experiments() -> Dict[str, Callable]:
    from repro.experiments import REGISTRY

    def plain(name):
        return lambda seed, fast, jobs: REGISTRY[name](seed=seed)

    adapters = {
        "fig4": lambda seed, fast, jobs: REGISTRY["fig4"](
            seed=seed, repetitions=3 if fast else 10, jobs=jobs),
        "fig5": lambda seed, fast, jobs: REGISTRY["fig5"](
            seed=seed, repetitions=3 if fast else 10),
        "fig6": lambda seed, fast, jobs: REGISTRY["fig6"](
            seed=seed, repetitions=3 if fast else 10,
            generations=8 if fast else 25, population=16 if fast else 32,
            jobs=jobs),
        "fig7": lambda seed, fast, jobs: REGISTRY["fig7"](
            seed=seed, repetitions=3 if fast else 10,
            generations=8 if fast else 25, population=16 if fast else 32,
            jobs=jobs),
        "table1": lambda seed, fast, jobs: REGISTRY["table1"](
            seed=seed, regulate=not fast,
            sample_devices=24 if fast else 72, jobs=jobs),
        "fig9": lambda seed, fast, jobs: REGISTRY["fig9"](
            seed=seed, repetitions=3 if fast else 10),
        "multiprocess": lambda seed, fast, jobs: REGISTRY["multiprocess"](
            seed=seed, repetitions=3 if fast else 5),
    }
    return {name: adapters.get(name, plain(name)) for name in REGISTRY}


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the DSN'18 guardbands paper's experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiment ids")
    runner = sub.add_parser("run", help="run one experiment (or 'all')")
    runner.add_argument("experiment", help="experiment id or 'all'")
    runner.add_argument("--seed", type=int, default=DEFAULT_SEED)
    runner.add_argument("--fast", action="store_true",
                        help="reduced budgets for a quick smoke pass")
    runner.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the shardable "
                        "experiments (results identical at any count)")
    reporter = sub.add_parser(
        "report", help="run every experiment and render the full "
        "paper-vs-measured reproduction report")
    reporter.add_argument("--seed", type=int, default=DEFAULT_SEED)
    reporter.add_argument("--fast", action="store_true")
    args = parser.parse_args(argv)

    experiments = _experiments()
    if args.command == "list":
        for name in experiments:
            print(name)
        return 0
    if args.command == "report":
        from repro.analysis.reporting import build_report
        report = build_report(seed=args.seed, fast=args.fast)
        print(report.render())
        return 0 if report.all_passed else 1

    if args.jobs < 1:
        print("--jobs must be >= 1", file=sys.stderr)
        return 2
    targets = list(experiments) if args.experiment == "all" \
        else [args.experiment]
    unknown = [t for t in targets if t not in experiments]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(experiments)}", file=sys.stderr)
        return 2
    for name in targets:
        start = time.perf_counter()
        result = experiments[name](args.seed, args.fast, args.jobs)
        elapsed = time.perf_counter() - start
        print("=" * 72)
        print(result.format())
        print(f"[{name}: {elapsed:.1f}s]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
