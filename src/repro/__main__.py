"""Command-line entry point: regenerate the paper's experiments.

Usage::

    python -m repro list
    python -m repro run fig4 [--seed N] [--fast]
    python -m repro run all  [--seed N] [--fast]

``--fast`` trims repetitions/GA budgets for a quick smoke pass; the
default settings match the benches.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict

from repro.rand import DEFAULT_SEED


def _experiments() -> Dict[str, Callable]:
    from repro.experiments import (
        run_figure4, run_figure5, run_figure6, run_figure7,
        run_figure8a, run_figure8b, run_figure9,
        run_stencil_study, run_table1,
    )
    return {
        "fig4": lambda seed, fast: run_figure4(
            seed=seed, repetitions=3 if fast else 10),
        "fig5": lambda seed, fast: run_figure5(
            seed=seed, repetitions=3 if fast else 10),
        "fig6": lambda seed, fast: run_figure6(
            seed=seed, repetitions=3 if fast else 10,
            generations=8 if fast else 25, population=16 if fast else 32),
        "fig7": lambda seed, fast: run_figure7(
            seed=seed, repetitions=3 if fast else 10,
            generations=8 if fast else 25, population=16 if fast else 32),
        "table1": lambda seed, fast: run_table1(
            seed=seed, regulate=not fast,
            sample_devices=24 if fast else 72),
        "fig8a": lambda seed, fast: run_figure8a(seed=seed),
        "fig8b": lambda seed, fast: run_figure8b(seed=seed),
        "fig9": lambda seed, fast: run_figure9(
            seed=seed, repetitions=3 if fast else 10),
        "stencil": lambda seed, fast: run_stencil_study(seed=seed),
        "multiprocess": lambda seed, fast: _run_multiprocess(seed, fast),
    }


def _run_multiprocess(seed, fast):
    from repro.experiments.multiprocess_vmin import run_multiprocess_study
    return run_multiprocess_study(seed=seed, repetitions=3 if fast else 5)


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the DSN'18 guardbands paper's experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiment ids")
    runner = sub.add_parser("run", help="run one experiment (or 'all')")
    runner.add_argument("experiment", help="experiment id or 'all'")
    runner.add_argument("--seed", type=int, default=DEFAULT_SEED)
    runner.add_argument("--fast", action="store_true",
                        help="reduced budgets for a quick smoke pass")
    reporter = sub.add_parser(
        "report", help="run every experiment and render the full "
        "paper-vs-measured reproduction report")
    reporter.add_argument("--seed", type=int, default=DEFAULT_SEED)
    reporter.add_argument("--fast", action="store_true")
    args = parser.parse_args(argv)

    experiments = _experiments()
    if args.command == "list":
        for name in experiments:
            print(name)
        return 0
    if args.command == "report":
        from repro.analysis.reporting import build_report
        report = build_report(seed=args.seed, fast=args.fast)
        print(report.render())
        return 0 if report.all_passed else 1

    targets = list(experiments) if args.experiment == "all" \
        else [args.experiment]
    unknown = [t for t in targets if t not in experiments]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(experiments)}", file=sys.stderr)
        return 2
    for name in targets:
        start = time.perf_counter()
        result = experiments[name](args.seed, args.fast)
        elapsed = time.perf_counter() - start
        print("=" * 72)
        print(result.format())
        print(f"[{name}: {elapsed:.1f}s]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
