"""Mini ARMv8-like instruction set with activity signatures.

The dI/dt-virus generator (Section III.C) evolves *loops of instructions*
whose execution makes the CPU's supply current swing between high and low
power. What matters for that search is not architectural semantics but
each instruction class's *activity signature*: how much current it draws,
how long it occupies the pipeline, and which functional unit it lights
up. This module defines those signatures for a representative subset of
the ARMv8 ISA as implemented by the X-Gene2.

Relative current weights are loosely modelled on published per-class
energy characterizations of ARM cores: wide SIMD/FP multiplies draw the
most, dependent integer chains and NOPs the least, and memory operations
sit in between (more when they miss).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Tuple


class InstrClass(enum.Enum):
    """Functional grouping of instructions for the activity model."""

    NOP = "nop"
    INT_ALU = "int_alu"
    INT_MUL = "int_mul"
    INT_DIV = "int_div"
    FP_ADD = "fp_add"
    FP_MUL = "fp_mul"
    FP_FMA = "fp_fma"
    SIMD = "simd"
    LOAD_L1 = "load_l1"
    LOAD_L2 = "load_l2"
    LOAD_DRAM = "load_dram"
    STORE = "store"
    BRANCH = "branch"
    SERIALIZE = "serialize"  # barriers / dependent chains that stall issue

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class InstructionSpec:
    """Activity signature of one instruction class.

    Attributes
    ----------
    klass:
        The instruction class.
    current:
        Relative supply-current draw while the instruction is in flight,
        normalized so the hungriest class (SIMD FMA bursts) is 1.0 and an
        idle/NOP cycle is near the static floor.
    cycles:
        Average occupancy in core cycles (issue-to-retire contribution
        under steady state for a loop of this class).
    uses_fp:
        Whether the FP/SIMD unit is exercised (for component viruses).
    touches_memory:
        Whether the instruction generates a cache/DRAM access.
    ipc_weight:
        Contribution to the throughput estimate: instructions of this
        class achieve roughly ``ipc_weight`` instructions per cycle when
        executed back-to-back on the X-Gene2's 4-wide core.
    """

    klass: InstrClass
    current: float
    cycles: float
    uses_fp: bool
    touches_memory: bool
    ipc_weight: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.current <= 1.0:
            raise ValueError(f"current must be in [0,1], got {self.current}")
        if self.cycles <= 0:
            raise ValueError("cycles must be positive")


#: Signature table. ``current`` calibrated so a pure high-power loop
#: (SIMD/FP_FMA) versus a pure low-power loop (NOP/SERIALIZE) yields a
#: normalized current swing of ~0.9, the headroom the GA exploits.
INSTRUCTION_SPECS: Dict[InstrClass, InstructionSpec] = {
    InstrClass.NOP: InstructionSpec(InstrClass.NOP, 0.08, 1.0, False, False, 4.0),
    InstrClass.INT_ALU: InstructionSpec(InstrClass.INT_ALU, 0.30, 1.0, False, False, 3.0),
    InstrClass.INT_MUL: InstructionSpec(InstrClass.INT_MUL, 0.45, 3.0, False, False, 1.0),
    InstrClass.INT_DIV: InstructionSpec(InstrClass.INT_DIV, 0.22, 12.0, False, False, 0.08),
    InstrClass.FP_ADD: InstructionSpec(InstrClass.FP_ADD, 0.55, 3.0, True, False, 2.0),
    InstrClass.FP_MUL: InstructionSpec(InstrClass.FP_MUL, 0.70, 4.0, True, False, 2.0),
    InstrClass.FP_FMA: InstructionSpec(InstrClass.FP_FMA, 0.88, 4.0, True, False, 2.0),
    InstrClass.SIMD: InstructionSpec(InstrClass.SIMD, 1.00, 4.0, True, False, 2.0),
    InstrClass.LOAD_L1: InstructionSpec(InstrClass.LOAD_L1, 0.40, 2.0, False, True, 2.0),
    InstrClass.LOAD_L2: InstructionSpec(InstrClass.LOAD_L2, 0.48, 8.0, False, True, 0.5),
    InstrClass.LOAD_DRAM: InstructionSpec(InstrClass.LOAD_DRAM, 0.35, 90.0, False, True, 0.05),
    InstrClass.STORE: InstructionSpec(InstrClass.STORE, 0.42, 2.0, False, True, 2.0),
    InstrClass.BRANCH: InstructionSpec(InstrClass.BRANCH, 0.25, 1.0, False, False, 2.0),
    InstrClass.SERIALIZE: InstructionSpec(InstrClass.SERIALIZE, 0.10, 6.0, False, False, 0.15),
}

#: Classes available to the genetic virus search (its genome alphabet).
GA_ALPHABET: Tuple[InstrClass, ...] = tuple(INSTRUCTION_SPECS)

#: The lowest/highest steady-state currents achievable with single-class
#: loops -- the theoretical swing bounds for any instruction sequence.
MIN_CLASS_CURRENT = min(spec.current for spec in INSTRUCTION_SPECS.values())
MAX_CLASS_CURRENT = max(spec.current for spec in INSTRUCTION_SPECS.values())


def spec_of(klass: InstrClass) -> InstructionSpec:
    """Look up the signature of an instruction class."""
    return INSTRUCTION_SPECS[klass]
