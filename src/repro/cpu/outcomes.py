"""Run-outcome taxonomy used across the whole library.

The paper's characterization framework classifies every run into one of
these effects (Section III): correct completion, errors corrected by ECC
(CE), detected-but-uncorrectable errors (UE), silent data corruption
(SDC, caught only by comparing against a golden reference), and system
crashes or hangs (caught by the watchdog / reset switch).
"""

from __future__ import annotations

import enum


class RunOutcome(enum.Enum):
    """Classification of one characterization run."""

    CORRECT = "correct"
    CORRECTED_ERROR = "ce"
    UNCORRECTED_ERROR = "ue"
    SDC = "sdc"
    CRASH = "crash"
    HANG = "hang"

    @property
    def is_failure(self) -> bool:
        """True for any outcome other than fully correct execution."""
        return self is not RunOutcome.CORRECT

    @property
    def is_safe(self) -> bool:
        """True when the system kept running and data stayed intact.

        A corrected error is 'safe' in the paper's sense -- ECC hid it
        from software -- but it is still an early-warning signal that the
        Vmin search treats as proximity to the cliff.
        """
        return self in (RunOutcome.CORRECT, RunOutcome.CORRECTED_ERROR)

    @property
    def needs_reset(self) -> bool:
        """True when the harness must power-cycle the board to recover."""
        return self in (RunOutcome.CRASH, RunOutcome.HANG)

    def __str__(self) -> str:
        return self.value
