"""Execution model: instruction loops -> current waveforms + counters.

This is the bridge between code (an :class:`InstructionLoop` or a named
workload's activity signature) and the electrical quantities the PDN and
EM models consume. It produces:

- a per-cycle relative supply-current waveform for a window of steady-
  state execution (the input to droop/EM analysis), and
- performance counters (IPC, FP ratio, memory intensity, ...) that feed
  the Vmin predictor of Section IV.D.

The model is deliberately behavioural: each instruction class occupies
the pipeline for its ``cycles`` and contributes its ``current`` during
that occupancy, with a one-pole low-pass smoothing that stands in for
pipeline overlap and the package's local decoupling.

Waveform synthesis is fully vectorized: one loop traversal is assembled
from precomputed per-class (occupancy, level) signatures with
``np.repeat`` and tiled across the window, and the smoothing filter runs
as a blocked parallel scan. :meth:`ExecutionModel.waveform_block` stacks
the waveforms of a whole batch of loops -- the GA's batched fitness path
-- with every row bit-identical to the serial :meth:`profile` output.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Sequence

import numpy as np

from repro.cpu.isa import (
    INSTRUCTION_SPECS,
    MAX_CLASS_CURRENT,
    MIN_CLASS_CURRENT,
    spec_of,
)
from repro.cpu.kernels import InstructionLoop
from repro.errors import ConfigurationError

#: Static (clock tree + leakage) floor of the relative current waveform.
STATIC_CURRENT = 0.05

#: Smoothing constant (cycles) standing in for pipeline overlap and
#: on-die decoupling; chosen well below the PDN resonance period so the
#: resonant component of the waveform survives.
SMOOTHING_CYCLES = 4.0

#: Per-class synthesis signatures, precomputed once: pipeline occupancy
#: in whole cycles and the waveform level held during that occupancy.
_CLASS_INDEX = {klass: i for i, klass in enumerate(INSTRUCTION_SPECS)}
_CLASS_OCCUPANCY = np.array(
    [max(1, round(spec.cycles)) for spec in INSTRUCTION_SPECS.values()],
    dtype=np.intp)
_CLASS_LEVEL = np.array(
    [STATIC_CURRENT + (1.0 - STATIC_CURRENT) * spec.current
     for spec in INSTRUCTION_SPECS.values()])

#: Block size of the low-pass parallel scan. The per-row kernel shape is
#: fixed by this constant (never by the batch size), so a waveform's
#: filtered samples are bit-identical whether it is smoothed alone or as
#: one row of a batch.
_SCAN_CHUNK = 128


@dataclass(frozen=True)
class PerfCounters:
    """Performance-counter summary of a window of execution.

    These are the features of the workload-dependent Vmin predictor
    (paper Section IV.D / reference [11]).
    """

    ipc: float
    fp_ratio: float
    mem_ratio: float
    branch_ratio: float
    l2_miss_ratio: float
    mean_current: float
    current_swing: float

    def as_features(self) -> np.ndarray:
        """Feature vector (with intercept) for the linear predictor."""
        return np.array([
            1.0, self.ipc, self.fp_ratio, self.mem_ratio,
            self.branch_ratio, self.l2_miss_ratio,
            self.mean_current, self.current_swing,
        ])


@dataclass(frozen=True)
class ExecutionProfile:
    """Result of simulating a window of loop execution."""

    waveform: np.ndarray  # per-cycle relative current, values in [0, 1]
    counters: PerfCounters
    cycles_per_iteration: float

    @property
    def peak_to_trough(self) -> float:
        """Raw current swing of the waveform (max - min)."""
        return float(self.waveform.max() - self.waveform.min())


class ExecutionModel:
    """Simulates steady-state execution of an instruction loop.

    Parameters
    ----------
    freq_ghz:
        Core clock; only used to translate cycles to wall time for
        spectral analysis (done by the PDN layer).
    window_cycles:
        Length of the simulated steady-state window. Must cover several
        PDN resonance periods for the spectral estimate to be stable;
        the default covers ~20 periods of a 50 MHz resonance at 2.4 GHz.
    """

    def __init__(self, freq_ghz: float = 2.4, window_cycles: int = 1024) -> None:
        if freq_ghz <= 0:
            raise ConfigurationError("freq_ghz must be positive")
        if window_cycles < 64:
            raise ConfigurationError("window_cycles must be at least 64")
        self.freq_ghz = freq_ghz
        self.window_cycles = window_cycles

    def raw_waveform(self, loop: InstructionLoop) -> np.ndarray:
        """Unsmoothed per-cycle current over one window (values [0,1])."""
        idx = np.fromiter((_CLASS_INDEX[k] for k in loop.body),
                          dtype=np.intp, count=len(loop))
        one_pass = np.repeat(_CLASS_LEVEL[idx], _CLASS_OCCUPANCY[idx])
        repeats = -(-self.window_cycles // len(one_pass))  # ceil division
        return np.tile(one_pass, repeats)[: self.window_cycles]

    def smoothed_waveform(self, loop: InstructionLoop) -> np.ndarray:
        """The filtered per-cycle waveform (the :meth:`profile` waveform
        without the counter computation -- the fitness hot path)."""
        return _one_pole_lowpass(self.raw_waveform(loop), SMOOTHING_CYCLES)

    def waveform_block(self, loops: Sequence[InstructionLoop]) -> np.ndarray:
        """Stacked smoothed waveforms of ``loops``, shape ``(N, window)``.

        Row ``i`` is bit-identical to ``profile(loops[i]).waveform``:
        synthesis and smoothing run per row with batch-size-independent
        kernels, so batched and serial fitness evaluations agree exactly
        (the property ``tests/test_em_batch.py`` asserts).
        """
        if not loops:
            return np.empty((0, self.window_cycles))
        return np.stack([self.smoothed_waveform(loop) for loop in loops])

    def profile(self, loop: InstructionLoop) -> ExecutionProfile:
        """Simulate ``loop`` and return waveform + counters."""
        waveform = self.smoothed_waveform(loop)

        total_instr = len(loop)
        total_cycles = loop.total_cycles
        fp = sum(1 for k in loop if spec_of(k).uses_fp)
        mem = sum(1 for k in loop if spec_of(k).touches_memory)
        branch = sum(1 for k in loop if k.value == "branch")
        l2_miss = sum(1 for k in loop if k.value in ("load_l2", "load_dram"))
        # Effective IPC: harmonic blend of per-class throughputs.
        inv_ipc = sum(1.0 / spec_of(k).ipc_weight for k in loop) / total_instr
        counters = PerfCounters(
            ipc=min(4.0, 1.0 / inv_ipc),
            fp_ratio=fp / total_instr,
            mem_ratio=mem / total_instr,
            branch_ratio=branch / total_instr,
            l2_miss_ratio=l2_miss / total_instr,
            mean_current=float(waveform.mean()),
            current_swing=self.normalized_swing(waveform),
        )
        return ExecutionProfile(
            waveform=waveform,
            counters=counters,
            cycles_per_iteration=total_cycles,
        )

    @staticmethod
    def normalized_swing(waveform: np.ndarray) -> float:
        """Peak-to-trough current swing normalized to the ISA's headroom.

        1.0 means the waveform spans the full range between the
        lowest-power and highest-power instruction classes -- the
        theoretical maximum any loop can achieve.
        """
        headroom = (MAX_CLASS_CURRENT - MIN_CLASS_CURRENT) * (1.0 - STATIC_CURRENT)
        swing = float(waveform.max() - waveform.min())
        return min(1.0, swing / headroom)


@lru_cache(maxsize=8)
def _scan_kernel(tau_cycles: float, chunk: int):
    """Precomputed blocked-scan operators for one smoothing constant.

    ``toeplitz[i, k] = beta**(i-k)`` (lower-triangular) turns the intra-
    chunk recurrence into one matmul; ``powers[i] = beta**(i+1)`` carries
    the pre-chunk filter state across the chunk.
    """
    alpha = 1.0 / (1.0 + tau_cycles)
    beta = 1.0 - alpha
    steps = np.arange(chunk)
    lags = steps[:, None] - steps[None, :]
    toeplitz = np.where(lags >= 0, beta ** np.abs(lags), 0.0)
    powers = beta ** np.arange(1, chunk + 1)
    toeplitz.setflags(write=False)
    powers.setflags(write=False)
    return alpha, toeplitz, powers


def _one_pole_lowpass(signal: np.ndarray, tau_cycles: float) -> np.ndarray:
    """First-order IIR low-pass as a blocked parallel scan.

    Computes ``y[i] = beta * y[i-1] + alpha * x[i]`` (primed with
    ``y[-1] = x[0]``) without a per-sample Python loop: each chunk's
    response to its own input is one matmul against a precomputed
    lower-triangular Toeplitz operator, and the carried filter state is
    a short scalar recurrence over chunk boundaries.
    """
    x = np.asarray(signal, dtype=float)
    n = x.shape[-1]
    alpha, toeplitz, powers = _scan_kernel(tau_cycles, _SCAN_CHUNK)
    pad = (-n) % _SCAN_CHUNK
    padded = np.concatenate([x, np.zeros(pad)]) if pad else x
    chunks = padded.reshape(-1, _SCAN_CHUNK)
    local = alpha * (chunks @ toeplitz.T)
    # Carry the filter state across chunks: carry into chunk c+1 is the
    # last sample of chunk c, itself local response + decayed carry.
    decay = powers[-1]
    carries = np.empty(len(chunks))
    carry = float(x[0])
    for c in range(len(chunks)):
        carries[c] = carry
        carry = local[c, -1] + decay * carry
    out = local + powers * carries[:, None]
    # The filter output is a convex combination of input samples, so it
    # can never legitimately leave the input's range; clamp the ~1-ulp
    # excursions the Toeplitz matmul's rounding can introduce.
    return np.clip(out.reshape(-1)[:n], x.min(), x.max())
