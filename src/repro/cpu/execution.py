"""Execution model: instruction loops -> current waveforms + counters.

This is the bridge between code (an :class:`InstructionLoop` or a named
workload's activity signature) and the electrical quantities the PDN and
EM models consume. It produces:

- a per-cycle relative supply-current waveform for a window of steady-
  state execution (the input to droop/EM analysis), and
- performance counters (IPC, FP ratio, memory intensity, ...) that feed
  the Vmin predictor of Section IV.D.

The model is deliberately behavioural: each instruction class occupies
the pipeline for its ``cycles`` and contributes its ``current`` during
that occupancy, with a one-pole low-pass smoothing that stands in for
pipeline overlap and the package's local decoupling.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.cpu.isa import MAX_CLASS_CURRENT, MIN_CLASS_CURRENT, spec_of
from repro.cpu.kernels import InstructionLoop
from repro.errors import ConfigurationError

#: Static (clock tree + leakage) floor of the relative current waveform.
STATIC_CURRENT = 0.05

#: Smoothing constant (cycles) standing in for pipeline overlap and
#: on-die decoupling; chosen well below the PDN resonance period so the
#: resonant component of the waveform survives.
SMOOTHING_CYCLES = 4.0


@dataclass(frozen=True)
class PerfCounters:
    """Performance-counter summary of a window of execution.

    These are the features of the workload-dependent Vmin predictor
    (paper Section IV.D / reference [11]).
    """

    ipc: float
    fp_ratio: float
    mem_ratio: float
    branch_ratio: float
    l2_miss_ratio: float
    mean_current: float
    current_swing: float

    def as_features(self) -> np.ndarray:
        """Feature vector (with intercept) for the linear predictor."""
        return np.array([
            1.0, self.ipc, self.fp_ratio, self.mem_ratio,
            self.branch_ratio, self.l2_miss_ratio,
            self.mean_current, self.current_swing,
        ])


@dataclass(frozen=True)
class ExecutionProfile:
    """Result of simulating a window of loop execution."""

    waveform: np.ndarray  # per-cycle relative current, values in [0, 1]
    counters: PerfCounters
    cycles_per_iteration: float

    @property
    def peak_to_trough(self) -> float:
        """Raw current swing of the waveform (max - min)."""
        return float(self.waveform.max() - self.waveform.min())


class ExecutionModel:
    """Simulates steady-state execution of an instruction loop.

    Parameters
    ----------
    freq_ghz:
        Core clock; only used to translate cycles to wall time for
        spectral analysis (done by the PDN layer).
    window_cycles:
        Length of the simulated steady-state window. Must cover several
        PDN resonance periods for the spectral estimate to be stable;
        the default covers ~20 periods of a 50 MHz resonance at 2.4 GHz.
    """

    def __init__(self, freq_ghz: float = 2.4, window_cycles: int = 1024) -> None:
        if freq_ghz <= 0:
            raise ConfigurationError("freq_ghz must be positive")
        if window_cycles < 64:
            raise ConfigurationError("window_cycles must be at least 64")
        self.freq_ghz = freq_ghz
        self.window_cycles = window_cycles

    def raw_waveform(self, loop: InstructionLoop) -> np.ndarray:
        """Unsmoothed per-cycle current over one window (values [0,1])."""
        cycles: list = []
        while len(cycles) < self.window_cycles:
            for klass in loop.body:
                spec = spec_of(klass)
                occupancy = max(1, round(spec.cycles))
                level = STATIC_CURRENT + (1.0 - STATIC_CURRENT) * spec.current
                cycles.extend([level] * occupancy)
                if len(cycles) >= self.window_cycles:
                    break
        return np.asarray(cycles[: self.window_cycles])

    def profile(self, loop: InstructionLoop) -> ExecutionProfile:
        """Simulate ``loop`` and return waveform + counters."""
        raw = self.raw_waveform(loop)
        waveform = _one_pole_lowpass(raw, SMOOTHING_CYCLES)

        total_instr = len(loop)
        total_cycles = loop.total_cycles
        fp = sum(1 for k in loop if spec_of(k).uses_fp)
        mem = sum(1 for k in loop if spec_of(k).touches_memory)
        branch = sum(1 for k in loop if k.value == "branch")
        l2_miss = sum(1 for k in loop if k.value in ("load_l2", "load_dram"))
        # Effective IPC: harmonic blend of per-class throughputs.
        inv_ipc = sum(1.0 / spec_of(k).ipc_weight for k in loop) / total_instr
        counters = PerfCounters(
            ipc=min(4.0, 1.0 / inv_ipc),
            fp_ratio=fp / total_instr,
            mem_ratio=mem / total_instr,
            branch_ratio=branch / total_instr,
            l2_miss_ratio=l2_miss / total_instr,
            mean_current=float(waveform.mean()),
            current_swing=self.normalized_swing(waveform),
        )
        return ExecutionProfile(
            waveform=waveform,
            counters=counters,
            cycles_per_iteration=total_cycles,
        )

    @staticmethod
    def normalized_swing(waveform: np.ndarray) -> float:
        """Peak-to-trough current swing normalized to the ISA's headroom.

        1.0 means the waveform spans the full range between the
        lowest-power and highest-power instruction classes -- the
        theoretical maximum any loop can achieve.
        """
        headroom = (MAX_CLASS_CURRENT - MIN_CLASS_CURRENT) * (1.0 - STATIC_CURRENT)
        swing = float(waveform.max() - waveform.min())
        return min(1.0, swing / headroom)


def _one_pole_lowpass(signal: np.ndarray, tau_cycles: float) -> np.ndarray:
    """First-order IIR low-pass, vectorized via lfilter-style recurrence."""
    alpha = 1.0 / (1.0 + tau_cycles)
    out = np.empty_like(signal, dtype=float)
    state = float(signal[0])
    # The loop is short (<= window_cycles) and runs rarely; clarity over
    # vectorization tricks here.
    for i, sample in enumerate(signal):
        state += alpha * (float(sample) - state)
        out[i] = state
    return out
