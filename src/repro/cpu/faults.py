"""Fault-site to run-outcome classification.

When a voltage violation produces a bit error, *where* the bit lives
determines what software observes. This module encodes the mapping used
by the paper's framework (Section III): ECC-protected arrays yield
correctable/uncorrectable errors depending on multiplicity; unprotected
datapath state yields silent data corruption; instruction/control state
yields crashes or hangs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.cpu.outcomes import RunOutcome


class FaultSite(enum.Enum):
    """Structural location of an injected/observed bit error."""

    L1D_DATA = "l1d_data"          # SECDED-protected on X-Gene2
    L1I_DATA = "l1i_data"          # parity-protected (detect, refetch)
    L2_DATA = "l2_data"            # SECDED-protected
    L3_DATA = "l3_data"            # SECDED-protected
    TLB = "tlb"                    # parity; miss is recoverable
    REGISTER_FILE = "register"     # unprotected architectural state
    ALU_DATAPATH = "alu"           # combinational logic, unprotected
    FP_DATAPATH = "fp"             # combinational logic, unprotected
    CONTROL_LOGIC = "control"      # fetch/decode/sequencing state
    CACHE_TAG = "tag"              # tags: a flip misroutes a line

    @property
    def ecc_protected(self) -> bool:
        return self in (FaultSite.L1D_DATA, FaultSite.L2_DATA, FaultSite.L3_DATA)

    @property
    def parity_protected(self) -> bool:
        return self in (FaultSite.L1I_DATA, FaultSite.TLB)


@dataclass(frozen=True)
class FaultEvent:
    """One fault occurrence: where, and how many bits within one word."""

    site: FaultSite
    bits_in_word: int = 1

    def __post_init__(self) -> None:
        if self.bits_in_word < 1:
            raise ValueError("a fault event flips at least one bit")


def classify_fault(event: FaultEvent) -> RunOutcome:
    """Map a fault event to the run outcome software observes.

    Rules (matching the platform's protection scheme):

    - SECDED arrays: 1 bit -> corrected (CE); 2 bits -> detected
      uncorrectable (UE); >2 bits -> may alias to a valid codeword, so
      treated as SDC (the pessimistic reading used in the paper's SDC
      accounting).
    - Parity arrays: any odd multiplicity is detected and recovered by
      refetch (CE-equivalent); even multiplicities escape parity -> SDC
      for data, crash for instruction bits that corrupt control flow.
    - Unprotected datapath/register state -> SDC.
    - Control logic / cache tags -> crash (illegal state, wild access).
    """
    site, bits = event.site, event.bits_in_word
    if site.ecc_protected:
        if bits == 1:
            return RunOutcome.CORRECTED_ERROR
        if bits == 2:
            return RunOutcome.UNCORRECTED_ERROR
        return RunOutcome.SDC
    if site is FaultSite.L1I_DATA:
        return RunOutcome.CORRECTED_ERROR if bits % 2 == 1 else RunOutcome.CRASH
    if site is FaultSite.TLB:
        return RunOutcome.CORRECTED_ERROR if bits % 2 == 1 else RunOutcome.SDC
    if site in (FaultSite.REGISTER_FILE, FaultSite.ALU_DATAPATH, FaultSite.FP_DATAPATH):
        return RunOutcome.SDC
    # CONTROL_LOGIC, CACHE_TAG
    return RunOutcome.CRASH
