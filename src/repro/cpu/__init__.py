"""CPU-side behavioural models.

This package models the parts of the core the characterization study
exercises:

- a mini ARMv8-like instruction set with per-class energy/current
  activity (:mod:`repro.cpu.isa`),
- kernels/loops and an execution model that turns an instruction loop
  into a per-cycle supply-current waveform plus performance counters
  (:mod:`repro.cpu.execution`),
- a low-voltage SRAM fault model for the cache hierarchy
  (:mod:`repro.cpu.sram`),
- fault-to-outcome classification shared with the campaign framework
  (:mod:`repro.cpu.outcomes`, :mod:`repro.cpu.faults`).
"""

from repro.cpu.isa import (
    INSTRUCTION_SPECS,
    InstrClass,
    InstructionSpec,
    spec_of,
)
from repro.cpu.kernels import InstructionLoop, square_wave_loop
from repro.cpu.execution import ExecutionModel, ExecutionProfile, PerfCounters
from repro.cpu.outcomes import RunOutcome
from repro.cpu.sram import SramArray, SramFaultModel
from repro.cpu.faults import FaultSite, classify_fault

__all__ = [
    "ExecutionModel",
    "ExecutionProfile",
    "FaultSite",
    "INSTRUCTION_SPECS",
    "InstrClass",
    "InstructionLoop",
    "InstructionSpec",
    "PerfCounters",
    "RunOutcome",
    "SramArray",
    "SramFaultModel",
    "classify_fault",
    "spec_of",
    "square_wave_loop",
]
