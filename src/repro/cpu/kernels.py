"""Instruction loops: the unit of stress-test code.

An :class:`InstructionLoop` is a finite sequence of instruction classes
executed repeatedly -- exactly what the paper's GA evolves ("a loop of
instructions that maximizes radiated EM amplitude") and what the
component micro-viruses hand-craft.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple

from repro.cpu.isa import InstrClass, spec_of
from repro.errors import ConfigurationError

#: Loop-body length bounds accepted by the execution model and the GA.
MIN_LOOP_LEN = 2
MAX_LOOP_LEN = 256


@dataclass(frozen=True)
class InstructionLoop:
    """An immutable loop body of instruction classes.

    The loop is the genome representation of the GA: fixed alphabet,
    variable length within bounds, compared by value.
    """

    body: Tuple[InstrClass, ...]

    def __post_init__(self) -> None:
        if not MIN_LOOP_LEN <= len(self.body) <= MAX_LOOP_LEN:
            raise ConfigurationError(
                f"loop body length {len(self.body)} outside "
                f"{MIN_LOOP_LEN}..{MAX_LOOP_LEN}"
            )

    @classmethod
    def of(cls, classes: Iterable[InstrClass]) -> "InstructionLoop":
        """Build a loop from any iterable of instruction classes."""
        return cls(tuple(classes))

    def __len__(self) -> int:
        return len(self.body)

    def __iter__(self):
        return iter(self.body)

    @property
    def total_cycles(self) -> float:
        """Core cycles consumed by one traversal of the loop body."""
        return sum(spec_of(k).cycles for k in self.body)

    @property
    def mean_current(self) -> float:
        """Cycle-weighted mean relative current of the loop."""
        cycles = self.total_cycles
        weighted = sum(spec_of(k).current * spec_of(k).cycles for k in self.body)
        return weighted / cycles

    def histogram(self) -> dict:
        """Instruction-class counts, for reporting evolved viruses."""
        counts: dict = {}
        for klass in self.body:
            counts[klass] = counts.get(klass, 0) + 1
        return counts

    def describe(self) -> str:
        """Short human-readable summary, e.g. ``simd*12 nop*12 ...``."""
        items = sorted(self.histogram().items(), key=lambda kv: -kv[1])
        return " ".join(f"{k.value}*{n}" for k, n in items)


def square_wave_loop(high: InstrClass, low: InstrClass,
                     half_period_cycles: int) -> InstructionLoop:
    """Hand-craft the canonical dI/dt pattern.

    Alternates a burst of ``high``-current instructions with a burst of
    ``low``-current ones so each phase lasts roughly
    ``half_period_cycles`` core cycles. Driving the half period to match
    half the PDN resonance period is the textbook worst case the GA is
    expected to rediscover.
    """
    if half_period_cycles <= 0:
        raise ConfigurationError("half_period_cycles must be positive")
    high_count = max(1, round(half_period_cycles / spec_of(high).cycles))
    low_count = max(1, round(half_period_cycles / spec_of(low).cycles))
    body: List[InstrClass] = [high] * high_count + [low] * low_count
    if len(body) > MAX_LOOP_LEN:
        raise ConfigurationError(
            f"square wave of {len(body)} instructions exceeds loop limit"
        )
    return InstructionLoop.of(body)
