"""Low-voltage SRAM failure model for the cache hierarchy.

Because the X-Gene2's pipeline and caches share one voltage domain
(Section I), a chip failure at low voltage may originate either in cache
SRAM cells or in pipeline logic. The component micro-viruses of
:mod:`repro.viruses.components` disambiguate the two by isolating
individual structures; this module supplies the SRAM half of that story.

Each :class:`SramArray` (an L1I, L1D or L2 instance) has a population of
bit cells whose individual minimum retention voltages follow a normal
distribution; lowering the supply below a cell's Vmin makes it unreliable.
The model exposes the expected number of failing bits at a voltage and
samples concrete failing-bit addresses deterministically from a seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import ConfigurationError
from repro.rand import SeedLike, substream

#: Mean bit-cell Vmin (mV) for the 28nm 6T SRAM arrays, calibrated below
#: the logic v_crit so that under *nominal-noise* workloads logic paths
#: fail first, but cache viruses (which quiet the pipeline) expose SRAM.
DEFAULT_CELL_VMIN_MEAN_MV = 810.0
#: Cell-to-cell sigma of bit Vmin (mV).
DEFAULT_CELL_VMIN_SIGMA_MV = 12.0


@dataclass(frozen=True)
class SramBitFailure:
    """One failing bit: which set/way/bit position inside the array."""

    set_index: int
    way: int
    bit: int


class SramArray:
    """A cache SRAM array with a seeded cell-Vmin population.

    Parameters
    ----------
    name:
        Array identity, e.g. ``"core0.l1d"``.
    size_bytes, ways, line_bytes:
        Geometry; sets are derived.
    cell_vmin_mean_mv / cell_vmin_sigma_mv:
        Parameters of the per-cell minimum-operating-voltage normal
        distribution.
    seed:
        Deterministic seed for this array's cell population.
    """

    def __init__(self, name: str, size_bytes: int, ways: int, line_bytes: int = 64,
                 cell_vmin_mean_mv: float = DEFAULT_CELL_VMIN_MEAN_MV,
                 cell_vmin_sigma_mv: float = DEFAULT_CELL_VMIN_SIGMA_MV,
                 seed: SeedLike = None) -> None:
        if size_bytes % (ways * line_bytes) != 0:
            raise ConfigurationError(
                f"{name}: size {size_bytes} not divisible by ways*line"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.ways = ways
        self.line_bytes = line_bytes
        self.sets = size_bytes // (ways * line_bytes)
        self.cell_vmin_mean_mv = cell_vmin_mean_mv
        self.cell_vmin_sigma_mv = cell_vmin_sigma_mv
        self._rng = substream(seed, f"sram-{name}")

    @property
    def total_bits(self) -> int:
        return self.size_bytes * 8

    def failure_probability(self, voltage_mv: float) -> float:
        """Per-bit probability of being unreliable at ``voltage_mv``.

        The normal CDF of the cell-Vmin distribution evaluated at the
        supply voltage: cells whose Vmin exceeds the supply fail.
        """
        z = (voltage_mv - self.cell_vmin_mean_mv) / self.cell_vmin_sigma_mv
        return float(_normal_sf(z))

    def expected_failing_bits(self, voltage_mv: float) -> float:
        """Expected count of unreliable bits at ``voltage_mv``."""
        return self.total_bits * self.failure_probability(voltage_mv)

    def sample_failures(self, voltage_mv: float,
                        max_failures: int = 100_000) -> List[SramBitFailure]:
        """Draw concrete failing-bit addresses at ``voltage_mv``.

        The count is Poisson-distributed around the expectation; the
        addresses are uniform over the array. ``max_failures`` caps the
        sample so deeply-undervolted queries stay tractable (beyond a few
        thousand failing bits the array is useless anyway).
        """
        expected = self.expected_failing_bits(voltage_mv)
        count = int(min(self._rng.poisson(min(expected, 1e7)), max_failures))
        failures = []
        bits_per_line = self.line_bytes * 8
        for _ in range(count):
            failures.append(SramBitFailure(
                set_index=int(self._rng.integers(self.sets)),
                way=int(self._rng.integers(self.ways)),
                bit=int(self._rng.integers(bits_per_line)),
            ))
        return failures

    def vmin_for_budget(self, max_expected_failures: float = 0.5) -> float:
        """Lowest voltage keeping expected failing bits under a budget.

        Used to report an array-level Vmin: binary search over voltage.
        """
        lo, hi = self.cell_vmin_mean_mv - 8 * self.cell_vmin_sigma_mv, \
            self.cell_vmin_mean_mv + 10 * self.cell_vmin_sigma_mv
        for _ in range(60):
            mid = (lo + hi) / 2
            if self.expected_failing_bits(mid) > max_expected_failures:
                lo = mid
            else:
                hi = mid
        return hi


class SramFaultModel:
    """The full cache hierarchy's SRAM arrays for one chip.

    Builds L1I/L1D arrays per core and one L2 per PMD with slightly
    different mean Vmin per array (array-to-array process variation),
    and answers which array fails first as the voltage drops -- the
    question the component viruses of the paper are designed to answer.
    """

    def __init__(self, num_pmds: int = 4, cores_per_pmd: int = 2,
                 l1_bytes: int = 32 * 1024, l2_bytes: int = 256 * 1024,
                 array_sigma_mv: float = 4.0, seed: SeedLike = None) -> None:
        rng = substream(seed, "sram-hierarchy")
        self.arrays: List[SramArray] = []
        core = 0
        for pmd in range(num_pmds):
            for _lane in range(cores_per_pmd):
                for kind, ways in (("l1i", 8), ("l1d", 8)):
                    mean = DEFAULT_CELL_VMIN_MEAN_MV + rng.normal(0.0, array_sigma_mv)
                    self.arrays.append(SramArray(
                        f"core{core}.{kind}", l1_bytes, ways,
                        cell_vmin_mean_mv=mean, seed=seed,
                    ))
                core += 1
            mean = DEFAULT_CELL_VMIN_MEAN_MV + rng.normal(0.0, array_sigma_mv)
            self.arrays.append(SramArray(
                f"pmd{pmd}.l2", l2_bytes, 8, cell_vmin_mean_mv=mean, seed=seed,
            ))

    def array(self, name: str) -> SramArray:
        """Look up an array by name; raises ``KeyError`` on a bad name."""
        for arr in self.arrays:
            if arr.name == name:
                return arr
        raise KeyError(name)

    def weakest_array(self) -> SramArray:
        """The array whose budgeted Vmin is highest (fails first)."""
        return max(self.arrays, key=lambda a: a.vmin_for_budget())

    def hierarchy_vmin(self, max_expected_failures: float = 0.5) -> float:
        """Voltage at which the first array exceeds the failure budget."""
        return max(a.vmin_for_budget(max_expected_failures) for a in self.arrays)


def _normal_sf(z: float) -> float:
    """Standard-normal survival function via erfc (no scipy dependency)."""
    import math
    return 0.5 * math.erfc(z / math.sqrt(2.0))
