"""Figure 8a: BER of DPBenches vs Rodinia workloads.

The paper's observations, all reproduced here:

- the random DPBench yields the highest BER (making it the
  representative characterization pattern);
- real workloads incur less BER than the random-pattern virus, both
  because their stored data differs from worst-case patterns and
  because frequent row accesses inherently refresh rows;
- across the four Rodinia applications BER varies by up to ~2.5x.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.dram.errors_model import BitErrorModel, PatternKind
from repro.experiments.common import format_table
from repro.rand import SeedLike
from repro.units import RELAXED_REFRESH_S
from repro.workloads.rodinia import rodinia_suite

PAPER_MAX_WORKLOAD_VARIATION = 2.5


@dataclass(frozen=True)
class Figure8aResult:
    """BER per DPBench and per Rodinia workload."""

    temp_c: float
    interval_s: float
    pattern_ber: Dict[str, float]
    workload_ber: Dict[str, float]

    def rows(self) -> List[Tuple[str, str, float]]:
        rows = [("dpbench", name, ber)
                for name, ber in sorted(self.pattern_ber.items(),
                                        key=lambda kv: kv[1])]
        rows.extend(("rodinia", name, ber)
                    for name, ber in sorted(self.workload_ber.items(),
                                            key=lambda kv: kv[1]))
        return rows

    @property
    def random_is_worst_pattern(self) -> bool:
        return self.pattern_ber["random"] == max(self.pattern_ber.values())

    @property
    def workloads_below_random_virus(self) -> bool:
        return max(self.workload_ber.values()) < self.pattern_ber["random"]

    @property
    def workload_variation(self) -> float:
        """Max/min BER ratio across the Rodinia applications."""
        values = self.workload_ber.values()
        return max(values) / min(values)

    def format(self) -> str:
        lines = [
            f"Figure 8a: BER at {self.interval_s}s refresh, {self.temp_c:.0f} degC"
        ]
        lines.append(format_table(
            ("kind", "workload", "BER"),
            [(k, n, f"{b:.3e}") for k, n, b in self.rows()],
        ))
        lines.append(
            f"workload-to-workload variation {self.workload_variation:.1f}x "
            f"(paper: up to {PAPER_MAX_WORKLOAD_VARIATION}x); "
            f"random DPBench worst: {self.random_is_worst_pattern}; "
            f"all workloads below random virus: {self.workloads_below_random_virus}"
        )
        return "\n".join(lines)


def run_figure8a(seed: SeedLike = None, temp_c: float = 60.0,
                 interval_s: float = RELAXED_REFRESH_S) -> Figure8aResult:
    """Compute the Figure 8a BER comparison."""
    model = BitErrorModel()
    pattern_ber = {
        kind.value: model.pattern_ber(kind, interval_s, temp_c)
        for kind in PatternKind
    }
    workload_ber = {}
    for workload in rodinia_suite():
        profile = workload.dram
        workload_ber[workload.name] = model.workload_ber(
            interval_s, temp_c,
            data_entropy=profile.data_entropy,
            hot_row_fraction=profile.hot_row_fraction,
        )
    return Figure8aResult(
        temp_c=temp_c,
        interval_s=interval_s,
        pattern_ber=pattern_ber,
        workload_ber=workload_ber,
    )


#: Uniform entry point: every experiment module exposes ``run(seed=...)``.
run = run_figure8a
