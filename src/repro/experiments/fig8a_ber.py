"""Figure 8a: BER of DPBenches vs Rodinia workloads.

The paper's observations, all reproduced here:

- the random DPBench yields the highest BER (making it the
  representative characterization pattern);
- real workloads incur less BER than the random-pattern virus, both
  because their stored data differs from worst-case patterns and
  because frequent row accesses inherently refresh rows;
- across the four Rodinia applications BER varies by up to ~2.5x.

The measurement can be gated on the thermal rig: ``regulate=True`` (or
any ``thermal_faults`` / ``thermal_plan``) first drives a testbed zone
to the setpoint with fault-tolerant regulation; an unrecoverable rig
fault quarantines the zone and the result comes back *invalid* with the
typed quarantine record -- BER is never reported from an untrusted
temperature. Recoverable faults re-regulate deterministically, so the
reported rows stay bit-identical to the clean run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.faults import FaultPlan
from repro.dram.errors_model import BitErrorModel, PatternKind
from repro.experiments.common import (
    format_quarantine_lines,
    format_table,
    regulate_to_setpoint,
    thermal_plan_for,
)
from repro.rand import SeedLike
from repro.thermal.monitor import ZoneQuarantine
from repro.thermal.testbed import ThermalTestbed, ZoneConfig
from repro.units import RELAXED_REFRESH_S
from repro.workloads.rodinia import rodinia_suite

PAPER_MAX_WORKLOAD_VARIATION = 2.5


@dataclass(frozen=True)
class Figure8aResult:
    """BER per DPBench and per Rodinia workload.

    ``valid`` is False when the regulated measurement was quarantined
    before a trustworthy read existed; the BER tables are then empty and
    ``thermal_quarantine`` carries the typed zone records.
    """

    temp_c: float
    interval_s: float
    pattern_ber: Dict[str, float]
    workload_ber: Dict[str, float]
    valid: bool = True
    thermal_quarantine: Tuple[ZoneQuarantine, ...] = ()
    regulation_rounds: int = 0

    def rows(self) -> List[Tuple[str, str, float]]:
        rows = [("dpbench", name, ber)
                for name, ber in sorted(self.pattern_ber.items(),
                                        key=lambda kv: kv[1])]
        rows.extend(("rodinia", name, ber)
                    for name, ber in sorted(self.workload_ber.items(),
                                            key=lambda kv: kv[1]))
        return rows

    @property
    def random_is_worst_pattern(self) -> bool:
        """Whether the random DPBench dominates (False when invalid)."""
        if not self.pattern_ber:
            return False
        return self.pattern_ber["random"] == max(self.pattern_ber.values())

    @property
    def workloads_below_random_virus(self) -> bool:
        """Every workload under the random virus (False when invalid)."""
        if not self.pattern_ber or not self.workload_ber:
            return False
        return max(self.workload_ber.values()) < self.pattern_ber["random"]

    @property
    def workload_variation(self) -> float:
        """Max/min BER ratio across the Rodinia applications."""
        values = self.workload_ber.values()
        if not values:
            return 0.0
        return max(values) / min(values)

    def format(self) -> str:
        lines = [
            f"Figure 8a: BER at {self.interval_s}s refresh, {self.temp_c:.0f} degC"
        ]
        if not self.valid:
            lines.append("MEASUREMENT INVALID: thermal zone quarantined "
                         "before a trustworthy read existed")
            lines.extend(format_quarantine_lines(self.thermal_quarantine))
            return "\n".join(lines)
        lines.append(format_table(
            ("kind", "workload", "BER"),
            [(k, n, f"{b:.3e}") for k, n, b in self.rows()],
        ))
        lines.append(
            f"workload-to-workload variation {self.workload_variation:.1f}x "
            f"(paper: up to {PAPER_MAX_WORKLOAD_VARIATION}x); "
            f"random DPBench worst: {self.random_is_worst_pattern}; "
            f"all workloads below random virus: {self.workloads_below_random_virus}"
        )
        return "\n".join(lines)


def run_figure8a(seed: SeedLike = None, temp_c: float = 60.0,
                 interval_s: float = RELAXED_REFRESH_S,
                 regulate: bool = False,
                 thermal_faults: Optional[int] = None,
                 thermal_plan: Optional[FaultPlan] = None,
                 thermal_rounds: int = 3,
                 regulation_s: float = 900.0) -> Figure8aResult:
    """Compute the Figure 8a BER comparison.

    With ``regulate`` (implied by ``thermal_faults``/``thermal_plan``) a
    single-zone testbed is first driven to ``temp_c`` under the
    fault-tolerant regulation loop; the BER model is evaluated only once
    the zone's belief is steady-in-band. An unrecoverable fault yields
    an *invalid* result carrying the quarantine record instead of BER
    rows measured at a wrong temperature.
    """
    plan = thermal_plan_for(thermal_faults, thermal_plan, zones=1,
                            horizon_s=regulation_s)
    regulate = regulate or plan is not None
    quarantines: Tuple[ZoneQuarantine, ...] = ()
    rounds_used = 0
    if regulate:
        testbed = ThermalTestbed([ZoneConfig(setpoint_c=temp_c)],
                                 seed=seed, faults=plan)
        rounds_used = regulate_to_setpoint(
            testbed, temp_c, rounds=thermal_rounds,
            regulation_s=regulation_s)
        quarantines = testbed.zone_quarantines()
        if quarantines:
            return Figure8aResult(
                temp_c=temp_c, interval_s=interval_s,
                pattern_ber={}, workload_ber={}, valid=False,
                thermal_quarantine=quarantines,
                regulation_rounds=rounds_used)

    model = BitErrorModel()
    pattern_ber = {
        kind.value: model.pattern_ber(kind, interval_s, temp_c)
        for kind in PatternKind
    }
    workload_ber = {}
    for workload in rodinia_suite():
        profile = workload.dram
        workload_ber[workload.name] = model.workload_ber(
            interval_s, temp_c,
            data_entropy=profile.data_entropy,
            hot_row_fraction=profile.hot_row_fraction,
        )
    return Figure8aResult(
        temp_c=temp_c,
        interval_s=interval_s,
        pattern_ber=pattern_ber,
        workload_ber=workload_ber,
        regulation_rounds=rounds_used,
    )


#: Uniform entry point: every experiment module exposes ``run(seed=...)``.
run = run_figure8a
