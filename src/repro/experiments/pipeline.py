"""The hardened result pipeline, end to end (paper Figure 2).

``python -m repro pipeline`` drives this: declare campaigns, execute
them on the process-parallel engine (optionally under an injected fault
schedule and/or a checkpoint directory), ship every row through a lossy
transport into the cloud store, and verify the pipeline's exactly-once
contract -- the cloud's materialized rows must be exactly the executor's
rows, no matter what faults were injected along the way.

This is the harness-robustness demonstration the paper's framework
section is about: the benchmark results are unremarkable on purpose; the
point is that they *survive* worker deaths, spurious watchdog power
cycles, transport corruption/loss bursts and whole-study interruptions.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

from repro.core.campaign import Campaign, CampaignPlan
from repro.core.checkpoint import CampaignCheckpoint
from repro.core.faults import FaultInjector, FaultPlan, FaultStats
from repro.core.parallel import ParallelCampaignExecutor, resolve_seed
from repro.core.results import ResultStore
from repro.core.supervisor import (
    DEFAULT_MAX_RETRIES,
    SupervisorStats,
    UnitFailure,
)
from repro.core.transport import (
    CloudStore,
    NetworkLink,
    ResultUploader,
    SerialLink,
    TransportStats,
)
from repro.errors import CampaignError
from repro.experiments.common import format_quarantine_lines
from repro.rand import SeedLike
from repro.soc.corners import ProcessCorner
from repro.soc.xgene2 import build_reference_chips
from repro.workloads.spec import spec_suite

#: Transport choices exposed by the CLI.
TRANSPORTS = ("network", "serial")


@dataclass(frozen=True)
class PipelineResult:
    """Everything the pipeline run produced, plus its delivery audit."""

    chip: str
    campaigns: int
    executed_rows: int
    cloud_rows: int
    duplicates: int
    uploaded_ok: int
    upload_failed: int
    shards_executed: int
    shards_resumed: int
    shards_quarantined: int
    supervision: SupervisorStats
    failures: Tuple[UnitFailure, ...]
    transport: str
    transport_stats: TransportStats
    fault_stats: Optional[FaultStats]
    exactly_once: bool
    store: ResultStore

    def format(self) -> str:
        lines = [
            f"Result pipeline on {self.chip}: {self.campaigns} campaign "
            f"shard(s), {self.executed_rows} rows",
            f"shards: {self.shards_executed} executed, "
            f"{self.shards_resumed} resumed from checkpoint, "
            f"{self.shards_quarantined} quarantined",
            f"supervision: {self.supervision.describe()}",
            f"transport ({self.transport}): {self.transport_stats.attempts} "
            f"attempts, {self.transport_stats.delivered} rows delivered, "
            f"{self.transport_stats.corrupted} corrupted, "
            f"{self.transport_stats.dropped} dropped, "
            f"{self.transport_stats.ack_lost} acks lost, "
            f"retry rate {self.transport_stats.retry_rate:.3f}",
            f"cloud: {self.cloud_rows} rows, "
            f"{self.duplicates} duplicates absorbed",
        ]
        lines.extend(format_quarantine_lines(self.failures))
        if self.fault_stats is not None:
            lines.append(
                f"injected faults: {self.fault_stats.worker_kills} worker "
                f"kills, {self.fault_stats.spurious_escalations} spurious "
                f"escalations, {self.fault_stats.corrupted_frames} corrupted "
                f"frames, {self.fault_stats.dropped_packets} dropped packets, "
                f"{self.fault_stats.unit_exits} worker exits, "
                f"{self.fault_stats.unit_hangs} hangs, "
                f"{self.fault_stats.poison_raises} poison raises")
        lines.append("exactly-once contract: "
                     + ("OK (cloud rows == executed rows)"
                        if self.exactly_once else "VIOLATED"))
        return "\n".join(lines)


def _declare_campaigns(benchmarks: int, repetitions: int, start_mv: float,
                       stop_mv: float, step_mv: float) -> List[Campaign]:
    plan = CampaignPlan()
    plan.add_workloads(spec_suite()[:benchmarks])
    plan.add_voltage_sweep(start_mv, stop_mv, step_mv,
                           repetitions=repetitions)
    return plan.build()


def run_pipeline(seed: SeedLike = None, benchmarks: int = 4,
                 repetitions: int = 3, jobs: int = 1,
                 start_mv: float = 980.0, stop_mv: float = 880.0,
                 step_mv: float = 20.0, transport: str = "network",
                 faults: Optional[int] = None,
                 real_faults: Optional[int] = None,
                 unit_timeout: Optional[float] = None,
                 max_retries: int = DEFAULT_MAX_RETRIES,
                 resume_dir: Optional[str] = None,
                 out_csv: Optional[str] = None) -> PipelineResult:
    """Run the full execution -> transport -> cloud pipeline once.

    ``faults`` seeds a :meth:`FaultPlan.random` schedule injected into
    both the engine and the transport; ``real_faults`` seeds a
    :meth:`FaultPlan.random_real` schedule of *real* process-level
    faults (worker ``os._exit``, deadline hangs) the supervised engine
    recovers from; ``unit_timeout`` / ``max_retries`` set the
    supervisor's per-shard deadline and retry budget. ``resume_dir``
    checkpoints completed campaign shards there and resumes any that
    already finished (quarantined shards are skipped and their typed
    failures resurfaced). Raises
    :class:`~repro.errors.CampaignInterrupted` if the fault plan injects
    a study-level interruption (rerun with the same ``resume_dir`` to
    finish).
    """
    if transport not in TRANSPORTS:
        raise CampaignError(f"unknown transport {transport!r}; "
                            f"choose from {', '.join(TRANSPORTS)}")
    base = resolve_seed(seed)
    chip = build_reference_chips(seed=base)[ProcessCorner.TTT]
    campaigns = _declare_campaigns(benchmarks, repetitions, start_mv,
                                   stop_mv, step_mv)
    total_rows = sum(len(c.runs) for c in campaigns) * repetitions

    injector = None
    if faults is not None or real_faults is not None:
        plan = (FaultPlan.random(faults, shards=len(campaigns),
                                 rows=total_rows, max_depth=3)
                if faults is not None else FaultPlan())
        if real_faults is not None:
            real = FaultPlan.random_real(real_faults, units=len(campaigns))
            plan = replace(plan, unit_exits=real.unit_exits,
                           unit_hangs=real.unit_hangs,
                           poison_units=real.poison_units,
                           hang_seconds=real.hang_seconds)
        injector = FaultInjector(plan)
    checkpoint = CampaignCheckpoint(resume_dir) if resume_dir else None

    engine = ParallelCampaignExecutor(chip, seed=base, jobs=jobs,
                                      fault_injector=injector,
                                      checkpoint=checkpoint,
                                      unit_timeout=unit_timeout,
                                      max_retries=max_retries)
    engine.execute_campaigns(campaigns)

    cloud = CloudStore()
    if transport == "serial":
        link = SerialLink(cloud, bit_error_rate=1e-4, max_retries=8,
                          seed=base, fault_injector=injector)
    else:
        link = NetworkLink(cloud, loss_rate=0.05, ack_loss_rate=0.02,
                           max_retries=8, seed=base, fault_injector=injector)
    ok, failed = ResultUploader(link).upload(engine.store)

    received = cloud.to_store()
    exactly_once = sorted(received.rows()) == sorted(engine.store.rows())
    if out_csv is not None:
        received.write_csv(out_csv)
    return PipelineResult(
        chip=chip.serial,
        campaigns=len(campaigns),
        executed_rows=len(engine.store),
        cloud_rows=len(cloud),
        duplicates=cloud.duplicates,
        uploaded_ok=ok,
        upload_failed=failed,
        shards_executed=engine.shards_executed,
        shards_resumed=engine.shards_resumed,
        shards_quarantined=engine.shards_quarantined,
        supervision=engine.supervision,
        failures=engine.failures,
        transport=transport,
        transport_stats=link.stats,
        fault_stats=injector.stats if injector is not None else None,
        exactly_once=exactly_once,
        store=received,
    )


#: Uniform entry point, matching the other experiment drivers.
run = run_pipeline
