"""Section IV.C closing study: stencil access-pattern scheduling.

The paper reports (citing its IOLTS'17 work, reference [12]) that
reordering stencil memory accesses keeps every row's access interval
below the relaxed refresh period, so inherent refresh alone suppresses
retention errors. This driver compares the natural row-sweep schedule
against the temporally-blocked one on coverage and expected error rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.experiments.common import format_table
from repro.rand import SeedLike
from repro.units import RELAXED_REFRESH_S
from repro.workloads.stencil import StencilScheduler, StencilWorkload


@dataclass(frozen=True)
class StencilResult:
    """Coverage and relative error rate for both schedules."""

    trefp_s: float
    natural_coverage: float
    blocked_coverage: float
    natural_relative_ber: float
    blocked_relative_ber: float

    @property
    def error_reduction_factor(self) -> float:
        if self.blocked_relative_ber == 0:
            return float("inf")
        return self.natural_relative_ber / self.blocked_relative_ber

    def rows(self) -> List[Tuple[str, float, float]]:
        return [
            ("row-sweep", self.natural_coverage, self.natural_relative_ber),
            ("blocked", self.blocked_coverage, self.blocked_relative_ber),
        ]

    def format(self) -> str:
        lines = [f"Stencil scheduling at TREFP={self.trefp_s}s"]
        lines.append(format_table(
            ("schedule", "inherent-refresh coverage", "relative BER"),
            [(n, f"{c:.3f}", f"{b:.3f}") for n, c, b in self.rows()],
        ))
        lines.append(
            f"blocked schedule reduces retention errors by "
            f"{self.error_reduction_factor:.1f}x"
            if self.error_reduction_factor != float("inf")
            else "blocked schedule eliminates retention errors entirely"
        )
        return "\n".join(lines)


def run_stencil_study(seed: SeedLike = None, grid_rows: int = 4096,
                      iterations: int = 4,
                      trefp_s: float = RELAXED_REFRESH_S) -> StencilResult:
    """Compare schedules for a stencil sized so a full sweep exceeds TREFP."""
    # Size the per-row time so one full sweep takes ~2x the refresh
    # period: the natural schedule then leaves rows exposed, while the
    # blocked schedule re-touches each band well inside the period.
    row_time = 2.0 * trefp_s / grid_rows
    workload = StencilWorkload(grid_rows=grid_rows, row_process_s=row_time,
                               iterations=iterations)
    scheduler = StencilScheduler(workload)
    target = trefp_s / 4.0
    natural_cov, blocked_cov = scheduler.coverage_comparison(trefp_s, target)
    # Relative BER: rows not inherently refreshed see full exposure.
    natural_ber = 1.0 - natural_cov
    blocked_ber = 1.0 - blocked_cov
    return StencilResult(
        trefp_s=trefp_s,
        natural_coverage=natural_cov,
        blocked_coverage=blocked_cov,
        natural_relative_ber=natural_ber,
        blocked_relative_ber=blocked_ber,
    )


#: Uniform entry point: every experiment module exposes ``run(seed=...)``.
run = run_stencil_study
