"""Figure 8b: DRAM power savings from the 35x relaxed refresh period.

Savings vary by workload because the refresh component is a smaller
share of DRAM power when a workload streams heavily: the paper reports
27.3 % for nw (lowest bandwidth) down to 9.4 % for kmeans (near-peak
streaming).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.dram.power import DramPowerModel
from repro.experiments.common import format_table
from repro.rand import SeedLike
from repro.units import RELAXED_REFRESH_S

PAPER_SAVINGS_PCT: Dict[str, float] = {"nw": 27.3, "kmeans": 9.4}


@dataclass(frozen=True)
class Figure8bResult:
    """Per-workload DRAM power savings at the relaxed refresh."""

    savings_pct: Dict[str, float]
    nominal_w: Dict[str, float]
    relaxed_w: Dict[str, float]

    def rows(self) -> List[Tuple[str, float, float, float]]:
        return [
            (name, self.nominal_w[name], self.relaxed_w[name], self.savings_pct[name])
            for name in sorted(self.savings_pct, key=self.savings_pct.get,
                               reverse=True)
        ]

    @property
    def max_savings(self) -> Tuple[str, float]:
        name = max(self.savings_pct, key=self.savings_pct.get)
        return name, self.savings_pct[name]

    @property
    def min_savings(self) -> Tuple[str, float]:
        name = min(self.savings_pct, key=self.savings_pct.get)
        return name, self.savings_pct[name]

    def format(self) -> str:
        lines = ["Figure 8b: DRAM power savings at 35x relaxed refresh"]
        lines.append(format_table(
            ("workload", "nominal W", "relaxed W", "savings %"),
            [(n, f"{a:.2f}", f"{b:.2f}", f"{s:.1f}") for n, a, b, s in self.rows()],
        ))
        max_name, max_val = self.max_savings
        min_name, min_val = self.min_savings
        lines.append(
            f"max {max_name} {max_val:.1f}% (paper: nw {PAPER_SAVINGS_PCT['nw']}%), "
            f"min {min_name} {min_val:.1f}% (paper: kmeans {PAPER_SAVINGS_PCT['kmeans']}%)"
        )
        return "\n".join(lines)


def run_figure8b(seed: SeedLike = None,
                 relaxed_trefp_s: float = RELAXED_REFRESH_S) -> Figure8bResult:
    """Compute the per-workload refresh-relaxation savings."""
    from repro.workloads.rodinia import rodinia_suite
    model = DramPowerModel()
    savings: Dict[str, float] = {}
    nominal: Dict[str, float] = {}
    relaxed: Dict[str, float] = {}
    for workload in rodinia_suite():
        bandwidth = workload.dram.bandwidth_gbs
        nominal[workload.name] = model.total_w(model.nominal_trefp_s, bandwidth)
        relaxed[workload.name] = model.total_w(relaxed_trefp_s, bandwidth)
        savings[workload.name] = model.relaxation_savings(
            bandwidth, relaxed_trefp_s) * 100.0
    return Figure8bResult(savings_pct=savings, nominal_w=nominal,
                          relaxed_w=relaxed)


#: Uniform entry point: every experiment module exposes ``run(seed=...)``.
run = run_figure8b
