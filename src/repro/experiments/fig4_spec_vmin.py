"""Figure 4: Vmin of 10 SPEC CPU2006 programs on the three sigma chips.

The paper measures, for each program and each chip (TTT/TFF/TSS), the
safe Vmin on the most robust core at 2.4 GHz, repeating the undervolting
ladder ten times. Reported ranges: 860-885 mV (TTT), 870-885 mV (TFF),
870-900 mV (TSS) against the 980 mV nominal, yielding guaranteed power
reductions of at least 18.4 % (TTT/TFF) and 15.7 % (TSS).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.margins import GuardbandReport, guardband_report
from repro.core.parallel import parallel_map, resolve_seed
from repro.core.supervisor import DEFAULT_MAX_RETRIES
from repro.core.vmin import VminResult
from repro.experiments.common import (
    VminTask,
    fault_injector_for,
    format_table,
    vmin_search_unit,
)
from repro.rand import SeedLike
from repro.soc.corners import NOMINAL_PMD_MV, ProcessCorner
from repro.workloads.spec import spec_suite

#: The paper's reported Vmin ranges (mV) per corner, most robust core.
PAPER_RANGES_MV: Dict[str, Tuple[float, float]] = {
    "TTT": (860.0, 885.0),
    "TFF": (870.0, 885.0),
    "TSS": (870.0, 900.0),
}

#: The paper's guaranteed power-reduction claims (percent).
PAPER_MIN_POWER_REDUCTION_PCT: Dict[str, float] = {
    "TTT": 18.4, "TFF": 18.4, "TSS": 15.7,
}


@dataclass(frozen=True)
class Figure4Result:
    """Per-chip, per-program Vmin table."""

    vmin_mv: Dict[str, Dict[str, float]]      # corner -> program -> Vmin
    reports: Dict[str, GuardbandReport]

    def rows(self) -> List[Tuple[str, float, float, float]]:
        """(program, TTT, TFF, TSS) rows in ascending TTT-Vmin order."""
        programs = sorted(self.vmin_mv["TTT"], key=self.vmin_mv["TTT"].get)
        return [
            (name, self.vmin_mv["TTT"][name], self.vmin_mv["TFF"][name],
             self.vmin_mv["TSS"][name])
            for name in programs
        ]

    def measured_range_mv(self, corner: str) -> Tuple[float, float]:
        values = self.vmin_mv[corner].values()
        return (min(values), max(values))

    def guaranteed_power_reduction_pct(self, corner: str) -> float:
        _, worst = self.measured_range_mv(corner)
        return (1.0 - (worst / NOMINAL_PMD_MV) ** 2) * 100.0

    def ordering_consistent_across_chips(self) -> bool:
        """The paper's 'similar trends across the 3 chips' observation."""
        reference = sorted(self.vmin_mv["TTT"], key=self.vmin_mv["TTT"].get)
        for corner in ("TFF", "TSS"):
            order = sorted(self.vmin_mv[corner], key=self.vmin_mv[corner].get)
            if order != reference:
                return False
        return True

    def format(self) -> str:
        lines = ["Figure 4: SPEC CPU2006 Vmin (mV) at 2.4 GHz, most robust core"]
        lines.append(format_table(
            ("program", "TTT", "TFF", "TSS"),
            [(n, f"{a:.0f}", f"{b:.0f}", f"{c:.0f}") for n, a, b, c in self.rows()],
        ))
        for corner in ("TTT", "TFF", "TSS"):
            lo, hi = self.measured_range_mv(corner)
            p_lo, p_hi = PAPER_RANGES_MV[corner]
            lines.append(
                f"{corner}: measured {lo:.0f}-{hi:.0f} mV (paper {p_lo:.0f}-{p_hi:.0f});"
                f" guaranteed power reduction {self.guaranteed_power_reduction_pct(corner):.1f}%"
                f" (paper >= {PAPER_MIN_POWER_REDUCTION_PCT[corner]}%)"
            )
        return "\n".join(lines)


def run_figure4(seed: SeedLike = None, repetitions: int = 10,
                jobs: int = 1, faults: Optional[int] = None,
                real_faults: Optional[int] = None,
                unit_timeout: Optional[float] = None,
                max_retries: int = DEFAULT_MAX_RETRIES) -> Figure4Result:
    """Run the full Figure 4 campaign on the three reference parts.

    The 3 chips x 10 programs = 30 Vmin ladders are independent work
    units; ``jobs > 1`` shards them across the supervised process pool
    with results identical to ``jobs=1`` at any worker count. ``faults``
    seeds an injected worker-kill schedule and ``real_faults`` a
    schedule of real worker exits/hangs (lost units re-execute; results
    are unchanged -- see
    :func:`repro.experiments.common.fault_injector_for`);
    ``unit_timeout`` / ``max_retries`` set the supervisor's per-unit
    deadline and retry budget.
    """
    injected = faults is not None or real_faults is not None
    base = resolve_seed(seed) if jobs > 1 or injected else seed
    suite = spec_suite()
    tasks: List[VminTask] = [(base, corner, workload, repetitions)
                             for corner in ProcessCorner
                             for workload in suite]
    results: List[VminResult] = parallel_map(
        vmin_search_unit, tasks, jobs=jobs,
        fault_injector=fault_injector_for(faults, len(tasks),
                                          real_faults=real_faults),
        unit_timeout=unit_timeout, max_retries=max_retries)
    vmin_mv: Dict[str, Dict[str, float]] = {}
    reports: Dict[str, GuardbandReport] = {}
    for index, corner in enumerate(ProcessCorner):
        corner_results = results[index * len(suite):(index + 1) * len(suite)]
        vmin_mv[corner.value] = {r.workload: r.safe_vmin_mv
                                 for r in corner_results}
        reports[corner.value] = guardband_report(
            f"{corner.value}-ref", corner.value, corner_results)
    return Figure4Result(vmin_mv=vmin_mv, reports=reports)


#: Uniform entry point: every experiment module exposes ``run(seed=...)``.
run = run_figure4
