"""Extension experiment: single-process vs multi-process Vmin.

The paper's methodology section states the workload characterization ran
"in both single-process and multi-process setups" (Section I). This
driver regenerates that comparison explicitly: for each SPEC program,
the Vmin of one instance on the most robust core vs eight aligned copies
across all cores (worst occupied core), plus the heterogeneous Figure 5
mix as the decorrelated reference point.

Expected shape:

- homogeneous multi-process Vmin > single-process Vmin (phase-aligned
  copies excite the PDN harder, and the weakest core now binds);
- the heterogeneous mix sits *below* the worst homogeneous run at equal
  core count (decorrelation), the effect the Figure 5 ladder exploits;
- everything stays below the dI/dt virus.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.vmin import VminSearch
from repro.experiments.common import format_table, vmin_searches
from repro.rand import SeedLike
from repro.soc.corners import ProcessCorner
from repro.soc.topology import CoreId, NUM_CORES
from repro.workloads.base import CpuWorkload, Workload
from repro.workloads.mixes import HomogeneousMix, figure5_mix
from repro.workloads.spec import spec_suite


def _as_workload(name: str, swing: float, template: Workload) -> Workload:
    """Wrap a mix swing as a runnable workload signature."""
    cpu = template.cpu
    return Workload(CpuWorkload(
        name=name, suite="mix", resonant_swing=swing, ipc=cpu.ipc,
        fp_ratio=cpu.fp_ratio, mem_ratio=cpu.mem_ratio,
        branch_ratio=cpu.branch_ratio, l2_miss_ratio=cpu.l2_miss_ratio,
        sdc_bias=cpu.sdc_bias))


@dataclass(frozen=True)
class MultiprocessResult:
    """Per-program single vs 8-copy Vmin, plus the heterogeneous mix."""

    single_vmin_mv: Dict[str, float]
    multi_vmin_mv: Dict[str, float]
    hetero_mix_vmin_mv: float

    def rows(self) -> List[Tuple[str, float, float, float]]:
        """(program, single, x8, uplift) rows."""
        return [
            (name, self.single_vmin_mv[name], self.multi_vmin_mv[name],
             self.multi_vmin_mv[name] - self.single_vmin_mv[name])
            for name in sorted(self.single_vmin_mv,
                               key=self.single_vmin_mv.get)
        ]

    @property
    def all_multi_above_single(self) -> bool:
        return all(self.multi_vmin_mv[n] > self.single_vmin_mv[n]
                   for n in self.single_vmin_mv)

    @property
    def worst_multi_mv(self) -> float:
        return max(self.multi_vmin_mv.values())

    @property
    def decorrelation_gain_mv(self) -> float:
        """How much the heterogeneous mix undercuts the worst x8 run."""
        return self.worst_multi_mv - self.hetero_mix_vmin_mv

    def format(self) -> str:
        lines = ["Single-process vs multi-process (x8) Vmin, TTT chip"]
        lines.append(format_table(
            ("program", "single mV", "x8 mV", "uplift mV"),
            [(n, f"{a:.0f}", f"{b:.0f}", f"{d:+.0f}")
             for n, a, b, d in self.rows()],
        ))
        lines.append(
            f"heterogeneous 8-mix Vmin {self.hetero_mix_vmin_mv:.0f} mV -- "
            f"{self.decorrelation_gain_mv:.0f} mV below the worst "
            "homogeneous x8 run (phase decorrelation)"
        )
        return "\n".join(lines)


def run_multiprocess_study(seed: SeedLike = None,
                           repetitions: int = 5) -> MultiprocessResult:
    """Run the comparison on the reference TTT part."""
    search: VminSearch = vmin_searches(
        seed=seed, repetitions=repetitions)[ProcessCorner.TTT]
    chip = search.executor.chip
    robust = chip.strongest_core()
    all_cores = tuple(CoreId.from_linear(i) for i in range(NUM_CORES))

    single: Dict[str, float] = {}
    multi: Dict[str, float] = {}
    for workload in spec_suite():
        single[workload.name] = search.search(
            workload, cores=(robust,)).safe_vmin_mv
        mix = HomogeneousMix(workload, copies=NUM_CORES)
        multi[workload.name] = search.search(
            _as_workload(mix.name, mix.resonant_swing, workload),
            cores=all_cores).safe_vmin_mv

    hetero = figure5_mix()
    hetero_result = search.search(
        _as_workload(hetero.name, hetero.resonant_swing,
                     hetero.members[0]),
        cores=all_cores)
    return MultiprocessResult(
        single_vmin_mv=single,
        multi_vmin_mv=multi,
        hetero_mix_vmin_mv=hetero_result.safe_vmin_mv,
    )


#: Uniform entry point: every experiment module exposes ``run(seed=...)``.
run = run_multiprocess_study
