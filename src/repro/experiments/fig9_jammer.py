"""Figure 9: end-to-end Jammer-detector run at the safe operating point.

The paper's closing experiment: four parallel Jammer-detector instances
run with the PMD rail at 930 mV, the SoC rail at 920 mV and the refresh
period relaxed 35x. Total server power drops from 31.1 W to 24.8 W
(20.2 %) with the per-domain savings at 20.3 % (PMD), 6.9 % (SoC) and
33.3 % (DRAM), all without violating the detector's QoS constraint.

The driver exercises the full exploitation pipeline: characterization
report -> safe-point selection -> per-domain power accounting -> a real
(simulated) detection run whose QoS verdict gates the result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analysis.server_power import ServerPowerReport, server_power_report
from repro.core.margins import guardband_report
from repro.core.safepoints import SafeOperatingPoint, select_safe_points
from repro.core.vmin import VminSearch
from repro.dram.power import DramPowerModel
from repro.experiments.common import vmin_searches, format_table
from repro.experiments.fig6_virus_vs_nas import virus_as_workload
from repro.rand import SeedLike
from repro.soc.corners import ProcessCorner
from repro.soc.xgene2 import build_platform
from repro.viruses.didt import evolve_didt_virus
from repro.workloads.jammer import JAMMER_WORKLOAD, JammerDetector, JammerRunReport
from repro.workloads.spec import spec_suite

#: The paper's reported outcome.
PAPER_TOTAL_NOMINAL_W = 31.1
PAPER_TOTAL_SCALED_W = 24.8
PAPER_TOTAL_SAVINGS_PCT = 20.2
PAPER_DOMAIN_SAVINGS_PCT: Dict[str, float] = {
    "PMD": 20.3, "SoC": 6.9, "DRAM": 33.3,
}
PAPER_OPERATING_POINT = {"pmd_mv": 930.0, "soc_mv": 920.0}


@dataclass(frozen=True)
class Figure9Result:
    """Safe point, power report, and the QoS-gated detection run."""

    point: SafeOperatingPoint
    power: ServerPowerReport
    detection: JammerRunReport

    @property
    def qos_met(self) -> bool:
        return self.detection.qos_met

    def rows(self) -> List[Tuple[str, float, float, float]]:
        return [(d, n, s, pct) for d, n, s, pct in self.power.rows()]

    def format(self) -> str:
        lines = ["Figure 9: server power, nominal vs undervolted Jammer run"]
        lines.append(format_table(
            ("domain", "nominal W", "scaled W", "savings %"),
            [(d, f"{n:.2f}", f"{s:.2f}", f"{p:.1f}") for d, n, s, p in self.rows()],
        ))
        lines.append(
            f"total {self.power.total_nominal_w:.1f} -> {self.power.total_scaled_w:.1f} W "
            f"({self.power.total_savings_pct:.1f}%); paper "
            f"{PAPER_TOTAL_NOMINAL_W} -> {PAPER_TOTAL_SCALED_W} W "
            f"({PAPER_TOTAL_SAVINGS_PCT}%)"
        )
        lines.append(
            f"operating point PMD {self.point.pmd_mv:.0f} mV / SoC "
            f"{self.point.soc_mv:.0f} mV / TREFP {self.point.trefp_s:.3f}s; "
            f"QoS {'met' if self.qos_met else 'VIOLATED'} "
            f"(detected {self.detection.bursts_detected}/{self.detection.bursts_injected}, "
            f"max latency {self.detection.max_latency_s * 1000:.1f} ms)"
        )
        return "\n".join(lines)


def run_figure9(seed: SeedLike = None, repetitions: int = 10,
                characterize: bool = True) -> Figure9Result:
    """Run the full exploitation pipeline on the TTT platform.

    With ``characterize=True`` the safe point is *derived* by running
    the characterization (SPEC suite + virus on the weakest core, then
    the selection policy); otherwise the paper's published point is
    programmed directly.
    """
    platform = build_platform(ProcessCorner.TTT, seed=seed)

    if characterize:
        searches = vmin_searches(seed=seed, repetitions=repetitions)
        search: VminSearch = searches[ProcessCorner.TTT]
        chip = search.executor.chip
        # Workload limits on the weakest core (the binding constraint for
        # a chip-wide rail); the virus margin on the robust core, as in
        # the Figure 7 measurement the paper's deployment analysis uses.
        weakest = chip.weakest_cores(1)[0]
        robust = chip.strongest_core()
        workload_results = search.search_suite(spec_suite(), cores=(weakest,))
        virus = evolve_didt_virus(seed=seed, generations=20, population=28)
        virus_result = search.search(virus_as_workload(virus), cores=(robust,))
        report = guardband_report(chip.serial, chip.corner.value,
                                  workload_results, virus_result)
        point = select_safe_points(report, dram_all_corrected=True)
    else:
        point = SafeOperatingPoint(
            pmd_mv=PAPER_OPERATING_POINT["pmd_mv"],
            soc_mv=PAPER_OPERATING_POINT["soc_mv"],
            trefp_s=2.283,
            safety_margin_mv=10.0,
        )

    # Program the board through SLIMpro (validates regulator ranges).
    from repro.soc.domains import DomainName
    platform.slimpro.set_domain_voltage(DomainName.PMD, point.pmd_mv)
    platform.slimpro.set_domain_voltage(DomainName.SOC, point.soc_mv)
    platform.slimpro.set_refresh_period(point.trefp_s)

    power = server_power_report(platform, JAMMER_WORKLOAD, point,
                                dram_model=DramPowerModel())
    detector = JammerDetector(instances=4, seed=seed)
    detection = detector.run(duration_s=2.0, burst_rate_hz=2.0,
                             processing_slowdown=1.0)
    return Figure9Result(point=point, power=power, detection=detection)


#: Uniform entry point: every experiment module exposes ``run(seed=...)``.
run = run_figure9
