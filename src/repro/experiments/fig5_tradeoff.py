"""Figure 5: power/performance tradeoff for the 8-benchmark mix.

The paper runs bwaves, cactusADM, dealII, gromacs, leslie3d, mcf, milc
and namd simultaneously on the TTT chip and reports the ladder obtained
by downclocking 0..4 of the weakest PMDs to 1.2 GHz while lowering the
shared rail to the binding Vmin: 12.8 % power savings at full
performance (915 mV), up to 38.8 % energy savings at 75 % performance
(885 mV, the two weakest PMDs at 1.2 GHz).

The predictor enters exactly as in the paper: it is trained on the
single-program Figure 4 measurements and its mix prediction is checked
against the measured mix Vmin before the rail is actually lowered.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.analysis.tradeoff import TradeoffPoint, tradeoff_ladder
from repro.core.predictor import PredictorReport, VminPredictor
from repro.core.vmin import VminSearch
from repro.experiments.common import format_table, vmin_searches
from repro.rand import SeedLike
from repro.soc.corners import ProcessCorner
from repro.soc.topology import CoreId, NUM_CORES
from repro.workloads.mixes import figure5_mix
from repro.workloads.spec import spec_suite

#: The paper's ladder: (performance %, rail mV, relative power %).
PAPER_LADDER: Tuple[Tuple[float, float, float], ...] = (
    (100.0, 915.0, 87.2),
    (87.5, 900.0, 73.8),
    (75.0, 885.0, 61.2),
    (62.5, 875.0, 49.8),
    (50.0, 760.0, 37.6),
)

PAPER_FULL_PERF_SAVINGS_PCT = 12.8
PAPER_BEST_ENERGY_SAVINGS_PCT = 38.8


@dataclass(frozen=True)
class Figure5Result:
    """The measured ladder plus predictor cross-check."""

    ladder: Tuple[TradeoffPoint, ...]
    measured_mix_vmin_mv: float
    predicted_mix_vmin_mv: float
    predictor_report: PredictorReport

    def rows(self) -> List[Tuple[int, float, float, float]]:
        """(slow PMDs, perf %, rail mV, relative power %) rows."""
        return [
            (p.slow_pmds, p.performance_fraction * 100.0, p.rail_mv,
             p.relative_power * 100.0)
            for p in self.ladder
        ]

    @property
    def full_perf_savings_pct(self) -> float:
        return self.ladder[0].power_savings_pct

    @property
    def best_energy_savings_pct(self) -> float:
        """Energy savings at the 75 % performance rung (paper headline).

        At constant throughput-normalized work, energy tracks power here
        because the mix is throughput-oriented: the paper quotes the
        power reduction at the 885 mV rung as "energy savings up to
        38.8 %".
        """
        rung = next(p for p in self.ladder if p.slow_pmds == 2)
        return rung.power_savings_pct

    @property
    def predictor_is_safe(self) -> bool:
        """Prediction must not under-shoot the measured mix Vmin."""
        return self.predicted_mix_vmin_mv >= self.measured_mix_vmin_mv

    def format(self) -> str:
        lines = ["Figure 5: power/performance tradeoff (TTT, 8-benchmark mix)"]
        lines.append(format_table(
            ("slow PMDs", "perf %", "rail mV", "power %"),
            [(s, f"{p:.1f}", f"{v:.0f}", f"{w:.1f}") for s, p, v, w in self.rows()],
        ))
        lines.append(
            f"full-perf savings {self.full_perf_savings_pct:.1f}% "
            f"(paper {PAPER_FULL_PERF_SAVINGS_PCT}%); best energy savings "
            f"{self.best_energy_savings_pct:.1f}% (paper {PAPER_BEST_ENERGY_SAVINGS_PCT}%)"
        )
        lines.append(
            f"mix Vmin measured {self.measured_mix_vmin_mv:.0f} mV, predictor "
            f"{self.predicted_mix_vmin_mv:.1f} mV ({'safe' if self.predictor_is_safe else 'UNSAFE'})"
        )
        return "\n".join(lines)


def run_figure5(seed: SeedLike = None, repetitions: int = 10) -> Figure5Result:
    """Run the Figure 5 analysis on the reference TTT part."""
    searches = vmin_searches(seed=seed, repetitions=repetitions)
    search: VminSearch = searches[ProcessCorner.TTT]
    chip = search.executor.chip
    mix = figure5_mix()

    # Measure the mix Vmin on all 8 cores (the full-performance rung).
    all_cores = tuple(CoreId.from_linear(i) for i in range(NUM_CORES))
    mix_members = list(mix.members)
    # The executor consumes one workload signature; build a pseudo-
    # workload carrying the mix's decorrelated swing.
    from repro.workloads.base import CpuWorkload, Workload
    mix_workload = Workload(CpuWorkload(
        name=mix.name, suite="mix", resonant_swing=mix.resonant_swing,
        ipc=1.4, fp_ratio=0.4, mem_ratio=0.3, branch_ratio=0.07,
        l2_miss_ratio=0.08, sdc_bias=0.3,
    ))
    mix_result = search.search(mix_workload, cores=all_cores)

    # Train the predictor on the single-program results (Figure 4 data)
    # measured on the weakest core, the binding one for chip-wide rails.
    weakest = chip.weakest_cores(1)[0]
    suite = spec_suite()
    train_results = search.search_suite(suite, cores=(weakest,))
    predictor = VminPredictor()
    report = predictor.fit(suite, [r.safe_vmin_mv for r in train_results])
    predicted = predictor.predict_mix_mv(mix_members)

    ladder = tradeoff_ladder(chip, mix)
    return Figure5Result(
        ladder=tuple(ladder),
        measured_mix_vmin_mv=mix_result.safe_vmin_mv,
        predicted_mix_vmin_mv=predicted,
        predictor_report=report,
    )


#: Uniform entry point: every experiment module exposes ``run(seed=...)``.
run = run_figure5
