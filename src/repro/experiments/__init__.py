"""Experiment drivers: one module per table/figure of the paper.

Each driver returns a structured result object with a ``rows()`` method
(printable series matching the paper's presentation) and records the
paper's reported values alongside the measured ones, so the benchmark
harness and EXPERIMENTS.md can compare shapes directly.

| Module                     | Reproduces                               |
|----------------------------|------------------------------------------|
| ``fig4_spec_vmin``         | Fig. 4: SPEC Vmin on TTT/TFF/TSS          |
| ``fig5_tradeoff``          | Fig. 5: power/performance ladder          |
| ``fig6_virus_vs_nas``      | Fig. 6: EM virus vs NAS Vmin              |
| ``fig7_interchip``         | Fig. 7: inter-chip margins under virus    |
| ``table1_weak_cells``      | Table I: weak cells per bank, 50/60 degC  |
| ``fig8a_ber``              | Fig. 8a: BER, DPBenches vs Rodinia        |
| ``fig8b_refresh_power``    | Fig. 8b: DRAM power savings at 35x TREFP  |
| ``fig9_jammer``            | Fig. 9: per-domain server power, Jammer   |
| ``stencil_scheduling``     | Sec. IV.C: access-pattern scheduling      |
"""

from repro.experiments.fig4_spec_vmin import Figure4Result, run_figure4
from repro.experiments.fig5_tradeoff import Figure5Result, run_figure5
from repro.experiments.fig6_virus_vs_nas import Figure6Result, run_figure6
from repro.experiments.fig7_interchip import Figure7Result, run_figure7
from repro.experiments.table1_weak_cells import Table1Result, run_table1
from repro.experiments.fig8a_ber import Figure8aResult, run_figure8a
from repro.experiments.fig8b_refresh_power import Figure8bResult, run_figure8b
from repro.experiments.fig9_jammer import Figure9Result, run_figure9
from repro.experiments.stencil_scheduling import StencilResult, run_stencil_study
from repro.experiments.multiprocess_vmin import (
    MultiprocessResult,
    run_multiprocess_study,
)

#: Experiment id -> driver callable. Every driver accepts ``seed=`` and
#: returns a result object with ``rows()``/``format()``; the CLI and the
#: bench harness both enumerate experiments from this single map, so a
#: new module only needs one entry here to appear everywhere.
REGISTRY = {
    "fig4": run_figure4,
    "fig5": run_figure5,
    "fig6": run_figure6,
    "fig7": run_figure7,
    "table1": run_table1,
    "fig8a": run_figure8a,
    "fig8b": run_figure8b,
    "fig9": run_figure9,
    "stencil": run_stencil_study,
    "multiprocess": run_multiprocess_study,
}

__all__ = [
    "Figure4Result",
    "Figure5Result",
    "Figure6Result",
    "Figure7Result",
    "Figure8aResult",
    "Figure8bResult",
    "Figure9Result",
    "MultiprocessResult",
    "REGISTRY",
    "StencilResult",
    "Table1Result",
    "run_figure4",
    "run_figure5",
    "run_figure6",
    "run_figure7",
    "run_figure8a",
    "run_figure8b",
    "run_figure9",
    "run_multiprocess_study",
    "run_stencil_study",
    "run_table1",
]
