"""Figure 7: exposing inter-chip process variation with the EM virus.

The virus, being the worst-case stimulus, reveals how much margin each
part *really* has: the paper reports ~60 mV of margin on TTT (so at
least 50 mV is shaveable), ~20 mV on TFF, and effectively zero on TSS
(the virus crashes it 10 mV below nominal) -- the TSS part should stay
at the manufacturer's nominal voltage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.parallel import parallel_map, resolve_seed
from repro.core.supervisor import DEFAULT_MAX_RETRIES
from repro.experiments.common import (
    VminTask,
    fault_injector_for,
    format_table,
    vmin_search_unit,
)
from repro.experiments.fig6_virus_vs_nas import virus_as_workload
from repro.rand import SeedLike, derive_seed
from repro.soc.corners import NOMINAL_PMD_MV, ProcessCorner
from repro.viruses.didt import DidtVirus, GaSearchTask, didt_search_unit

#: Paper-reported virus margins below the 980 mV nominal (mV).
PAPER_MARGINS_MV: Dict[str, float] = {"TTT": 60.0, "TFF": 20.0, "TSS": 0.0}


@dataclass(frozen=True)
class Figure7Result:
    """Per-chip virus Vmin and margin."""

    viruses: Dict[str, DidtVirus]
    virus_vmin_mv: Dict[str, float]

    @property
    def virus(self) -> DidtVirus:
        """The typical-part virus (back-compat with single-virus callers)."""
        return self.viruses["TTT"]

    def margin_mv(self, corner: str) -> float:
        return NOMINAL_PMD_MV - self.virus_vmin_mv[corner]

    def rows(self) -> List[Tuple[str, float, float, float]]:
        """(corner, virus Vmin, measured margin, paper margin) rows."""
        return [
            (corner, self.virus_vmin_mv[corner], self.margin_mv(corner),
             PAPER_MARGINS_MV[corner])
            for corner in ("TTT", "TFF", "TSS")
        ]

    @property
    def ordering_matches_paper(self) -> bool:
        """TTT margin > TFF margin > TSS margin (~zero)."""
        return (self.margin_mv("TTT") > self.margin_mv("TFF")
                > self.margin_mv("TSS"))

    @property
    def tss_margin_negligible(self) -> bool:
        """TSS should have at most one regulator step of margin."""
        return self.margin_mv("TSS") <= 10.0

    def format(self) -> str:
        lines = ["Figure 7: inter-chip process variation under the EM virus"]
        lines.append(format_table(
            ("chip", "virus Vmin mV", "margin mV", "paper margin mV"),
            [(c, f"{v:.0f}", f"{m:.0f}", f"{p:.0f}") for c, v, m, p in self.rows()],
        ))
        return "\n".join(lines)


def run_figure7(seed: SeedLike = None, repetitions: int = 10,
                generations: int = 25, population: int = 32,
                jobs: int = 1, faults: Optional[int] = None,
                real_faults: Optional[int] = None,
                unit_timeout: Optional[float] = None,
                max_retries: int = DEFAULT_MAX_RETRIES) -> Figure7Result:
    """Evolve one virus per chip and measure each on its own part.

    As in the paper's per-part characterization, each reference chip
    gets its own EM-guided search. The three GA arms are independent
    work units keyed by integer seeds derived from the campaign seed,
    sharded through the same supervised process-parallel engine as the
    Vmin ladders -- bit-identical at any ``jobs`` count. ``faults`` /
    ``real_faults`` seed injected simulated / real fault schedules (lost
    units re-execute; results unchanged); ``unit_timeout`` /
    ``max_retries`` set the supervisor's deadline and retry budget.
    """
    base = resolve_seed(seed)
    corners = list(ProcessCorner)
    ga_tasks: List[GaSearchTask] = [
        (derive_seed(base, "fig7-ga", idx), generations, population, 3)
        for idx in range(len(corners))]
    viruses = [virus for virus, _ in parallel_map(
        didt_search_unit, ga_tasks, jobs=jobs,
        fault_injector=fault_injector_for(faults, len(ga_tasks),
                                          real_faults=real_faults),
        unit_timeout=unit_timeout, max_retries=max_retries)]
    tasks: List[VminTask] = [
        (base, corner, virus_as_workload(virus), repetitions)
        for corner, virus in zip(corners, viruses)]
    results = parallel_map(
        vmin_search_unit, tasks, jobs=jobs,
        fault_injector=fault_injector_for(faults, len(tasks),
                                          real_faults=real_faults),
        unit_timeout=unit_timeout, max_retries=max_retries)
    vmin_mv: Dict[str, float] = {
        corner.value: result.safe_vmin_mv
        for corner, result in zip(corners, results)
    }
    return Figure7Result(
        viruses={corner.value: virus
                 for corner, virus in zip(corners, viruses)},
        virus_vmin_mv=vmin_mv)


#: Uniform entry point: every experiment module exposes ``run(seed=...)``.
run = run_figure7
