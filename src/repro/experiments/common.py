"""Shared plumbing for the experiment drivers.

Besides the serial helpers, this module hosts the module-level (and
therefore picklable) work units the process-parallel experiment drivers
fan out: each unit rebuilds its reference chip from the integer seed,
runs one Vmin ladder on a fresh executor, and returns the result. The
reference parts carry zero manufacturing jitter and every run draws from
a named ``(seed, chip, run)`` substream, so a unit computes the same
answer in any process, at any worker count, in any order.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.executor import CampaignExecutor
from repro.core.faults import FaultInjector, FaultPlan
from repro.core.vmin import VminResult, VminSearch
from repro.rand import SeedLike
from repro.soc.corners import ProcessCorner
from repro.soc.xgene2 import build_reference_chips
from repro.workloads.base import Workload

#: One parallel work unit: (seed, corner, workload, ladder repetitions).
VminTask = Tuple[int, ProcessCorner, Workload, int]


def fault_injector_for(faults: Optional[int], shards: int,
                       real_faults: Optional[int] = None
                       ) -> Optional[FaultInjector]:
    """The sharded drivers' ``--faults`` / ``--real-faults`` hook.

    ``faults`` is a fault-plan seed (or ``None``) for *simulated*
    losses: a seeded selection of work-unit attempts is killed and
    transparently re-executed by the supervised engine. ``real_faults``
    seeds :meth:`FaultPlan.random_real`: worker processes really
    ``os._exit``, really sleep past the deadline -- exercising pool
    rebuild and hang recovery for real. Either way results stay
    identical to the clean run, which is the point: the flags
    demonstrate (and test) harness robustness, not a different
    experiment.
    """
    if faults is None and real_faults is None:
        return None
    plan = (FaultPlan.random(faults, shards=shards)
            if faults is not None else FaultPlan())
    if real_faults is not None:
        real = FaultPlan.random_real(real_faults, units=shards)
        plan = replace(plan, unit_exits=real.unit_exits,
                       unit_hangs=real.unit_hangs,
                       poison_units=real.poison_units,
                       hang_seconds=real.hang_seconds)
    return FaultInjector(plan)


def thermal_plan_for(thermal_faults: Optional[int],
                     plan: Optional[FaultPlan] = None,
                     zones: int = 8,
                     horizon_s: float = 900.0) -> Optional[FaultPlan]:
    """The DRAM drivers' ``--thermal-faults`` hook.

    An explicit ``plan`` wins; otherwise ``thermal_faults`` (a seed, or
    ``None``) draws a deterministic rig-fault schedule via
    :meth:`FaultPlan.random_thermal`. The returned plan feeds a
    :class:`~repro.thermal.testbed.ThermalTestbed`; recoverable
    schedules leave the campaign's rows bit-identical to the clean run,
    which is the point of the flag.
    """
    if plan is not None:
        return plan
    if thermal_faults is None:
        return None
    return FaultPlan.random_thermal(thermal_faults, zones=zones,
                                    horizon_s=horizon_s)


def regulate_to_setpoint(testbed, setpoint_c: float, rounds: int = 3,
                         regulation_s: float = 900.0) -> int:
    """Drive every testbed zone to ``setpoint_c`` until trustworthy.

    Runs up to ``rounds`` regulation windows of ``regulation_s`` virtual
    seconds; a round whose belief was not steady-in-band (an out-of-band
    window from a recoverable rig fault) is deterministically followed
    by another -- re-regulation, the measurement-validity gate's
    recovery path. A zone still untrustworthy when the budget runs out
    is force-quarantined as ``regulation-timeout`` (its heater is cut);
    zones the monitor already quarantined stay quarantined. Returns the
    number of rounds used.
    """
    from repro.thermal.monitor import REGULATION_TIMEOUT

    zones = range(len(testbed.configs))
    for zone in zones:
        testbed.set_setpoint(zone, setpoint_c)
    used = 0
    while used < rounds:
        testbed.run(regulation_s)
        used += 1
        pending = [zone for zone in zones
                   if testbed.monitors[zone].quarantine is None
                   and not testbed.zone_measurement_valid(zone)]
        if not pending:
            break
    for zone in zones:
        if testbed.monitors[zone].quarantine is None \
                and not testbed.zone_measurement_valid(zone):
            testbed.quarantine_zone(
                zone, REGULATION_TIMEOUT,
                f"not steady in band after {used} x {regulation_s:.0f}s "
                f"rounds at {setpoint_c:.0f} degC")
    return used


def format_quarantine_lines(failures) -> List[str]:
    """Render typed quarantine records (unit or zone) for summaries."""
    return [f"quarantined: {failure.describe()}" for failure in failures]


def reference_executors(seed: SeedLike = None) -> Dict[ProcessCorner, CampaignExecutor]:
    """Campaign executors over the three reference sigma parts."""
    chips = build_reference_chips(seed=seed)
    return {corner: CampaignExecutor(chip, seed=seed)
            for corner, chip in chips.items()}


def vmin_search_unit(task: VminTask) -> VminResult:
    """Worker body: one (corner, workload) Vmin ladder, self-contained.

    Rebuilds the reference chip for ``task``'s corner from the seed and
    walks the descending ladder on the strongest core with a fresh
    executor -- exactly what the serial drivers do, minus any state
    shared across workloads. Returns the :class:`VminResult`.
    """
    seed, corner, workload, repetitions = task
    chip = build_reference_chips(seed=seed)[corner]
    search = VminSearch(CampaignExecutor(chip, seed=seed),
                        repetitions=repetitions)
    return search.search(workload, cores=(chip.strongest_core(),))


def vmin_searches(seed: SeedLike = None, repetitions: int = 10,
                  step_mv: float = 5.0) -> Dict[ProcessCorner, VminSearch]:
    """Vmin search harnesses over the three reference parts."""
    return {
        corner: VminSearch(executor, step_mv=step_mv, repetitions=repetitions)
        for corner, executor in reference_executors(seed).items()
    }


def format_table(header: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Fixed-width text table for bench output."""
    table: List[List[str]] = [[str(h) for h in header]]
    for row in rows:
        table.append([f"{v:.3f}" if isinstance(v, float) else str(v) for v in row])
    widths = [max(len(r[i]) for r in table) for i in range(len(header))]
    lines = []
    for index, row in enumerate(table):
        lines.append("  ".join(cell.rjust(width) for cell, width in zip(row, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)
