"""Shared plumbing for the experiment drivers."""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.executor import CampaignExecutor
from repro.core.vmin import VminSearch
from repro.rand import SeedLike
from repro.soc.corners import ProcessCorner
from repro.soc.xgene2 import build_reference_chips


def reference_executors(seed: SeedLike = None) -> Dict[ProcessCorner, CampaignExecutor]:
    """Campaign executors over the three reference sigma parts."""
    chips = build_reference_chips(seed=seed)
    return {corner: CampaignExecutor(chip, seed=seed)
            for corner, chip in chips.items()}


def vmin_searches(seed: SeedLike = None, repetitions: int = 10,
                  step_mv: float = 5.0) -> Dict[ProcessCorner, VminSearch]:
    """Vmin search harnesses over the three reference parts."""
    return {
        corner: VminSearch(executor, step_mv=step_mv, repetitions=repetitions)
        for corner, executor in reference_executors(seed).items()
    }


def format_table(header: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Fixed-width text table for bench output."""
    table: List[List[str]] = [[str(h) for h in header]]
    for row in rows:
        table.append([f"{v:.3f}" if isinstance(v, float) else str(v) for v in row])
    widths = [max(len(r[i]) for r in table) for i in range(len(header))]
    lines = []
    for index, row in enumerate(table):
        lines.append("  ".join(cell.rjust(width) for cell, width in zip(row, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)
