"""Shared plumbing for the experiment drivers.

Besides the serial helpers, this module hosts the module-level (and
therefore picklable) work units the process-parallel experiment drivers
fan out: each unit rebuilds its reference chip from the integer seed,
runs one Vmin ladder on a fresh executor, and returns the result. The
reference parts carry zero manufacturing jitter and every run draws from
a named ``(seed, chip, run)`` substream, so a unit computes the same
answer in any process, at any worker count, in any order.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.executor import CampaignExecutor
from repro.core.faults import FaultInjector, FaultPlan
from repro.core.vmin import VminResult, VminSearch
from repro.rand import SeedLike
from repro.soc.corners import ProcessCorner
from repro.soc.xgene2 import build_reference_chips
from repro.workloads.base import Workload

#: One parallel work unit: (seed, corner, workload, ladder repetitions).
VminTask = Tuple[int, ProcessCorner, Workload, int]


def fault_injector_for(faults: Optional[int], shards: int,
                       real_faults: Optional[int] = None
                       ) -> Optional[FaultInjector]:
    """The sharded drivers' ``--faults`` / ``--real-faults`` hook.

    ``faults`` is a fault-plan seed (or ``None``) for *simulated*
    losses: a seeded selection of work-unit attempts is killed and
    transparently re-executed by the supervised engine. ``real_faults``
    seeds :meth:`FaultPlan.random_real`: worker processes really
    ``os._exit``, really sleep past the deadline -- exercising pool
    rebuild and hang recovery for real. Either way results stay
    identical to the clean run, which is the point: the flags
    demonstrate (and test) harness robustness, not a different
    experiment.
    """
    if faults is None and real_faults is None:
        return None
    plan = (FaultPlan.random(faults, shards=shards)
            if faults is not None else FaultPlan())
    if real_faults is not None:
        real = FaultPlan.random_real(real_faults, units=shards)
        plan = replace(plan, unit_exits=real.unit_exits,
                       unit_hangs=real.unit_hangs,
                       poison_units=real.poison_units,
                       hang_seconds=real.hang_seconds)
    return FaultInjector(plan)


def reference_executors(seed: SeedLike = None) -> Dict[ProcessCorner, CampaignExecutor]:
    """Campaign executors over the three reference sigma parts."""
    chips = build_reference_chips(seed=seed)
    return {corner: CampaignExecutor(chip, seed=seed)
            for corner, chip in chips.items()}


def vmin_search_unit(task: VminTask) -> VminResult:
    """Worker body: one (corner, workload) Vmin ladder, self-contained.

    Rebuilds the reference chip for ``task``'s corner from the seed and
    walks the descending ladder on the strongest core with a fresh
    executor -- exactly what the serial drivers do, minus any state
    shared across workloads. Returns the :class:`VminResult`.
    """
    seed, corner, workload, repetitions = task
    chip = build_reference_chips(seed=seed)[corner]
    search = VminSearch(CampaignExecutor(chip, seed=seed),
                        repetitions=repetitions)
    return search.search(workload, cores=(chip.strongest_core(),))


def vmin_searches(seed: SeedLike = None, repetitions: int = 10,
                  step_mv: float = 5.0) -> Dict[ProcessCorner, VminSearch]:
    """Vmin search harnesses over the three reference parts."""
    return {
        corner: VminSearch(executor, step_mv=step_mv, repetitions=repetitions)
        for corner, executor in reference_executors(seed).items()
    }


def format_table(header: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Fixed-width text table for bench output."""
    table: List[List[str]] = [[str(h) for h in header]]
    for row in rows:
        table.append([f"{v:.3f}" if isinstance(v, float) else str(v) for v in row])
    widths = [max(len(r[i]) for r in table) for i in range(len(header))]
    lines = []
    for index, row in enumerate(table):
        lines.append("  ".join(cell.rjust(width) for cell, width in zip(row, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)
