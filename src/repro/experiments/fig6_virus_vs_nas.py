"""Figure 6: Vmin of the EM-guided dI/dt virus vs NAS workloads.

The paper validates the EM-amplitude fitness indirectly: the evolved
virus must show the highest Vmin of any workload. This driver evolves
the virus (GA + local polish), measures its Vmin on the TTT part next to
the NAS suite, and reports the gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.parallel import parallel_map, resolve_seed
from repro.core.supervisor import DEFAULT_MAX_RETRIES
from repro.core.vmin import VminResult
from repro.experiments.common import (
    VminTask,
    fault_injector_for,
    format_table,
    vmin_search_unit,
)
from repro.rand import SeedLike, derive_seed
from repro.soc.corners import ProcessCorner
from repro.viruses.didt import DidtVirus, GaSearchTask, didt_search_unit
from repro.workloads.base import CpuWorkload, Workload
from repro.workloads.nas import nas_suite


def virus_as_workload(virus: DidtVirus) -> Workload:
    """Wrap an evolved virus as a runnable workload signature."""
    counters = None
    from repro.pdn.droop import analyze_loop
    profile = analyze_loop(virus.loop).profile
    counters = profile.counters
    return Workload(CpuWorkload(
        name=virus.name, suite="virus",
        resonant_swing=virus.resonant_swing,
        ipc=max(0.1, counters.ipc),
        fp_ratio=counters.fp_ratio,
        mem_ratio=counters.mem_ratio,
        branch_ratio=counters.branch_ratio,
        l2_miss_ratio=counters.l2_miss_ratio,
        sdc_bias=0.5,
    ))


@dataclass(frozen=True)
class Figure6Result:
    """Virus-vs-NAS Vmin comparison on one chip."""

    corner: str
    virus: DidtVirus
    virus_vmin_mv: float
    nas_vmin_mv: Dict[str, float]

    def rows(self) -> List[Tuple[str, float]]:
        rows = sorted(self.nas_vmin_mv.items(), key=lambda kv: kv[1])
        rows.append(("em-virus", self.virus_vmin_mv))
        return rows

    @property
    def virus_is_highest(self) -> bool:
        """The paper's claim: the virus tops every conventional workload."""
        return self.virus_vmin_mv > max(self.nas_vmin_mv.values())

    @property
    def gap_mv(self) -> float:
        """Virus Vmin minus the worst NAS Vmin."""
        return self.virus_vmin_mv - max(self.nas_vmin_mv.values())

    def format(self) -> str:
        lines = [f"Figure 6: Vmin of EM virus vs NAS benchmarks ({self.corner})"]
        lines.append(format_table(
            ("workload", "Vmin mV"),
            [(name, f"{v:.0f}") for name, v in self.rows()],
        ))
        lines.append(
            f"virus swing {self.virus.resonant_swing:.3f}, "
            f"gap over worst NAS {self.gap_mv:.0f} mV "
            f"({'virus highest' if self.virus_is_highest else 'VIRUS NOT HIGHEST'})"
        )
        return "\n".join(lines)


def run_figure6(seed: SeedLike = None, repetitions: int = 10,
                generations: int = 25, population: int = 32,
                jobs: int = 1, faults: Optional[int] = None,
                real_faults: Optional[int] = None,
                unit_timeout: Optional[float] = None,
                max_retries: int = DEFAULT_MAX_RETRIES) -> Figure6Result:
    """Evolve the virus and compare against NAS on the TTT part.

    The GA search ships as a self-contained work unit through the same
    supervised process-parallel engine as the Vmin ladders, keyed by an
    integer seed derived from the campaign seed -- so the evolved virus
    is bit-identical at any ``jobs`` count (and survives injected worker
    kills as well as real worker crashes and hangs). The virus-plus-NAS
    Vmin ladders then fan out as independent units when ``jobs > 1``,
    with results identical to the serial pass. ``faults`` /
    ``real_faults`` seed injected simulated / real fault schedules (lost
    units re-execute; results are unchanged); ``unit_timeout`` /
    ``max_retries`` set the supervisor's deadline and retry budget.
    """
    base = resolve_seed(seed)
    ga_tasks: List[GaSearchTask] = [
        (derive_seed(base, "fig6-ga"), generations, population, 3)]
    virus, _ = parallel_map(
        didt_search_unit, ga_tasks, jobs=jobs,
        fault_injector=fault_injector_for(faults, len(ga_tasks),
                                          real_faults=real_faults),
        unit_timeout=unit_timeout, max_retries=max_retries)[0]
    workloads = [virus_as_workload(virus)] + list(nas_suite())
    tasks: List[VminTask] = [(base, ProcessCorner.TTT, workload, repetitions)
                             for workload in workloads]
    results: List[VminResult] = parallel_map(
        vmin_search_unit, tasks, jobs=jobs,
        fault_injector=fault_injector_for(faults, len(tasks),
                                          real_faults=real_faults),
        unit_timeout=unit_timeout, max_retries=max_retries)
    return Figure6Result(
        corner=ProcessCorner.TTT.value,
        virus=virus,
        virus_vmin_mv=results[0].safe_vmin_mv,
        nas_vmin_mv={r.workload: r.safe_vmin_mv for r in results[1:]},
    )


#: Uniform entry point: every experiment module exposes ``run(seed=...)``.
run = run_figure6
