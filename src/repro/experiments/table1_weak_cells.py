"""Table I: weak-cell (unique error location) counts per DRAM bank.

The paper profiles 72 DRAM chips at 50 and 60 degC under the 35x relaxed
refresh period with the DPBench suite and reports the unique error
locations per bank index:

    50 degC: 180 213 228 230 163 198 204 208   (bank-to-bank spread 41 %)
    60 degC: 3358 3610 3641 3842 3293 3448 3601 3540   (spread 16 %)

We read these as *board-level aggregates* (totals per bank index across
the 72 devices): the per-device reading would put thousands of weak
bits in every bank, which would force double-bit codewords and
contradict the paper's headline "all manifested errors are corrected by
ECC" -- the aggregate reading keeps per-device densities low enough for
SECDED, exactly as observed (see repro.dram.retention).

Our driver profiles the simulated 72-device population on the thermal
testbed (regulated to each setpoint), reports the per-bank-index totals,
the spread statistics, and the ECC scrub verdict over every device's
banks. Regulation is fault-tolerant and measurement-gated: a
``thermal_faults`` seed injects a deterministic rig-fault schedule, a
round whose zones were not steady-in-band is re-regulated, and devices
on zones the safe-state quarantined are excluded and surfaced as typed
:class:`~repro.thermal.monitor.ZoneQuarantine` records -- never profiled
at a silently wrong temperature.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple, Union

from typing import Optional

from repro.core.faults import FaultPlan
from repro.core.parallel import parallel_map, resolve_seed
from repro.core.supervisor import DEFAULT_MAX_RETRIES
from repro.dram.cells import DramDevicePopulation
from repro.dram.controller import MemoryControlUnit, ScrubResult
from repro.dram.geometry import DEFAULT_GEOMETRY
from repro.errors import ConfigurationError
from repro.experiments.common import (
    fault_injector_for,
    format_quarantine_lines,
    format_table,
    regulate_to_setpoint,
    thermal_plan_for,
)
from repro.rand import SeedLike
from repro.thermal.binding import ZoneBinding
from repro.thermal.monitor import ZoneQuarantine
from repro.thermal.testbed import NUM_ZONES, ThermalTestbed, ZoneConfig
from repro.units import RELAXED_REFRESH_S

#: Paper-reported per-bank counts for the representative device.
PAPER_COUNTS: Dict[float, Tuple[int, ...]] = {
    50.0: (180, 213, 228, 230, 163, 198, 204, 208),
    60.0: (3358, 3610, 3641, 3842, 3293, 3448, 3601, 3540),
}

PAPER_SPREAD_PCT: Dict[float, float] = {50.0: 41.0, 60.0: 16.0}


def spread_pct(counts: List[int]) -> float:
    """Bank-to-bank spread: (max - min) / min, in percent."""
    if not counts or min(counts) == 0:
        raise ConfigurationError("cannot compute spread of empty/zero counts")
    return (max(counts) - min(counts)) / min(counts) * 100.0


@dataclass(frozen=True)
class Table1Result:
    """Per-bank-index totals at both temperatures plus ECC verdict.

    ``thermal_quarantine`` lists zones the testbed's safe-state tripped
    (typed records, mirroring the supervisor's ``UnitFailure`` contract)
    and ``excluded_devices`` the devices those zones carry -- excluded
    from every count rather than measured at an untrusted temperature.
    """

    counts: Dict[float, Tuple[int, ...]]        # temp -> 8 bank totals
    per_chip_totals: Dict[float, Tuple[int, ...]]  # temp -> totals per device
    scrubs: Dict[float, ScrubResult]            # aggregated over all devices
    regulation_ok: bool
    thermal_quarantine: Tuple[ZoneQuarantine, ...] = ()
    excluded_devices: Tuple[int, ...] = ()
    regulation_rounds: Dict[float, int] = field(default_factory=dict)

    def rows(self) -> List[Tuple[str, ...]]:
        rows = []
        for temp in sorted(self.counts):
            rows.append((f"{temp:.0f} degC",) + tuple(str(c) for c in self.counts[temp]))
        return rows

    def measured_spread_pct(self, temp_c: float) -> float:
        return spread_pct(list(self.counts[temp_c]))

    def temperature_amplification(self) -> float:
        """Mean count ratio 60 degC / 50 degC (paper: ~17x)."""
        mean50 = sum(self.counts[50.0]) / len(self.counts[50.0])
        mean60 = sum(self.counts[60.0]) / len(self.counts[60.0])
        return mean60 / mean50

    @property
    def all_errors_corrected(self) -> bool:
        """The headline ECC claim at <= 60 degC."""
        return all(s.all_corrected for s in self.scrubs.values())

    def chip_to_chip_variation(self, temp_c: float) -> float:
        """Max/min total weak cells across the devices."""
        totals = self.per_chip_totals[temp_c]
        return max(totals) / max(1, min(totals))

    def format(self) -> str:
        lines = ["Table I: unique error locations per bank index "
                 "(72 devices, 35x relaxed refresh)"]
        header = ("temp",) + tuple(f"bank{i}" for i in range(8))
        lines.append(format_table(header, self.rows()))
        for temp in sorted(self.counts):
            if min(self.counts[temp], default=0) > 0:
                spread = f"spread {self.measured_spread_pct(temp):.0f}% " \
                    f"(paper {PAPER_SPREAD_PCT[temp]:.0f}%)"
            else:
                spread = "spread n/a (no measurable devices)"
            lines.append(
                f"{temp:.0f} degC: {spread}, ECC scrub: "
                f"{'all corrected' if self.scrubs[temp].all_corrected else 'RESIDUAL ERRORS'}"
            )
        if all(sum(self.counts.get(t, ())) > 0 for t in (50.0, 60.0)):
            lines.append(
                f"60/50 degC amplification: "
                f"{self.temperature_amplification():.1f}x")
            lines.append(
                f"chip-to-chip variation (max/min totals): "
                f"{self.chip_to_chip_variation(60.0):.1f}x at 60 degC"
            )
        if self.excluded_devices:
            lines.append(
                f"{len(self.excluded_devices)} device(s) excluded on "
                "quarantined thermal zones: "
                + " ".join(str(d) for d in self.excluded_devices))
        lines.extend(format_quarantine_lines(self.thermal_quarantine))
        return "\n".join(lines)


def _merge_scrubs(results: List[ScrubResult]) -> ScrubResult:
    return ScrubResult(
        raw_bit_errors=sum(r.raw_bit_errors for r in results),
        corrected_words=sum(r.corrected_words for r in results),
        uncorrectable_words=sum(r.uncorrectable_words for r in results),
        miscorrected_words=sum(r.miscorrected_words for r in results),
        words_scanned=sum(r.words_scanned for r in results),
    )


def _profile_device_chunk(task: Tuple[int, Tuple[int, ...], Tuple[float, ...]]
                          ) -> Dict[float, Tuple[List[int], List[int],
                                                 List[ScrubResult]]]:
    """Worker body: profile a contiguous chunk of devices.

    Rebuilds the device population from the integer seed (every bank's
    weak-cell map draws from a ``weakcells-d{dev}-b{bank}`` substream, so
    a bank samples identically in any process) and returns, per
    temperature, the chunk's bank totals, per-device totals, and SECDED
    scrub results in device order.
    """
    seed, devices, temps = task
    geometry = DEFAULT_GEOMETRY
    population = DramDevicePopulation(geometry=geometry, seed=seed)
    mcu = MemoryControlUnit(index=0, geometry=geometry,
                            trefp_s=RELAXED_REFRESH_S)
    out: Dict[float, Tuple[List[int], List[int], List[ScrubResult]]] = {}
    for temp in temps:
        bank_totals = [0] * geometry.banks_per_device
        chip_totals: List[int] = []
        device_scrubs: List[ScrubResult] = []
        for dev in devices:
            per_bank = population.device_unique_locations(
                dev, RELAXED_REFRESH_S, temp)
            chip_totals.append(sum(per_bank))
            for bank, value in enumerate(per_bank):
                bank_totals[bank] += value
            for bank in range(geometry.banks_per_device):
                device_scrubs.append(
                    mcu.scrub_bank(population.bank_map(dev, bank), temp))
        out[temp] = (bank_totals, chip_totals, device_scrubs)
    return out


def _device_chunks(devices: Union[int, Sequence[int]],
                   jobs: int) -> List[Tuple[int, ...]]:
    """Contiguous device chunks, one per worker slot.

    ``devices`` is either a device count (chunk ``range(devices)``) or
    an explicit ascending device-id list (the gated path, with
    quarantined devices already excluded). Chunks stay in ascending
    device order so concatenating chunk results reproduces the serial
    per-device ordering exactly.
    """
    ids = tuple(range(devices)) if isinstance(devices, int) \
        else tuple(devices)
    if not ids:
        return []
    chunk_count = max(1, min(jobs, len(ids)))
    size = -(-len(ids) // chunk_count)  # ceil division
    return [ids[lo:lo + size] for lo in range(0, len(ids), size)]


def run_table1(seed: SeedLike = None,
               temps_c: Tuple[float, float] = (50.0, 60.0),
               sample_devices: int = 72,
               regulate: bool = True,
               jobs: int = 1, faults: Optional[int] = None,
               real_faults: Optional[int] = None,
               unit_timeout: Optional[float] = None,
               max_retries: int = DEFAULT_MAX_RETRIES,
               thermal_faults: Optional[int] = None,
               thermal_plan: Optional[FaultPlan] = None,
               thermal_rounds: int = 3,
               regulation_s: float = 900.0) -> Table1Result:
    """Profile the population at both setpoints.

    ``regulate=True`` actually runs the 8-zone PID testbed to each
    setpoint first -- exercising the full measurement chain the paper
    used -- and gates the profiling on measurement validity: a round
    whose belief was not steady within 1 degC of setpoint is
    deterministically re-regulated (up to ``thermal_rounds`` windows of
    ``regulation_s`` virtual seconds each), and zones the safe-state
    quarantined have their devices excluded and surfaced as typed
    records. ``thermal_faults`` (a seed) or ``thermal_plan`` (an
    explicit :class:`FaultPlan`) injects deterministic rig faults into
    that chain and implies ``regulate=True``; with only recoverable
    faults the result rows are bit-identical to the clean run. Every
    profiled device's banks pass through the real SECDED scrub; the
    verdict aggregates all of them.

    ``jobs > 1`` shards the device profiling across a process pool in
    contiguous device chunks; per-bank sampling is substream-seeded per
    (device, bank), so the merged totals are identical to the serial
    pass at any worker count. Thermal regulation stays in the parent.
    Execution is supervised: ``faults`` / ``real_faults`` seed injected
    simulated / real fault schedules the engine recovers from, and
    ``unit_timeout`` / ``max_retries`` set its deadline and retry
    budget.
    """
    geometry = DEFAULT_GEOMETRY
    sample_devices = min(sample_devices, geometry.num_devices)
    plan = thermal_plan_for(thermal_faults, thermal_plan,
                            zones=NUM_ZONES, horizon_s=regulation_s)
    regulate = regulate or plan is not None
    regulation_ok = True
    quarantines: Tuple[ZoneQuarantine, ...] = ()
    rounds_used: Dict[float, int] = {}
    devices: Sequence[int] = range(sample_devices)
    excluded: Tuple[int, ...] = ()
    if regulate:
        testbed = ThermalTestbed(
            [ZoneConfig(setpoint_c=temps_c[0]) for _ in range(NUM_ZONES)],
            seed=seed, faults=plan)
        for temp in temps_c:
            rounds_used[temp] = regulate_to_setpoint(
                testbed, temp, rounds=thermal_rounds,
                regulation_s=regulation_s)
            regulation_ok = regulation_ok and all(
                testbed.zone_measurement_valid(zone)
                for zone in range(NUM_ZONES)
                if testbed.monitors[zone].quarantine is None)
        quarantines = testbed.zone_quarantines()
        regulation_ok = regulation_ok and not quarantines
        if quarantines:
            zone_map = ZoneBinding.paper_default(geometry)
            bad_zones = {q.zone for q in quarantines}
            devices = [d for d in range(sample_devices)
                       if zone_map.zone_of_device(d) not in bad_zones]
            excluded = tuple(d for d in range(sample_devices)
                             if zone_map.zone_of_device(d) in bad_zones)

    injected = faults is not None or real_faults is not None
    base = resolve_seed(seed) if jobs > 1 or injected else seed
    tasks = [(base, chunk, tuple(temps_c))
             for chunk in _device_chunks(devices, jobs)]
    shards = parallel_map(
        _profile_device_chunk, tasks, jobs=jobs,
        fault_injector=fault_injector_for(faults, len(tasks),
                                          real_faults=real_faults),
        unit_timeout=unit_timeout, max_retries=max_retries)

    counts: Dict[float, Tuple[int, ...]] = {}
    per_chip: Dict[float, Tuple[int, ...]] = {}
    scrubs: Dict[float, ScrubResult] = {}
    for temp in temps_c:
        bank_totals = [0] * geometry.banks_per_device
        chip_totals: List[int] = []
        device_scrubs: List[ScrubResult] = []
        for shard in shards:
            shard_banks, shard_chips, shard_scrubs = shard[temp]
            for bank, value in enumerate(shard_banks):
                bank_totals[bank] += value
            chip_totals.extend(shard_chips)
            device_scrubs.extend(shard_scrubs)
        counts[temp] = tuple(bank_totals)
        per_chip[temp] = tuple(chip_totals)
        scrubs[temp] = _merge_scrubs(device_scrubs)
    return Table1Result(
        counts=counts,
        per_chip_totals=per_chip,
        scrubs=scrubs,
        regulation_ok=regulation_ok,
        thermal_quarantine=quarantines,
        excluded_devices=excluded,
        regulation_rounds=rounds_used,
    )


#: Uniform entry point: every experiment module exposes ``run(seed=...)``.
run = run_table1
