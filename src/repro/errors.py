"""Exception hierarchy for the guardbands reproduction library.

All library-specific failures derive from :class:`ReproError` so callers can
catch one base type. Hardware-style failure events (a crashed chip, a hung
benchmark) are *not* exceptions -- they are modelled outcomes (see
``repro.cpu.outcomes``). Exceptions here signal misuse of the API or an
internally inconsistent configuration.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A component was configured with inconsistent or out-of-range values."""


class TopologyError(ConfigurationError):
    """A reference into the SoC/DRAM topology does not exist."""


class VoltageDomainError(ConfigurationError):
    """A voltage request falls outside the regulator's programmable range."""


class CampaignError(ReproError):
    """The characterization campaign was driven through an invalid state."""


class CampaignInterrupted(CampaignError):
    """A campaign study stopped before every shard completed.

    Raised by the parallel engine when an (injected or real) interruption
    cuts a ``--jobs N`` study short; completed shards are already in the
    checkpoint, so a ``--resume`` rerun picks up where this one died.
    """


class SupervisionError(CampaignError):
    """Supervised execution quarantined one or more work units.

    Raised by :func:`repro.core.parallel.parallel_map` when units
    exhausted their retry budget; :attr:`failures` holds the typed
    :class:`~repro.core.supervisor.UnitFailure` records (crash / hang /
    poison / pool-broken) instead of a raw ``BrokenProcessPool`` or a
    worker traceback.
    """

    def __init__(self, failures=()) -> None:
        self.failures = tuple(failures)
        described = "; ".join(
            getattr(f, "describe", lambda: str(f))()
            for f in self.failures) or "no failure detail"
        super().__init__(
            f"{len(self.failures)} work unit(s) quarantined: {described}")


class MeasurementInvalidError(CampaignError):
    """A retention query hit a zone whose regulation is not trustworthy.

    Raised by :meth:`repro.thermal.binding.ThermalDramBinding.require_valid`
    when a device's zone is quarantined or out of the paper's 1 degC band:
    retention follows an Arrhenius law, so measuring anyway would silently
    corrupt weak-cell counts instead of failing loudly.
    """


class SearchError(ReproError):
    """A parameter search (Vmin search, GA) could not produce a result."""


class EccError(ReproError):
    """Malformed input to the ECC encoder/decoder (wrong word width etc.)."""


class SimulationError(ReproError):
    """The discrete-event simulation kernel was misused."""


class WorkloadError(ConfigurationError):
    """An unknown workload name or invalid workload parameter."""
