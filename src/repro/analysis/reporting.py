"""Reproduction-report builder.

Runs the full experiment suite and renders a single text report --
the artifact the CLI's ``run all`` and the docs' EXPERIMENTS.md are
built from. Each section carries the experiment's own formatted rows
plus a one-line verdict against the paper's headline claim.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Tuple

from repro.rand import SeedLike


@dataclass(frozen=True)
class SectionResult:
    """One experiment's contribution to the report."""

    name: str
    body: str
    verdict: str
    passed: bool
    elapsed_s: float


@dataclass
class ReproductionReport:
    """The assembled report."""

    sections: List[SectionResult] = field(default_factory=list)

    @property
    def all_passed(self) -> bool:
        return all(section.passed for section in self.sections)

    @property
    def total_elapsed_s(self) -> float:
        return sum(section.elapsed_s for section in self.sections)

    def render(self) -> str:
        lines = ["REPRODUCTION REPORT",
                 "paper: Measuring and Exploiting Guardbands of Server-Grade "
                 "ARMv8 CPU Cores and DRAMs (DSN 2018)", ""]
        for section in self.sections:
            status = "PASS" if section.passed else "DEVIATION"
            lines.append("-" * 72)
            lines.append(f"[{status}] {section.name} ({section.elapsed_s:.1f}s)")
            lines.append(section.body)
            lines.append(f"verdict: {section.verdict}")
            lines.append("")
        lines.append("-" * 72)
        overall = "ALL SHAPE CHECKS PASS" if self.all_passed \
            else "SOME SHAPE CHECKS DEVIATE"
        lines.append(f"{overall} ({len(self.sections)} experiments, "
                     f"{self.total_elapsed_s:.0f}s)")
        return "\n".join(lines)


def _checked(name: str, runner: Callable[[], Tuple[str, str, bool]]) -> SectionResult:
    start = time.perf_counter()
    body, verdict, passed = runner()
    return SectionResult(name=name, body=body, verdict=verdict,
                         passed=passed, elapsed_s=time.perf_counter() - start)


def build_report(seed: SeedLike = None, fast: bool = True) -> ReproductionReport:
    """Run every experiment and assemble the report.

    ``fast=True`` trims repetitions/GA budgets (suitable for CI); the
    slow path matches the benches.
    """
    from repro.experiments import (
        run_figure4, run_figure5, run_figure6, run_figure7,
        run_figure8a, run_figure8b, run_figure9,
        run_stencil_study, run_table1,
    )
    reps = 3 if fast else 10
    gens = 8 if fast else 25
    pop = 16 if fast else 32
    report = ReproductionReport()

    def fig4():
        result = run_figure4(seed=seed, repetitions=reps)
        lo, hi = result.measured_range_mv("TTT")
        ok = (855 <= lo <= 865) and (880 <= hi <= 890) \
            and result.ordering_consistent_across_chips()
        return (result.format(),
                f"TTT range {lo:.0f}-{hi:.0f} mV vs paper 860-885", ok)

    def fig5():
        result = run_figure5(seed=seed, repetitions=reps)
        ok = abs(result.full_perf_savings_pct - 12.8) < 1.0 \
            and abs(result.best_energy_savings_pct - 38.8) < 1.0 \
            and result.predictor_is_safe
        return (result.format(),
                f"savings {result.full_perf_savings_pct:.1f}%/"
                f"{result.best_energy_savings_pct:.1f}% vs paper 12.8%/38.8%", ok)

    def fig6():
        result = run_figure6(seed=seed, repetitions=reps,
                             generations=gens, population=pop)
        return (result.format(),
                f"virus highest by {result.gap_mv:.0f} mV",
                result.virus_is_highest)

    def fig7():
        result = run_figure7(seed=seed, repetitions=reps,
                             generations=gens, population=pop)
        return (result.format(),
                "margin ordering TTT > TFF > TSS ~ 0",
                result.ordering_matches_paper and result.tss_margin_negligible)

    def table1():
        result = run_table1(seed=seed, regulate=not fast,
                            sample_devices=24 if fast else 72)
        amp = result.temperature_amplification()
        ok = result.all_errors_corrected and 12.0 < amp < 24.0
        return (result.format(),
                f"all ECC-corrected, 60/50C amplification {amp:.1f}x", ok)

    def fig8a():
        result = run_figure8a(seed=seed)
        ok = result.random_is_worst_pattern \
            and result.workloads_below_random_virus \
            and 1.8 < result.workload_variation < 3.2
        return (result.format(),
                f"random worst, workload spread {result.workload_variation:.1f}x", ok)

    def fig8b():
        result = run_figure8b(seed=seed)
        name_max, val_max = result.max_savings
        name_min, val_min = result.min_savings
        ok = name_max == "nw" and name_min == "kmeans" \
            and abs(val_max - 27.3) < 1.0 and abs(val_min - 9.4) < 1.0
        return (result.format(),
                f"{name_max} {val_max:.1f}% / {name_min} {val_min:.1f}% "
                "vs paper nw 27.3% / kmeans 9.4%", ok)

    def fig9():
        result = run_figure9(seed=seed, repetitions=reps)
        ok = result.qos_met \
            and abs(result.power.total_savings_pct - 20.2) < 2.0
        return (result.format(),
                f"total savings {result.power.total_savings_pct:.1f}% "
                "vs paper 20.2%, QoS met", ok)

    def stencil():
        result = run_stencil_study(seed=seed)
        ok = result.blocked_coverage > 0.9 > result.natural_coverage
        return (result.format(), "blocked schedule self-refreshes", ok)

    for name, runner in (("Figure 4", fig4), ("Figure 5", fig5),
                         ("Figure 6", fig6), ("Figure 7", fig7),
                         ("Table I", table1), ("Figure 8a", fig8a),
                         ("Figure 8b", fig8b), ("Figure 9", fig9),
                         ("Stencil scheduling", stencil)):
        report.sections.append(_checked(name, runner))
    return report
