"""Savings projections and power accounting.

Aggregation layer between the characterization results and the paper's
headline numbers:

- :mod:`repro.analysis.tradeoff` -- the Figure 5 power/performance
  ladder (per-PMD frequency scaling against a shared voltage rail);
- :mod:`repro.analysis.energy` -- energy/power reduction arithmetic;
- :mod:`repro.analysis.server_power` -- per-domain server power at an
  operating point (the Figure 9 accounting).
"""

from repro.analysis.energy import energy_savings_pct, power_savings_pct
from repro.analysis.reporting import ReproductionReport, build_report
from repro.analysis.scheduling import (
    PlacementPlan,
    plan_naive,
    plan_placement,
    scheduling_advantage,
)
from repro.analysis.server_power import ServerPowerReport, server_power_report
from repro.analysis.tradeoff import TradeoffPoint, tradeoff_ladder

__all__ = [
    "PlacementPlan",
    "ReproductionReport",
    "ServerPowerReport",
    "TradeoffPoint",
    "build_report",
    "energy_savings_pct",
    "plan_naive",
    "plan_placement",
    "power_savings_pct",
    "scheduling_advantage",
    "server_power_report",
    "tradeoff_ladder",
]
