"""Per-domain server power accounting (the Figure 9 analysis).

Combines the clocked-domain power models, the DRAM power model and the
untouchable 'other' watts into the total server power at an operating
point, and reports per-domain and total savings between two points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.safepoints import SafeOperatingPoint
from repro.dram.power import DramPowerModel
from repro.errors import ConfigurationError
from repro.soc.corners import NOMINAL_PMD_MV, NOMINAL_SOC_MV
from repro.soc.xgene2 import XGene2Platform
from repro.units import NOMINAL_REFRESH_S, percent
from repro.workloads.base import Workload


@dataclass(frozen=True)
class ServerPowerReport:
    """Nominal-vs-operating-point power comparison."""

    nominal_w: Dict[str, float]
    scaled_w: Dict[str, float]

    @property
    def total_nominal_w(self) -> float:
        return sum(self.nominal_w.values())

    @property
    def total_scaled_w(self) -> float:
        return sum(self.scaled_w.values())

    @property
    def total_savings_pct(self) -> float:
        return percent(self.total_nominal_w, self.total_scaled_w)

    def domain_savings_pct(self, domain: str) -> float:
        if domain not in self.nominal_w:
            raise ConfigurationError(f"unknown domain {domain!r}")
        return percent(self.nominal_w[domain], self.scaled_w[domain])

    def rows(self):
        """(domain, nominal W, scaled W, savings %) rows for printing."""
        for domain in self.nominal_w:
            yield (domain, self.nominal_w[domain], self.scaled_w[domain],
                   self.domain_savings_pct(domain))


def server_power_report(platform: XGene2Platform, workload: Workload,
                        point: SafeOperatingPoint,
                        dram_model: DramPowerModel = None,
                        utilisation: float = 1.0) -> ServerPowerReport:
    """Account server power at nominal vs a safe operating point.

    The DRAM profile of ``workload`` supplies the bandwidth term; the
    'OTHER' domain (fans, board, management) is untouched by any knob.
    """
    if workload.dram is None:
        raise ConfigurationError(f"workload {workload.name} has no DRAM profile")
    dram_model = dram_model or DramPowerModel()
    bandwidth = workload.dram.bandwidth_gbs

    nominal = {
        "PMD": platform.pmd_power.watts(NOMINAL_PMD_MV, utilisation=utilisation),
        "SoC": platform.soc_power.watts(NOMINAL_SOC_MV, utilisation=utilisation),
        "DRAM": dram_model.total_w(NOMINAL_REFRESH_S, bandwidth),
        "OTHER": platform.other_watts,
    }
    scaled = {
        "PMD": platform.pmd_power.watts(point.pmd_mv, utilisation=utilisation),
        "SoC": platform.soc_power.watts(point.soc_mv, utilisation=utilisation),
        "DRAM": dram_model.total_w(point.trefp_s, bandwidth),
        "OTHER": platform.other_watts,
    }
    return ServerPowerReport(nominal_w=nominal, scaled_w=scaled)
