"""Vmin-aware task placement and frequency assignment.

The paper's Figure 5 discussion ends with: "the predictor, apart from
predicting the safe Vmin, can also assist task scheduling in conjunction
to frequency scaling according to the current workload on the system to
further improve energy efficiency." This module implements that
scheduler for the simulated platform:

- when fewer tasks than cores are runnable, place them on the *strongest*
  cores -- the rail then only has to satisfy the occupied cores' offsets;
- when performance headroom allows, downclock the *weakest* PMDs first
  (they bind the rail at full speed), exactly the Figure 5 ladder move;
- the resulting plan carries the binding Vmin, a safe rail voltage and
  the relative power, so plans are directly comparable.

A naive scheduler (linear core order, downclock PMDs in index order
regardless of strength) is provided as the comparison baseline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import CampaignError
from repro.soc.chip import Chip
from repro.soc.corners import NOMINAL_PMD_MV
from repro.soc.power import CorePowerModel, multicore_relative_power
from repro.soc.topology import (
    CORES_PER_PMD,
    NOMINAL_FREQ_GHZ,
    NUM_CORES,
    NUM_PMDS,
    REDUCED_FREQ_GHZ,
    CoreId,
)
from repro.workloads.base import Workload


@dataclass(frozen=True)
class PlacementPlan:
    """A complete scheduling decision."""

    assignments: Tuple[Tuple[str, CoreId], ...]   # (workload name, core)
    pmd_freq_ghz: Tuple[float, ...]               # per-PMD clock
    binding_vmin_mv: float
    rail_mv: float
    relative_power: float

    @property
    def performance_fraction(self) -> float:
        """Delivered core-GHz relative to all-cores-nominal."""
        total = sum(self.pmd_freq_ghz) * CORES_PER_PMD
        return total / (NUM_PMDS * CORES_PER_PMD * NOMINAL_FREQ_GHZ)

    @property
    def power_savings_pct(self) -> float:
        return (1.0 - self.relative_power) * 100.0

    def occupied_cores(self) -> List[CoreId]:
        return [core for _, core in self.assignments]


def _mix_swing(workloads: Sequence[Workload]) -> float:
    """Decorrelated chip-level swing of co-running workloads."""
    return sum(w.resonant_swing for w in workloads) / len(workloads)


def _snap_up(value_mv: float, step_mv: float) -> float:
    return min(math.ceil(value_mv / step_mv - 1e-9) * step_mv,
               NOMINAL_PMD_MV)


def _plan(chip: Chip, workloads: Sequence[Workload],
          core_order: List[CoreId], slow_pmds: List[int],
          step_mv: float, margin_mv: float,
          power_model: Optional[CorePowerModel]) -> PlacementPlan:
    swing = _mix_swing(workloads)
    cores = core_order[:len(workloads)]
    # Match aggressive workloads to strong cores: sort workloads by
    # swing descending, cores by offset ascending (strongest first).
    ordered = sorted(workloads, key=lambda w: w.resonant_swing, reverse=True)
    assignments = tuple((w.name, core) for w, core in zip(ordered, cores))
    pmd_freq = [REDUCED_FREQ_GHZ if pmd in slow_pmds else NOMINAL_FREQ_GHZ
                for pmd in range(NUM_PMDS)]
    binding = 0.0
    for _, core in assignments:
        freq = pmd_freq[core.pmd]
        binding = max(binding, chip.vmin_mv(core, swing, freq))
    rail = _snap_up(binding + margin_mv, step_mv)
    if power_model is None:
        power_model = CorePowerModel(
            nominal_mv=NOMINAL_PMD_MV, nominal_ghz=NOMINAL_FREQ_GHZ,
            leakage_fraction=0.0, leakage_v0_mv=50.0)
    per_core_freqs = []
    for pmd in range(NUM_PMDS):
        per_core_freqs.extend([pmd_freq[pmd]] * CORES_PER_PMD)
    power = multicore_relative_power(per_core_freqs, rail, power_model)
    return PlacementPlan(
        assignments=assignments,
        pmd_freq_ghz=tuple(pmd_freq),
        binding_vmin_mv=binding,
        rail_mv=rail,
        relative_power=power,
    )


def plan_placement(chip: Chip, workloads: Sequence[Workload],
                   slow_pmd_count: int = 0, step_mv: float = 5.0,
                   margin_mv: float = 0.0,
                   power_model: Optional[CorePowerModel] = None) -> PlacementPlan:
    """The Vmin-aware plan: strong cores first, weakest PMDs downclocked."""
    if not 1 <= len(workloads) <= NUM_CORES:
        raise CampaignError(f"can schedule 1..{NUM_CORES} workloads")
    if not 0 <= slow_pmd_count <= NUM_PMDS:
        raise CampaignError(f"slow_pmd_count must be 0..{NUM_PMDS}")
    # Cores sorted strongest (lowest offset) first.
    core_order = sorted(
        (CoreId.from_linear(i) for i in range(NUM_CORES)),
        key=lambda c: chip.core_offset_mv(c))
    # Downclock the PMDs holding the weakest cores.
    pmd_weakness = {
        pmd: max(chip.core_offset_mv(CoreId(pmd, lane))
                 for lane in range(CORES_PER_PMD))
        for pmd in range(NUM_PMDS)
    }
    slow = sorted(pmd_weakness, key=pmd_weakness.get,
                  reverse=True)[:slow_pmd_count]
    return _plan(chip, workloads, core_order, slow, step_mv, margin_mv,
                 power_model)


def plan_naive(chip: Chip, workloads: Sequence[Workload],
               slow_pmd_count: int = 0, step_mv: float = 5.0,
               margin_mv: float = 0.0,
               power_model: Optional[CorePowerModel] = None) -> PlacementPlan:
    """Baseline: linear core order, PMDs downclocked by index."""
    if not 1 <= len(workloads) <= NUM_CORES:
        raise CampaignError(f"can schedule 1..{NUM_CORES} workloads")
    if not 0 <= slow_pmd_count <= NUM_PMDS:
        raise CampaignError(f"slow_pmd_count must be 0..{NUM_PMDS}")
    core_order = [CoreId.from_linear(i) for i in range(NUM_CORES)]
    # Naive frequency policy downclocks the *last* PMDs, oblivious to
    # which ones actually bind the rail.
    slow = list(range(NUM_PMDS - slow_pmd_count, NUM_PMDS))
    return _plan(chip, workloads, core_order, slow, step_mv, margin_mv,
                 power_model)


def scheduling_advantage(chip: Chip, workloads: Sequence[Workload],
                         slow_pmd_count: int = 0) -> Tuple[PlacementPlan, PlacementPlan, float]:
    """(aware plan, naive plan, rail advantage in mV)."""
    aware = plan_placement(chip, workloads, slow_pmd_count)
    naive = plan_naive(chip, workloads, slow_pmd_count)
    return aware, naive, naive.rail_mv - aware.rail_mv
