"""Energy and power reduction arithmetic.

Small, heavily-tested helpers so every experiment reports savings the
same way the paper does: power savings compare wattages at equal time;
energy savings additionally account for runtime dilation when
performance drops.
"""

from __future__ import annotations

from repro.errors import ConfigurationError


def power_savings_pct(nominal_w: float, scaled_w: float) -> float:
    """Percent power reduction at equal observation time."""
    if nominal_w <= 0:
        raise ConfigurationError("nominal power must be positive")
    return (nominal_w - scaled_w) / nominal_w * 100.0


def energy_savings_pct(nominal_w: float, scaled_w: float,
                       performance_fraction: float = 1.0) -> float:
    """Percent energy reduction for a fixed amount of work.

    At ``performance_fraction`` < 1 the scaled configuration takes
    ``1 / performance_fraction`` times longer, so energy is
    ``scaled_w / performance_fraction`` against ``nominal_w`` -- the
    convention under which the paper's Figure 5 reports "energy savings
    up to 38.8 %" at 75 % performance.
    """
    if not 0.0 < performance_fraction <= 1.0:
        raise ConfigurationError("performance fraction must be in (0, 1]")
    if nominal_w <= 0:
        raise ConfigurationError("nominal power must be positive")
    scaled_energy = scaled_w / performance_fraction
    return (nominal_w - scaled_energy) / nominal_w * 100.0


def relative_dynamic_power(voltage_mv: float, nominal_mv: float,
                           freq_ghz: float, nominal_ghz: float) -> float:
    """Classic CV^2f scaling ratio used by the Figure 5 ladder labels."""
    if min(voltage_mv, nominal_mv, freq_ghz, nominal_ghz) <= 0:
        raise ConfigurationError("operating-point values must be positive")
    return (voltage_mv / nominal_mv) ** 2 * (freq_ghz / nominal_ghz)
