"""Power/performance tradeoff ladder (the Figure 5 analysis).

The scenario: the 8-benchmark mix occupies all 8 cores; PMDs share one
voltage rail but clock independently. Downclocking the k weakest PMDs to
1.2 GHz removes them from the rail's voltage constraint at 2.4 GHz --
the rail then only has to satisfy (a) the remaining full-speed PMDs at
2.4 GHz and (b) the downclocked PMDs at their much lower 1.2 GHz Vmin.
Each additional downclocked PMD costs 12.5 % throughput (2 of 16
core-GHz) and unlocks a lower rail voltage.

The final rung -- all four PMDs at 1.2 GHz -- drops the rail to the
1.2 GHz critical voltage itself (the 760 mV point of the paper's
figure).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.soc.chip import Chip
from repro.soc.corners import NOMINAL_PMD_MV
from repro.soc.power import CorePowerModel, multicore_relative_power
from repro.soc.topology import NUM_PMDS, CORES_PER_PMD, NOMINAL_FREQ_GHZ, REDUCED_FREQ_GHZ
from repro.workloads.mixes import MultiprogramMix


@dataclass(frozen=True)
class TradeoffPoint:
    """One rung of the ladder."""

    slow_pmds: int
    performance_fraction: float
    rail_mv: float
    relative_power: float

    @property
    def power_savings_pct(self) -> float:
        return (1.0 - self.relative_power) * 100.0

    @property
    def label(self) -> str:
        return (f"{self.relative_power * 100:.1f}% - {self.rail_mv:.0f}mV "
                f"@ perf {self.performance_fraction * 100:.1f}%")


def _snap_up(value: float, step: float) -> float:
    return math.ceil(value / step - 1e-9) * step


def tradeoff_ladder(chip: Chip, mix: MultiprogramMix,
                    power_model: CorePowerModel = None,
                    step_mv: float = 5.0,
                    safety_margin_mv: float = 0.0) -> List[TradeoffPoint]:
    """Compute the full ladder: 0..4 downclocked PMDs.

    ``power_model`` defaults to a pure-dynamic model (matching the
    figure's labels, which follow f*V^2 exactly); pass a corner-aware
    model to include leakage.
    """
    if power_model is None:
        power_model = CorePowerModel(
            nominal_mv=NOMINAL_PMD_MV, nominal_ghz=NOMINAL_FREQ_GHZ,
            leakage_fraction=0.0, leakage_v0_mv=50.0, nominal_watts=1.0,
        )
    per_pmd_vmin = mix.per_pmd_vmin_mv(chip, NOMINAL_FREQ_GHZ)
    # Weakest-first order: the paper downclocks PMDs 0 and 1 first.
    pmd_order = sorted(per_pmd_vmin, key=lambda p: per_pmd_vmin[p], reverse=True)
    ladder: List[TradeoffPoint] = []
    for slow_count in range(0, NUM_PMDS + 1):
        slow_set = set(pmd_order[:slow_count])
        fast_constraints = [per_pmd_vmin[p] for p in per_pmd_vmin if p not in slow_set]
        slow_constraints = [
            mix.per_pmd_vmin_mv(chip, REDUCED_FREQ_GHZ)[p] for p in slow_set
        ]
        vmin = max(fast_constraints + slow_constraints)
        rail = min(_snap_up(vmin + safety_margin_mv, step_mv), NOMINAL_PMD_MV)
        per_core_freqs = []
        for pmd in range(NUM_PMDS):
            freq = REDUCED_FREQ_GHZ if pmd in slow_set else NOMINAL_FREQ_GHZ
            per_core_freqs.extend([freq] * CORES_PER_PMD)
        perf = sum(per_core_freqs) / (NUM_PMDS * CORES_PER_PMD * NOMINAL_FREQ_GHZ)
        power = multicore_relative_power(per_core_freqs, rail, power_model)
        ladder.append(TradeoffPoint(
            slow_pmds=slow_count,
            performance_fraction=perf,
            rail_mv=rail,
            relative_power=power,
        ))
    return ladder
