"""Component-isolating micro-viruses (paper Section I / III.C).

Because pipeline and caches share one voltage domain, the paper crafts
synthetic programs that isolate particular structures -- both L1 caches,
the L2, and the integer/FP ALUs -- by exploiting architectural and
micro-architectural properties of the X-Gene2 (e.g. loop bodies larger
than the L1I to force instruction-fetch pressure, pointer-chasing
strides confined to one cache level, long dependent arithmetic chains
that keep a single functional unit saturated).

Each virus couples an instruction loop with the fault site it exposes,
so when a run at low voltage fails the campaign can attribute the
failure to SRAM versus logic.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List

from repro.cpu.faults import FaultSite
from repro.cpu.isa import InstrClass
from repro.cpu.kernels import InstructionLoop


class TargetComponent(enum.Enum):
    """The structures the paper's micro-viruses isolate."""

    L1I = "l1i"
    L1D = "l1d"
    L2 = "l2"
    INT_ALU = "int_alu"
    FP_ALU = "fp_alu"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class ComponentVirus:
    """A micro-virus: loop + the structure it stresses.

    Attributes
    ----------
    target:
        The isolated component.
    loop:
        The instruction loop realizing the isolation.
    fault_site:
        Where failures manifest when this virus trips at low voltage.
    sdc_bias:
        Probability that a mid-band failure of this virus escapes
        detection; datapath viruses have high bias (no ECC on ALUs),
        cache viruses low (SECDED/parity catch most flips).
    residency_bias_mv:
        How much *earlier* (in mV) this virus exposes its component
        relative to the generic workload Vmin -- a virus that parks all
        state in one array sensitizes that array's weakest cells.
    """

    target: TargetComponent
    loop: InstructionLoop
    fault_site: FaultSite
    sdc_bias: float
    residency_bias_mv: float

    @property
    def name(self) -> str:
        return f"virus-{self.target.value}"


def _l1i_virus() -> ComponentVirus:
    # A long straight-line body with frequent branches models a loop
    # larger than the 32 KB L1I: sustained instruction-fetch pressure,
    # minimal data traffic.
    body: List[InstrClass] = []
    for _ in range(24):
        body.extend([InstrClass.INT_ALU, InstrClass.INT_ALU, InstrClass.BRANCH])
    return ComponentVirus(
        target=TargetComponent.L1I,
        loop=InstructionLoop.of(body),
        fault_site=FaultSite.L1I_DATA,
        sdc_bias=0.05,
        residency_bias_mv=8.0,
    )


def _l1d_virus() -> ComponentVirus:
    # Streaming loads/stores confined to a 32 KB footprint: every access
    # hits the L1D, keeping its cells continuously exercised.
    body = [InstrClass.LOAD_L1, InstrClass.STORE] * 32
    return ComponentVirus(
        target=TargetComponent.L1D,
        loop=InstructionLoop.of(body),
        fault_site=FaultSite.L1D_DATA,
        sdc_bias=0.05,
        residency_bias_mv=10.0,
    )


def _l2_virus() -> ComponentVirus:
    # A pointer chase with a stride that always misses L1 but fits the
    # 256 KB L2: every load lands in the L2 arrays.
    body = [InstrClass.LOAD_L2, InstrClass.INT_ALU] * 24
    return ComponentVirus(
        target=TargetComponent.L2,
        loop=InstructionLoop.of(body),
        fault_site=FaultSite.L2_DATA,
        sdc_bias=0.08,
        residency_bias_mv=9.0,
    )


def _int_alu_virus() -> ComponentVirus:
    # Dependent multiply chains saturate the integer unit and its
    # forwarding paths -- the classic logic-path speed test.
    body = [InstrClass.INT_MUL, InstrClass.INT_ALU, InstrClass.INT_ALU] * 20
    return ComponentVirus(
        target=TargetComponent.INT_ALU,
        loop=InstructionLoop.of(body),
        fault_site=FaultSite.ALU_DATAPATH,
        sdc_bias=0.60,
        residency_bias_mv=6.0,
    )


def _fp_alu_virus() -> ComponentVirus:
    # Back-to-back FMA/SIMD keeps the FP unit's longest paths switching.
    body = [InstrClass.FP_FMA, InstrClass.SIMD, InstrClass.FP_MUL] * 20
    return ComponentVirus(
        target=TargetComponent.FP_ALU,
        loop=InstructionLoop.of(body),
        fault_site=FaultSite.FP_DATAPATH,
        sdc_bias=0.65,
        residency_bias_mv=7.0,
    )


_BUILDERS = {
    TargetComponent.L1I: _l1i_virus,
    TargetComponent.L1D: _l1d_virus,
    TargetComponent.L2: _l2_virus,
    TargetComponent.INT_ALU: _int_alu_virus,
    TargetComponent.FP_ALU: _fp_alu_virus,
}


def component_virus(target: TargetComponent) -> ComponentVirus:
    """Build the micro-virus isolating ``target``."""
    return _BUILDERS[target]()


def all_component_viruses() -> Dict[TargetComponent, ComponentVirus]:
    """The full suite, keyed by target."""
    return {target: builder() for target, builder in _BUILDERS.items()}
