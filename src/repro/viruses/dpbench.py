"""DRAM data-pattern benchmarks (DPBenches).

The paper stresses DRAM with all-0s, all-1s, checkerboard and random
patterns -- write the pattern across the whole memory, idle for the
refresh interval, read back and compare (Section III.C, following Liu et
al. [19]). Each benchmark here knows how to generate its pattern words,
what stress profile it exerts on weak cells, and how to check read-back
data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.dram.errors_model import DataStressProfile, PatternKind
from repro.dram.retention import RetentionParams
from repro.errors import ConfigurationError
from repro.rand import SeedLike, substream


@dataclass(frozen=True)
class DataPatternBenchmark:
    """One DPBench: a pattern generator plus its stress semantics."""

    kind: PatternKind
    seed_label: str = "dpbench"

    @property
    def name(self) -> str:
        return f"dpbench-{self.kind.value}"

    def pattern_words(self, count: int, seed: SeedLike = None) -> np.ndarray:
        """Generate ``count`` 64-bit pattern words."""
        if count <= 0:
            raise ConfigurationError("word count must be positive")
        if self.kind is PatternKind.ALL_ZEROS:
            return np.zeros(count, dtype=np.uint64)
        if self.kind is PatternKind.ALL_ONES:
            return np.full(count, np.uint64(0xFFFFFFFFFFFFFFFF), dtype=np.uint64)
        if self.kind is PatternKind.CHECKERBOARD:
            words = np.empty(count, dtype=np.uint64)
            words[0::2] = np.uint64(0xAAAAAAAAAAAAAAAA)
            words[1::2] = np.uint64(0x5555555555555555)
            return words
        rng = substream(seed, self.seed_label)
        return rng.integers(0, 2**64, size=count, dtype=np.uint64)

    def stress_profile(self, params: RetentionParams) -> DataStressProfile:
        """The stress this pattern exerts (delegates to the BER model)."""
        from repro.dram.errors_model import BitErrorModel
        from repro.dram.retention import RetentionModel
        return BitErrorModel(RetentionModel(params)).pattern_stress(self.kind)

    @staticmethod
    def compare(written: np.ndarray, read_back: np.ndarray) -> int:
        """Count flipped bits between written and read-back words."""
        if written.shape != read_back.shape:
            raise ConfigurationError("word arrays must have matching shapes")
        diff = np.bitwise_xor(written, read_back)
        return int(sum(bin(int(w)).count("1") for w in diff))


def dpbench_suite() -> List[DataPatternBenchmark]:
    """The paper's four benchmarks, in its reporting order."""
    return [DataPatternBenchmark(kind) for kind in (
        PatternKind.ALL_ZEROS, PatternKind.ALL_ONES,
        PatternKind.CHECKERBOARD, PatternKind.RANDOM,
    )]
