"""EM-guided dI/dt virus search (paper Section III.C / IV.B).

The X-Gene2 offers no fine-grained voltage probes, so the paper drives
its GA with the amplitude of CPU electromagnetic emanations: maximizing
EM amplitude maximizes voltage noise, which is then *validated* by Vmin
testing (the virus shows the highest Vmin of any workload, Figure 6).

This module wires the GA engine to the EM sensor as fitness, packages
the evolved loop as a :class:`DidtVirus` workload-like object, and
provides the random-search baseline used by the ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.cpu.execution import ExecutionModel
from repro.cpu.kernels import InstructionLoop
from repro.pdn.droop import analyze_loop
from repro.pdn.em import EmSensor
from repro.pdn.rlc import DEFAULT_PDN, PdnModel
from repro.rand import SeedLike, substream
from repro.viruses.genetic import GaConfig, GaResult, GeneticAlgorithm, Individual

#: Execution window used during fitness evaluation; long enough for a
#: stable spectral estimate at the default PDN resonance.
FITNESS_WINDOW_CYCLES = 4096


@dataclass(frozen=True)
class DidtVirus:
    """An evolved voltage-noise virus ready to run as a workload."""

    loop: InstructionLoop
    em_amplitude: float
    resonant_swing: float
    droop_mv: float
    generations: int
    evaluations: int

    @property
    def name(self) -> str:
        return "em-didt-virus"

    def summary(self) -> str:
        return (f"{self.name}: swing={self.resonant_swing:.3f} "
                f"droop={self.droop_mv:.1f}mV em={self.em_amplitude:.4f} "
                f"({self.loop.describe()})")


class DidtSearch:
    """GA search for the maximum-EM instruction loop.

    Parameters
    ----------
    pdn:
        The power-delivery network of the target chip.
    freq_ghz:
        Core clock during the search.
    em_repeats:
        EM reads averaged per fitness evaluation (noise suppression).
    config:
        GA hyperparameters.
    seed:
        Seed for both the GA and the EM sensor noise.
    """

    def __init__(self, pdn: Optional[PdnModel] = None, freq_ghz: float = 2.4,
                 em_repeats: int = 3, config: GaConfig = GaConfig(),
                 seed: SeedLike = None) -> None:
        self.pdn = pdn or PdnModel(DEFAULT_PDN)
        self.freq_ghz = freq_ghz
        self.sensor = EmSensor(pdn=self.pdn, seed=substream(seed, "didt-em"))
        self.em_repeats = em_repeats
        self.config = config
        self._seed = seed
        self._exec_model = ExecutionModel(freq_ghz=freq_ghz,
                                          window_cycles=FITNESS_WINDOW_CYCLES)

    def em_fitness(self, loop: InstructionLoop) -> float:
        """Averaged EM amplitude of a candidate loop."""
        waveform = self._exec_model.profile(loop).waveform
        reading = self.sensor.measure_averaged(waveform, self.freq_ghz,
                                               repeats=self.em_repeats)
        return reading.amplitude

    def run(self, polish: bool = True) -> Tuple[DidtVirus, GaResult]:
        """Evolve a virus; returns it plus the raw GA result.

        With ``polish=True`` (the default) the GA winner goes through a
        local refinement pass: structured square-wave candidates with
        half-periods bracketing the PDN resonance are evaluated with the
        same EM fitness, and the best stimulus overall wins. This
        GA + local-search hybrid converges to the full resonant swing
        far more reliably than the GA alone (quantified by the GA
        ablation bench).
        """
        ga = GeneticAlgorithm(self.em_fitness, config=self.config,
                              seed=substream(self._seed, "didt-ga"))
        result = ga.run()
        best = result.best
        if polish:
            for candidate in self._polish_candidates():
                fitness = self.em_fitness(candidate)
                if fitness > best.fitness:
                    best = Individual(loop=candidate, fitness=fitness)
        polished = GaResult(best=best, history=result.history + (best.fitness,),
                            evaluations=result.evaluations)
        return self._package(polished), polished

    def _polish_candidates(self):
        """Square waves with half-periods around the PDN resonance."""
        from repro.cpu.isa import InstrClass
        from repro.cpu.kernels import square_wave_loop
        res_cycles = self.freq_ghz * 1e9 / self.pdn.params.resonant_freq_hz
        for scale in (0.8, 0.9, 1.0, 1.1, 1.25):
            half = max(1, int(round(res_cycles * scale / 2)))
            try:
                yield square_wave_loop(InstrClass.SIMD, InstrClass.NOP, half)
            except Exception:
                continue

    def _package(self, result: GaResult) -> DidtVirus:
        analysis = analyze_loop(result.best.loop, pdn=self.pdn,
                                freq_ghz=self.freq_ghz,
                                window_cycles=FITNESS_WINDOW_CYCLES)
        return DidtVirus(
            loop=result.best.loop,
            em_amplitude=result.best.fitness,
            resonant_swing=analysis.resonant_swing,
            droop_mv=analysis.droop_mv,
            generations=len(result.history) - 1,
            evaluations=result.evaluations,
        )


def evolve_didt_virus(seed: SeedLike = None, generations: int = 30,
                      population: int = 40,
                      pdn: Optional[PdnModel] = None) -> DidtVirus:
    """Convenience wrapper: evolve a virus with default settings."""
    config = GaConfig(population_size=population, generations=generations)
    search = DidtSearch(pdn=pdn, config=config, seed=seed)
    virus, _ = search.run()
    return virus


def random_search_baseline(seed: SeedLike = None, evaluations: int = 1200,
                           pdn: Optional[PdnModel] = None) -> DidtVirus:
    """Ablation baseline: pure random search with the same budget.

    Draws random loops and keeps the best by the same EM fitness; used
    by ``benchmarks/test_bench_ablation_ga.py`` to quantify the GA's
    advantage.
    """
    search = DidtSearch(pdn=pdn, seed=seed)
    ga = GeneticAlgorithm(search.em_fitness, seed=substream(seed, "rand-baseline"))
    rng = substream(seed, "random-search")
    best_loop, best_fit = None, float("-inf")
    for _ in range(evaluations):
        loop = ga._random_loop()
        fit = search.em_fitness(loop)
        if fit > best_fit:
            best_loop, best_fit = loop, fit
    result = GaResult(best=Individual(best_loop, best_fit),
                      history=(best_fit,), evaluations=evaluations)
    return search._package(result)
