"""EM-guided dI/dt virus search (paper Section III.C / IV.B).

The X-Gene2 offers no fine-grained voltage probes, so the paper drives
its GA with the amplitude of CPU electromagnetic emanations: maximizing
EM amplitude maximizes voltage noise, which is then *validated* by Vmin
testing (the virus shows the highest Vmin of any workload, Figure 6).

This module wires the GA engine to the EM sensor as fitness, packages
the evolved loop as a :class:`DidtVirus` workload-like object, and
provides the random-search baseline used by the ablation bench.

Fitness evaluation is batched end to end: :class:`EmFitness` decomposes
each evaluation into a deterministic (noise-free) amplitude -- memoized
across generations and deduplicated within a batch -- plus
counter-based receiver noise, so scoring a whole GA generation costs
one stacked waveform synthesis and one batched FFT while remaining
bit-identical to the serial path. Independent searches (per-chip
Figure 7 arms, ablation arms) ship as picklable work units through
:mod:`repro.core.parallel`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cpu.execution import ExecutionModel
from repro.cpu.isa import InstrClass
from repro.cpu.kernels import InstructionLoop
from repro.errors import SearchError
from repro.pdn.droop import analyze_loop
from repro.pdn.em import EmSensor
from repro.pdn.rlc import DEFAULT_PDN, PdnModel
from repro.rand import SeedLike, substream
from repro.viruses.genetic import GaConfig, GaResult, GeneticAlgorithm, Individual

#: Execution window used during fitness evaluation; long enough for a
#: stable spectral estimate at the default PDN resonance.
FITNESS_WINDOW_CYCLES = 4096


@dataclass(frozen=True)
class DidtVirus:
    """An evolved voltage-noise virus ready to run as a workload."""

    loop: InstructionLoop
    em_amplitude: float
    resonant_swing: float
    droop_mv: float
    generations: int
    evaluations: int

    @property
    def name(self) -> str:
        return "em-didt-virus"

    def summary(self) -> str:
        return (f"{self.name}: swing={self.resonant_swing:.3f} "
                f"droop={self.droop_mv:.1f}mV em={self.em_amplitude:.4f} "
                f"({self.loop.describe()})")


class EmFitness:
    """Batched EM-amplitude fitness with a memoized deterministic part.

    A fitness evaluation decomposes as ``mean over r of
    max(0, clean(loop) + noise(e, r))`` where ``clean`` is the noise-free
    radiated amplitude (a pure function of the genome) and the noise of
    read ``r`` within evaluation ``e`` comes from the sensor's
    counter-based protocol. ``clean`` is cached across generations and
    computed once per distinct genome within a batch; noise is always
    drawn per evaluation, so serial (:meth:`__call__`) and batched
    (:meth:`batch`) scoring consume identical counters and return
    identical values.
    """

    def __init__(self, exec_model: ExecutionModel, sensor: EmSensor,
                 freq_ghz: float, repeats: int) -> None:
        self.exec_model = exec_model
        self.sensor = sensor
        self.freq_ghz = freq_ghz
        self.repeats = repeats
        self._clean_cache: Dict[Tuple[InstrClass, ...], float] = {}

    def __call__(self, loop: InstructionLoop) -> float:
        """Serial entry point: one evaluation, one counter value."""
        return self.batch([loop])[0]

    def batch(self, loops: Sequence[InstructionLoop]) -> List[float]:
        """Score a whole cohort in one stacked waveform + FFT pass."""
        loops = list(loops)
        missing: List[InstructionLoop] = []
        seen = set()
        for loop in loops:
            key = loop.body
            if key not in self._clean_cache and key not in seen:
                seen.add(key)
                missing.append(loop)
        if missing:
            block = self.exec_model.waveform_block(missing)
            amplitudes, _ = self.sensor.clean_block(block, self.freq_ghz)
            for loop, amplitude in zip(missing, amplitudes):
                self._clean_cache[loop.body] = float(amplitude)
        return [self.sensor.read_amplitude(self._clean_cache[loop.body],
                                           repeats=self.repeats)
                for loop in loops]


class DidtSearch:
    """GA search for the maximum-EM instruction loop.

    Parameters
    ----------
    pdn:
        The power-delivery network of the target chip.
    freq_ghz:
        Core clock during the search.
    em_repeats:
        EM reads averaged per fitness evaluation (noise suppression).
    config:
        GA hyperparameters.
    seed:
        Seed for both the GA and the EM sensor noise.
    """

    def __init__(self, pdn: Optional[PdnModel] = None, freq_ghz: float = 2.4,
                 em_repeats: int = 3, config: GaConfig = GaConfig(),
                 seed: SeedLike = None) -> None:
        self.pdn = pdn or PdnModel(DEFAULT_PDN)
        self.freq_ghz = freq_ghz
        self.sensor = EmSensor(pdn=self.pdn, seed=substream(seed, "didt-em"))
        self.em_repeats = em_repeats
        self.config = config
        self._seed = seed
        self._exec_model = ExecutionModel(freq_ghz=freq_ghz,
                                          window_cycles=FITNESS_WINDOW_CYCLES)
        self.fitness = EmFitness(self._exec_model, self.sensor,
                                 freq_ghz, em_repeats)

    def em_fitness(self, loop: InstructionLoop) -> float:
        """Averaged EM amplitude of a candidate loop (serial entry)."""
        return self.fitness(loop)

    def run(self, polish: bool = True,
            batch: bool = True) -> Tuple[DidtVirus, GaResult]:
        """Evolve a virus; returns it plus the raw GA result.

        With ``polish=True`` (the default) the GA winner goes through a
        local refinement pass: structured square-wave candidates with
        half-periods bracketing the PDN resonance are evaluated with the
        same EM fitness, and the best stimulus overall wins. This
        GA + local-search hybrid converges to the full resonant swing
        far more reliably than the GA alone (quantified by the GA
        ablation bench).

        ``batch=True`` (the default) scores each GA generation in one
        batched fitness call; ``batch=False`` is the serial reference
        path. The two produce bit-identical results -- same virus, same
        history, same evaluation count -- which
        ``tests/test_em_batch.py`` asserts.
        """
        ga = GeneticAlgorithm(self.fitness, config=self.config,
                              seed=substream(self._seed, "didt-ga"),
                              batch_fitness=self.fitness.batch if batch else None)
        result = ga.run()
        best = result.best
        if polish:
            for candidate in self._polish_candidates():
                fitness = self.fitness(candidate)
                if fitness > best.fitness:
                    best = Individual(loop=candidate, fitness=fitness)
        polished = GaResult(best=best, history=result.history + (best.fitness,),
                            evaluations=result.evaluations)
        return self._package(polished), polished

    def _polish_candidates(self):
        """Square waves with half-periods around the PDN resonance.

        Candidates whose bodies would exceed the loop-length limit (a
        legitimately unbuildable stimulus at low resonant frequencies)
        are skipped via an explicit bound check; only
        :class:`~repro.errors.SearchError` is tolerated beyond that, so
        real bugs in square-wave construction surface instead of being
        swallowed.
        """
        from repro.cpu.isa import spec_of
        from repro.cpu.kernels import MAX_LOOP_LEN, square_wave_loop
        res_cycles = self.freq_ghz * 1e9 / self.pdn.params.resonant_freq_hz
        for scale in (0.8, 0.9, 1.0, 1.1, 1.25):
            half = max(1, int(round(res_cycles * scale / 2)))
            high = max(1, round(half / spec_of(InstrClass.SIMD).cycles))
            low = max(1, round(half / spec_of(InstrClass.NOP).cycles))
            if high + low > MAX_LOOP_LEN:
                continue
            try:
                yield square_wave_loop(InstrClass.SIMD, InstrClass.NOP, half)
            except SearchError:
                continue

    def _package(self, result: GaResult) -> DidtVirus:
        analysis = analyze_loop(result.best.loop, pdn=self.pdn,
                                freq_ghz=self.freq_ghz,
                                window_cycles=FITNESS_WINDOW_CYCLES)
        return DidtVirus(
            loop=result.best.loop,
            em_amplitude=result.best.fitness,
            resonant_swing=analysis.resonant_swing,
            droop_mv=analysis.droop_mv,
            generations=len(result.history) - 1,
            evaluations=result.evaluations,
        )


def evolve_didt_virus(seed: SeedLike = None, generations: int = 30,
                      population: int = 40,
                      pdn: Optional[PdnModel] = None) -> DidtVirus:
    """Convenience wrapper: evolve a virus with default settings."""
    config = GaConfig(population_size=population, generations=generations)
    search = DidtSearch(pdn=pdn, config=config, seed=seed)
    virus, _ = search.run()
    return virus


def random_search_baseline(seed: SeedLike = None, evaluations: int = 1200,
                           pdn: Optional[PdnModel] = None,
                           batch_size: int = 64) -> DidtVirus:
    """Ablation baseline: pure random search with the same budget.

    Draws random loops and keeps the best by the same EM fitness; used
    by ``benchmarks/test_bench_ablation_ga.py`` to quantify the GA's
    advantage. Evaluation is batched ``batch_size`` loops at a time;
    under the counter-based noise protocol the result is identical at
    any batch size.
    """
    search = DidtSearch(pdn=pdn, seed=seed)
    ga = GeneticAlgorithm(search.fitness, seed=substream(seed, "rand-baseline"))
    best_loop, best_fit = None, float("-inf")
    remaining = evaluations
    while remaining > 0:
        chunk = [ga._random_loop() for _ in range(min(batch_size, remaining))]
        for loop, fit in zip(chunk, search.fitness.batch(chunk)):
            if fit > best_fit:
                best_loop, best_fit = loop, fit
        remaining -= len(chunk)
    result = GaResult(best=Individual(best_loop, best_fit),
                      history=(best_fit,), evaluations=evaluations)
    return search._package(result)


# ----------------------------------------------------------------------
# Picklable work units for the process-parallel engine
# ----------------------------------------------------------------------

#: One sharded GA-search arm: (integer seed, generations, population,
#: em_repeats). The default PDN is rebuilt inside the unit, so the task
#: tuple stays tiny on the wire.
GaSearchTask = Tuple[int, int, int, int]

#: One sharded random-search arm: (integer seed, evaluation budget).
RandomSearchTask = Tuple[int, int]


def didt_search_unit(task: GaSearchTask) -> Tuple[DidtVirus, GaResult]:
    """Worker body: one full EM-guided GA search, self-contained.

    Rebuilds the search from the integer seed, so the arm computes the
    same virus in any process, at any worker count, in any order --
    the guarantee :func:`repro.core.parallel.parallel_map` relies on.
    Because the unit is a pure function of its task tuple, the
    supervised engine (:mod:`repro.core.supervisor`) can also re-issue
    it after a real worker crash, a deadline hang, or a collateral pool
    break and still converge on a bit-identical virus; a GA arm that
    keeps failing is quarantined as a typed
    :class:`~repro.core.supervisor.UnitFailure` instead of wedging the
    whole search.
    """
    seed, generations, population, em_repeats = task
    config = GaConfig(population_size=population, generations=generations)
    search = DidtSearch(config=config, em_repeats=em_repeats, seed=seed)
    return search.run()


def random_search_unit(task: RandomSearchTask) -> DidtVirus:
    """Worker body: one random-search ablation arm, self-contained."""
    seed, evaluations = task
    return random_search_baseline(seed=seed, evaluations=evaluations)
