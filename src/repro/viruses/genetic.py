"""A generic steady-state genetic algorithm over instruction loops.

The paper (following references [8] and [14]) uses a GA to craft the
instruction loop maximizing radiated EM amplitude. This module provides
the search engine: tournament selection, one-point crossover on loop
bodies, per-gene mutation with an alphabet swap / insert / delete mix,
and elitism. The fitness function is injected, so the same engine serves
the EM-guided dI/dt search and any ablation (e.g. droop-oracle fitness).

The engine supports a batched evaluation mode: pass ``batch_fitness``
and every generation is scored in one call instead of one call per
genome. Genome operators draw no randomness during evaluation, so the
two modes walk identical populations; a batch fitness whose noise
follows a counter-based protocol (see :class:`repro.pdn.em.EmSensor`)
makes them bit-identical end to end -- same best loop, same history,
same evaluation count. Batch implementations are expected to
deduplicate identical genomes within a batch and memoize the
deterministic part of the fitness across generations (see
:class:`repro.viruses.didt.EmFitness`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.cpu.isa import GA_ALPHABET, InstrClass
from repro.cpu.kernels import MAX_LOOP_LEN, MIN_LOOP_LEN, InstructionLoop
from repro.errors import SearchError
from repro.rand import SeedLike, substream

FitnessFn = Callable[[InstructionLoop], float]
BatchFitnessFn = Callable[[Sequence[InstructionLoop]], Sequence[float]]


@dataclass(frozen=True)
class GaConfig:
    """Hyperparameters of the genetic search."""

    population_size: int = 40
    generations: int = 30
    tournament_size: int = 3
    crossover_rate: float = 0.9
    mutation_rate: float = 0.06      # per-gene swap probability
    indel_rate: float = 0.10         # per-individual insert/delete probability
    elite_count: int = 2
    init_min_len: int = 16
    init_max_len: int = 96

    def __post_init__(self) -> None:
        if self.population_size < 4:
            raise SearchError("population must hold at least 4 individuals")
        if self.generations < 1:
            raise SearchError("need at least one generation")
        if not 0 <= self.elite_count < self.population_size:
            raise SearchError("elite_count must be below population size")
        if not MIN_LOOP_LEN <= self.init_min_len <= self.init_max_len <= MAX_LOOP_LEN:
            raise SearchError("initial length bounds outside loop limits")


@dataclass(frozen=True)
class Individual:
    """One evaluated genome."""

    loop: InstructionLoop
    fitness: float


@dataclass(frozen=True)
class GaResult:
    """Outcome of a completed search."""

    best: Individual
    history: Tuple[float, ...]        # best fitness per generation
    evaluations: int

    @property
    def converged(self) -> bool:
        """Did the last third of the run stop improving (<1 % gain)?"""
        if len(self.history) < 6:
            return False
        third = len(self.history) // 3
        early = max(self.history[:-third])
        late = max(self.history)
        return late <= early * 1.01


class GeneticAlgorithm:
    """Steady-state GA over :class:`InstructionLoop` genomes."""

    def __init__(self, fitness: FitnessFn, config: GaConfig = GaConfig(),
                 alphabet: Sequence[InstrClass] = GA_ALPHABET,
                 seed: SeedLike = None,
                 batch_fitness: Optional[BatchFitnessFn] = None) -> None:
        if not alphabet:
            raise SearchError("alphabet cannot be empty")
        self.fitness = fitness
        self.batch_fitness = batch_fitness
        self.config = config
        self.alphabet = tuple(alphabet)
        self._rng = substream(seed, "ga")
        self._evaluations = 0

    # ------------------------------------------------------------------
    # Genome operators
    # ------------------------------------------------------------------
    def _random_loop(self) -> InstructionLoop:
        length = int(self._rng.integers(self.config.init_min_len,
                                        self.config.init_max_len + 1))
        genes = [self.alphabet[int(i)]
                 for i in self._rng.integers(len(self.alphabet), size=length)]
        return InstructionLoop.of(genes)

    def _crossover(self, a: InstructionLoop, b: InstructionLoop) -> InstructionLoop:
        """One-point crossover, clamped to legal lengths."""
        cut_a = int(self._rng.integers(1, len(a)))
        cut_b = int(self._rng.integers(1, len(b)))
        child = list(a.body[:cut_a]) + list(b.body[cut_b:])
        if len(child) < MIN_LOOP_LEN:
            child = list(a.body[:MIN_LOOP_LEN])
        return InstructionLoop.of(child[:MAX_LOOP_LEN])

    def _mutate(self, loop: InstructionLoop) -> InstructionLoop:
        genes = list(loop.body)
        for i in range(len(genes)):
            if self._rng.random() < self.config.mutation_rate:
                genes[i] = self.alphabet[int(self._rng.integers(len(self.alphabet)))]
        if self._rng.random() < self.config.indel_rate:
            if self._rng.random() < 0.5 and len(genes) < MAX_LOOP_LEN:
                pos = int(self._rng.integers(len(genes) + 1))
                genes.insert(pos, self.alphabet[int(self._rng.integers(len(self.alphabet)))])
            elif len(genes) > MIN_LOOP_LEN:
                genes.pop(int(self._rng.integers(len(genes))))
        return InstructionLoop.of(genes)

    def _evaluate_all(self, loops: Sequence[InstructionLoop]) -> List[Individual]:
        """Score a cohort of genomes: one batched call when available.

        Evaluation draws nothing from the GA's own random stream, so
        scoring a whole generation after generating it is operator-order
        identical to the interleaved serial loop.
        """
        loops = list(loops)
        self._evaluations += len(loops)
        if self.batch_fitness is not None:
            scores = list(self.batch_fitness(loops))
            if len(scores) != len(loops):
                raise SearchError(
                    f"batch fitness returned {len(scores)} scores "
                    f"for {len(loops)} genomes")
            return [Individual(loop=loop, fitness=float(score))
                    for loop, score in zip(loops, scores)]
        return [Individual(loop=loop, fitness=float(self.fitness(loop)))
                for loop in loops]

    def _tournament(self, population: List[Individual]) -> Individual:
        picks = self._rng.integers(len(population), size=self.config.tournament_size)
        return max((population[int(i)] for i in picks), key=lambda ind: ind.fitness)

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def run(self, seed_loops: Optional[Sequence[InstructionLoop]] = None,
            progress: Optional[Callable[[int, Individual], None]] = None) -> GaResult:
        """Run the search; returns the best individual and its history.

        ``seed_loops`` lets callers inject known-good starting points
        (e.g. the previous chip's virus when re-characterizing).
        """
        cfg = self.config
        initial: List[InstructionLoop] = list(seed_loops or [])[:cfg.population_size]
        while len(initial) < cfg.population_size:
            initial.append(self._random_loop())
        population = self._evaluate_all(initial)
        history: List[float] = []
        for generation in range(cfg.generations):
            population.sort(key=lambda ind: ind.fitness, reverse=True)
            history.append(population[0].fitness)
            if progress is not None:
                progress(generation, population[0])
            offspring: List[InstructionLoop] = []
            while cfg.elite_count + len(offspring) < cfg.population_size:
                parent_a = self._tournament(population)
                if self._rng.random() < cfg.crossover_rate:
                    parent_b = self._tournament(population)
                    child_loop = self._crossover(parent_a.loop, parent_b.loop)
                else:
                    child_loop = parent_a.loop
                offspring.append(self._mutate(child_loop))
            population = population[:cfg.elite_count] + self._evaluate_all(offspring)
        population.sort(key=lambda ind: ind.fitness, reverse=True)
        history.append(population[0].fitness)
        return GaResult(best=population[0], history=tuple(history),
                        evaluations=self._evaluations)
