"""repro: reproduction of "Measuring and Exploiting Guardbands of
Server-Grade ARMv8 CPU Cores and DRAMs" (Tovletoglou et al., DSN 2018).

The library simulates the paper's X-Gene2 testbed end to end -- sigma
chips with calibrated Vmin behaviour, a PDN/EM model, GA-evolved dI/dt
viruses, a DRAM retention substrate with real SECDED ECC, and the
PID-controlled thermal testbed -- plus the characterization framework
and the exploitation pipeline that turn measurements into safe operating
points and energy savings.

Quick start::

    from repro.experiments import run_figure4
    result = run_figure4(seed=1)
    print(result.format())

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.version import __version__

from repro.rand import DEFAULT_SEED, make_rng, substream
from repro.soc import (
    Chip,
    ProcessCorner,
    SLIMpro,
    SocTopology,
    XGene2Platform,
    build_platform,
    build_reference_chips,
)
from repro.core import (
    CampaignExecutor,
    CampaignPlan,
    GuardbandReport,
    ParallelCampaignExecutor,
    SafeOperatingPoint,
    SupervisedPool,
    UnitFailure,
    VminPredictor,
    VminSearch,
    guardband_report,
    select_safe_points,
)
from repro.errors import SupervisionError
from repro.viruses import evolve_didt_virus, dpbench_suite, all_component_viruses
from repro.dram import (
    BitErrorModel,
    DramPowerModel,
    MemoryControlUnit,
    RetentionModel,
    SecdedCode,
)
from repro.workloads import (
    JammerDetector,
    figure5_mix,
    nas_suite,
    rodinia_suite,
    spec_suite,
)

__all__ = [
    "BitErrorModel",
    "CampaignExecutor",
    "CampaignPlan",
    "Chip",
    "DEFAULT_SEED",
    "DramPowerModel",
    "GuardbandReport",
    "JammerDetector",
    "MemoryControlUnit",
    "ParallelCampaignExecutor",
    "ProcessCorner",
    "RetentionModel",
    "SLIMpro",
    "SafeOperatingPoint",
    "SecdedCode",
    "SocTopology",
    "SupervisedPool",
    "SupervisionError",
    "UnitFailure",
    "VminPredictor",
    "VminSearch",
    "XGene2Platform",
    "__version__",
    "all_component_viruses",
    "build_platform",
    "build_reference_chips",
    "dpbench_suite",
    "evolve_didt_virus",
    "figure5_mix",
    "guardband_report",
    "make_rng",
    "nas_suite",
    "rodinia_suite",
    "select_safe_points",
    "spec_suite",
    "substream",
]
