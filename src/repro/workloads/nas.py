"""NAS Parallel Benchmark workload models (Figure 6 comparators).

The paper contrasts the EM virus's Vmin against "conventional workloads
like NAS". Swings are calibrated to sit well below the virus's resonant
swing, producing the clear gap of Figure 6.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import WorkloadError
from repro.workloads.base import CpuWorkload, DramProfile, Workload

_SUITE = "nas"

NAS_WORKLOADS: Dict[str, Workload] = {
    "is": Workload(
        CpuWorkload("is", _SUITE, resonant_swing=0.30, ipc=0.80,
                    fp_ratio=0.00, mem_ratio=0.42, branch_ratio=0.14,
                    l2_miss_ratio=0.15, sdc_bias=0.15),
        DramProfile(footprint_mb=1024, hot_row_fraction=0.50,
                    data_entropy=0.88, bandwidth_gbs=10.0),
    ),
    "cg": Workload(
        CpuWorkload("cg", _SUITE, resonant_swing=0.34, ipc=0.95,
                    fp_ratio=0.30, mem_ratio=0.40, branch_ratio=0.06,
                    l2_miss_ratio=0.16, sdc_bias=0.30),
        DramProfile(footprint_mb=900, hot_row_fraction=0.45,
                    data_entropy=0.80, bandwidth_gbs=9.0),
    ),
    "ep": Workload(
        CpuWorkload("ep", _SUITE, resonant_swing=0.37, ipc=1.90,
                    fp_ratio=0.42, mem_ratio=0.05, branch_ratio=0.09,
                    l2_miss_ratio=0.00, sdc_bias=0.45),
        DramProfile(footprint_mb=16, hot_row_fraction=0.98,
                    data_entropy=0.85, bandwidth_gbs=0.2),
    ),
    "mg": Workload(
        CpuWorkload("mg", _SUITE, resonant_swing=0.42, ipc=1.35,
                    fp_ratio=0.40, mem_ratio=0.32, branch_ratio=0.05,
                    l2_miss_ratio=0.11, sdc_bias=0.35),
        DramProfile(footprint_mb=3400, hot_row_fraction=0.40,
                    data_entropy=0.82, bandwidth_gbs=11.0),
    ),
    "lu": Workload(
        CpuWorkload("lu", _SUITE, resonant_swing=0.44, ipc=1.50,
                    fp_ratio=0.44, mem_ratio=0.28, branch_ratio=0.06,
                    l2_miss_ratio=0.07, sdc_bias=0.35),
        DramProfile(footprint_mb=700, hot_row_fraction=0.60,
                    data_entropy=0.81, bandwidth_gbs=6.0),
    ),
    "bt": Workload(
        CpuWorkload("bt", _SUITE, resonant_swing=0.45, ipc=1.55,
                    fp_ratio=0.46, mem_ratio=0.27, branch_ratio=0.05,
                    l2_miss_ratio=0.06, sdc_bias=0.35),
        DramProfile(footprint_mb=1200, hot_row_fraction=0.55,
                    data_entropy=0.83, bandwidth_gbs=7.0),
    ),
    "sp": Workload(
        CpuWorkload("sp", _SUITE, resonant_swing=0.48, ipc=1.45,
                    fp_ratio=0.47, mem_ratio=0.30, branch_ratio=0.04,
                    l2_miss_ratio=0.09, sdc_bias=0.35),
        DramProfile(footprint_mb=1100, hot_row_fraction=0.50,
                    data_entropy=0.84, bandwidth_gbs=9.5),
    ),
    "ft": Workload(
        CpuWorkload("ft", _SUITE, resonant_swing=0.52, ipc=1.60,
                    fp_ratio=0.50, mem_ratio=0.29, branch_ratio=0.03,
                    l2_miss_ratio=0.12, sdc_bias=0.40),
        DramProfile(footprint_mb=5200, hot_row_fraction=0.35,
                    data_entropy=0.87, bandwidth_gbs=13.0),
    ),
}


def nas_workload(name: str) -> Workload:
    """Look up one NAS workload by name."""
    if name not in NAS_WORKLOADS:
        raise WorkloadError(
            f"unknown NAS workload {name!r}; known: {sorted(NAS_WORKLOADS)}"
        )
    return NAS_WORKLOADS[name]


def nas_suite() -> List[Workload]:
    """All NAS kernels in ascending-swing order."""
    return sorted(NAS_WORKLOADS.values(), key=lambda w: w.resonant_swing)
