"""The end-to-end Jammer (DoS-attack) detector application (Figure 9).

The paper's showcase workload: a multi-threaded detector that watches
the wireless spectrum through Software-Defined-Radio modules for devices
that could mount denial-of-service attacks on IoT networks. Four
parallel instances saturate CPU and memory bandwidth while a
Quality-of-Service constraint (bounded detection response time) must
hold.

Our substitute implements the same computational shape end-to-end:

- a synthetic SDR front-end produces per-channel power-spectral-density
  frames, with occasional injected jammer bursts (wideband energy
  spikes);
- each detector instance runs a sliding-window energy detector with an
  adaptive noise floor, flagging channels whose short-term energy
  exceeds the floor by a threshold;
- instances run as simkit processes; frame processing time scales with
  the core's frequency, so undervolting at constant frequency leaves
  the QoS untouched -- the property the paper's experiment relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.errors import ConfigurationError, WorkloadError
from repro.rand import SeedLike, substream
from repro.simkit import Simulator
from repro.workloads.base import CpuWorkload, DramProfile, Workload

#: CPU/DRAM signature of one Jammer instance (calibrated: four instances
#: saturate the cores while generating modest DRAM traffic, giving the
#: DRAM domain the 33.3 % refresh-dominated saving of Figure 9).
JAMMER_WORKLOAD = Workload(
    CpuWorkload("jammer", "edge", resonant_swing=0.40, ipc=1.50,
                fp_ratio=0.35, mem_ratio=0.25, branch_ratio=0.10,
                l2_miss_ratio=0.05, sdc_bias=0.25),
    DramProfile(footprint_mb=1500, hot_row_fraction=0.40,
                data_entropy=0.85, bandwidth_gbs=0.65),
)


@dataclass(frozen=True)
class JammerConfig:
    """Detector parameters.

    Attributes
    ----------
    channels:
        Spectrum channels each instance monitors.
    frame_samples:
        PSD bins per frame.
    frame_period_s:
        SDR frame arrival period.
    window_frames:
        Sliding-window length for the adaptive noise floor.
    threshold_db:
        Detection threshold above the noise floor.
    qos_latency_s:
        QoS bound: a burst must be flagged within this many seconds of
        its onset.
    """

    channels: int = 16
    frame_samples: int = 256
    frame_period_s: float = 0.01
    window_frames: int = 8
    threshold_db: float = 9.0
    qos_latency_s: float = 0.05

    def __post_init__(self) -> None:
        if min(self.channels, self.frame_samples, self.window_frames) <= 0:
            raise ConfigurationError("jammer config sizes must be positive")
        if self.frame_period_s <= 0 or self.qos_latency_s <= 0:
            raise ConfigurationError("jammer periods must be positive")


@dataclass
class JammerRunReport:
    """Outcome of one multi-instance detection run."""

    instances: int
    bursts_injected: int
    bursts_detected: int
    false_alarms: int
    max_latency_s: float
    qos_met: bool

    @property
    def detection_rate(self) -> float:
        if self.bursts_injected == 0:
            return 1.0
        return self.bursts_detected / self.bursts_injected


class SdrFrontend:
    """Synthetic SDR stream: noise-floor PSD frames + jammer bursts."""

    def __init__(self, config: JammerConfig, burst_rate_hz: float = 2.0,
                 burst_duration_s: float = 0.08, snr_db: float = 15.0,
                 seed: SeedLike = None) -> None:
        if burst_rate_hz < 0 or burst_duration_s <= 0:
            raise WorkloadError("burst parameters out of range")
        self.config = config
        self.burst_rate_hz = burst_rate_hz
        self.burst_duration_s = burst_duration_s
        self.snr_db = snr_db
        self._rng = substream(seed, "sdr-frontend")
        self.bursts: List[Tuple[float, float, int]] = []  # (start, end, channel)

    def schedule_bursts(self, duration_s: float) -> None:
        """Draw the burst timeline for a run (Poisson arrivals)."""
        self.bursts.clear()
        t = 0.0
        while True:
            t += float(self._rng.exponential(1.0 / self.burst_rate_hz)) \
                if self.burst_rate_hz > 0 else duration_s
            if t >= duration_s:
                break
            channel = int(self._rng.integers(self.config.channels))
            self.bursts.append((t, t + self.burst_duration_s, channel))

    def frame(self, now_s: float) -> np.ndarray:
        """PSD frame (channels x samples) at virtual time ``now_s``."""
        cfg = self.config
        psd = self._rng.normal(0.0, 1.0, size=(cfg.channels, cfg.frame_samples)) ** 2
        for start, end, channel in self.bursts:
            if start <= now_s < end:
                boost = 10.0 ** (self.snr_db / 10.0)
                psd[channel, :] *= boost
        return psd


class JammerDetector:
    """Multi-instance spectrum anomaly detector on the event loop."""

    def __init__(self, config: JammerConfig = JammerConfig(), instances: int = 4,
                 seed: SeedLike = None) -> None:
        if instances <= 0:
            raise WorkloadError("need at least one instance")
        self.config = config
        self.instances = instances
        self._seed = seed

    def run(self, duration_s: float = 2.0, burst_rate_hz: float = 2.0,
            processing_slowdown: float = 1.0) -> JammerRunReport:
        """Execute a detection run in virtual time.

        ``processing_slowdown`` scales per-frame compute time (1.0 =
        nominal frequency). Undervolting at constant frequency keeps it
        at 1.0; frequency scaling would raise it and eventually break
        QoS -- the tradeoff the paper's QoS constraint guards.
        """
        if duration_s <= 0:
            raise WorkloadError("duration must be positive")
        sim = Simulator()
        cfg = self.config
        frontends = [SdrFrontend(cfg, burst_rate_hz=burst_rate_hz,
                                 seed=substream(self._seed, f"sdr-{i}"))
                     for i in range(self.instances)]
        for fe in frontends:
            fe.schedule_bursts(duration_s)
        detections: List[List[Tuple[float, int]]] = [[] for _ in range(self.instances)]
        windows = [np.ones((cfg.channels, cfg.window_frames)) for _ in range(self.instances)]
        frame_compute_s = cfg.frame_period_s * 0.6 * processing_slowdown

        def make_tick(index: int):
            def tick() -> None:
                now = sim.now
                psd = frontends[index].frame(now)
                energy = psd.mean(axis=1)
                window = windows[index]
                floor = np.median(window, axis=1)
                ratio_db = 10.0 * np.log10(np.maximum(energy, 1e-12) /
                                           np.maximum(floor, 1e-12))
                for channel in np.nonzero(ratio_db > cfg.threshold_db)[0]:
                    detections[index].append((now + frame_compute_s, int(channel)))
                window[:, :-1] = window[:, 1:]
                window[:, -1] = energy
                next_time = now + cfg.frame_period_s + frame_compute_s \
                    if frame_compute_s > cfg.frame_period_s else now + cfg.frame_period_s
                if next_time < duration_s:
                    sim.schedule_at(next_time, tick)
            return tick

        for i in range(self.instances):
            sim.schedule(0.0, make_tick(i))
        sim.run()
        return self._score(frontends, detections)

    def _score(self, frontends: List[SdrFrontend],
               detections: List[List[Tuple[float, int]]]) -> JammerRunReport:
        injected = detected = false_alarms = 0
        max_latency = 0.0
        for fe, dets in zip(frontends, detections):
            matched_dets = set()
            for start, end, channel in fe.bursts:
                injected += 1
                hits = [t for j, (t, ch) in enumerate(dets)
                        if ch == channel and start <= t <= end + self.config.qos_latency_s
                        and j not in matched_dets]
                if hits:
                    detected += 1
                    max_latency = max(max_latency, min(hits) - start)
            for j, (t, ch) in enumerate(dets):
                in_burst = any(ch == channel and start <= t <= end + self.config.qos_latency_s
                               for start, end, channel in fe.bursts)
                if not in_burst:
                    false_alarms += 1
        qos_met = max_latency <= self.config.qos_latency_s and \
            (injected == 0 or detected == injected)
        return JammerRunReport(
            instances=self.instances,
            bursts_injected=injected,
            bursts_detected=detected,
            false_alarms=false_alarms,
            max_latency_s=max_latency,
            qos_met=qos_met,
        )
