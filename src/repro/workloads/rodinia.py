"""Rodinia HPC workload models (Figure 8's DRAM characterization).

The paper runs four memory-intensive Rodinia applications -- backprop,
kmeans, nw (Needleman-Wunsch) and srad -- under the 35x relaxed refresh
period and reports (a) their BER spread (up to 2.5x between workloads,
all below the random DPBench) and (b) the DRAM power savings each
enables (27.3 % for nw down to 9.4 % for kmeans).

DRAM profiles are calibrated to land both results: the BER comes from
each workload's data entropy and hot-row (inherent-refresh) coverage,
the power saving from its sustained bandwidth.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import WorkloadError
from repro.workloads.base import CpuWorkload, DramProfile, Workload

_SUITE = "rodinia"

RODINIA_WORKLOADS: Dict[str, Workload] = {
    # Neural-net training: moderate bandwidth, weight matrices re-swept
    # every epoch (decent inherent refresh), mixed-entropy float data.
    "backprop": Workload(
        CpuWorkload("backprop", _SUITE, resonant_swing=0.41, ipc=1.30,
                    fp_ratio=0.40, mem_ratio=0.34, branch_ratio=0.06,
                    l2_miss_ratio=0.12, sdc_bias=0.35),
        DramProfile(footprint_mb=2200, hot_row_fraction=0.64,
                    data_entropy=0.75, bandwidth_gbs=16.0),
    ),
    # Iterative clustering: the whole point set is streamed every
    # iteration -- near-peak bandwidth and the best inherent refresh,
    # with low-entropy centroid-dominated data.
    "kmeans": Workload(
        CpuWorkload("kmeans", _SUITE, resonant_swing=0.38, ipc=1.10,
                    fp_ratio=0.30, mem_ratio=0.40, branch_ratio=0.08,
                    l2_miss_ratio=0.17, sdc_bias=0.30),
        DramProfile(footprint_mb=3100, hot_row_fraction=0.75,
                    data_entropy=0.55, bandwidth_gbs=33.0),
    ),
    # Sequence alignment: a wavefront sweeps a large score matrix once;
    # little re-access (poor inherent refresh), high-entropy scores,
    # low sustained bandwidth -- the highest BER and the biggest power
    # saving of the four.
    "nw": Workload(
        CpuWorkload("nw", _SUITE, resonant_swing=0.36, ipc=0.90,
                    fp_ratio=0.05, mem_ratio=0.44, branch_ratio=0.12,
                    l2_miss_ratio=0.15, sdc_bias=0.20),
        DramProfile(footprint_mb=2048, hot_row_fraction=0.50,
                    data_entropy=0.90, bandwidth_gbs=3.4),
    ),
    # Speckle-reducing anisotropic diffusion: stencil over an image,
    # neighbours re-touched each sweep, moderate everything.
    "srad": Workload(
        CpuWorkload("srad", _SUITE, resonant_swing=0.43, ipc=1.40,
                    fp_ratio=0.42, mem_ratio=0.33, branch_ratio=0.05,
                    l2_miss_ratio=0.10, sdc_bias=0.35),
        DramProfile(footprint_mb=1600, hot_row_fraction=0.68,
                    data_entropy=0.80, bandwidth_gbs=10.0),
    ),
}


def rodinia_workload(name: str) -> Workload:
    """Look up one Rodinia workload by name."""
    if name not in RODINIA_WORKLOADS:
        raise WorkloadError(
            f"unknown Rodinia workload {name!r}; known: {sorted(RODINIA_WORKLOADS)}"
        )
    return RODINIA_WORKLOADS[name]


def rodinia_suite() -> List[Workload]:
    """The four applications in the paper's reporting order."""
    return [RODINIA_WORKLOADS[name] for name in ("backprop", "kmeans", "nw", "srad")]
