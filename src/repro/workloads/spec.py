"""SPEC CPU2006 workload models (the 10 programs of Figure 4).

Each entry's ``resonant_swing`` is calibrated so the reference TTT chip
reports the paper's Vmin ladder (860..885 mV for the most robust core at
2.4 GHz), with the same program ordering on every chip -- the paper's
observation that "workload-to-workload variation follows similar trends
across the 3 chips". Counter features follow each program's published
character: mcf is memory-latency bound with low IPC; milc/bwaves are
FP-vector heavy; gcc is branchy integer code, and so on.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import WorkloadError
from repro.workloads.base import CpuWorkload, DramProfile, Workload

_SUITE = "spec2006"

#: Calibrated signatures; swing ascending roughly tracks FP intensity.
SPEC_WORKLOADS: Dict[str, Workload] = {
    "mcf": Workload(
        CpuWorkload("mcf", _SUITE, resonant_swing=0.28, ipc=0.45,
                    fp_ratio=0.00, mem_ratio=0.45, branch_ratio=0.22,
                    l2_miss_ratio=0.18, sdc_bias=0.20),
        DramProfile(footprint_mb=1700, hot_row_fraction=0.35,
                    data_entropy=0.65, bandwidth_gbs=6.5),
    ),
    "gcc": Workload(
        CpuWorkload("gcc", _SUITE, resonant_swing=0.33, ipc=1.10,
                    fp_ratio=0.01, mem_ratio=0.32, branch_ratio=0.24,
                    l2_miss_ratio=0.06, sdc_bias=0.15),
        DramProfile(footprint_mb=900, hot_row_fraction=0.55,
                    data_entropy=0.70, bandwidth_gbs=3.0),
    ),
    "gromacs": Workload(
        CpuWorkload("gromacs", _SUITE, resonant_swing=0.39, ipc=1.60,
                    fp_ratio=0.38, mem_ratio=0.22, branch_ratio=0.10,
                    l2_miss_ratio=0.02, sdc_bias=0.35),
        DramProfile(footprint_mb=30, hot_row_fraction=0.92,
                    data_entropy=0.80, bandwidth_gbs=0.8),
    ),
    "dealII": Workload(
        CpuWorkload("dealII", _SUITE, resonant_swing=0.43, ipc=1.75,
                    fp_ratio=0.32, mem_ratio=0.28, branch_ratio=0.13,
                    l2_miss_ratio=0.03, sdc_bias=0.30),
        DramProfile(footprint_mb=800, hot_row_fraction=0.70,
                    data_entropy=0.75, bandwidth_gbs=2.2),
    ),
    "namd": Workload(
        CpuWorkload("namd", _SUITE, resonant_swing=0.46, ipc=1.85,
                    fp_ratio=0.45, mem_ratio=0.20, branch_ratio=0.08,
                    l2_miss_ratio=0.01, sdc_bias=0.40),
        DramProfile(footprint_mb=50, hot_row_fraction=0.95,
                    data_entropy=0.82, bandwidth_gbs=0.6),
    ),
    "cactusADM": Workload(
        CpuWorkload("cactusADM", _SUITE, resonant_swing=0.49, ipc=1.40,
                    fp_ratio=0.50, mem_ratio=0.30, branch_ratio=0.04,
                    l2_miss_ratio=0.08, sdc_bias=0.40),
        DramProfile(footprint_mb=700, hot_row_fraction=0.60,
                    data_entropy=0.78, bandwidth_gbs=6.0),
    ),
    "lbm": Workload(
        CpuWorkload("lbm", _SUITE, resonant_swing=0.51, ipc=1.30,
                    fp_ratio=0.48, mem_ratio=0.35, branch_ratio=0.02,
                    l2_miss_ratio=0.14, sdc_bias=0.40),
        DramProfile(footprint_mb=420, hot_row_fraction=0.80,
                    data_entropy=0.85, bandwidth_gbs=12.0),
    ),
    "leslie3d": Workload(
        CpuWorkload("leslie3d", _SUITE, resonant_swing=0.52, ipc=1.55,
                    fp_ratio=0.52, mem_ratio=0.28, branch_ratio=0.04,
                    l2_miss_ratio=0.09, sdc_bias=0.40),
        DramProfile(footprint_mb=130, hot_row_fraction=0.75,
                    data_entropy=0.83, bandwidth_gbs=7.5),
    ),
    "bwaves": Workload(
        CpuWorkload("bwaves", _SUITE, resonant_swing=0.55, ipc=1.65,
                    fp_ratio=0.55, mem_ratio=0.30, branch_ratio=0.03,
                    l2_miss_ratio=0.10, sdc_bias=0.45),
        DramProfile(footprint_mb=880, hot_row_fraction=0.65,
                    data_entropy=0.84, bandwidth_gbs=9.0),
    ),
    "milc": Workload(
        CpuWorkload("milc", _SUITE, resonant_swing=0.595, ipc=1.25,
                    fp_ratio=0.58, mem_ratio=0.33, branch_ratio=0.03,
                    l2_miss_ratio=0.13, sdc_bias=0.45),
        DramProfile(footprint_mb=680, hot_row_fraction=0.58,
                    data_entropy=0.86, bandwidth_gbs=8.0),
    ),
}


def spec_workload(name: str) -> Workload:
    """Look up one SPEC workload by name."""
    if name not in SPEC_WORKLOADS:
        raise WorkloadError(
            f"unknown SPEC workload {name!r}; known: {sorted(SPEC_WORKLOADS)}"
        )
    return SPEC_WORKLOADS[name]


def spec_suite() -> List[Workload]:
    """All 10 programs in ascending-swing (Vmin) order."""
    return sorted(SPEC_WORKLOADS.values(), key=lambda w: w.resonant_swing)
