"""Multiprogram workload mixes (the Figure 5 scenario).

When different programs run on different cores their resonant current
phases decorrelate: each core excites the shared PDN with an independent
phase, so the per-core worst-case excitation averages out rather than
adding up. The mix's effective resonant swing is therefore the *mean* of
its members' swings -- which is why the paper's 8-benchmark mix has a
chip Vmin (915 mV on TTT including the weakest core) below what the most
aggressive member alone would produce on that core.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.errors import WorkloadError
from repro.soc.chip import Chip
from repro.soc.topology import CoreId, NUM_CORES
from repro.workloads.base import Workload
from repro.workloads.spec import spec_workload

#: The eight programs of the paper's Figure 5 experiment.
FIGURE5_BENCHMARKS = (
    "bwaves", "cactusADM", "dealII", "gromacs",
    "leslie3d", "mcf", "milc", "namd",
)


@dataclass(frozen=True)
class MultiprogramMix:
    """A set of workloads pinned one-per-core."""

    members: tuple

    def __post_init__(self) -> None:
        if not 1 <= len(self.members) <= NUM_CORES:
            raise WorkloadError(f"a mix holds 1..{NUM_CORES} workloads")

    @classmethod
    def of(cls, workloads: Sequence[Workload]) -> "MultiprogramMix":
        return cls(tuple(workloads))

    @property
    def name(self) -> str:
        return "mix(" + "+".join(w.name for w in self.members) + ")"

    @property
    def resonant_swing(self) -> float:
        """Effective chip-level swing: decorrelated phase average."""
        return sum(w.resonant_swing for w in self.members) / len(self.members)

    def placement(self) -> Dict[CoreId, Workload]:
        """Pin members to cores in linear order."""
        return {CoreId.from_linear(i): w for i, w in enumerate(self.members)}

    def chip_vmin_mv(self, chip: Chip, freq_ghz: float = 2.4) -> float:
        """Vmin of the whole mix: the worst occupied core's Vmin."""
        return max(
            chip.vmin_mv(core, self.resonant_swing, freq_ghz)
            for core in self.placement()
        )

    def per_pmd_vmin_mv(self, chip: Chip, freq_ghz: float = 2.4) -> Dict[int, float]:
        """Vmin per PMD: the binding constraint for per-PMD frequency
        scaling (the Figure 5 ladder)."""
        result: Dict[int, float] = {}
        for core in self.placement():
            vmin = chip.vmin_mv(core, self.resonant_swing, freq_ghz)
            result[core.pmd] = max(result.get(core.pmd, 0.0), vmin)
        return result


def figure5_mix() -> MultiprogramMix:
    """The paper's 8-benchmark simultaneous workload."""
    return MultiprogramMix.of([spec_workload(n) for n in FIGURE5_BENCHMARKS])


#: Phase-alignment gain per additional core for copies of one program.
#: Identical code on every core executes the same loop shapes, so the
#: per-core resonant excitations partially align instead of averaging
#: out -- multi-process runs of a single program are *more* stressful
#: than the program alone, one of the paper's "multi-process setup"
#: observations.
HOMOGENEOUS_ALIGNMENT_PER_CORE = 0.06


@dataclass(frozen=True)
class HomogeneousMix:
    """N copies of one program pinned to N cores (multi-process setup)."""

    workload: Workload
    copies: int

    def __post_init__(self) -> None:
        if not 1 <= self.copies <= NUM_CORES:
            raise WorkloadError(f"copies must be 1..{NUM_CORES}")

    @property
    def name(self) -> str:
        return f"{self.workload.name}x{self.copies}"

    @property
    def resonant_swing(self) -> float:
        """Member swing amplified by partial phase alignment, capped at 1."""
        gain = 1.0 + HOMOGENEOUS_ALIGNMENT_PER_CORE * (self.copies - 1)
        return min(1.0, self.workload.resonant_swing * gain)

    def placement(self) -> Dict[CoreId, Workload]:
        return {CoreId.from_linear(i): self.workload
                for i in range(self.copies)}

    def chip_vmin_mv(self, chip: Chip, freq_ghz: float = 2.4) -> float:
        """Vmin of the multi-process run: the worst occupied core."""
        return max(
            chip.vmin_mv(core, self.resonant_swing, freq_ghz)
            for core in self.placement()
        )
