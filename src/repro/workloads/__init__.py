"""Behavioural workload models.

The paper's characterization consumes only each workload's *signatures*
-- supply-current activity for the CPU side, and footprint / access
pattern / stored-data statistics for the DRAM side -- never the
workloads' computed outputs. This package models the benchmark suites
the paper runs at that signature level:

- :mod:`repro.workloads.spec` -- the 10 SPEC CPU2006 programs of Fig. 4;
- :mod:`repro.workloads.nas` -- the NAS parallel benchmarks of Fig. 6;
- :mod:`repro.workloads.rodinia` -- the four HPC memory-intensive
  applications of Fig. 8 (backprop, kmeans, nw, srad);
- :mod:`repro.workloads.stencil` -- stencil kernels with access-pattern
  scheduling (the IOLTS'17 study the paper cites as reference [12]);
- :mod:`repro.workloads.jammer` -- the end-to-end multi-instance DoS
  jammer detector of Fig. 9, with its QoS constraint;
- :mod:`repro.workloads.mixes` -- multiprogram mixes (the 8-benchmark
  workload of Fig. 5);
- :mod:`repro.workloads.traces` -- DRAM row-access trace generation from
  DRAM profiles.

Calibrated signature values (each workload's ``resonant_swing``,
``hot_row_fraction`` etc.) are derived from the paper's measured
figures; see DESIGN.md section 2 for the substitution rationale.
"""

from repro.workloads.base import CpuWorkload, DramProfile, Workload
from repro.workloads.spec import SPEC_WORKLOADS, spec_workload, spec_suite
from repro.workloads.nas import NAS_WORKLOADS, nas_suite, nas_workload
from repro.workloads.rodinia import RODINIA_WORKLOADS, rodinia_suite, rodinia_workload
from repro.workloads.mixes import MultiprogramMix, figure5_mix
from repro.workloads.stencil import StencilWorkload, StencilScheduler
from repro.workloads.jammer import JammerDetector, JammerConfig, JammerRunReport
from repro.workloads.traces import generate_trace

__all__ = [
    "CpuWorkload",
    "DramProfile",
    "JammerConfig",
    "JammerDetector",
    "JammerRunReport",
    "MultiprogramMix",
    "NAS_WORKLOADS",
    "RODINIA_WORKLOADS",
    "SPEC_WORKLOADS",
    "StencilScheduler",
    "StencilWorkload",
    "Workload",
    "figure5_mix",
    "generate_trace",
    "nas_suite",
    "nas_workload",
    "rodinia_suite",
    "rodinia_workload",
    "spec_suite",
    "spec_workload",
]
