"""DRAM row-access trace generation from workload profiles.

Turns a :class:`~repro.workloads.base.DramProfile` into a concrete
:class:`~repro.dram.refresh.AccessTrace` for one bank: hot rows are
re-activated at intervals well below the refresh period, cold rows are
touched once (or never) within the window. The refresh controller then
measures per-row exposure, closing the loop between the behavioural
profile and the mechanistic inherent-refresh model -- tests assert that
the measured covered fraction matches the profile's hot_row_fraction.
"""

from __future__ import annotations

from typing import Optional

from repro.dram.refresh import AccessTrace
from repro.errors import WorkloadError
from repro.rand import SeedLike, substream
from repro.workloads.base import DramProfile


def generate_trace(profile: DramProfile, trefp_s: float, rows: int = 512,
                   window_s: Optional[float] = None,
                   seed: SeedLike = None) -> AccessTrace:
    """Sample a bank-level access trace consistent with ``profile``.

    Parameters
    ----------
    profile:
        The workload's DRAM signature.
    trefp_s:
        The refresh period the trace will be evaluated against; hot rows
        get inter-access gaps uniformly in [trefp/8, trefp/2], cold rows
        a single access (their exposure stays at the refresh period).
    rows:
        How many footprint rows to sample into the trace (a bank-sized
        statistical sample, not the whole footprint).
    window_s:
        Observation window; defaults to 4 refresh periods -- long enough
        that an unsplit refresh interval always falls fully inside the
        window, so cold rows read their true TREFP exposure rather than
        an edge-clipped fraction of it.
    seed:
        Deterministic stream for the sampling.
    """
    if rows <= 0:
        raise WorkloadError("rows must be positive")
    if trefp_s <= 0:
        raise WorkloadError("refresh period must be positive")
    window = window_s if window_s is not None else 4.0 * trefp_s
    rng = substream(seed, f"trace-{profile.footprint_mb}-{profile.hot_row_fraction}")
    hot_count = int(round(rows * profile.hot_row_fraction))
    events = []
    row_ids = rng.permutation(rows * 4)[:rows]  # sparse row numbering
    for i, row in enumerate(row_ids):
        row = int(row)
        if i < hot_count:
            # Hot row: periodic re-activation faster than refresh.
            gap = float(rng.uniform(trefp_s / 8.0, trefp_s / 2.0))
            t = float(rng.uniform(0.0, gap))
            while t < window:
                events.append((t, row))
                t += gap
        else:
            # Cold row: one streaming touch somewhere in the window.
            events.append((float(rng.uniform(0.0, window)), row))
    return AccessTrace.from_events(window, events)
