"""Workload signature dataclasses.

A workload's behaviour is summarized by the quantities the
characterization framework actually consumes:

- ``resonant_swing`` -- the normalized supply-current swing at the PDN
  resonance the workload produces while running (drives Vmin through
  the chip's droop model);
- performance-counter style features (IPC, FP/memory/branch ratios) --
  inputs to the Vmin predictor;
- an optional :class:`DramProfile` -- footprint, hot-row fraction, data
  entropy and sustained bandwidth (drives the DRAM BER and power
  models).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import WorkloadError


@dataclass(frozen=True)
class DramProfile:
    """DRAM-side signature of a workload.

    Attributes
    ----------
    footprint_mb:
        Resident DRAM footprint in MiB.
    hot_row_fraction:
        Share of the footprint's rows re-activated faster than the
        (relaxed) refresh period -- those rows are inherently refreshed.
    data_entropy:
        Bit-level entropy of the stored data in [0, 1]; 0 behaves like a
        solid pattern, 1 like the random DPBench.
    bandwidth_gbs:
        Sustained DRAM bandwidth in GB/s (drives access power).
    """

    footprint_mb: float
    hot_row_fraction: float
    data_entropy: float
    bandwidth_gbs: float

    def __post_init__(self) -> None:
        if self.footprint_mb <= 0:
            raise WorkloadError("footprint must be positive")
        if not 0.0 <= self.hot_row_fraction <= 1.0:
            raise WorkloadError("hot_row_fraction must be in [0, 1]")
        if not 0.0 <= self.data_entropy <= 1.0:
            raise WorkloadError("data_entropy must be in [0, 1]")
        if self.bandwidth_gbs < 0:
            raise WorkloadError("bandwidth cannot be negative")


@dataclass(frozen=True)
class CpuWorkload:
    """CPU-side signature of a named benchmark.

    ``resonant_swing`` values are calibrated to the paper's per-program
    Vmin measurements (Figures 4 and 6); counter features are modelled
    on each program's published characterization and feed the Vmin
    predictor.
    """

    name: str
    suite: str
    resonant_swing: float
    ipc: float
    fp_ratio: float
    mem_ratio: float
    branch_ratio: float
    l2_miss_ratio: float
    sdc_bias: float = 0.25

    def __post_init__(self) -> None:
        if not 0.0 <= self.resonant_swing <= 1.0:
            raise WorkloadError(f"{self.name}: swing must be in [0, 1]")
        if self.ipc <= 0:
            raise WorkloadError(f"{self.name}: IPC must be positive")
        for field_name in ("fp_ratio", "mem_ratio", "branch_ratio",
                           "l2_miss_ratio", "sdc_bias"):
            value = getattr(self, field_name)
            if not 0.0 <= value <= 1.0:
                raise WorkloadError(f"{self.name}: {field_name} must be in [0, 1]")

    def predictor_features(self) -> np.ndarray:
        """Feature vector (with intercept) for the Vmin predictor."""
        return np.array([
            1.0, self.ipc, self.fp_ratio, self.mem_ratio,
            self.branch_ratio, self.l2_miss_ratio,
        ])


@dataclass(frozen=True)
class Workload:
    """A complete workload: CPU signature plus optional DRAM profile."""

    cpu: CpuWorkload
    dram: Optional[DramProfile] = None

    @property
    def name(self) -> str:
        return self.cpu.name

    @property
    def resonant_swing(self) -> float:
        return self.cpu.resonant_swing
