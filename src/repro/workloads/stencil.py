"""Stencil workloads and access-pattern scheduling (paper ref [12]).

Section IV.C closes with the paper's own earlier IOLTS'17 result: by
reordering memory accesses so every row is re-touched within a target
period shorter than the scheduled refresh, stencil algorithms inherently
refresh their footprint and sidestep retention errors entirely.

We model a 2-D stencil over a grid whose rows map to DRAM rows, and two
schedules:

- ``row_sweep`` -- the natural order: one full pass over the grid per
  iteration, so each DRAM row's re-access interval equals the whole
  sweep time;
- ``blocked`` -- the scheduled order: the grid is processed in row-bands
  sized so that a band's sweep time stays below the target period, and
  iterations are tiled within a band before moving on (temporal
  blocking), keeping every row's access interval short.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.dram.refresh import AccessTrace, RefreshController
from repro.errors import WorkloadError


@dataclass(frozen=True)
class StencilWorkload:
    """A 2-D iterative stencil kernel.

    Attributes
    ----------
    grid_rows:
        Number of grid rows; each maps to one DRAM row.
    row_process_s:
        Time to process one grid row once (compute + memory).
    iterations:
        Stencil sweeps to perform.
    """

    grid_rows: int
    row_process_s: float
    iterations: int

    def __post_init__(self) -> None:
        if self.grid_rows <= 0 or self.iterations <= 0:
            raise WorkloadError("grid_rows and iterations must be positive")
        if self.row_process_s <= 0:
            raise WorkloadError("row_process_s must be positive")

    @property
    def sweep_time_s(self) -> float:
        """Wall time of one full pass over the grid."""
        return self.grid_rows * self.row_process_s

    @property
    def total_time_s(self) -> float:
        return self.sweep_time_s * self.iterations


class StencilScheduler:
    """Generates access traces for the two schedules."""

    def __init__(self, workload: StencilWorkload) -> None:
        self.workload = workload

    def row_sweep_trace(self) -> AccessTrace:
        """Natural order: row r touched at r*dt + k*sweep_time."""
        w = self.workload
        events: List[Tuple[float, int]] = []
        for iteration in range(w.iterations):
            base = iteration * w.sweep_time_s
            for row in range(w.grid_rows):
                events.append((base + row * w.row_process_s, row))
        return AccessTrace.from_events(w.total_time_s, events)

    def blocked_trace(self, target_period_s: float) -> AccessTrace:
        """Temporally-blocked order keeping re-access under the target.

        Bands of ``band_rows`` are chosen so that sweeping one band
        ``iterations`` times keeps each of its rows re-touched within
        the target period. Total work (row visits) is identical to the
        natural schedule.
        """
        w = self.workload
        if target_period_s <= w.row_process_s:
            raise WorkloadError("target period shorter than one row's processing")
        band_rows = max(1, int(target_period_s / w.row_process_s))
        band_rows = min(band_rows, w.grid_rows)
        events: List[Tuple[float, int]] = []
        clock = 0.0
        for band_start in range(0, w.grid_rows, band_rows):
            band = range(band_start, min(band_start + band_rows, w.grid_rows))
            for _iteration in range(w.iterations):
                for row in band:
                    events.append((clock, row))
                    clock += w.row_process_s
        return AccessTrace.from_events(max(clock, w.total_time_s), events)

    def coverage_comparison(self, trefp_s: float,
                            target_period_s: float) -> Tuple[float, float]:
        """Self-refresh coverage of both schedules against ``trefp_s``.

        Returns ``(row_sweep_coverage, blocked_coverage)``: the fraction
        of rows whose own access pattern keeps every inter-access gap
        below the refresh period. The paper's claim is that the blocked
        schedule's access intervals all fall below the refresh period,
        driving coverage to ~1 while the natural sweep leaves rows
        exposed.
        """
        natural = RefreshController.access_interval_coverage(
            self.row_sweep_trace(), trefp_s)
        blocked = RefreshController.access_interval_coverage(
            self.blocked_trace(target_period_s), trefp_s)
        return natural, blocked
