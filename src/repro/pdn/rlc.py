"""Second-order RLC power-delivery-network model.

The classic lumped model of a chip's power delivery: package inductance
``L`` and resistance ``R`` feeding the on-die capacitance ``C``. Its
input impedance seen by the die peaks near the resonant frequency

    f_res = 1 / (2 * pi * sqrt(L * C))

and current transients near ``f_res`` produce the deepest supply droops
-- the physics the dI/dt virus exploits. Typical server-chip first-order
resonances sit in the tens of MHz; we default to 50 MHz with a quality
factor around 3.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class PdnParams:
    """Lumped-element parameters of the PDN.

    Attributes
    ----------
    resistance_ohm:
        Series (package + grid) resistance.
    inductance_h:
        Package/socket loop inductance.
    capacitance_f:
        On-die + package decoupling capacitance.
    """

    resistance_ohm: float
    inductance_h: float
    capacitance_f: float

    def __post_init__(self) -> None:
        if min(self.resistance_ohm, self.inductance_h, self.capacitance_f) <= 0:
            raise ConfigurationError("all PDN elements must be positive")

    @property
    def resonant_freq_hz(self) -> float:
        """First-order resonance of the network."""
        return 1.0 / (2.0 * math.pi * math.sqrt(self.inductance_h * self.capacitance_f))

    @property
    def characteristic_impedance_ohm(self) -> float:
        return math.sqrt(self.inductance_h / self.capacitance_f)

    @property
    def quality_factor(self) -> float:
        """Q of the resonance; higher Q means a sharper, deeper peak."""
        return self.characteristic_impedance_ohm / self.resistance_ohm


#: Default PDN: 50 MHz resonance, Q ~= 3 -- representative of published
#: server-class first-order PDN resonances (e.g. reference [2]).
DEFAULT_PDN = PdnParams(
    resistance_ohm=0.003,
    inductance_h=10e-12 * 3.24,   # 32.4 pH
    capacitance_f=313e-9,         # 313 nF
)


@lru_cache(maxsize=64)
def _cached_spectral_grid(params: PdnParams, n: int,
                          sample_rate_hz: float) -> Tuple[np.ndarray, np.ndarray]:
    """One-sided frequency grid + impedance curve for n-point spectra.

    Spectral analysis of every same-length waveform against the same PDN
    reuses this pair, so batched fitness evaluation never recomputes the
    impedance curve. The arrays are frozen read-only: they are shared
    across callers.
    """
    freqs = np.fft.rfftfreq(n, d=1.0 / sample_rate_hz)
    impedance = PdnModel(params).impedance_ohm(freqs)
    freqs.setflags(write=False)
    impedance.setflags(write=False)
    return freqs, impedance


class PdnModel:
    """Impedance and droop analysis over a PDN parameter set."""

    def __init__(self, params: PdnParams = DEFAULT_PDN) -> None:
        self.params = params
        self._peak_impedance: Optional[float] = None

    def spectral_grid(self, n: int,
                      sample_rate_hz: float) -> Tuple[np.ndarray, np.ndarray]:
        """Cached ``(rfft frequencies, |Z|)`` pair for ``n``-point spectra.

        The values are exactly ``np.fft.rfftfreq(n, 1/rate)`` and
        :meth:`impedance_ohm` over it -- computed once per
        ``(params, n, rate)`` and shared (read-only) thereafter.
        """
        return _cached_spectral_grid(self.params, int(n), float(sample_rate_hz))

    def impedance_ohm(self, freq_hz: np.ndarray) -> np.ndarray:
        """|Z(f)| of the parallel RLC tank seen by the die.

        Series R-L in parallel with C: ``Z = (R + jwL) || 1/(jwC)``.
        """
        w = 2.0 * np.pi * np.asarray(freq_hz, dtype=float)
        # Evaluate at a clipped frequency to avoid the DC singularity of
        # the shunt capacitor, then pin the DC bin to the series
        # resistance (at DC the capacitor is open and the regulator sees
        # only R).
        w_safe = np.where(w > 0, w, 1.0)
        series = self.params.resistance_ohm + 1j * w_safe * self.params.inductance_h
        shunt = 1.0 / (1j * w_safe * self.params.capacitance_f)
        z = np.abs(series * shunt / (series + shunt))
        return np.where(w > 0, z, self.params.resistance_ohm)

    def peak_impedance_ohm(self) -> float:
        """Impedance magnitude at the resonance (computed once)."""
        if self._peak_impedance is None:
            self._peak_impedance = float(
                self.impedance_ohm(np.array([self.params.resonant_freq_hz]))[0])
        return self._peak_impedance

    def droop_spectrum(self, waveform: np.ndarray, freq_ghz: float,
                       current_scale_a: float = 10.0) -> np.ndarray:
        """Per-frequency droop contributions of a current waveform.

        ``waveform`` is the per-cycle relative current from the execution
        model; ``current_scale_a`` converts relative units to amperes
        (full-scale swing of a core cluster ~= 10 A).
        Returns the one-sided droop spectrum in volts.
        """
        n = len(waveform)
        if n < 16:
            raise ConfigurationError("waveform too short for spectral analysis")
        sample_rate_hz = freq_ghz * 1e9
        current = (np.asarray(waveform, dtype=float) - np.mean(waveform)) * current_scale_a
        spectrum = np.fft.rfft(current) / n
        _, impedance = self.spectral_grid(n, sample_rate_hz)
        return 2.0 * np.abs(spectrum) * impedance

    def worst_droop_v(self, waveform: np.ndarray, freq_ghz: float,
                      current_scale_a: float = 10.0) -> float:
        """Worst-case droop (V) -- the resonant peak of the spectrum.

        A conservative single-tone estimate: the dominant spectral line
        through the impedance peak. Good enough for *ranking* stimuli,
        which is all the GA fitness needs.
        """
        spectrum = self.droop_spectrum(waveform, freq_ghz, current_scale_a)
        return float(spectrum.max())

    def step_response_droop_v(self, step_current_a: float) -> float:
        """First droop of an ideal current step (underdamped ringing).

        ``V_droop ~= I * Z0 * exp(-pi / (2 Q))`` -- textbook second-order
        step response; used to sanity-check the spectral estimates.
        """
        q = self.params.quality_factor
        z0 = self.params.characteristic_impedance_ohm
        return step_current_a * z0 * math.exp(-math.pi / (2.0 * q))
