"""Electromagnetic-emanation sensor model.

The paper cannot probe the supply rail directly, so it senses voltage
noise through radiated EM near the package (reference [14]): large
resonant current loops radiate, and the radiated amplitude at the PDN
resonance tracks the droop magnitude. The GA maximizes EM amplitude and
the paper then *validates* the proxy by showing the evolved virus also
maximizes Vmin.

Our sensor derives radiated amplitude from the same current waveform the
PDN sees. The near-field probe picks up the magnetic field of the
current circulating in the package's resonant L-C loop; that tank
current is the die current shaped by the network's impedance peak
(``I_tank(w) ~ |Z(w)| * I_die(w) / (w L)``, and the probe's ``dI/dt``
pickup restores the ``w``), so the radiated spectrum tracks
``|Z(w)| * I_die(w)`` -- the droop spectrum. The receiver chain adds a
band-limit around the resonance and measurement noise, so the proxy is
strong but imperfect, as in reality. ``tests/test_em_proxy.py``
quantifies the correlation.

Measurement noise follows a *counter-based* protocol: read ``r`` of
evaluation ``e`` draws from ``substream(seed, "em-read", e, r)``, where
``e`` is a per-sensor evaluation counter. Each logical measurement
(:meth:`EmSensor.measure` / :meth:`EmSensor.measure_averaged`) consumes
one counter value and :meth:`EmSensor.measure_block` consumes one per
stacked waveform, so a block measurement of N waveforms is bit-identical
to N serial measurements -- the property that lets the GA batch its
fitness evaluations without perturbing a single result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.pdn.rlc import DEFAULT_PDN, PdnModel
from repro.rand import DEFAULT_SEED, SeedLike, substream


@dataclass(frozen=True)
class EmReading:
    """One EM measurement: amplitude (arbitrary units) and its frequency."""

    amplitude: float
    peak_freq_hz: float

    def __post_init__(self) -> None:
        if self.amplitude < 0:
            raise ConfigurationError("EM amplitude cannot be negative")


class EmSensor:
    """Near-field EM probe + receiver model.

    Parameters
    ----------
    pdn:
        The PDN whose resonant current loop radiates.
    bandwidth_hz:
        Receiver bandwidth centred on the PDN resonance; spectral lines
        outside it are attenuated (simple Gaussian window).
    noise_floor:
        Additive measurement noise sigma, relative units. Real EM
        measurements are noisy; the GA must average across reads.
    seed:
        Seed of the counter-based measurement-noise protocol. An integer
        (or ``None``) keys the protocol directly; a live generator
        contributes one draw so the derived base stays stable for the
        sensor's lifetime.
    """

    def __init__(self, pdn: PdnModel = None, bandwidth_hz: float = 30e6,
                 noise_floor: float = 0.01, seed: SeedLike = None) -> None:
        if bandwidth_hz <= 0:
            raise ConfigurationError("bandwidth must be positive")
        self.pdn = pdn or PdnModel(DEFAULT_PDN)
        self.bandwidth_hz = bandwidth_hz
        self.noise_floor = noise_floor
        if isinstance(seed, np.random.Generator):
            self._noise_seed = int(seed.integers(0, 2**31 - 1))
        else:
            self._noise_seed = DEFAULT_SEED if seed is None else int(seed)
        #: Evaluation counter of the noise protocol: the next logical
        #: measurement draws its reads from ``(seed, "em-read", counter, r)``.
        self._next_eval = 0
        self._window_cache: Dict[Tuple[int, float], np.ndarray] = {}

    # ------------------------------------------------------------------
    # Deterministic (noise-free) part
    # ------------------------------------------------------------------
    def _receiver_window(self, n: int, sample_rate_hz: float,
                         freqs: np.ndarray) -> np.ndarray:
        """Cached Gaussian receiver window for ``n``-point spectra."""
        key = (n, sample_rate_hz)
        window = self._window_cache.get(key)
        if window is None:
            f_res = self.pdn.params.resonant_freq_hz
            window = np.exp(-0.5 * ((freqs - f_res) / self.bandwidth_hz) ** 2)
            window.setflags(write=False)
            self._window_cache[key] = window
        return window

    def clean_block(self, waveforms: np.ndarray, freq_ghz: float,
                    current_scale_a: float = 10.0
                    ) -> Tuple[np.ndarray, np.ndarray]:
        """Noise-free amplitudes + peak frequencies of stacked waveforms.

        ``waveforms`` is one waveform or an ``(N, n)`` stack of
        same-length waveforms; the whole stack goes through a single
        ``np.fft.rfft(..., axis=-1)`` against the cached impedance curve
        and receiver window. Per-row results are bit-identical at any
        stack size, so callers may group however they like.
        """
        block = np.atleast_2d(np.asarray(waveforms, dtype=float))
        n = block.shape[-1]
        sample_rate_hz = freq_ghz * 1e9
        freqs, impedance = self.pdn.spectral_grid(n, sample_rate_hz)
        window = self._receiver_window(n, sample_rate_hz, freqs)
        current = (block - block.mean(axis=-1, keepdims=True)) * current_scale_a
        spectrum = np.abs(np.fft.rfft(current, axis=-1)) / n * 2.0
        radiated = impedance * spectrum * window
        peak_idx = np.argmax(radiated, axis=-1)
        rows = np.arange(block.shape[0])
        # Normalize to convenient units (~1 for a full-swing resonant
        # square wave at the resonance).
        amplitudes = radiated[rows, peak_idx] / (
            self.pdn.peak_impedance_ohm() * current_scale_a)
        return amplitudes, freqs[peak_idx]

    # ------------------------------------------------------------------
    # Counter-based receiver noise
    # ------------------------------------------------------------------
    def _noise(self, eval_index: int, repeat: int) -> float:
        """Receiver noise of read ``repeat`` within evaluation ``eval_index``."""
        rng = substream(self._noise_seed, "em-read", eval_index, repeat)
        return float(rng.normal(0.0, self.noise_floor))

    def read_amplitude(self, clean_amplitude: float, repeats: int = 1) -> float:
        """Turn a noise-free amplitude into one noisy (averaged) reading.

        Consumes exactly one evaluation counter value; the ``repeats``
        reads are clamped at zero individually (a receiver cannot report
        negative amplitude) and then averaged. Callers that memoize the
        deterministic amplitude (the GA's batched fitness) still consume
        counters one per evaluation, keeping them aligned with a fully
        serial evaluator.
        """
        if repeats < 1:
            raise ConfigurationError("repeats must be >= 1")
        eval_index = self._next_eval
        self._next_eval += 1
        reads = [max(0.0, float(clean_amplitude) + self._noise(eval_index, r))
                 for r in range(repeats)]
        return float(np.mean(reads))

    # ------------------------------------------------------------------
    # Measurement API
    # ------------------------------------------------------------------
    def measure(self, waveform: np.ndarray, freq_ghz: float,
                current_scale_a: float = 10.0) -> EmReading:
        """Measure the radiated amplitude of a current waveform.

        The probe output is ``|Z(w)| * I(w) * G(w)`` -- the tank-current
        pickup shaped by a Gaussian receiver window ``G`` around the PDN
        resonance -- plus additive receiver noise. The reported peak
        frequency comes from the noise-free radiated spectrum.
        """
        amplitudes, peaks = self.clean_block(waveform, freq_ghz, current_scale_a)
        noisy = self.read_amplitude(float(amplitudes[0]), repeats=1)
        return EmReading(amplitude=noisy, peak_freq_hz=float(peaks[0]))

    def measure_averaged(self, waveform: np.ndarray, freq_ghz: float,
                         repeats: int = 4,
                         current_scale_a: float = 10.0) -> EmReading:
        """Average ``repeats`` reads to knock down receiver noise.

        The peak frequency derives from the noise-free radiated spectrum
        (receiver noise only perturbs amplitude), so the reported
        resonance never depends on read ordering.
        """
        if repeats < 1:
            raise ConfigurationError("repeats must be >= 1")
        amplitudes, peaks = self.clean_block(waveform, freq_ghz, current_scale_a)
        noisy = self.read_amplitude(float(amplitudes[0]), repeats=repeats)
        return EmReading(amplitude=noisy, peak_freq_hz=float(peaks[0]))

    def measure_block(self, waveforms: np.ndarray, freq_ghz: float,
                      repeats: int = 1,
                      current_scale_a: float = 10.0) -> List[EmReading]:
        """Measure N stacked same-length waveforms in one spectral pass.

        Bit-identical to N serial :meth:`measure_averaged` calls with the
        same ``repeats`` (and to :meth:`measure` when ``repeats == 1``):
        the deterministic amplitudes come from one batched FFT whose rows
        match the serial computation exactly, and row ``i`` consumes
        evaluation counter ``counter + i`` -- the same noise a serial
        caller would have drawn.
        """
        if repeats < 1:
            raise ConfigurationError("repeats must be >= 1")
        amplitudes, peaks = self.clean_block(waveforms, freq_ghz, current_scale_a)
        return [
            EmReading(amplitude=self.read_amplitude(float(amp), repeats=repeats),
                      peak_freq_hz=float(peak))
            for amp, peak in zip(amplitudes, peaks)
        ]
