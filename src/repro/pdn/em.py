"""Electromagnetic-emanation sensor model.

The paper cannot probe the supply rail directly, so it senses voltage
noise through radiated EM near the package (reference [14]): large
resonant current loops radiate, and the radiated amplitude at the PDN
resonance tracks the droop magnitude. The GA maximizes EM amplitude and
the paper then *validates* the proxy by showing the evolved virus also
maximizes Vmin.

Our sensor derives radiated amplitude from the same current waveform the
PDN sees. The near-field probe picks up the magnetic field of the
current circulating in the package's resonant L-C loop; that tank
current is the die current shaped by the network's impedance peak
(``I_tank(w) ~ |Z(w)| * I_die(w) / (w L)``, and the probe's ``dI/dt``
pickup restores the ``w``), so the radiated spectrum tracks
``|Z(w)| * I_die(w)`` -- the droop spectrum. The receiver chain adds a
band-limit around the resonance and measurement noise, so the proxy is
strong but imperfect, as in reality. ``tests/test_em_proxy.py``
quantifies the correlation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.pdn.rlc import DEFAULT_PDN, PdnModel
from repro.rand import SeedLike, substream


@dataclass(frozen=True)
class EmReading:
    """One EM measurement: amplitude (arbitrary units) and its frequency."""

    amplitude: float
    peak_freq_hz: float

    def __post_init__(self) -> None:
        if self.amplitude < 0:
            raise ConfigurationError("EM amplitude cannot be negative")


class EmSensor:
    """Near-field EM probe + receiver model.

    Parameters
    ----------
    pdn:
        The PDN whose resonant current loop radiates.
    bandwidth_hz:
        Receiver bandwidth centred on the PDN resonance; spectral lines
        outside it are attenuated (simple Gaussian window).
    noise_floor:
        Additive measurement noise sigma, relative units. Real EM
        measurements are noisy; the GA must average across reads.
    seed:
        Seed for the measurement-noise stream.
    """

    def __init__(self, pdn: PdnModel = None, bandwidth_hz: float = 30e6,
                 noise_floor: float = 0.01, seed: SeedLike = None) -> None:
        if bandwidth_hz <= 0:
            raise ConfigurationError("bandwidth must be positive")
        self.pdn = pdn or PdnModel(DEFAULT_PDN)
        self.bandwidth_hz = bandwidth_hz
        self.noise_floor = noise_floor
        self._rng = substream(seed, "em-sensor")

    def measure(self, waveform: np.ndarray, freq_ghz: float,
                current_scale_a: float = 10.0) -> EmReading:
        """Measure the radiated amplitude of a current waveform.

        The probe output is ``|Z(w)| * I(w) * G(w)`` -- the tank-current
        pickup shaped by a Gaussian receiver window ``G`` around the PDN
        resonance -- plus additive receiver noise.
        """
        n = len(waveform)
        sample_rate_hz = freq_ghz * 1e9
        current = (np.asarray(waveform, float) - np.mean(waveform)) * current_scale_a
        spectrum = np.abs(np.fft.rfft(current)) / n * 2.0
        freqs = np.fft.rfftfreq(n, d=1.0 / sample_rate_hz)
        f_res = self.pdn.params.resonant_freq_hz
        window = np.exp(-0.5 * ((freqs - f_res) / self.bandwidth_hz) ** 2)
        radiated = self.pdn.impedance_ohm(freqs) * spectrum * window
        peak_idx = int(np.argmax(radiated))
        # Normalize to convenient units (~1 for a full-swing resonant
        # square wave) and add receiver noise.
        amplitude = float(radiated[peak_idx]) / (
            self.pdn.peak_impedance_ohm() * current_scale_a)
        noisy = max(0.0, amplitude + self._rng.normal(0.0, self.noise_floor))
        return EmReading(amplitude=noisy, peak_freq_hz=float(freqs[peak_idx]))

    def measure_averaged(self, waveform: np.ndarray, freq_ghz: float,
                         repeats: int = 4,
                         current_scale_a: float = 10.0) -> EmReading:
        """Average ``repeats`` reads to knock down receiver noise."""
        if repeats < 1:
            raise ConfigurationError("repeats must be >= 1")
        readings = [self.measure(waveform, freq_ghz, current_scale_a)
                    for _ in range(repeats)]
        return EmReading(
            amplitude=float(np.mean([r.amplitude for r in readings])),
            peak_freq_hz=readings[0].peak_freq_hz,
        )
