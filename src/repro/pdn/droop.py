"""Loop-level droop analysis: code -> normalized swing -> droop.

Glue between the execution model, the PDN, and the chip Vmin model.
The chip model consumes a *normalized resonant swing* in [0, 1]: the
fraction of the maximum achievable resonant excitation a stimulus
produces. This module computes that number for any instruction loop by
pushing its current waveform through the PDN and normalizing against the
best possible square-wave excitation at the resonance.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.cpu.execution import ExecutionModel, ExecutionProfile
from repro.cpu.isa import InstrClass
from repro.cpu.kernels import InstructionLoop, square_wave_loop
from repro.pdn.rlc import DEFAULT_PDN, PdnModel, PdnParams


@dataclass(frozen=True)
class DroopAnalysis:
    """Electrical summary of one instruction loop."""

    profile: ExecutionProfile
    droop_v: float
    resonant_swing: float  # normalized to the reference square wave

    @property
    def droop_mv(self) -> float:
        return self.droop_v * 1000.0


def _reference_droop_v(pdn: PdnModel, freq_ghz: float, window_cycles: int) -> float:
    """Droop of the ideal square wave at the PDN resonance.

    This is the normalization denominator: the strongest excitation any
    loop over this ISA can produce (full-current bursts alternating with
    idle bursts at exactly the resonant period).
    """
    res_period_cycles = freq_ghz * 1e9 / pdn.params.resonant_freq_hz
    loop = square_wave_loop(InstrClass.SIMD, InstrClass.NOP,
                            half_period_cycles=int(round(res_period_cycles / 2)))
    model = ExecutionModel(freq_ghz=freq_ghz, window_cycles=window_cycles)
    profile = model.profile(loop)
    return pdn.worst_droop_v(profile.waveform, freq_ghz)


@lru_cache(maxsize=16)
def _cached_reference(params: PdnParams, freq_ghz: float, window_cycles: int) -> float:
    return _reference_droop_v(PdnModel(params), freq_ghz, window_cycles)


def analyze_loop(loop: InstructionLoop, pdn: PdnModel = None,
                 freq_ghz: float = 2.4, window_cycles: int = 4096) -> DroopAnalysis:
    """Full electrical analysis of ``loop``.

    ``window_cycles`` defaults to 4096 (~85 resonance periods at 2.4 GHz
    with the default 50 MHz PDN) so the spectral estimate is stable.
    """
    pdn = pdn or PdnModel(DEFAULT_PDN)
    model = ExecutionModel(freq_ghz=freq_ghz, window_cycles=window_cycles)
    profile = model.profile(loop)
    droop = pdn.worst_droop_v(profile.waveform, freq_ghz)
    reference = _cached_reference(pdn.params, freq_ghz, window_cycles)
    swing = min(1.0, droop / reference) if reference > 0 else 0.0
    return DroopAnalysis(profile=profile, droop_v=droop, resonant_swing=swing)


def swing_of_loop(loop: InstructionLoop, pdn: PdnModel = None,
                  freq_ghz: float = 2.4) -> float:
    """Shortcut: just the normalized resonant swing of ``loop``."""
    return analyze_loop(loop, pdn=pdn, freq_ghz=freq_ghz).resonant_swing
