"""Power-delivery-network and electromagnetic-emanation models.

The dI/dt viruses of the paper work by exciting the first-order resonance
of the chip's power-delivery network (PDN): switching CPU power at the
resonant frequency builds up the largest supply droop. Because the
X-Gene2 exposes no fine-grained voltage probes, the authors sense the
noise indirectly through radiated electromagnetic emanations (EM) and
drive their genetic search with EM amplitude (reference [14]).

This package supplies both halves of that methodology for the simulated
platform:

- :mod:`repro.pdn.rlc` -- a second-order RLC PDN with an impedance peak
  at the resonant frequency; time- and frequency-domain droop analysis.
- :mod:`repro.pdn.em` -- an EM sensor model deriving radiated amplitude
  from the same current waveform, so the EM-as-droop-proxy property the
  paper relies on holds *and can be tested* in our substrate.
"""

from repro.pdn.rlc import PdnModel, PdnParams, DEFAULT_PDN
from repro.pdn.droop import DroopAnalysis, analyze_loop, swing_of_loop
from repro.pdn.em import EmSensor, EmReading

__all__ = [
    "DEFAULT_PDN",
    "DroopAnalysis",
    "EmReading",
    "EmSensor",
    "PdnModel",
    "PdnParams",
    "analyze_loop",
    "swing_of_loop",
]
