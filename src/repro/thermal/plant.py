"""First-order thermal model of a DIMM with a heating adapter.

A DIMM plus its adapter behaves, to good approximation, as one thermal
mass: heat flows in from the resistive element (and from the DRAM's own
dissipation), and leaks out to ambient through a thermal resistance.

    C * dT/dt = P_heater + P_self - (T - T_ambient) / R

Discretized with an exact exponential step so large simulation steps stay
stable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class PlantParams:
    """Thermal parameters of one DIMM + adapter assembly.

    Defaults give a time constant of ~63 s and a steady-state gain such
    that the 40 W element can hold ~85 degC above ambient -- enough
    headroom for the paper's 50/60 degC setpoints with authority to
    spare.
    """

    thermal_capacitance_j_per_c: float = 30.0
    thermal_resistance_c_per_w: float = 2.1
    heater_max_w: float = 40.0
    self_heating_w: float = 1.5  # the DIMM's own dissipation under load

    def __post_init__(self) -> None:
        if min(self.thermal_capacitance_j_per_c, self.thermal_resistance_c_per_w,
               self.heater_max_w) <= 0:
            raise ConfigurationError("plant parameters must be positive")
        if self.self_heating_w < 0:
            raise ConfigurationError("self heating cannot be negative")

    @property
    def time_constant_s(self) -> float:
        return self.thermal_capacitance_j_per_c * self.thermal_resistance_c_per_w

    def steady_state_c(self, heater_w: float, ambient_c: float) -> float:
        """Equilibrium temperature at constant heater power."""
        total = heater_w + self.self_heating_w
        return ambient_c + total * self.thermal_resistance_c_per_w


class ThermalPlant:
    """Integrable DIMM temperature state."""

    def __init__(self, params: PlantParams = PlantParams(),
                 ambient_c: float = 28.0,
                 initial_c: float = None) -> None:
        self.params = params
        self.ambient_c = ambient_c
        self.temperature_c = ambient_c if initial_c is None else initial_c
        self._heater_w = 0.0

    @property
    def heater_w(self) -> float:
        return self._heater_w

    def set_heater(self, power_w: float) -> None:
        """Command the resistive element (clamped to its rating)."""
        if power_w < 0:
            raise ConfigurationError("heater power cannot be negative")
        self._heater_w = min(power_w, self.params.heater_max_w)

    def step(self, dt_s: float) -> float:
        """Advance the plant by ``dt_s`` seconds; returns the new temp.

        Uses the exact solution of the linear ODE over the step, so any
        step size is stable.
        """
        if dt_s < 0:
            raise ConfigurationError("time step cannot be negative")
        target = self.params.steady_state_c(self._heater_w, self.ambient_c)
        decay = math.exp(-dt_s / self.params.time_constant_s)
        self.temperature_c = target + (self.temperature_c - target) * decay
        return self.temperature_c
