"""Applying scheduled rig faults to the thermal testbed.

:class:`repro.core.faults.FaultPlan` *declares* thermal faults as typed
:class:`~repro.core.faults.ThermalFault` records; this module *applies*
them. A :class:`ThermalFaultInjector` groups a plan's thermal faults by
zone and, each control tick, lenses the zone's sensor reads and actuator
commands through whatever faults are active at that virtual time:

- sensor faults corrupt what the controller *sees* (a stuck thermocouple
  freezes at its last healthy reading, a drifting one ramps away at its
  scheduled rate, dropouts and SPD timeouts read nothing);
- actuator faults corrupt what the plant *receives* (a welded relay
  delivers full power regardless of the commanded duty, a stuck-open
  relay or a dead heater element delivers none);
- ambient steps disturb the plant itself.

Everything is a pure function of the plan plus virtual time (the stuck
value is captured at the fault's first active tick, which is itself
deterministic), so a faulted regulation run replays identically
run-to-run -- the property the measurement-validity gating of the DRAM
campaigns relies on.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.core.faults import (
    AMBIENT_STEP,
    HEATER_FAILED,
    RELAY_STUCK_OPEN,
    RELAY_WELDED_ON,
    SPD_TIMEOUT,
    TC_DRIFT,
    TC_DROPOUT,
    TC_STUCK,
    FaultPlan,
    FaultStats,
    ThermalFault,
    thermal_faults_recoverable,
)
from repro.errors import CampaignError

_TC_KINDS = (TC_STUCK, TC_DRIFT, TC_DROPOUT)


class ZoneFaultState:
    """The active-fault lens of one testbed zone.

    Holds the zone's scheduled faults plus the small amount of mutable
    state fault application needs (the captured stuck value, the
    fired-once bookkeeping for stats). One instance serves one testbed
    run; the capture is deterministic because the first active tick is.
    """

    def __init__(self, zone: int, faults: Sequence[ThermalFault],
                 stats: FaultStats) -> None:
        if any(f.zone != zone for f in faults):
            raise CampaignError("zone fault state got a foreign-zone fault")
        self.zone = zone
        self.faults: Tuple[ThermalFault, ...] = tuple(
            sorted(faults, key=lambda f: (f.start_s, f.kind)))
        self.stats = stats
        self._stuck_values: Dict[int, float] = {}
        self._fired: set = set()

    def _note(self, index: int, fault: ThermalFault) -> None:
        if index not in self._fired:
            self._fired.add(index)
            self.stats.note_thermal(fault.kind)

    def _active(self, kinds, now_s: float):
        for index, fault in enumerate(self.faults):
            if fault.kind in kinds and fault.active(now_s):
                self._note(index, fault)
                yield index, fault

    def ambient_offset_c(self, now_s: float) -> float:
        """Total ambient disturbance in effect at ``now_s`` (degC)."""
        return sum(f.magnitude
                   for _, f in self._active((AMBIENT_STEP,), now_s))

    def thermocouple_reading(self, reading_c: float,
                             now_s: float) -> Optional[float]:
        """What the thermocouple channel reports given the true reading.

        Returns ``None`` while a dropout is active; a stuck fault
        returns the value captured at its first active tick; a drift
        fault ramps away at ``magnitude`` degC/s from its onset.
        """
        for index, fault in self._active(_TC_KINDS, now_s):
            if fault.kind == TC_DROPOUT:
                return None
            if fault.kind == TC_STUCK:
                if index not in self._stuck_values:
                    self._stuck_values[index] = reading_c
                return self._stuck_values[index]
            return reading_c + fault.magnitude * (now_s - fault.start_s)
        return reading_c

    def spd_reading(self, reading_c: float,
                    now_s: float) -> Optional[float]:
        """What the SPD read returns (``None`` while timing out)."""
        for _ in self._active((SPD_TIMEOUT,), now_s):
            return None
        return reading_c

    def delivered_power_w(self, commanded_w: float, now_s: float,
                          max_power_w: float) -> float:
        """Power the element actually receives given the command."""
        for _ in self._active((HEATER_FAILED,), now_s):
            return 0.0
        for _ in self._active((RELAY_STUCK_OPEN,), now_s):
            return 0.0
        for _ in self._active((RELAY_WELDED_ON,), now_s):
            return max_power_w
        return commanded_w


class ThermalFaultInjector:
    """Feeds a plan's thermal faults to a :class:`ThermalTestbed`.

    Groups the declared faults by zone and exposes one
    :class:`ZoneFaultState` per affected zone; zones without faults get
    ``None`` and run the clean path. ``stats`` (shared with a
    :class:`~repro.core.faults.FaultInjector` when built from one)
    counts each fault once, at its first active tick. One injector
    instance drives one testbed: the stuck-value capture is per-run
    state.
    """

    def __init__(self, faults: Sequence[ThermalFault] = (),
                 stats: Optional[FaultStats] = None) -> None:
        self.faults: Tuple[ThermalFault, ...] = tuple(faults)
        self.stats = stats if stats is not None else FaultStats()
        by_zone: Dict[int, list] = {}
        for fault in self.faults:
            by_zone.setdefault(fault.zone, []).append(fault)
        self._states: Dict[int, ZoneFaultState] = {
            zone: ZoneFaultState(zone, zone_faults, self.stats)
            for zone, zone_faults in by_zone.items()
        }

    @classmethod
    def from_plan(cls, plan: FaultPlan,
                  stats: Optional[FaultStats] = None) -> "ThermalFaultInjector":
        """Build an injector over a :class:`FaultPlan`'s thermal faults."""
        return cls(plan.thermal_faults, stats=stats)

    @classmethod
    def coerce(cls, faults) -> Optional["ThermalFaultInjector"]:
        """Normalize ``None`` / injector / plan / fault sequence."""
        if faults is None or isinstance(faults, ThermalFaultInjector):
            return faults
        if isinstance(faults, FaultPlan):
            return cls.from_plan(faults)
        return cls(tuple(faults))

    @property
    def recoverable(self) -> bool:
        """Whether every zone survives the injected schedule."""
        return thermal_faults_recoverable(self.faults)

    @property
    def zones(self) -> Tuple[int, ...]:
        """Zones with at least one scheduled fault, ascending."""
        return tuple(sorted(self._states))

    def zone_state(self, zone: int) -> Optional[ZoneFaultState]:
        """The zone's fault lens, or ``None`` for a clean zone."""
        return self._states.get(zone)


__all__ = [
    "ThermalFaultInjector",
    "ZoneFaultState",
]
