"""Temperature-controlled DRAM testbed (paper Section III.B).

The paper built a first-of-its-kind thermal rig: per-DIMM heating
adapters (resistive element + thermally conductive tape + thermocouple)
driven by a controller board with a Raspberry Pi, four closed-loop PID
controllers and eight solid-state relays -- one per DIMM rank -- holding
any setpoint to within 1 degC.

This package simulates that rig end-to-end:

- :mod:`repro.thermal.plant` -- first-order thermal RC model of a DIMM
  with a heating element;
- :mod:`repro.thermal.pid` -- a discrete PID controller with anti-windup;
- :mod:`repro.thermal.relay` -- time-proportioned solid-state relay;
- :mod:`repro.thermal.sensors` -- thermocouple and SPD-sensor reads;
- :mod:`repro.thermal.faults` -- scheduled rig faults (stuck/drifting
  thermocouples, SPD timeouts, welded relays, dead heaters, ambient
  steps) applied deterministically from a
  :class:`~repro.core.faults.FaultPlan`;
- :mod:`repro.thermal.monitor` -- in-loop fault detection: sensor
  fusion by residual voting, rate plausibility, per-zone degradation
  and the hard safe-state (heater cutoff + typed zone quarantine);
- :mod:`repro.thermal.testbed` -- the 8-zone controller board running on
  the simkit event loop, with the <1 degC regulation property verified
  by the test suite.
"""

from repro.core.faults import ThermalFault
from repro.thermal.binding import ThermalDramBinding, ZoneBinding
from repro.thermal.faults import ThermalFaultInjector, ZoneFaultState
from repro.thermal.monitor import (
    MonitorParams,
    ZoneMonitor,
    ZoneQuarantine,
    settle_time,
)
from repro.thermal.plant import ThermalPlant, PlantParams
from repro.thermal.pid import PidController, PidGains
from repro.thermal.relay import SolidStateRelay
from repro.thermal.sensors import Thermocouple, SpdSensor
from repro.thermal.testbed import ThermalTestbed, ZoneConfig, ZoneReport

__all__ = [
    "MonitorParams",
    "PidController",
    "PidGains",
    "PlantParams",
    "SolidStateRelay",
    "SpdSensor",
    "ThermalDramBinding",
    "ThermalFault",
    "ThermalFaultInjector",
    "ThermalPlant",
    "ThermalTestbed",
    "Thermocouple",
    "ZoneBinding",
    "ZoneConfig",
    "ZoneFaultState",
    "ZoneMonitor",
    "ZoneQuarantine",
    "ZoneReport",
    "settle_time",
]
