"""In-loop fault detection for the thermal testbed.

The paper's retention numbers are only meaningful because every rank
held within 1 degC of setpoint -- so the controller must *know* when it
no longer does. A :class:`ZoneMonitor` sits between the sensors and the
PID loop of one zone and owns the zone's temperature belief without ever
touching the plant's ground truth:

- **residual voting**: the thermocouple is fast but mounted element-side
  (biased); the SPD/TSOD is the die-side absolute reference. The monitor
  calibrates the thermocouple against the SPD online (a clamped EMA of
  their residual) and, when the two disagree beyond the residual limit,
  votes for the SPD unless the SPD itself just moved implausibly fast;
- **rate-of-change plausibility**: the plant physically cannot move
  faster than ``(heater_max + self_heating) / C`` degC/s -- a sensor
  that jumps faster than that (with margin) is struck;
- **per-zone degradation**: a sensor that accumulates ``strike_limit``
  consecutive strikes is failed and control degrades to the surviving
  sensor; a failed sensor that re-agrees for the same streak is
  rehabilitated (a transient dropout recovers cleanly);
- **hard safe-state**: runaway (belief beyond the runaway margin or the
  absolute rig limit), blindness (no plausible sensor for
  ``blind_limit`` ticks), irreconcilable sensor conflict, or a zone that
  saturates its heater yet cannot approach setpoint, all trip a
  quarantine -- the testbed cuts the heater and the zone is reported as
  a typed :class:`ZoneQuarantine`, never as a silent wrong temperature.

Out-of-band windows are recorded against the *belief* so the DRAM
campaign drivers can gate measurement validity on them
(:mod:`repro.experiments.table1_weak_cells`,
:mod:`repro.experiments.fig8a_ber`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.thermal.plant import PlantParams

#: Zone regulation statuses reported by :attr:`ZoneMonitor.status`.
ZONE_OK = "ok"
ZONE_DEGRADED_SPD = "degraded-spd-only"   #: thermocouple failed, SPD survives
ZONE_DEGRADED_TC = "degraded-tc-only"     #: SPD failed, thermocouple survives
ZONE_QUARANTINED = "quarantined"

#: Quarantine kinds (the thermal analogue of the supervisor taxonomy).
THERMAL_RUNAWAY = "thermal-runaway"
SENSOR_LOSS = "sensor-loss"
SENSOR_CONFLICT = "sensor-conflict"
HEATER_FAILURE = "heater-failure"
REGULATION_TIMEOUT = "regulation-timeout"


@dataclass(frozen=True)
class ZoneQuarantine:
    """One quarantined thermal zone, as a typed record (not a log line).

    Mirrors the :class:`repro.core.supervisor.UnitFailure` contract so
    pipeline summaries can enumerate thermal quarantines exactly like
    supervised-execution ones.
    """

    zone: int               #: testbed zone index (one DIMM rank)
    kind: str               #: one of the quarantine kinds above
    time_s: float           #: virtual time the safe-state tripped
    detail: str = ""        #: human-readable cause

    def describe(self) -> str:
        """Render the record the way pipeline summaries expect."""
        text = f"zone {self.zone}: {self.kind} at t={self.time_s:.0f}s"
        return f"{text} ({self.detail})" if self.detail else text


@dataclass(frozen=True)
class MonitorParams:
    """Detection thresholds of one :class:`ZoneMonitor`.

    Defaults are sized against the default rig: thermocouple noise
    0.08 degC / bias spec 0.3 degC, SPD quantization 0.25 degC, plant
    slew under 1.4 degC/s.
    """

    bias_spec_c: float = 0.3        #: datasheet thermocouple mounting bias
    bias_clamp_c: float = 0.5       #: max online bias correction vs spec
    bias_gain: float = 0.05         #: EMA gain of the online calibration
    tc_weight: float = 0.8          #: thermocouple share of the fusion
    disagree_limit_c: float = 1.0   #: residual that forces a vote
    rate_limit_c_per_s: Optional[float] = None  #: None: derive from plant
    rate_slack_c: float = 0.75      #: additive slack on the rate check
    strike_limit: int = 3           #: consecutive strikes that fail a sensor
    blind_limit: int = 5            #: sensorless ticks before quarantine
    band_c: float = 1.0             #: the paper's regulation band
    runaway_margin_c: float = 12.0  #: belief above setpoint that trips
    absolute_max_c: float = 110.0   #: rig hard limit
    unreachable_after_s: float = 180.0  #: saturated-but-cold time to trip
    low_band_c: float = 3.0         #: how far below setpoint counts as cold

    def __post_init__(self) -> None:
        if min(self.bias_clamp_c, self.bias_gain, self.disagree_limit_c,
               self.rate_slack_c, self.band_c, self.runaway_margin_c,
               self.unreachable_after_s, self.low_band_c) <= 0:
            raise ConfigurationError("monitor thresholds must be positive")
        if not 0.0 <= self.tc_weight <= 1.0:
            raise ConfigurationError("tc_weight must be within [0, 1]")
        if self.strike_limit < 1 or self.blind_limit < 1:
            raise ConfigurationError("strike/blind limits must be >= 1")
        if (self.rate_limit_c_per_s is not None
                and self.rate_limit_c_per_s <= 0):
            raise ConfigurationError("rate limit must be positive")


class ZoneMonitor:
    """Sensor fusion, fault detection and safe-state of one zone."""

    def __init__(self, zone: int, setpoint_c: float,
                 plant: PlantParams = PlantParams(),
                 ambient_c: float = 28.0,
                 params: MonitorParams = MonitorParams()) -> None:
        self.zone = zone
        self.setpoint_c = setpoint_c
        self.params = params
        self.rate_limit_c_per_s = (
            params.rate_limit_c_per_s if params.rate_limit_c_per_s is not None
            else 1.5 * (plant.heater_max_w + plant.self_heating_w)
            / plant.thermal_capacitance_j_per_c)
        self.estimate_c = ambient_c     #: current temperature belief
        self.bias_hat_c = params.bias_spec_c
        self.tc_failed = False
        self.spd_failed = False
        self.quarantine: Optional[ZoneQuarantine] = None
        self.out_of_band_windows: List[Tuple[float, float]] = []
        self._tc_strikes = 0
        self._spd_strikes = 0
        self._agree_streak = 0
        self._blind_ticks = 0
        self._last_tc_c: Optional[float] = None
        self._last_spd_c: Optional[float] = None
        self._in_band_since: Optional[float] = None
        self._oob_since: Optional[float] = 0.0
        self._cold_saturated_s = 0.0
        self._now = 0.0

    # ------------------------------------------------------------------
    # Status
    # ------------------------------------------------------------------
    @property
    def status(self) -> str:
        """The zone's regulation status string."""
        if self.quarantine is not None:
            return ZONE_QUARANTINED
        if self.tc_failed:
            return ZONE_DEGRADED_SPD
        if self.spd_failed:
            return ZONE_DEGRADED_TC
        return ZONE_OK

    @property
    def in_band(self) -> bool:
        """Whether the belief currently sits inside the +-band_c band."""
        return self._in_band_since is not None

    @property
    def in_band_since_s(self) -> Optional[float]:
        """Virtual time the belief last entered the band (None if out)."""
        return self._in_band_since

    def in_band_duration_s(self, now_s: float) -> float:
        """How long the belief has been continuously in band."""
        if self._in_band_since is None:
            return 0.0
        return now_s - self._in_band_since

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def retarget(self, setpoint_c: float, now_s: float) -> None:
        """Reset regulation telemetry for a new setpoint.

        Sensor health, calibration and any quarantine are physical state
        and survive the retarget; the band bookkeeping restarts so
        settle/validity telemetry is measured from the retarget instant.
        """
        self.setpoint_c = setpoint_c
        self.out_of_band_windows = []
        self._in_band_since = None
        self._oob_since = now_s
        self._cold_saturated_s = 0.0

    def force_quarantine(self, kind: str, now_s: float,
                         detail: str = "") -> ZoneQuarantine:
        """Quarantine the zone from outside the loop (e.g. the driver's
        re-regulation budget ran out); idempotent once tripped."""
        if self.quarantine is None:
            self._trip(kind, now_s, detail)
        return self.quarantine

    def _trip(self, kind: str, now_s: float, detail: str) -> None:
        self.quarantine = ZoneQuarantine(zone=self.zone, kind=kind,
                                         time_s=now_s, detail=detail)
        if self._in_band_since is not None:
            self._in_band_since = None
            self._oob_since = now_s

    # ------------------------------------------------------------------
    # The per-tick observation
    # ------------------------------------------------------------------
    def _plausible(self, value: Optional[float], last: Optional[float],
                   dt_s: float) -> bool:
        if value is None:
            return False
        if last is None:
            return True
        limit = self.rate_limit_c_per_s * dt_s + self.params.rate_slack_c
        return abs(value - last) <= limit

    def _strike_tc(self) -> None:
        self._tc_strikes += 1
        if self._tc_strikes >= self.params.strike_limit:
            self.tc_failed = True

    def _strike_spd(self) -> None:
        self._spd_strikes += 1
        if self._spd_strikes >= self.params.strike_limit:
            self.spd_failed = True

    def _fuse(self, tc_c: Optional[float], spd_c: Optional[float],
              dt_s: float) -> Optional[float]:
        """One voting round; returns the fused belief or None (blind)."""
        p = self.params
        tc_plausible = self._plausible(tc_c, self._last_tc_c, dt_s)
        spd_plausible = self._plausible(spd_c, self._last_spd_c, dt_s)
        if tc_c is not None:
            self._last_tc_c = tc_c
        if spd_c is not None:
            self._last_spd_c = spd_c
        tc_est = tc_c - self.bias_hat_c if tc_c is not None else None

        if tc_c is not None and spd_c is not None:
            residual = tc_est - spd_c
            if abs(residual) <= p.disagree_limit_c and tc_plausible \
                    and spd_plausible:
                # Healthy agreement: recalibrate, rehabilitate, fuse.
                self._tc_strikes = 0
                self._spd_strikes = 0
                if self.tc_failed or self.spd_failed:
                    self._agree_streak += 1
                    if self._agree_streak >= p.strike_limit:
                        self.tc_failed = self.spd_failed = False
                        self._agree_streak = 0
                if self.tc_failed:
                    return spd_c
                if self.spd_failed:
                    return tc_est
                raw_bias = self.bias_hat_c + p.bias_gain * (
                    (tc_c - spd_c) - self.bias_hat_c)
                lo = p.bias_spec_c - p.bias_clamp_c
                hi = p.bias_spec_c + p.bias_clamp_c
                self.bias_hat_c = min(hi, max(lo, raw_bias))
                tc_est = tc_c - self.bias_hat_c
                return p.tc_weight * tc_est + (1.0 - p.tc_weight) * spd_c
            # Disagreement (or an implausible jump): vote. The SPD is the
            # die-side absolute reference, so it wins unless it is the
            # one moving implausibly fast.
            self._agree_streak = 0
            if spd_plausible and not self.spd_failed:
                self._strike_tc()
                return spd_c
            if tc_plausible and not self.tc_failed:
                self._strike_spd()
                return tc_est
            self._strike_tc()
            self._strike_spd()
            return None
        self._agree_streak = 0
        if spd_c is not None:
            self._strike_tc()
            if spd_plausible and not self.spd_failed:
                return spd_c
            self._strike_spd()
            return None
        if tc_c is not None:
            self._strike_spd()
            if tc_plausible and not self.tc_failed:
                return tc_est
            self._strike_tc()
            return None
        # Both channels absent: blindness, not conflict. Absence is no
        # evidence of a lying sensor, so no strikes -- the blind-tick
        # counter owns this failure mode (sensor-loss).
        return None

    def observe(self, now_s: float, dt_s: float, tc_c: Optional[float],
                spd_c: Optional[float], duty: float) -> float:
        """Ingest one tick's sensor reads; returns the control belief.

        ``duty`` is the duty cycle commanded on the *previous* tick (the
        power whose effect this tick's reads reflect); it feeds the
        cannot-reach-setpoint detector. A quarantined zone keeps
        updating its belief from whatever sensor survives (telemetry
        stays honest) but its heater is already cut off by the testbed.
        """
        self._now = now_s
        if self.quarantine is not None:
            reading = self._fuse(tc_c, spd_c, dt_s)
            if reading is not None:
                self.estimate_c = reading
            return self.estimate_c

        fused = self._fuse(tc_c, spd_c, dt_s)
        if fused is None:
            self._blind_ticks += 1
            fused = self.estimate_c  # hold the last belief while blind
        else:
            self._blind_ticks = 0
        self.estimate_c = fused

        p = self.params
        if self._blind_ticks >= p.blind_limit:
            self._trip(SENSOR_LOSS, now_s,
                       "no plausible sensor for "
                       f"{self._blind_ticks} consecutive ticks")
        elif self.tc_failed and self.spd_failed:
            self._trip(SENSOR_CONFLICT, now_s,
                       "thermocouple and SPD disagree irreconcilably")
        elif self.estimate_c >= min(p.absolute_max_c,
                                    self.setpoint_c + p.runaway_margin_c):
            self._trip(THERMAL_RUNAWAY, now_s,
                       f"belief {self.estimate_c:.1f} degC beyond the "
                       f"runaway limit for setpoint {self.setpoint_c:.0f}")
        else:
            if duty >= 0.99 and self.estimate_c < self.setpoint_c \
                    - p.low_band_c:
                self._cold_saturated_s += dt_s
                if self._cold_saturated_s >= p.unreachable_after_s:
                    self._trip(HEATER_FAILURE, now_s,
                               "heater saturated for "
                               f"{self._cold_saturated_s:.0f}s without "
                               "approaching setpoint")
            else:
                self._cold_saturated_s = 0.0

        self._track_band(now_s)
        return self.estimate_c

    def _track_band(self, now_s: float) -> None:
        in_band = (self.quarantine is None
                   and abs(self.estimate_c - self.setpoint_c)
                   < self.params.band_c)
        if in_band and self._in_band_since is None:
            self._in_band_since = now_s
            if self._oob_since is not None:
                self.out_of_band_windows.append((self._oob_since, now_s))
            self._oob_since = None
        elif not in_band and self._in_band_since is not None:
            self._in_band_since = None
            self._oob_since = now_s


def settle_time(times_s: List[float], samples_c: List[float],
                setpoint_c: float, origin_s: float = 0.0,
                band_c: float = 1.0) -> Optional[float]:
    """Time (from ``origin_s``) the trace enters the band for good.

    Single reverse pass (O(n)): walk back from the final sample until
    the first out-of-band one; the settle instant is the sample after
    it. Covers both edges the old quadratic scan mishandled: a run that
    settles exactly at the final sample settles *then*, and a run whose
    final sample is out of band never settled (returns ``None``).
    """
    settle_idx: Optional[int] = None
    for idx in range(len(samples_c) - 1, -1, -1):
        if abs(samples_c[idx] - setpoint_c) >= band_c:
            break
        settle_idx = idx
    if settle_idx is None:
        return None
    return times_s[settle_idx] - origin_s


__all__ = [
    "HEATER_FAILURE",
    "MonitorParams",
    "REGULATION_TIMEOUT",
    "SENSOR_CONFLICT",
    "SENSOR_LOSS",
    "THERMAL_RUNAWAY",
    "ZONE_DEGRADED_SPD",
    "ZONE_DEGRADED_TC",
    "ZONE_OK",
    "ZONE_QUARANTINED",
    "ZoneMonitor",
    "ZoneQuarantine",
    "settle_time",
]
