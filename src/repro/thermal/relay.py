"""Time-proportioned solid-state relay model.

The controller board's SSRs switch the resistive elements on/off; power
modulation is achieved by time-proportioning a duty cycle over a short
switching window. Over a control period the *average* delivered power is
``duty * heater_max``, with bounded switching frequency (SSRs switch at
zero crossings; the model enforces a minimum on/off dwell).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError


@dataclass
class SolidStateRelay:
    """One SSR channel feeding one heating element.

    Attributes
    ----------
    max_power_w:
        Power delivered when the relay is continuously on.
    window_s:
        Time-proportioning window; the duty cycle is realized as one
        on-pulse per window.
    min_dwell_s:
        Minimum pulse width the relay can realize; shorter commands snap
        to zero (protects against chattering).
    """

    max_power_w: float = 40.0
    window_s: float = 2.0
    min_dwell_s: float = 0.05
    _duty: float = field(default=0.0, init=False)
    _cycles: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.max_power_w <= 0 or self.window_s <= 0:
            raise ConfigurationError("relay power and window must be positive")
        if not 0 <= self.min_dwell_s < self.window_s:
            raise ConfigurationError("min dwell must be within the window")

    @property
    def duty(self) -> float:
        return self._duty

    @property
    def switch_cycles(self) -> int:
        """Number of on-pulses commanded so far (wear metric)."""
        return self._cycles

    def command(self, duty: float) -> float:
        """Set the duty cycle; returns the realized average power (W)."""
        if not 0.0 <= duty <= 1.0:
            raise ConfigurationError(f"duty {duty} outside [0, 1]")
        on_time = duty * self.window_s
        if on_time < self.min_dwell_s:
            realized = 0.0
        elif self.window_s - on_time < self.min_dwell_s:
            realized = 1.0
        else:
            realized = duty
        if realized > 0.0:
            self._cycles += 1
        self._duty = realized
        return realized * self.max_power_w

    def average_power_w(self) -> float:
        """Average power at the current duty cycle."""
        return self._duty * self.max_power_w
