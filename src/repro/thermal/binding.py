"""Binding thermal zones to DRAM devices.

The paper's testbed heats each DIMM *rank* independently (8 zones), so
different devices on the board can sit at different temperatures during
one experiment. This module maps testbed zones onto the DRAM geometry
and evaluates retention queries at each device's own regulated
temperature -- enabling gradient studies (e.g. one hot DIMM among cool
ones) that a single-temperature query cannot express.

Every retention query can be gated on the zone's regulation status:
:meth:`ThermalDramBinding.device_measurement_valid` answers whether the
device's zone currently satisfies the paper's steady-in-band condition,
:meth:`~ThermalDramBinding.require_valid` turns an invalid read into a
typed :class:`~repro.errors.MeasurementInvalidError`, and
:meth:`~ThermalDramBinding.validated_board_unique_locations` sweeps the
board while skipping quarantined devices -- never measuring a silently
wrong temperature.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.dram.cells import DramDevicePopulation
from repro.dram.geometry import DramGeometry
from repro.errors import ConfigurationError, MeasurementInvalidError
from repro.thermal.monitor import ZoneQuarantine
from repro.thermal.testbed import ThermalTestbed


@dataclass(frozen=True)
class ZoneBinding:
    """Assignment of testbed zones to (dimm, rank) pairs."""

    geometry: DramGeometry
    zone_of_rank: Dict[tuple, int]   # (dimm, rank) -> zone index

    def __post_init__(self) -> None:
        expected = {(d, r) for d in range(self.geometry.num_dimms)
                    for r in range(self.geometry.ranks_per_dimm)}
        if set(self.zone_of_rank) != expected:
            raise ConfigurationError(
                "binding must cover every (dimm, rank) pair exactly once")

    @classmethod
    def paper_default(cls, geometry: DramGeometry) -> "ZoneBinding":
        """One zone per rank, zones numbered dimm-major (the rig's wiring)."""
        mapping = {}
        zone = 0
        for dimm in range(geometry.num_dimms):
            for rank in range(geometry.ranks_per_dimm):
                mapping[(dimm, rank)] = zone % 8
                zone += 1
        return cls(geometry=geometry, zone_of_rank=mapping)

    def zone_of_device(self, device: int) -> int:
        dimm, rank, _slot = self.geometry.device_location(device)
        return self.zone_of_rank[(dimm, rank)]


class ThermalDramBinding:
    """Evaluates retention queries at per-device regulated temperatures."""

    def __init__(self, population: DramDevicePopulation,
                 testbed: ThermalTestbed,
                 binding: Optional[ZoneBinding] = None) -> None:
        self.population = population
        self.testbed = testbed
        self.binding = binding or ZoneBinding.paper_default(
            population.geometry)
        max_zone = max(self.binding.zone_of_rank.values())
        if max_zone >= len(testbed.configs):
            raise ConfigurationError(
                f"binding references zone {max_zone} but the testbed has "
                f"{len(testbed.configs)} zones")

    def device_temperature_c(self, device: int) -> float:
        """The device's current regulated temperature."""
        return self.testbed.zone_temperature_c(
            self.binding.zone_of_device(device))

    def device_zone_status(self, device: int) -> str:
        """Regulation status of the device's zone (ok/degraded/quarantined)."""
        return self.testbed.zone_status(self.binding.zone_of_device(device))

    def device_measurement_valid(self, device: int) -> bool:
        """Whether a retention read of ``device`` would be trustworthy now.

        True only when the device's zone is not quarantined and has held
        the paper's 1 degC band over the steady-state window (see
        :meth:`~repro.thermal.testbed.ThermalTestbed.zone_measurement_valid`).
        """
        return self.testbed.zone_measurement_valid(
            self.binding.zone_of_device(device))

    def require_valid(self, device: int) -> None:
        """Raise :class:`MeasurementInvalidError` unless the read is valid."""
        zone = self.binding.zone_of_device(device)
        if self.testbed.zone_measurement_valid(zone):
            return
        monitor = self.testbed.monitors[zone]
        if monitor.quarantine is not None:
            raise MeasurementInvalidError(
                f"device {device}: {monitor.quarantine.describe()}")
        raise MeasurementInvalidError(
            f"device {device}: zone {zone} out of regulation band "
            f"(status {monitor.status}, belief {monitor.estimate_c:.1f} degC "
            f"vs setpoint {monitor.setpoint_c:.0f})")

    def quarantined_devices(self) -> Dict[int, ZoneQuarantine]:
        """device -> quarantine record, for devices on quarantined zones."""
        records = {q.zone: q for q in self.testbed.zone_quarantines()}
        return {
            device: records[zone]
            for device in self.population.geometry.device_ids()
            for zone in (self.binding.zone_of_device(device),)
            if zone in records
        }

    def device_unique_locations(self, device: int,
                                interval_s: float) -> List[int]:
        """Per-bank weak-cell counts at the device's own temperature."""
        return self.population.device_unique_locations(
            device, interval_s, self.device_temperature_c(device))

    def board_unique_locations(self, interval_s: float) -> Dict[int, int]:
        """device -> total weak cells, each at its zone's temperature."""
        return {
            device: sum(self.device_unique_locations(device, interval_s))
            for device in self.population.geometry.device_ids()
        }

    def validated_board_unique_locations(
            self, interval_s: float) -> Dict[int, int]:
        """Board sweep gated on regulation validity.

        Devices on quarantined zones are *skipped* (their quarantine
        records are available via :meth:`quarantined_devices`); a device
        on a live zone that is merely out of band raises
        :class:`MeasurementInvalidError` -- the driver should
        re-regulate and retry rather than record a corrupted count.
        """
        counts: Dict[int, int] = {}
        for device in self.population.geometry.device_ids():
            zone = self.binding.zone_of_device(device)
            if self.testbed.monitors[zone].quarantine is not None:
                continue
            self.require_valid(device)
            counts[device] = sum(
                self.device_unique_locations(device, interval_s))
        return counts

    def gradient_summary(self, interval_s: float) -> Dict[int, Dict[str, object]]:
        """Per-zone mean weak-cell totals, temperature and status.

        The gradient experiment's deliverable: hot zones must show the
        Arrhenius-amplified counts while cool zones stay low, device by
        device on the *same* board. Each entry carries the zone's
        regulation ``status`` so downstream analysis can drop degraded
        or quarantined zones.
        """
        per_zone: Dict[int, List[int]] = {}
        for device, total in self.board_unique_locations(interval_s).items():
            per_zone.setdefault(
                self.binding.zone_of_device(device), []).append(total)
        return {
            zone: {
                "temperature_c": self.testbed.zone_temperature_c(zone),
                "mean_weak_cells": sum(totals) / len(totals),
                "devices": float(len(totals)),
                "status": self.testbed.zone_status(zone),
            }
            for zone, totals in sorted(per_zone.items())
        }
