"""Binding thermal zones to DRAM devices.

The paper's testbed heats each DIMM *rank* independently (8 zones), so
different devices on the board can sit at different temperatures during
one experiment. This module maps testbed zones onto the DRAM geometry
and evaluates retention queries at each device's own regulated
temperature -- enabling gradient studies (e.g. one hot DIMM among cool
ones) that a single-temperature query cannot express.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.dram.cells import DramDevicePopulation
from repro.dram.geometry import DramGeometry
from repro.errors import ConfigurationError
from repro.thermal.testbed import ThermalTestbed


@dataclass(frozen=True)
class ZoneBinding:
    """Assignment of testbed zones to (dimm, rank) pairs."""

    geometry: DramGeometry
    zone_of_rank: Dict[tuple, int]   # (dimm, rank) -> zone index

    def __post_init__(self) -> None:
        expected = {(d, r) for d in range(self.geometry.num_dimms)
                    for r in range(self.geometry.ranks_per_dimm)}
        if set(self.zone_of_rank) != expected:
            raise ConfigurationError(
                "binding must cover every (dimm, rank) pair exactly once")

    @classmethod
    def paper_default(cls, geometry: DramGeometry) -> "ZoneBinding":
        """One zone per rank, zones numbered dimm-major (the rig's wiring)."""
        mapping = {}
        zone = 0
        for dimm in range(geometry.num_dimms):
            for rank in range(geometry.ranks_per_dimm):
                mapping[(dimm, rank)] = zone % 8
                zone += 1
        return cls(geometry=geometry, zone_of_rank=mapping)

    def zone_of_device(self, device: int) -> int:
        dimm, rank, _slot = self.geometry.device_location(device)
        return self.zone_of_rank[(dimm, rank)]


class ThermalDramBinding:
    """Evaluates retention queries at per-device regulated temperatures."""

    def __init__(self, population: DramDevicePopulation,
                 testbed: ThermalTestbed,
                 binding: Optional[ZoneBinding] = None) -> None:
        self.population = population
        self.testbed = testbed
        self.binding = binding or ZoneBinding.paper_default(
            population.geometry)
        max_zone = max(self.binding.zone_of_rank.values())
        if max_zone >= len(testbed.configs):
            raise ConfigurationError(
                f"binding references zone {max_zone} but the testbed has "
                f"{len(testbed.configs)} zones")

    def device_temperature_c(self, device: int) -> float:
        """The device's current regulated temperature."""
        return self.testbed.zone_temperature_c(
            self.binding.zone_of_device(device))

    def device_unique_locations(self, device: int,
                                interval_s: float) -> List[int]:
        """Per-bank weak-cell counts at the device's own temperature."""
        return self.population.device_unique_locations(
            device, interval_s, self.device_temperature_c(device))

    def board_unique_locations(self, interval_s: float) -> Dict[int, int]:
        """device -> total weak cells, each at its zone's temperature."""
        return {
            device: sum(self.device_unique_locations(device, interval_s))
            for device in self.population.geometry.device_ids()
        }

    def gradient_summary(self, interval_s: float) -> Dict[int, Dict[str, float]]:
        """Per-zone mean weak-cell totals and temperature.

        The gradient experiment's deliverable: hot zones must show the
        Arrhenius-amplified counts while cool zones stay low, device by
        device on the *same* board.
        """
        per_zone: Dict[int, List[int]] = {}
        for device, total in self.board_unique_locations(interval_s).items():
            per_zone.setdefault(
                self.binding.zone_of_device(device), []).append(total)
        return {
            zone: {
                "temperature_c": self.testbed.zone_temperature_c(zone),
                "mean_weak_cells": sum(totals) / len(totals),
                "devices": float(len(totals)),
            }
            for zone, totals in sorted(per_zone.items())
        }
