"""Temperature sensors on the thermal testbed.

Two independent reads exist per DIMM, exactly as in the paper: the
adapter's thermocouple (fast, fine resolution) and the DIMM's own SPD
embedded sensor (slow, coarse). The controller fuses both; tests check
they agree within the expected offset band.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.errors import ConfigurationError
from repro.rand import SeedLike, substream


@dataclass
class Thermocouple:
    """K-type thermocouple taped to the heating element side.

    Fast response, small gaussian read noise, small fixed bias from its
    mounting position (closer to the element than the DRAM dies).
    """

    source: Callable[[], float]
    noise_c: float = 0.08
    bias_c: float = 0.3
    seed: SeedLike = None
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.noise_c < 0:
            raise ConfigurationError("noise cannot be negative")
        self._rng = substream(self.seed, "thermocouple")

    def read_c(self) -> float:
        return float(self.source()) + self.bias_c + float(self._rng.normal(0.0, self.noise_c))


@dataclass
class SpdSensor:
    """The DIMM's on-SPD temperature sensor (TSOD).

    0.25 degC quantization per the TSE2002-style parts, slow update
    rate, reads the die-side temperature (no mounting bias).
    """

    source: Callable[[], float]
    resolution_c: float = 0.25
    update_period_s: float = 1.0
    _last_time: float = field(default=0.0, init=False)
    _last_value: float = field(default=0.0, init=False)

    def __post_init__(self) -> None:
        if self.resolution_c <= 0 or self.update_period_s <= 0:
            raise ConfigurationError("SPD sensor parameters must be positive")
        # Seed the register from the source at power-on: a poll before the
        # first update period must return the construction-time reading,
        # never a stale 0.0 default.
        self._last_value = round(float(self.source())
                                 / self.resolution_c) * self.resolution_c

    def read_c(self, now_s: float = 0.0) -> float:
        if now_s - self._last_time >= self.update_period_s:
            truth = float(self.source())
            self._last_value = round(truth / self.resolution_c) * self.resolution_c
            self._last_time = now_s
        return self._last_value
