"""Discrete PID controller with clamped integral anti-windup.

One instance per DIMM zone, mirroring the four closed-loop PID
controllers of the paper's controller board. Output is a duty cycle in
[0, 1] consumed by the solid-state relay.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class PidGains:
    """Controller gains; defaults tuned for the default plant.

    With the default plant (tau ~ 60 s, gain ~ 2.1 degC/W, 40 W heater)
    these gains settle to within 1 degC in a few time constants without
    overshoot beyond ~1.5 degC -- comfortably matching the paper's
    "maximum deviation from the set temperature is less than 1 degC" in
    steady state.
    """

    kp: float = 0.08
    ki: float = 0.004
    kd: float = 0.15
    output_min: float = 0.0
    output_max: float = 1.0

    def __post_init__(self) -> None:
        if self.kp < 0 or self.ki < 0 or self.kd < 0:
            raise ConfigurationError("PID gains must be non-negative")
        if self.output_min >= self.output_max:
            raise ConfigurationError("output_min must be below output_max")


class PidController:
    """Position-form PID with integral clamping."""

    def __init__(self, setpoint_c: float, gains: PidGains = PidGains()) -> None:
        self.setpoint_c = setpoint_c
        self.gains = gains
        self._integral = 0.0
        self._last_error = None

    def reset(self) -> None:
        """Clear controller state (used on setpoint changes)."""
        self._integral = 0.0
        self._last_error = None

    def set_setpoint(self, setpoint_c: float) -> None:
        self.setpoint_c = setpoint_c
        self.reset()

    def update(self, measured_c: float, dt_s: float) -> float:
        """One control step; returns the commanded duty cycle [0, 1]."""
        if dt_s <= 0:
            raise ConfigurationError("control step must be positive")
        g = self.gains
        error = self.setpoint_c - measured_c
        self._integral += error * dt_s
        # Anti-windup: clamp the integral to the range that alone could
        # produce a full-scale output.
        if g.ki > 0:
            bound = g.output_max / g.ki
            self._integral = max(-bound, min(bound, self._integral))
        derivative = 0.0
        if self._last_error is not None:
            derivative = (error - self._last_error) / dt_s
        self._last_error = error
        output = g.kp * error + g.ki * self._integral + g.kd * derivative
        return max(g.output_min, min(g.output_max, output))
