"""The eight-zone thermal testbed controller board.

Glues plants, sensors, PID loops and relays into the rig of paper
Figure 3: one zone per DIMM rank (4 DIMMs x 2 ranks = 8 zones), a shared
control tick running on the simkit event loop, and per-zone regulation
telemetry. The acceptance property -- steady-state deviation below
1 degC -- is validated by ``tests/test_thermal_testbed.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import ConfigurationError
from repro.rand import SeedLike
from repro.simkit import Simulator
from repro.thermal.pid import PidController, PidGains
from repro.thermal.plant import PlantParams, ThermalPlant
from repro.thermal.relay import SolidStateRelay
from repro.thermal.sensors import SpdSensor, Thermocouple

NUM_ZONES = 8


@dataclass(frozen=True)
class ZoneConfig:
    """Configuration of one heated zone (one DIMM rank)."""

    setpoint_c: float
    plant: PlantParams = PlantParams()
    gains: PidGains = PidGains()

    def __post_init__(self) -> None:
        if not 20.0 <= self.setpoint_c <= 110.0:
            raise ConfigurationError(
                f"setpoint {self.setpoint_c} degC outside the rig's 20..110 range"
            )


@dataclass
class ZoneReport:
    """Regulation telemetry for one zone after a run."""

    zone: int
    setpoint_c: float
    final_c: float
    max_abs_error_steady_c: float
    settle_time_s: Optional[float]
    samples: List[float] = field(default_factory=list)

    @property
    def within_one_degree(self) -> bool:
        """The paper's spec: steady-state deviation < 1 degC."""
        return self.max_abs_error_steady_c < 1.0


class ThermalTestbed:
    """The controller board: 8 PID zones on one event loop.

    Parameters
    ----------
    configs:
        One :class:`ZoneConfig` per zone (up to 8).
    control_period_s:
        PID tick period (the Raspberry Pi loop rate).
    ambient_c:
        Lab ambient temperature.
    seed:
        Seed for sensor noise streams.
    """

    def __init__(self, configs: List[ZoneConfig], control_period_s: float = 2.0,
                 ambient_c: float = 28.0, seed: SeedLike = None) -> None:
        if not 1 <= len(configs) <= NUM_ZONES:
            raise ConfigurationError(f"1..{NUM_ZONES} zones supported")
        if control_period_s <= 0:
            raise ConfigurationError("control period must be positive")
        self.sim = Simulator()
        self.control_period_s = control_period_s
        self.configs = list(configs)
        self.plants = [ThermalPlant(cfg.plant, ambient_c=ambient_c) for cfg in configs]
        self.pids = [PidController(cfg.setpoint_c, cfg.gains) for cfg in configs]
        self.relays = [SolidStateRelay(max_power_w=cfg.plant.heater_max_w)
                       for cfg in configs]
        self.thermocouples = [
            Thermocouple(source=plant_reader(p), seed=seed) for p in self.plants
        ]
        self.spd_sensors = [SpdSensor(source=plant_reader(p)) for p in self.plants]
        self._history: List[List[float]] = [[] for _ in configs]
        self._last_tick_s = 0.0
        self._ticking = False

    # ------------------------------------------------------------------
    # Control loop
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        dt = self.sim.now - self._last_tick_s
        if dt <= 0:
            dt = self.control_period_s
        self._last_tick_s = self.sim.now
        for i, plant in enumerate(self.plants):
            plant.step(dt)
            # Fuse the fast thermocouple with the unbiased SPD read: the
            # SPD anchors the offset, the thermocouple provides speed.
            tc = self.thermocouples[i].read_c()
            spd = self.spd_sensors[i].read_c(self.sim.now)
            fused = tc - self.thermocouples[i].bias_c * 0.5 + (spd - tc) * 0.2
            duty = self.pids[i].update(fused, dt)
            power = self.relays[i].command(duty)
            plant.set_heater(power)
            self._history[i].append(plant.temperature_c)
        if self._ticking:
            self.sim.schedule(self.control_period_s, self._tick)

    def run(self, duration_s: float) -> List[ZoneReport]:
        """Regulate for ``duration_s`` of virtual time; return reports."""
        if duration_s <= 0:
            raise ConfigurationError("duration must be positive")
        self._ticking = True
        self.sim.schedule(0.0, self._tick)
        self.sim.run_until(self.sim.now + duration_s)
        self._ticking = False
        return [self._report(i) for i in range(len(self.configs))]

    def set_setpoint(self, zone: int, setpoint_c: float) -> None:
        """Retarget one zone mid-experiment (50 -> 60 degC sweeps)."""
        if not 0 <= zone < len(self.configs):
            raise ConfigurationError(f"zone {zone} out of range")
        self.pids[zone].set_setpoint(setpoint_c)
        self.configs[zone] = ZoneConfig(
            setpoint_c=setpoint_c,
            plant=self.configs[zone].plant,
            gains=self.configs[zone].gains,
        )
        self._history[zone].clear()

    def zone_temperature_c(self, zone: int) -> float:
        return self.plants[zone].temperature_c

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def _report(self, zone: int) -> ZoneReport:
        history = self._history[zone]
        setpoint = self.pids[zone].setpoint_c
        # Steady-state window: the last third of the run.
        steady = history[len(history) * 2 // 3:] if history else []
        max_err = max((abs(t - setpoint) for t in steady), default=float("inf"))
        settle = None
        for idx, temp in enumerate(history):
            if abs(temp - setpoint) < 1.0:
                if all(abs(t - setpoint) < 1.0 for t in history[idx:]):
                    settle = idx * self.control_period_s
                    break
        return ZoneReport(
            zone=zone,
            setpoint_c=setpoint,
            final_c=self.plants[zone].temperature_c,
            max_abs_error_steady_c=max_err,
            settle_time_s=settle,
            samples=list(history),
        )


def plant_reader(plant: ThermalPlant):
    """A zero-argument reader bound to one plant's temperature."""
    return lambda: plant.temperature_c
