"""The eight-zone thermal testbed controller board.

Glues plants, sensors, PID loops and relays into the rig of paper
Figure 3: one zone per DIMM rank (4 DIMMs x 2 ranks = 8 zones), a shared
control tick running on the simkit event loop, and per-zone regulation
telemetry. The acceptance property -- steady-state deviation below
1 degC -- is validated by ``tests/test_thermal_testbed.py``.

The control path is fault-tolerant: each zone's PID acts on the fused
belief of a :class:`~repro.thermal.monitor.ZoneMonitor` (thermocouple/SPD
residual voting plus rate plausibility -- never the plant's ground
truth), scheduled rig faults from a
:class:`~repro.thermal.faults.ThermalFaultInjector` lens the sensor reads
and actuator commands, and a zone whose monitor trips its safe-state gets
its heater cut and is reported as a typed
:class:`~repro.thermal.monitor.ZoneQuarantine`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.rand import SeedLike
from repro.simkit import Simulator
from repro.thermal.monitor import (
    MonitorParams,
    ZoneMonitor,
    ZoneQuarantine,
    settle_time,
)
from repro.thermal.faults import ThermalFaultInjector
from repro.thermal.pid import PidController, PidGains
from repro.thermal.plant import PlantParams, ThermalPlant
from repro.thermal.relay import SolidStateRelay
from repro.thermal.sensors import SpdSensor, Thermocouple

NUM_ZONES = 8


@dataclass(frozen=True)
class ZoneConfig:
    """Configuration of one heated zone (one DIMM rank)."""

    setpoint_c: float
    plant: PlantParams = PlantParams()
    gains: PidGains = PidGains()

    def __post_init__(self) -> None:
        if not 20.0 <= self.setpoint_c <= 110.0:
            raise ConfigurationError(
                f"setpoint {self.setpoint_c} degC outside the rig's 20..110 range"
            )


@dataclass
class ZoneReport:
    """Regulation telemetry for one zone after a run.

    ``samples`` is the plant's true trajectory (the simulator's
    validation channel); ``fused_final_c`` and the validity fields come
    from the controller's own belief -- the only view a real rig has.
    """

    zone: int
    setpoint_c: float
    final_c: float
    max_abs_error_steady_c: float
    settle_time_s: Optional[float]
    samples: List[float] = field(default_factory=list)
    status: str = "ok"
    fused_final_c: Optional[float] = None
    measurement_valid: bool = True
    in_band_duration_s: float = 0.0
    quarantine: Optional[ZoneQuarantine] = None
    out_of_band_windows: Tuple[Tuple[float, float], ...] = ()

    @property
    def within_one_degree(self) -> bool:
        """The paper's spec: steady-state deviation < 1 degC."""
        return self.max_abs_error_steady_c < 1.0


class ThermalTestbed:
    """The controller board: 8 PID zones on one event loop.

    Parameters
    ----------
    configs:
        One :class:`ZoneConfig` per zone (up to 8).
    control_period_s:
        PID tick period (the Raspberry Pi loop rate).
    ambient_c:
        Lab ambient temperature.
    seed:
        Seed for sensor noise streams.
    faults:
        Optional thermal rig faults: a
        :class:`~repro.thermal.faults.ThermalFaultInjector`, a
        :class:`~repro.core.faults.FaultPlan` (its ``thermal_faults``
        are used), or a sequence of
        :class:`~repro.core.faults.ThermalFault`.
    monitor_params:
        Detection thresholds shared by every zone's monitor.
    """

    def __init__(self, configs: List[ZoneConfig], control_period_s: float = 2.0,
                 ambient_c: float = 28.0, seed: SeedLike = None,
                 faults=None,
                 monitor_params: MonitorParams = MonitorParams()) -> None:
        if not 1 <= len(configs) <= NUM_ZONES:
            raise ConfigurationError(f"1..{NUM_ZONES} zones supported")
        if control_period_s <= 0:
            raise ConfigurationError("control period must be positive")
        self.sim = Simulator()
        self.control_period_s = control_period_s
        self.configs = list(configs)
        self.faults = ThermalFaultInjector.coerce(faults)
        self.plants = [ThermalPlant(cfg.plant, ambient_c=ambient_c) for cfg in configs]
        self.pids = [PidController(cfg.setpoint_c, cfg.gains) for cfg in configs]
        self.relays = [SolidStateRelay(max_power_w=cfg.plant.heater_max_w)
                       for cfg in configs]
        self.thermocouples = [
            Thermocouple(source=plant_reader(p), seed=seed) for p in self.plants
        ]
        self.spd_sensors = [SpdSensor(source=plant_reader(p)) for p in self.plants]
        self.monitors = [
            ZoneMonitor(zone=i, setpoint_c=cfg.setpoint_c, plant=cfg.plant,
                        ambient_c=ambient_c, params=monitor_params)
            for i, cfg in enumerate(configs)
        ]
        self._base_ambient_c = ambient_c
        self._history: List[List[float]] = [[] for _ in configs]
        self._est_history: List[List[float]] = [[] for _ in configs]
        self._times: List[List[float]] = [[] for _ in configs]
        self._origin_s: List[float] = [0.0 for _ in configs]
        self._last_duty: List[float] = [0.0 for _ in configs]
        self._last_tick_s = 0.0
        self._ticking = False

    # ------------------------------------------------------------------
    # Control loop
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        now = self.sim.now
        dt = now - self._last_tick_s
        if dt <= 0:
            dt = self.control_period_s
        self._last_tick_s = now
        for i, plant in enumerate(self.plants):
            state = self.faults.zone_state(i) if self.faults else None
            if state is not None:
                plant.ambient_c = self._base_ambient_c \
                    + state.ambient_offset_c(now)
            plant.step(dt)
            # The controller sees only what the channels report -- raw
            # sensor reads lensed through any active rig faults, fused by
            # the zone monitor. Plant internals (true bias, temperature)
            # are off-limits to the control path.
            tc = self.thermocouples[i].read_c()
            spd = self.spd_sensors[i].read_c(now)
            if state is not None:
                tc = state.thermocouple_reading(tc, now)
                spd = state.spd_reading(spd, now)
            monitor = self.monitors[i]
            fused = monitor.observe(now, dt, tc, spd, self._last_duty[i])
            if monitor.quarantine is not None:
                duty = 0.0  # hard safe-state: heater cutoff
            else:
                duty = self.pids[i].update(fused, dt)
            power = self.relays[i].command(duty)
            if state is not None:
                power = state.delivered_power_w(
                    power, now, self.relays[i].max_power_w)
            plant.set_heater(power)
            self._last_duty[i] = duty
            self._history[i].append(plant.temperature_c)
            self._est_history[i].append(fused)
            self._times[i].append(now)
        if self._ticking:
            self.sim.schedule(self.control_period_s, self._tick)

    def run(self, duration_s: float) -> List[ZoneReport]:
        """Regulate for ``duration_s`` of virtual time; return reports."""
        if duration_s <= 0:
            raise ConfigurationError("duration must be positive")
        self._last_tick_s = self.sim.now
        self._ticking = True
        self.sim.schedule(0.0, self._tick)
        self.sim.run_until(self.sim.now + duration_s)
        self._ticking = False
        return [self._report(i) for i in range(len(self.configs))]

    def set_setpoint(self, zone: int, setpoint_c: float) -> None:
        """Retarget one zone mid-experiment (50 -> 60 degC sweeps).

        Resets the zone's full regulation state -- PID integrator,
        monitor band bookkeeping and settle telemetry all restart from
        the retarget instant, so the second leg of a sweep neither
        inherits windup nor mis-reports its settle time.
        """
        if not 0 <= zone < len(self.configs):
            raise ConfigurationError(f"zone {zone} out of range")
        self.pids[zone].set_setpoint(setpoint_c)
        self.monitors[zone].retarget(setpoint_c, self.sim.now)
        self.configs[zone] = ZoneConfig(
            setpoint_c=setpoint_c,
            plant=self.configs[zone].plant,
            gains=self.configs[zone].gains,
        )
        self._history[zone].clear()
        self._est_history[zone].clear()
        self._times[zone].clear()
        self._origin_s[zone] = self.sim.now

    def zone_temperature_c(self, zone: int) -> float:
        """The plant's true temperature (physics channel, not control)."""
        return self.plants[zone].temperature_c

    def zone_estimate_c(self, zone: int) -> float:
        """The controller's fused temperature belief for one zone."""
        return self.monitors[zone].estimate_c

    def zone_status(self, zone: int) -> str:
        """The zone's regulation status (``ok``/degraded/quarantined)."""
        return self.monitors[zone].status

    def zone_measurement_valid(self, zone: int) -> bool:
        """Whether a retention measurement taken *now* would be valid.

        Valid means: not quarantined, currently in band, and in band for
        at least the last third of the window since the zone was last
        retargeted -- the same steady-state window the paper's 1 degC
        spec is stated over.
        """
        monitor = self.monitors[zone]
        if monitor.quarantine is not None:
            return False
        window = self.sim.now - self._origin_s[zone]
        if window <= 0:
            return False
        return monitor.in_band_duration_s(self.sim.now) >= window / 3.0

    def quarantine_zone(self, zone: int, kind: str,
                        detail: str = "") -> ZoneQuarantine:
        """Force a zone into the safe-state from outside the loop.

        Used by campaign drivers when a zone exhausts its re-regulation
        budget; the heater is cut immediately.
        """
        if not 0 <= zone < len(self.configs):
            raise ConfigurationError(f"zone {zone} out of range")
        record = self.monitors[zone].force_quarantine(
            kind, self.sim.now, detail)
        self._last_duty[zone] = 0.0
        self.relays[zone].command(0.0)
        self.plants[zone].set_heater(0.0)
        return record

    def zone_quarantines(self) -> Tuple[ZoneQuarantine, ...]:
        """All quarantined zones' typed records, ascending by zone."""
        return tuple(m.quarantine for m in self.monitors
                     if m.quarantine is not None)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def _report(self, zone: int) -> ZoneReport:
        history = self._history[zone]
        times = self._times[zone]
        monitor = self.monitors[zone]
        setpoint = self.pids[zone].setpoint_c
        # Steady-state window: the last third of the run.
        steady = history[len(history) * 2 // 3:] if history else []
        max_err = max((abs(t - setpoint) for t in steady), default=float("inf"))
        settle = settle_time(times, history, setpoint,
                             origin_s=self._origin_s[zone])
        return ZoneReport(
            zone=zone,
            setpoint_c=setpoint,
            final_c=self.plants[zone].temperature_c,
            max_abs_error_steady_c=max_err,
            settle_time_s=settle,
            samples=list(history),
            status=monitor.status,
            fused_final_c=monitor.estimate_c,
            measurement_valid=self.zone_measurement_valid(zone),
            in_band_duration_s=monitor.in_band_duration_s(self.sim.now),
            quarantine=monitor.quarantine,
            out_of_band_windows=tuple(monitor.out_of_band_windows),
        )


def plant_reader(plant: ThermalPlant):
    """A zero-argument reader bound to one plant's temperature."""
    return lambda: plant.temperature_c
