"""On-board sensor models exposed through SLIMpro.

The management processor reads SoC/DRAM power and temperature sensors.
Each sensor wraps a callable 'physical truth' source and adds quantization
and bounded update rate, matching how coarse the real board's telemetry
is (which is exactly why the paper needed the EM side-channel for
fine-grained noise sensing).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.errors import ConfigurationError


@dataclass
class Sensor:
    """A quantized, rate-limited telemetry channel.

    Attributes
    ----------
    name:
        Channel name, e.g. ``"power.pmd"`` or ``"temp.dimm0"``.
    source:
        Zero-argument callable returning the physical truth value.
    resolution:
        Quantization step of the reported value (e.g. 0.1 W, 1 degC).
    min_interval_s:
        Minimum virtual-time spacing between distinct readings; reads
        issued faster return the cached value -- the behaviour that makes
        millisecond-scale droops invisible to the platform's own sensors.
    """

    name: str
    source: Callable[[], float]
    resolution: float = 0.1
    min_interval_s: float = 0.1
    _last_time: Optional[float] = field(default=None, init=False)
    _last_value: float = field(default=0.0, init=False)

    def __post_init__(self) -> None:
        if self.resolution <= 0:
            raise ConfigurationError("sensor resolution must be positive")

    def read(self, now_s: float = 0.0) -> float:
        """Read the channel at virtual time ``now_s``."""
        if self._last_time is not None and now_s - self._last_time < self.min_interval_s:
            return self._last_value
        truth = float(self.source())
        quantized = round(truth / self.resolution) * self.resolution
        self._last_time = now_s
        self._last_value = quantized
        return quantized


class SensorBank:
    """A named collection of sensors with bulk read support."""

    def __init__(self) -> None:
        self._sensors: dict = {}

    def add(self, sensor: Sensor) -> None:
        if sensor.name in self._sensors:
            raise ConfigurationError(f"duplicate sensor name {sensor.name!r}")
        self._sensors[sensor.name] = sensor

    def read(self, name: str, now_s: float = 0.0) -> float:
        if name not in self._sensors:
            raise KeyError(name)
        return self._sensors[name].read(now_s)

    def read_all(self, now_s: float = 0.0) -> dict:
        """Snapshot every channel (a SLIMpro telemetry dump)."""
        return {name: s.read(now_s) for name, s in sorted(self._sensors.items())}

    def names(self) -> List[str]:
        return sorted(self._sensors)

    def __contains__(self, name: str) -> bool:
        return name in self._sensors

    def __len__(self) -> int:
        return len(self._sensors)
