"""Static topology of the X-Gene2 Server-on-Chip.

Mirrors Section II of the paper: 4 processor modules (PMDs), each with two
64-bit ARMv8 cores at 2.4 GHz; per-core 32 KB L1I and 32 KB L1D; a 256 KB
L2 per PMD shared by its two cores; an 8 MB L3 shared through the
cache-coherent Central Switch (CSW); two Memory Controller Bridges (MCBs),
each connected to two DDR3 Memory Control Units (MCUs); each MCU drives
one DDR3 channel with up to two DIMMs of two ranks each.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.errors import TopologyError

NUM_PMDS = 4
CORES_PER_PMD = 2
NUM_CORES = NUM_PMDS * CORES_PER_PMD

L1I_BYTES = 32 * 1024
L1D_BYTES = 32 * 1024
L2_BYTES_PER_PMD = 256 * 1024
L3_BYTES = 8 * 1024 * 1024
CACHE_LINE_BYTES = 64

NUM_MCBS = 2
MCUS_PER_MCB = 2
NUM_MCUS = NUM_MCBS * MCUS_PER_MCB
DIMMS_PER_MCU = 2
RANKS_PER_DIMM = 2

NOMINAL_FREQ_GHZ = 2.4
#: The reduced frequency used by the paper's Figure 5 tradeoff analysis.
REDUCED_FREQ_GHZ = 1.2


@dataclass(frozen=True)
class CoreId:
    """Identifies one core as ``(pmd, lane)``; ``lane`` is 0 or 1."""

    pmd: int
    lane: int

    def __post_init__(self) -> None:
        if not 0 <= self.pmd < NUM_PMDS:
            raise TopologyError(f"pmd index {self.pmd} outside 0..{NUM_PMDS - 1}")
        if not 0 <= self.lane < CORES_PER_PMD:
            raise TopologyError(f"lane index {self.lane} outside 0..{CORES_PER_PMD - 1}")

    @property
    def linear(self) -> int:
        """Flat core index 0..7, the numbering the paper uses."""
        return self.pmd * CORES_PER_PMD + self.lane

    @classmethod
    def from_linear(cls, index: int) -> "CoreId":
        """Build a :class:`CoreId` from a flat index 0..7."""
        if not 0 <= index < NUM_CORES:
            raise TopologyError(f"core index {index} outside 0..{NUM_CORES - 1}")
        return cls(pmd=index // CORES_PER_PMD, lane=index % CORES_PER_PMD)

    def __str__(self) -> str:
        return f"core{self.linear}(pmd{self.pmd}.{self.lane})"


@dataclass(frozen=True)
class SocTopology:
    """Queryable description of the SoC component tree.

    The topology is fixed for the X-Gene2 but kept as a value object so
    tests (and hypothetical other platforms) can instantiate variants.
    """

    num_pmds: int = NUM_PMDS
    cores_per_pmd: int = CORES_PER_PMD
    l1i_bytes: int = L1I_BYTES
    l1d_bytes: int = L1D_BYTES
    l2_bytes_per_pmd: int = L2_BYTES_PER_PMD
    l3_bytes: int = L3_BYTES
    cache_line_bytes: int = CACHE_LINE_BYTES
    num_mcbs: int = NUM_MCBS
    mcus_per_mcb: int = MCUS_PER_MCB
    dimms_per_mcu: int = DIMMS_PER_MCU
    ranks_per_dimm: int = RANKS_PER_DIMM
    nominal_freq_ghz: float = NOMINAL_FREQ_GHZ

    def __post_init__(self) -> None:
        for name in ("num_pmds", "cores_per_pmd", "num_mcbs", "mcus_per_mcb",
                     "dimms_per_mcu", "ranks_per_dimm"):
            if getattr(self, name) <= 0:
                raise TopologyError(f"{name} must be positive")

    @property
    def num_cores(self) -> int:
        return self.num_pmds * self.cores_per_pmd

    @property
    def num_mcus(self) -> int:
        return self.num_mcbs * self.mcus_per_mcb

    @property
    def num_dimms(self) -> int:
        return self.num_mcus * self.dimms_per_mcu

    @property
    def num_ranks(self) -> int:
        return self.num_dimms * self.ranks_per_dimm

    def cores(self) -> Iterator[CoreId]:
        """Iterate all cores in linear order."""
        for index in range(self.num_cores):
            yield CoreId.from_linear(index)

    def pmd_cores(self, pmd: int) -> List[CoreId]:
        """The cores belonging to PMD ``pmd``."""
        if not 0 <= pmd < self.num_pmds:
            raise TopologyError(f"pmd index {pmd} outside 0..{self.num_pmds - 1}")
        return [CoreId(pmd, lane) for lane in range(self.cores_per_pmd)]

    def l2_sharers(self, core: CoreId) -> List[CoreId]:
        """Cores sharing an L2 with ``core`` (its PMD siblings)."""
        return self.pmd_cores(core.pmd)

    def mcu_of_dimm(self, dimm: int) -> int:
        """MCU index serving DIMM ``dimm``."""
        if not 0 <= dimm < self.num_dimms:
            raise TopologyError(f"dimm index {dimm} outside 0..{self.num_dimms - 1}")
        return dimm // self.dimms_per_mcu

    def mcb_of_mcu(self, mcu: int) -> int:
        """MCB index bridging MCU ``mcu`` to the central switch."""
        if not 0 <= mcu < self.num_mcus:
            raise TopologyError(f"mcu index {mcu} outside 0..{self.num_mcus - 1}")
        return mcu // self.mcus_per_mcb

    def dimm_rank_pairs(self) -> Iterator[Tuple[int, int]]:
        """Iterate ``(dimm, rank)`` pairs across the whole board."""
        for dimm in range(self.num_dimms):
            for rank in range(self.ranks_per_dimm):
                yield dimm, rank
