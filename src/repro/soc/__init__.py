"""X-Gene2 Server-on-Chip platform model.

This package models the hardware substrate of the paper's testbed
(Section II): four processor modules (PMDs) of two ARMv8 cores each, the
cache hierarchy, the memory-controller bridges, the SLIMpro management
processor, the voltage domains with their regulators, and the analytic
power model used for savings projections.

The physical chip-to-chip heterogeneity the paper measures (three sigma
chips: TTT/TFF/TSS) is captured by :mod:`repro.soc.corners` and
:mod:`repro.soc.chip`, whose parameters are calibrated to the paper's
reported Vmin figures -- see DESIGN.md section 2 for the substitution
rationale.
"""

from repro.soc.corners import ProcessCorner, CORNER_PARAMS, CornerParams
from repro.soc.topology import (
    CACHE_LINE_BYTES,
    CORES_PER_PMD,
    L1D_BYTES,
    L1I_BYTES,
    L2_BYTES_PER_PMD,
    L3_BYTES,
    NUM_CORES,
    NUM_MCBS,
    NUM_MCUS,
    NUM_PMDS,
    CoreId,
    SocTopology,
)
from repro.soc.chip import Chip, CoreVminModel
from repro.soc.domains import VoltageDomain, VoltageRegulator, DomainName
from repro.soc.slimpro import SLIMpro, SensorReading, EccReport
from repro.soc.power import CorePowerModel, DomainPowerModel
from repro.soc.xgene2 import XGene2Platform, build_platform, build_reference_chips

__all__ = [
    "CACHE_LINE_BYTES",
    "CORES_PER_PMD",
    "CORNER_PARAMS",
    "Chip",
    "CoreId",
    "CorePowerModel",
    "CoreVminModel",
    "CornerParams",
    "DomainName",
    "DomainPowerModel",
    "EccReport",
    "L1D_BYTES",
    "L1I_BYTES",
    "L2_BYTES_PER_PMD",
    "L3_BYTES",
    "NUM_CORES",
    "NUM_MCBS",
    "NUM_MCUS",
    "NUM_PMDS",
    "ProcessCorner",
    "SLIMpro",
    "SensorReading",
    "SocTopology",
    "VoltageDomain",
    "VoltageRegulator",
    "XGene2Platform",
    "build_platform",
    "build_reference_chips",
]
