"""Behavioural chip model: per-core Vmin and run-outcome evaluation.

A :class:`Chip` combines a process corner's calibrated parameters with a
small amount of seeded manufacturing noise (so two TTT chips are similar
but not identical) and answers the two questions the characterization
framework asks of hardware:

1. *What is core C's Vmin for workload W at frequency F?* -- an oracle
   used by tests and analysis code.
2. *What happens if I actually run W on C at (V, F)?* -- the sampled,
   noisy behaviour the campaign executor observes: pass, or a failure
   mode drawn from the proximity to Vmin (matching how real undervolting
   campaigns see CEs first, then UEs/SDCs, then crashes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.cpu.outcomes import RunOutcome
from repro.errors import TopologyError
from repro.rand import SeedLike, substream
from repro.soc.corners import CORNER_PARAMS, NOMINAL_PMD_MV, CornerParams, ProcessCorner
from repro.soc.topology import NOMINAL_FREQ_GHZ, NUM_CORES, CoreId

#: Width (mV) of the stochastic failure onset band above intrinsic Vmin.
#: Within [Vmin, Vmin + band) runs fail probabilistically -- this models
#: the run-to-run variability that forces the paper to repeat each
#: undervolting experiment ten times.
FAILURE_ONSET_BAND_MV = 6.0

#: Below Vmin by more than this, the part no longer produces correctable
#: errors -- it crashes or hangs outright.
HARD_CRASH_DEPTH_MV = 12.0

#: Integer outcome codes used by the batched sampling path, ordered by
#: severity so that ``max`` over cores picks the worst outcome of a
#: repetition. ``OUTCOME_FROM_CODE[code]`` maps back to the enum.
OUTCOME_FROM_CODE: tuple = (
    RunOutcome.CORRECT,
    RunOutcome.CORRECTED_ERROR,
    RunOutcome.UNCORRECTED_ERROR,
    RunOutcome.SDC,
    RunOutcome.CRASH,
    RunOutcome.HANG,
)

#: Reverse map: outcome enum -> severity-ordered integer code.
CODE_FROM_OUTCOME = {outcome: code for code, outcome in enumerate(OUTCOME_FROM_CODE)}

_CODE_CORRECT, _CODE_CE, _CODE_UE, _CODE_SDC, _CODE_CRASH, _CODE_HANG = range(6)

#: Cap on the per-chip Vmin memo; cleared wholesale when exceeded so
#: adversarial swing sweeps (GA populations) cannot grow it unboundedly.
_VMIN_CACHE_LIMIT = 65536


def _classify_uniforms(margin: float, uniforms: np.ndarray,
                       sdc_bias: float) -> np.ndarray:
    """Vectorized outcome classification for one operating margin.

    ``uniforms`` holds one U(0,1) draw per repetition; the branch taken
    (onset band / mid band / deep violation) is a pure function of the
    margin, so a whole column of repetitions classifies in one numpy
    pass. Bit-compatible with the scalar :meth:`Chip.observe_run` logic:
    the same draw produces the same outcome.
    """
    if margin >= 0.0:
        # Onset band: probabilistic correctable errors only.
        fail_p = 1.0 - margin / FAILURE_ONSET_BAND_MV
        return np.where(uniforms < 0.5 * fail_p, _CODE_CE, _CODE_CORRECT)
    depth = -margin
    if depth >= HARD_CRASH_DEPTH_MV:
        return np.where(uniforms < 0.3, _CODE_HANG, _CODE_CRASH)
    crash_p = depth / HARD_CRASH_DEPTH_MV * 0.5
    codes = np.full(uniforms.shape, _CODE_UE, dtype=np.int64)
    codes[uniforms < crash_p + (1.0 - crash_p) * sdc_bias] = _CODE_SDC
    codes[uniforms < crash_p] = _CODE_CRASH
    return codes


@dataclass(frozen=True)
class CoreVminModel:
    """Vmin decomposition for one core -- the oracle view.

    ``vmin_mv = v_crit + core_offset + droop(swing)`` (all mV).
    """

    core: CoreId
    v_crit_mv: float
    core_offset_mv: float

    def vmin_mv(self, droop_mv: float) -> float:
        """Total Vmin for a workload producing ``droop_mv`` of noise."""
        return self.v_crit_mv + self.core_offset_mv + droop_mv


class Chip:
    """One physical chip instance of a given process corner.

    Parameters
    ----------
    corner:
        Which sigma class the part belongs to.
    seed:
        Seed for the part's manufacturing noise (+-1.5 mV per core) and
        for the stochastic failure behaviour observed by runs. Chips
        built via :func:`repro.soc.xgene2.build_reference_chips` use
        fixed seeds so the headline experiments are reproducible.
    serial:
        Free-form part identifier carried into logs.
    jitter_sigma_mv:
        Standard deviation of per-core manufacturing noise added on top
        of the corner's calibrated offsets. The paper's three reference
        parts are built with 0.0 (their offsets *are* the calibration);
        additional parts of the same corner sample this noise.
    """

    def __init__(self, corner: ProcessCorner, seed: SeedLike = None,
                 serial: Optional[str] = None,
                 jitter_sigma_mv: float = 0.8) -> None:
        self.corner = corner
        self.params: CornerParams = CORNER_PARAMS[corner]
        self.serial = serial or f"{corner.value}-0"
        self._noise_rng = substream(seed, f"chip-noise-{self.serial}")
        self._run_rng = substream(seed, f"chip-runs-{self.serial}")
        # Manufacturing noise is frozen at construction: the same chip
        # answers the same oracle queries forever.
        if jitter_sigma_mv > 0:
            jitter = self._noise_rng.normal(0.0, jitter_sigma_mv, size=NUM_CORES)
            jitter -= jitter.min()  # keep the strongest core's offset at 0
        else:
            jitter = np.zeros(NUM_CORES)
        self._core_offsets_mv = tuple(
            base + extra for base, extra in zip(self.params.core_offsets_mv, jitter)
        )
        # Memo of (core, swing, freq) -> Vmin. The decomposition is
        # frozen at construction, so entries never invalidate.
        self._vmin_cache: dict = {}

    # ------------------------------------------------------------------
    # Oracle interface
    # ------------------------------------------------------------------
    def core_offset_mv(self, core: CoreId) -> float:
        """This part's Vmin offset for ``core`` (mV, 0 = strongest)."""
        return self._core_offsets_mv[core.linear]

    def core_model(self, core: CoreId, freq_ghz: float = NOMINAL_FREQ_GHZ) -> CoreVminModel:
        """The Vmin decomposition for ``core`` at ``freq_ghz``."""
        return CoreVminModel(
            core=core,
            v_crit_mv=self.params.v_crit_at(freq_ghz),
            core_offset_mv=self.core_offset_mv(core),
        )

    def droop_mv(self, swing: float, freq_ghz: float = NOMINAL_FREQ_GHZ) -> float:
        """Droop (mV) for a normalized current swing at ``freq_ghz``.

        Droop scales with frequency because the excitation current is
        proportional to switching rate.
        """
        freq_factor = freq_ghz / NOMINAL_FREQ_GHZ
        return self.params.droop_mv(swing) * freq_factor

    def vmin_mv(self, core: CoreId, swing: float,
                freq_ghz: float = NOMINAL_FREQ_GHZ) -> float:
        """True Vmin (mV) of ``core`` for a workload with ``swing``.

        Memoized per ``(core, swing, freq)``: the decomposition is fixed
        at construction, and the campaign engine queries the same few
        operating points thousands of times per voltage ladder.
        """
        key = (core.linear, swing, freq_ghz)
        cached = self._vmin_cache.get(key)
        if cached is None:
            model = self.core_model(core, freq_ghz)
            cached = model.vmin_mv(self.droop_mv(swing, freq_ghz))
            if len(self._vmin_cache) >= _VMIN_CACHE_LIMIT:
                self._vmin_cache.clear()
            self._vmin_cache[key] = cached
        return cached

    def strongest_core(self, freq_ghz: float = NOMINAL_FREQ_GHZ) -> CoreId:
        """The paper's "most robust core": lowest offset on this part."""
        best = min(range(NUM_CORES), key=lambda i: self._core_offsets_mv[i])
        return CoreId.from_linear(best)

    def weakest_cores(self, count: int = 2) -> List[CoreId]:
        """The ``count`` cores with the highest Vmin offsets."""
        if not 1 <= count <= NUM_CORES:
            raise TopologyError(f"count {count} outside 1..{NUM_CORES}")
        order = sorted(range(NUM_CORES),
                       key=lambda i: self._core_offsets_mv[i], reverse=True)
        return [CoreId.from_linear(i) for i in order[:count]]

    def guardband_mv(self, core: CoreId, swing: float,
                     freq_ghz: float = NOMINAL_FREQ_GHZ,
                     nominal_mv: float = NOMINAL_PMD_MV) -> float:
        """Margin between nominal supply and true Vmin (mV, >=0 means safe)."""
        return nominal_mv - self.vmin_mv(core, swing, freq_ghz)

    # ------------------------------------------------------------------
    # Sampled run behaviour (what the campaign executor observes)
    # ------------------------------------------------------------------
    def observe_run(self, core: CoreId, swing: float, voltage_mv: float,
                    freq_ghz: float = NOMINAL_FREQ_GHZ,
                    sdc_bias: float = 0.25,
                    rng: Optional[np.random.Generator] = None) -> RunOutcome:
        """Sample the outcome of one benchmark run at an operating point.

        The failure mode depends on how far below the true Vmin the
        supply sits, mirroring the progression undervolting studies
        report: shallow violations manifest as ECC-correctable cache
        errors, deeper ones as uncorrectable errors or silent data
        corruption, and deep violations crash or hang the part.

        ``sdc_bias`` is the probability that a mid-band failure escapes
        detection (SDC) rather than being flagged uncorrectable; cache-
        resident workloads have lower bias than datapath-heavy ones.
        """
        rng = rng if rng is not None else self._run_rng
        vmin = self.vmin_mv(core, swing, freq_ghz)
        margin = voltage_mv - vmin
        if margin >= FAILURE_ONSET_BAND_MV:
            return RunOutcome.CORRECT
        if margin >= 0.0:
            # Inside the onset band failures are probabilistic; the
            # closer to Vmin the likelier. A failing run here is almost
            # always a correctable cache-SRAM error.
            fail_p = 1.0 - margin / FAILURE_ONSET_BAND_MV
            if rng.random() < 0.5 * fail_p:
                return RunOutcome.CORRECTED_ERROR
            return RunOutcome.CORRECT
        depth = -margin
        if depth >= HARD_CRASH_DEPTH_MV:
            return RunOutcome.HANG if rng.random() < 0.3 else RunOutcome.CRASH
        # Mid-band: detected-uncorrectable vs silent corruption vs an
        # early crash, weighted towards detection.
        roll = rng.random()
        crash_p = depth / HARD_CRASH_DEPTH_MV * 0.5
        if roll < crash_p:
            return RunOutcome.CRASH
        if roll < crash_p + (1.0 - crash_p) * sdc_bias:
            return RunOutcome.SDC
        return RunOutcome.UNCORRECTED_ERROR

    def observe_runs(self, core: CoreId, swing: float, voltage_mv: float,
                     freq_ghz: float = NOMINAL_FREQ_GHZ, n: int = 1,
                     sdc_bias: float = 0.25,
                     rng: Optional[np.random.Generator] = None) -> List[RunOutcome]:
        """Sample ``n`` repetition outcomes for one core in one numpy pass.

        Draw-for-draw identical to calling :meth:`observe_run` ``n``
        times with the same generator: the failure-mode branch is a pure
        function of the operating margin, so all ``n`` uniforms are
        drawn in a single batch and classified vectorized.
        """
        codes = self.observe_run_block(
            (core,), swing, voltage_mv, freq_ghz=freq_ghz, repetitions=n,
            sdc_bias=sdc_bias, rng=rng,
        )
        return [OUTCOME_FROM_CODE[int(code)] for code in codes[:, 0]]

    def observe_run_block(self, cores: Sequence[CoreId], swing: float,
                          voltage_mv: float,
                          freq_ghz: float = NOMINAL_FREQ_GHZ,
                          repetitions: int = 1, sdc_bias: float = 0.25,
                          rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Sample a whole characterization run as one outcome-code matrix.

        Returns an ``(repetitions, len(cores))`` array of severity codes
        (see :data:`OUTCOME_FROM_CODE`). The draw order reproduces the
        scalar nested loop exactly -- repetition-major, core-minor, one
        uniform per core whose margin sits below the onset-band ceiling
        -- so the batched path is bit-identical to looping
        :meth:`observe_run` over repetitions and cores.
        """
        rng = rng if rng is not None else self._run_rng
        margins = [voltage_mv - self.vmin_mv(core, swing, freq_ghz)
                   for core in cores]
        codes = np.zeros((repetitions, len(cores)), dtype=np.int64)
        drawing = [index for index, margin in enumerate(margins)
                   if margin < FAILURE_ONSET_BAND_MV]
        if drawing and repetitions:
            uniforms = rng.random(repetitions * len(drawing))
            uniforms = uniforms.reshape(repetitions, len(drawing))
            for column, index in enumerate(drawing):
                codes[:, index] = _classify_uniforms(
                    margins[index], uniforms[:, column], sdc_bias)
        return codes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Chip {self.serial} corner={self.corner.value}>"
