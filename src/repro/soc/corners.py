"""Process-corner (sigma chip) parameter sets.

The paper characterizes three 28 nm X-Gene2 chips selected on socketed
validation boards (Section III.A):

- ``TTT`` -- a typical part,
- ``TFF`` -- a high-leakage corner part (fast transistors),
- ``TSS`` -- a low-leakage corner part (slow transistors).

Each corner carries the parameters of our behavioural Vmin model::

    Vmin(core, workload, f) = v_crit(f) + core_offset + droop(swing)
    droop(swing)            = droop_scale * swing ** droop_gamma

``swing`` in [0, 1] is the workload's normalized supply-current swing at
the PDN resonance (computed by :mod:`repro.pdn` from the execution
model's current waveform); ``v_crit`` is the intrinsic critical voltage
of the strongest core at the given frequency; ``core_offset`` captures
intra-die core-to-core variation.

The three parameter sets below are *calibrated to the paper's measured
numbers* (Figures 4, 6, 7): SPEC Vmin ranges of 860-885 mV (TTT),
870-885 mV (TFF), 870-900 mV (TSS) for the most robust core at 2.4 GHz,
and dI/dt-virus Vmin of ~920 / ~960 / ~970 mV respectively, against the
980 mV nominal. See DESIGN.md for the derivation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Tuple

#: Manufacturer nominal supply for the PMD domain at 2.4 GHz (mV).
NOMINAL_PMD_MV = 980.0
#: Manufacturer nominal supply for the SoC (uncore) domain (mV).
NOMINAL_SOC_MV = 950.0


class ProcessCorner(enum.Enum):
    """The three sigma-chip classes characterized by the paper."""

    TTT = "TTT"
    TFF = "TFF"
    TSS = "TSS"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class CornerParams:
    """Vmin- and leakage-model parameters for one process corner.

    Attributes
    ----------
    v_crit_mv:
        Intrinsic critical voltage of the strongest core at the nominal
        2.4 GHz (mV). Below this the core fails even with zero noise.
    v_crit_slope_mv_per_ghz:
        Reduction of ``v_crit`` per GHz of frequency decrease. Calibrated
        so that running at 1.2 GHz permits the 760 mV supply of the
        paper's Figure 5 ladder.
    droop_scale_mv:
        Worst-case (swing = 1) resonance-droop amplitude in mV.
    droop_gamma:
        Exponent shaping how sub-worst-case swings translate to droop;
        captures the chip's combined PDN damping and critical-path
        voltage sensitivity.
    core_offsets_mv:
        Per-core additive Vmin offsets, linear core order 0..7. Core
        numbering follows the paper: PMD0/PMD1 hold the weakest cores on
        the TTT part.
    leakage_fraction:
        Share of domain power that is leakage at nominal voltage; the
        corner's defining property (TFF high, TSS low).
    leakage_v0_mv:
        Exponential leakage voltage-sensitivity scale (mV), used by the
        power model: ``I_leak ~ exp(V / v0)``.
    """

    v_crit_mv: float
    v_crit_slope_mv_per_ghz: float
    droop_scale_mv: float
    droop_gamma: float
    core_offsets_mv: Tuple[float, ...]
    leakage_fraction: float
    leakage_v0_mv: float

    def __post_init__(self) -> None:
        if len(self.core_offsets_mv) != 8:
            raise ValueError("core_offsets_mv must list all 8 cores")
        if min(self.core_offsets_mv) != 0.0:
            raise ValueError("the strongest core must have a zero offset")
        if not 0.0 <= self.leakage_fraction < 1.0:
            raise ValueError("leakage_fraction must be in [0, 1)")

    def v_crit_at(self, freq_ghz: float, nominal_freq_ghz: float = 2.4) -> float:
        """Intrinsic critical voltage (mV) of the strongest core at ``freq_ghz``."""
        return self.v_crit_mv - self.v_crit_slope_mv_per_ghz * (nominal_freq_ghz - freq_ghz)

    def droop_mv(self, swing: float) -> float:
        """Supply droop (mV) produced by a normalized current swing."""
        swing = min(max(swing, 0.0), 1.0)
        return self.droop_scale_mv * swing ** self.droop_gamma


#: Calibrated parameters per corner (see module docstring and DESIGN.md).
CORNER_PARAMS: Dict[ProcessCorner, CornerParams] = {
    # Typical part: lowest intrinsic Vmin, moderate droop sensitivity.
    # Virus Vmin = 838.6 + 81.4 ~= 920 mV -> 60 mV margin below nominal.
    ProcessCorner.TTT: CornerParams(
        v_crit_mv=838.6,
        v_crit_slope_mv_per_ghz=114.0,
        droop_scale_mv=81.4,
        droop_gamma=1.1,
        core_offsets_mv=(40.0, 38.0, 25.0, 24.0, 10.0, 9.0, 1.0, 0.0),
        leakage_fraction=0.20,
        leakage_v0_mv=50.0,
    ),
    # Fast / high-leakage corner: benign under real workloads but very
    # droop-sensitive at worst case (gamma >> 1).
    # Virus Vmin = 868 + 87 = 955 mV -> observed safe point 960 mV,
    # i.e. the paper's 20 mV margin.
    ProcessCorner.TFF: CornerParams(
        v_crit_mv=868.0,
        v_crit_slope_mv_per_ghz=110.0,
        droop_scale_mv=87.0,
        droop_gamma=3.3,
        core_offsets_mv=(22.0, 20.0, 14.0, 12.0, 7.0, 5.0, 2.0, 0.0),
        leakage_fraction=0.34,
        leakage_v0_mv=45.0,
    ),
    # Slow / low-leakage corner: highest intrinsic Vmin and the largest
    # worst-case droop -- the virus crashes it 10 mV below nominal
    # (virus Vmin 971.6 mV), i.e. effectively zero shaveable margin.
    ProcessCorner.TSS: CornerParams(
        v_crit_mv=860.6,
        v_crit_slope_mv_per_ghz=118.0,
        droop_scale_mv=111.0,
        droop_gamma=2.0,
        core_offsets_mv=(18.0, 17.0, 12.0, 11.0, 6.0, 5.0, 1.0, 0.0),
        leakage_fraction=0.09,
        leakage_v0_mv=55.0,
    ),
}
