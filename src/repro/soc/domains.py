"""Voltage domains and their regulators.

The X-Gene2 board exposes three independently-regulated supplies that the
paper undervolts/relaxes separately (Section IV.D / Figure 9):

- ``PMD``  -- the four processor modules (cores + L1/L2), nominal 980 mV;
- ``SOC``  -- the uncore (L3, central switch, MCBs/MCUs), nominal 950 mV;
- ``DRAM`` -- the DIMMs, whose knob is the refresh period, not voltage.

A :class:`VoltageRegulator` validates requested set-points against its
programmable range and step, mirroring the PMBus-style regulators the
real board drives through SLIMpro.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import VoltageDomainError
from repro.soc.corners import NOMINAL_PMD_MV, NOMINAL_SOC_MV


class DomainName(enum.Enum):
    """The board's independently controllable power domains."""

    PMD = "PMD"
    SOC = "SoC"
    DRAM = "DRAM"

    def __str__(self) -> str:
        return self.value


@dataclass
class VoltageRegulator:
    """One programmable rail.

    Attributes
    ----------
    domain:
        Which domain this regulator feeds.
    nominal_mv:
        The manufacturer's shipped set-point.
    min_mv / max_mv:
        Programmable range; requests outside it raise
        :class:`VoltageDomainError` (the real regulator NACKs them).
    step_mv:
        Set-point granularity; requests are snapped to the nearest step.
    """

    domain: DomainName
    nominal_mv: float
    min_mv: float = 700.0
    max_mv: float = 1050.0
    step_mv: float = 5.0
    _current_mv: float = field(init=False)

    def __post_init__(self) -> None:
        if not self.min_mv <= self.nominal_mv <= self.max_mv:
            raise VoltageDomainError(
                f"{self.domain}: nominal {self.nominal_mv} outside "
                f"[{self.min_mv}, {self.max_mv}]"
            )
        if self.step_mv <= 0:
            raise VoltageDomainError("regulator step must be positive")
        self._current_mv = self.nominal_mv

    @property
    def current_mv(self) -> float:
        """The active set-point."""
        return self._current_mv

    def set_voltage(self, target_mv: float) -> float:
        """Program a new set-point; returns the snapped value applied."""
        if not self.min_mv <= target_mv <= self.max_mv:
            raise VoltageDomainError(
                f"{self.domain}: requested {target_mv} mV outside "
                f"[{self.min_mv}, {self.max_mv}] mV"
            )
        snapped = round(target_mv / self.step_mv) * self.step_mv
        self._current_mv = snapped
        return snapped

    def reset_to_nominal(self) -> None:
        """Return to the manufacturer's set-point (power-cycle behaviour)."""
        self._current_mv = self.nominal_mv

    def undervolt_mv(self) -> float:
        """How far below nominal the rail currently sits (mV, >= 0)."""
        return self.nominal_mv - self._current_mv


@dataclass
class VoltageDomain:
    """A domain: its regulator plus the frequency it clocks (if any)."""

    regulator: VoltageRegulator
    freq_ghz: Optional[float] = None

    @property
    def name(self) -> DomainName:
        return self.regulator.domain


def default_regulators() -> Dict[DomainName, VoltageRegulator]:
    """The board's three rails at manufacturer set-points.

    The DRAM rail is fixed-voltage on this board (its knob is TREFP),
    so its regulator has a degenerate range.
    """
    return {
        DomainName.PMD: VoltageRegulator(DomainName.PMD, nominal_mv=NOMINAL_PMD_MV),
        DomainName.SOC: VoltageRegulator(DomainName.SOC, nominal_mv=NOMINAL_SOC_MV),
        DomainName.DRAM: VoltageRegulator(
            DomainName.DRAM, nominal_mv=1350.0, min_mv=1350.0, max_mv=1350.0,
        ),
    }
