"""Platform factory: a fully-assembled simulated X-Gene2 board.

``build_platform`` wires together one chip (at a chosen process corner),
the voltage regulators, the SLIMpro with its sensor channels, and the
per-domain power models with the wattage split calibrated to the paper's
Figure 9 (31.1 W total under the Jammer workload at nominal settings).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.rand import SeedLike
from repro.soc.chip import Chip
from repro.soc.corners import (
    CORNER_PARAMS,
    NOMINAL_PMD_MV,
    NOMINAL_SOC_MV,
    ProcessCorner,
)
from repro.soc.domains import DomainName
from repro.soc.power import CorePowerModel
from repro.soc.sensors import Sensor
from repro.soc.slimpro import SLIMpro
from repro.soc.topology import NOMINAL_FREQ_GHZ, SocTopology

#: Nominal-domain wattage split under a fully-loaded server (the Jammer
#: experiment's 31.1 W). "OTHER" covers fans, board losses, SLIMpro and
#: the NIC -- everything the undervolting knobs cannot touch.
DEFAULT_DOMAIN_WATTS: Dict[str, float] = {
    "PMD": 15.5,
    "SoC": 5.0,
    "DRAM": 7.6,
    "OTHER": 3.0,
}


@dataclass
class XGene2Platform:
    """One assembled board: chip + control plane + power models."""

    chip: Chip
    topology: SocTopology
    slimpro: SLIMpro
    pmd_power: CorePowerModel
    soc_power: CorePowerModel
    other_watts: float
    dram_nominal_watts: float

    @property
    def corner(self) -> ProcessCorner:
        return self.chip.corner

    def pmd_voltage_mv(self) -> float:
        return self.slimpro.domain_voltage(DomainName.PMD)

    def soc_voltage_mv(self) -> float:
        return self.slimpro.domain_voltage(DomainName.SOC)

    def clocked_domain_watts(self, utilisation: float = 1.0) -> Dict[str, float]:
        """PMD + SoC power (W) at the currently-programmed voltages."""
        return {
            "PMD": self.pmd_power.watts(self.pmd_voltage_mv(),
                                        utilisation=utilisation),
            "SoC": self.soc_power.watts(self.soc_voltage_mv(),
                                        utilisation=utilisation),
        }


def build_platform(corner: ProcessCorner = ProcessCorner.TTT,
                   seed: SeedLike = None,
                   domain_watts: Optional[Dict[str, float]] = None,
                   serial: Optional[str] = None) -> XGene2Platform:
    """Assemble a booted platform around a chip of the given corner."""
    watts = dict(DEFAULT_DOMAIN_WATTS)
    if domain_watts:
        watts.update(domain_watts)
    chip = Chip(corner, seed=seed, serial=serial)
    params = CORNER_PARAMS[corner]
    slimpro = SLIMpro()
    slimpro.boot()

    pmd_power = CorePowerModel.for_corner(
        params, nominal_mv=NOMINAL_PMD_MV, nominal_ghz=NOMINAL_FREQ_GHZ,
        nominal_watts=watts["PMD"],
    )
    # The uncore runs at a fixed clock and is dominated by switching
    # power; give it a small leakage share regardless of corner.
    soc_power = CorePowerModel(
        nominal_mv=NOMINAL_SOC_MV, nominal_ghz=NOMINAL_FREQ_GHZ,
        leakage_fraction=0.02, leakage_v0_mv=params.leakage_v0_mv,
        nominal_watts=watts["SoC"],
    )
    platform = XGene2Platform(
        chip=chip,
        topology=SocTopology(),
        slimpro=slimpro,
        pmd_power=pmd_power,
        soc_power=soc_power,
        other_watts=watts["OTHER"],
        dram_nominal_watts=watts["DRAM"],
    )
    # Wire the basic telemetry channels the experiments poll.
    slimpro.register_sensor(Sensor(
        "power.pmd", lambda p=platform: p.clocked_domain_watts()["PMD"],
        resolution=0.1,
    ))
    slimpro.register_sensor(Sensor(
        "power.soc", lambda p=platform: p.clocked_domain_watts()["SoC"],
        resolution=0.1,
    ))
    return platform


def build_reference_chips(seed: SeedLike = None) -> Dict[ProcessCorner, Chip]:
    """The paper's three socketed parts.

    Reference parts carry zero manufacturing jitter: their per-core
    offsets are exactly the calibrated corner values, so the headline
    experiments reproduce the paper's figures deterministically.
    """
    return {
        corner: Chip(corner, seed=seed, serial=f"{corner.value}-ref",
                     jitter_sigma_mv=0.0)
        for corner in ProcessCorner
    }
