"""SLIMpro management-processor model.

The Scalable Lightweight Intelligent Management Processor is the paper's
control plane: it boots the system, exposes the on-board power and
temperature sensors, reports every ECC-corrected/detected error up to the
Linux kernel, and programs MCU parameters such as the refresh period
(TREFP). Our model keeps that message-based flavour: callers issue typed
requests and the SLIMpro mutates board state / returns telemetry, keeping
an audit log the parsing phase of the framework consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import ConfigurationError, VoltageDomainError
from repro.soc.domains import DomainName, VoltageRegulator, default_regulators
from repro.soc.sensors import Sensor, SensorBank
from repro.units import NOMINAL_REFRESH_S


@dataclass(frozen=True)
class SensorReading:
    """A timestamped sensor sample as logged by SLIMpro."""

    time_s: float
    channel: str
    value: float


@dataclass(frozen=True)
class EccReport:
    """One ECC event forwarded to the kernel's EDAC layer."""

    time_s: float
    source: str          # e.g. "mcu0", "core3.l1d"
    correctable: bool
    address: int = 0

    @property
    def severity(self) -> str:
        return "CE" if self.correctable else "UE"


class SLIMpro:
    """The management core: sensors, regulators, MCU config, ECC log.

    Parameters
    ----------
    regulators:
        The board's voltage rails; defaults to the X-Gene2 set.
    num_mcus:
        Memory control units whose TREFP is programmable (4 on X-Gene2).
    """

    def __init__(self, regulators: Optional[Dict[DomainName, VoltageRegulator]] = None,
                 num_mcus: int = 4) -> None:
        if num_mcus <= 0:
            raise ConfigurationError("num_mcus must be positive")
        self.regulators = regulators if regulators is not None else default_regulators()
        self.sensors = SensorBank()
        self._trefp_s: List[float] = [NOMINAL_REFRESH_S] * num_mcus
        self._ecc_log: List[EccReport] = []
        self._sensor_log: List[SensorReading] = []
        self._booted = False

    # ------------------------------------------------------------------
    # Boot / reset
    # ------------------------------------------------------------------
    def boot(self) -> None:
        """Bring the board up at manufacturer defaults."""
        for regulator in self.regulators.values():
            regulator.reset_to_nominal()
        self._trefp_s = [NOMINAL_REFRESH_S] * len(self._trefp_s)
        self._booted = True

    def power_cycle(self) -> None:
        """Hard reset: what the harness's power switch triggers.

        Clears volatile state but preserves the ECC/sensor audit logs
        (they live on the management side, which stays powered).
        """
        self.boot()

    @property
    def booted(self) -> bool:
        return self._booted

    # ------------------------------------------------------------------
    # Voltage control
    # ------------------------------------------------------------------
    def set_domain_voltage(self, domain: DomainName, target_mv: float) -> float:
        """Program a rail; returns the applied (snapped) set-point."""
        self._require_boot()
        if domain not in self.regulators:
            raise VoltageDomainError(f"no regulator for domain {domain}")
        return self.regulators[domain].set_voltage(target_mv)

    def domain_voltage(self, domain: DomainName) -> float:
        return self.regulators[domain].current_mv

    # ------------------------------------------------------------------
    # MCU configuration (refresh period)
    # ------------------------------------------------------------------
    def set_refresh_period(self, trefp_s: float, mcu: Optional[int] = None) -> None:
        """Program TREFP on one MCU, or on all when ``mcu`` is None."""
        self._require_boot()
        if trefp_s <= 0:
            raise ConfigurationError("refresh period must be positive")
        if mcu is None:
            self._trefp_s = [trefp_s] * len(self._trefp_s)
        else:
            if not 0 <= mcu < len(self._trefp_s):
                raise ConfigurationError(f"mcu index {mcu} out of range")
            self._trefp_s[mcu] = trefp_s

    def refresh_period(self, mcu: int = 0) -> float:
        if not 0 <= mcu < len(self._trefp_s):
            raise ConfigurationError(f"mcu index {mcu} out of range")
        return self._trefp_s[mcu]

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def register_sensor(self, sensor: Sensor) -> None:
        self.sensors.add(sensor)

    def read_sensor(self, channel: str, now_s: float = 0.0) -> float:
        value = self.sensors.read(channel, now_s)
        self._sensor_log.append(SensorReading(now_s, channel, value))
        return value

    def telemetry_dump(self, now_s: float = 0.0) -> Dict[str, float]:
        snapshot = self.sensors.read_all(now_s)
        for channel, value in snapshot.items():
            self._sensor_log.append(SensorReading(now_s, channel, value))
        return snapshot

    # ------------------------------------------------------------------
    # Error reporting
    # ------------------------------------------------------------------
    def report_ecc(self, report: EccReport) -> None:
        """Record an ECC event (MCU/cache hardware calls this)."""
        self._ecc_log.append(report)

    def ecc_events(self, since_s: float = 0.0) -> List[EccReport]:
        """ECC events at or after ``since_s`` (kernel log extraction)."""
        return [e for e in self._ecc_log if e.time_s >= since_s]

    def correctable_count(self, since_s: float = 0.0) -> int:
        return sum(1 for e in self.ecc_events(since_s) if e.correctable)

    def uncorrectable_count(self, since_s: float = 0.0) -> int:
        return sum(1 for e in self.ecc_events(since_s) if not e.correctable)

    def sensor_history(self) -> List[SensorReading]:
        return list(self._sensor_log)

    def _require_boot(self) -> None:
        if not self._booted:
            raise ConfigurationError("SLIMpro operation before boot()")
