"""Analytic power models for the SoC domains.

Power projections in the paper come from the board's SLIMpro-accessible
sensors. Our substitute computes domain power analytically from operating
conditions:

- dynamic power scales as ``f * V^2`` (CV^2f switching),
- leakage scales as ``V * exp(V / v0)``-like behaviour, linearized here
  to ``exp((V - Vnom) / v0)`` relative to its nominal share,
- DRAM power is handled separately by :mod:`repro.dram.power` (its knob
  is the refresh period).

The per-corner leakage fractions live in :mod:`repro.soc.corners`; the
TTT chip's 20 % leakage share at nominal is what turns a 5.1 % voltage
reduction (980 -> 930 mV) into the ~20 % PMD-domain power saving the
paper reports for the Jammer experiment (Figure 9).
"""

from __future__ import annotations

from dataclasses import dataclass

import math

from repro.errors import ConfigurationError
from repro.soc.corners import CornerParams


@dataclass(frozen=True)
class CorePowerModel:
    """Relative power of a clocked digital domain (PMD or SoC uncore).

    All scaling is relative to the domain's nominal operating point
    ``(nominal_mv, nominal_ghz)``; absolute watts enter via
    ``nominal_watts`` when projecting server power.
    """

    nominal_mv: float
    nominal_ghz: float
    leakage_fraction: float
    leakage_v0_mv: float
    nominal_watts: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.leakage_fraction < 1.0:
            raise ConfigurationError("leakage_fraction must be in [0, 1)")
        if min(self.nominal_mv, self.nominal_ghz, self.leakage_v0_mv) <= 0:
            raise ConfigurationError("nominal operating point must be positive")

    def relative_power(self, voltage_mv: float, freq_ghz: float = None,
                       utilisation: float = 1.0) -> float:
        """Power relative to nominal at a scaled operating point.

        ``utilisation`` scales only the dynamic component (an idle domain
        still leaks).
        """
        freq_ghz = self.nominal_ghz if freq_ghz is None else freq_ghz
        if not 0.0 <= utilisation <= 1.0:
            raise ConfigurationError("utilisation must be in [0, 1]")
        v_ratio = voltage_mv / self.nominal_mv
        f_ratio = freq_ghz / self.nominal_ghz
        dynamic = (1.0 - self.leakage_fraction) * f_ratio * v_ratio ** 2 * utilisation
        leak = self.leakage_fraction * v_ratio * math.exp(
            (voltage_mv - self.nominal_mv) / self.leakage_v0_mv
        )
        return dynamic + leak

    def watts(self, voltage_mv: float, freq_ghz: float = None,
              utilisation: float = 1.0) -> float:
        """Absolute domain power (W) at an operating point."""
        return self.nominal_watts * self.relative_power(voltage_mv, freq_ghz, utilisation)

    @classmethod
    def for_corner(cls, params: CornerParams, nominal_mv: float,
                   nominal_ghz: float, nominal_watts: float = 1.0) -> "CorePowerModel":
        """Build a model using a process corner's leakage parameters."""
        return cls(
            nominal_mv=nominal_mv,
            nominal_ghz=nominal_ghz,
            leakage_fraction=params.leakage_fraction,
            leakage_v0_mv=params.leakage_v0_mv,
            nominal_watts=nominal_watts,
        )


@dataclass(frozen=True)
class DomainPowerModel:
    """Named wrapper pairing a domain label with its power model."""

    name: str
    model: CorePowerModel

    def watts(self, voltage_mv: float, freq_ghz: float = None,
              utilisation: float = 1.0) -> float:
        return self.model.watts(voltage_mv, freq_ghz, utilisation)


def multicore_relative_power(per_core_freq_ghz: list, voltage_mv: float,
                             model: CorePowerModel) -> float:
    """Relative PMD-domain power when cores run at mixed frequencies.

    Used by the Figure 5 tradeoff ladder, where some PMDs are downclocked
    to 1.2 GHz while the shared rail voltage is set by the fastest ones.
    Dynamic power averages the per-core frequency ratios; leakage is
    voltage-only.
    """
    if not per_core_freq_ghz:
        raise ConfigurationError("need at least one core frequency")
    v_ratio = voltage_mv / model.nominal_mv
    f_ratios = [f / model.nominal_ghz for f in per_core_freq_ghz]
    dynamic = (1.0 - model.leakage_fraction) * v_ratio ** 2 * (
        sum(f_ratios) / len(f_ratios)
    )
    leak = model.leakage_fraction * v_ratio * math.exp(
        (voltage_mv - model.nominal_mv) / model.leakage_v0_mv
    )
    return dynamic + leak
