"""Deterministic random-stream management.

Every stochastic component in the library draws from an explicit
:class:`numpy.random.Generator`. Components never call the global numpy
RNG, so a fixed experiment seed reproduces the same results bit-for-bit
run-to-run -- the property the test suite asserts.

The helpers here implement *named sub-streams*: a parent seed plus a
string label yields an independent child generator, so adding a new
consumer of randomness does not perturb the draws seen by existing ones.
"""

from __future__ import annotations

import zlib
from typing import Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]

#: Default seed used by experiment entry points when the caller passes none.
DEFAULT_SEED = 20180625  # DSN 2018 conference week.


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Accepts an existing generator (returned unchanged), an integer seed,
    or ``None`` (which uses :data:`DEFAULT_SEED` so library behaviour is
    deterministic unless the caller opts into entropy explicitly).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(seed)


def substream(seed: SeedLike, label: str, index: Optional[int] = None) -> np.random.Generator:
    """Derive an independent generator for the component named ``label``.

    The derivation hashes the label (and optional index) into the seed
    sequence, so streams for different labels are decorrelated and stable
    across library versions.
    """
    base = seed if isinstance(seed, int) else DEFAULT_SEED if seed is None else None
    if base is None:
        # Parent is a Generator: spawn a child keyed by the label hash so
        # repeated calls with the same parent+label agree only when the
        # parent state agrees. Draw the base from the parent.
        assert isinstance(seed, np.random.Generator)
        base = int(seed.integers(0, 2**31 - 1))
    key = zlib.crc32(label.encode("utf-8")) & 0xFFFFFFFF
    parts = [base, key]
    if index is not None:
        parts.append(index)
    return np.random.default_rng(np.random.SeedSequence(parts))
