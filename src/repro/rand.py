"""Deterministic random-stream management.

Every stochastic component in the library draws from an explicit
:class:`numpy.random.Generator`. Components never call the global numpy
RNG, so a fixed experiment seed reproduces the same results bit-for-bit
run-to-run -- the property the test suite asserts.

The helpers here implement *named sub-streams*: a parent seed plus a
string label yields an independent child generator, so adding a new
consumer of randomness does not perturb the draws seen by existing ones.
"""

from __future__ import annotations

import zlib
from typing import Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]

#: Default seed used by experiment entry points when the caller passes none.
DEFAULT_SEED = 20180625  # DSN 2018 conference week.


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Accepts an existing generator (returned unchanged), an integer seed,
    or ``None`` (which uses :data:`DEFAULT_SEED` so library behaviour is
    deterministic unless the caller opts into entropy explicitly).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(seed)


def substream(seed: SeedLike, label: str, *indices: int,
              index: Optional[int] = None) -> np.random.Generator:
    """Derive an independent generator for the component named ``label``.

    The derivation hashes the label (and any number of integer indices)
    into the seed sequence, so streams for different labels are
    decorrelated and stable across library versions. Multi-index streams
    are the basis of counter-based noise protocols: e.g. the EM sensor
    draws read ``r`` of evaluation ``e`` from
    ``substream(seed, "em-read", e, r)``, so a batched evaluator and a
    serial one consume identical noise regardless of call grouping.
    """
    base = seed if isinstance(seed, int) else DEFAULT_SEED if seed is None else None
    if base is None:
        # Parent is a Generator: spawn a child keyed by the label hash so
        # repeated calls with the same parent+label agree only when the
        # parent state agrees. Draw the base from the parent.
        assert isinstance(seed, np.random.Generator)
        base = int(seed.integers(0, 2**31 - 1))
    key = zlib.crc32(label.encode("utf-8")) & 0xFFFFFFFF
    parts = [base, key]
    parts.extend(int(i) for i in indices)
    if index is not None:
        parts.append(int(index))
    return np.random.default_rng(np.random.SeedSequence(parts))


def derive_seed(seed: SeedLike, label: str, *indices: int) -> int:
    """Collapse ``(seed, label, indices)`` into one stable integer seed.

    The parallel engine ships integer seeds to worker processes (a live
    generator cannot be re-derived identically on a worker), so shard
    arms -- per-chip GA searches, ablation arms -- each get one of these:
    decorrelated from every other arm and independent of which process
    executes the arm or in what order.
    """
    return int(substream(seed, label, *indices).integers(0, 2**63 - 1))
