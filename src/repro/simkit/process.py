"""Generator-based cooperative processes on top of the event loop.

A process is a Python generator that yields either

- a ``float`` delay (seconds of virtual time to sleep), or
- another :class:`Process` to wait for its completion.

This is the same execution model as SimPy's core, cut down to the two
primitives this library needs.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional, Union

from repro.errors import SimulationError
from repro.simkit.events import Simulator

Yieldable = Union[float, int, "Process"]


def sleep(duration: float) -> float:
    """Readability helper: ``yield sleep(2.5)`` inside a process body."""
    return float(duration)


class Process:
    """A cooperative process driven by a :class:`Simulator`.

    The generator's ``return`` value is exposed as :attr:`result` once
    :attr:`done` is ``True``. Other processes can ``yield`` this process
    to block until it completes.
    """

    def __init__(self, sim: Simulator, generator: Generator[Yieldable, Any, Any],
                 name: str = "process") -> None:
        self.sim = sim
        self.name = name
        self._generator = generator
        self.done = False
        self.result: Any = None
        self._waiters: List[Process] = []
        sim.schedule(0.0, self._advance)

    def _advance(self, sent: Any = None) -> None:
        if self.done:
            raise SimulationError(f"process {self.name!r} resumed after completion")
        try:
            yielded = self._generator.send(sent)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        if isinstance(yielded, Process):
            if yielded.done:
                self.sim.schedule(0.0, lambda: self._advance(yielded.result))
            else:
                yielded._waiters.append(self)
        elif isinstance(yielded, (int, float)):
            self.sim.schedule(float(yielded), self._advance)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded {type(yielded).__name__}; "
                "expected a delay or a Process"
            )

    def _finish(self, value: Any) -> None:
        self.done = True
        self.result = value
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            self.sim.schedule(0.0, lambda w=waiter: w._advance(value))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done else "running"
        return f"<Process {self.name!r} {state}>"


def spawn(sim: Simulator, generator: Generator[Yieldable, Any, Any],
          name: Optional[str] = None) -> Process:
    """Create and start a :class:`Process` on ``sim``."""
    return Process(sim, generator, name=name or getattr(generator, "__name__", "process"))
