"""A small deterministic discrete-event simulation (DES) kernel.

The characterization testbed has several pieces that are naturally
event-driven -- the PID thermal control loop, the campaign executor with
its watchdog/reset switch, and the Jammer detector's QoS accounting.
``repro.simkit`` provides the minimal substrate they share:

- :class:`~repro.simkit.events.Simulator` -- a priority-queue event loop
  with deterministic tie-breaking.
- :class:`~repro.simkit.process.Process` -- generator-based cooperative
  processes (``yield delay`` to advance time).
- :class:`~repro.simkit.resources.Resource` -- a counted resource with a
  FIFO wait queue, used to model cores occupied by benchmark runs.

The kernel is intentionally simple (single-threaded, virtual time) and
fully deterministic: two events at the same timestamp fire in insertion
order.
"""

from repro.simkit.events import Event, Simulator
from repro.simkit.process import Process, sleep
from repro.simkit.resources import Resource

__all__ = ["Event", "Simulator", "Process", "Resource", "sleep"]
