"""Counted resources with FIFO wait queues.

Used by the campaign executor to model exclusive ownership of cores by
benchmark runs, and by the Jammer model to account for contended memory
bandwidth.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Tuple

from repro.errors import SimulationError
from repro.simkit.events import Simulator


class Resource:
    """A resource with ``capacity`` interchangeable slots.

    Acquisition is callback-based to stay independent of the process
    layer: ``acquire(cb)`` invokes ``cb`` (via the event loop, never
    synchronously) once a slot is available. FIFO ordering is guaranteed.
    """

    def __init__(self, sim: Simulator, capacity: int, name: str = "resource") -> None:
        if capacity <= 0:
            raise SimulationError(f"resource capacity must be positive, got {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Callable[[], None]] = deque()

    @property
    def in_use(self) -> int:
        """Number of currently held slots."""
        return self._in_use

    @property
    def available(self) -> int:
        """Number of free slots."""
        return self.capacity - self._in_use

    @property
    def queue_length(self) -> int:
        """Number of acquirers waiting for a slot."""
        return len(self._waiters)

    def acquire(self, callback: Callable[[], None]) -> None:
        """Request a slot; ``callback`` fires when one is granted."""
        if self._in_use < self.capacity and not self._waiters:
            self._in_use += 1
            self.sim.schedule(0.0, callback)
        else:
            self._waiters.append(callback)

    def release(self) -> None:
        """Return a held slot, waking the oldest waiter if any."""
        if self._in_use <= 0:
            raise SimulationError(f"release() on idle resource {self.name!r}")
        if self._waiters:
            callback = self._waiters.popleft()
            self.sim.schedule(0.0, callback)
        else:
            self._in_use -= 1

    def utilisation_snapshot(self) -> Tuple[int, int, int]:
        """Return ``(in_use, capacity, queued)`` for telemetry logs."""
        return (self._in_use, self.capacity, len(self._waiters))
