"""Deterministic virtual-time event loop.

Events are ``(time, sequence, callback)`` triples kept in a binary heap.
The monotonically increasing sequence number guarantees FIFO ordering for
events scheduled at the same virtual time, which keeps every simulation in
the library reproducible run-to-run.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from repro.errors import SimulationError


@dataclass(order=True)
class Event:
    """A scheduled callback in virtual time.

    Events compare by ``(time, seq)`` so the heap pops them in
    deterministic order. ``cancelled`` events stay in the heap but are
    skipped when popped (lazy deletion).
    """

    time: float
    seq: int
    callback: Callable[[], Any] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Prevent the event from firing. Safe to call more than once."""
        self.cancelled = True


class Simulator:
    """A single-threaded virtual-time event loop.

    Typical use::

        sim = Simulator()
        sim.schedule(1.5, lambda: print("fired at t=1.5"))
        sim.run_until(10.0)
    """

    def __init__(self) -> None:
        self._queue: List[Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._running = False

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def schedule(self, delay: float, callback: Callable[[], Any]) -> Event:
        """Schedule ``callback`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        event = Event(time=self._now + delay, seq=next(self._seq), callback=callback)
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(self, when: float, callback: Callable[[], Any]) -> Event:
        """Schedule ``callback`` at absolute virtual time ``when``."""
        return self.schedule(when - self._now, callback)

    def peek(self) -> Optional[float]:
        """Virtual time of the next pending event, or ``None`` if idle."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    def step(self) -> bool:
        """Fire the next event. Returns ``False`` when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            event.callback()
            return True
        return False

    def run(self, max_events: int = 10_000_000) -> int:
        """Run until the event queue drains. Returns the event count.

        ``max_events`` bounds runaway self-rescheduling loops; exceeding
        it raises :class:`SimulationError` rather than hanging.
        """
        fired = 0
        while self.step():
            fired += 1
            if fired > max_events:
                raise SimulationError(f"event budget exceeded ({max_events} events)")
        return fired

    def run_until(self, deadline: float, max_events: int = 10_000_000) -> int:
        """Run events with time <= ``deadline``; advance time to it.

        Events scheduled after the deadline remain queued. Returns the
        number of events fired.
        """
        if deadline < self._now:
            raise SimulationError(
                f"deadline {deadline} is before current time {self._now}"
            )
        fired = 0
        while True:
            upcoming = self.peek()
            if upcoming is None or upcoming > deadline:
                break
            self.step()
            fired += 1
            if fired > max_events:
                raise SimulationError(f"event budget exceeded ({max_events} events)")
        self._now = deadline
        return fired
