"""Guardband accounting: turning Vmin results into margin reports.

The paper's framing: the manufacturer ships every part at one nominal
voltage; measured per-chip, per-workload Vmin reveals how much of that
is pessimistic guardband. This module aggregates Vmin results into the
chip-level summary the figures present -- per-workload margins, the
worst-case (virus) margin, and the headline power-reduction potential.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.vmin import VminResult
from repro.errors import CampaignError
from repro.soc.corners import NOMINAL_PMD_MV


@dataclass(frozen=True)
class WorkloadMargin:
    """Margin of one workload on one chip."""

    workload: str
    safe_vmin_mv: float
    margin_mv: float
    power_reduction_pct: float


@dataclass(frozen=True)
class GuardbandReport:
    """Chip-level guardband summary."""

    chip_serial: str
    corner: str
    nominal_mv: float
    per_workload: tuple
    virus_margin_mv: Optional[float]

    @property
    def min_vmin_mv(self) -> float:
        return min(m.safe_vmin_mv for m in self.per_workload)

    @property
    def max_vmin_mv(self) -> float:
        return max(m.safe_vmin_mv for m in self.per_workload)

    @property
    def workload_vmin_range_mv(self) -> float:
        """Workload-to-workload Vmin spread (the Figure 4 spread)."""
        return self.max_vmin_mv - self.min_vmin_mv

    @property
    def guaranteed_power_reduction_pct(self) -> float:
        """Power reduction safe for *every* measured workload.

        Uses the highest per-workload Vmin -- the paper's "at least
        18.4 %" number for TTT/TFF and 15.7 % for TSS.
        """
        return (1.0 - (self.max_vmin_mv / self.nominal_mv) ** 2) * 100.0

    @property
    def shaveable_mv(self) -> float:
        """Voltage shaveable even against the worst-case virus.

        ``None``-virus reports fall back to the worst workload margin.
        """
        if self.virus_margin_mv is not None:
            return self.virus_margin_mv
        return self.nominal_mv - self.max_vmin_mv


def guardband_report(chip_serial: str, corner: str,
                     workload_results: Sequence[VminResult],
                     virus_result: Optional[VminResult] = None,
                     nominal_mv: float = NOMINAL_PMD_MV) -> GuardbandReport:
    """Fold Vmin search results into a :class:`GuardbandReport`."""
    if not workload_results:
        raise CampaignError("need at least one workload Vmin result")
    margins = tuple(
        WorkloadMargin(
            workload=result.workload,
            safe_vmin_mv=result.safe_vmin_mv,
            margin_mv=nominal_mv - result.safe_vmin_mv,
            power_reduction_pct=result.power_reduction_fraction * 100.0,
        )
        for result in workload_results
    )
    virus_margin = None
    if virus_result is not None:
        virus_margin = nominal_mv - virus_result.safe_vmin_mv
    return GuardbandReport(
        chip_serial=chip_serial,
        corner=corner,
        nominal_mv=nominal_mv,
        per_workload=margins,
        virus_margin_mv=virus_margin,
    )
