"""Campaign execution: runs benchmarks on the simulated chip.

The executor is the bridge between the declarative campaign plan and the
hardware model: for every characterization run it programs the voltage,
executes the benchmark's repetitions against the chip's sampled
behaviour, lets the watchdog account recovery time for crashes/hangs,
and parses each repetition into a result row.

All repetitions of a run are sampled in one vectorized pass
(:meth:`repro.soc.chip.Chip.observe_run_block`), and every run draws
from its own named substream derived from ``(seed, chip serial, run
signature)`` -- so the outcome of a run depends only on *what* is
executed, never on execution order. That property is what lets
:class:`repro.core.parallel.ParallelCampaignExecutor` shard campaigns
across worker processes and still produce bit-identical results.

Multi-core setups take the mix-level resonant swing (phase-decorrelated
mean, see :mod:`repro.workloads.mixes`); single-core setups use the
workload's own swing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

import numpy as np

from repro.core.campaign import Campaign, CharacterizationRun
from repro.core.classify import OutcomeCounts
from repro.core.results import ResultRow, ResultStore
from repro.core.watchdog import Watchdog, WatchdogVerdict
from repro.cpu.outcomes import RunOutcome
from repro.rand import DEFAULT_SEED, SeedLike, substream
from repro.soc.chip import CODE_FROM_OUTCOME, OUTCOME_FROM_CODE, Chip

#: Modelled benchmark runtime used for wall-time accounting (seconds).
NOMINAL_RUNTIME_S = 300.0

_CODE_CORRECT = CODE_FROM_OUTCOME[RunOutcome.CORRECT]
_CODE_CE = CODE_FROM_OUTCOME[RunOutcome.CORRECTED_ERROR]
_CODE_UE = CODE_FROM_OUTCOME[RunOutcome.UNCORRECTED_ERROR]
_CODE_SDC = CODE_FROM_OUTCOME[RunOutcome.SDC]
_CODE_CRASH = CODE_FROM_OUTCOME[RunOutcome.CRASH]
_CODE_HANG = CODE_FROM_OUTCOME[RunOutcome.HANG]


@dataclass(frozen=True)
class RunRecord:
    """Execution summary of one characterization run (all repetitions)."""

    run: CharacterizationRun
    counts: OutcomeCounts
    wall_time_s: float

    @property
    def all_safe(self) -> bool:
        return self.counts.all_safe


def classify_codes(worst_code: int, ce_count: int, ue_count: int) -> RunOutcome:
    """Fold one repetition's per-core outcome codes into its effect class.

    Equivalent to building the :class:`~repro.core.classify.RunLog` the
    harness would store for the repetition and passing it through
    :func:`~repro.core.classify.classify_run_log` -- including the
    precedence quirk that a detected UE on any core outranks silent
    corruption observed on another.
    """
    if worst_code == _CODE_HANG:
        return RunOutcome.HANG
    if worst_code == _CODE_CRASH:
        return RunOutcome.CRASH
    if ue_count > 0:
        return RunOutcome.UNCORRECTED_ERROR
    if worst_code == _CODE_SDC:
        return RunOutcome.SDC
    if ce_count > 0:
        return RunOutcome.CORRECTED_ERROR
    return RunOutcome.CORRECT


class CampaignExecutor:
    """Executes campaigns against one chip.

    Parameters
    ----------
    chip:
        The device under test.
    watchdog:
        Recovery-ladder model; a fresh default is built when omitted.
    seed:
        Base seed for outcome sampling. Every characterization run
        derives an independent substream from ``(seed, chip serial, run
        signature)``, so identical runs reproduce identical outcomes
        regardless of execution order or interleaving -- the invariant
        the process-parallel engine relies on.
    """

    def __init__(self, chip: Chip, watchdog: Optional[Watchdog] = None,
                 seed: SeedLike = None) -> None:
        self.chip = chip
        self.watchdog = watchdog or Watchdog()
        if isinstance(seed, np.random.Generator):
            # Legacy escape hatch: collapse a generator parent into one
            # base draw (the same draw substream() would have made).
            self._stream_base: int = int(seed.integers(0, 2**31 - 1))
        elif seed is None:
            self._stream_base = DEFAULT_SEED
        else:
            self._stream_base = int(seed)
        self.store = ResultStore()

    def run_rng(self, run: CharacterizationRun) -> np.random.Generator:
        """The named substream feeding one characterization run."""
        return substream(
            self._stream_base,
            f"executor-{self.chip.serial}/{run.stream_key()}",
        )

    # ------------------------------------------------------------------
    # Execution phase
    # ------------------------------------------------------------------
    def execute_run(self, run: CharacterizationRun) -> RunRecord:
        """Execute all repetitions of one characterization run.

        All ``repetitions x cores`` outcomes are sampled in a single
        batched pass; only repetitions that crashed or hung take the
        (stateful) watchdog recovery path individually.
        """
        setup = run.setup
        workload = run.workload
        codes = self.chip.observe_run_block(
            setup.cores, workload.resonant_swing, setup.voltage_mv,
            freq_ghz=setup.freq_ghz, repetitions=setup.repetitions,
            sdc_bias=workload.cpu.sdc_bias, rng=self.run_rng(run),
        )
        worst = codes.max(axis=1).tolist()
        ce_counts = (codes == _CODE_CE).sum(axis=1).tolist()
        ue_counts = (codes == _CODE_UE).sum(axis=1).tolist()

        # Hot loop: one iteration per repetition, full studies push this
        # past 10^5 iterations. Everything constant across repetitions is
        # hoisted; the classification (a pure function of the few distinct
        # (worst, ce, ue) triples a run produces) is memoized per run.
        run_id = run.run_id
        run_key = run.global_key(self.chip.serial)
        benchmark = workload.name
        suite = workload.cpu.suite
        voltage_mv = setup.voltage_mv
        freq_ghz = setup.freq_ghz
        cores_label = ";".join(str(c.linear) for c in setup.cores)
        completed_value = WatchdogVerdict.COMPLETED.value
        description: Optional[str] = None
        classify_memo: dict = {}
        outcome_counts: dict = {}
        rows: List[ResultRow] = []
        total_wall = 0.0
        for repetition in range(setup.repetitions):
            ce_count = ce_counts[repetition]
            ue_count = ue_counts[repetition]
            key = (worst[repetition], ce_count, ue_count)
            entry = classify_memo.get(key)
            if entry is None:
                classified = classify_codes(*key)
                entry = (classified, classified.value, classified.needs_reset)
                classify_memo[key] = entry
            classified, outcome_value, needs_reset = entry
            if needs_reset:
                if description is None:
                    description = run.describe()
                supervised = self.watchdog.supervise(
                    classified, NOMINAL_RUNTIME_S, description=description)
                verdict_value = supervised.verdict.value
                wall_time = supervised.wall_time_s
            else:
                verdict_value = completed_value
                wall_time = NOMINAL_RUNTIME_S
            total_wall += wall_time
            outcome_counts[classified] = outcome_counts.get(classified, 0) + 1
            rows.append(ResultRow(
                run_id, benchmark, suite, voltage_mv, freq_ghz, cores_label,
                repetition, outcome_value, verdict_value, ce_count, ue_count,
                wall_time, run_key,
            ))
        self.store.extend(rows)
        return RunRecord(run=run, counts=OutcomeCounts(counts=outcome_counts),
                         wall_time_s=total_wall)

    def execute_campaign(self, campaign: Campaign,
                         stop_on_unsafe: bool = False) -> List[RunRecord]:
        """Execute a whole campaign (optionally aborting once unsafe).

        ``stop_on_unsafe`` implements the practical optimization real
        undervolting campaigns use on descending sweeps: once a voltage
        fails there is no point probing lower ones.
        """
        records = []
        for run in campaign.runs:
            record = self.execute_run(run)
            records.append(record)
            if stop_on_unsafe and not record.all_safe:
                break
        return records

    def execute_all(self, campaigns: Iterable[Campaign],
                    stop_on_unsafe: bool = False) -> List[RunRecord]:
        """Execute several campaigns back to back."""
        records: List[RunRecord] = []
        for campaign in campaigns:
            records.extend(self.execute_campaign(campaign, stop_on_unsafe))
        return records


_SEVERITY = {outcome: code for code, outcome in enumerate(OUTCOME_FROM_CODE)}


def _worse(a: RunOutcome, b: RunOutcome) -> RunOutcome:
    """The more severe of two outcomes."""
    return a if _SEVERITY[a] >= _SEVERITY[b] else b
