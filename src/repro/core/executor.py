"""Campaign execution: runs benchmarks on the simulated chip.

The executor is the bridge between the declarative campaign plan and the
hardware model: for every characterization run it programs the voltage,
executes the benchmark's repetitions against the chip's sampled
behaviour, lets the watchdog account recovery time for crashes/hangs,
and parses each repetition into a result row.

Multi-core setups take the mix-level resonant swing (phase-decorrelated
mean, see :mod:`repro.workloads.mixes`); single-core setups use the
workload's own swing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.core.campaign import Campaign, CharacterizationRun
from repro.core.classify import OutcomeCounts, RunLog, classify_run_log, summarize
from repro.core.results import ResultRow, ResultStore
from repro.core.watchdog import Watchdog
from repro.cpu.outcomes import RunOutcome
from repro.rand import SeedLike, substream
from repro.soc.chip import Chip

#: Modelled benchmark runtime used for wall-time accounting (seconds).
NOMINAL_RUNTIME_S = 300.0


@dataclass(frozen=True)
class RunRecord:
    """Execution summary of one characterization run (all repetitions)."""

    run: CharacterizationRun
    counts: OutcomeCounts
    wall_time_s: float

    @property
    def all_safe(self) -> bool:
        return self.counts.all_safe


class CampaignExecutor:
    """Executes campaigns against one chip.

    Parameters
    ----------
    chip:
        The device under test.
    watchdog:
        Recovery-ladder model; a fresh default is built when omitted.
    seed:
        Seed for the per-repetition outcome sampling stream (independent
        of the chip's own stream so executors are reproducible).
    """

    def __init__(self, chip: Chip, watchdog: Optional[Watchdog] = None,
                 seed: SeedLike = None) -> None:
        self.chip = chip
        self.watchdog = watchdog or Watchdog()
        self._rng = substream(seed, f"executor-{chip.serial}")
        self.store = ResultStore()

    # ------------------------------------------------------------------
    # Execution phase
    # ------------------------------------------------------------------
    def execute_run(self, run: CharacterizationRun) -> RunRecord:
        """Execute all repetitions of one characterization run."""
        setup = run.setup
        workload = run.workload
        swing = workload.resonant_swing
        outcomes: List[RunOutcome] = []
        total_wall = 0.0
        for repetition in range(setup.repetitions):
            worst = RunOutcome.CORRECT
            ce_count = 0
            ue_count = 0
            for core in setup.cores:
                outcome = self.chip.observe_run(
                    core, swing, setup.voltage_mv, setup.freq_ghz,
                    sdc_bias=workload.cpu.sdc_bias, rng=self._rng,
                )
                if outcome is RunOutcome.CORRECTED_ERROR:
                    ce_count += 1
                if outcome is RunOutcome.UNCORRECTED_ERROR:
                    ue_count += 1
                worst = _worse(worst, outcome)
            log = RunLog(
                exited_cleanly=worst not in (RunOutcome.CRASH, RunOutcome.HANG),
                responded_to_watchdog=worst is not RunOutcome.HANG,
                corrected_errors=ce_count,
                uncorrected_errors=ue_count,
                output_matches_golden=None if worst in (RunOutcome.CRASH, RunOutcome.HANG)
                else worst is not RunOutcome.SDC,
            )
            classified = classify_run_log(log)
            supervised = self.watchdog.supervise(
                classified, NOMINAL_RUNTIME_S, description=run.describe())
            total_wall += supervised.wall_time_s
            outcomes.append(classified)
            self.store.append(ResultRow(
                run_id=run.run_id,
                benchmark=workload.name,
                suite=workload.cpu.suite,
                voltage_mv=setup.voltage_mv,
                freq_ghz=setup.freq_ghz,
                cores=";".join(str(c.linear) for c in setup.cores),
                repetition=repetition,
                outcome=classified.value,
                verdict=supervised.verdict.value,
                corrected_errors=ce_count,
                uncorrected_errors=ue_count,
                wall_time_s=supervised.wall_time_s,
            ))
        return RunRecord(run=run, counts=summarize(outcomes), wall_time_s=total_wall)

    def execute_campaign(self, campaign: Campaign,
                         stop_on_unsafe: bool = False) -> List[RunRecord]:
        """Execute a whole campaign (optionally aborting once unsafe).

        ``stop_on_unsafe`` implements the practical optimization real
        undervolting campaigns use on descending sweeps: once a voltage
        fails there is no point probing lower ones.
        """
        records = []
        for run in campaign.runs:
            record = self.execute_run(run)
            records.append(record)
            if stop_on_unsafe and not record.all_safe:
                break
        return records

    def execute_all(self, campaigns: Iterable[Campaign],
                    stop_on_unsafe: bool = False) -> List[RunRecord]:
        """Execute several campaigns back to back."""
        records: List[RunRecord] = []
        for campaign in campaigns:
            records.extend(self.execute_campaign(campaign, stop_on_unsafe))
        return records


_SEVERITY = {
    RunOutcome.CORRECT: 0,
    RunOutcome.CORRECTED_ERROR: 1,
    RunOutcome.UNCORRECTED_ERROR: 2,
    RunOutcome.SDC: 3,
    RunOutcome.CRASH: 4,
    RunOutcome.HANG: 5,
}


def _worse(a: RunOutcome, b: RunOutcome) -> RunOutcome:
    """The more severe of two outcomes."""
    return a if _SEVERITY[a] >= _SEVERITY[b] else b
