"""Result storage: per-run rows to a final CSV.

The framework's parsing phase "provides a fine-grained classification of
the effects observed for each characterization run" and emits a final
CSV. :class:`ResultStore` keeps the rows in memory, supports filtered
queries (per benchmark, per setup), and serializes to CSV text or a
file.
"""

from __future__ import annotations

import csv
import io
from typing import Callable, Iterable, List, Mapping, NamedTuple, Optional

from repro.cpu.outcomes import RunOutcome
from repro.errors import CampaignError

#: Canonical column order of the final CSV.
RESULT_FIELDS = (
    "run_id", "benchmark", "suite", "voltage_mv", "freq_ghz", "cores",
    "repetition", "outcome", "verdict", "corrected_errors",
    "uncorrected_errors", "wall_time_s", "run_key",
)


def result_fields() -> List[str]:
    """The CSV schema, as a list (callers may extend with extras)."""
    return list(RESULT_FIELDS)


class ResultRow(NamedTuple):
    """One repetition of one characterization run.

    A ``NamedTuple`` rather than a frozen dataclass: campaigns create one
    row per repetition (hundreds of thousands in a full study) and tuple
    construction is several times cheaper than a frozen dataclass's
    field-by-field ``object.__setattr__`` path, while keeping the same
    immutable, by-value-comparable record semantics.
    """

    run_id: int
    benchmark: str
    suite: str
    voltage_mv: float
    freq_ghz: float
    cores: str
    repetition: int
    outcome: str
    verdict: str
    corrected_errors: int
    uncorrected_errors: int
    wall_time_s: float
    #: Globally unique run identity (chip serial + campaign + run
    #: signature), stamped by the executor. Empty on rows produced before
    #: execution context is known; the cloud key falls back to ``run_id``.
    run_key: str = ""


def row_from_record(record: Mapping[str, str]) -> ResultRow:
    """Build a :class:`ResultRow` from a string-valued field mapping.

    The single place CSV/transport text turns back into typed rows, so
    the codec in :mod:`repro.core.transport` and
    :meth:`ResultStore.from_csv_text` can never drift apart. ``run_key``
    is optional for compatibility with CSVs written before the global
    run-identity column existed.
    """
    try:
        return ResultRow(
            run_id=int(record["run_id"]),
            benchmark=record["benchmark"],
            suite=record["suite"],
            voltage_mv=float(record["voltage_mv"]),
            freq_ghz=float(record["freq_ghz"]),
            cores=record["cores"],
            repetition=int(record["repetition"]),
            outcome=record["outcome"],
            verdict=record["verdict"],
            corrected_errors=int(record["corrected_errors"]),
            uncorrected_errors=int(record["uncorrected_errors"]),
            wall_time_s=float(record["wall_time_s"]),
            run_key=record.get("run_key", "") or "",
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise CampaignError(f"malformed row record: {exc}") from exc


class ResultStore:
    """Append-only store of result rows with CSV export."""

    def __init__(self) -> None:
        self._rows: List[ResultRow] = []

    def append(self, row: ResultRow) -> None:
        self._rows.append(row)

    def extend(self, rows: Iterable[ResultRow]) -> None:
        """Bulk-append rows (one list op, not one call per row)."""
        self._rows.extend(rows)

    def merge(self, other: "ResultStore") -> None:
        """Absorb every row of ``other``, preserving its row order.

        The parallel campaign engine executes shards in worker processes
        and folds their stores back together with this.
        """
        self._rows.extend(other._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def rows(self, benchmark: Optional[str] = None,
             voltage_mv: Optional[float] = None,
             predicate: Optional[Callable[[ResultRow], bool]] = None) -> List[ResultRow]:
        """Filtered view of the stored rows."""
        selected = self._rows
        if benchmark is not None:
            selected = [r for r in selected if r.benchmark == benchmark]
        if voltage_mv is not None:
            selected = [r for r in selected if abs(r.voltage_mv - voltage_mv) < 1e-9]
        if predicate is not None:
            selected = [r for r in selected if predicate(r)]
        return list(selected)

    def outcomes(self, benchmark: str, voltage_mv: float) -> List[RunOutcome]:
        """Outcome enums for one (benchmark, voltage) cell."""
        return [RunOutcome(r.outcome)
                for r in self.rows(benchmark=benchmark, voltage_mv=voltage_mv)]

    def benchmarks(self) -> List[str]:
        return sorted({r.benchmark for r in self._rows})

    def voltages(self, benchmark: Optional[str] = None) -> List[float]:
        rows = self.rows(benchmark=benchmark)
        return sorted({r.voltage_mv for r in rows}, reverse=True)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_csv_text(self) -> str:
        """Serialize all rows as CSV text (header included)."""
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=result_fields())
        writer.writeheader()
        for row in self._rows:
            writer.writerow(row._asdict())
        return buffer.getvalue()

    def write_csv(self, path: str) -> int:
        """Write the final CSV to ``path``; returns the row count."""
        text = self.to_csv_text()
        with open(path, "w", encoding="utf-8", newline="") as handle:
            handle.write(text)
        return len(self._rows)

    @classmethod
    def from_csv_text(cls, text: str) -> "ResultStore":
        """Parse a CSV produced by :meth:`to_csv_text`.

        ``run_key`` is optional so CSVs written before the global
        run-identity column existed still load.
        """
        store = cls()
        reader = csv.DictReader(io.StringIO(text))
        required = set(RESULT_FIELDS) - {"run_key"}
        if reader.fieldnames is None or required - set(reader.fieldnames):
            raise CampaignError("CSV is missing required result columns")
        for record in reader:
            store.append(row_from_record(record))
        return store
