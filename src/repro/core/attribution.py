"""Failure attribution: cache SRAM vs pipeline logic.

The paper (Section I): because the CPU pipeline and the cache memories
share one voltage domain, "we can identify whether the chip failures
rise from the cache memories or from pipeline logic by crafting
synthetic programs that specifically target components in both regions".

This module implements that diagnostic flow:

1. run each component micro-virus down a voltage ladder and record the
   voltage at which it first trips (its component's effective Vmin) --
   each virus sensitizes its target structure through its
   ``residency_bias_mv``, exposing the component slightly earlier than a
   generic workload would;
2. combine with the SRAM fault model's array-level Vmin estimates;
3. attribute the chip's failure onset to whichever region (SRAM arrays
   vs datapath/control logic) trips at the higher voltage, and report
   the per-component ladder the diagnosis rests on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cpu.sram import SramFaultModel
from repro.errors import SearchError
from repro.rand import SeedLike
from repro.soc.chip import Chip
from repro.soc.topology import CoreId
from repro.viruses.components import (
    ComponentVirus,
    TargetComponent,
    all_component_viruses,
)


class FailureRegion(enum.Enum):
    """The two voltage-domain regions the paper distinguishes."""

    CACHE_SRAM = "cache_sram"
    PIPELINE_LOGIC = "pipeline_logic"

    def __str__(self) -> str:
        return self.value


#: Which region each micro-virus target belongs to.
REGION_OF_TARGET: Dict[TargetComponent, FailureRegion] = {
    TargetComponent.L1I: FailureRegion.CACHE_SRAM,
    TargetComponent.L1D: FailureRegion.CACHE_SRAM,
    TargetComponent.L2: FailureRegion.CACHE_SRAM,
    TargetComponent.INT_ALU: FailureRegion.PIPELINE_LOGIC,
    TargetComponent.FP_ALU: FailureRegion.PIPELINE_LOGIC,
}


@dataclass(frozen=True)
class ComponentVminEstimate:
    """Effective failure-onset voltage of one isolated component."""

    target: TargetComponent
    region: FailureRegion
    vmin_mv: float


@dataclass(frozen=True)
class AttributionReport:
    """Outcome of the diagnostic campaign on one chip."""

    chip_serial: str
    estimates: Tuple[ComponentVminEstimate, ...]
    sram_array_vmin_mv: float

    def region_vmin_mv(self, region: FailureRegion) -> float:
        """Highest onset voltage among the region's components."""
        values = [e.vmin_mv for e in self.estimates if e.region is region]
        if region is FailureRegion.CACHE_SRAM:
            values.append(self.sram_array_vmin_mv)
        if not values:
            raise SearchError(f"no estimates for region {region}")
        return max(values)

    @property
    def first_failing_region(self) -> FailureRegion:
        """The region that trips first as voltage drops."""
        sram = self.region_vmin_mv(FailureRegion.CACHE_SRAM)
        logic = self.region_vmin_mv(FailureRegion.PIPELINE_LOGIC)
        return FailureRegion.CACHE_SRAM if sram > logic \
            else FailureRegion.PIPELINE_LOGIC

    @property
    def region_gap_mv(self) -> float:
        """Separation between the two regions' onsets (diagnosis confidence)."""
        return abs(self.region_vmin_mv(FailureRegion.CACHE_SRAM)
                   - self.region_vmin_mv(FailureRegion.PIPELINE_LOGIC))

    def ladder(self) -> List[ComponentVminEstimate]:
        """All component estimates, highest onset first."""
        return sorted(self.estimates, key=lambda e: e.vmin_mv, reverse=True)


def _component_vmin(chip: Chip, core: CoreId, virus: ComponentVirus,
                    swing: float) -> float:
    """Effective onset voltage of the virus's target on ``core``.

    The virus's residency bias models how parking all activity in one
    structure sensitizes that structure's weakest cells/paths beyond
    what a mixed workload exposes.
    """
    return chip.vmin_mv(core, swing) + virus.residency_bias_mv


def run_attribution(chip: Chip, core: Optional[CoreId] = None,
                    sram_model: Optional[SramFaultModel] = None,
                    seed: SeedLike = None) -> AttributionReport:
    """Run the full component-isolation campaign on one chip."""
    from repro.pdn.droop import swing_of_loop
    core = core if core is not None else chip.strongest_core()
    sram_model = sram_model or SramFaultModel(seed=seed)
    estimates = []
    for target, virus in all_component_viruses().items():
        swing = swing_of_loop(virus.loop)
        estimates.append(ComponentVminEstimate(
            target=target,
            region=REGION_OF_TARGET[target],
            vmin_mv=_component_vmin(chip, core, virus, swing),
        ))
    return AttributionReport(
        chip_serial=chip.serial,
        estimates=tuple(estimates),
        sram_array_vmin_mv=sram_model.hierarchy_vmin(),
    )
