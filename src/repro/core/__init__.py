"""The automated characterization framework (paper Section III, Fig. 2).

This is the methodological contribution the paper describes: a framework
that (1) identifies a system's limits under scaled voltage/frequency
conditions and (2) logs and classifies the effects of every program
execution at those conditions. It has three phases:

- **initialization** -- declare a benchmark list with characterization
  setups (V/F points, core placements): :mod:`repro.core.campaign`;
- **execution** -- run every (benchmark, setup) combination with a
  watchdog, reset switch and power switch to recover from hangs and
  crashes: :mod:`repro.core.executor`, :mod:`repro.core.watchdog`;
- **parsing** -- classify each run's logs into correct / CE / UE / SDC /
  crash / hang and emit the final CSV: :mod:`repro.core.classify`,
  :mod:`repro.core.results`.

On top of the framework sit the analyses the paper builds from it:
Vmin search (:mod:`repro.core.vmin`), guardband/margin accounting
(:mod:`repro.core.margins`), safe-operating-point selection
(:mod:`repro.core.safepoints`) and the workload-dependent Vmin predictor
(:mod:`repro.core.predictor`, after reference [11]).
"""

from repro.core.attribution import (
    AttributionReport,
    FailureRegion,
    run_attribution,
)
from repro.core.campaign import (
    Campaign,
    CampaignPlan,
    CharacterizationRun,
    CharacterizationSetup,
)
from repro.core.failure_prob import (
    DroopHistory,
    FailureProbabilityModel,
    idle_vmin_mv,
)
from repro.core.checkpoint import CampaignCheckpoint
from repro.core.faults import (
    FaultBurst,
    FaultInjector,
    FaultPlan,
    FaultStats,
    PoisonError,
)
from repro.core.supervisor import (
    MapOutcome,
    SupervisedPool,
    SupervisorStats,
    UnitFailure,
    supervised_map,
)
from repro.core.framework import CharacterizationFramework, ChipStudy
from repro.core.governor import GovernorReport, VoltageGovernor
from repro.core.executor import CampaignExecutor, RunRecord
from repro.core.parallel import ParallelCampaignExecutor, parallel_map
from repro.core.watchdog import Watchdog, WatchdogVerdict
from repro.core.classify import OutcomeCounts, classify_run_log, summarize
from repro.core.results import ResultStore, result_fields
from repro.core.timeline import CampaignScheduler, StudyTimeline, figure4_study_hours
from repro.core.transport import (
    CloudStore,
    NetworkLink,
    ResultUploader,
    SerialLink,
)
from repro.core.vmin import VminSearch, VminResult
from repro.core.margins import GuardbandReport, guardband_report
from repro.core.safepoints import SafeOperatingPoint, select_safe_points
from repro.core.predictor import VminPredictor, PredictorReport

__all__ = [
    "AttributionReport",
    "Campaign",
    "CampaignCheckpoint",
    "CampaignExecutor",
    "CampaignPlan",
    "CampaignScheduler",
    "FaultBurst",
    "FaultInjector",
    "FaultPlan",
    "FaultStats",
    "CharacterizationFramework",
    "CharacterizationRun",
    "CharacterizationSetup",
    "ChipStudy",
    "CloudStore",
    "DroopHistory",
    "FailureProbabilityModel",
    "FailureRegion",
    "GovernorReport",
    "GuardbandReport",
    "MapOutcome",
    "NetworkLink",
    "PoisonError",
    "SupervisedPool",
    "SupervisorStats",
    "UnitFailure",
    "ResultUploader",
    "SerialLink",
    "OutcomeCounts",
    "ParallelCampaignExecutor",
    "PredictorReport",
    "ResultStore",
    "RunRecord",
    "SafeOperatingPoint",
    "StudyTimeline",
    "figure4_study_hours",
    "VminPredictor",
    "VminResult",
    "VminSearch",
    "VoltageGovernor",
    "Watchdog",
    "WatchdogVerdict",
    "classify_run_log",
    "guardband_report",
    "idle_vmin_mv",
    "parallel_map",
    "result_fields",
    "run_attribution",
    "select_safe_points",
    "summarize",
    "supervised_map",
]
