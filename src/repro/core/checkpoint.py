"""Campaign checkpoint/resume: persist completed shards to disk.

A full characterization study is hours of wall time (the paper calls the
campaigns "particularly time-consuming"), and the machine running the
harness is itself being crashed on purpose -- so an interrupted
``--jobs N`` study must not re-execute the shards that already finished.

:class:`CampaignCheckpoint` stores one CSV of result rows plus one JSON
manifest per completed campaign shard, keyed by a content-addressed
token derived from the shard's global run identities (chip serial +
campaign + every run signature). The manifest is written *after* the
rows, so a manifest's existence is the commit point: a crash mid-write
leaves a stray ``.csv`` that resume simply re-executes.

Because shard execution is deterministic (seeded substreams per run) and
the CSV codec round-trips floats exactly (``repr`` precision), a resumed
study reproduces the interrupted study's rows bit-for-bit -- the
property the checkpoint tests assert.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, List

from repro.core.campaign import Campaign
from repro.core.results import ResultRow, ResultStore
from repro.errors import CampaignError


def _fs_safe(name: str) -> str:
    """A filesystem-safe rendering of a campaign name."""
    return "".join(c if c.isalnum() or c in "-_." else "_" for c in name)


class CampaignCheckpoint:
    """Per-shard CSV + manifest persistence under one directory."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    @staticmethod
    def shard_token(chip_serial: str, campaign: Campaign) -> str:
        """Content-addressed identity of one (chip, campaign) shard.

        Hashes the chip serial, the campaign name and every run's global
        key *and* run id -- so a shard only resumes into a study that
        declares the exact same work, and two campaigns that happen to
        share a benchmark name but differ in setups never collide.
        """
        parts = [chip_serial, campaign.name]
        parts.extend(f"run{run.run_id}:{run.global_key(chip_serial)}"
                     for run in campaign.runs)
        digest = hashlib.sha256("\n".join(parts).encode("utf-8")).hexdigest()
        return f"{_fs_safe(campaign.name)}-{digest[:16]}"

    def _rows_path(self, token: str) -> str:
        return os.path.join(self.directory, f"{token}.csv")

    def _manifest_path(self, token: str) -> str:
        return os.path.join(self.directory, f"{token}.json")

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def has(self, token: str) -> bool:
        """Whether this shard completed (manifest is the commit point)."""
        return os.path.exists(self._manifest_path(token))

    def save(self, token: str, chip_serial: str, campaign: Campaign,
             rows: List[ResultRow]) -> None:
        """Persist one completed shard: rows first, manifest last."""
        store = ResultStore()
        store.extend(rows)
        text = store.to_csv_text()
        rows_path = self._rows_path(token)
        tmp_path = rows_path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8", newline="") as handle:
            handle.write(text)
        os.replace(tmp_path, rows_path)
        manifest = {
            "token": token,
            "chip": chip_serial,
            "campaign": campaign.name,
            "rows": len(rows),
            "sha256": hashlib.sha256(text.encode("utf-8")).hexdigest(),
        }
        tmp_manifest = self._manifest_path(token) + ".tmp"
        with open(tmp_manifest, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=1)
        os.replace(tmp_manifest, self._manifest_path(token))

    def load_rows(self, token: str) -> List[ResultRow]:
        """Reload a completed shard's rows, verifying the manifest."""
        if not self.has(token):
            raise CampaignError(f"checkpoint has no completed shard {token!r}")
        with open(self._manifest_path(token), encoding="utf-8") as handle:
            manifest = json.load(handle)
        # newline="" reads the file verbatim: the CSV uses \r\n row
        # terminators, which universal-newline mode would rewrite and
        # break the manifest hash.
        with open(self._rows_path(token), encoding="utf-8",
                  newline="") as handle:
            text = handle.read()
        digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
        if digest != manifest.get("sha256"):
            raise CampaignError(
                f"checkpoint shard {token!r} is corrupt: CSV hash mismatch")
        rows = ResultStore.from_csv_text(text).rows()
        if len(rows) != manifest.get("rows"):
            raise CampaignError(
                f"checkpoint shard {token!r} is corrupt: row count mismatch")
        return rows

    def completed_shards(self) -> List[Dict]:
        """Manifests of every completed shard, sorted by token."""
        manifests = []
        for name in sorted(os.listdir(self.directory)):
            if name.endswith(".json"):
                with open(os.path.join(self.directory, name),
                          encoding="utf-8") as handle:
                    manifests.append(json.load(handle))
        return manifests
