"""Campaign checkpoint/resume: persist completed shards to disk.

A full characterization study is hours of wall time (the paper calls the
campaigns "particularly time-consuming"), and the machine running the
harness is itself being crashed on purpose -- so an interrupted
``--jobs N`` study must not re-execute the shards that already finished.

:class:`CampaignCheckpoint` stores one CSV of result rows plus one JSON
manifest per completed campaign shard, keyed by a content-addressed
token derived from the shard's global run identities (chip serial +
campaign + every run signature). The manifest is written *after* the
rows, so a manifest's existence is the commit point: a crash mid-write
leaves a stray ``.csv`` that resume simply re-executes.

Because shard execution is deterministic (seeded substreams per run) and
the CSV codec round-trips floats exactly (``repr`` precision), a resumed
study reproduces the interrupted study's rows bit-for-bit -- the
property the checkpoint tests assert.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, List, Optional

from repro.core.campaign import Campaign
from repro.core.results import ResultRow, ResultStore
from repro.core.supervisor import UnitFailure
from repro.errors import CampaignError

#: Manifest ``status`` values. Manifests written before quarantine
#: support carry no status field and count as completed.
STATUS_COMPLETED = "completed"
STATUS_QUARANTINED = "quarantined"


def _fs_safe(name: str) -> str:
    """A filesystem-safe rendering of a campaign name."""
    return "".join(c if c.isalnum() or c in "-_." else "_" for c in name)


class CampaignCheckpoint:
    """Per-shard CSV + manifest persistence under one directory."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    @staticmethod
    def shard_token(chip_serial: str, campaign: Campaign) -> str:
        """Content-addressed identity of one (chip, campaign) shard.

        Hashes the chip serial, the campaign name and every run's global
        key *and* run id -- so a shard only resumes into a study that
        declares the exact same work, and two campaigns that happen to
        share a benchmark name but differ in setups never collide.
        """
        parts = [chip_serial, campaign.name]
        parts.extend(f"run{run.run_id}:{run.global_key(chip_serial)}"
                     for run in campaign.runs)
        digest = hashlib.sha256("\n".join(parts).encode("utf-8")).hexdigest()
        return f"{_fs_safe(campaign.name)}-{digest[:16]}"

    def _rows_path(self, token: str) -> str:
        return os.path.join(self.directory, f"{token}.csv")

    def _manifest_path(self, token: str) -> str:
        return os.path.join(self.directory, f"{token}.json")

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def _read_manifest(self, token: str) -> Optional[Dict]:
        path = self._manifest_path(token)
        if not os.path.exists(path):
            return None
        with open(path, encoding="utf-8") as handle:
            return json.load(handle)

    def has(self, token: str) -> bool:
        """Whether this shard *completed* (manifest is the commit point).

        A quarantined shard has a manifest too but no rows; it does not
        count as completed -- resume surfaces its typed failure instead
        of reloading rows.
        """
        manifest = self._read_manifest(token)
        return (manifest is not None
                and manifest.get("status", STATUS_COMPLETED)
                == STATUS_COMPLETED)

    def save(self, token: str, chip_serial: str, campaign: Campaign,
             rows: List[ResultRow]) -> None:
        """Persist one completed shard: rows first, manifest last."""
        store = ResultStore()
        store.extend(rows)
        text = store.to_csv_text()
        rows_path = self._rows_path(token)
        tmp_path = rows_path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8", newline="") as handle:
            handle.write(text)
        os.replace(tmp_path, rows_path)
        manifest = {
            "token": token,
            "chip": chip_serial,
            "campaign": campaign.name,
            "status": STATUS_COMPLETED,
            "rows": len(rows),
            "sha256": hashlib.sha256(text.encode("utf-8")).hexdigest(),
        }
        self._write_manifest(token, manifest)

    def _write_manifest(self, token: str, manifest: Dict) -> None:
        tmp_manifest = self._manifest_path(token) + ".tmp"
        with open(tmp_manifest, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=1)
        os.replace(tmp_manifest, self._manifest_path(token))

    def mark_quarantined(self, token: str, chip_serial: str,
                         campaign: Campaign, failure: UnitFailure) -> None:
        """Record a shard the supervisor quarantined: manifest, no rows.

        A later ``--resume`` run then knows the shard was *decided* (not
        merely unfinished) and continues past it, surfacing the typed
        failure instead of re-executing a known-poisonous shard. A
        shard that already completed is never demoted.
        """
        existing = self._read_manifest(token)
        if existing is not None and existing.get(
                "status", STATUS_COMPLETED) == STATUS_COMPLETED:
            return
        self._write_manifest(token, {
            "token": token,
            "chip": chip_serial,
            "campaign": campaign.name,
            "status": STATUS_QUARANTINED,
            "rows": 0,
            "failure": {
                "kind": failure.kind,
                "attempts": failure.attempts,
                "detail": failure.detail,
                "label": failure.label or campaign.name,
            },
        })

    def quarantined_failure(self, token: str) -> Optional[UnitFailure]:
        """The typed failure of a quarantined shard, or ``None``."""
        manifest = self._read_manifest(token)
        if manifest is None or manifest.get(
                "status", STATUS_COMPLETED) != STATUS_QUARANTINED:
            return None
        failure = manifest.get("failure", {})
        return UnitFailure(
            index=-1,
            kind=failure.get("kind", "pool-broken"),
            attempts=int(failure.get("attempts", 0)),
            detail=failure.get("detail", ""),
            label=failure.get("label", manifest.get("campaign", "")),
        )

    def load_rows(self, token: str) -> List[ResultRow]:
        """Reload a completed shard's rows, verifying the manifest."""
        if not self.has(token):
            raise CampaignError(f"checkpoint has no completed shard {token!r}")
        with open(self._manifest_path(token), encoding="utf-8") as handle:
            manifest = json.load(handle)
        # newline="" reads the file verbatim: the CSV uses \r\n row
        # terminators, which universal-newline mode would rewrite and
        # break the manifest hash.
        with open(self._rows_path(token), encoding="utf-8",
                  newline="") as handle:
            text = handle.read()
        digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
        if digest != manifest.get("sha256"):
            raise CampaignError(
                f"checkpoint shard {token!r} is corrupt: CSV hash mismatch")
        rows = ResultStore.from_csv_text(text).rows()
        if len(rows) != manifest.get("rows"):
            raise CampaignError(
                f"checkpoint shard {token!r} is corrupt: row count mismatch")
        return rows

    def _manifests(self) -> List[Dict]:
        manifests = []
        for name in sorted(os.listdir(self.directory)):
            if name.endswith(".json"):
                with open(os.path.join(self.directory, name),
                          encoding="utf-8") as handle:
                    manifests.append(json.load(handle))
        return manifests

    def completed_shards(self) -> List[Dict]:
        """Manifests of every completed shard, sorted by token."""
        return [m for m in self._manifests()
                if m.get("status", STATUS_COMPLETED) == STATUS_COMPLETED]

    def quarantined_shards(self) -> List[Dict]:
        """Manifests of every quarantined shard, sorted by token."""
        return [m for m in self._manifests()
                if m.get("status", STATUS_COMPLETED) == STATUS_QUARANTINED]
