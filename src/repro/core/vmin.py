"""Vmin search: descending voltage ladder with repetition gating.

Reproduces the paper's undervolting flow (Section IV.A): starting from
the nominal supply, step the voltage down; at each point run the
benchmark the configured number of times; the *safe Vmin* is the lowest
voltage at which every repetition stays safe (correct, or errors fully
corrected by ECC). The first voltage with any UE/SDC/crash/hang ends the
descent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.campaign import CharacterizationRun, CharacterizationSetup
from repro.core.executor import CampaignExecutor, RunRecord
from repro.errors import SearchError
from repro.soc.corners import NOMINAL_PMD_MV
from repro.soc.topology import CoreId, NOMINAL_FREQ_GHZ
from repro.workloads.base import Workload


@dataclass(frozen=True)
class VminResult:
    """Outcome of one Vmin search."""

    workload: str
    cores: Tuple[CoreId, ...]
    freq_ghz: float
    safe_vmin_mv: float
    first_unsafe_mv: Optional[float]
    records: Tuple[RunRecord, ...]
    campaign_wall_time_s: float

    @property
    def guardband_mv(self) -> float:
        """Shaveable margin below the nominal supply."""
        return NOMINAL_PMD_MV - self.safe_vmin_mv

    @property
    def power_reduction_fraction(self) -> float:
        """Dynamic-power reduction from running at the safe Vmin.

        The paper's "at least 18.4 % reduction" numbers are V^2 power
        ratios, which this reproduces.
        """
        return 1.0 - (self.safe_vmin_mv / NOMINAL_PMD_MV) ** 2


class VminSearch:
    """Descending-ladder Vmin search over a campaign executor."""

    def __init__(self, executor: CampaignExecutor, step_mv: float = 5.0,
                 start_mv: float = NOMINAL_PMD_MV, floor_mv: float = 700.0,
                 repetitions: int = 10) -> None:
        if step_mv <= 0:
            raise SearchError("step must be positive")
        if floor_mv >= start_mv:
            raise SearchError("floor must be below the start voltage")
        self.executor = executor
        self.step_mv = step_mv
        self.start_mv = start_mv
        self.floor_mv = floor_mv
        self.repetitions = repetitions
        self._run_counter = 0

    def search(self, workload: Workload,
               cores: Sequence[CoreId] = (CoreId(0, 0),),
               freq_ghz: float = NOMINAL_FREQ_GHZ) -> VminResult:
        """Run the descending ladder for one workload/core placement."""
        records: List[RunRecord] = []
        safe_vmin = self.start_mv
        first_unsafe: Optional[float] = None
        voltage = self.start_mv
        wall_time = 0.0
        while voltage >= self.floor_mv - 1e-9:
            setup = CharacterizationSetup(
                voltage_mv=voltage, freq_ghz=freq_ghz,
                cores=tuple(cores), repetitions=self.repetitions,
            )
            self._run_counter += 1
            record = self.executor.execute_run(CharacterizationRun(
                workload=workload, setup=setup, run_id=self._run_counter,
            ))
            records.append(record)
            wall_time += record.wall_time_s
            if record.all_safe:
                safe_vmin = voltage
            else:
                first_unsafe = voltage
                break
            voltage -= self.step_mv
        if safe_vmin == self.start_mv and first_unsafe == self.start_mv:
            raise SearchError(
                f"{workload.name}: unsafe already at the start voltage "
                f"{self.start_mv} mV"
            )
        return VminResult(
            workload=workload.name,
            cores=tuple(cores),
            freq_ghz=freq_ghz,
            safe_vmin_mv=safe_vmin,
            first_unsafe_mv=first_unsafe,
            records=tuple(records),
            campaign_wall_time_s=wall_time,
        )

    def search_suite(self, workloads: Sequence[Workload],
                     cores: Sequence[CoreId] = (CoreId(0, 0),),
                     freq_ghz: float = NOMINAL_FREQ_GHZ) -> List[VminResult]:
        """Vmin ladder for each workload in a suite."""
        return [self.search(w, cores=cores, freq_ghz=freq_ghz) for w in workloads]
