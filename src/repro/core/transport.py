"""Result transports: the Figure 2 "Serial / Network -> Cloud" path.

The framework's execution phase ships raw run logs off the board --
over the serial console when the OS is wedged, over the network
otherwise -- into a cloud store the parsing phase reads. Since runs
deliberately crash the machine, the transports must tolerate corruption,
loss and duplicated retransmissions.

This module models that plumbing:

- :class:`SerialLink` -- frames each row as a checksummed line over a
  bit-error-prone UART; the receiver drops bad frames and the sender
  retries a bounded number of times;
- :class:`NetworkLink` -- packetized transfer with seeded packet loss
  and bounded retries (at-least-once delivery: duplicates possible);
- :class:`CloudStore` -- the receiving end; idempotent on the globally
  unique ``(run_key, run_id, repetition)`` identity so at-least-once
  transports converge to exactly-once contents, even when several
  campaigns or chips upload into the same store;
- :class:`ResultUploader` -- drains a :class:`ResultStore` through any
  link into the cloud store and reports delivery statistics.

Both links accept a :class:`~repro.core.faults.FaultInjector`, which
forces corruption/loss bursts onto specific rows -- the hook the
fault-equivalence tests use to prove the pipeline still converges to the
clean run's exact contents.
"""

from __future__ import annotations

import csv
import io
import zlib
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.faults import FaultInjector
from repro.core.results import ResultRow, ResultStore, result_fields, row_from_record
from repro.errors import CampaignError
from repro.rand import SeedLike, substream

#: Fixed-width CRC32 suffix: ``payload | crc`` with an 8-hex-digit CRC.
#: The separator and CRC live at fixed offsets from the frame's *end*,
#: so no corrupted payload byte -- not even one forging a ``|`` -- can
#: shift where the receiver splits the frame.
_CRC_DIGITS = 8
_FRAME_OVERHEAD = _CRC_DIGITS + 1  # "|" + 8 hex digits


def encode_row(row: ResultRow) -> str:
    """Serialize one row as a proper CSV record (no trailing newline).

    Uses the same quoting rules as :meth:`ResultStore.to_csv_text`, so
    field values containing commas, quotes or newlines (benchmark
    labels, the global ``run_key``) survive the trip intact.
    """
    buffer = io.StringIO()
    csv.writer(buffer).writerow([str(value) for value in row])
    return buffer.getvalue()[:-2]  # strip the writer's "\r\n"


def decode_row(line: str) -> ResultRow:
    """Parse a record produced by :func:`encode_row`."""
    try:
        rows = list(csv.reader(io.StringIO(line)))
    except csv.Error as exc:
        raise CampaignError(f"malformed row: {exc}") from exc
    if len(rows) != 1:
        raise CampaignError(f"malformed row: {len(rows)} records in frame")
    parts = rows[0]
    names = result_fields()
    if len(parts) != len(names):
        raise CampaignError(f"malformed row: {len(parts)} fields")
    return row_from_record(dict(zip(names, parts)))


@dataclass
class TransportStats:
    """Delivery accounting of one link.

    ``delivered`` counts *rows* that reached the store (once per row,
    however many retransmissions it took); ``dropped`` counts lost
    packets, ``ack_lost`` lost acknowledgements -- so
    ``attempts - delivered`` is the true retransmission overhead.
    """

    attempts: int = 0
    delivered: int = 0
    corrupted: int = 0
    dropped: int = 0
    ack_lost: int = 0
    gave_up: int = 0

    @property
    def retry_rate(self) -> float:
        if self.delivered == 0:
            return 0.0
        return (self.attempts - self.delivered) / self.delivered


class CloudStore:
    """Idempotent receiving store keyed by global run identity.

    The key is ``(run_key, run_id, repetition)``: ``run_key`` is the
    chip serial + campaign + run signature the executor stamps on every
    row, so uploads from different campaigns or chips -- whose *local*
    ``run_id`` counters collide all the time -- never shadow each
    other's rows. Rows without a ``run_key`` (hand-built or legacy) fall
    back to the per-campaign ``(run_id, repetition)`` behaviour.
    """

    def __init__(self) -> None:
        self._rows: Dict[Tuple[str, int, int], ResultRow] = {}
        self.duplicates = 0

    @staticmethod
    def key_of(row: ResultRow) -> Tuple[str, int, int]:
        """The deduplication identity of one row."""
        return (row.run_key, row.run_id, row.repetition)

    def receive(self, row: ResultRow) -> None:
        """Accept a row; duplicate identities are counted and ignored."""
        key = self.key_of(row)
        if key in self._rows:
            self.duplicates += 1
            return
        self._rows[key] = row

    def contains(self, row: ResultRow) -> bool:
        """Whether this exact run identity has already been received."""
        return self.key_of(row) in self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def to_store(self) -> ResultStore:
        """Materialize a :class:`ResultStore` in key order."""
        store = ResultStore()
        for key in sorted(self._rows):
            store.append(self._rows[key])
        return store


class SerialLink:
    """Checksummed line framing over a bit-error-prone UART.

    Every frame is ``payload|crc32`` with the separator and CRC at fixed
    offsets from the end; the receiver recomputes the CRC and NAKs
    mismatches. The sender retries up to ``max_retries`` times. A
    :class:`~repro.core.faults.FaultInjector` can force corruption
    bursts onto specific rows.
    """

    def __init__(self, store: CloudStore, bit_error_rate: float = 1e-5,
                 max_retries: int = 8, seed: SeedLike = None,
                 fault_injector: Optional[FaultInjector] = None) -> None:
        if not 0.0 <= bit_error_rate < 1.0:
            raise CampaignError("bit error rate must be in [0, 1)")
        if max_retries < 0:
            raise CampaignError("max_retries cannot be negative")
        self.store = store
        self.bit_error_rate = bit_error_rate
        self.max_retries = max_retries
        self._rng = substream(seed, "serial-link")
        self._injector = fault_injector
        self._rows_sent = 0
        self.stats = TransportStats()

    def _transmit(self, frame: bytes) -> bytes:
        """Push a frame through the noisy UART, flipping unlucky bits."""
        n_bits = len(frame) * 8
        flips = self._rng.binomial(n_bits, self.bit_error_rate)
        if flips == 0:
            return frame
        data = bytearray(frame)
        for _ in range(flips):
            position = int(self._rng.integers(n_bits))
            data[position // 8] ^= 1 << (position % 8)
        return bytes(data)

    @staticmethod
    def _injected_corruption(frame: bytes, row_index: int,
                             attempt: int) -> bytes:
        """Deterministically flip one bit (always caught by the CRC)."""
        n_bits = len(frame) * 8
        position = (row_index * 8191 + attempt * 131) % n_bits
        data = bytearray(frame)
        data[position // 8] ^= 1 << (position % 8)
        return bytes(data)

    def send(self, row: ResultRow) -> bool:
        """Deliver one row; returns False if every retry failed."""
        row_index = self._rows_sent
        self._rows_sent += 1
        payload = encode_row(row).encode("utf-8")
        checksum = zlib.crc32(payload)
        frame = payload + b"|" + f"{checksum:08x}".encode("ascii")
        for attempt in range(self.max_retries + 1):
            self.stats.attempts += 1
            if self._injector is not None \
                    and self._injector.corrupt_frame(row_index, attempt):
                received = self._injected_corruption(frame, row_index, attempt)
            else:
                received = self._transmit(frame)
            decoded = None
            if len(received) > _FRAME_OVERHEAD \
                    and received[-_FRAME_OVERHEAD:-_CRC_DIGITS] == b"|":
                body = received[:-_FRAME_OVERHEAD]
                crc_text = received[-_CRC_DIGITS:]
                try:
                    if int(crc_text, 16) == zlib.crc32(body):
                        decoded = decode_row(body.decode("utf-8"))
                except (ValueError, UnicodeDecodeError, CampaignError):
                    decoded = None
            if decoded is not None:
                self.store.receive(decoded)
                self.stats.delivered += 1
                return True
            self.stats.corrupted += 1
        self.stats.gave_up += 1
        return False


class NetworkLink:
    """Packetized transfer with seeded loss and bounded retries.

    Loss drops the whole packet (the row); the sender retries until the
    acknowledgement arrives or the budget runs out. Acknowledgements can
    be lost too, producing duplicate deliveries -- which the idempotent
    :class:`CloudStore` absorbs. A
    :class:`~repro.core.faults.FaultInjector` can force loss bursts onto
    specific rows.
    """

    def __init__(self, store: CloudStore, loss_rate: float = 0.05,
                 ack_loss_rate: float = 0.02, max_retries: int = 8,
                 seed: SeedLike = None,
                 fault_injector: Optional[FaultInjector] = None) -> None:
        for name, rate in (("loss_rate", loss_rate),
                           ("ack_loss_rate", ack_loss_rate)):
            if not 0.0 <= rate < 1.0:
                raise CampaignError(f"{name} must be in [0, 1)")
        if max_retries < 0:
            raise CampaignError("max_retries cannot be negative")
        self.store = store
        self.loss_rate = loss_rate
        self.ack_loss_rate = ack_loss_rate
        self.max_retries = max_retries
        self._rng = substream(seed, "network-link")
        self._injector = fault_injector
        self._rows_sent = 0
        self.stats = TransportStats()

    def send(self, row: ResultRow) -> bool:
        """Deliver one row with retry-until-acked semantics."""
        row_index = self._rows_sent
        self._rows_sent += 1
        arrived = False
        for attempt in range(self.max_retries + 1):
            self.stats.attempts += 1
            lost = self._rng.random() < self.loss_rate
            if self._injector is not None \
                    and self._injector.drop_packet(row_index, attempt):
                lost = True
            if lost:
                self.stats.dropped += 1
                continue
            self.store.receive(row)       # packet arrived
            if not arrived:
                # Count the row once, however many retransmits it takes:
                # duplicate arrivals are the cloud store's business.
                self.stats.delivered += 1
                arrived = True
            if self._rng.random() < self.ack_loss_rate:
                # Ack lost: the sender will retransmit a duplicate.
                self.stats.ack_lost += 1
                continue
            return True
        if arrived:
            # The row landed on an attempt whose ack died; that is a
            # delivery, not a failure.
            return True
        self.stats.gave_up += 1
        # A previous upload of this same run identity may have landed it.
        return self.store.contains(row)


class ResultUploader:
    """Drains a local ResultStore through a link into the cloud."""

    def __init__(self, link) -> None:
        self.link = link
        self.skipped = 0

    def upload(self, store: ResultStore,
               skip_delivered: bool = False) -> Tuple[int, int]:
        """Push every row; returns ``(sent_ok, failed)``.

        ``skip_delivered`` consults :meth:`CloudStore.contains` first and
        skips rows the cloud already holds -- the resume-friendly mode
        for re-uploading after an interrupted study.
        """
        ok = failed = 0
        for row in store.rows():
            if skip_delivered and self.link.store.contains(row):
                self.skipped += 1
                continue
            if self.link.send(row):
                ok += 1
            else:
                failed += 1
        return ok, failed
