"""Result transports: the Figure 2 "Serial / Network -> Cloud" path.

The framework's execution phase ships raw run logs off the board --
over the serial console when the OS is wedged, over the network
otherwise -- into a cloud store the parsing phase reads. Since runs
deliberately crash the machine, the transports must tolerate corruption,
loss and duplicated retransmissions.

This module models that plumbing:

- :class:`SerialLink` -- frames each row as a checksummed line over a
  bit-error-prone UART; the receiver drops bad frames and the sender
  retries a bounded number of times;
- :class:`NetworkLink` -- packetized transfer with seeded packet loss
  and bounded retries (at-least-once delivery: duplicates possible);
- :class:`CloudStore` -- the receiving end; idempotent on the
  ``(run_id, repetition)`` key so at-least-once transports converge to
  exactly-once contents;
- :class:`ResultUploader` -- drains a :class:`ResultStore` through any
  link into the cloud store and reports delivery statistics.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.results import ResultRow, ResultStore, result_fields
from repro.errors import CampaignError
from repro.rand import SeedLike, substream


def encode_row(row: ResultRow) -> str:
    """Serialize one row as a CSV line (no header, no newline)."""
    record = row._asdict()
    return ",".join(str(record[name]) for name in result_fields())


def decode_row(line: str) -> ResultRow:
    """Parse a line produced by :func:`encode_row`."""
    parts = line.split(",")
    names = result_fields()
    if len(parts) != len(names):
        raise CampaignError(f"malformed row: {len(parts)} fields")
    record = dict(zip(names, parts))
    return ResultRow(
        run_id=int(record["run_id"]),
        benchmark=record["benchmark"],
        suite=record["suite"],
        voltage_mv=float(record["voltage_mv"]),
        freq_ghz=float(record["freq_ghz"]),
        cores=record["cores"],
        repetition=int(record["repetition"]),
        outcome=record["outcome"],
        verdict=record["verdict"],
        corrected_errors=int(record["corrected_errors"]),
        uncorrected_errors=int(record["uncorrected_errors"]),
        wall_time_s=float(record["wall_time_s"]),
    )


@dataclass
class TransportStats:
    """Delivery accounting of one link."""

    attempts: int = 0
    delivered: int = 0
    corrupted: int = 0
    dropped: int = 0
    gave_up: int = 0

    @property
    def retry_rate(self) -> float:
        if self.delivered == 0:
            return 0.0
        return (self.attempts - self.delivered) / self.delivered


class CloudStore:
    """Idempotent receiving store keyed by ``(run_id, repetition)``."""

    def __init__(self) -> None:
        self._rows: Dict[Tuple[int, int], ResultRow] = {}
        self.duplicates = 0

    def receive(self, row: ResultRow) -> None:
        """Accept a row; duplicate keys are counted and ignored."""
        key = (row.run_id, row.repetition)
        if key in self._rows:
            self.duplicates += 1
            return
        self._rows[key] = row

    def __len__(self) -> int:
        return len(self._rows)

    def to_store(self) -> ResultStore:
        """Materialize a :class:`ResultStore` in key order."""
        store = ResultStore()
        for key in sorted(self._rows):
            store.append(self._rows[key])
        return store


class SerialLink:
    """Checksummed line framing over a bit-error-prone UART.

    Every frame is ``payload|crc32``; the receiver recomputes the CRC
    and NAKs mismatches. The sender retries up to ``max_retries`` times.
    """

    def __init__(self, store: CloudStore, bit_error_rate: float = 1e-5,
                 max_retries: int = 8, seed: SeedLike = None) -> None:
        if not 0.0 <= bit_error_rate < 1.0:
            raise CampaignError("bit error rate must be in [0, 1)")
        if max_retries < 0:
            raise CampaignError("max_retries cannot be negative")
        self.store = store
        self.bit_error_rate = bit_error_rate
        self.max_retries = max_retries
        self._rng = substream(seed, "serial-link")
        self.stats = TransportStats()

    def _transmit(self, frame: bytes) -> bytes:
        """Push a frame through the noisy UART, flipping unlucky bits."""
        n_bits = len(frame) * 8
        flips = self._rng.binomial(n_bits, self.bit_error_rate)
        if flips == 0:
            return frame
        data = bytearray(frame)
        for _ in range(flips):
            position = int(self._rng.integers(n_bits))
            data[position // 8] ^= 1 << (position % 8)
        return bytes(data)

    def send(self, row: ResultRow) -> bool:
        """Deliver one row; returns False if every retry failed."""
        payload = encode_row(row).encode("utf-8")
        checksum = zlib.crc32(payload)
        frame = payload + b"|" + f"{checksum:08x}".encode("ascii")
        for _attempt in range(self.max_retries + 1):
            self.stats.attempts += 1
            received = self._transmit(frame)
            body, _, crc_text = received.rpartition(b"|")
            try:
                crc_ok = int(crc_text, 16) == zlib.crc32(body)
                decoded = decode_row(body.decode("utf-8")) if crc_ok else None
            except (ValueError, UnicodeDecodeError, CampaignError):
                crc_ok, decoded = False, None
            if crc_ok and decoded is not None:
                self.store.receive(decoded)
                self.stats.delivered += 1
                return True
            self.stats.corrupted += 1
        self.stats.gave_up += 1
        return False


class NetworkLink:
    """Packetized transfer with seeded loss and bounded retries.

    Loss drops the whole packet (the row); the sender retries until the
    acknowledgement arrives or the budget runs out. Acknowledgements can
    be lost too, producing duplicate deliveries -- which the idempotent
    :class:`CloudStore` absorbs.
    """

    def __init__(self, store: CloudStore, loss_rate: float = 0.05,
                 ack_loss_rate: float = 0.02, max_retries: int = 8,
                 seed: SeedLike = None) -> None:
        for name, rate in (("loss_rate", loss_rate),
                           ("ack_loss_rate", ack_loss_rate)):
            if not 0.0 <= rate < 1.0:
                raise CampaignError(f"{name} must be in [0, 1)")
        if max_retries < 0:
            raise CampaignError("max_retries cannot be negative")
        self.store = store
        self.loss_rate = loss_rate
        self.ack_loss_rate = ack_loss_rate
        self.max_retries = max_retries
        self._rng = substream(seed, "network-link")
        self.stats = TransportStats()

    def send(self, row: ResultRow) -> bool:
        """Deliver one row with retry-until-acked semantics."""
        for _attempt in range(self.max_retries + 1):
            self.stats.attempts += 1
            if self._rng.random() < self.loss_rate:
                self.stats.dropped += 1
                continue
            self.store.receive(row)       # packet arrived
            self.stats.delivered += 1
            if self._rng.random() < self.ack_loss_rate:
                # Ack lost: the sender will retransmit a duplicate.
                self.stats.dropped += 1
                continue
            return True
        self.stats.gave_up += 1
        # The row may still have arrived on an attempt whose ack died.
        return (row.run_id, row.repetition) in self.store._rows


class ResultUploader:
    """Drains a local ResultStore through a link into the cloud."""

    def __init__(self, link) -> None:
        self.link = link

    def upload(self, store: ResultStore) -> Tuple[int, int]:
        """Push every row; returns ``(sent_ok, failed)``."""
        ok = failed = 0
        for row in store.rows():
            if self.link.send(row):
                ok += 1
            else:
                failed += 1
        return ok, failed
