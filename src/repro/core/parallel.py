"""Process-parallel campaign engine.

The paper's characterization methodology is embarrassingly parallel at
the campaign level: every (benchmark, chip) pair walks its own voltage
ladder, and the system-level framework of Papadimitriou et al.
(arXiv:2106.09975) exploits exactly that shape across cores. This module
adds the same fan-out to our reproduction without giving up bit-exact
determinism:

- every characterization run already draws from a named substream
  derived from ``(seed, chip serial, run signature)`` (see
  :class:`repro.core.executor.CampaignExecutor`), so a run's sampled
  outcomes do not depend on which process executes it or in what order;
- each campaign shard gets a fresh executor (and therefore a fresh
  watchdog recovery ladder), so harness-side recovery accounting is
  campaign-local and also order-independent;
- shard results come back through :class:`concurrent.futures` in
  submission order and merge into one :class:`ResultStore`.

Consequently ``jobs=1`` (inline, no pool) and any ``jobs=N`` produce
identical records and identical result rows -- the property
``tests/test_parallel.py`` locks down.

Seeds must be integers (or ``None``) for cross-process reproducibility:
a live generator object cannot be re-derived identically on workers.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, List, Sequence, Tuple, TypeVar

from repro.core.campaign import Campaign
from repro.core.executor import CampaignExecutor, RunRecord
from repro.core.results import ResultStore
from repro.errors import CampaignError
from repro.rand import DEFAULT_SEED
from repro.soc.chip import Chip

_T = TypeVar("_T")
_R = TypeVar("_R")


def default_jobs() -> int:
    """A sensible worker count: the machine's CPU count."""
    return max(1, os.cpu_count() or 1)


def resolve_seed(seed) -> int:
    """Coerce a seed to the integer base the parallel engine requires.

    Integers pass through and ``None`` becomes :data:`DEFAULT_SEED`;
    generator objects are rejected because their state cannot be
    re-derived identically in worker processes.
    """
    if seed is None:
        return DEFAULT_SEED
    if isinstance(seed, bool) or not isinstance(seed, int):
        raise CampaignError(
            "parallel execution needs an integer seed (or None); "
            f"got {type(seed).__name__}"
        )
    return int(seed)


def parallel_map(fn: Callable[[_T], _R], items: Sequence[_T],
                 jobs: int = 1) -> List[_R]:
    """Order-preserving map, optionally fanned out across processes.

    ``jobs <= 1`` (or a single item) runs inline with no pool -- the
    deterministic reference path. ``fn`` and every item must be
    picklable when ``jobs > 1``; results return in item order, so a
    worker count never reorders downstream aggregation.
    """
    items = list(items)
    if jobs <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with ProcessPoolExecutor(max_workers=min(jobs, len(items))) as pool:
        return list(pool.map(fn, items))


def _campaign_shard(task: Tuple[Chip, int, Campaign, bool]
                    ) -> Tuple[List[RunRecord], List]:
    """Worker body: execute one campaign on a fresh executor."""
    chip, seed, campaign, stop_on_unsafe = task
    executor = CampaignExecutor(chip, seed=seed)
    records = executor.execute_campaign(campaign, stop_on_unsafe=stop_on_unsafe)
    return records, executor.store.rows()


class ParallelCampaignExecutor:
    """Shards campaigns across a process pool, bit-identical to serial.

    Parameters
    ----------
    chip:
        The device under test (pickled to workers).
    seed:
        Integer base seed (or ``None`` for the library default). Each
        run's outcome stream derives from ``(seed, chip serial, run
        signature)``, exactly as in the serial executor.
    jobs:
        Worker-process count. ``1`` executes inline with no pool;
        results are identical at every value.

    The watchdog recovery ladder is campaign-local: every campaign shard
    gets a fresh :class:`~repro.core.watchdog.Watchdog`, matching a
    serial loop that builds one executor per campaign.
    """

    def __init__(self, chip: Chip, seed=None, jobs: int = 1) -> None:
        if jobs < 1:
            raise CampaignError(f"jobs must be >= 1, got {jobs}")
        self.chip = chip
        self.jobs = jobs
        self._seed = resolve_seed(seed)
        self.store = ResultStore()

    def execute_campaigns(self, campaigns: Iterable[Campaign],
                          stop_on_unsafe: bool = False) -> List[List[RunRecord]]:
        """Execute campaigns (one shard each), merging stores in order.

        Returns the per-campaign record lists in campaign order; the
        merged rows land in :attr:`store`, ordered exactly as a serial
        per-campaign loop would have appended them.
        """
        tasks = [(self.chip, self._seed, campaign, stop_on_unsafe)
                 for campaign in campaigns]
        shards = parallel_map(_campaign_shard, tasks, jobs=self.jobs)
        all_records: List[List[RunRecord]] = []
        for records, rows in shards:
            all_records.append(records)
            self.store.extend(rows)
        return all_records

    def execute_all(self, campaigns: Iterable[Campaign],
                    stop_on_unsafe: bool = False) -> List[RunRecord]:
        """Flat-record variant mirroring the serial executor's API."""
        return [record
                for records in self.execute_campaigns(campaigns, stop_on_unsafe)
                for record in records]
