"""Process-parallel campaign engine with fault tolerance and resume.

The paper's characterization methodology is embarrassingly parallel at
the campaign level: every (benchmark, chip) pair walks its own voltage
ladder, and the system-level framework of Papadimitriou et al.
(arXiv:2106.09975) exploits exactly that shape across cores. This module
adds the same fan-out to our reproduction without giving up bit-exact
determinism:

- every characterization run already draws from a named substream
  derived from ``(seed, chip serial, run signature)`` (see
  :class:`repro.core.executor.CampaignExecutor`), so a run's sampled
  outcomes do not depend on which process executes it or in what order;
- each campaign shard gets a fresh executor (and therefore a fresh
  watchdog recovery ladder), so harness-side recovery accounting is
  campaign-local and also order-independent;
- shard results come back through :class:`concurrent.futures` in
  submission order and merge into one :class:`ResultStore`.

Consequently ``jobs=1`` (inline, no pool) and any ``jobs=N`` produce
identical records and identical result rows -- the property
``tests/test_parallel.py`` locks down.

On top of that, the engine is the robustness layer of the result
pipeline (the reason the paper's framework exists at all):

- a :class:`~repro.core.faults.FaultInjector` can kill shard attempts
  (worker death, spurious watchdog power cycle); because shards are
  deterministic, the engine simply re-executes the attempt and the final
  rows stay bit-identical to a clean run;
- a :class:`~repro.core.checkpoint.CampaignCheckpoint` persists every
  completed shard (CSV + manifest), so an interrupted ``--jobs N`` study
  resumes without re-executing finished shards -- and reproduces the
  same rows when it does.

Seeds must be integers (or ``None``) for cross-process reproducibility:
a live generator object cannot be re-derived identically on workers.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, TypeVar

from repro.core.campaign import Campaign
from repro.core.checkpoint import CampaignCheckpoint
from repro.core.classify import OutcomeCounts
from repro.core.executor import CampaignExecutor, RunRecord
from repro.core.faults import FaultInjector
from repro.core.results import ResultRow, ResultStore
from repro.cpu.outcomes import RunOutcome
from repro.errors import CampaignError, CampaignInterrupted
from repro.rand import DEFAULT_SEED
from repro.soc.chip import Chip

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Sentinel a doomed work unit returns in place of its result. A plain
#: comparable value (not an object identity) so it survives pickling
#: across the process pool.
UNIT_KILLED = ("repro.core.parallel:unit-killed",)


def default_jobs() -> int:
    """A sensible worker count: the machine's CPU count."""
    return max(1, os.cpu_count() or 1)


def resolve_seed(seed) -> int:
    """Coerce a seed to the integer base the parallel engine requires.

    Integers pass through and ``None`` becomes :data:`DEFAULT_SEED`;
    generator objects are rejected because their state cannot be
    re-derived identically in worker processes.
    """
    if seed is None:
        return DEFAULT_SEED
    if isinstance(seed, bool) or not isinstance(seed, int):
        raise CampaignError(
            "parallel execution needs an integer seed (or None); "
            f"got {type(seed).__name__}"
        )
    return int(seed)


def _plain_map(fn: Callable[[_T], _R], items: Sequence[_T],
               jobs: int) -> List[_R]:
    """Order-preserving map over a process pool (or inline)."""
    if jobs <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with ProcessPoolExecutor(max_workers=min(jobs, len(items))) as pool:
        return list(pool.map(fn, items))


def _faulted_unit(task: Tuple[Callable, object, Optional[str]]):
    """Worker body for fault-aware maps: doomed attempts return the
    kill sentinel instead of a result (simulating a worker that died
    with its work lost)."""
    fn, item, fault = task
    if fault is not None:
        return UNIT_KILLED
    return fn(item)


def parallel_map(fn: Callable[[_T], _R], items: Sequence[_T],
                 jobs: int = 1,
                 fault_injector: Optional[FaultInjector] = None) -> List[_R]:
    """Order-preserving map, optionally fanned out across processes.

    ``jobs <= 1`` (or a single item) runs inline with no pool -- the
    deterministic reference path. ``fn`` and every item must be
    picklable when ``jobs > 1``; results return in item order, so a
    worker count never reorders downstream aggregation.

    With a ``fault_injector``, attempts the injector dooms (worker
    kills, spurious escalations) are lost and transparently re-executed
    until they survive; since work units are deterministic, the returned
    results are identical to an injector-free run.
    """
    items = list(items)
    if fault_injector is None:
        return _plain_map(fn, items, jobs)
    results: List[Optional[_R]] = [None] * len(items)
    pending = [(index, 0) for index in range(len(items))]
    while pending:
        tasks = [(fn, items[index], fault_injector.shard_fault(index, attempt))
                 for index, attempt in pending]
        outs = _plain_map(_faulted_unit, tasks, jobs)
        retry = []
        for (index, attempt), out in zip(pending, outs):
            if out == UNIT_KILLED:
                retry.append((index, attempt + 1))
            else:
                results[index] = out
        pending = retry
    return results


def _campaign_shard(task: Tuple[Chip, int, Campaign, bool, Optional[str]]
                    ) -> Optional[Tuple[List[RunRecord], List[ResultRow]]]:
    """Worker body: execute one campaign attempt on a fresh executor.

    A non-``None`` injected ``fault`` loses the attempt (``None`` comes
    back, as from a worker that died before reporting); the engine
    re-enqueues the shard.
    """
    chip, seed, campaign, stop_on_unsafe, fault = task
    if fault is not None:
        return None
    executor = CampaignExecutor(chip, seed=seed)
    records = executor.execute_campaign(campaign, stop_on_unsafe=stop_on_unsafe)
    return records, executor.store.rows()


def _records_from_rows(campaign: Campaign,
                       rows: Sequence[ResultRow]) -> List[RunRecord]:
    """Rebuild a shard's :class:`RunRecord` list from persisted rows.

    The rows carry everything but the run objects, which the campaign
    supplies; wall time re-accumulates in repetition order, matching the
    executor's summation exactly. Runs absent from the rows (a
    ``stop_on_unsafe`` abort) end the record list, as in live execution.
    """
    by_run: Dict[int, List[ResultRow]] = {}
    for row in rows:
        by_run.setdefault(row.run_id, []).append(row)
    records: List[RunRecord] = []
    for run in campaign.runs:
        run_rows = by_run.get(run.run_id)
        if run_rows is None:
            break
        counts: Dict[RunOutcome, int] = {}
        wall_time = 0.0
        for row in run_rows:
            outcome = RunOutcome(row.outcome)
            counts[outcome] = counts.get(outcome, 0) + 1
            wall_time += row.wall_time_s
        records.append(RunRecord(run=run, counts=OutcomeCounts(counts=counts),
                                 wall_time_s=wall_time))
    return records


class ParallelCampaignExecutor:
    """Shards campaigns across a process pool, bit-identical to serial.

    Parameters
    ----------
    chip:
        The device under test (pickled to workers).
    seed:
        Integer base seed (or ``None`` for the library default). Each
        run's outcome stream derives from ``(seed, chip serial, run
        signature)``, exactly as in the serial executor.
    jobs:
        Worker-process count. ``1`` executes inline with no pool;
        results are identical at every value.
    fault_injector:
        Optional :class:`~repro.core.faults.FaultInjector`; shard
        attempts it dooms (worker kills, spurious watchdog escalations)
        are lost and re-executed, and its plan may inject a study-level
        interruption (:class:`~repro.errors.CampaignInterrupted`).
    checkpoint:
        Optional :class:`~repro.core.checkpoint.CampaignCheckpoint`;
        completed shards persist as CSV + manifest and a later call with
        the same checkpoint re-executes only unfinished shards.

    The watchdog recovery ladder is campaign-local: every campaign shard
    gets a fresh :class:`~repro.core.watchdog.Watchdog`, matching a
    serial loop that builds one executor per campaign.
    """

    def __init__(self, chip: Chip, seed=None, jobs: int = 1,
                 fault_injector: Optional[FaultInjector] = None,
                 checkpoint: Optional[CampaignCheckpoint] = None) -> None:
        if jobs < 1:
            raise CampaignError(f"jobs must be >= 1, got {jobs}")
        self.chip = chip
        self.jobs = jobs
        self._seed = resolve_seed(seed)
        self.fault_injector = fault_injector
        self.checkpoint = checkpoint
        self.store = ResultStore()
        #: Shards loaded from the checkpoint / executed, last call.
        self.shards_resumed = 0
        self.shards_executed = 0

    def execute_campaigns(self, campaigns: Iterable[Campaign],
                          stop_on_unsafe: bool = False) -> List[List[RunRecord]]:
        """Execute campaigns (one shard each), merging stores in order.

        Returns the per-campaign record lists in campaign order; the
        merged rows land in :attr:`store`, ordered exactly as a serial
        per-campaign loop would have appended them. Checkpointed shards
        are reloaded instead of re-executed; injected shard faults are
        retried until the shard survives.
        """
        campaigns = list(campaigns)
        shards: List[Optional[Tuple[List[RunRecord], List[ResultRow]]]] = \
            [None] * len(campaigns)
        tokens: List[Optional[str]] = [None] * len(campaigns)
        self.shards_resumed = 0
        self.shards_executed = 0
        if self.checkpoint is not None:
            for index, campaign in enumerate(campaigns):
                token = self.checkpoint.shard_token(self.chip.serial, campaign)
                tokens[index] = token
                if self.checkpoint.has(token):
                    rows = self.checkpoint.load_rows(token)
                    shards[index] = (_records_from_rows(campaign, rows), rows)
                    self.shards_resumed += 1

        injector = self.fault_injector
        pending = [(index, 0) for index in range(len(campaigns))
                   if shards[index] is None]
        completed = 0
        interrupted = False
        while pending and not interrupted:
            tasks = []
            for index, attempt in pending:
                fault = injector.shard_fault(index, attempt) \
                    if injector is not None else None
                tasks.append((self.chip, self._seed, campaigns[index],
                              stop_on_unsafe, fault))
            outs = parallel_map(_campaign_shard, tasks, jobs=self.jobs)
            retry = []
            for (index, attempt), out in zip(pending, outs):
                if out is None:
                    retry.append((index, attempt + 1))
                    continue
                if interrupted:
                    # Work computed past the injected interruption point
                    # is discarded, exactly as if the study had died:
                    # resume re-executes it.
                    continue
                shards[index] = out
                self.shards_executed += 1
                if self.checkpoint is not None:
                    self.checkpoint.save(tokens[index], self.chip.serial,
                                         campaigns[index], out[1])
                completed += 1
                if injector is not None and injector.interrupt_due(completed):
                    interrupted = True
            pending = retry
        if interrupted:
            raise CampaignInterrupted(
                f"study interrupted after {completed} completed shard(s); "
                "resume from the checkpoint to finish")

        all_records: List[List[RunRecord]] = []
        for shard in shards:
            assert shard is not None
            records, rows = shard
            all_records.append(records)
            self.store.extend(rows)
        return all_records

    def execute_all(self, campaigns: Iterable[Campaign],
                    stop_on_unsafe: bool = False) -> List[RunRecord]:
        """Flat-record variant mirroring the serial executor's API."""
        return [record
                for records in self.execute_campaigns(campaigns, stop_on_unsafe)
                for record in records]
