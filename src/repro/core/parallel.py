"""Process-parallel campaign engine with fault tolerance and resume.

The paper's characterization methodology is embarrassingly parallel at
the campaign level: every (benchmark, chip) pair walks its own voltage
ladder, and the system-level framework of Papadimitriou et al.
(arXiv:2106.09975) exploits exactly that shape across cores. This module
adds the same fan-out to our reproduction without giving up bit-exact
determinism:

- every characterization run already draws from a named substream
  derived from ``(seed, chip serial, run signature)`` (see
  :class:`repro.core.executor.CampaignExecutor`), so a run's sampled
  outcomes do not depend on which process executes it or in what order;
- each campaign shard gets a fresh executor (and therefore a fresh
  watchdog recovery ladder), so harness-side recovery accounting is
  campaign-local and also order-independent;
- shard results come back through the supervised pool keyed by unit
  index and merge into one :class:`ResultStore` in campaign order.

Consequently ``jobs=1`` (inline, no pool) and any ``jobs=N`` produce
identical records and identical result rows -- the property
``tests/test_parallel.py`` locks down.

On top of that, the engine is the robustness layer of the result
pipeline (the reason the paper's framework exists at all). Execution is
*supervised* (:class:`repro.core.supervisor.SupervisedPool`): a worker
that really dies (``os._exit``, segfault, OOM kill), really hangs past
its ``unit_timeout`` deadline, or raises is handled by pool rebuild +
deterministic re-issue, with bounded retries and a typed
:class:`~repro.core.supervisor.UnitFailure` quarantine instead of a raw
``BrokenProcessPool`` escaping to the caller. Injected faults
(:class:`~repro.core.faults.FaultInjector`) ride the same machinery, a
:class:`~repro.core.checkpoint.CampaignCheckpoint` persists every
completed shard (and every quarantined one, as a typed manifest), so an
interrupted ``--jobs N`` study resumes without re-executing finished
shards -- and reproduces the same rows when it does.

Seeds must be integers (or ``None``) for cross-process reproducibility:
a live generator object cannot be re-derived identically on workers.
"""

from __future__ import annotations

import os
from dataclasses import replace
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, TypeVar

from repro.core.campaign import Campaign
from repro.core.checkpoint import CampaignCheckpoint
from repro.core.classify import OutcomeCounts
from repro.core.executor import CampaignExecutor, RunRecord
from repro.core.faults import FaultInjector
from repro.core.results import ResultRow, ResultStore
from repro.core.supervisor import (
    DEFAULT_HANG_SECONDS,
    DEFAULT_MAX_RETRIES,
    SupervisedPool,
    SupervisorStats,
    UnitFailure,
)
from repro.cpu.outcomes import RunOutcome
from repro.errors import CampaignError, CampaignInterrupted, SupervisionError
from repro.rand import DEFAULT_SEED
from repro.soc.chip import Chip

_T = TypeVar("_T")
_R = TypeVar("_R")


def default_jobs() -> int:
    """A sensible worker count: the machine's CPU count."""
    return max(1, os.cpu_count() or 1)


def resolve_seed(seed) -> int:
    """Coerce a seed to the integer base the parallel engine requires.

    Integers pass through and ``None`` becomes :data:`DEFAULT_SEED`;
    generator objects are rejected because their state cannot be
    re-derived identically in worker processes.
    """
    if seed is None:
        return DEFAULT_SEED
    if isinstance(seed, bool) or not isinstance(seed, int):
        raise CampaignError(
            "parallel execution needs an integer seed (or None); "
            f"got {type(seed).__name__}"
        )
    return int(seed)


def _injector_hooks(fault_injector: Optional[FaultInjector]
                    ) -> Tuple[Optional[Callable[[int, int], Optional[str]]],
                               float]:
    """The supervised-map hooks of an (optional) fault injector."""
    if fault_injector is None:
        return None, DEFAULT_HANG_SECONDS
    return fault_injector.unit_fault, fault_injector.plan.hang_seconds


def parallel_map(fn: Callable[[_T], _R], items: Sequence[_T],
                 jobs: int = 1,
                 fault_injector: Optional[FaultInjector] = None,
                 unit_timeout: Optional[float] = None,
                 max_retries: int = DEFAULT_MAX_RETRIES) -> List[_R]:
    """Order-preserving supervised map, optionally fanned out.

    ``jobs <= 1`` (or a single item) runs inline with no pool -- the
    deterministic reference path. ``fn`` and every item must be
    picklable when ``jobs > 1``; results return in item order, so a
    worker count never reorders downstream aggregation.

    Execution is supervised: a worker that really crashes, hangs past
    ``unit_timeout``, or raises is recovered by pool rebuild and
    deterministic re-issue (see :mod:`repro.core.supervisor`), and
    injected faults from a ``fault_injector`` -- simulated kills and
    escalations as well as real exits / hangs / poison raises -- ride
    the same machinery. Since work units are deterministic, the
    returned results are identical to an injector-free serial run. A
    unit that exhausts ``max_retries`` raises a typed
    :class:`~repro.errors.SupervisionError` carrying the quarantined
    :class:`~repro.core.supervisor.UnitFailure` records -- never a raw
    ``BrokenProcessPool`` or a worker traceback. That contract holds at
    every worker count: the inline ``jobs=1`` path supervises too, so a
    raising unit surfaces the same typed failure it would in a pool.
    """
    items = list(items)
    inject, hang_seconds = _injector_hooks(fault_injector)
    with SupervisedPool(jobs=min(jobs, max(1, len(items))),
                        unit_timeout=unit_timeout,
                        max_retries=max_retries) as pool:
        outcome = pool.map(fn, items, inject=inject,
                           hang_seconds=hang_seconds)
    if outcome.failures:
        raise SupervisionError(outcome.failures)
    return list(outcome.values)


def _campaign_shard(task: Tuple[Chip, int, Campaign, bool]
                    ) -> Tuple[List[RunRecord], List[ResultRow]]:
    """Worker body: execute one campaign shard on a fresh executor."""
    chip, seed, campaign, stop_on_unsafe = task
    executor = CampaignExecutor(chip, seed=seed)
    records = executor.execute_campaign(campaign, stop_on_unsafe=stop_on_unsafe)
    return records, executor.store.rows()


def _records_from_rows(campaign: Campaign,
                       rows: Sequence[ResultRow]) -> List[RunRecord]:
    """Rebuild a shard's :class:`RunRecord` list from persisted rows.

    The rows carry everything but the run objects, which the campaign
    supplies; wall time re-accumulates in repetition order, matching the
    executor's summation exactly. Runs absent from the rows (a
    ``stop_on_unsafe`` abort) end the record list, as in live execution.
    """
    by_run: Dict[int, List[ResultRow]] = {}
    for row in rows:
        by_run.setdefault(row.run_id, []).append(row)
    records: List[RunRecord] = []
    for run in campaign.runs:
        run_rows = by_run.get(run.run_id)
        if run_rows is None:
            break
        counts: Dict[RunOutcome, int] = {}
        wall_time = 0.0
        for row in run_rows:
            outcome = RunOutcome(row.outcome)
            counts[outcome] = counts.get(outcome, 0) + 1
            wall_time += row.wall_time_s
        records.append(RunRecord(run=run, counts=OutcomeCounts(counts=counts),
                                 wall_time_s=wall_time))
    return records


class ParallelCampaignExecutor:
    """Shards campaigns across a supervised pool, bit-identical to serial.

    Parameters
    ----------
    chip:
        The device under test (pickled to workers).
    seed:
        Integer base seed (or ``None`` for the library default). Each
        run's outcome stream derives from ``(seed, chip serial, run
        signature)``, exactly as in the serial executor.
    jobs:
        Worker-process count. ``1`` executes inline with no pool;
        results are identical at every value.
    fault_injector:
        Optional :class:`~repro.core.faults.FaultInjector`; shard
        attempts it dooms -- simulated worker kills and watchdog
        escalations as well as *real* worker exits, deadline hangs and
        poison raises -- are recovered by the supervisor, and its plan
        may inject a study-level interruption
        (:class:`~repro.errors.CampaignInterrupted`).
    checkpoint:
        Optional :class:`~repro.core.checkpoint.CampaignCheckpoint`;
        completed shards persist as CSV + manifest, quarantined shards
        as a typed manifest, and a later call with the same checkpoint
        re-executes only undecided shards.
    unit_timeout:
        Per-shard deadline in seconds (``None`` disables hang
        detection); a shard still running at its deadline is charged a
        hang and deterministically re-issued.
    max_retries:
        Attributed-failure budget per shard; a shard whose attempts
        crash/hang/poison ``max_retries + 1`` times is quarantined as a
        typed :class:`~repro.core.supervisor.UnitFailure` in
        :attr:`failures` (its record list comes back empty and its rows
        are omitted from :attr:`store`) instead of killing the study.

    One supervised pool serves the whole :meth:`execute_campaigns`
    call -- every retry round included -- and :attr:`supervision`
    reports what it did (attempts, retries, rebuilds, quarantines).
    The watchdog recovery ladder is campaign-local: every campaign shard
    gets a fresh :class:`~repro.core.watchdog.Watchdog`, matching a
    serial loop that builds one executor per campaign.
    """

    def __init__(self, chip: Chip, seed=None, jobs: int = 1,
                 fault_injector: Optional[FaultInjector] = None,
                 checkpoint: Optional[CampaignCheckpoint] = None,
                 unit_timeout: Optional[float] = None,
                 max_retries: int = DEFAULT_MAX_RETRIES) -> None:
        if jobs < 1:
            raise CampaignError(f"jobs must be >= 1, got {jobs}")
        self.chip = chip
        self.jobs = jobs
        self._seed = resolve_seed(seed)
        self.fault_injector = fault_injector
        self.checkpoint = checkpoint
        self.unit_timeout = unit_timeout
        self.max_retries = max_retries
        self.store = ResultStore()
        #: Shards loaded from the checkpoint / executed / quarantined,
        #: last call; plus the supervisor's own accounting.
        self.shards_resumed = 0
        self.shards_executed = 0
        self.shards_quarantined = 0
        self.failures: Tuple[UnitFailure, ...] = ()
        self.supervision = SupervisorStats()

    def execute_campaigns(self, campaigns: Iterable[Campaign],
                          stop_on_unsafe: bool = False) -> List[List[RunRecord]]:
        """Execute campaigns (one shard each), merging stores in order.

        Returns the per-campaign record lists in campaign order; the
        merged rows land in :attr:`store`, ordered exactly as a serial
        per-campaign loop would have appended them. Checkpointed shards
        are reloaded instead of re-executed (quarantined ones are
        skipped, their typed failures resurfaced); faulted attempts are
        recovered by the supervisor until the shard survives or
        exhausts its retry budget and lands in :attr:`failures` with an
        empty record list.
        """
        campaigns = list(campaigns)
        shards: List[Optional[Tuple[List[RunRecord], List[ResultRow]]]] = \
            [None] * len(campaigns)
        tokens: List[Optional[str]] = [None] * len(campaigns)
        failures_by_index: Dict[int, UnitFailure] = {}
        self.shards_resumed = 0
        self.shards_executed = 0
        self.supervision = SupervisorStats()
        if self.checkpoint is not None:
            for index, campaign in enumerate(campaigns):
                token = self.checkpoint.shard_token(self.chip.serial, campaign)
                tokens[index] = token
                if self.checkpoint.has(token):
                    rows = self.checkpoint.load_rows(token)
                    shards[index] = (_records_from_rows(campaign, rows), rows)
                    self.shards_resumed += 1
                    continue
                quarantined = self.checkpoint.quarantined_failure(token)
                if quarantined is not None:
                    # The shard was decided (quarantined) by the
                    # interrupted run: resume continues past it.
                    failures_by_index[index] = replace(
                        quarantined, index=index,
                        label=quarantined.label or campaign.name)

        injector = self.fault_injector
        pending = [index for index in range(len(campaigns))
                   if shards[index] is None
                   and index not in failures_by_index]
        interrupted = False
        if pending:
            inject, hang_seconds = _injector_hooks(injector)
            if inject is not None:
                # Injected schedules are keyed by *campaign* index, not
                # by position in this call's pending list, so a resumed
                # study consults the same schedule as the original.
                pending_inject = \
                    lambda pos, attempt: inject(pending[pos], attempt)  # noqa: E731
            else:
                pending_inject = None
            tasks = [(self.chip, self._seed, campaigns[index], stop_on_unsafe)
                     for index in pending]
            with SupervisedPool(jobs=min(self.jobs, len(tasks)),
                                unit_timeout=self.unit_timeout,
                                max_retries=self.max_retries) as pool:
                outcome = pool.map(_campaign_shard, tasks,
                                   inject=pending_inject,
                                   hang_seconds=hang_seconds)
            self.supervision = outcome.stats
            pool_failures = {f.index: f for f in outcome.failures}

            # Deterministic completion walk in campaign order: persist
            # checkpoints and honor the injected interruption point
            # exactly as a serial loop would -- work past the
            # interruption is discarded and re-executed on resume.
            completed = 0
            for position, index in enumerate(pending):
                if interrupted:
                    shards[index] = None
                    continue
                failure = pool_failures.get(position)
                if failure is not None:
                    failure = replace(failure, index=index,
                                      label=campaigns[index].name)
                    failures_by_index[index] = failure
                    if self.checkpoint is not None:
                        self.checkpoint.mark_quarantined(
                            tokens[index], self.chip.serial,
                            campaigns[index], failure)
                    continue
                shard = outcome.values[position]
                assert shard is not None
                shards[index] = shard
                self.shards_executed += 1
                if self.checkpoint is not None:
                    self.checkpoint.save(tokens[index], self.chip.serial,
                                         campaigns[index], shard[1])
                completed += 1
                if injector is not None and injector.interrupt_due(completed):
                    interrupted = True

        self.failures = tuple(failures_by_index[index]
                              for index in sorted(failures_by_index))
        self.shards_quarantined = len(self.failures)
        if interrupted:
            raise CampaignInterrupted(
                f"study interrupted after {self.shards_executed} completed "
                "shard(s); resume from the checkpoint to finish")

        all_records: List[List[RunRecord]] = []
        for index, shard in enumerate(shards):
            if shard is None:
                # Quarantined shard: typed failure in self.failures, no
                # records, no rows -- the study itself keeps going.
                assert index in failures_by_index
                all_records.append([])
                continue
            records, rows = shard
            all_records.append(records)
            self.store.extend(rows)
        return all_records

    def execute_all(self, campaigns: Iterable[Campaign],
                    stop_on_unsafe: bool = False) -> List[RunRecord]:
        """Flat-record variant mirroring the serial executor's API."""
        return [record
                for records in self.execute_campaigns(campaigns, stop_on_unsafe)
                for record in records]
