"""The characterization framework facade (paper Figure 2, end to end).

Ties the three phases together behind one object per board:

- **initialization**: declare workloads + setups through the embedded
  :class:`~repro.core.campaign.CampaignPlan`;
- **execution**: run every campaign on every socketed part (the paper's
  socketed validation boards host one part at a time; the facade cycles
  through a part list the way the study cycled TTT/TFF/TSS);
- **parsing**: classify, aggregate into per-chip guardband reports, and
  emit the final CSV.

This is the highest-level API of the library: one call reproduces a
whole characterization study over a fleet of parts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.executor import CampaignExecutor
from repro.core.margins import GuardbandReport, guardband_report
from repro.core.results import ResultStore
from repro.core.vmin import VminResult, VminSearch
from repro.errors import CampaignError
from repro.rand import SeedLike, substream
from repro.soc.chip import Chip
from repro.soc.topology import CoreId
from repro.workloads.base import Workload


@dataclass
class ChipStudy:
    """Everything the framework produced for one part."""

    chip: Chip
    vmin_results: List[VminResult] = field(default_factory=list)
    virus_result: Optional[VminResult] = None
    store: Optional[ResultStore] = None

    @property
    def report(self) -> GuardbandReport:
        if not self.vmin_results:
            raise CampaignError(f"{self.chip.serial}: no Vmin results yet")
        return guardband_report(self.chip.serial, self.chip.corner.value,
                                self.vmin_results, self.virus_result)


class CharacterizationFramework:
    """One study: a workload list characterized across a part fleet.

    Parameters
    ----------
    chips:
        The socketed parts, in characterization order.
    repetitions / step_mv:
        Vmin-search settings (10 repetitions per the paper).
    seed:
        Base seed; each part gets an independent substream.
    """

    def __init__(self, chips: Sequence[Chip], repetitions: int = 10,
                 step_mv: float = 5.0, seed: SeedLike = None) -> None:
        if not chips:
            raise CampaignError("need at least one chip")
        serials = [chip.serial for chip in chips]
        if len(set(serials)) != len(serials):
            raise CampaignError("duplicate chip serials in the fleet")
        self.chips = list(chips)
        self.repetitions = repetitions
        self.step_mv = step_mv
        self._seed = seed
        self._workloads: List[Workload] = []
        self._virus: Optional[Workload] = None
        self.studies: Dict[str, ChipStudy] = {}

    # ------------------------------------------------------------------
    # Initialization phase
    # ------------------------------------------------------------------
    def declare_workloads(self, workloads: Sequence[Workload]) -> "CharacterizationFramework":
        """Declare the benchmark list (the paper's initialization box)."""
        names = [w.name for w in workloads]
        if len(set(names)) != len(names):
            raise CampaignError("duplicate workload names")
        self._workloads = list(workloads)
        return self

    def declare_virus(self, virus: Workload) -> "CharacterizationFramework":
        """Declare the worst-case stimulus measured alongside."""
        self._virus = virus
        return self

    # ------------------------------------------------------------------
    # Execution + parsing phases
    # ------------------------------------------------------------------
    def characterize_chip(self, chip: Chip,
                          cores: Optional[Sequence[CoreId]] = None) -> ChipStudy:
        """Run the full study on one part."""
        if not self._workloads:
            raise CampaignError("no workloads declared")
        cores = tuple(cores) if cores is not None else (chip.strongest_core(),)
        executor = CampaignExecutor(
            chip, seed=substream(self._seed, f"framework-{chip.serial}"))
        search = VminSearch(executor, step_mv=self.step_mv,
                            repetitions=self.repetitions)
        study = ChipStudy(chip=chip)
        study.vmin_results = search.search_suite(self._workloads, cores=cores)
        if self._virus is not None:
            study.virus_result = search.search(self._virus, cores=cores)
        study.store = executor.store
        self.studies[chip.serial] = study
        return study

    def run(self, cores: Optional[Sequence[CoreId]] = None) -> Dict[str, ChipStudy]:
        """Characterize the whole fleet; returns studies by serial."""
        for chip in self.chips:
            self.characterize_chip(chip, cores=cores)
        return self.studies

    # ------------------------------------------------------------------
    # Outputs
    # ------------------------------------------------------------------
    def reports(self) -> Dict[str, GuardbandReport]:
        """Per-part guardband reports (run() must have completed)."""
        if not self.studies:
            raise CampaignError("framework has not run yet")
        return {serial: study.report for serial, study in self.studies.items()}

    def merged_csv_text(self) -> str:
        """The study's final CSV across every part.

        Rows gain a leading ``chip`` column identifying the part.
        """
        if not self.studies:
            raise CampaignError("framework has not run yet")
        lines: List[str] = []
        for serial in sorted(self.studies):
            store = self.studies[serial].store
            body = store.to_csv_text().splitlines()
            if not lines:
                lines.append("chip," + body[0])
            lines.extend(f"{serial},{row}" for row in body[1:])
        return "\n".join(lines) + "\n"

    def vmin_table(self) -> Dict[str, Dict[str, float]]:
        """serial -> workload -> safe Vmin (the Figure 4 data layout)."""
        return {
            serial: {r.workload: r.safe_vmin_mv for r in study.vmin_results}
            for serial, study in self.studies.items()
        }
