"""Watchdog monitor, reset switch and power switch.

The execution phase of the framework (paper Figure 2) must survive runs
that crash or wedge the machine: a watchdog notices missing heartbeats,
the reset switch reboots a crashed OS, and the power switch hard-cycles
a board that no longer responds to reset. This module models that
recovery ladder and accounts the recovery time each path costs -- the
reason real undervolting campaigns are "time-consuming" per the paper.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List

from repro.cpu.outcomes import RunOutcome
from repro.errors import ConfigurationError


class WatchdogVerdict(enum.Enum):
    """How a run terminated from the harness's point of view."""

    COMPLETED = "completed"          # benchmark exited by itself
    TIMEOUT_RESET = "timeout_reset"  # hang -> reset switch recovered it
    TIMEOUT_POWER = "timeout_power"  # reset failed -> power switch cycle

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class RecoveryEvent:
    """One recovery action taken by the harness."""

    time_s: float
    verdict: WatchdogVerdict
    run_description: str


@dataclass
class Watchdog:
    """Heartbeat supervisor with a two-stage recovery ladder.

    Parameters
    ----------
    timeout_s:
        Silence threshold before declaring a hang.
    reset_time_s:
        Cost of a reset-switch reboot (OS boot time).
    power_cycle_time_s:
        Cost of a full power cycle (board bring-up + OS boot).
    reset_success_rate:
        Fraction of hangs the reset switch recovers; the remainder
        escalate to the power switch. Deterministic error-diffusion
        scheduling rather than randomness keeps campaign timing
        reproducible while the long-run escalation fraction matches
        ``1 - reset_success_rate`` exactly, for any rate in [0, 1].
    """

    timeout_s: float = 120.0
    reset_time_s: float = 45.0
    power_cycle_time_s: float = 90.0
    reset_success_rate: float = 0.8
    _events: List[RecoveryEvent] = field(default_factory=list, init=False)
    _hang_counter: int = field(default=0, init=False)
    _escalation_debt: float = field(default=0.0, init=False)

    def __post_init__(self) -> None:
        if min(self.timeout_s, self.reset_time_s, self.power_cycle_time_s) <= 0:
            raise ConfigurationError("watchdog times must be positive")
        if not 0.0 <= self.reset_success_rate <= 1.0:
            raise ConfigurationError("reset_success_rate must be in [0, 1]")

    def supervise(self, outcome: RunOutcome, nominal_runtime_s: float,
                  now_s: float = 0.0, description: str = "") -> "SupervisedRun":
        """Account the wall time and recovery path of one run outcome."""
        if nominal_runtime_s <= 0:
            raise ConfigurationError("nominal runtime must be positive")
        if not outcome.needs_reset:
            return SupervisedRun(outcome=outcome,
                                 verdict=WatchdogVerdict.COMPLETED,
                                 wall_time_s=nominal_runtime_s)
        # A hang burns the whole timeout; a crash is noticed at the
        # point of failure (modelled as half the nominal runtime).
        stall = self.timeout_s if outcome is RunOutcome.HANG \
            else nominal_runtime_s * 0.5
        self._hang_counter += 1
        # Deterministic escalation by error diffusion (Bresenham): each
        # recovery accrues (1 - rate) of escalation debt and the reset
        # switch is defeated exactly when a whole escalation is owed.
        # Unlike a rounded "every k-th hang" period -- which collapses
        # to k=1 (always escalate) for any rate below 0.5 -- this makes
        # the long-run escalation fraction track 1 - reset_success_rate
        # for every rate in [0, 1]. The epsilon absorbs float
        # accumulation (five 0.2-debts sum to 0.9999...).
        self._escalation_debt += 1.0 - self.reset_success_rate
        if self._escalation_debt >= 1.0 - 1e-9:
            # Clamp instead of carrying a ~1e-16 negative residue, so
            # the debt cycle repeats identically forever (no drift).
            self._escalation_debt = max(0.0, self._escalation_debt - 1.0)
            verdict = WatchdogVerdict.TIMEOUT_POWER
            recovery = self.reset_time_s + self.power_cycle_time_s
        else:
            verdict = WatchdogVerdict.TIMEOUT_RESET
            recovery = self.reset_time_s
        self._events.append(RecoveryEvent(now_s, verdict, description))
        return SupervisedRun(outcome=outcome, verdict=verdict,
                             wall_time_s=stall + recovery)

    def recovery_events(self) -> List[RecoveryEvent]:
        return list(self._events)


@dataclass(frozen=True)
class SupervisedRun:
    """A run outcome plus its harness-level verdict and wall time."""

    outcome: RunOutcome
    verdict: WatchdogVerdict
    wall_time_s: float
