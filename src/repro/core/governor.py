"""Online voltage governor (paper Section IV.D's deployment target).

The paper's stated future aim: "develop a module for predicting the
hardware behavior and suggesting optimistic 'safe' operating points to
the Linux governor". This module realizes that loop in simulation:

1. on each scheduling quantum the governor observes the running
   workload's performance counters and asks the trained
   :class:`~repro.core.predictor.VminPredictor` for a per-workload Vmin;
2. it maintains a :class:`~repro.core.failure_prob.DroopHistory` and
   the Gumbel failure model on top of the chip's intrinsic (idle) Vmin;
3. the programmed voltage is the highest of (a) the predictor's value,
   (b) the failure-model's budget voltage, (c) a hard floor -- snapped
   to the regulator step;
4. every quantum's outcome is checked against the chip oracle; any
   unsafe quantum triggers a back-off (raise the rail, widen the
   margin) -- the safety valve a production governor needs.

The governor is deliberately conservative: its objective is *never* to
undercut true Vmin while recovering most of the static guardband.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.failure_prob import (
    DroopHistory,
    FailureProbabilityModel,
    idle_vmin_mv,
)
from repro.core.predictor import VminPredictor
from repro.cpu.outcomes import RunOutcome
from repro.errors import SearchError
from repro.rand import SeedLike, substream
from repro.soc.chip import Chip
from repro.soc.corners import NOMINAL_PMD_MV
from repro.soc.topology import CoreId
from repro.workloads.base import Workload


@dataclass(frozen=True)
class QuantumRecord:
    """One scheduling quantum as seen by the governor."""

    workload: str
    programmed_mv: float
    true_vmin_mv: float
    outcome: RunOutcome

    @property
    def margin_mv(self) -> float:
        return self.programmed_mv - self.true_vmin_mv


@dataclass
class GovernorReport:
    """Aggregate of a governed run."""

    quanta: List[QuantumRecord] = field(default_factory=list)
    backoffs: int = 0

    @property
    def unsafe_quanta(self) -> int:
        return sum(1 for q in self.quanta if not q.outcome.is_safe)

    @property
    def mean_voltage_mv(self) -> float:
        if not self.quanta:
            raise SearchError("empty governor report")
        return sum(q.programmed_mv for q in self.quanta) / len(self.quanta)

    @property
    def mean_power_savings_pct(self) -> float:
        """Average dynamic-power reduction vs the 980 mV nominal."""
        if not self.quanta:
            raise SearchError("empty governor report")
        savings = [1.0 - (q.programmed_mv / NOMINAL_PMD_MV) ** 2
                   for q in self.quanta]
        return sum(savings) / len(savings) * 100.0

    @property
    def min_margin_mv(self) -> float:
        if not self.quanta:
            raise SearchError("empty governor report")
        return min(q.margin_mv for q in self.quanta)


class VoltageGovernor:
    """Per-quantum voltage selection with a safety back-off.

    Parameters
    ----------
    chip / core:
        The governed part and the core whose quanta we schedule.
    predictor:
        A trained workload-Vmin predictor.
    failure_budget:
        Acceptable per-run failure probability for the droop model.
    safety_margin_mv:
        Static margin added on top of every estimate.
    step_mv:
        Regulator granularity.
    floor_mv:
        Never program below this.
    """

    def __init__(self, chip: Chip, predictor: VminPredictor,
                 core: Optional[CoreId] = None,
                 failure_budget: float = 1e-3,
                 safety_margin_mv: float = 5.0,
                 step_mv: float = 5.0, floor_mv: float = 760.0,
                 seed: SeedLike = None) -> None:
        if not predictor.fitted:
            raise SearchError("governor needs a trained predictor")
        self.chip = chip
        self.core = core if core is not None else chip.weakest_cores(1)[0]
        self.predictor = predictor
        self.failure_budget = failure_budget
        self.safety_margin_mv = safety_margin_mv
        self.step_mv = step_mv
        self.floor_mv = floor_mv
        self._rng = substream(seed, "governor")
        self._backoff_mv = 0.0
        self.intrinsic_vmin_mv = idle_vmin_mv(chip, self.core)
        # Droop behaviour is workload-dependent (the paper's premise), so
        # the governor keeps one history + failure model per workload; a
        # chip-wide aggregate would force every phase to the worst
        # phase's requirement and erase the tracking benefit.
        self.histories: dict = {}
        self.failure_models: dict = {}
        self.report = GovernorReport()

    def _model_for(self, workload_name: str) -> FailureProbabilityModel:
        if workload_name not in self.failure_models:
            self.failure_models[workload_name] = FailureProbabilityModel(
                self.intrinsic_vmin_mv)
        return self.failure_models[workload_name]

    def _history_for(self, workload_name: str) -> DroopHistory:
        if workload_name not in self.histories:
            self.histories[workload_name] = DroopHistory()
        return self.histories[workload_name]

    # ------------------------------------------------------------------
    # Voltage selection
    # ------------------------------------------------------------------
    def _snap_up(self, value_mv: float) -> float:
        import math
        snapped = math.ceil(value_mv / self.step_mv - 1e-9) * self.step_mv
        return min(max(snapped, self.floor_mv), NOMINAL_PMD_MV)

    def select_voltage_mv(self, workload: Workload) -> float:
        """The rail the governor would program for ``workload`` now."""
        candidates = [self.predictor.predict_mv(workload) + self.safety_margin_mv]
        model = self._model_for(workload.name)
        if model.fitted:
            candidates.append(model.voltage_for_budget(self.failure_budget))
        return self._snap_up(max(candidates) + self._backoff_mv)

    # ------------------------------------------------------------------
    # Governed execution
    # ------------------------------------------------------------------
    def run_quantum(self, workload: Workload) -> QuantumRecord:
        """Execute one scheduling quantum under governor control."""
        voltage = self.select_voltage_mv(workload)
        outcome = self.chip.observe_run(
            self.core, workload.resonant_swing, voltage,
            sdc_bias=workload.cpu.sdc_bias, rng=self._rng)
        record = QuantumRecord(
            workload=workload.name,
            programmed_mv=voltage,
            true_vmin_mv=self.chip.vmin_mv(self.core, workload.resonant_swing),
            outcome=outcome,
        )
        self.report.quanta.append(record)
        # Feed this workload's droop history with the realized excitation.
        history = self._history_for(workload.name)
        history.record_workload(self.chip, workload.resonant_swing,
                                epochs=1, rng=self._rng)
        if history.count >= 16:
            self._model_for(workload.name).fit_history(history)
        if not outcome.is_safe:
            # Safety valve: widen the margin for everything that follows.
            self._backoff_mv += 2.0 * self.step_mv
            self.report.backoffs += 1
        return record

    def run_schedule(self, schedule: Sequence[Workload]) -> GovernorReport:
        """Run a whole workload schedule; returns the accumulated report."""
        if not schedule:
            raise SearchError("empty schedule")
        for workload in schedule:
            self.run_quantum(workload)
        return self.report
