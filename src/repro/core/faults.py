"""Deterministic fault injection for the result pipeline.

The paper's characterization framework exists because undervolting runs
crash, hang and corrupt their own telemetry -- so the harness, not the
benchmark, must guarantee that every repetition's outcome survives to
the final CSV. This module makes that guarantee *testable*: a
:class:`FaultPlan` declares a reproducible schedule of harness-level
faults and a :class:`FaultInjector` feeds it to the pipeline --

- **worker kills**: a campaign shard's worker process dies before
  reporting (the parallel engine must re-execute the shard);
- **spurious watchdog escalations**: the watchdog wrongly power-cycles
  the board mid-shard, losing the attempt's telemetry (again: retry);
- **transport corruption/loss bursts**: windows of uploaded rows whose
  first ``depth`` transmit attempts are forcibly corrupted
  (:class:`~repro.core.transport.SerialLink`) or dropped
  (:class:`~repro.core.transport.NetworkLink`).

Every decision is a pure function of the plan plus ``(index, attempt)``,
so the same plan injects the same faults at any worker count -- which is
what lets the test suite assert the *fault-equivalence property*: a
pipeline run under any seeded plan converges to a cloud store
bit-identical to the clean serial run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import CampaignError
from repro.rand import SeedLike, substream

#: Fault kinds reported by :meth:`FaultInjector.shard_fault`.
WORKER_KILL = "worker-kill"
SPURIOUS_ESCALATION = "spurious-escalation"


@dataclass(frozen=True)
class FaultBurst:
    """A window of uploaded rows whose first attempts are doomed.

    For every row index in ``[first_row, first_row + rows)`` the first
    ``depth`` transmit attempts fail; attempt ``depth`` onward goes
    through. Keeping ``depth <= max_retries`` of the link therefore
    guarantees eventual delivery -- bursts model a flaky window, not a
    severed cable.
    """

    first_row: int
    rows: int
    depth: int

    def __post_init__(self) -> None:
        if self.first_row < 0 or self.rows < 1 or self.depth < 1:
            raise CampaignError("burst needs first_row >= 0, rows/depth >= 1")

    def hits(self, row_index: int, attempt: int) -> bool:
        return (self.first_row <= row_index < self.first_row + self.rows
                and attempt < self.depth)


@dataclass(frozen=True)
class FaultPlan:
    """Declarative, reproducible schedule of harness faults.

    Parameters
    ----------
    shard_kills / shard_escalations:
        ``(shard_index, count)`` pairs: the shard's first ``count``
        attempts die as a killed worker / a spurious watchdog power
        cycle. Both lose the attempt; they differ in what the stats
        blame.
    corruption_bursts / loss_bursts:
        Row windows whose early transmit attempts are corrupted on the
        serial link / dropped on the network link.
    interrupt_after_shards:
        Abort the whole study (``CampaignInterrupted``) once this many
        shards completed in one engine call -- the hook the
        checkpoint/resume tests and the ``--resume`` CLI flow use.
    """

    shard_kills: Tuple[Tuple[int, int], ...] = ()
    shard_escalations: Tuple[Tuple[int, int], ...] = ()
    corruption_bursts: Tuple[FaultBurst, ...] = ()
    loss_bursts: Tuple[FaultBurst, ...] = ()
    interrupt_after_shards: Optional[int] = None

    def __post_init__(self) -> None:
        for name, pairs in (("shard_kills", self.shard_kills),
                            ("shard_escalations", self.shard_escalations)):
            for shard, count in pairs:
                if shard < 0 or count < 1:
                    raise CampaignError(
                        f"{name} needs shard >= 0 and count >= 1")
        if self.interrupt_after_shards is not None \
                and self.interrupt_after_shards < 1:
            raise CampaignError("interrupt_after_shards must be >= 1")

    @property
    def max_transport_depth(self) -> int:
        """Deepest burst; links need ``max_retries >= this`` to converge."""
        bursts = self.corruption_bursts + self.loss_bursts
        return max((b.depth for b in bursts), default=0)

    @classmethod
    def random(cls, seed: SeedLike, shards: int, rows: int = 0,
               max_depth: int = 3,
               interrupt_after_shards: Optional[int] = None) -> "FaultPlan":
        """A seeded plan covering every fault kind.

        ``shards`` is the campaign count of the study; ``rows`` the
        (approximate) number of rows the upload will push -- bursts are
        placed inside that range. The same seed always produces the same
        plan, so a faulted run is exactly reproducible.
        """
        if shards < 1:
            raise CampaignError("a fault plan needs at least one shard")
        rng = substream(seed, "fault-plan")
        kills = tuple(
            (shard, int(rng.integers(1, 3)))
            for shard in range(shards) if rng.random() < 0.5)
        escalations = tuple(
            (shard, 1) for shard in range(shards) if rng.random() < 0.35)
        corruption = []
        loss = []
        if rows > 0:
            for bursts in (corruption, loss):
                for _ in range(int(rng.integers(1, 4))):
                    first = int(rng.integers(0, rows))
                    length = int(rng.integers(1, max(2, rows // 4 + 1)))
                    depth = int(rng.integers(1, max_depth + 1))
                    bursts.append(FaultBurst(first, length, depth))
        return cls(shard_kills=kills, shard_escalations=escalations,
                   corruption_bursts=tuple(corruption),
                   loss_bursts=tuple(loss),
                   interrupt_after_shards=interrupt_after_shards)


@dataclass
class FaultStats:
    """What the injector actually fired, for reporting."""

    worker_kills: int = 0
    spurious_escalations: int = 0
    corrupted_frames: int = 0
    dropped_packets: int = 0

    @property
    def total(self) -> int:
        return (self.worker_kills + self.spurious_escalations
                + self.corrupted_frames + self.dropped_packets)


class FaultInjector:
    """Feeds a :class:`FaultPlan` to the pipeline, counting what fired.

    Decisions are pure functions of ``(index, attempt)`` so they are
    identical at any worker count and on every retry of the same
    attempt; only :attr:`stats` is mutable.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.stats = FaultStats()
        self._kills: Dict[int, int] = dict(plan.shard_kills)
        self._escalations: Dict[int, int] = dict(plan.shard_escalations)

    def shard_fault(self, shard_index: int, attempt: int) -> Optional[str]:
        """Fate of one shard attempt: kill, escalation, or survival."""
        kills = self._kills.get(shard_index, 0)
        if attempt < kills:
            self.stats.worker_kills += 1
            return WORKER_KILL
        if attempt < kills + self._escalations.get(shard_index, 0):
            self.stats.spurious_escalations += 1
            return SPURIOUS_ESCALATION
        return None

    def corrupt_frame(self, row_index: int, attempt: int) -> bool:
        """Should the serial link corrupt this (row, attempt) frame?"""
        if any(b.hits(row_index, attempt) for b in self.plan.corruption_bursts):
            self.stats.corrupted_frames += 1
            return True
        return False

    def drop_packet(self, row_index: int, attempt: int) -> bool:
        """Should the network link drop this (row, attempt) packet?"""
        if any(b.hits(row_index, attempt) for b in self.plan.loss_bursts):
            self.stats.dropped_packets += 1
            return True
        return False

    def interrupt_due(self, completed_shards: int) -> bool:
        """Has the plan's injected interruption point been reached?"""
        return (self.plan.interrupt_after_shards is not None
                and completed_shards >= self.plan.interrupt_after_shards)
