"""Deterministic fault injection for the result pipeline.

The paper's characterization framework exists because undervolting runs
crash, hang and corrupt their own telemetry -- so the harness, not the
benchmark, must guarantee that every repetition's outcome survives to
the final CSV. This module makes that guarantee *testable*: a
:class:`FaultPlan` declares a reproducible schedule of harness-level
faults and a :class:`FaultInjector` feeds it to the pipeline --

- **worker kills**: a campaign shard's worker process dies before
  reporting (the parallel engine must re-execute the shard);
- **spurious watchdog escalations**: the watchdog wrongly power-cycles
  the board mid-shard, losing the attempt's telemetry (again: retry);
- **transport corruption/loss bursts**: windows of uploaded rows whose
  first ``depth`` transmit attempts are forcibly corrupted
  (:class:`~repro.core.transport.SerialLink`) or dropped
  (:class:`~repro.core.transport.NetworkLink`);
- **real process-level faults**: attempts that actually ``os._exit`` the
  worker (breaking the whole pool), sleep past the supervision deadline,
  or raise a poison exception -- exercising the *recovery machinery* of
  :class:`repro.core.supervisor.SupervisedPool` for real instead of
  simulating the loss;
- **thermal rig faults**: time-scheduled sensor and actuator failures of
  the DRAM thermal testbed (stuck/drifting/dropped-out thermocouples,
  SPD read timeouts, welded-on and stuck-open relays, dead heater
  elements, ambient disturbance steps), declared here as typed
  :class:`ThermalFault` records and *applied* by
  :class:`repro.thermal.faults.ThermalFaultInjector`.

Every decision is a pure function of the plan plus ``(index, attempt)``
(or, for thermal faults, of the plan plus virtual time), so the same
plan injects the same faults at any worker count -- which is what lets
the test suite assert the *fault-equivalence property*: a pipeline run
under any seeded plan converges to a cloud store bit-identical to the
clean serial run, with any quarantined (poison) units enumerated
deterministically.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

from repro.errors import CampaignError
from repro.rand import SeedLike, substream

#: Fault kinds reported by :meth:`FaultInjector.shard_fault` and
#: :meth:`FaultInjector.unit_fault`. The first two simulate a lost
#: attempt inside a healthy worker; the ``UNIT_*`` kinds really happen
#: in the worker process.
WORKER_KILL = "worker-kill"
SPURIOUS_ESCALATION = "spurious-escalation"
UNIT_EXIT = "unit-exit"          #: worker calls ``os._exit`` mid-unit
UNIT_HANG = "unit-hang"          #: worker sleeps past its deadline
UNIT_POISON = "unit-poison"      #: worker raises :class:`PoisonError`

#: Thermal-rig fault kinds consumed by :mod:`repro.thermal.faults`.
TC_STUCK = "tc-stuck"            #: thermocouple freezes at its last reading
TC_DRIFT = "tc-drift"            #: thermocouple drifts ``magnitude`` degC/s
TC_DROPOUT = "tc-dropout"        #: thermocouple channel reads nothing
SPD_TIMEOUT = "spd-timeout"      #: SPD/TSOD SMBus reads time out
RELAY_WELDED_ON = "relay-welded-on"    #: SSR conducts regardless of command
RELAY_STUCK_OPEN = "relay-stuck-open"  #: SSR never conducts
HEATER_FAILED = "heater-failed"  #: resistive element goes open-circuit
AMBIENT_STEP = "ambient-step"    #: lab ambient steps by ``magnitude`` degC

#: Thermal fault taxonomy, grouped by what the fault breaks.
THERMAL_SENSOR_KINDS = frozenset(
    {TC_STUCK, TC_DRIFT, TC_DROPOUT, SPD_TIMEOUT})
THERMAL_ACTUATOR_KINDS = frozenset(
    {RELAY_WELDED_ON, RELAY_STUCK_OPEN, HEATER_FAILED})
THERMAL_FAULT_KINDS = (THERMAL_SENSOR_KINDS | THERMAL_ACTUATOR_KINDS
                       | {AMBIENT_STEP})

#: Kinds a monitored testbed recovers from without losing the zone: a
#: single faulted sensor degrades to the surviving one and an ambient
#: step is regulated out. Actuator faults leave the zone unable to hold
#: its setpoint and always end in quarantine.
RECOVERABLE_THERMAL_KINDS = THERMAL_SENSOR_KINDS | {AMBIENT_STEP}


class PoisonError(CampaignError):
    """The injected exception a poison work unit raises in its worker."""


def run_injected_real_fault(directive: str, hang_seconds: float) -> str:
    """Actually perform an injected fault inside a worker process.

    Legacy directives (:data:`WORKER_KILL`, :data:`SPURIOUS_ESCALATION`)
    only *report* the loss -- the worker stays healthy and the caller
    returns a tagged envelope. The real kinds act: :data:`UNIT_EXIT`
    never returns (the process dies and the pool breaks),
    :data:`UNIT_HANG` sleeps ``hang_seconds`` (tripping the supervisor's
    deadline when one is armed, else returning a marker that is charged
    as a hang), and :data:`UNIT_POISON` raises :class:`PoisonError`.
    """
    if directive == UNIT_EXIT:
        os._exit(13)
    if directive == UNIT_HANG:
        time.sleep(hang_seconds)
        return UNIT_HANG
    if directive == UNIT_POISON:
        raise PoisonError("injected poison work unit")
    return directive


@dataclass(frozen=True)
class ThermalFault:
    """One scheduled fault of the thermal rig, in virtual time.

    Parameters
    ----------
    zone:
        Testbed zone (DIMM rank) the fault strikes.
    kind:
        One of :data:`THERMAL_FAULT_KINDS`.
    start_s:
        Virtual time the fault becomes active.
    duration_s:
        Fault window length; ``None`` means permanent (the default for
        actuator faults -- a welded relay does not un-weld).
    magnitude:
        Kind-specific intensity: drift rate in degC/s for
        :data:`TC_DRIFT`, ambient offset in degC for
        :data:`AMBIENT_STEP`; unused otherwise.
    """

    zone: int
    kind: str
    start_s: float
    duration_s: Optional[float] = None
    magnitude: float = 0.0

    def __post_init__(self) -> None:
        if self.zone < 0:
            raise CampaignError("thermal fault zone must be >= 0")
        if self.kind not in THERMAL_FAULT_KINDS:
            raise CampaignError(f"unknown thermal fault kind {self.kind!r}")
        if self.start_s < 0:
            raise CampaignError("thermal fault start_s must be >= 0")
        if self.duration_s is not None and self.duration_s <= 0:
            raise CampaignError("thermal fault duration_s must be positive "
                                "(None for permanent)")
        if self.kind == TC_DRIFT and self.magnitude <= 0:
            raise CampaignError("tc-drift needs a positive degC/s magnitude")
        if self.kind == AMBIENT_STEP and self.magnitude == 0:
            raise CampaignError("ambient-step needs a non-zero magnitude")

    @property
    def end_s(self) -> float:
        """Fault window end (``inf`` for permanent faults)."""
        if self.duration_s is None:
            return float("inf")
        return self.start_s + self.duration_s

    def active(self, now_s: float) -> bool:
        """Whether the fault is in effect at virtual time ``now_s``."""
        return self.start_s <= now_s < self.end_s

    def overlaps(self, other: "ThermalFault") -> bool:
        """Whether two fault windows intersect in time."""
        return self.start_s < other.end_s and other.start_s < self.end_s

    @property
    def recoverable(self) -> bool:
        """Whether a monitored zone survives this fault alone."""
        return self.kind in RECOVERABLE_THERMAL_KINDS


def thermal_faults_recoverable(faults) -> bool:
    """Whether a set of :class:`ThermalFault` leaves every zone viable.

    A plan is recoverable when every fault kind is individually
    recoverable *and* no zone loses both of its temperature sensors at
    once: a thermocouple fault overlapping an SPD timeout in the same
    zone blinds the monitor, which must then quarantine the zone.
    """
    faults = tuple(faults)
    if any(f.kind not in RECOVERABLE_THERMAL_KINDS for f in faults):
        return False
    tc_kinds = {TC_STUCK, TC_DRIFT, TC_DROPOUT}
    for fault in faults:
        if fault.kind not in tc_kinds:
            continue
        for other in faults:
            if (other.zone == fault.zone and other.kind == SPD_TIMEOUT
                    and other.overlaps(fault)):
                return False
    return True


@dataclass(frozen=True)
class FaultBurst:
    """A window of uploaded rows whose first attempts are doomed.

    For every row index in ``[first_row, first_row + rows)`` the first
    ``depth`` transmit attempts fail; attempt ``depth`` onward goes
    through. Keeping ``depth <= max_retries`` of the link therefore
    guarantees eventual delivery -- bursts model a flaky window, not a
    severed cable.
    """

    first_row: int
    rows: int
    depth: int

    def __post_init__(self) -> None:
        if self.first_row < 0 or self.rows < 1 or self.depth < 1:
            raise CampaignError("burst needs first_row >= 0, rows/depth >= 1")

    def hits(self, row_index: int, attempt: int) -> bool:
        return (self.first_row <= row_index < self.first_row + self.rows
                and attempt < self.depth)


@dataclass(frozen=True)
class FaultPlan:
    """Declarative, reproducible schedule of harness faults.

    Parameters
    ----------
    shard_kills / shard_escalations:
        ``(shard_index, count)`` pairs: the shard's first ``count``
        attempts die as a killed worker / a spurious watchdog power
        cycle. Both lose the attempt; they differ in what the stats
        blame.
    corruption_bursts / loss_bursts:
        Row windows whose early transmit attempts are corrupted on the
        serial link / dropped on the network link.
    unit_exits / unit_hangs:
        ``(unit_index, count)`` pairs of *real* process-level faults:
        the unit's next ``count`` attempts (after any simulated losses)
        really ``os._exit`` the worker / really sleep ``hang_seconds``.
        Both charge the supervisor's retry budget, so keeping
        ``exits + hangs <= max_retries`` per unit guarantees the plan
        converges to clean results.
    poison_units:
        Unit indices whose every attempt raises
        :class:`PoisonError` -- these units exhaust their budget and are
        deterministically quarantined as typed failures.
    hang_seconds:
        How long an injected hang sleeps. Under a supervision deadline
        shorter than this the worker is terminated; without one the
        sleep returns a marker that is charged as a hang anyway.
    interrupt_after_shards:
        Abort the whole study (``CampaignInterrupted``) once this many
        shards completed in one engine call -- the hook the
        checkpoint/resume tests and the ``--resume`` CLI flow use.
    thermal_faults:
        Time-scheduled :class:`ThermalFault` records applied to the
        thermal testbed by
        :class:`repro.thermal.faults.ThermalFaultInjector`.
    """

    shard_kills: Tuple[Tuple[int, int], ...] = ()
    shard_escalations: Tuple[Tuple[int, int], ...] = ()
    corruption_bursts: Tuple[FaultBurst, ...] = ()
    loss_bursts: Tuple[FaultBurst, ...] = ()
    unit_exits: Tuple[Tuple[int, int], ...] = ()
    unit_hangs: Tuple[Tuple[int, int], ...] = ()
    poison_units: Tuple[int, ...] = ()
    hang_seconds: float = 1.0
    interrupt_after_shards: Optional[int] = None
    thermal_faults: Tuple[ThermalFault, ...] = ()

    def __post_init__(self) -> None:
        for name, pairs in (("shard_kills", self.shard_kills),
                            ("shard_escalations", self.shard_escalations),
                            ("unit_exits", self.unit_exits),
                            ("unit_hangs", self.unit_hangs)):
            for shard, count in pairs:
                if shard < 0 or count < 1:
                    raise CampaignError(
                        f"{name} needs shard >= 0 and count >= 1")
        if any(unit < 0 for unit in self.poison_units):
            raise CampaignError("poison_units needs unit indices >= 0")
        if self.hang_seconds <= 0:
            raise CampaignError("hang_seconds must be positive")
        if self.interrupt_after_shards is not None \
                and self.interrupt_after_shards < 1:
            raise CampaignError("interrupt_after_shards must be >= 1")
        for fault in self.thermal_faults:
            if not isinstance(fault, ThermalFault):
                raise CampaignError(
                    "thermal_faults entries must be ThermalFault records")

    @property
    def max_transport_depth(self) -> int:
        """Deepest burst; links need ``max_retries >= this`` to converge."""
        bursts = self.corruption_bursts + self.loss_bursts
        return max((b.depth for b in bursts), default=0)

    @property
    def thermal_recoverable(self) -> bool:
        """Whether the plan's thermal faults leave every zone viable."""
        return thermal_faults_recoverable(self.thermal_faults)

    @classmethod
    def random(cls, seed: SeedLike, shards: int, rows: int = 0,
               max_depth: int = 3,
               interrupt_after_shards: Optional[int] = None) -> "FaultPlan":
        """A seeded plan covering every fault kind.

        ``shards`` is the campaign count of the study; ``rows`` the
        (approximate) number of rows the upload will push -- bursts are
        placed inside that range. The same seed always produces the same
        plan, so a faulted run is exactly reproducible.
        """
        if shards < 1:
            raise CampaignError("a fault plan needs at least one shard")
        rng = substream(seed, "fault-plan")
        kills = tuple(
            (shard, int(rng.integers(1, 3)))
            for shard in range(shards) if rng.random() < 0.5)
        escalations = tuple(
            (shard, 1) for shard in range(shards) if rng.random() < 0.35)
        corruption = []
        loss = []
        if rows > 0:
            for bursts in (corruption, loss):
                for _ in range(int(rng.integers(1, 4))):
                    first = int(rng.integers(0, rows))
                    length = int(rng.integers(1, max(2, rows // 4 + 1)))
                    depth = int(rng.integers(1, max_depth + 1))
                    bursts.append(FaultBurst(first, length, depth))
        return cls(shard_kills=kills, shard_escalations=escalations,
                   corruption_bursts=tuple(corruption),
                   loss_bursts=tuple(loss),
                   interrupt_after_shards=interrupt_after_shards)

    @classmethod
    def random_real(cls, seed: SeedLike, units: int,
                    poison_rate: float = 0.0,
                    hang_seconds: float = 0.25,
                    thermal_zones: int = 0,
                    thermal_unrecoverable_rate: float = 0.0) -> "FaultPlan":
        """A seeded plan of *real* process-level faults.

        Exit and hang counts are capped at the default supervision
        budget (at most one of each per unit), so the plan always
        converges: a supervised run finishes with results bit-identical
        to a clean run, except for the units ``poison_rate`` dooms --
        those are quarantined, deterministically, at any worker count.

        ``thermal_zones > 0`` additionally folds a
        :meth:`random_thermal` schedule over that many testbed zones
        into the plan (unrecoverable actuator faults at
        ``thermal_unrecoverable_rate``), so one seed can exercise the
        supervision *and* the thermal fault-tolerance layers together.
        """
        if units < 1:
            raise CampaignError("a real-fault plan needs at least one unit")
        if not 0.0 <= poison_rate <= 1.0:
            raise CampaignError("poison_rate must be within [0, 1]")
        rng = substream(seed, "real-fault-plan")
        exits = tuple((unit, 1) for unit in range(units)
                      if rng.random() < 0.35)
        hangs = tuple((unit, 1) for unit in range(units)
                      if rng.random() < 0.25)
        poison = tuple(unit for unit in range(units)
                       if rng.random() < poison_rate)
        thermal: Tuple[ThermalFault, ...] = ()
        if thermal_zones > 0:
            thermal = cls.random_thermal(
                seed, zones=thermal_zones,
                unrecoverable_rate=thermal_unrecoverable_rate).thermal_faults
        return cls(unit_exits=exits, unit_hangs=hangs, poison_units=poison,
                   hang_seconds=hang_seconds, thermal_faults=thermal)

    @classmethod
    def random_thermal(cls, seed: SeedLike, zones: int = 8,
                       horizon_s: float = 900.0, fault_rate: float = 0.6,
                       unrecoverable_rate: float = 0.0) -> "FaultPlan":
        """A seeded schedule of thermal rig faults over ``zones`` zones.

        At most one fault per zone, placed inside the first regulation
        window of ``horizon_s`` virtual seconds, so a faulted zone never
        loses both sensors at once. With ``unrecoverable_rate == 0``
        every generated fault is recoverable
        (:attr:`thermal_recoverable` is ``True``) and a gated run
        converges bit-identical to the clean run; a non-zero rate mixes
        in permanent actuator faults that deterministically end in zone
        quarantine. The same seed always produces the same schedule.
        """
        if zones < 1:
            raise CampaignError("a thermal fault plan needs >= 1 zone")
        if horizon_s <= 0:
            raise CampaignError("horizon_s must be positive")
        if not 0.0 <= fault_rate <= 1.0:
            raise CampaignError("fault_rate must be within [0, 1]")
        if not 0.0 <= unrecoverable_rate <= 1.0:
            raise CampaignError("unrecoverable_rate must be within [0, 1]")
        rng = substream(seed, "thermal-fault-plan")
        recoverable = (TC_STUCK, TC_DRIFT, TC_DROPOUT, SPD_TIMEOUT,
                       AMBIENT_STEP)
        unrecoverable = (RELAY_WELDED_ON, RELAY_STUCK_OPEN, HEATER_FAILED)
        faults = []
        for zone in range(zones):
            if rng.random() >= fault_rate:
                continue
            start_s = float(rng.uniform(0.1, 0.5)) * horizon_s
            if rng.random() < unrecoverable_rate:
                kind = unrecoverable[int(rng.integers(0, len(unrecoverable)))]
                faults.append(ThermalFault(zone=zone, kind=kind,
                                           start_s=start_s))
                continue
            kind = recoverable[int(rng.integers(0, len(recoverable)))]
            duration_s = float(rng.uniform(0.05, 0.25)) * horizon_s
            magnitude = 0.0
            if kind == TC_DRIFT:
                magnitude = float(rng.uniform(0.02, 0.06))
            elif kind == AMBIENT_STEP:
                magnitude = float(rng.uniform(3.0, 8.0))
            faults.append(ThermalFault(zone=zone, kind=kind, start_s=start_s,
                                       duration_s=duration_s,
                                       magnitude=magnitude))
        return cls(thermal_faults=tuple(faults))


@dataclass
class FaultStats:
    """What the injector actually fired, for reporting."""

    worker_kills: int = 0
    spurious_escalations: int = 0
    corrupted_frames: int = 0
    dropped_packets: int = 0
    unit_exits: int = 0
    unit_hangs: int = 0
    poison_raises: int = 0
    thermal_sensor_faults: int = 0
    thermal_actuator_faults: int = 0
    thermal_disturbances: int = 0

    @property
    def total(self) -> int:
        return (self.worker_kills + self.spurious_escalations
                + self.corrupted_frames + self.dropped_packets
                + self.unit_exits + self.unit_hangs + self.poison_raises
                + self.thermal_sensor_faults + self.thermal_actuator_faults
                + self.thermal_disturbances)

    def note_thermal(self, kind: str) -> None:
        """Count one fired thermal fault under its taxonomy bucket."""
        if kind in THERMAL_SENSOR_KINDS:
            self.thermal_sensor_faults += 1
        elif kind in THERMAL_ACTUATOR_KINDS:
            self.thermal_actuator_faults += 1
        else:
            self.thermal_disturbances += 1


class FaultInjector:
    """Feeds a :class:`FaultPlan` to the pipeline, counting what fired.

    Decisions are pure functions of ``(index, attempt)`` so they are
    identical at any worker count and on every retry of the same
    attempt; only :attr:`stats` is mutable.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.stats = FaultStats()
        self._kills: Dict[int, int] = dict(plan.shard_kills)
        self._escalations: Dict[int, int] = dict(plan.shard_escalations)
        self._exits: Dict[int, int] = dict(plan.unit_exits)
        self._hangs: Dict[int, int] = dict(plan.unit_hangs)
        self._poisoned = set(plan.poison_units)
        self._seen: Set[Tuple[int, int]] = set()

    def shard_fault(self, shard_index: int, attempt: int) -> Optional[str]:
        """Fate of one shard attempt: kill, escalation, or survival."""
        kills = self._kills.get(shard_index, 0)
        if attempt < kills:
            self.stats.worker_kills += 1
            return WORKER_KILL
        if attempt < kills + self._escalations.get(shard_index, 0):
            self.stats.spurious_escalations += 1
            return SPURIOUS_ESCALATION
        return None

    def unit_fault(self, unit_index: int, attempt: int) -> Optional[str]:
        """Fate of one *attributed* attempt of one supervised work unit.

        Pure in ``(unit_index, attempt)``: simulated losses first (kills,
        then escalations), then real worker exits, then real hangs, then
        -- for poison units -- an unconditional poison raise. The
        supervisor consults the same attempt number again when an
        attempt is lost collaterally (another unit broke the shared
        pool), so stats are deduplicated on ``(unit, attempt)`` and the
        injected schedule replays identically at any worker count.
        """
        first = (unit_index, attempt) not in self._seen
        self._seen.add((unit_index, attempt))
        kills = self._kills.get(unit_index, 0)
        escalations = kills + self._escalations.get(unit_index, 0)
        exits = escalations + self._exits.get(unit_index, 0)
        hangs = exits + self._hangs.get(unit_index, 0)
        if attempt < kills:
            self.stats.worker_kills += first
            return WORKER_KILL
        if attempt < escalations:
            self.stats.spurious_escalations += first
            return SPURIOUS_ESCALATION
        if attempt < exits:
            self.stats.unit_exits += first
            return UNIT_EXIT
        if attempt < hangs:
            self.stats.unit_hangs += first
            return UNIT_HANG
        if unit_index in self._poisoned:
            self.stats.poison_raises += first
            return UNIT_POISON
        return None

    def corrupt_frame(self, row_index: int, attempt: int) -> bool:
        """Should the serial link corrupt this (row, attempt) frame?"""
        if any(b.hits(row_index, attempt) for b in self.plan.corruption_bursts):
            self.stats.corrupted_frames += 1
            return True
        return False

    def drop_packet(self, row_index: int, attempt: int) -> bool:
        """Should the network link drop this (row, attempt) packet?"""
        if any(b.hits(row_index, attempt) for b in self.plan.loss_bursts):
            self.stats.dropped_packets += 1
            return True
        return False

    def interrupt_due(self, completed_shards: int) -> bool:
        """Has the plan's injected interruption point been reached?"""
        return (self.plan.interrupt_after_shards is not None
                and completed_shards >= self.plan.interrupt_after_shards)
