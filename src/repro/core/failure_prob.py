"""Failure-probability model from droop history (paper Section IV.D).

The paper sketches its future online mechanism: "based on a chip's
intrinsic Vmin (this can be determined with idle Vmin test) and the
history of droops, we can predict the probability of the operating
voltage crossing the intrinsic Vmin. This leads to predicting the
probability of failure at various operating voltages."

This module implements that sketch:

- :class:`DroopHistory` accumulates observed droop maxima over fixed
  observation epochs (what a platform's droop monitor would log);
- :class:`FailureProbabilityModel` fits a Gumbel (type-I extreme value)
  law to those epoch maxima -- the standard distribution for maxima of
  many roughly-independent noise events -- and evaluates, for any
  candidate operating voltage, the probability that at least one epoch's
  droop carries the supply below the intrinsic Vmin.

The idle Vmin test itself is trivial in our substrate: it is the chip's
Vmin at zero resonant swing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import SearchError
from repro.soc.chip import Chip
from repro.soc.topology import CoreId

#: Euler-Mascheroni constant (Gumbel moment fitting).
_EULER_GAMMA = 0.5772156649015329


def idle_vmin_mv(chip: Chip, core: Optional[CoreId] = None,
                 freq_ghz: float = 2.4) -> float:
    """The chip's intrinsic (zero-noise) Vmin -- the paper's idle test.

    With no workload there is no resonant excitation, so the intrinsic
    limit is the critical voltage plus the core's offset.
    """
    core = core if core is not None else chip.strongest_core()
    return chip.vmin_mv(core, swing=0.0, freq_ghz=freq_ghz)


class DroopHistory:
    """Epoch-maximum droop log.

    Each record is the worst droop (mV) seen during one observation
    epoch (e.g. one scheduling quantum). The governor feeds this from
    the workloads it runs; tests feed it synthetically.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise SearchError("history capacity must be positive")
        self.capacity = capacity
        self._maxima_mv: List[float] = []

    def record(self, droop_mv: float) -> None:
        """Log one epoch's maximum droop."""
        if droop_mv < 0:
            raise SearchError("droop cannot be negative")
        self._maxima_mv.append(droop_mv)
        if len(self._maxima_mv) > self.capacity:
            self._maxima_mv.pop(0)

    def record_workload(self, chip: Chip, swing: float, epochs: int = 1,
                        jitter_mv: float = 1.5,
                        rng: Optional[np.random.Generator] = None) -> None:
        """Log epochs of a workload running on ``chip``.

        Epoch maxima scatter around the chip's deterministic droop for
        the workload's swing (alignment of droop events varies epoch to
        epoch); ``jitter_mv`` sets that scatter.
        """
        rng = rng if rng is not None else np.random.default_rng(0)
        base = chip.droop_mv(swing)
        for _ in range(epochs):
            self.record(max(0.0, base + float(rng.gumbel(0.0, jitter_mv))))

    @property
    def count(self) -> int:
        return len(self._maxima_mv)

    def maxima_mv(self) -> List[float]:
        return list(self._maxima_mv)


@dataclass(frozen=True)
class GumbelFit:
    """Fitted Gumbel(mu, beta) law over epoch-maximum droops."""

    mu_mv: float
    beta_mv: float
    samples: int

    def exceedance(self, threshold_mv: float) -> float:
        """P(one epoch's max droop > threshold)."""
        if self.beta_mv <= 0:
            return 1.0 if threshold_mv <= self.mu_mv else 0.0
        z = (threshold_mv - self.mu_mv) / self.beta_mv
        return 1.0 - math.exp(-math.exp(-z))


class FailureProbabilityModel:
    """P(failure at voltage V) from intrinsic Vmin + droop history."""

    def __init__(self, intrinsic_vmin_mv: float) -> None:
        if intrinsic_vmin_mv <= 0:
            raise SearchError("intrinsic Vmin must be positive")
        self.intrinsic_vmin_mv = intrinsic_vmin_mv
        self._fit: Optional[GumbelFit] = None

    @property
    def fitted(self) -> bool:
        return self._fit is not None

    @property
    def fit(self) -> GumbelFit:
        if self._fit is None:
            raise SearchError("model queried before fit()")
        return self._fit

    def fit_history(self, history: DroopHistory,
                    min_samples: int = 16) -> GumbelFit:
        """Moment-fit a Gumbel law to the logged epoch maxima."""
        maxima = history.maxima_mv()
        if len(maxima) < min_samples:
            raise SearchError(
                f"need >= {min_samples} epoch maxima, have {len(maxima)}"
            )
        mean = float(np.mean(maxima))
        std = float(np.std(maxima, ddof=1))
        beta = max(1e-9, std * math.sqrt(6.0) / math.pi)
        mu = mean - _EULER_GAMMA * beta
        self._fit = GumbelFit(mu_mv=mu, beta_mv=beta, samples=len(maxima))
        return self._fit

    def epoch_failure_probability(self, voltage_mv: float) -> float:
        """P(one epoch's droop carries ``voltage_mv`` below intrinsic Vmin)."""
        margin = voltage_mv - self.intrinsic_vmin_mv
        if margin <= 0:
            return 1.0
        return self.fit.exceedance(margin)

    def failure_probability(self, voltage_mv: float, epochs: int = 1) -> float:
        """P(at least one failure over ``epochs`` observation epochs)."""
        if epochs < 1:
            raise SearchError("epochs must be >= 1")
        p = self.epoch_failure_probability(voltage_mv)
        return 1.0 - (1.0 - p) ** epochs

    def voltage_for_budget(self, failure_budget: float, epochs: int = 1,
                           lo_mv: float = 700.0, hi_mv: float = 1050.0) -> float:
        """Lowest voltage whose failure probability stays in budget.

        Bisection over the monotone failure-probability curve -- this is
        the number an online governor would program.
        """
        if not 0.0 < failure_budget < 1.0:
            raise SearchError("failure budget must be in (0, 1)")
        if self.failure_probability(hi_mv, epochs) > failure_budget:
            raise SearchError("budget unreachable even at the maximum voltage")
        for _ in range(60):
            mid = (lo_mv + hi_mv) / 2.0
            if self.failure_probability(mid, epochs) > failure_budget:
                lo_mv = mid
            else:
                hi_mv = mid
        return hi_mv
