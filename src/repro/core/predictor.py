"""Workload-dependent Vmin predictor (paper Section IV.D, ref [11]).

The paper proposes predicting a workload's safe Vmin from performance
counters so a Linux governor can pick operating points online without
re-running the full characterization. We implement the reference-[11]
style model: ordinary least squares from counter features to measured
Vmin, with a conservative bias term chosen so the training residuals
never under-predict (a predictor that under-predicts Vmin crashes
machines; one that over-predicts merely wastes a few millivolts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.errors import SearchError
from repro.workloads.base import Workload


@dataclass(frozen=True)
class PredictorReport:
    """Training summary of a fitted predictor."""

    train_rmse_mv: float
    max_underprediction_mv: float
    conservative_bias_mv: float
    coefficients: Tuple[float, ...]

    @property
    def is_safe_on_training_set(self) -> bool:
        """True when no training workload is under-predicted after bias."""
        return self.max_underprediction_mv <= self.conservative_bias_mv + 1e-9


class VminPredictor:
    """Linear Vmin model over workload counter features."""

    def __init__(self) -> None:
        self._weights: Optional[np.ndarray] = None
        self._bias_mv = 0.0

    @property
    def fitted(self) -> bool:
        return self._weights is not None

    def fit(self, workloads: Sequence[Workload],
            vmin_mv: Sequence[float]) -> PredictorReport:
        """Fit OLS weights plus the conservative bias.

        Requires at least as many training workloads as features.
        """
        if len(workloads) != len(vmin_mv):
            raise SearchError("workloads and targets must align")
        features = np.stack([w.cpu.predictor_features() for w in workloads])
        targets = np.asarray(vmin_mv, dtype=float)
        if features.shape[0] < features.shape[1]:
            raise SearchError(
                f"need >= {features.shape[1]} training workloads, "
                f"got {features.shape[0]}"
            )
        weights, *_ = np.linalg.lstsq(features, targets, rcond=None)
        raw_pred = features @ weights
        residuals = targets - raw_pred  # positive = under-prediction
        bias = max(0.0, float(residuals.max()))
        self._weights = weights
        self._bias_mv = bias
        return PredictorReport(
            train_rmse_mv=float(np.sqrt(np.mean(residuals ** 2))),
            max_underprediction_mv=float(residuals.max()),
            conservative_bias_mv=bias,
            coefficients=tuple(float(w) for w in weights),
        )

    def predict_mv(self, workload: Workload) -> float:
        """Predicted safe Vmin for one workload (bias included)."""
        if self._weights is None:
            raise SearchError("predictor used before fit()")
        raw = float(workload.cpu.predictor_features() @ self._weights)
        return raw + self._bias_mv

    def predict_mix_mv(self, workloads: Sequence[Workload],
                       interference_mv: float = 2.0) -> float:
        """Predicted safe voltage for a multiprogram mix.

        The mix prediction is the maximum member prediction plus a small
        interference allowance -- the scheduling-assist use the paper
        sketches ("the predictor ... can also assist task scheduling").
        """
        if not workloads:
            raise SearchError("empty mix")
        return max(self.predict_mv(w) for w in workloads) + interference_mv
